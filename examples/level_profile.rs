//! Visualize the level-synchronous execution of distributed RCM: frontier
//! width and simulated time per BFS level.
//!
//! This is the picture behind the paper's diameter argument (§I, §V-D):
//! high-diameter matrices have many thin levels, so per-level latency (α·√p
//! for SpMSpV, α·p for SORTPERM) dominates and scaling stalls; low-diameter
//! matrices have few fat levels and keep scaling.
//!
//! ```text
//! cargo run --release --example level_profile [matrix] [cores]
//! ```

use distributed_rcm::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("ldoor");
    let cores: usize = args
        .get(2)
        .map(|s| s.parse().expect("cores must be an integer"))
        .unwrap_or(216);

    let m = suite_matrix(name).expect("unknown suite matrix");
    let a = m.generate(m.default_scale);
    let cfg = DistRcmConfig::hybrid_on_edison(cores);
    let r = dist_rcm(&a, &cfg);

    println!(
        "{}: {} rows, {} levels on {} cores ({}x{} grid)\n",
        m.name,
        a.n_rows(),
        r.level_stats.len(),
        cores,
        r.grid_side,
        r.grid_side
    );
    let max_frontier = r.level_stats.iter().map(|l| l.frontier).max().unwrap_or(1);
    println!(
        "{:>6} {:>10} {:>10} {:>5}  frontier width",
        "level", "vertices", "time", "dir"
    );
    // Print at most ~40 representative levels.
    let step = (r.level_stats.len() / 40).max(1);
    for (k, stat) in r.level_stats.iter().enumerate() {
        if k % step != 0 && k != r.level_stats.len() - 1 {
            continue;
        }
        let bar = "#".repeat((stat.frontier * 40 / max_frontier).max(1));
        println!(
            "{:>6} {:>10} {:>9.1}us {:>5}  {}",
            k,
            stat.frontier,
            stat.seconds * 1e6,
            stat.direction.name(),
            bar
        );
    }
    let total: f64 = r.level_stats.iter().map(|l| l.seconds).sum();
    println!(
        "\nordering pass: {:.4}s across {} levels (total run {:.4}s, {} peripheral BFS, \
         {} pull / {} push expansions)",
        total,
        r.level_stats.len(),
        r.sim_seconds,
        r.peripheral_bfs,
        r.pull_expands,
        r.push_expands
    );
}
