//! Quickstart: generate a matrix, compute its RCM ordering, measure quality.
//!
//! ```text
//! cargo run --release --example quickstart [matrix-name] [scale]
//! ```
//!
//! `matrix-name` is any entry of the evaluation suite (default `ldoor`);
//! `scale` is the fraction of the paper's row count (default: the laptop
//! default for that matrix).

use distributed_rcm::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("ldoor");
    let m = suite_matrix(name).unwrap_or_else(|| {
        eprintln!("unknown matrix {name}; known: ");
        for s in suite() {
            eprintln!("  {:18} {}", s.name, s.description);
        }
        std::process::exit(2);
    });
    let scale: f64 = args
        .get(2)
        .map(|s| s.parse().expect("scale must be a number"))
        .unwrap_or(m.default_scale);

    println!("generating {} stand-in at scale {scale} ...", m.name);
    let a = m.generate(scale);
    println!(
        "  {} rows, {} nonzeros, avg degree {:.1}",
        a.n_rows(),
        a.nnz(),
        a.nnz() as f64 / a.n_rows() as f64
    );

    let t0 = std::time::Instant::now();
    let perm = rcm(&a);
    let dt = t0.elapsed();

    let q = quality_report(&a, &perm);
    println!("sequential RCM took {dt:?}");
    println!(
        "  bandwidth: {:>12} -> {:>12}",
        q.bandwidth_before, q.bandwidth_after
    );
    println!(
        "  profile:   {:>12} -> {:>12}",
        q.profile_before, q.profile_after
    );
    println!(
        "  (paper, full-size {}: bandwidth {} -> {})",
        m.name, m.paper.bw_pre, m.paper.bw_post
    );

    // The permuted matrix is available as a real object too — and the spy
    // plots show the nonzeros collapsing onto the diagonal (Fig. 3 style).
    let reordered = a.permute_sym(&perm);
    assert_eq!(matrix_bandwidth(&reordered), q.bandwidth_after);
    println!("\nnatural ordering:");
    println!("{}", distributed_rcm::sparse::spy(&a, 32));
    println!("RCM ordering:");
    println!("{}", distributed_rcm::sparse::spy(&reordered, 32));
    println!("done.");
}
