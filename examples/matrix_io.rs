//! Matrix Market round trip: write a generated matrix, read it back, apply
//! RCM, and write the reordered matrix — the workflow for using real
//! SuiteSparse downloads with this library.
//!
//! ```text
//! cargo run --release --example matrix_io [path/to/matrix.mtx]
//! ```
//!
//! Without an argument, a small suite matrix is generated and written to a
//! temporary directory first, so the example is self-contained.

use distributed_rcm::prelude::*;
use distributed_rcm::sparse::mm;

fn main() {
    let arg = std::env::args().nth(1);
    let dir = std::env::temp_dir().join("distributed-rcm-example");
    std::fs::create_dir_all(&dir).expect("create temp dir");

    let input_path = match arg {
        Some(p) => std::path::PathBuf::from(p),
        None => {
            let m = suite_matrix("nd24k").unwrap();
            let a = m.generate(0.01);
            let p = dir.join("nd24k_small.mtx");
            mm::write_pattern_file(&a, &p).expect("write sample matrix");
            println!("(no input given; wrote sample {} first)", p.display());
            p
        }
    };

    println!("reading {} ...", input_path.display());
    let a = mm::read_pattern_file(&input_path).expect("read Matrix Market file");
    println!("  {} x {}, {} nonzeros", a.n_rows(), a.n_cols(), a.nnz());
    let a = if a.is_symmetric() {
        a
    } else {
        println!("  pattern not symmetric; symmetrizing A + Aᵀ");
        let mut b = CooBuilder::new(a.n_rows(), a.n_cols());
        for (r, c) in a.iter_entries() {
            b.push_sym(r, c);
        }
        b.build()
    };

    let perm = rcm(&a);
    let q = quality_report(&a, &perm);
    println!(
        "RCM: bandwidth {} -> {}",
        q.bandwidth_before, q.bandwidth_after
    );

    let out_path = dir.join("reordered.mtx");
    mm::write_pattern_file(&a.permute_sym(&perm), &out_path).expect("write reordered matrix");
    println!("wrote {}", out_path.display());
}
