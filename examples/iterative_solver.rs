//! The Fig. 1 motivation, end to end: a conjugate-gradient solve with
//! block-Jacobi preconditioning is faster — increasingly so at scale — when
//! the matrix is RCM-ordered.
//!
//! ```text
//! cargo run --release --example iterative_solver [scale]
//! ```

use distributed_rcm::prelude::*;
use distributed_rcm::sparse::CsrNumeric;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("scale must be a number"))
        .unwrap_or(0.02);
    let m = suite_matrix("thermal2").unwrap();
    let pattern = m.generate(scale);
    println!(
        "thermal2 stand-in: {} rows, {} nnz",
        pattern.n_rows(),
        pattern.nnz()
    );

    // RCM ordering.
    let perm = rcm(&pattern);
    let reordered = pattern.permute_sym(&perm);
    println!(
        "bandwidth: natural {}, RCM {} (paper: 1,226,000 -> 795)",
        matrix_bandwidth(&pattern),
        matrix_bandwidth(&reordered)
    );

    // SPD system: shifted graph Laplacian on each ordering.
    let machine = MachineModel::edison();
    println!(
        "\n{:>6}  {:>9} {:>11} {:>11}  {:>9} {:>11} {:>11}  {:>8}",
        "cores",
        "nat-iter",
        "nat-t/iter",
        "nat-total",
        "rcm-iter",
        "rcm-t/iter",
        "rcm-total",
        "speedup"
    );
    for p in [1usize, 4, 16, 64, 256] {
        let mut row = (0usize, 0.0f64, 0usize, 0.0f64);
        for (k, pat) in [&pattern, &reordered].into_iter().enumerate() {
            let a = CsrNumeric::laplacian_from_pattern(pat, 0.02);
            let n = a.n_rows();
            let x_true: Vec<f64> = (0..n).map(|i| ((i % 11) as f64) - 5.0).collect();
            let mut b = vec![0.0; n];
            a.spmv(&x_true, &mut b);
            let bj = BlockJacobi::new(&a, p);
            let res = pcg(&a, &b, &bj, 1e-6, 50_000);
            assert!(res.converged);
            let cost = cg_iteration_cost(pat, &machine, p, bj.factor_nnz());
            let total = res.iterations as f64 * cost.total();
            if k == 0 {
                row.0 = res.iterations;
                row.1 = total;
            } else {
                row.2 = res.iterations;
                row.3 = total;
            }
        }
        println!(
            "{:>6}  {:>9} {:>11} {:>11.4}  {:>9} {:>11} {:>11.4}  {:>7.1}x",
            p,
            row.0,
            format!("{:.2}ms", row.1 / row.0 as f64 * 1e3),
            row.1,
            row.2,
            format!("{:.2}ms", row.3 / row.2 as f64 * 1e3),
            row.3,
            row.1 / row.3
        );
    }
    println!("\n(iterations measured with real CG numerics; per-iteration time modeled on Edison)");
}
