//! Simulate the distributed-memory RCM algorithm on a virtual cluster and
//! print the per-phase runtime breakdown (the Fig. 4 view).
//!
//! ```text
//! cargo run --release --example distributed_ordering [matrix] [cores...]
//! ```
//!
//! Defaults: `ldoor` on 1, 24, 216 and 1014 cores (hybrid, 6 threads per
//! MPI process, Edison machine model).

use distributed_rcm::dist::Phase;
use distributed_rcm::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("ldoor");
    let cores: Vec<usize> = if args.len() > 2 {
        args[2..]
            .iter()
            .map(|s| s.parse().expect("core counts must be integers"))
            .collect()
    } else {
        vec![1, 24, 216, 1014]
    };

    let m = suite_matrix(name).expect("unknown suite matrix");
    let a = m.generate(m.default_scale);
    println!(
        "{}: {} rows, {} nnz (paper-class: {})\n",
        m.name,
        a.n_rows(),
        a.nnz(),
        m.description
    );
    println!(
        "{:>6}  {:>5}  {:>10} {:>10} {:>10} {:>10} {:>10}  {:>10}  {:>8}",
        "cores", "grid", "P:SpMSpV", "P:Other", "O:SpMSpV", "O:Sort", "O:Other", "total", "speedup"
    );
    let mut t1 = None;
    for &c in &cores {
        let cfg = DistRcmConfig::hybrid_on_edison(c);
        let r = dist_rcm(&a, &cfg);
        let t = r.sim_seconds;
        t1.get_or_insert(t);
        let phases: Vec<String> = Phase::ALL
            .iter()
            .map(|&ph| format!("{:.4}", r.breakdown.get(ph).total()))
            .collect();
        println!(
            "{:>6}  {:>2}x{:<2}  {:>10} {:>10} {:>10} {:>10} {:>10}  {:>9.4}s  {:>7.1}x",
            c,
            r.grid_side,
            r.grid_side,
            phases[0],
            phases[1],
            phases[2],
            phases[3],
            phases[4],
            t,
            t1.unwrap() / t,
        );
    }
    println!("\n(simulated seconds on the Edison α-β model; 6 threads/process)");
}
