//! Regular-grid (stencil) matrix generators.
//!
//! These model the discretized-PDE matrices that dominate the paper's suite:
//! 2D/3D meshes with various stencil widths, optional multiple degrees of
//! freedom per node (FEM-style), and optional axis "skip" links that shorten
//! the graph diameter without changing the degree much (used to match
//! medium-diameter matrices like `Serena`).

use rcm_sparse::{CooBuilder, CscMatrix, Vidx};

/// Description of a 3D stencil-pattern generator.
#[derive(Clone, Debug)]
pub struct StencilSpec {
    /// Grid extents.
    pub nx: usize,
    /// Grid extents.
    pub ny: usize,
    /// Grid extents.
    pub nz: usize,
    /// Neighbour offsets (must not include the origin). Symmetric sets
    /// produce symmetric matrices; [`StencilSpec::build`] asserts symmetry.
    pub offsets: Vec<(i32, i32, i32)>,
    /// Degrees of freedom per grid node; dofs of a node form a clique, and a
    /// node-level edge couples all dof pairs (dense FEM blocks).
    pub dofs: usize,
}

impl StencilSpec {
    /// The 6-neighbour (7-point minus diagonal) stencil.
    pub fn offsets_7pt() -> Vec<(i32, i32, i32)> {
        vec![
            (1, 0, 0),
            (-1, 0, 0),
            (0, 1, 0),
            (0, -1, 0),
            (0, 0, 1),
            (0, 0, -1),
        ]
    }

    /// All 26 neighbours in the unit Chebyshev ball (27-point stencil).
    pub fn offsets_27pt() -> Vec<(i32, i32, i32)> {
        Self::offsets_chebyshev(1)
    }

    /// All nonzero offsets within Chebyshev radius `r` — `(2r+1)³ − 1`
    /// neighbours. Radius 3 reproduces the ~400 average degree of `nd24k`.
    pub fn offsets_chebyshev(r: i32) -> Vec<(i32, i32, i32)> {
        let mut v = Vec::new();
        for dx in -r..=r {
            for dy in -r..=r {
                for dz in -r..=r {
                    if (dx, dy, dz) != (0, 0, 0) {
                        v.push((dx, dy, dz));
                    }
                }
            }
        }
        v
    }

    /// 27-point offsets plus ±2 axis skips: shortens the graph diameter by
    /// roughly 2× while adding only 6 neighbours.
    pub fn offsets_27pt_with_skips() -> Vec<(i32, i32, i32)> {
        let mut v = Self::offsets_27pt();
        for d in [2, -2] {
            v.push((d, 0, 0));
            v.push((0, d, 0));
            v.push((0, 0, d));
        }
        v
    }

    /// Number of rows of the generated matrix.
    pub fn n_rows(&self) -> usize {
        self.nx * self.ny * self.nz * self.dofs
    }

    /// Build the pattern matrix (natural lexicographic node numbering, dofs
    /// innermost).
    pub fn build(&self) -> CscMatrix {
        assert!(self.dofs >= 1);
        assert!(self.nx >= 1 && self.ny >= 1 && self.nz >= 1);
        // Offsets must be a symmetric set for the matrix to be symmetric.
        for &(dx, dy, dz) in &self.offsets {
            assert!(
                self.offsets.contains(&(-dx, -dy, -dz)),
                "offset set is not symmetric: missing -({dx},{dy},{dz})"
            );
            assert!((dx, dy, dz) != (0, 0, 0), "origin offset not allowed");
        }
        let (nx, ny, nz, d) = (self.nx, self.ny, self.nz, self.dofs);
        let n = self.n_rows();
        let node = |x: usize, y: usize, z: usize| -> usize { (z * ny + y) * nx + x };
        // Estimated entries: |offsets|·n·d + intra-node cliques.
        let est = n * self.offsets.len() * d + n * d.saturating_sub(1);
        let mut b = CooBuilder::with_capacity(n, n, est);
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    let u = node(x, y, z);
                    // Intra-node dof clique (directed entries; set is symmetric).
                    for i in 0..d {
                        for j in 0..d {
                            if i != j {
                                b.push((u * d + i) as Vidx, (u * d + j) as Vidx);
                            }
                        }
                    }
                    for &(dx, dy, dz) in &self.offsets {
                        let xx = x as i64 + dx as i64;
                        let yy = y as i64 + dy as i64;
                        let zz = z as i64 + dz as i64;
                        if xx < 0
                            || yy < 0
                            || zz < 0
                            || xx >= nx as i64
                            || yy >= ny as i64
                            || zz >= nz as i64
                        {
                            continue;
                        }
                        let v = node(xx as usize, yy as usize, zz as usize);
                        // Couple every dof pair of the two nodes (directed;
                        // the mirrored offset emits the reverse entries).
                        for i in 0..d {
                            for j in 0..d {
                                b.push((u * d + i) as Vidx, (v * d + j) as Vidx);
                            }
                        }
                    }
                }
            }
        }
        b.build()
    }
}

/// 2D 5-point stencil (classic Laplacian) on an `nx × ny` grid.
pub fn grid2d_5pt(nx: usize, ny: usize) -> CscMatrix {
    StencilSpec {
        nx,
        ny,
        nz: 1,
        offsets: vec![(1, 0, 0), (-1, 0, 0), (0, 1, 0), (0, -1, 0)],
        dofs: 1,
    }
    .build()
}

/// 2D 9-point stencil on an `nx × ny` grid.
pub fn grid2d_9pt(nx: usize, ny: usize) -> CscMatrix {
    let offsets = StencilSpec::offsets_chebyshev(1)
        .into_iter()
        .filter(|&(_, _, dz)| dz == 0)
        .collect();
    StencilSpec {
        nx,
        ny,
        nz: 1,
        offsets,
        dofs: 1,
    }
    .build()
}

/// 3D 7-point stencil.
pub fn grid3d_7pt(nx: usize, ny: usize, nz: usize) -> CscMatrix {
    StencilSpec {
        nx,
        ny,
        nz,
        offsets: StencilSpec::offsets_7pt(),
        dofs: 1,
    }
    .build()
}

/// 3D 27-point stencil.
pub fn grid3d_27pt(nx: usize, ny: usize, nz: usize) -> CscMatrix {
    StencilSpec {
        nx,
        ny,
        nz,
        offsets: StencilSpec::offsets_27pt(),
        dofs: 1,
    }
    .build()
}

/// General stencil constructor (see [`StencilSpec`]).
pub fn grid3d_stencil(spec: StencilSpec) -> CscMatrix {
    spec.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid2d_5pt_structure() {
        let m = grid2d_5pt(3, 3);
        assert_eq!(m.n_rows(), 9);
        assert!(m.is_symmetric());
        // Corner has degree 2, edge 3, center 4.
        let mut degs = m.degrees();
        degs.sort_unstable();
        assert_eq!(degs, vec![2, 2, 2, 2, 3, 3, 3, 3, 4]);
    }

    #[test]
    fn grid3d_7pt_interior_degree() {
        let m = grid3d_7pt(3, 3, 3);
        assert_eq!(m.n_rows(), 27);
        assert!(m.is_symmetric());
        // Center node (1,1,1) = index 13 has all 6 neighbours.
        assert_eq!(m.degrees()[13], 6);
    }

    #[test]
    fn grid3d_27pt_interior_degree() {
        let m = grid3d_27pt(3, 3, 3);
        assert_eq!(m.degrees()[13], 26);
    }

    #[test]
    fn dofs_blow_up_rows_and_degree() {
        let spec = StencilSpec {
            nx: 3,
            ny: 1,
            nz: 1,
            offsets: vec![(1, 0, 0), (-1, 0, 0)],
            dofs: 2,
        };
        let m = spec.build();
        assert_eq!(m.n_rows(), 6);
        assert!(m.is_symmetric());
        // Middle node: 2 node-neighbours × 2 dofs + 1 intra-node dof = 5.
        assert_eq!(m.degrees()[2], 5);
        assert_eq!(m.degrees()[3], 5);
        // End node: 1 neighbour × 2 + 1 = 3.
        assert_eq!(m.degrees()[0], 3);
    }

    #[test]
    fn chebyshev_offsets_count() {
        assert_eq!(StencilSpec::offsets_chebyshev(1).len(), 26);
        assert_eq!(StencilSpec::offsets_chebyshev(2).len(), 124);
        assert_eq!(StencilSpec::offsets_chebyshev(3).len(), 342);
    }

    #[test]
    fn skips_shorten_diameter() {
        // On a 1D-ish path the +-2 skips halve the hop count.
        let base = StencilSpec {
            nx: 20,
            ny: 1,
            nz: 1,
            offsets: StencilSpec::offsets_7pt(),
            dofs: 1,
        }
        .build();
        let skip = StencilSpec {
            nx: 20,
            ny: 1,
            nz: 1,
            offsets: StencilSpec::offsets_27pt_with_skips(),
            dofs: 1,
        }
        .build();
        // BFS from vertex 0: eccentricity via simple traversal.
        let ecc = |m: &CscMatrix| {
            let n = m.n_rows();
            let mut dist = vec![usize::MAX; n];
            dist[0] = 0;
            let mut frontier = vec![0u32];
            let mut level = 0;
            while !frontier.is_empty() {
                level += 1;
                let mut next = Vec::new();
                for &v in &frontier {
                    for &w in m.col(v as usize) {
                        if dist[w as usize] == usize::MAX {
                            dist[w as usize] = level;
                            next.push(w);
                        }
                    }
                }
                frontier = next;
            }
            dist.iter().copied().max().unwrap()
        };
        assert_eq!(ecc(&base), 19);
        assert_eq!(ecc(&skip), 10);
    }

    #[test]
    fn single_node_grid() {
        let m = grid3d_7pt(1, 1, 1);
        assert_eq!(m.n_rows(), 1);
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    #[should_panic(expected = "not symmetric")]
    fn asymmetric_offsets_rejected() {
        StencilSpec {
            nx: 2,
            ny: 2,
            nz: 1,
            offsets: vec![(1, 0, 0)],
            dofs: 1,
        }
        .build();
    }
}
