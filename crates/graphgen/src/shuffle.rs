//! Seeded random vertex permutations.
//!
//! Two uses in this workspace:
//! * giving generated meshes an "unstructured" natural ordering (real FEM
//!   matrices arrive with large bandwidth; lexicographic grid numbering
//!   would make the pre-RCM baseline unrealistically good), and
//! * the load-balancing permutation the distributed matrix applies before
//!   running RCM (§IV-A of the paper).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rcm_sparse::{CscMatrix, Permutation, Vidx};

/// A uniformly random permutation of `{0, …, n-1}` drawn from `seed`.
pub fn random_permutation(n: usize, seed: u64) -> Permutation {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut v: Vec<Vidx> = (0..n as Vidx).collect();
    // Fisher–Yates.
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        v.swap(i, j);
    }
    Permutation::from_new_of_old(v).expect("Fisher-Yates yields a bijection")
}

/// Apply a seeded random symmetric permutation to a matrix: `PAPᵀ`.
pub fn shuffled(a: &CscMatrix, seed: u64) -> CscMatrix {
    a.permute_sym(&random_permutation(a.n_cols(), seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcm_sparse::coo::CooBuilder;

    #[test]
    fn permutation_is_deterministic_per_seed() {
        let a = random_permutation(100, 7);
        let b = random_permutation(100, 7);
        let c = random_permutation(100, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn shuffle_preserves_structure_invariants() {
        let mut b = CooBuilder::new(50, 50);
        for v in 0..49u32 {
            b.push_sym(v, v + 1);
        }
        let m = b.build();
        let s = shuffled(&m, 42);
        assert_eq!(s.nnz(), m.nnz());
        assert!(s.is_symmetric());
        let mut d1 = m.degrees();
        let mut d2 = s.degrees();
        d1.sort_unstable();
        d2.sort_unstable();
        assert_eq!(d1, d2);
    }

    #[test]
    fn shuffle_typically_increases_path_bandwidth() {
        let mut b = CooBuilder::new(200, 200);
        for v in 0..199u32 {
            b.push_sym(v, v + 1);
        }
        let m = b.build();
        assert_eq!(rcm_sparse::matrix_bandwidth(&m), 1);
        let s = shuffled(&m, 1);
        assert!(rcm_sparse::matrix_bandwidth(&s) > 10);
    }

    #[test]
    fn tiny_sizes_do_not_panic() {
        assert_eq!(random_permutation(0, 1).len(), 0);
        assert_eq!(random_permutation(1, 1).len(), 1);
    }
}
