//! KKT (saddle-point) matrix generator — the `nlpkkt240` stand-in.
//!
//! The `nlpkkt*` family comes from 3D PDE-constrained optimization: the KKT
//! system
//!
//! ```text
//!   [ H   Aᵀ ]
//!   [ A   0  ]
//! ```
//!
//! couples two variables per grid cell (state + control) through a 7-point
//! Hessian block `H` and one constraint per cell tying the cell's variables
//! to its neighbours' states. The result is a very sparse (≈10 nnz/row),
//! very high diameter (≈ 3·g for a g³ grid) symmetric indefinite matrix —
//! exactly the regime where level-synchronous BFS scaling suffers.

use rcm_sparse::{CooBuilder, CscMatrix, Vidx};

/// Build an `nlpkkt`-style KKT pattern on a `g × g × g` grid.
///
/// Layout: rows `0..2·g³` are the state/control variables (interleaved per
/// cell), rows `2·g³..3·g³` the constraints. Total `3·g³` rows.
pub fn kkt_3d(g: usize) -> CscMatrix {
    assert!(g >= 1);
    let cells = g * g * g;
    let nvar = 2 * cells;
    let n = nvar + cells;
    let cell = |x: usize, y: usize, z: usize| -> usize { (z * g + y) * g + x };
    let state = |c: usize| -> Vidx { (2 * c) as Vidx };
    let control = |c: usize| -> Vidx { (2 * c + 1) as Vidx };
    let constraint = |c: usize| -> Vidx { (nvar + c) as Vidx };

    let mut b = CooBuilder::with_capacity(n, n, n * 12);
    let neighbours = |x: usize, y: usize, z: usize| {
        let mut v = Vec::with_capacity(6);
        if x > 0 {
            v.push(cell(x - 1, y, z));
        }
        if x + 1 < g {
            v.push(cell(x + 1, y, z));
        }
        if y > 0 {
            v.push(cell(x, y - 1, z));
        }
        if y + 1 < g {
            v.push(cell(x, y + 1, z));
        }
        if z > 0 {
            v.push(cell(x, y, z - 1));
        }
        if z + 1 < g {
            v.push(cell(x, y, z + 1));
        }
        v
    };

    for z in 0..g {
        for y in 0..g {
            for x in 0..g {
                let c = cell(x, y, z);
                // H block: state-state 7-point coupling + state-control at
                // the same cell.
                b.push_sym(state(c), control(c));
                for nb in neighbours(x, y, z) {
                    if nb > c {
                        b.push_sym(state(c), state(nb));
                    }
                }
                // A block: the cell's constraint touches its own state and
                // control and the neighbouring states (discretized PDE
                // constraint), symmetric in the KKT system.
                b.push_sym(constraint(c), state(c));
                b.push_sym(constraint(c), control(c));
                for nb in neighbours(x, y, z) {
                    b.push_sym(constraint(c), state(nb));
                }
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensions_are_three_g_cubed() {
        let m = kkt_3d(4);
        assert_eq!(m.n_rows(), 3 * 64);
        assert!(m.is_symmetric());
    }

    #[test]
    fn sparse_rows_like_nlpkkt() {
        let m = kkt_3d(8);
        let avg = m.nnz() as f64 / m.n_rows() as f64;
        // Paper: nlpkkt240 averages ≈9.7 nnz/row.
        assert!(avg > 6.0 && avg < 14.0, "avg nnz/row = {avg}");
    }

    #[test]
    fn connected_single_component() {
        let m = kkt_3d(3);
        let n = m.n_rows();
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &w in m.col(v) {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    count += 1;
                    stack.push(w as usize);
                }
            }
        }
        assert_eq!(count, n);
    }

    #[test]
    fn tiny_grid_is_valid() {
        let m = kkt_3d(1);
        assert_eq!(m.n_rows(), 3);
        assert!(m.is_symmetric());
        // One cell: state-control, constraint-state, constraint-control.
        assert_eq!(m.nnz(), 6);
    }
}
