//! Synthetic sparse-matrix generators for the distributed-RCM evaluation.
//!
//! The paper (Azad et al., IPDPS 2017) evaluates on nine SuiteSparse /
//! nuclear-CI matrices plus `thermal2` (Fig. 1). Those inputs are proprietary
//! or impractically large to redistribute, so this crate generates
//! *structural stand-ins*: for each paper matrix we reproduce the three
//! properties that drive RCM's parallel behaviour —
//!
//! 1. **degree distribution** (work per frontier vertex),
//! 2. **pseudo-diameter regime** (number of level-synchronous BFS steps,
//!    which sets the latency-bound portion of the runtime), and
//! 3. **frontier width** (per-level work, which sets the bandwidth-bound
//!    portion).
//!
//! Matrices are emitted with a deterministic random vertex shuffle applied,
//! mimicking the unstructured "natural" orderings of real FEM meshes (the
//! paper's pre-RCM bandwidths are near `n`, e.g. 686,979 for the 952k-row
//! `ldoor`). Use the `*_natural` constructors to keep lexicographic
//! numbering.
//!
//! See [`mod@suite`] for the registry mapping paper matrix names to generators
//! and recorded paper statistics, and DESIGN.md §1 for the substitution
//! rationale.

pub mod grid;
pub mod kkt;
pub mod multi;
pub mod random;
pub mod shuffle;
pub mod stats;
pub mod suite;

pub use grid::{grid2d_5pt, grid2d_9pt, grid3d_27pt, grid3d_7pt, grid3d_stencil, StencilSpec};
pub use kkt::kkt_3d;
pub use multi::{block_diag, forest, multi_body};
pub use random::{chained_er, erdos_renyi_connected, rmat, watts_strogatz};
pub use shuffle::{random_permutation, shuffled};
pub use stats::{graph_stats, GraphStats};
pub use suite::{suite, suite_matrix, PaperStats, SuiteMatrix};
