//! Random-graph generators for the low-diameter, high-degree matrix classes.
//!
//! The nuclear configuration-interaction matrices of the paper (`Li7Nmax6`,
//! `Nm7`) have enormous average degrees (300+) and tiny pseudo-diameters
//! (5–7): many-body basis states couple densely within an excitation block
//! and sparsely with neighbouring blocks. [`chained_er`] models exactly that:
//! a chain of Erdős–Rényi blocks with dense intra-block and sparser
//! adjacent-block coupling, which pins both the degree and the diameter.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rcm_sparse::{CooBuilder, CscMatrix, Vidx};

/// Connected Erdős–Rényi-style graph: a random Hamiltonian path backbone
/// (guaranteeing connectivity) plus `extra_edges` uniform random edges.
pub fn erdos_renyi_connected(n: usize, extra_edges: usize, seed: u64) -> CscMatrix {
    assert!(n >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<Vidx> = (0..n as Vidx).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    let mut b = CooBuilder::with_capacity(n, n, 2 * (n + extra_edges));
    for w in order.windows(2) {
        b.push_sym(w[0], w[1]);
    }
    for _ in 0..extra_edges {
        let u = rng.gen_range(0..n) as Vidx;
        let v = rng.gen_range(0..n) as Vidx;
        if u != v {
            b.push_sym(u, v);
        }
    }
    b.build()
}

/// A chain of `blocks` Erdős–Rényi communities.
///
/// Every vertex gets ≈`intra_deg` random neighbours inside its own block and
/// ≈`inter_deg` in the *next* block of the chain. Each block also receives a
/// path backbone, and consecutive blocks a bridging edge, so the graph is
/// connected. The pseudo-diameter is `Θ(blocks)` (within-block distances are
/// O(1) for reasonable densities), independent of `n` — matching the
/// configuration-interaction matrices.
pub fn chained_er(
    n: usize,
    blocks: usize,
    intra_deg: usize,
    inter_deg: usize,
    seed: u64,
) -> CscMatrix {
    assert!(blocks >= 1 && n >= blocks);
    let mut rng = StdRng::seed_from_u64(seed);
    let bounds: Vec<usize> = (0..=blocks).map(|b| b * n / blocks).collect();
    let est = n * (intra_deg + inter_deg + 2);
    let mut b = CooBuilder::with_capacity(n, n, est);
    for blk in 0..blocks {
        let (lo, hi) = (bounds[blk], bounds[blk + 1]);
        let size = hi - lo;
        // Backbone path inside the block.
        for v in lo..hi.saturating_sub(1) {
            b.push_sym(v as Vidx, (v + 1) as Vidx);
        }
        // Bridge to the next block.
        if blk + 1 < blocks {
            b.push_sym((hi - 1) as Vidx, hi as Vidx);
        }
        // Random intra-block edges: intra_deg/2 per vertex gives average
        // degree ≈ intra_deg.
        if size > 1 {
            for v in lo..hi {
                for _ in 0..intra_deg / 2 {
                    let u = rng.gen_range(lo..hi);
                    if u != v {
                        b.push_sym(v as Vidx, u as Vidx);
                    }
                }
            }
        }
        // Random edges into the next block.
        if blk + 1 < blocks {
            let (nlo, nhi) = (bounds[blk + 1], bounds[blk + 2]);
            if nhi > nlo {
                for v in lo..hi {
                    for _ in 0..inter_deg / 2 {
                        let u = rng.gen_range(nlo..nhi);
                        b.push_sym(v as Vidx, u as Vidx);
                    }
                }
            }
        }
    }
    b.build()
}

/// Watts–Strogatz small-world graph: ring lattice with `k` neighbours per
/// side, each edge rewired with probability `p_rewire`.
pub fn watts_strogatz(n: usize, k: usize, p_rewire: f64, seed: u64) -> CscMatrix {
    assert!(n > 2 * k, "ring lattice needs n > 2k");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CooBuilder::with_capacity(n, n, 2 * n * k);
    for v in 0..n {
        for d in 1..=k {
            let mut u = (v + d) % n;
            if rng.gen_bool(p_rewire) {
                u = rng.gen_range(0..n);
                if u == v {
                    continue;
                }
            }
            b.push_sym(v as Vidx, u as Vidx);
        }
    }
    b.build()
}

/// R-MAT / Graph500-style power-law generator with the standard
/// (a, b, c) = (0.57, 0.19, 0.19) partition probabilities, symmetrized.
/// Included for completeness: the paper contrasts RCM inputs with the
/// low-diameter synthetic graphs parallel-BFS work usually targets.
pub fn rmat(scale: u32, edge_factor: usize, seed: u64) -> CscMatrix {
    let n = 1usize << scale;
    let m = n * edge_factor;
    let (a, b_, c) = (0.57, 0.19, 0.19);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CooBuilder::with_capacity(n, n, 2 * m);
    for _ in 0..m {
        let (mut u, mut v) = (0usize, 0usize);
        for bit in (0..scale).rev() {
            let r: f64 = rng.gen();
            let (du, dv) = if r < a {
                (0, 0)
            } else if r < a + b_ {
                (0, 1)
            } else if r < a + b_ + c {
                (1, 0)
            } else {
                (1, 1)
            };
            u |= du << bit;
            v |= dv << bit;
        }
        if u != v {
            b.push_sym(u as Vidx, v as Vidx);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_connected(m: &CscMatrix) -> bool {
        let n = m.n_rows();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &w in m.col(v) {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    count += 1;
                    stack.push(w as usize);
                }
            }
        }
        count == n
    }

    #[test]
    fn er_connected_and_symmetric() {
        let m = erdos_renyi_connected(200, 400, 3);
        assert!(m.is_symmetric());
        assert!(is_connected(&m));
        assert_eq!(m.n_rows(), 200);
    }

    #[test]
    fn er_deterministic_by_seed() {
        assert_eq!(
            erdos_renyi_connected(100, 50, 9),
            erdos_renyi_connected(100, 50, 9)
        );
        assert_ne!(
            erdos_renyi_connected(100, 50, 9),
            erdos_renyi_connected(100, 50, 10)
        );
    }

    #[test]
    fn chained_er_connected_with_expected_degree() {
        let m = chained_er(1000, 4, 20, 6, 5);
        assert!(m.is_symmetric());
        assert!(is_connected(&m));
        let avg_deg = m.nnz() as f64 / m.n_rows() as f64;
        // intra 20 + inter ~6 forward + ~6 backward mirror ≈ but duplicates
        // collapse; just sanity-band it.
        assert!(avg_deg > 15.0 && avg_deg < 40.0, "avg degree {avg_deg}");
    }

    #[test]
    fn chained_er_diameter_tracks_blocks() {
        // BFS eccentricity from vertex 0 should be near the block count, not n.
        let blocks = 6;
        let m = chained_er(3000, blocks, 30, 8, 11);
        let n = m.n_rows();
        let mut dist = vec![usize::MAX; n];
        dist[0] = 0;
        let mut frontier = vec![0u32];
        let mut ecc = 0;
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &v in &frontier {
                for &w in m.col(v as usize) {
                    if dist[w as usize] == usize::MAX {
                        dist[w as usize] = dist[v as usize] + 1;
                        ecc = ecc.max(dist[w as usize]);
                        next.push(w);
                    }
                }
            }
            frontier = next;
        }
        assert!(ecc >= blocks - 1, "ecc {ecc} too small");
        assert!(ecc <= 3 * blocks, "ecc {ecc} should be O(blocks)");
    }

    #[test]
    fn watts_strogatz_ring_without_rewiring() {
        let m = watts_strogatz(20, 2, 0.0, 1);
        assert!(m.is_symmetric());
        // Pure ring lattice: every vertex has degree 4.
        assert!(m.degrees().iter().all(|&d| d == 4));
        assert!(is_connected(&m));
    }

    #[test]
    fn rmat_shape() {
        let m = rmat(8, 8, 2);
        assert_eq!(m.n_rows(), 256);
        assert!(m.is_symmetric());
        assert!(m.nnz() > 0);
    }
}
