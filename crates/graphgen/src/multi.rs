//! Multi-component matrix classes for the component-parallel ordering path.
//!
//! Real SuiteSparse inputs are frequently disconnected: forests from
//! elimination trees and power grids, multi-body contact problems where each
//! body meshes independently, and block-diagonal KKT systems from decoupled
//! optimization subproblems. These generators produce structural stand-ins
//! for those three shapes — many components of varying sizes — and then
//! apply the usual seeded vertex shuffle so component ids interleave across
//! the whole index range (a component-blind natural ordering, exactly what
//! an assembler would emit).

use crate::grid::{grid2d_5pt, grid3d_7pt};
use crate::shuffle::shuffled;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rcm_sparse::{CooBuilder, CscMatrix, Vidx};

/// Append `block`'s entries to `b` at vertex offset `at`, returning the
/// offset past the block.
fn append_block(b: &mut CooBuilder, block: &CscMatrix, at: usize) -> usize {
    for (r, c) in block.iter_entries() {
        b.push(r + at as Vidx, c + at as Vidx);
    }
    at + block.n_rows()
}

/// A forest of `trees` uniformly random trees with `tree_verts` vertices
/// each, vertex-shuffled. Random attachment (vertex `i` picks a uniform
/// parent among `0..i`) yields shallow, irregular trees; with every
/// component both small and plentiful this is the extreme case for
/// component scheduling — the sequential driver pays one full unvisited
/// minimum-degree scan per tree.
pub fn forest(trees: usize, tree_verts: usize, seed: u64) -> CscMatrix {
    assert!(trees >= 1 && tree_verts >= 1);
    let n = trees * tree_verts;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CooBuilder::with_capacity(n, n, 2 * n);
    for t in 0..trees {
        let at = t * tree_verts;
        for i in 1..tree_verts {
            let parent = rng.gen_range(0..i);
            b.push_sym((at + parent) as Vidx, (at + i) as Vidx);
        }
    }
    shuffled(&b.build(), seed ^ 0xF0F0)
}

/// A multi-body contact-style problem: `bodies` disjoint 2D 5-point meshes
/// of varying side lengths, one body twice the base size (the "giant"
/// component that should run level-parallel while the small bodies batch),
/// vertex-shuffled.
pub fn multi_body(bodies: usize, base_side: usize, seed: u64) -> CscMatrix {
    assert!(bodies >= 1 && base_side >= 1);
    let sides: Vec<usize> = (0..bodies)
        .map(|i| {
            if i == 0 {
                2 * base_side
            } else {
                base_side + (i % 3) * base_side / 4
            }
        })
        .collect();
    let n: usize = sides.iter().map(|s| s * s).sum();
    let mut b = CooBuilder::with_capacity(n, n, 10 * n);
    let mut at = 0;
    for &side in &sides {
        at = append_block(&mut b, &grid2d_5pt(side, side), at);
    }
    shuffled(&b.build(), seed)
}

/// A block-diagonal system: `blocks` identical disjoint 3D 7-point meshes
/// (`side`³ vertices each), vertex-shuffled — the decoupled-subproblem KKT
/// shape. Identical blocks make per-component work perfectly uniform, the
/// best case for whole-component batch scheduling.
pub fn block_diag(blocks: usize, side: usize, seed: u64) -> CscMatrix {
    assert!(blocks >= 1 && side >= 1);
    let block = grid3d_7pt(side, side, side);
    let n = blocks * block.n_rows();
    let mut b = CooBuilder::with_capacity(n, n, blocks * block.nnz());
    let mut at = 0;
    for _ in 0..blocks {
        at = append_block(&mut b, &block, at);
    }
    shuffled(&b.build(), seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcm_sparse::connected_components;

    #[test]
    fn forest_has_one_component_per_tree() {
        let a = forest(12, 30, 1);
        assert_eq!(a.n_rows(), 360);
        let comps = connected_components(&a);
        assert_eq!(comps.count(), 12);
        assert!(comps.sizes.iter().all(|&s| s == 30));
        // Trees: one edge per non-root vertex.
        assert_eq!(a.nnz(), 2 * 12 * 29);
    }

    #[test]
    fn multi_body_has_one_giant_and_varied_smalls() {
        let a = multi_body(6, 8, 2);
        let comps = connected_components(&a);
        assert_eq!(comps.count(), 6);
        assert_eq!(comps.largest(), 16 * 16);
        let smalls = comps.sizes.iter().filter(|&&s| s < 16 * 16).count();
        assert_eq!(smalls, 5);
    }

    #[test]
    fn block_diag_components_are_identical_cubes() {
        let a = block_diag(5, 4, 3);
        let comps = connected_components(&a);
        assert_eq!(comps.count(), 5);
        assert!(comps.sizes.iter().all(|&s| s == 64));
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        assert_eq!(forest(5, 20, 9), forest(5, 20, 9));
        assert_ne!(forest(5, 20, 9), forest(5, 20, 10));
        assert_eq!(multi_body(4, 6, 9), multi_body(4, 6, 9));
        assert_eq!(block_diag(3, 3, 9), block_diag(3, 3, 9));
    }

    #[test]
    fn shuffle_interleaves_component_ids() {
        // After the shuffle, the first component's vertices should not be a
        // contiguous prefix of the id range.
        let a = block_diag(4, 4, 7);
        let comps = connected_components(&a);
        let first: Vec<usize> = (0..a.n_rows())
            .filter(|&v| comps.component_of[v] == comps.component_of[0])
            .collect();
        assert!(first.iter().any(|&v| v >= 64), "ids not interleaved");
    }
}
