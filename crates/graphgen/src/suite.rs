//! The evaluation-suite registry: one entry per matrix in Fig. 3 of the
//! paper, plus `thermal2` (Fig. 1).
//!
//! Each [`SuiteMatrix`] records the statistics the paper publishes for the
//! real matrix (dimensions, nonzeros, pre/post-RCM bandwidth,
//! pseudo-diameter) and provides a scalable synthetic generator reproducing
//! the same structural class. `scale` is the approximate fraction of the
//! paper's row count: `scale = 1.0` regenerates paper-sized matrices (up to
//! hundreds of millions of nonzeros — only for big-memory machines), while
//! the per-matrix [`SuiteMatrix::default_scale`] keeps every matrix around
//! 0.5–2.5 M nonzeros so the full reproduction runs on a laptop.
//!
//! Generators return matrices whose vertices have been deterministically
//! shuffled (seeded) to model unstructured mesh numbering — this is what
//! makes the pre-RCM bandwidths of the paper's table enormous (e.g. 686,979
//! for `ldoor`). Use [`SuiteMatrix::generate_natural`] for lexicographic
//! numbering.

use crate::grid::StencilSpec;
use crate::kkt::kkt_3d;
use crate::random::chained_er;
use crate::shuffle::shuffled;
use rcm_sparse::CscMatrix;

/// Statistics the paper reports for the real matrix (Fig. 3 and §V-B).
#[derive(Clone, Copy, Debug)]
pub struct PaperStats {
    /// Rows (= columns; all matrices are symmetric).
    pub rows: usize,
    /// Nonzeros.
    pub nnz: usize,
    /// Bandwidth of the natural (input) ordering.
    pub bw_pre: usize,
    /// Bandwidth after RCM (the paper's distributed implementation).
    pub bw_post: usize,
    /// Pseudo-diameter (number of BFS levels from a pseudo-peripheral root).
    pub pseudo_diameter: usize,
}

/// One matrix class of the evaluation suite.
#[derive(Clone)]
pub struct SuiteMatrix {
    /// Paper name, e.g. `"ldoor"`.
    pub name: &'static str,
    /// Application domain, from Fig. 3.
    pub description: &'static str,
    /// Published statistics of the real matrix.
    pub paper: PaperStats,
    /// Scale at which the full reproduction runs comfortably on a laptop.
    pub default_scale: f64,
    /// True for the nine Fig. 3 / Fig. 4 matrices (`thermal2` is Fig. 1 only).
    pub in_fig3: bool,
    generator: fn(f64) -> CscMatrix,
    seed: u64,
}

impl SuiteMatrix {
    /// Generate at `scale` (≈ fraction of paper rows) with the natural
    /// lexicographic ordering.
    pub fn generate_natural(&self, scale: f64) -> CscMatrix {
        assert!(scale > 0.0, "scale must be positive");
        (self.generator)(scale)
    }

    /// Generate at `scale` with the registry's deterministic vertex shuffle
    /// (unstructured "natural" numbering, as real meshes arrive).
    pub fn generate(&self, scale: f64) -> CscMatrix {
        shuffled(&self.generate_natural(scale), self.seed ^ 0x5eed)
    }

    /// Generate at the recommended laptop-friendly scale.
    pub fn generate_default(&self) -> CscMatrix {
        self.generate(self.default_scale)
    }
}

/// Linear-dimension factor for a 3D generator so that the node count scales
/// by `scale`.
fn dim3(base: usize, scale: f64) -> usize {
    ((base as f64) * scale.cbrt()).round().max(3.0) as usize
}

/// Linear-dimension factor for a 2D generator.
fn dim2(base: usize, scale: f64) -> usize {
    ((base as f64) * scale.sqrt()).round().max(3.0) as usize
}

/// Row-count scaling for the random-graph generators.
fn count(base: usize, scale: f64) -> usize {
    ((base as f64) * scale).round().max(16.0) as usize
}

fn gen_nd24k(scale: f64) -> CscMatrix {
    // 3D mesh problem with very high connectivity (~400 nnz/row):
    // Chebyshev radius-3 stencil on a cube.
    StencilSpec {
        nx: dim3(42, scale),
        ny: dim3(42, scale),
        nz: dim3(42, scale),
        offsets: StencilSpec::offsets_chebyshev(3),
        dofs: 1,
    }
    .build()
}

fn gen_ldoor(scale: f64) -> CscMatrix {
    // Structural FEM on an elongated thin part: 2 dofs/node, 27-point,
    // 178:52:52 aspect ratio reproduces the large pseudo-diameter.
    StencilSpec {
        nx: dim3(178, scale),
        ny: dim3(52, scale),
        nz: dim3(52, scale),
        offsets: StencilSpec::offsets_27pt(),
        dofs: 2,
    }
    .build()
}

fn gen_serena(scale: f64) -> CscMatrix {
    // Gas-reservoir simulation: medium degree (~46), medium diameter (58).
    // 27-point stencil with ±2 axis skips halves the diameter of the cube.
    StencilSpec {
        nx: dim3(111, scale),
        ny: dim3(111, scale),
        nz: dim3(111, scale),
        offsets: StencilSpec::offsets_27pt_with_skips(),
        dofs: 1,
    }
    .build()
}

fn gen_audikw(scale: f64) -> CscMatrix {
    // Structural problem, 3 dofs/node, 27-point: ~80 nnz/row like audikw_1.
    StencilSpec {
        nx: dim3(68, scale),
        ny: dim3(68, scale),
        nz: dim3(68, scale),
        offsets: StencilSpec::offsets_27pt(),
        dofs: 3,
    }
    .build()
}

fn gen_dielfilter(scale: f64) -> CscMatrix {
    // Higher-order finite elements: like audikw_1 but slightly larger grid.
    StencilSpec {
        nx: dim3(72, scale),
        ny: dim3(72, scale),
        nz: dim3(72, scale),
        offsets: StencilSpec::offsets_27pt(),
        dofs: 3,
    }
    .build()
}

fn gen_flan(scale: f64) -> CscMatrix {
    // 3D model of a steel flange: elongated, 3 dofs, highest diameter of the
    // FEM group (199).
    StencilSpec {
        nx: dim3(200, scale),
        ny: dim3(52, scale),
        nz: dim3(52, scale),
        offsets: StencilSpec::offsets_27pt(),
        dofs: 3,
    }
    .build()
}

fn gen_li7(scale: f64) -> CscMatrix {
    // Nuclear configuration interaction: dense random coupling within
    // excitation blocks, chain of blocks → degree ~320, diameter ~7.
    chained_er(count(664_000, scale), 4, 280, 40, 0x4c17)
}

fn gen_nm7(scale: f64) -> CscMatrix {
    // Nm7: same class, fewer blocks → diameter ~5, degree ~110.
    chained_er(count(4_000_000, scale), 2, 90, 20, 0x0717)
}

fn gen_nlpkkt(scale: f64) -> CscMatrix {
    // Symmetric indefinite KKT matrix: rows = 3 g³ ≈ paper_rows · scale.
    let g = ((78_000_000.0 * scale / 3.0).cbrt()).round().max(4.0) as usize;
    kkt_3d(g)
}

fn gen_thermal2(scale: f64) -> CscMatrix {
    // Unstructured 2D thermal FEM: 5-point grid, ~4 nnz/row like thermal2.
    crate::grid::grid2d_5pt(dim2(1100, scale), dim2(1100, scale))
}

/// The full registry: the nine Fig. 3 matrices followed by `thermal2`.
pub fn suite() -> Vec<SuiteMatrix> {
    vec![
        SuiteMatrix {
            name: "nd24k",
            description: "3D mesh problem",
            paper: PaperStats {
                rows: 72_000,
                nnz: 29_000_000,
                bw_pre: 68_114,
                bw_post: 10_294,
                pseudo_diameter: 14,
            },
            default_scale: 0.05,
            in_fig3: true,
            generator: gen_nd24k,
            seed: 0xd24b,
        },
        SuiteMatrix {
            name: "ldoor",
            description: "structural problem",
            paper: PaperStats {
                rows: 952_000,
                nnz: 42_490_000,
                bw_pre: 686_979,
                bw_post: 9_259,
                pseudo_diameter: 178,
            },
            default_scale: 0.02,
            in_fig3: true,
            generator: gen_ldoor,
            seed: 0x1d00,
        },
        SuiteMatrix {
            name: "Serena",
            description: "gas reservoir simulation",
            paper: PaperStats {
                rows: 1_390_000,
                nnz: 64_100_000,
                bw_pre: 81_578,
                bw_post: 81_218,
                pseudo_diameter: 58,
            },
            default_scale: 0.02,
            in_fig3: true,
            generator: gen_serena,
            seed: 0x5e1e,
        },
        SuiteMatrix {
            name: "audikw_1",
            description: "structural problem",
            paper: PaperStats {
                rows: 943_000,
                nnz: 78_000_000,
                bw_pre: 925_946,
                bw_post: 35_170,
                pseudo_diameter: 82,
            },
            default_scale: 0.015,
            in_fig3: true,
            generator: gen_audikw,
            seed: 0xa0d1,
        },
        SuiteMatrix {
            name: "dielFilterV3real",
            description: "higher-order finite element",
            paper: PaperStats {
                rows: 1_100_000,
                nnz: 89_300_000,
                bw_pre: 1_036_475,
                bw_post: 23_813,
                pseudo_diameter: 84,
            },
            default_scale: 0.015,
            in_fig3: true,
            generator: gen_dielfilter,
            seed: 0xd1e1,
        },
        SuiteMatrix {
            name: "Flan_1565",
            description: "3D model of a steel flange",
            paper: PaperStats {
                rows: 1_600_000,
                nnz: 114_000_000,
                bw_pre: 20_702,
                bw_post: 20_600,
                pseudo_diameter: 199,
            },
            default_scale: 0.015,
            in_fig3: true,
            generator: gen_flan,
            seed: 0xf1a2,
        },
        SuiteMatrix {
            name: "Li7Nmax6",
            description: "nuclear configuration interaction",
            paper: PaperStats {
                rows: 664_000,
                nnz: 212_000_000,
                bw_pre: 663_498,
                bw_post: 490_000,
                pseudo_diameter: 7,
            },
            default_scale: 0.01,
            in_fig3: true,
            generator: gen_li7,
            seed: 0x1147,
        },
        SuiteMatrix {
            name: "Nm7",
            description: "nuclear configuration interaction",
            paper: PaperStats {
                rows: 4_000_000,
                nnz: 437_000_000,
                bw_pre: 4_073_382,
                bw_post: 3_692_599,
                pseudo_diameter: 5,
            },
            default_scale: 0.005,
            in_fig3: true,
            generator: gen_nm7,
            seed: 0x0a07,
        },
        SuiteMatrix {
            name: "nlpkkt240",
            description: "symmetric indefinite KKT matrix",
            paper: PaperStats {
                rows: 78_000_000,
                nnz: 760_000_000,
                bw_pre: 14_169_841,
                bw_post: 361_755,
                pseudo_diameter: 243,
            },
            default_scale: 0.004,
            in_fig3: true,
            generator: gen_nlpkkt,
            seed: 0x2240,
        },
        SuiteMatrix {
            name: "thermal2",
            description: "steady-state thermal FEM (Fig. 1)",
            paper: PaperStats {
                rows: 1_200_000,
                nnz: 4_900_000,
                bw_pre: 1_226_000,
                bw_post: 795,
                pseudo_diameter: 1324,
            },
            default_scale: 0.04,
            in_fig3: false,
            generator: gen_thermal2,
            seed: 0x7e42,
        },
    ]
}

/// Look up a suite entry by paper name (case-insensitive).
pub fn suite_matrix(name: &str) -> Option<SuiteMatrix> {
    suite()
        .into_iter()
        .find(|m| m.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_ten_entries_nine_in_fig3() {
        let s = suite();
        assert_eq!(s.len(), 10);
        assert_eq!(s.iter().filter(|m| m.in_fig3).count(), 9);
    }

    #[test]
    fn lookup_by_name() {
        assert!(suite_matrix("ldoor").is_some());
        assert!(suite_matrix("LDOOR").is_some());
        assert!(suite_matrix("nope").is_none());
    }

    #[test]
    fn tiny_scale_matrices_are_symmetric_and_nonempty() {
        for m in suite() {
            let a = m.generate(0.001);
            assert!(a.nnz() > 0, "{} empty", m.name);
            assert!(a.is_symmetric(), "{} asymmetric", m.name);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let m = suite_matrix("nd24k").unwrap();
        assert_eq!(m.generate(0.002), m.generate(0.002));
    }

    #[test]
    fn shuffle_differs_from_natural() {
        let m = suite_matrix("thermal2").unwrap();
        let nat = m.generate_natural(0.002);
        let shuf = m.generate(0.002);
        assert_eq!(nat.nnz(), shuf.nnz());
        assert_ne!(nat, shuf);
        // Shuffled bandwidth should be much worse than lexicographic.
        assert!(rcm_sparse::matrix_bandwidth(&shuf) > 2 * rcm_sparse::matrix_bandwidth(&nat));
    }

    #[test]
    fn default_scale_row_counts_are_laptop_sized() {
        for m in suite() {
            let a = m.generate_default();
            assert!(
                a.nnz() < 6_000_000,
                "{}: default-scale nnz {} too large",
                m.name,
                a.nnz()
            );
            assert!(a.n_rows() >= 500, "{}: suspiciously small", m.name);
        }
    }

    #[test]
    fn avg_degree_tracks_paper_class() {
        // Degree regime (not exact value) must match: nd24k ~400, ldoor ~45,
        // li7 ~320, nlpkkt ~10.
        let check = |name: &str, lo: f64, hi: f64| {
            let m = suite_matrix(name).unwrap();
            let a = m.generate_default();
            let avg = a.nnz() as f64 / a.n_rows() as f64;
            assert!(
                avg >= lo && avg <= hi,
                "{name}: avg degree {avg} outside [{lo},{hi}]"
            );
        };
        check("nd24k", 150.0, 450.0);
        check("ldoor", 30.0, 60.0);
        check("Li7Nmax6", 150.0, 400.0);
        check("nlpkkt240", 6.0, 14.0);
        check("thermal2", 3.0, 6.0);
    }
}
