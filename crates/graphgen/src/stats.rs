//! Structural statistics of generated matrices.
//!
//! The stand-in generators are validated against three structural knobs
//! (degree regime, diameter regime, frontier-width profile — see the crate
//! docs); this module computes those statistics so tests and EXPERIMENTS.md
//! can report target-vs-achieved per matrix.

use rcm_sparse::{connected_components, CscMatrix, Vidx};

/// Summary statistics of a symmetric pattern matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Vertices.
    pub n: usize,
    /// Stored nonzeros (directed edge slots).
    pub nnz: usize,
    /// Average degree (nnz / n).
    pub avg_degree: f64,
    /// Minimum degree.
    pub min_degree: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// Connected components.
    pub components: usize,
    /// Eccentricity of a pseudo-peripheral vertex of the largest component
    /// (a lower bound on the diameter — the paper's "pseudo-diameter").
    pub pseudo_diameter: usize,
    /// Maximum BFS level width from that vertex.
    pub max_frontier: usize,
}

/// Compute [`GraphStats`]. Cost: a few BFS sweeps over the matrix.
pub fn graph_stats(a: &CscMatrix) -> GraphStats {
    let n = a.n_rows();
    let degrees = a.degrees();
    let comps = connected_components(a);
    // Pick a vertex in the largest component.
    let largest_id = (0..comps.count())
        .max_by_key(|&c| comps.sizes[c])
        .unwrap_or(0) as Vidx;
    let start = (0..n)
        .find(|&v| comps.component_of[v] == largest_id)
        .unwrap_or(0) as Vidx;

    // George–Liu style pseudo-diameter sweep (duplicated in miniature here
    // to keep graphgen independent of rcm-core).
    let (mut root, mut ecc, _) = bfs_ecc(a, start, &degrees);
    let widths;
    loop {
        let (r2, e2, w2) = bfs_ecc(a, root, &degrees);
        if e2 <= ecc {
            widths = w2;
            break;
        }
        ecc = e2;
        root = r2;
    }

    GraphStats {
        n,
        nnz: a.nnz(),
        avg_degree: if n == 0 {
            0.0
        } else {
            a.nnz() as f64 / n as f64
        },
        min_degree: degrees.iter().copied().min().unwrap_or(0) as usize,
        max_degree: degrees.iter().copied().max().unwrap_or(0) as usize,
        components: comps.count(),
        pseudo_diameter: ecc,
        max_frontier: widths,
    }
}

/// One BFS: returns (min-degree vertex of last level, eccentricity, max
/// frontier width).
fn bfs_ecc(a: &CscMatrix, root: Vidx, degrees: &[Vidx]) -> (Vidx, usize, usize) {
    let n = a.n_rows();
    let mut level = vec![-1i32; n];
    level[root as usize] = 0;
    let mut frontier = vec![root];
    let mut ecc = 0usize;
    let mut max_width = 1usize;
    let mut last = frontier.clone();
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &v in &frontier {
            for &w in a.col(v as usize) {
                if level[w as usize] < 0 {
                    level[w as usize] = level[v as usize] + 1;
                    next.push(w);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        ecc += 1;
        max_width = max_width.max(next.len());
        last = next.clone();
        frontier = next;
    }
    let far = last
        .iter()
        .copied()
        .min_by_key(|&w| (degrees[w as usize], w))
        .unwrap_or(root);
    (far, ecc, max_width)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::grid2d_5pt;
    use crate::suite::suite_matrix;

    #[test]
    fn stats_of_a_grid() {
        let a = grid2d_5pt(10, 10);
        let s = graph_stats(&a);
        assert_eq!(s.n, 100);
        assert_eq!(s.components, 1);
        assert_eq!(s.min_degree, 2);
        assert_eq!(s.max_degree, 4);
        // Corner-to-corner Manhattan distance.
        assert_eq!(s.pseudo_diameter, 18);
        assert!(s.max_frontier >= 9);
    }

    #[test]
    fn diameter_regimes_separate_suite_classes() {
        let low = graph_stats(&suite_matrix("Li7Nmax6").unwrap().generate(0.005));
        let high = graph_stats(&suite_matrix("nlpkkt240").unwrap().generate(0.001));
        assert!(
            low.pseudo_diameter * 4 < high.pseudo_diameter,
            "CI matrix diam {} should be far below KKT diam {}",
            low.pseudo_diameter,
            high.pseudo_diameter
        );
    }

    #[test]
    fn empty_graph_stats() {
        let s = graph_stats(&rcm_sparse::CscMatrix::empty(3));
        assert_eq!(s.components, 3);
        assert_eq!(s.pseudo_diameter, 0);
        assert_eq!(s.avg_degree, 0.0);
    }
}
