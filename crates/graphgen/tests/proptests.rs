//! Property-based tests of the generators: structural invariants for
//! arbitrary parameters.

use proptest::prelude::*;
use rcm_graphgen::grid::StencilSpec;
use rcm_graphgen::{
    chained_er, erdos_renyi_connected, random_permutation, shuffled, watts_strogatz,
};
use rcm_sparse::connected_components;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn stencil_matrices_are_symmetric_connected(
        nx in 1usize..8, ny in 1usize..8, nz in 1usize..5, dofs in 1usize..4
    ) {
        let spec = StencilSpec {
            nx, ny, nz,
            offsets: StencilSpec::offsets_7pt(),
            dofs,
        };
        let a = spec.build();
        prop_assert_eq!(a.n_rows(), nx * ny * nz * dofs);
        prop_assert!(a.is_symmetric());
        let c = connected_components(&a);
        // A 7-pt grid with multi-dof cliques is connected unless there is
        // only one node and one dof (no edges — still one component).
        prop_assert!(c.is_connected());
    }

    #[test]
    fn chebyshev_stencil_degree_bound(nx in 2usize..7, r in 1i32..3) {
        let spec = StencilSpec {
            nx, ny: nx, nz: nx,
            offsets: StencilSpec::offsets_chebyshev(r),
            dofs: 1,
        };
        let a = spec.build();
        let bound = (2 * r + 1).pow(3) as u32 - 1;
        prop_assert!(a.degrees().iter().all(|&d| d <= bound));
        // Interior vertex (if the grid is big enough) hits the bound.
        if nx as i32 > 2 * r {
            let mid = nx / 2;
            let idx = (mid * nx + mid) * nx + mid;
            prop_assert_eq!(a.degrees()[idx], bound);
        }
    }

    #[test]
    fn er_graphs_are_connected_for_any_seed(
        n in 2usize..300, extra in 0usize..500, seed in 0u64..1000
    ) {
        let a = erdos_renyi_connected(n, extra, seed);
        prop_assert!(a.is_symmetric());
        prop_assert!(connected_components(&a).is_connected());
    }

    #[test]
    fn chained_er_is_connected_and_deterministic(
        n in 8usize..400, blocks in 1usize..6, intra in 0usize..12, inter in 0usize..6, seed in 0u64..500
    ) {
        prop_assume!(n >= blocks * 2);
        let a = chained_er(n, blocks, intra, inter, seed);
        let b = chained_er(n, blocks, intra, inter, seed);
        prop_assert_eq!(&a, &b);
        prop_assert!(connected_components(&a).is_connected());
    }

    #[test]
    fn watts_strogatz_preserves_edge_budget(
        n in 10usize..200, k in 1usize..4, p in 0.0f64..1.0, seed in 0u64..300
    ) {
        prop_assume!(n > 2 * k);
        let a = watts_strogatz(n, k, p, seed);
        prop_assert!(a.is_symmetric());
        // Rewiring can only merge parallel edges, never create them: at most
        // n·k undirected edges = 2·n·k stored entries.
        prop_assert!(a.nnz() <= 2 * n * k);
        // With no rewiring, exactly the ring lattice.
        if p == 0.0 {
            prop_assert_eq!(a.nnz(), 2 * n * k);
        }
    }

    #[test]
    fn shuffle_preserves_structure(n in 2usize..200, seed in 0u64..500) {
        let a = erdos_renyi_connected(n, n, seed);
        let s = shuffled(&a, seed ^ 0xff);
        prop_assert_eq!(a.nnz(), s.nnz());
        prop_assert!(s.is_symmetric());
        let mut d1 = a.degrees();
        let mut d2 = s.degrees();
        d1.sort_unstable();
        d2.sort_unstable();
        prop_assert_eq!(d1, d2);
    }

    #[test]
    fn random_permutations_are_bijections(n in 0usize..500, seed in 0u64..1000) {
        let p = random_permutation(n, seed);
        prop_assert_eq!(p.len(), n);
        // The Permutation constructor validates; also check determinism.
        prop_assert_eq!(p, random_permutation(n, seed));
    }
}
