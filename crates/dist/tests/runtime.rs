//! Integration tests of the simulated runtime's decomposition edge cases
//! and the SORTPERM baseline contract.

use rcm_dist::{
    block_index, block_range, dist_gather_values, dist_is_nonempty, dist_select, dist_set,
    dist_sortperm, dist_sortperm_samplesort, dist_spmspv, DistCscMatrix, DistDenseVec,
    DistSparseVec, DistSpmspvWorkspace, MachineModel, ProcGrid, SimClock, VecLayout,
};
use rcm_sparse::{CooBuilder, CscMatrix, Label, Select2ndMin, Vidx, UNVISITED};

/// One level-synchronous BFS from `root` composed from the raw primitives
/// (the production driver lives in `rcm_core::driver`; this inline copy
/// pins the primitive contracts the driver depends on).
fn bfs_levels(
    a: &DistCscMatrix,
    root: Vidx,
    ws: &mut DistSpmspvWorkspace<Label>,
    clk: &mut SimClock,
) -> (DistDenseVec<Label>, usize) {
    let mut levels: DistDenseVec<Label> = DistDenseVec::filled(a.layout().clone(), UNVISITED);
    levels.set(root, 0);
    let mut cur = DistSparseVec::singleton(a.layout().clone(), root, 0 as Label);
    let mut ecc = 0usize;
    loop {
        dist_gather_values(&mut cur, &levels, clk);
        let next = dist_spmspv::<Label, Select2ndMin>(a, &cur, ws, clk);
        let mut next = dist_select(&next, &levels, |l| l == UNVISITED, clk);
        if !dist_is_nonempty(&next, clk) {
            return (levels, ecc);
        }
        ecc += 1;
        for part in &mut next.parts {
            for (_, v) in part.iter_mut() {
                *v = ecc as Label;
            }
        }
        dist_set(&mut levels, &next, clk);
        cur = next;
    }
}

fn clock() -> SimClock {
    SimClock::new(MachineModel::edison(), 1)
}

fn path(n: usize) -> CscMatrix {
    let mut b = CooBuilder::new(n, n);
    for v in 0..n - 1 {
        b.push_sym(v as Vidx, (v + 1) as Vidx);
    }
    b.build()
}

// ---------------------------------------------------------------------------
// block_index / block_range edge cases
// ---------------------------------------------------------------------------

#[test]
fn block_decomposition_when_n_not_divisible_by_parts() {
    // 11 elements over 4 parts: 3+3+3+2, remainder spread over the front.
    assert_eq!(block_range(11, 4, 0), (0, 3));
    assert_eq!(block_range(11, 4, 1), (3, 6));
    assert_eq!(block_range(11, 4, 2), (6, 9));
    assert_eq!(block_range(11, 4, 3), (9, 11));
    for idx in 0..11 {
        let part = block_index(11, 4, idx);
        let (s, e) = block_range(11, 4, part);
        assert!((s..e).contains(&idx));
    }
}

#[test]
fn block_decomposition_single_part_owns_everything() {
    assert_eq!(block_range(37, 1, 0), (0, 37));
    for idx in 0..37 {
        assert_eq!(block_index(37, 1, idx), 0);
    }
}

#[test]
fn block_decomposition_more_parts_than_elements() {
    // 3 elements over 7 parts: one element each for the first three parts.
    for part in 0..7 {
        let (s, e) = block_range(3, 7, part);
        assert_eq!(e - s, usize::from(part < 3), "part {part}");
    }
    for idx in 0..3 {
        assert_eq!(block_index(3, 7, idx), idx);
    }
}

#[test]
fn block_decomposition_empty_vector() {
    for parts in [1usize, 4, 9] {
        for part in 0..parts {
            assert_eq!(block_range(0, parts, part), (0, 0));
        }
    }
}

// ---------------------------------------------------------------------------
// 1×1 grid and empty matrix through the full runtime
// ---------------------------------------------------------------------------

#[test]
fn one_by_one_grid_runs_a_full_bfs_without_communication() {
    let a = path(9);
    let grid = ProcGrid::square(1).unwrap();
    let d = DistCscMatrix::from_global(grid, &a, None);
    assert_eq!(d.grid().pr, 1);
    let mut clk = clock();
    let mut ws = DistSpmspvWorkspace::new();

    let (levels, ecc) = bfs_levels(&d, 4, &mut ws, &mut clk);
    assert_eq!(ecc, 4);
    let expect: Vec<Label> = (0..9).map(|v| (v as i64 - 4).abs()).collect();
    assert_eq!(levels.to_global(), expect);
    // A single rank never communicates.
    assert_eq!(clk.messages, 0);
    assert_eq!(clk.breakdown().comm_total(), 0.0);
    assert!(clk.breakdown().compute_total() > 0.0);
}

#[test]
fn empty_matrix_on_any_grid() {
    let a = CscMatrix::empty(0);
    for procs in [1usize, 4, 16] {
        let grid = ProcGrid::square(procs).unwrap();
        let d = DistCscMatrix::from_global(grid, &a, Some(5));
        assert_eq!(d.nnz(), 0);
        assert_eq!(d.layout().max_local_len(), 0);
        let degrees = d.degrees_dvec();
        assert!(degrees.to_global().is_empty());
        let order: DistDenseVec<Label> = DistDenseVec::filled(d.layout().clone(), UNVISITED);
        assert!(order.to_global().is_empty());
        let mut clk = clock();
        assert_eq!(
            rcm_dist::dist_find_unvisited_min_degree(&order, &degrees, &mut clk),
            None
        );
    }
}

#[test]
fn bfs_levels_agree_across_grids_with_uneven_blocks() {
    // n = 13 is not divisible by grid sides 2 or 3.
    let a = path(13);
    let reference: Vec<Label> = (0..13).map(|v| v as Label).collect();
    for procs in [1usize, 4, 9] {
        let d = DistCscMatrix::from_global(ProcGrid::square(procs).unwrap(), &a, None);
        let mut ws = DistSpmspvWorkspace::new();
        let (levels, ecc) = bfs_levels(&d, 0, &mut ws, &mut clock());
        assert_eq!(ecc, 12, "{procs} procs");
        assert_eq!(levels.to_global(), reference, "{procs} procs");
        // The reused workspace grows exactly once per matrix, then every
        // level hits warm buffers (the zero-steady-state-allocation bar).
        assert_eq!(ws.growth_events(), 1, "{procs} procs");
        let _ = bfs_levels(&d, 6, &mut ws, &mut clock());
        assert_eq!(ws.growth_events(), 1, "{procs} procs: second sweep grew");
    }
}

// ---------------------------------------------------------------------------
// SORTPERM: samplesort baseline contract
// ---------------------------------------------------------------------------

#[test]
fn samplesort_matches_bucket_sort_at_higher_cost() {
    // Frontier with duplicate parent labels and duplicate degrees so every
    // tie-break level of (parent, degree, vertex) is exercised.
    let n = 23;
    for procs in [1usize, 4, 9, 16] {
        let layout = VecLayout::new(n, ProcGrid::square(procs).unwrap());
        let degrees: Vec<Vidx> = (0..n as Vidx).map(|v| v % 3).collect();
        let entries: Vec<(Vidx, Label)> = (0..n as Vidx)
            .filter(|v| v % 4 != 2)
            .map(|v| (v, (v % 2) as Label))
            .collect();
        let x = DistSparseVec::from_entries(layout.clone(), entries);
        let d = DistDenseVec::from_global(layout, &degrees);

        let mut bucket_clock = clock();
        let mut sample_clock = clock();
        let (bucket, count_b) = dist_sortperm(&x, &d, (0, 2), 50, &mut bucket_clock);
        let (sample, count_s) = dist_sortperm_samplesort(&x, &d, 50, &mut sample_clock);

        assert_eq!(count_b, count_s);
        let lb: Vec<(Vidx, Label)> = bucket.iter_entries().collect();
        let ls: Vec<(Vidx, Label)> = sample.iter_entries().collect();
        assert_eq!(lb, ls, "{procs} procs: permutations must be identical");
        assert!(
            sample_clock.now() > bucket_clock.now(),
            "{procs} procs: general samplesort must cost more ({} vs {})",
            sample_clock.now(),
            bucket_clock.now()
        );
    }
}
