//! The distributed `SORTPERM` step: assign consecutive labels to a frontier
//! in `(parent label, degree, vertex)` order.
//!
//! Two routes to the bit-identical labeling:
//!
//! * [`dist_sortperm`] — the paper's *specialized bucket sort* (§IV-B).
//!   Parent labels are contiguous (they were assigned consecutively last
//!   level), so every tuple is routed straight to its bucket owner with one
//!   AllToAll and placed by streaming — linear local work, realized here as
//!   the same two-pass counting sort the shared-memory kernels use.
//! * [`dist_sortperm_samplesort`] — the "state-of-the-art general sorting
//!   library" baseline: a PSRS/HykSort-style sample sort that cannot exploit
//!   the bucket structure. Same permutation, strictly higher simulated cost
//!   (comparison sorts plus the extra sampling/splitter collectives).

use crate::clock::SimClock;
use crate::vec::{DistDenseVec, DistSparseVec};
use rcm_sparse::{Label, Vidx};

/// Bytes of one `(parent, degree, vertex)` tuple on the wire.
const TUPLE_BYTES: u64 = 16;
/// Bytes of one `(vertex, label)` result pair on the wire.
const LABEL_BYTES: u64 = 12;

/// `⌈log₂(m)⌉`-ish comparison-sort depth (≥ 1 so costs stay strictly
/// ordered for tiny inputs).
fn lg(m: usize) -> usize {
    (usize::BITS - m.max(1).leading_zeros()) as usize
}

/// Comparison-sort data path (the general-sort baseline): sort
/// `(value, degree, vertex)` lexicographically and hand out labels
/// `nv, nv+1, …`.
fn sortperm_data(
    x: &DistSparseVec<Label>,
    degrees: &DistDenseVec<Vidx>,
    nv: Label,
) -> (DistSparseVec<Label>, usize) {
    assert_eq!(x.layout, degrees.layout, "SORTPERM: layout mismatch");
    let mut tuples: Vec<(Label, Vidx, Vidx)> = x
        .parts
        .iter()
        .enumerate()
        .flat_map(|(rank, part)| {
            let (s, _) = x.layout.local_range(rank);
            part.iter()
                .map(move |&(g, value)| (value, degrees.parts[rank][g as usize - s], g))
        })
        .collect();
    tuples.sort_unstable();
    let count = tuples.len();
    let labeled: Vec<(Vidx, Label)> = tuples
        .iter()
        .enumerate()
        .map(|(k, &(_, _, g))| (g, nv + k as Label))
        .collect();
    (
        DistSparseVec::from_entries(x.layout.clone(), labeled),
        count,
    )
}

/// Bucketed data path of the specialized sort: a two-pass counting sort
/// keyed on the (contiguous) parent label — count, exclusive prefix sum,
/// scatter of `(degree, vertex)` pairs into one flat buffer — followed by a
/// per-bucket `(degree, vertex)` sort. Bit-identical to [`sortperm_data`]'s
/// full lexicographic sort because vertex ids are unique, but the bucket
/// placement is the streaming linear pass the cost model charges for.
fn sortperm_data_counting(
    x: &DistSparseVec<Label>,
    degrees: &DistDenseVec<Vidx>,
    bucket_range: (Label, Label),
    nv: Label,
) -> (DistSparseVec<Label>, usize) {
    assert_eq!(x.layout, degrees.layout, "SORTPERM: layout mismatch");
    let (lo, hi) = bucket_range;
    let nb = (hi - lo).max(0) as usize;
    let mut offs = vec![0usize; nb + 1];
    let mut count = 0usize;
    for part in &x.parts {
        count += part.len();
        for &(_, value) in part {
            offs[(value - lo) as usize + 1] += 1;
        }
    }
    for b in 0..nb {
        offs[b + 1] += offs[b];
    }
    let mut buf = vec![(0 as Vidx, 0 as Vidx); count];
    for (rank, part) in x.parts.iter().enumerate() {
        let (s, _) = x.layout.local_range(rank);
        for &(g, value) in part {
            let b = (value - lo) as usize;
            buf[offs[b]] = (degrees.parts[rank][g as usize - s], g);
            offs[b] += 1;
        }
    }
    let mut start = 0usize;
    for &end in &offs[..nb] {
        buf[start..end].sort_unstable();
        start = end;
    }
    let labeled: Vec<(Vidx, Label)> = buf
        .iter()
        .enumerate()
        .map(|(k, &(_, g))| (g, nv + k as Label))
        .collect();
    (
        DistSparseVec::from_entries(x.layout.clone(), labeled),
        count,
    )
}

/// The paper's specialized distributed bucket sort.
///
/// `bucket_range` is the half-open label range of the previous frontier
/// (the possible parent values); `nv` the first label to assign. Returns
/// the labels as a sparse vector (entries `(vertex, label)`) plus the
/// number of labeled vertices.
pub fn dist_sortperm(
    x: &DistSparseVec<Label>,
    degrees: &DistDenseVec<Vidx>,
    bucket_range: (Label, Label),
    nv: Label,
    clock: &mut SimClock,
) -> (DistSparseVec<Label>, usize) {
    debug_assert!(
        x.iter_entries()
            .all(|(_, v)| v >= bucket_range.0 && v < bucket_range.1),
        "SORTPERM: value outside the declared bucket range"
    );
    let (out, count) = sortperm_data_counting(x, degrees, bucket_range, nv);

    let p = x.layout.nprocs();
    let max_send = x.max_part_nnz();
    // ProcGrid guarantees p >= 1.
    let recv = count.div_ceil(p);
    // Streaming bucket placement: linear in the touched tuples.
    clock.charge_elems(max_send + recv + 1);
    if p > 1 {
        let machine = *clock.machine();
        let t = machine.t_alltoall(p, TUPLE_BYTES * max_send as u64)
            + machine.t_allreduce(p, 8) // ExScan of bucket counts
            + machine.t_alltoall(p, LABEL_BYTES * recv as u64); // labels home
        clock.charge_comm(
            t,
            (2 * p * (p - 1) + p) as u64,
            TUPLE_BYTES * count as u64 + LABEL_BYTES * count as u64,
        );
    }
    (out, count)
}

/// PSRS-style general sample sort over the same tuples — the §IV-B
/// baseline. Identical output to [`dist_sortperm`], strictly higher cost.
pub fn dist_sortperm_samplesort(
    x: &DistSparseVec<Label>,
    degrees: &DistDenseVec<Vidx>,
    nv: Label,
    clock: &mut SimClock,
) -> (DistSparseVec<Label>, usize) {
    let (out, count) = sortperm_data(x, degrees, nv);

    let p = x.layout.nprocs();
    let max_send = x.max_part_nnz();
    // ProcGrid guarantees p >= 1.
    let recv = count.div_ceil(p);
    let samples = (p - 1).max(1).min(count.max(1));
    // Local comparison sort, splitter search, and merge of received runs —
    // each a log factor the bucket sort avoids, plus sample handling.
    clock.charge_elems(
        max_send * lg(max_send) + recv * lg(recv) + samples * lg(samples) + max_send + recv + 2,
    );
    if p > 1 {
        let machine = *clock.machine();
        let t = machine.t_tree(p, TUPLE_BYTES * samples as u64) // gather samples
            + machine.t_tree(p, TUPLE_BYTES * (p as u64 - 1)) // broadcast splitters
            + machine.t_alltoall(p, TUPLE_BYTES * max_send as u64)
            + machine.t_allreduce(p, 8)
            + machine.t_alltoall(p, LABEL_BYTES * recv as u64);
        clock.charge_comm(
            t,
            (2 * p * (p - 1) + 3 * p) as u64,
            TUPLE_BYTES * (count + samples + p) as u64 + LABEL_BYTES * count as u64,
        );
    }
    (out, count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Phase;
    use crate::grid::ProcGrid;
    use crate::machine::MachineModel;
    use crate::vec::VecLayout;

    fn setup(n: usize, procs: usize) -> (DistSparseVec<Label>, DistDenseVec<Vidx>) {
        let layout = VecLayout::new(n, ProcGrid::square(procs).unwrap());
        let degrees: Vec<Vidx> = (0..n as Vidx).map(|v| (v * 7 + 3) % 5).collect();
        let entries: Vec<(Vidx, Label)> = (0..n as Vidx)
            .filter(|v| v % 3 != 1)
            .map(|v| (v, (v % 4) as Label))
            .collect();
        (
            DistSparseVec::from_entries(layout.clone(), entries),
            DistDenseVec::from_global(layout, &degrees),
        )
    }

    fn labels_of(v: &DistSparseVec<Label>) -> Vec<(Vidx, Label)> {
        v.iter_entries().collect()
    }

    #[test]
    fn sortperm_orders_by_value_degree_vertex() {
        let (x, d) = setup(12, 4);
        let mut clock = SimClock::new(MachineModel::edison(), 1);
        clock.set_phase(Phase::OrderingSort);
        let (labels, count) = dist_sortperm(&x, &d, (0, 4), 100, &mut clock);
        assert_eq!(count, x.total_nnz());
        // Reconstruct the tuple order from the assigned labels.
        let mut by_label: Vec<(Label, Vidx)> = labels_of(&labels)
            .into_iter()
            .map(|(g, l)| (l, g))
            .collect();
        by_label.sort_unstable();
        let keys: Vec<(Label, Vidx, Vidx)> = by_label
            .iter()
            .map(|&(_, g)| ((g % 4) as Label, (g * 7 + 3) % 5, g))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "labels must follow (value, degree, vertex)");
        assert_eq!(by_label[0].0, 100);
        assert_eq!(by_label.last().unwrap().0, 100 + count as Label - 1);
    }

    #[test]
    fn samplesort_identical_output_higher_cost_on_all_grids() {
        for procs in [1usize, 4, 9, 16] {
            let (x, d) = setup(20, procs);
            let mut c1 = SimClock::new(MachineModel::edison(), 1);
            let mut c2 = SimClock::new(MachineModel::edison(), 1);
            let (bucket, n1) = dist_sortperm(&x, &d, (0, 4), 7, &mut c1);
            let (sample, n2) = dist_sortperm_samplesort(&x, &d, 7, &mut c2);
            assert_eq!(n1, n2);
            assert_eq!(labels_of(&bucket), labels_of(&sample), "{procs} procs");
            assert!(
                c2.now() > c1.now(),
                "{procs} procs: samplesort {} must cost more than bucket {}",
                c2.now(),
                c1.now()
            );
        }
    }
}
