//! Phase-tagged simulated time accounting: [`Phase`], [`PhaseCost`],
//! [`Breakdown`] and [`SimClock`].
//!
//! Every primitive charges either *compute* (divided by the hybrid thread
//! speedup — compute is the max over ranks, and each rank is a multithreaded
//! process) or *communication* (latency + bandwidth, never divided) to the
//! clock's current phase. The phase taxonomy is Fig. 4's:
//! `{Peripheral, Ordering} × {SpMSpV, Sort, Other}` (the peripheral search
//! never sorts, so five phases appear in plots), plus a `Distribute` phase
//! for initial data movement.

use crate::machine::MachineModel;

/// Fig. 4 phase taxonomy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// SpMSpV calls inside the pseudo-peripheral search (Algorithm 4).
    PeripheralSpmspv,
    /// Everything else in the pseudo-peripheral search.
    PeripheralOther,
    /// SpMSpV calls inside the ordering pass (Algorithm 3).
    OrderingSpmspv,
    /// The distributed SORTPERM inside the ordering pass.
    OrderingSort,
    /// Everything else in the ordering pass.
    OrderingOther,
    /// Initial matrix/vector distribution (not part of the Fig. 4 plots).
    Distribute,
}

impl Phase {
    /// The five phases of the Fig. 4 breakdown, in plot order.
    pub const ALL: [Phase; 5] = [
        Phase::PeripheralSpmspv,
        Phase::PeripheralOther,
        Phase::OrderingSpmspv,
        Phase::OrderingSort,
        Phase::OrderingOther,
    ];

    const COUNT: usize = 6;

    #[inline]
    fn index(self) -> usize {
        match self {
            Phase::PeripheralSpmspv => 0,
            Phase::PeripheralOther => 1,
            Phase::OrderingSpmspv => 2,
            Phase::OrderingSort => 3,
            Phase::OrderingOther => 4,
            Phase::Distribute => 5,
        }
    }
}

/// Compute/communication split of one phase (seconds).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseCost {
    /// Simulated compute seconds (max over ranks, after thread speedup).
    pub compute: f64,
    /// Simulated communication seconds (latency + bandwidth).
    pub comm: f64,
}

impl PhaseCost {
    /// Compute + communication.
    pub fn total(&self) -> f64 {
        self.compute + self.comm
    }
}

/// Per-phase cost table of a finished (or running) simulation.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Breakdown {
    costs: [PhaseCost; Phase::COUNT],
}

impl Breakdown {
    /// Cost pair of one phase.
    pub fn get(&self, phase: Phase) -> PhaseCost {
        self.costs[phase.index()]
    }

    /// Total simulated seconds across all phases.
    pub fn total(&self) -> f64 {
        self.costs.iter().map(PhaseCost::total).sum()
    }

    /// Total compute seconds across all phases.
    pub fn compute_total(&self) -> f64 {
        self.costs.iter().map(|c| c.compute).sum()
    }

    /// Total communication seconds across all phases.
    pub fn comm_total(&self) -> f64 {
        self.costs.iter().map(|c| c.comm).sum()
    }

    /// Combined compute/comm split of all SpMSpV calls (the Fig. 5 view).
    pub fn spmspv_split(&self) -> PhaseCost {
        let p = self.get(Phase::PeripheralSpmspv);
        let o = self.get(Phase::OrderingSpmspv);
        PhaseCost {
            compute: p.compute + o.compute,
            comm: p.comm + o.comm,
        }
    }
}

/// The simulated clock: charges costs to the current [`Phase`] and counts
/// messages/bytes for the communication statistics of
/// `DistRcmResult`-style reports.
#[derive(Clone, Debug)]
pub struct SimClock {
    machine: MachineModel,
    threads: usize,
    speedup: f64,
    phase: Phase,
    breakdown: Breakdown,
    /// Total messages charged so far.
    pub messages: u64,
    /// Total bytes charged so far.
    pub bytes: u64,
}

impl SimClock {
    /// A clock for `machine` with `threads_per_proc` threads per process;
    /// starts in [`Phase::Distribute`].
    pub fn new(machine: MachineModel, threads_per_proc: usize) -> Self {
        SimClock {
            machine,
            threads: threads_per_proc.max(1),
            speedup: machine.thread_speedup(threads_per_proc.max(1)),
            phase: Phase::Distribute,
            breakdown: Breakdown::default(),
            messages: 0,
            bytes: 0,
        }
    }

    /// The machine model being charged against.
    pub fn machine(&self) -> &MachineModel {
        &self.machine
    }

    /// Threads per process used for the compute speedup.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The phase subsequent charges accrue to.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Switch the accounting phase.
    pub fn set_phase(&mut self, phase: Phase) {
        self.phase = phase;
    }

    /// Charge raw compute seconds (already per-rank max; divided by the
    /// thread speedup).
    pub fn charge_compute(&mut self, seconds: f64) {
        self.breakdown.costs[self.phase.index()].compute += seconds / self.speedup;
    }

    /// Charge compute for touching `count` vector elements.
    pub fn charge_elems(&mut self, count: usize) {
        self.charge_compute(self.machine.elem_cost * count as f64);
    }

    /// Charge compute for traversing `count` matrix nonzeros.
    pub fn charge_edges(&mut self, count: usize) {
        self.charge_compute(self.machine.edge_cost * count as f64);
    }

    /// Charge `seconds` of communication plus message/byte statistics.
    pub fn charge_comm(&mut self, seconds: f64, messages: u64, bytes: u64) {
        self.breakdown.costs[self.phase.index()].comm += seconds;
        self.messages += messages;
        self.bytes += bytes;
    }

    /// Simulated seconds elapsed so far.
    pub fn now(&self) -> f64 {
        self.breakdown.total()
    }

    /// Borrow the per-phase table.
    pub fn breakdown(&self) -> &Breakdown {
        &self.breakdown
    }

    /// Consume the clock, yielding the per-phase table.
    pub fn into_breakdown(self) -> Breakdown {
        self.breakdown
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accrue_to_current_phase() {
        let mut clock = SimClock::new(MachineModel::edison(), 1);
        clock.set_phase(Phase::OrderingSpmspv);
        clock.charge_edges(1000);
        clock.set_phase(Phase::OrderingSort);
        clock.charge_comm(1e-3, 5, 640);
        let b = clock.breakdown().clone();
        assert!(b.get(Phase::OrderingSpmspv).compute > 0.0);
        assert_eq!(b.get(Phase::OrderingSpmspv).comm, 0.0);
        assert_eq!(b.get(Phase::OrderingSort).comm, 1e-3);
        assert_eq!(clock.messages, 5);
        assert_eq!(clock.bytes, 640);
        assert!((clock.now() - b.total()).abs() < 1e-15);
    }

    #[test]
    fn thread_speedup_divides_compute_only() {
        let m = MachineModel::edison();
        let mut flat = SimClock::new(m, 1);
        let mut hybrid = SimClock::new(m, 6);
        for clock in [&mut flat, &mut hybrid] {
            clock.set_phase(Phase::OrderingOther);
            clock.charge_elems(10_000);
            clock.charge_comm(2e-6, 1, 8);
        }
        assert!(hybrid.breakdown().compute_total() < flat.breakdown().compute_total());
        assert_eq!(
            hybrid.breakdown().comm_total(),
            flat.breakdown().comm_total()
        );
    }

    #[test]
    fn spmspv_split_combines_both_phases() {
        let mut clock = SimClock::new(MachineModel::edison(), 1);
        clock.set_phase(Phase::PeripheralSpmspv);
        clock.charge_edges(100);
        clock.set_phase(Phase::OrderingSpmspv);
        clock.charge_comm(1e-4, 1, 8);
        let split = clock.breakdown().spmspv_split();
        assert!(split.compute > 0.0);
        assert_eq!(split.comm, 1e-4);
    }
}
