//! The paper's Table-I primitives over distributed containers.
//!
//! Each primitive computes the *exact* sequential result (the simulation is
//! data-deterministic: `dist_rcm` must reproduce `algebraic_rcm` bit for
//! bit) while charging the [`SimClock`] the α–β cost the operation would
//! incur on a real 2D-decomposed run:
//!
//! * compute = **max over ranks** of local work (that is what wall-clock
//!   time follows on an SPMD machine),
//! * communication = latency + bandwidth terms of the collectives the
//!   CombBLAS formulation uses (§IV-A), charged only when `p′ > 1`.

use crate::clock::SimClock;
use crate::matrix::DistCscMatrix;
use crate::vec::{DistDenseVec, DistSparseVec};
use rcm_sparse::{Label, Semiring, VertexBitmap, Vidx, UNVISITED};

/// Bytes of one `(index, value)` pair on the wire.
const ENTRY_BYTES: u64 = 16;

/// Bytes per vertex of the dense frontier-label array the pull expansion
/// allgathers (one `Label` per vertex, no index — the position is the
/// index).
const DENSE_LABEL_BYTES: u64 = 8;

/// Reusable scratch for [`dist_spmspv`] — the distributed mirror of
/// `rcm_sparse::SpmspvWorkspace`: a stamped dense accumulator (values +
/// epoch stamps, so no `O(n)` clearing between calls), the thin-frontier
/// product buffer, and the per-block cost tallies. Own one per BFS/RCM
/// driver and reuse it across iterations; after warm-up a call performs no
/// heap allocation on the dense-accumulator path.
pub struct DistSpmspvWorkspace<T> {
    values: Vec<T>,
    stamp: Vec<u32>,
    epoch: u32,
    touched: Vec<Vidx>,
    products: Vec<(Vidx, T)>,
    block_work: Vec<usize>,
    col_frontier: Vec<usize>,
    row_result: Vec<usize>,
    growth_events: usize,
}

impl<T: Copy + Default> DistSpmspvWorkspace<T> {
    /// Empty workspace; buffers grow to the first call's sizes.
    pub fn new() -> Self {
        DistSpmspvWorkspace {
            values: Vec::new(),
            stamp: Vec::new(),
            epoch: 0,
            touched: Vec::new(),
            products: Vec::new(),
            block_work: Vec::new(),
            col_frontier: Vec::new(),
            row_result: Vec::new(),
            growth_events: 0,
        }
    }

    /// Times any buffer had to grow (first use counts once). A driver that
    /// reuses its workspace across a whole BFS sees exactly one event.
    pub fn growth_events(&self) -> usize {
        self.growth_events
    }

    /// Grow (never shrink) to a matrix with `n` rows on a `pr × pr` grid.
    fn ensure(&mut self, n: usize, pr: usize) {
        let mut grew = false;
        if self.values.len() < n {
            self.values.resize(n, T::default());
            self.stamp.resize(n, 0);
            grew = true;
        }
        if self.block_work.len() < pr * pr {
            self.block_work.resize(pr * pr, 0);
            grew = true;
        }
        if self.col_frontier.len() < pr {
            self.col_frontier.resize(pr, 0);
            self.row_result.resize(pr, 0);
            grew = true;
        }
        if grew {
            self.growth_events += 1;
        }
    }

    /// Start a call: bump the stamp epoch and zero the per-call tallies.
    fn begin(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Stamp wrapped around: reset to keep correctness.
            self.stamp.fill(0);
            self.epoch = 1;
        }
        self.touched.clear();
        self.products.clear();
        self.block_work.fill(0);
        self.col_frontier.fill(0);
        self.row_result.fill(0);
    }
}

impl<T: Copy + Default> Default for DistSpmspvWorkspace<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// `SPMSPV(A, x, SR)`: sparse matrix–sparse vector product over semiring
/// `S` on the 2D-decomposed matrix, accumulating through `ws`.
///
/// Communication pattern (§IV-A): frontier entries are gathered along
/// process columns, block-local products computed, and partial results
/// merged along process rows, then scattered to the vector owners. Compute
/// is the maximum per-block traversal work.
pub fn dist_spmspv<T, S>(
    a: &DistCscMatrix,
    x: &DistSparseVec<T>,
    ws: &mut DistSpmspvWorkspace<T>,
    clock: &mut SimClock,
) -> DistSparseVec<T>
where
    T: Copy + Default,
    S: Semiring<T>,
{
    let layout = a.layout();
    assert_eq!(*layout, x.layout, "SpMSpV: layout mismatch");
    let n = layout.len();
    let pr = a.grid().pr;
    let p = layout.nprocs();
    ws.ensure(n, pr);
    ws.begin();

    // --- data + per-block work tally -----------------------------------
    // Thin frontiers (the common case on high-diameter matrices: one BFS
    // level touches few vertices) use a sort-merge accumulator whose cost
    // follows the traversed work; fat frontiers amortize the stamped dense
    // accumulator. Either way the semiring's associative/commutative `add`
    // makes the result independent of merge order.
    let dense = n > 0 && x.total_nnz() >= n / 64;
    for (g, xv) in x.iter_entries() {
        let jc = a.strip_of(g);
        ws.col_frontier[jc] += 1;
        let lc = g as usize - a.strip_start(jc);
        let prod = S::multiply(xv);
        for ir in 0..pr {
            let col = a.block(ir, jc).col(lc);
            if col.is_empty() {
                continue;
            }
            ws.block_work[ir * pr + jc] += col.len();
            let r0 = a.strip_start(ir) as Vidx;
            for &lr in col {
                let r = (r0 + lr) as usize;
                if dense {
                    if ws.stamp[r] == ws.epoch {
                        ws.values[r] = S::add(ws.values[r], prod);
                    } else {
                        ws.stamp[r] = ws.epoch;
                        ws.values[r] = prod;
                        ws.touched.push(r as Vidx);
                    }
                } else {
                    ws.products.push((r as Vidx, prod));
                }
            }
        }
    }

    let mut out = DistSparseVec::empty(layout.clone());
    if dense {
        ws.touched.sort_unstable();
        for &g in &ws.touched {
            out.parts[layout.owner(g)].push((g, ws.values[g as usize]));
            ws.row_result[a.strip_of(g)] += 1;
        }
    } else {
        ws.products.sort_unstable_by_key(|&(g, _)| g);
        let mut it = ws.products.iter().copied().peekable();
        while let Some((g, mut v)) = it.next() {
            while let Some(&(g2, v2)) = it.peek() {
                if g2 != g {
                    break;
                }
                v = S::add(v, v2);
                it.next();
            }
            out.parts[layout.owner(g)].push((g, v));
            ws.row_result[a.strip_of(g)] += 1;
        }
    }

    // --- cost -----------------------------------------------------------
    let max_block_work = ws.block_work.iter().copied().max().unwrap_or(0);
    clock.charge_edges(max_block_work);
    if p > 1 {
        let machine = *clock.machine();
        let max_frontier = ws.col_frontier.iter().copied().max().unwrap_or(0) as u64;
        let max_result = ws.row_result.iter().copied().max().unwrap_or(0) as u64;
        // Gather x along columns, reduce partials along rows, scatter to
        // vector owners (folded into the reduce volume).
        let t = machine.t_tree(pr, ENTRY_BYTES * max_frontier)
            + machine.t_tree(pr, ENTRY_BYTES * max_result);
        clock.charge_comm(t, 2 * p as u64, ENTRY_BYTES * (max_frontier + max_result));
    }
    out
}

/// Pull (bottom-up) expansion fused with `SELECT`: for every candidate row
/// `g` (a set bit in `cands`), the semiring-sum of `S::multiply(x[w])` over
/// `g`'s frontier neighbours — the direction-optimizing dual of
/// [`dist_spmspv`] for symmetric patterns.
///
/// **Data path.** Bit-identical to
/// `dist_select(dist_spmspv(a, x), mask, pred)` when `cands` holds exactly
/// the rows the mask would keep: for a symmetric `A`, scanning the column
/// `A(:, g)` enumerates exactly the frontier columns whose push expansion
/// reaches `g`, and the semiring's associative/commutative `add` makes the
/// merge order irrelevant.
///
/// **Cost model.** The communication is the Beamer-style trade: instead of
/// shipping `(index, value)` pairs proportional to the frontier
/// ([`dist_spmspv`]'s gather/reduce trees), every process column
/// **allgathers the dense frontier-label array** for its strip and the
/// partial row minima are reduced densely — volume `Θ(n/√p′)`
/// (`DENSE_LABEL_BYTES = 8` per vertex) *independent of `nnz(x)`*, which wins
/// exactly when the frontier is a large fraction of the matrix. Compute is
/// the max over blocks of the scanned candidate-row adjacencies, charged at
/// the *streaming* element rate (`elem_cost`) rather than the irregular
/// edge rate: the pull scan reads each candidate row's adjacency
/// sequentially and probes a dense array, with none of push's scattered
/// accumulator writes. The candidate sweep itself is a 64-way word scan of
/// the unvisited bitmap (`⌈n/p′/64⌉` words per rank), so a fully visited
/// word costs one compare instead of 64 dense-label loads — the shared-
/// memory kernels' trick, reflected here in the `div_ceil(64)` term.
pub fn dist_spmspv_pull<T, S>(
    a: &DistCscMatrix,
    x: &DistSparseVec<T>,
    cands: &VertexBitmap,
    ws: &mut DistSpmspvWorkspace<T>,
    clock: &mut SimClock,
) -> DistSparseVec<T>
where
    T: Copy + Default,
    S: Semiring<T>,
{
    let layout = a.layout();
    assert_eq!(*layout, x.layout, "pull SpMSpV: frontier layout mismatch");
    let n = layout.len();
    assert!(
        cands.len() >= n,
        "pull SpMSpV: candidate bitmap shorter than the matrix"
    );
    let pr = a.grid().pr;
    let p = layout.nprocs();
    ws.ensure(n, pr);
    ws.begin();

    // --- scatter the frontier into the (allgathered) dense label array ---
    for (g, xv) in x.iter_entries() {
        let gi = g as usize;
        ws.stamp[gi] = ws.epoch;
        ws.values[gi] = xv;
    }

    // --- candidate row scan, per vector owner -----------------------------
    let mut out = DistSparseVec::empty(layout.clone());
    for rank in 0..p {
        let (s, e) = layout.local_range(rank);
        for g in cands.ones_in(s..e.min(n)) {
            let g = g as usize;
            // Column A(:, g) = row g's neighbours (symmetric pattern),
            // spread over the pr blocks of column strip jc.
            let jc = a.strip_of(g as Vidx);
            let lc = g - a.strip_start(jc);
            let mut acc = S::identity();
            let mut found = false;
            for ir in 0..pr {
                let col = a.block(ir, jc).col(lc);
                if col.is_empty() {
                    continue;
                }
                ws.block_work[ir * pr + jc] += col.len();
                let r0 = a.strip_start(ir);
                for &lr in col {
                    let w = r0 + lr as usize;
                    if ws.stamp[w] == ws.epoch {
                        acc = S::add(acc, S::multiply(ws.values[w]));
                        found = true;
                    }
                }
            }
            if found {
                out.parts[rank].push((g as Vidx, acc));
            }
        }
    }

    // --- cost -------------------------------------------------------------
    let max_block_work = ws.block_work.iter().copied().max().unwrap_or(0);
    // Streaming candidate-row scans plus the word-level bitmap sweep.
    clock.charge_elems(max_block_work + layout.max_local_len().div_ceil(64));
    if p > 1 {
        let machine = *clock.machine();
        let dense_bytes = DENSE_LABEL_BYTES * layout.max_local_len() as u64;
        // Allgather the dense frontier labels along process columns, reduce
        // dense partial minima along process rows.
        let t = 2.0 * machine.t_tree(pr, dense_bytes);
        clock.charge_comm(t, 2 * p as u64, 2 * dense_bytes);
    }
    out
}

/// `SELECT(x, y, pred)`: keep entries of `x` whose dense companion value in
/// `y` satisfies `pred`. Purely rank-local (the layouts are aligned).
pub fn dist_select<T, Y>(
    x: &DistSparseVec<T>,
    y: &DistDenseVec<Y>,
    pred: impl Fn(Y) -> bool,
    clock: &mut SimClock,
) -> DistSparseVec<T>
where
    T: Copy,
    Y: Copy,
{
    assert_eq!(x.layout, y.layout, "SELECT: layout mismatch");
    clock.charge_elems(x.max_part_nnz());
    let parts = x
        .parts
        .iter()
        .enumerate()
        .map(|(rank, part)| {
            let (s, _) = x.layout.local_range(rank);
            part.iter()
                .copied()
                .filter(|&(g, _)| pred(y.parts[rank][g as usize - s]))
                .collect()
        })
        .collect();
    DistSparseVec {
        layout: x.layout.clone(),
        parts,
    }
}

/// `SET(y, x)` (dense side): overwrite `y[i]` with `x[i]` for every stored
/// entry of `x`. Purely rank-local.
pub fn dist_set<T: Copy>(y: &mut DistDenseVec<T>, x: &DistSparseVec<T>, clock: &mut SimClock) {
    assert_eq!(y.layout, x.layout, "SET: layout mismatch");
    clock.charge_elems(x.max_part_nnz());
    for (rank, part) in x.parts.iter().enumerate() {
        let (s, _) = x.layout.local_range(rank);
        for &(g, v) in part {
            y.parts[rank][g as usize - s] = v;
        }
    }
}

/// `SET(x, y)` (sparse side): refresh the values of `x` from its dense
/// companion `y` (Algorithm 3 line 6). Purely rank-local.
pub fn dist_gather_values<T: Copy>(
    x: &mut DistSparseVec<T>,
    y: &DistDenseVec<T>,
    clock: &mut SimClock,
) {
    assert_eq!(x.layout, y.layout, "SET: layout mismatch");
    clock.charge_elems(x.max_part_nnz());
    for (rank, part) in x.parts.iter_mut().enumerate() {
        let (s, _) = x.layout.local_range(rank);
        for (g, v) in part.iter_mut() {
            *v = y.parts[rank][*g as usize - s];
        }
    }
}

/// Frontier-emptiness test (`L_next = ∅`, the loop exit of Algorithms 3
/// and 4): a 1-byte AllReduce when distributed.
pub fn dist_is_nonempty<T: Copy>(x: &DistSparseVec<T>, clock: &mut SimClock) -> bool {
    let p = x.layout.nprocs();
    if p > 1 {
        let machine = *clock.machine();
        clock.charge_comm(machine.t_allreduce(p, 8), p as u64, 8);
    }
    !x.is_empty()
}

/// `REDUCE(x, keys, argmin)`: the stored index of `x` minimizing
/// `(keys[i], i)` — Algorithm 4's minimum-degree pick from the last BFS
/// level. An AllReduce over `(key, index)` pairs when distributed.
pub fn dist_argmin<T: Copy>(
    x: &DistSparseVec<T>,
    keys: &DistDenseVec<Vidx>,
    clock: &mut SimClock,
) -> Option<Vidx> {
    assert_eq!(x.layout, keys.layout, "REDUCE: layout mismatch");
    clock.charge_elems(x.max_part_nnz());
    let p = x.layout.nprocs();
    if p > 1 {
        let machine = *clock.machine();
        clock.charge_comm(machine.t_allreduce(p, 8), p as u64, 8);
    }
    let mut best: Option<(Vidx, Vidx)> = None;
    for (rank, part) in x.parts.iter().enumerate() {
        let (s, _) = x.layout.local_range(rank);
        for &(g, _) in part {
            let key = (keys.parts[rank][g as usize - s], g);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
    }
    best.map(|(_, g)| g)
}

/// Seed selection for the next connected component: the unvisited vertex
/// (order value `-1`) of minimum `(degree, id)`. A local scan plus an
/// AllReduce when distributed.
pub fn dist_find_unvisited_min_degree(
    order: &DistDenseVec<Label>,
    degrees: &DistDenseVec<Vidx>,
    clock: &mut SimClock,
) -> Option<Vidx> {
    assert_eq!(order.layout, degrees.layout, "layout mismatch");
    clock.charge_elems(order.layout.max_local_len());
    let p = order.layout.nprocs();
    if p > 1 {
        let machine = *clock.machine();
        clock.charge_comm(machine.t_allreduce(p, 8), p as u64, 8);
    }
    let mut best: Option<(Vidx, Vidx)> = None;
    for (rank, part) in order.parts.iter().enumerate() {
        let (s, _) = order.layout.local_range(rank);
        for (offset, &label) in part.iter().enumerate() {
            if label == UNVISITED {
                let g = (s + offset) as Vidx;
                let key = (degrees.parts[rank][offset], g);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
        }
    }
    best.map(|(_, g)| g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::ProcGrid;
    use crate::machine::MachineModel;
    use crate::vec::VecLayout;
    use rcm_sparse::{spmspv_ref, CooBuilder, CscMatrix, Select2ndMin, SparseVec};

    fn clock() -> SimClock {
        SimClock::new(MachineModel::edison(), 1)
    }

    fn figure2_matrix() -> CscMatrix {
        let mut b = CooBuilder::new(8, 8);
        for (u, v) in [
            (0, 1),
            (0, 4),
            (1, 2),
            (1, 3),
            (4, 2),
            (4, 5),
            (2, 6),
            (5, 6),
            (3, 7),
        ] {
            b.push_sym(u, v);
        }
        b.build()
    }

    #[test]
    fn spmspv_matches_sequential_on_every_grid() {
        let a = figure2_matrix();
        let entries = vec![(4 as Vidx, 2 as Label), (1, 3)];
        let reference =
            spmspv_ref::<Label, Select2ndMin>(&a, &SparseVec::from_entries(8, entries.clone()));
        for procs in [1usize, 4, 9, 16] {
            let grid = ProcGrid::square(procs).unwrap();
            let d = DistCscMatrix::from_global(grid, &a, None);
            let x = DistSparseVec::from_entries(d.layout().clone(), entries.clone());
            let mut clk = clock();
            let mut ws = DistSpmspvWorkspace::new();
            let y = dist_spmspv::<Label, Select2ndMin>(&d, &x, &mut ws, &mut clk);
            let got: Vec<(Vidx, Label)> = y.iter_entries().collect();
            assert_eq!(got, reference.entries().to_vec(), "{procs} procs");
            if procs == 1 {
                assert_eq!(clk.messages, 0);
            } else {
                assert!(clk.messages > 0);
                assert!(clk.breakdown().comm_total() > 0.0);
            }
        }
    }

    #[test]
    fn spmspv_workspace_reuse_is_clean_and_allocation_free() {
        let a = figure2_matrix();
        let d = DistCscMatrix::from_global(ProcGrid::square(4).unwrap(), &a, None);
        let mut ws = DistSpmspvWorkspace::new();
        let mut clk = clock();
        // Dense-path input (nnz >= n/64 trips the dense accumulator).
        let x1 = DistSparseVec::from_entries(d.layout().clone(), vec![(4 as Vidx, 2 as Label)]);
        let first: Vec<_> = dist_spmspv::<Label, Select2ndMin>(&d, &x1, &mut ws, &mut clk)
            .iter_entries()
            .collect();
        assert_eq!(ws.growth_events(), 1, "first call grows the buffers");
        // Different frontier: stale stamps must not leak values across calls.
        let x2 = DistSparseVec::from_entries(d.layout().clone(), vec![(3 as Vidx, 9 as Label)]);
        let second: Vec<_> = dist_spmspv::<Label, Select2ndMin>(&d, &x2, &mut ws, &mut clk)
            .iter_entries()
            .collect();
        assert_eq!(second, vec![(1, 9), (7, 9)]);
        // Same input as the first call: identical result, zero growth.
        for _ in 0..10 {
            let again: Vec<_> = dist_spmspv::<Label, Select2ndMin>(&d, &x1, &mut ws, &mut clk)
                .iter_entries()
                .collect();
            assert_eq!(again, first);
        }
        assert_eq!(ws.growth_events(), 1, "steady state must not allocate");
    }

    #[test]
    fn pull_matches_push_plus_select_on_every_grid() {
        let a = figure2_matrix();
        let entries = vec![(4 as Vidx, 2 as Label), (1, 3)];
        // Mask: a, d visited (label >= 0), the rest unvisited.
        let mask_global: Vec<Label> = vec![0, UNVISITED, UNVISITED, 1, 2, UNVISITED, UNVISITED, 3];
        let mut cands = VertexBitmap::new(mask_global.len());
        for (v, &l) in mask_global.iter().enumerate() {
            if l == UNVISITED {
                cands.insert(v as Vidx);
            }
        }
        for procs in [1usize, 4, 9, 16] {
            let grid = ProcGrid::square(procs).unwrap();
            let d = DistCscMatrix::from_global(grid, &a, None);
            let x = DistSparseVec::from_entries(d.layout().clone(), entries.clone());
            let mask = DistDenseVec::from_global(d.layout().clone(), &mask_global);
            let mut ws = DistSpmspvWorkspace::new();
            let mut clk = clock();
            let push = dist_spmspv::<Label, Select2ndMin>(&d, &x, &mut ws, &mut clk);
            let selected = dist_select(&push, &mask, |l| l == UNVISITED, &mut clk);
            let expect: Vec<_> = selected.iter_entries().collect();
            let mut pull_clk = clock();
            let pull =
                dist_spmspv_pull::<Label, Select2ndMin>(&d, &x, &cands, &mut ws, &mut pull_clk);
            let got: Vec<_> = pull.iter_entries().collect();
            assert_eq!(got, expect, "{procs} procs");
            if procs == 1 {
                assert_eq!(pull_clk.messages, 0);
            } else {
                assert!(pull_clk.messages > 0);
                assert!(pull_clk.breakdown().comm_total() > 0.0);
            }
        }
    }

    #[test]
    fn pull_comm_is_dense_and_frontier_independent() {
        // The Beamer trade the model must reflect: pull's communication
        // volume depends on n (dense allgather), not on the frontier size,
        // while push's grows with the frontier.
        let n = 64usize;
        let mut b = CooBuilder::new(n, n);
        for v in 0..n - 1 {
            b.push_sym(v as Vidx, (v + 1) as Vidx);
        }
        let a = b.build();
        let d = DistCscMatrix::from_global(ProcGrid::square(4).unwrap(), &a, None);
        let mut cands = VertexBitmap::new(0);
        cands.reset_ones(n);
        let mut ws = DistSpmspvWorkspace::new();
        let mut bytes = Vec::new();
        for nnz in [1usize, 32] {
            let entries: Vec<(Vidx, Label)> = (0..nnz).map(|k| (k as Vidx, k as Label)).collect();
            let x = DistSparseVec::from_entries(d.layout().clone(), entries);
            let mut clk = clock();
            let _ = dist_spmspv_pull::<Label, Select2ndMin>(&d, &x, &cands, &mut ws, &mut clk);
            bytes.push(clk.bytes);
        }
        assert_eq!(bytes[0], bytes[1], "pull volume must not track nnz(x)");
    }

    #[test]
    fn select_set_gather_are_consistent() {
        let grid = ProcGrid::square(4).unwrap();
        let layout = VecLayout::new(10, grid);
        let mut clk = clock();
        let mut dense: DistDenseVec<Label> = DistDenseVec::filled(layout.clone(), UNVISITED);
        let x = DistSparseVec::from_entries(
            layout.clone(),
            vec![(0 as Vidx, 5 as Label), (3, 6), (7, 7), (9, 8)],
        );
        let kept = dist_select(&x, &dense, |v| v == UNVISITED, &mut clk);
        assert_eq!(kept.total_nnz(), 4);
        dist_set(&mut dense, &x, &mut clk);
        let kept2 = dist_select(&x, &dense, |v| v == UNVISITED, &mut clk);
        assert!(kept2.is_empty());
        let mut probe = x.clone();
        dist_gather_values(&mut probe, &dense, &mut clk);
        let vals: Vec<Label> = probe.iter_entries().map(|(_, v)| v).collect();
        assert_eq!(vals, vec![5, 6, 7, 8]);
    }

    #[test]
    fn argmin_breaks_ties_toward_smaller_vertex() {
        let grid = ProcGrid::square(4).unwrap();
        let layout = VecLayout::new(8, grid);
        let degrees = DistDenseVec::from_global(layout.clone(), &[3, 1, 2, 1, 9, 1, 4, 0]);
        let x = DistSparseVec::from_entries(
            layout.clone(),
            vec![(1 as Vidx, 0 as Label), (3, 0), (5, 0), (6, 0)],
        );
        let mut clk = clock();
        assert_eq!(dist_argmin(&x, &degrees, &mut clk), Some(1));
        let empty: DistSparseVec<Label> = DistSparseVec::empty(layout);
        assert_eq!(dist_argmin(&empty, &degrees, &mut clk), None);
    }

    #[test]
    fn find_unvisited_scans_globally() {
        let grid = ProcGrid::square(4).unwrap();
        let layout = VecLayout::new(9, grid);
        let degrees = DistDenseVec::from_global(layout.clone(), &[5, 4, 3, 2, 1, 2, 3, 4, 5]);
        let mut order: DistDenseVec<Label> = DistDenseVec::filled(layout, UNVISITED);
        let mut clk = clock();
        assert_eq!(
            dist_find_unvisited_min_degree(&order, &degrees, &mut clk),
            Some(4)
        );
        for g in 0..9 {
            order.set(g, 0);
        }
        assert_eq!(
            dist_find_unvisited_min_degree(&order, &degrees, &mut clk),
            None
        );
    }

    #[test]
    fn single_rank_primitives_charge_no_comm() {
        let grid = ProcGrid::square(1).unwrap();
        let layout = VecLayout::new(6, grid);
        let degrees = DistDenseVec::from_global(layout.clone(), &[1, 1, 1, 1, 1, 1]);
        let x: DistSparseVec<Label> =
            DistSparseVec::from_entries(layout.clone(), vec![(2, 0), (4, 0)]);
        let mut clk = clock();
        assert!(dist_is_nonempty(&x, &mut clk));
        let _ = dist_argmin(&x, &degrees, &mut clk);
        assert_eq!(clk.messages, 0);
        assert_eq!(clk.breakdown().comm_total(), 0.0);
        assert!(clk.breakdown().compute_total() > 0.0);
    }
}
