//! The 2D block-decomposed distributed pattern matrix.
//!
//! `DistCscMatrix::from_global` distributes a symmetric pattern matrix over
//! the `√p′ × √p′` grid: process `(i, j)` owns the sub-block with rows in
//! row-strip `i` and columns in column-strip `j` (strips are the balanced
//! contiguous [`crate::grid::block_range`] split of `0..n` into `√p′`
//! parts). An optional §IV-A load-balance permutation relabels vertices
//! *internally* before distribution — it depends only on `(n, seed)`, never
//! on the grid, so a fixed seed yields identical orderings on every grid
//! size. [`DistCscMatrix::to_original`] maps results back to original ids.

use crate::clock::{Phase, SimClock};
use crate::grid::{block_index, block_range, ProcGrid};
use crate::vec::{DistDenseVec, VecLayout};
use rcm_sparse::{CscMatrix, Permutation, Vidx};

/// Deterministic Fisher–Yates permutation from a 64-bit seed (SplitMix64
/// stream; independent of any external RNG crate so the runtime stays
/// dependency-free).
fn seeded_permutation(n: usize, seed: u64) -> Permutation {
    let mut state = seed ^ 0x9E3779B97F4A7C15;
    let mut next = move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    let mut v: Vec<Vidx> = (0..n as Vidx).collect();
    for i in (1..n).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        v.swap(i, j);
    }
    Permutation::from_new_of_old(v).expect("Fisher-Yates yields a bijection")
}

/// A symmetric pattern matrix distributed in 2D blocks over a process grid.
#[derive(Clone, Debug)]
pub struct DistCscMatrix {
    grid: ProcGrid,
    layout: VecLayout,
    /// `pr × pr` blocks in row-major order (`blocks[ir * pr + jc]`), each in
    /// block-local coordinates.
    blocks: Vec<CscMatrix>,
    /// Strip boundaries shared by rows and columns (`pr + 1` entries).
    strip_starts: Vec<usize>,
    /// Graph degrees of the (internally relabeled) vertices.
    degrees: Vec<Vidx>,
    /// `original id → internal id`, present when a balance seed was used.
    balance: Option<Permutation>,
    nnz: usize,
}

impl DistCscMatrix {
    /// Distribute `a` (square, symmetric pattern) over `grid`, optionally
    /// applying the §IV-A random load-balance relabeling drawn from
    /// `balance_seed`.
    pub fn from_global(grid: ProcGrid, a: &CscMatrix, balance_seed: Option<u64>) -> Self {
        assert_eq!(a.n_rows(), a.n_cols(), "distributed matrix must be square");
        let n = a.n_rows();
        let pr = grid.pr;
        let balance = balance_seed.map(|seed| seeded_permutation(n, seed));
        let internal_owned;
        let internal: &CscMatrix = match &balance {
            Some(p) => {
                internal_owned = a.permute_sym(p);
                &internal_owned
            }
            None => a,
        };

        let strip_starts: Vec<usize> = (0..pr)
            .map(|s| block_range(n, pr, s).0)
            .chain(std::iter::once(n))
            .collect();
        let mut blocks = Vec::with_capacity(pr * pr);
        for ir in 0..pr {
            let (r0, r1) = (strip_starts[ir], strip_starts[ir + 1]);
            for jc in 0..pr {
                let (c0, c1) = (strip_starts[jc], strip_starts[jc + 1]);
                blocks.push(internal.sub_block(r0, r1, c0, c1));
            }
        }

        DistCscMatrix {
            grid,
            layout: VecLayout::new(n, grid),
            blocks,
            strip_starts,
            degrees: internal.degrees(),
            balance,
            nnz: internal.nnz(),
        }
    }

    /// The process grid.
    pub fn grid(&self) -> ProcGrid {
        self.grid
    }

    /// The vector layout matching this matrix's dimension and grid.
    pub fn layout(&self) -> &VecLayout {
        &self.layout
    }

    /// Matrix dimension `n`.
    pub fn n_rows(&self) -> usize {
        self.layout.len()
    }

    /// Total stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// The block owned by process `(ir, jc)`, in block-local coordinates.
    pub fn block(&self, ir: usize, jc: usize) -> &CscMatrix {
        &self.blocks[ir * self.grid.pr + jc]
    }

    /// Row/column strip index owning global index `g`.
    #[inline]
    pub fn strip_of(&self, g: Vidx) -> usize {
        block_index(self.layout.len(), self.grid.pr, g as usize)
    }

    /// Start offset of strip `s`.
    #[inline]
    pub fn strip_start(&self, s: usize) -> usize {
        self.strip_starts[s]
    }

    /// The §IV-A balance relabeling (`original → internal`), if any.
    pub fn balance(&self) -> Option<&Permutation> {
        self.balance.as_ref()
    }

    /// Internal-id graph degrees as a distributed dense vector, charging the
    /// distribution cost to the clock when one is supplied via
    /// [`DistCscMatrix::degrees_dvec_with_clock`].
    pub fn degrees_dvec(&self) -> DistDenseVec<Vidx> {
        DistDenseVec::from_global(self.layout.clone(), &self.degrees)
    }

    /// [`DistCscMatrix::degrees_dvec`] plus a [`Phase::Distribute`] charge.
    pub fn degrees_dvec_with_clock(&self, clock: &mut SimClock) -> DistDenseVec<Vidx> {
        let phase = clock.phase();
        clock.set_phase(Phase::Distribute);
        clock.charge_elems(self.layout.max_local_len());
        clock.set_phase(phase);
        self.degrees_dvec()
    }

    /// Map an internal-id-indexed label array back to original vertex ids:
    /// `out[original] = labels_internal[internal(original)]`.
    pub fn to_original(&self, labels_internal: &[Vidx]) -> Vec<Vidx> {
        assert_eq!(labels_internal.len(), self.layout.len());
        match &self.balance {
            None => labels_internal.to_vec(),
            Some(p) => (0..labels_internal.len())
                .map(|orig| labels_internal[p.new_of(orig as Vidx) as usize])
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcm_sparse::CooBuilder;

    fn path(n: usize) -> CscMatrix {
        let mut b = CooBuilder::new(n, n);
        for v in 0..n - 1 {
            b.push_sym(v as Vidx, (v + 1) as Vidx);
        }
        b.build()
    }

    #[test]
    fn blocks_tile_the_matrix() {
        let a = path(13);
        for procs in [1usize, 4, 9, 16] {
            let grid = ProcGrid::square(procs).unwrap();
            let d = DistCscMatrix::from_global(grid, &a, None);
            let total: usize = (0..grid.pr)
                .flat_map(|ir| (0..grid.pr).map(move |jc| (ir, jc)))
                .map(|(ir, jc)| d.block(ir, jc).nnz())
                .sum();
            assert_eq!(total, a.nnz(), "{procs} procs");
            assert_eq!(d.nnz(), a.nnz());
        }
    }

    #[test]
    fn degrees_match_global() {
        let a = path(10);
        let d = DistCscMatrix::from_global(ProcGrid::square(4).unwrap(), &a, None);
        assert_eq!(d.degrees_dvec().to_global(), a.degrees());
    }

    #[test]
    fn balance_is_grid_independent_and_reversible() {
        let a = path(17);
        let d4 = DistCscMatrix::from_global(ProcGrid::square(4).unwrap(), &a, Some(9));
        let d9 = DistCscMatrix::from_global(ProcGrid::square(9).unwrap(), &a, Some(9));
        assert_eq!(d4.balance(), d9.balance());
        // to_original inverts the relabeling: labeling internal vertex k with
        // label k maps back to the permutation itself.
        let ident: Vec<Vidx> = (0..17).collect();
        let back = d4.to_original(&ident);
        assert_eq!(&back, d4.balance().unwrap().as_new_of_old());
    }

    #[test]
    fn empty_matrix_distributes() {
        let a = CscMatrix::empty(0);
        let d = DistCscMatrix::from_global(ProcGrid::square(4).unwrap(), &a, Some(3));
        assert_eq!(d.nnz(), 0);
        assert_eq!(d.to_original(&[]), Vec::<Vidx>::new());
    }
}
