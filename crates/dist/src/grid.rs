//! The `√p′ × √p′` process grid and 1D/2D block decomposition helpers.
//!
//! The paper's CombBLAS backend requires a square process grid (§V-A):
//! `p′ = cores / threads-per-process` processes arranged as `√p′ × √p′`.
//! Matrix rows and columns are split into `√p′` contiguous block ranges;
//! vectors are split into `p′` contiguous block ranges. Both use the same
//! balanced blocking: with `n = q·parts + r`, the first `r` parts get `q+1`
//! elements.

/// Half-open index range `[start, end)` owned by `part` of `parts` when `n`
/// elements are split into contiguous balanced blocks.
///
/// Parts `0..n % parts` receive `⌈n/parts⌉` elements, the rest `⌊n/parts⌋`.
/// Parts beyond `n` (more parts than elements) own empty ranges.
pub fn block_range(n: usize, parts: usize, part: usize) -> (usize, usize) {
    assert!(parts >= 1, "block_range: at least one part required");
    assert!(part < parts, "block_range: part {part} out of {parts}");
    let base = n / parts;
    let rem = n % parts;
    let start = part * base + part.min(rem);
    let len = base + usize::from(part < rem);
    (start, start + len)
}

/// The part owning index `idx` under the [`block_range`] decomposition.
pub fn block_index(n: usize, parts: usize, idx: usize) -> usize {
    assert!(parts >= 1, "block_index: at least one part required");
    assert!(idx < n, "block_index: index {idx} out of {n}");
    let base = n / parts;
    let rem = n % parts;
    let boundary = rem * (base + 1);
    if idx < boundary {
        idx / (base + 1)
    } else {
        rem + (idx - boundary) / base
    }
}

/// A square process grid of `pr × pc` ranks (always `pr == pc` here).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ProcGrid {
    /// Process rows (`√p′`).
    pub pr: usize,
    /// Process columns (`√p′`).
    pub pc: usize,
}

impl ProcGrid {
    /// The square grid with `nprocs` ranks, or `None` when `nprocs` is not a
    /// perfect square (the paper's CombBLAS restriction).
    pub fn square(nprocs: usize) -> Option<ProcGrid> {
        if nprocs == 0 {
            return None;
        }
        let side = (nprocs as f64).sqrt().round() as usize;
        if side * side == nprocs {
            Some(ProcGrid { pr: side, pc: side })
        } else {
            None
        }
    }

    /// Total ranks in the grid.
    #[inline]
    pub fn nprocs(&self) -> usize {
        self.pr * self.pc
    }
}

/// Core budget and threading of a run: `cores` total cores with
/// `threads_per_proc` OpenMP-style threads per MPI process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HybridConfig {
    /// Total cores in the allocation.
    pub cores: usize,
    /// Threads per process (1 = flat MPI; the paper prefers 6 on Edison).
    pub threads_per_proc: usize,
}

impl HybridConfig {
    /// A configuration using `cores` cores at `threads_per_proc` threads
    /// per process.
    pub fn new(cores: usize, threads_per_proc: usize) -> Self {
        assert!(cores >= 1, "at least one core");
        assert!(threads_per_proc >= 1, "at least one thread per process");
        HybridConfig {
            cores,
            threads_per_proc,
        }
    }

    /// Number of MPI processes (`p′ = cores / threads_per_proc`, at least 1).
    pub fn nprocs(&self) -> usize {
        (self.cores / self.threads_per_proc).max(1)
    }

    /// The square process grid, or `None` when [`HybridConfig::nprocs`] is
    /// not a perfect square.
    pub fn grid(&self) -> Option<ProcGrid> {
        ProcGrid::square(self.nprocs())
    }
}

/// Hybrid (6 threads/process) core counts the paper sweeps in Figs. 4–6.
/// Every entry divided by 6 is a perfect square (1 runs as a single rank).
pub const PAPER_HYBRID_CORES: [usize; 8] = [1, 24, 54, 216, 486, 1014, 2166, 4056];

/// Flat-MPI core counts of Fig. 6 (every entry is itself a perfect square).
pub const PAPER_FLAT_CORES: [usize; 7] = [1, 4, 16, 64, 256, 1024, 4096];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_range_partitions_exactly() {
        for n in [0usize, 1, 5, 16, 37, 100] {
            for parts in [1usize, 2, 3, 7, 16, 40] {
                let mut covered = 0usize;
                for part in 0..parts {
                    let (s, e) = block_range(n, parts, part);
                    assert_eq!(s, covered, "n={n} parts={parts} part={part}");
                    assert!(e >= s);
                    covered = e;
                }
                assert_eq!(covered, n);
            }
        }
    }

    #[test]
    fn block_index_inverts_block_range() {
        for n in [1usize, 5, 16, 37, 100] {
            for parts in [1usize, 2, 3, 7, 16, 40] {
                for idx in 0..n {
                    let part = block_index(n, parts, idx);
                    let (s, e) = block_range(n, parts, part);
                    assert!(
                        (s..e).contains(&idx),
                        "n={n} parts={parts} idx={idx} -> part={part} [{s},{e})"
                    );
                }
            }
        }
    }

    #[test]
    fn square_grids() {
        assert_eq!(ProcGrid::square(1), Some(ProcGrid { pr: 1, pc: 1 }));
        assert_eq!(ProcGrid::square(16).unwrap().pr, 4);
        assert_eq!(ProcGrid::square(12), None);
        assert_eq!(ProcGrid::square(0), None);
    }

    #[test]
    fn hybrid_process_counts() {
        assert_eq!(HybridConfig::new(216, 6).nprocs(), 36);
        assert_eq!(HybridConfig::new(216, 6).grid().unwrap().pr, 6);
        assert_eq!(HybridConfig::new(1, 6).nprocs(), 1);
        assert!(HybridConfig::new(12, 1).grid().is_none());
    }

    #[test]
    fn paper_core_lists_form_square_grids() {
        for &c in &PAPER_HYBRID_CORES {
            assert!(HybridConfig::new(c, 6).grid().is_some(), "{c} hybrid");
        }
        for &c in &PAPER_FLAT_CORES {
            assert!(HybridConfig::new(c, 1).grid().is_some(), "{c} flat");
        }
    }
}
