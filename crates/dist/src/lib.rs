//! Simulated distributed-memory runtime for the RCM reproduction.
//!
//! The paper (Azad, Jacquelin, Buluç, Ng — *The Reverse Cuthill-McKee
//! Algorithm in Distributed-Memory*, IPDPS 2017) runs RCM on a `√p′ × √p′`
//! process grid through a handful of matrix-algebraic primitives (Table I).
//! This crate provides that runtime as a deterministic *simulation*: one
//! process executes the exact distributed data path (2D-blocked matrix,
//! block-distributed vectors, semiring SpMSpV, distributed bucket sort)
//! while a [`SimClock`] charges every step the α–β cost it would incur on a
//! real machine, split per [`Phase`] of the Fig. 4 taxonomy.
//!
//! Layering:
//!
//! * [`mod@grid`] — [`ProcGrid`], [`HybridConfig`], the balanced
//!   [`block_range`]/[`block_index`] decomposition, and the paper's core
//!   -count sweeps ([`PAPER_HYBRID_CORES`], [`PAPER_FLAT_CORES`]).
//! * [`mod@machine`] — [`MachineModel`] (incl. [`MachineModel::edison`])
//!   with collective cost formulas and the hybrid thread speedup.
//! * [`mod@clock`] — [`SimClock`], [`Phase`], [`PhaseCost`], [`Breakdown`].
//! * [`mod@vec`] / [`mod@matrix`] — [`VecLayout`], [`DistDenseVec`],
//!   [`DistSparseVec`], [`DistCscMatrix`] (with the §IV-A load-balance
//!   relabeling).
//! * [`mod@primitives`] / [`mod@sortperm`] — the Table-I operations:
//!   [`dist_spmspv`], [`dist_select`], [`dist_set`], [`dist_gather_values`],
//!   [`dist_argmin`], [`dist_is_nonempty`],
//!   [`dist_find_unvisited_min_degree`], and the two `SORTPERM`s
//!   ([`dist_sortperm`], [`dist_sortperm_samplesort`]).
//!
//! This crate supplies *primitives only*: the BFS, pseudo-peripheral and
//! labeling drivers that compose them live once in `rcm-core`'s generic
//! driver (`rcm_core::driver::drive_cm`), which runs on this runtime
//! through its `DistBackend`/`HybridBackend`.
//!
//! Determinism contract: all primitives produce exactly the values their
//! sequential specifications produce, for every grid size — `rcm-core`'s
//! `dist_rcm` relies on this to match `algebraic_rcm` bit for bit whenever
//! no balance permutation is applied.
//!
//! ```
//! use rcm_dist::{
//!     dist_spmspv, DistCscMatrix, DistSparseVec, DistSpmspvWorkspace, MachineModel, ProcGrid,
//!     SimClock,
//! };
//! use rcm_sparse::{CooBuilder, Select2ndMin};
//!
//! let mut b = CooBuilder::new(4, 4);
//! for v in 0..3 {
//!     b.push_sym(v, v + 1);
//! }
//! let a = DistCscMatrix::from_global(ProcGrid::square(4).unwrap(), &b.build(), None);
//! let x = DistSparseVec::singleton(a.layout().clone(), 0, 0i64);
//! let mut clock = SimClock::new(MachineModel::edison(), 1);
//! let mut ws = DistSpmspvWorkspace::new();
//! let y = dist_spmspv::<i64, Select2ndMin>(&a, &x, &mut ws, &mut clock);
//! assert_eq!(y.iter_entries().collect::<Vec<_>>(), vec![(1, 0)]);
//! assert!(clock.now() > 0.0);
//! ```

pub mod clock;
pub mod grid;
pub mod machine;
pub mod matrix;
pub mod primitives;
pub mod sortperm;
pub mod vec;

pub use clock::{Breakdown, Phase, PhaseCost, SimClock};
pub use grid::{
    block_index, block_range, HybridConfig, ProcGrid, PAPER_FLAT_CORES, PAPER_HYBRID_CORES,
};
pub use machine::MachineModel;
pub use matrix::DistCscMatrix;
pub use primitives::{
    dist_argmin, dist_find_unvisited_min_degree, dist_gather_values, dist_is_nonempty, dist_select,
    dist_set, dist_spmspv, dist_spmspv_pull, DistSpmspvWorkspace,
};
pub use sortperm::{dist_sortperm, dist_sortperm_samplesort};
pub use vec::{DistDenseVec, DistSparseVec, VecLayout};
