//! The α–β machine cost model.
//!
//! Every simulated operation is priced with four constants: per-message
//! latency `α`, per-byte transfer time `β`, per-traversed-edge compute time,
//! and per-touched-element compute time. [`MachineModel::edison`] calibrates
//! them to NERSC Edison (Cray XC30, Aries dragonfly), the paper's testbed —
//! absolute times will not match the paper's measurements, but the scaling
//! *shapes* (which term dominates where) do, which is the reproduction
//! target.

/// α–β machine constants (seconds).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MachineModel {
    /// Per-message latency α (seconds).
    pub alpha: f64,
    /// Per-byte inverse bandwidth β (seconds/byte).
    pub beta: f64,
    /// Compute seconds per traversed matrix nonzero (irregular access).
    pub edge_cost: f64,
    /// Compute seconds per touched vector element (streaming access).
    pub elem_cost: f64,
}

impl MachineModel {
    /// NERSC Edison (Cray XC30): ~1.5 µs MPI latency, ~8 GB/s effective
    /// per-process bandwidth, ~125 M irregular edge traversals/s/core,
    /// ~500 M streamed elements/s/core.
    pub fn edison() -> Self {
        MachineModel {
            alpha: 1.5e-6,
            beta: 1.25e-10,
            edge_cost: 8.0e-9,
            elem_cost: 2.0e-9,
        }
    }

    /// Speedup of one process's compute when it uses `threads` cores
    /// (sub-linear: memory-bandwidth contention eats into scaling).
    pub fn thread_speedup(&self, threads: usize) -> f64 {
        (threads.max(1) as f64).powf(0.85)
    }

    /// Latency-dominated binomial-tree AllReduce of `bytes` over `p` ranks.
    /// Zero for a single rank.
    pub fn t_allreduce(&self, p: usize, bytes: u64) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let stages = (p as f64).log2().ceil();
        stages * (self.alpha + 2.0 * self.beta * bytes as f64)
    }

    /// Personalized AllToAll among `p` ranks, `max_bytes` outgoing per rank.
    /// The latency term scales with `p` (the §VI observation that makes
    /// SORTPERM dominate at high concurrency), but with a reduced
    /// per-destination constant as real alltoallv implementations batch
    /// injections.
    pub fn t_alltoall(&self, p: usize, max_bytes: u64) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let stages = (p as f64).log2().ceil();
        stages * self.alpha + (p as f64 - 1.0) * (self.alpha / 16.0) + self.beta * max_bytes as f64
    }

    /// Tree broadcast/reduction of `bytes` along one grid dimension of `p`
    /// ranks (the SpMSpV gather/reduce pattern, §IV-A).
    pub fn t_tree(&self, p: usize, bytes: u64) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        (p as f64).log2().ceil() * self.alpha + self.beta * bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_collectives_are_free() {
        let m = MachineModel::edison();
        assert_eq!(m.t_allreduce(1, 8), 0.0);
        assert_eq!(m.t_alltoall(1, 1024), 0.0);
        assert_eq!(m.t_tree(1, 1024), 0.0);
    }

    #[test]
    fn allreduce_grows_with_ranks() {
        let m = MachineModel::edison();
        assert!(m.t_allreduce(16, 8) > m.t_allreduce(2, 8));
        assert!(m.t_allreduce(2, 8) > 0.0);
    }

    #[test]
    fn alltoall_latency_dominates_allreduce_at_scale() {
        // The Fig. 4 crossover mechanism: α·p beats α·log p.
        let m = MachineModel::edison();
        assert!(m.t_alltoall(676, 64) > 3.0 * m.t_allreduce(676, 64));
        // And the gap widens with p.
        let ratio = |p: usize| m.t_alltoall(p, 64) / m.t_allreduce(p, 64);
        assert!(ratio(676) > ratio(16));
    }

    #[test]
    fn thread_speedup_is_sublinear_but_monotone() {
        let m = MachineModel::edison();
        assert_eq!(m.thread_speedup(1), 1.0);
        let s6 = m.thread_speedup(6);
        assert!(s6 > 3.0 && s6 < 6.0, "{s6}");
        assert!(m.thread_speedup(24) > s6);
    }
}
