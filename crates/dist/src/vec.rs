//! Distributed vectors: [`VecLayout`], [`DistDenseVec`] and
//! [`DistSparseVec`].
//!
//! Vectors are distributed over all `p′` ranks of the process grid in
//! contiguous balanced blocks (CombBLAS's vector layout, §IV-A): rank `r`
//! owns global indices `block_range(n, p′, r)`. Sparse parts store
//! `(global index, value)` pairs sorted by index; dense parts store the
//! rank's slice. Because block ranges ascend with rank, concatenating parts
//! yields globally sorted data — the simulation exploits this everywhere.

use crate::grid::{block_index, block_range, ProcGrid};
use rcm_sparse::Vidx;

/// Block distribution of an `n`-element vector over a process grid.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VecLayout {
    n: usize,
    grid: ProcGrid,
}

impl VecLayout {
    /// Layout of an `n`-element vector over `grid`.
    pub fn new(n: usize, grid: ProcGrid) -> Self {
        VecLayout { n, grid }
    }

    /// Logical vector length `n`.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the logical length is zero.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The process grid.
    #[inline]
    pub fn grid(&self) -> ProcGrid {
        self.grid
    }

    /// Ranks the vector is distributed over (`p′`).
    #[inline]
    pub fn nprocs(&self) -> usize {
        self.grid.nprocs()
    }

    /// Rank owning global index `g`.
    #[inline]
    pub fn owner(&self, g: Vidx) -> usize {
        block_index(self.n, self.nprocs(), g as usize)
    }

    /// Global index range `[start, end)` owned by `rank`.
    #[inline]
    pub fn local_range(&self, rank: usize) -> (usize, usize) {
        block_range(self.n, self.nprocs(), rank)
    }

    /// Largest per-rank block length (`⌈n/p′⌉`; 0 for an empty vector).
    pub fn max_local_len(&self) -> usize {
        if self.n == 0 {
            0
        } else {
            self.n.div_ceil(self.nprocs())
        }
    }
}

/// A dense distributed vector: every rank stores its block's values.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DistDenseVec<T> {
    /// The block distribution.
    pub layout: VecLayout,
    /// Per-rank value slices, indexed `[rank][global - range_start]`.
    pub parts: Vec<Vec<T>>,
}

impl<T: Copy> DistDenseVec<T> {
    /// Every entry set to `value`.
    pub fn filled(layout: VecLayout, value: T) -> Self {
        let parts = (0..layout.nprocs())
            .map(|r| {
                let (s, e) = layout.local_range(r);
                vec![value; e - s]
            })
            .collect();
        DistDenseVec { layout, parts }
    }

    /// Distribute a global value slice (`values.len()` must equal `n`).
    pub fn from_global(layout: VecLayout, values: &[T]) -> Self {
        assert_eq!(values.len(), layout.len(), "global length mismatch");
        let parts = (0..layout.nprocs())
            .map(|r| {
                let (s, e) = layout.local_range(r);
                values[s..e].to_vec()
            })
            .collect();
        DistDenseVec { layout, parts }
    }

    /// Value at global index `g`.
    #[inline]
    pub fn get(&self, g: Vidx) -> T {
        let rank = self.layout.owner(g);
        let (s, _) = self.layout.local_range(rank);
        self.parts[rank][g as usize - s]
    }

    /// Overwrite the value at global index `g`.
    #[inline]
    pub fn set(&mut self, g: Vidx, value: T) {
        let rank = self.layout.owner(g);
        let (s, _) = self.layout.local_range(rank);
        self.parts[rank][g as usize - s] = value;
    }

    /// Gather all blocks into one global vector (rank order = index order).
    pub fn to_global(&self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.layout.len());
        for part in &self.parts {
            out.extend_from_slice(part);
        }
        out
    }
}

/// A sparse distributed vector: every rank stores the `(global index,
/// value)` pairs it owns, sorted by index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DistSparseVec<T> {
    /// The block distribution.
    pub layout: VecLayout,
    /// Per-rank sorted `(global index, value)` pairs.
    pub parts: Vec<Vec<(Vidx, T)>>,
}

impl<T: Copy> DistSparseVec<T> {
    /// A vector with no stored entries.
    pub fn empty(layout: VecLayout) -> Self {
        let parts = vec![Vec::new(); layout.nprocs()];
        DistSparseVec { layout, parts }
    }

    /// A single-entry vector (the initial BFS frontier `{r}`).
    pub fn singleton(layout: VecLayout, idx: Vidx, value: T) -> Self {
        let mut v = DistSparseVec::empty(layout);
        let rank = v.layout.owner(idx);
        v.parts[rank].push((idx, value));
        v
    }

    /// Distribute `(global index, value)` pairs to their owners.
    pub fn from_entries(layout: VecLayout, entries: Vec<(Vidx, T)>) -> Self {
        let mut v = DistSparseVec::empty(layout);
        for (g, value) in entries {
            let rank = v.layout.owner(g);
            v.parts[rank].push((g, value));
        }
        for part in &mut v.parts {
            part.sort_unstable_by_key(|&(g, _)| g);
            debug_assert!(part.windows(2).all(|w| w[0].0 < w[1].0), "duplicate index");
        }
        v
    }

    /// Total stored entries across all ranks (`nnz(x)`).
    pub fn total_nnz(&self) -> usize {
        self.parts.iter().map(Vec::len).sum()
    }

    /// Largest per-rank entry count (the load-imbalance driver).
    pub fn max_part_nnz(&self) -> usize {
        self.parts.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// True when no rank stores an entry.
    pub fn is_empty(&self) -> bool {
        self.parts.iter().all(Vec::is_empty)
    }

    /// All `(global index, value)` pairs in ascending index order.
    pub fn iter_entries(&self) -> impl Iterator<Item = (Vidx, T)> + '_ {
        self.parts.iter().flatten().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(p: usize) -> ProcGrid {
        ProcGrid::square(p).unwrap()
    }

    #[test]
    fn layout_covers_all_indices() {
        let l = VecLayout::new(13, grid(4));
        assert_eq!(l.nprocs(), 4);
        assert_eq!(l.max_local_len(), 4);
        let mut covered = 0;
        for r in 0..4 {
            let (s, e) = l.local_range(r);
            assert_eq!(s, covered);
            covered = e;
            for g in s..e {
                assert_eq!(l.owner(g as Vidx), r);
            }
        }
        assert_eq!(covered, 13);
    }

    #[test]
    fn empty_layout() {
        let l = VecLayout::new(0, grid(9));
        assert_eq!(l.max_local_len(), 0);
        for r in 0..9 {
            assert_eq!(l.local_range(r), (0, 0));
        }
    }

    #[test]
    fn dense_roundtrip_and_set() {
        let l = VecLayout::new(10, grid(4));
        let values: Vec<i64> = (0..10).map(|i| i * 3).collect();
        let mut d = DistDenseVec::from_global(l, &values);
        assert_eq!(d.to_global(), values);
        assert_eq!(d.get(7), 21);
        d.set(7, -1);
        assert_eq!(d.get(7), -1);
    }

    #[test]
    fn sparse_from_entries_splits_by_owner() {
        let l = VecLayout::new(12, grid(4));
        let v = DistSparseVec::from_entries(l, vec![(11, 1i64), (0, 2), (5, 3), (6, 4)]);
        assert_eq!(v.total_nnz(), 4);
        let collected: Vec<(Vidx, i64)> = v.iter_entries().collect();
        assert_eq!(collected, vec![(0, 2), (5, 3), (6, 4), (11, 1)]);
        for (rank, part) in v.parts.iter().enumerate() {
            for &(g, _) in part {
                assert_eq!(v.layout.owner(g), rank);
            }
        }
    }

    #[test]
    fn singleton_lands_on_owner() {
        let l = VecLayout::new(9, grid(9));
        let v = DistSparseVec::singleton(l, 4, 7i64);
        assert_eq!(v.parts[4], vec![(4, 7)]);
        assert!(!v.is_empty());
        assert_eq!(v.max_part_nnz(), 1);
    }
}
