//! Level-synchronous BFS building blocks composed from the Table-I
//! primitives: plain BFS levels, the Algorithm-4 pseudo-peripheral search,
//! and the Algorithm-3 component labeling.
//!
//! `rcm-core`'s distributed driver composes the primitives itself (it
//! threads sort-mode ablations and per-level statistics through the loop);
//! these standalone versions give the runtime crate a self-contained,
//! directly-testable implementation of the paper's algorithms.

use crate::clock::{Phase, SimClock};
use crate::matrix::DistCscMatrix;
use crate::primitives::{
    dist_argmin, dist_gather_values, dist_is_nonempty, dist_select, dist_set, dist_spmspv,
    DistSpmspvWorkspace,
};
use crate::sortperm::dist_sortperm;
use crate::vec::{DistDenseVec, DistSparseVec};
use rcm_sparse::{Label, Select2ndMin, Vidx, UNVISITED};

/// One full level-synchronous BFS from `root`, charging `Peripheral*`
/// phases and accumulating through the caller's persistent `ws`. Returns
/// the dense level vector (`UNVISITED` outside the component), the root's
/// eccentricity, and the last nonempty frontier.
fn bfs_levels_with_last(
    a: &DistCscMatrix,
    root: Vidx,
    ws: &mut DistSpmspvWorkspace<Label>,
    clock: &mut SimClock,
) -> (DistDenseVec<Label>, usize, DistSparseVec<Label>) {
    let layout = a.layout().clone();
    clock.set_phase(Phase::PeripheralOther);
    let mut levels: DistDenseVec<Label> = DistDenseVec::filled(layout.clone(), UNVISITED);
    clock.charge_elems(layout.max_local_len());
    levels.set(root, 0);
    let mut cur = DistSparseVec::singleton(layout, root, 0 as Label);
    let mut ecc = 0usize;
    loop {
        clock.set_phase(Phase::PeripheralOther);
        dist_gather_values(&mut cur, &levels, clock);
        clock.set_phase(Phase::PeripheralSpmspv);
        let next = dist_spmspv::<Label, Select2ndMin>(a, &cur, ws, clock);
        clock.set_phase(Phase::PeripheralOther);
        let mut next = dist_select(&next, &levels, |l| l == UNVISITED, clock);
        if !dist_is_nonempty(&next, clock) {
            return (levels, ecc, cur);
        }
        ecc += 1;
        let mut max_scan = 0usize;
        for part in &mut next.parts {
            max_scan = max_scan.max(part.len());
            for (_, v) in part.iter_mut() {
                *v = ecc as Label;
            }
        }
        clock.charge_elems(max_scan);
        dist_set(&mut levels, &next, clock);
        cur = next;
    }
}

/// Distributed BFS from `root`: the dense level vector (`UNVISITED` outside
/// `root`'s component) and the root's eccentricity.
pub fn dist_bfs_levels(
    a: &DistCscMatrix,
    root: Vidx,
    clock: &mut SimClock,
) -> (DistDenseVec<Label>, usize) {
    let mut ws = DistSpmspvWorkspace::new();
    let (levels, ecc, _) = bfs_levels_with_last(a, root, &mut ws, clock);
    (levels, ecc)
}

/// Algorithm 4: the George–Liu pseudo-peripheral search from `start`.
/// Returns `(vertex, eccentricity, BFS sweeps)`.
pub fn dist_pseudo_peripheral(
    a: &DistCscMatrix,
    degrees: &DistDenseVec<Vidx>,
    start: Vidx,
    clock: &mut SimClock,
) -> (Vidx, usize, usize) {
    let mut r = start;
    let mut nlvl: i64 = -1;
    let mut bfs_count = 0usize;
    // One workspace across every sweep of the search.
    let mut ws = DistSpmspvWorkspace::new();
    loop {
        let (_, ecc, last) = bfs_levels_with_last(a, r, &mut ws, clock);
        bfs_count += 1;
        if ecc as i64 <= nlvl {
            return (r, ecc, bfs_count);
        }
        nlvl = ecc as i64;
        clock.set_phase(Phase::PeripheralOther);
        let v = dist_argmin(&last, degrees, clock).unwrap_or(r);
        if v == r {
            return (r, ecc, bfs_count);
        }
        r = v;
    }
}

/// Algorithm 3: label `root`'s component with consecutive Cuthill-McKee
/// labels starting at `*nv`, using the per-level bucket `SORTPERM`.
/// Returns the number of frontier-expansion levels.
pub fn dist_label_component(
    a: &DistCscMatrix,
    degrees: &DistDenseVec<Vidx>,
    root: Vidx,
    order: &mut DistDenseVec<Label>,
    nv: &mut Label,
    clock: &mut SimClock,
) -> usize {
    clock.set_phase(Phase::OrderingOther);
    order.set(root, *nv);
    let mut batch_start = *nv;
    *nv += 1;
    let mut cur = DistSparseVec::singleton(a.layout().clone(), root, 0 as Label);
    let mut levels = 0usize;
    // One workspace across every frontier expansion of the component.
    let mut ws = DistSpmspvWorkspace::new();
    loop {
        clock.set_phase(Phase::OrderingOther);
        dist_gather_values(&mut cur, order, clock);
        clock.set_phase(Phase::OrderingSpmspv);
        let next = dist_spmspv::<Label, Select2ndMin>(a, &cur, &mut ws, clock);
        clock.set_phase(Phase::OrderingOther);
        let next = dist_select(&next, order, |v| v == UNVISITED, clock);
        if !dist_is_nonempty(&next, clock) {
            return levels;
        }
        levels += 1;
        clock.set_phase(Phase::OrderingSort);
        let (labels, count) = dist_sortperm(&next, degrees, (batch_start, *nv), *nv, clock);
        clock.set_phase(Phase::OrderingOther);
        dist_set(order, &labels, clock);
        batch_start = *nv;
        *nv += count as Label;
        cur = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::ProcGrid;
    use crate::machine::MachineModel;
    use rcm_sparse::{CooBuilder, CscMatrix};

    fn clock() -> SimClock {
        SimClock::new(MachineModel::edison(), 1)
    }

    fn path(n: usize) -> CscMatrix {
        let mut b = CooBuilder::new(n, n);
        for v in 0..n - 1 {
            b.push_sym(v as Vidx, (v + 1) as Vidx);
        }
        b.build()
    }

    #[test]
    fn bfs_levels_match_distance_on_path() {
        let a = path(9);
        for procs in [1usize, 4, 9] {
            let d = DistCscMatrix::from_global(ProcGrid::square(procs).unwrap(), &a, None);
            let (levels, ecc) = dist_bfs_levels(&d, 3, &mut clock());
            assert_eq!(ecc, 5, "{procs} procs");
            let expect: Vec<Label> = (0..9).map(|v| (v as i64 - 3).abs()).collect();
            assert_eq!(levels.to_global(), expect, "{procs} procs");
        }
    }

    #[test]
    fn pseudo_peripheral_finds_path_endpoint() {
        let a = path(12);
        let d = DistCscMatrix::from_global(ProcGrid::square(4).unwrap(), &a, None);
        let degrees = d.degrees_dvec();
        let (v, ecc, sweeps) = dist_pseudo_peripheral(&d, &degrees, 5, &mut clock());
        assert!(v == 0 || v == 11, "got {v}");
        assert_eq!(ecc, 11);
        assert!(sweeps >= 2);
    }

    #[test]
    fn bfs_workspace_grows_exactly_once() {
        // A path BFS runs one SpMSpV per level — the driver-owned
        // workspace must allocate on the first call only (the acceptance
        // bar for the dense-accumulator path: zero per-call heap growth).
        let a = path(40);
        let d = DistCscMatrix::from_global(ProcGrid::square(4).unwrap(), &a, None);
        let mut ws = DistSpmspvWorkspace::new();
        let (_, ecc, _) = bfs_levels_with_last(&d, 0, &mut ws, &mut clock());
        assert_eq!(ecc, 39, "sanity: 40 BFS iterations ran");
        assert_eq!(
            ws.growth_events(),
            1,
            "workspace must grow once, then be reused across all levels"
        );
        // A second full sweep on the same matrix must not grow at all.
        let _ = bfs_levels_with_last(&d, 20, &mut ws, &mut clock());
        assert_eq!(ws.growth_events(), 1);
    }

    #[test]
    fn label_component_orders_a_path_contiguously() {
        let a = path(10);
        for procs in [1usize, 4] {
            let d = DistCscMatrix::from_global(ProcGrid::square(procs).unwrap(), &a, None);
            let degrees = d.degrees_dvec();
            let mut order: DistDenseVec<Label> =
                DistDenseVec::filled(d.layout().clone(), UNVISITED);
            let mut nv: Label = 0;
            let levels = dist_label_component(&d, &degrees, 0, &mut order, &mut nv, &mut clock());
            assert_eq!(nv, 10);
            assert_eq!(levels, 9);
            // BFS from an endpoint labels the path in order.
            let expect: Vec<Label> = (0..10).collect();
            assert_eq!(order.to_global(), expect, "{procs} procs");
        }
    }
}
