//! Numeric CSR matrices for the iterative-solver substrate (Fig. 1).
//!
//! The RCM code itself is pattern-only; the conjugate-gradient solver needs
//! values. [`CsrNumeric`] is a minimal, well-tested f64 CSR with symmetric
//! permutation and SpMV — enough to reproduce the paper's PETSc experiment.

use crate::csc::CscMatrix;
use crate::perm::Permutation;
use crate::Vidx;

/// A numeric sparse matrix in compressed-sparse-row layout.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrNumeric {
    n_rows: usize,
    n_cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<Vidx>,
    values: Vec<f64>,
}

impl CsrNumeric {
    /// Build from triplets; duplicate entries are summed.
    pub fn from_triplets(
        n_rows: usize,
        n_cols: usize,
        mut triplets: Vec<(Vidx, Vidx, f64)>,
    ) -> Self {
        triplets.sort_unstable_by_key(|a| (a.0, a.1));
        // Sum duplicates in place.
        let mut merged: Vec<(Vidx, Vidx, f64)> = Vec::with_capacity(triplets.len());
        for t in triplets {
            match merged.last_mut() {
                Some(last) if last.0 == t.0 && last.1 == t.1 => last.2 += t.2,
                _ => merged.push(t),
            }
        }
        let mut row_ptr = vec![0usize; n_rows + 1];
        for &(r, _, _) in &merged {
            row_ptr[r as usize + 1] += 1;
        }
        for r in 0..n_rows {
            row_ptr[r + 1] += row_ptr[r];
        }
        let col_idx = merged.iter().map(|&(_, c, _)| c).collect();
        let values = merged.iter().map(|&(_, _, v)| v).collect();
        CsrNumeric {
            n_rows,
            n_cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Give a pattern matrix numeric values via a callback `(row, col) → v`.
    pub fn from_pattern(pattern: &CscMatrix, mut value: impl FnMut(Vidx, Vidx) -> f64) -> Self {
        let mut triplets = Vec::with_capacity(pattern.nnz());
        for (r, c) in pattern.iter_entries() {
            triplets.push((r, c, value(r, c)));
        }
        Self::from_triplets(pattern.n_rows(), pattern.n_cols(), triplets)
    }

    /// Construct a symmetric positive-definite matrix from a symmetric
    /// adjacency pattern: a graph Laplacian shifted by `diag_shift`
    /// (`L = D − A + shift·I`), guaranteed SPD for `diag_shift > 0`.
    pub fn laplacian_from_pattern(pattern: &CscMatrix, diag_shift: f64) -> Self {
        assert!(pattern.is_symmetric());
        let n = pattern.n_rows();
        let mut triplets = Vec::with_capacity(pattern.nnz() + n);
        let mut diag = vec![diag_shift; n];
        for (r, c) in pattern.iter_entries() {
            if r as usize != c as usize {
                triplets.push((r, c, -1.0));
                diag[c as usize] += 1.0;
            }
        }
        for (i, &d) in diag.iter().enumerate() {
            triplets.push((i as Vidx, i as Vidx, d));
        }
        Self::from_triplets(n, n, triplets)
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Column indices of row `r`.
    pub fn row_cols(&self, r: usize) -> &[Vidx] {
        &self.col_idx[self.row_ptr[r]..self.row_ptr[r + 1]]
    }

    /// Values of row `r` (parallel to [`Self::row_cols`]).
    pub fn row_vals(&self, r: usize) -> &[f64] {
        &self.values[self.row_ptr[r]..self.row_ptr[r + 1]]
    }

    /// Value at `(r, c)` or 0 when not stored.
    pub fn get(&self, r: Vidx, c: Vidx) -> f64 {
        let cols = self.row_cols(r as usize);
        match cols.binary_search(&c) {
            Ok(k) => self.row_vals(r as usize)[k],
            Err(_) => 0.0,
        }
    }

    /// `y = A·x`.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n_cols);
        assert_eq!(y.len(), self.n_rows);
        for (r, out) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            let cols = self.row_cols(r);
            let vals = self.row_vals(r);
            for (c, v) in cols.iter().zip(vals) {
                acc += v * x[*c as usize];
            }
            *out = acc;
        }
    }

    /// Symmetric permutation `PAPᵀ` (square matrices).
    pub fn permute_sym(&self, perm: &Permutation) -> CsrNumeric {
        assert_eq!(self.n_rows, self.n_cols);
        assert_eq!(perm.len(), self.n_rows);
        let p = perm.as_new_of_old();
        let mut triplets = Vec::with_capacity(self.nnz());
        for r in 0..self.n_rows {
            for (c, v) in self.row_cols(r).iter().zip(self.row_vals(r)) {
                triplets.push((p[r], p[*c as usize], *v));
            }
        }
        CsrNumeric::from_triplets(self.n_rows, self.n_cols, triplets)
    }

    /// Structural pattern as a [`CscMatrix`] (transpose of the CSR structure;
    /// identical for symmetric matrices).
    pub fn pattern(&self) -> CscMatrix {
        let mut b = crate::coo::CooBuilder::new(self.n_rows, self.n_cols);
        for r in 0..self.n_rows {
            for &c in self.row_cols(r) {
                b.push(r as Vidx, c);
            }
        }
        b.build()
    }

    /// Check numeric symmetry within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.n_rows != self.n_cols {
            return false;
        }
        for r in 0..self.n_rows {
            for (c, v) in self.row_cols(r).iter().zip(self.row_vals(r)) {
                if (self.get(*c, r as Vidx) - v).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooBuilder;

    fn small_spd() -> CsrNumeric {
        // 2x2 SPD: [[4, 1], [1, 3]]
        CsrNumeric::from_triplets(
            2,
            2,
            vec![(0, 0, 4.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 3.0)],
        )
    }

    #[test]
    fn spmv_small() {
        let a = small_spd();
        let x = vec![1.0, 2.0];
        let mut y = vec![0.0; 2];
        a.spmv(&x, &mut y);
        assert_eq!(y, vec![6.0, 7.0]);
    }

    #[test]
    fn duplicates_are_summed() {
        let a = CsrNumeric::from_triplets(2, 2, vec![(0, 0, 1.0), (0, 0, 2.0)]);
        assert_eq!(a.nnz(), 1);
        assert_eq!(a.get(0, 0), 3.0);
    }

    #[test]
    fn laplacian_is_spd_structured() {
        let mut b = CooBuilder::new(3, 3);
        b.push_sym(0, 1);
        b.push_sym(1, 2);
        let pat = b.build();
        let l = CsrNumeric::laplacian_from_pattern(&pat, 0.5);
        assert!(l.is_symmetric(1e-12));
        assert_eq!(l.get(0, 0), 1.5);
        assert_eq!(l.get(1, 1), 2.5);
        assert_eq!(l.get(0, 1), -1.0);
        // Diagonally dominant with positive diagonal → SPD.
        for r in 0..3 {
            let off: f64 = l
                .row_cols(r)
                .iter()
                .zip(l.row_vals(r))
                .filter(|(c, _)| **c as usize != r)
                .map(|(_, v)| v.abs())
                .sum();
            assert!(l.get(r as Vidx, r as Vidx) > off);
        }
    }

    #[test]
    fn permute_sym_preserves_spmv_up_to_permutation() {
        let a = small_spd();
        let p = Permutation::from_new_of_old(vec![1, 0]).unwrap();
        let pa = a.permute_sym(&p);
        let x = vec![1.0, 2.0];
        let px = p.apply_to_slice(&x);
        let mut y = vec![0.0; 2];
        let mut py = vec![0.0; 2];
        a.spmv(&x, &mut y);
        pa.spmv(&px, &mut py);
        assert_eq!(p.apply_to_slice(&y), py);
    }

    #[test]
    fn pattern_roundtrip() {
        let a = small_spd();
        let pat = a.pattern();
        assert_eq!(pat.nnz(), 4);
        assert!(pat.is_symmetric());
    }
}
