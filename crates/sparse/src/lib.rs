//! Sparse-matrix substrate for the distributed Reverse Cuthill-McKee library.
//!
//! This crate provides everything the RCM algorithms of Azad et al. (IPDPS
//! 2017) need from a sparse linear-algebra layer, implemented from scratch:
//!
//! * [`CooBuilder`] — triplet (coordinate) accumulation with symmetrization
//!   and duplicate removal.
//! * [`CscMatrix`] — a compressed-sparse-column *pattern* matrix (no stored
//!   numerical values; RCM only consumes structure). Supports symmetric
//!   permutation (`PAPᵀ`), transposition, 2D block extraction and degree
//!   queries.
//! * [`CsrNumeric`] — a numeric CSR matrix used by the iterative-solver crate.
//! * [`SparseVec`] / dense-vector helpers — the *local* counterparts of the
//!   paper's Table I primitives (`IND`, `SELECT`, `SET`, `REDUCE`).
//! * [`Semiring`] and [`fn@spmspv`] / [`fn@spmspv_pull`] — sparse
//!   matrix–sparse vector multiplication over a user-chosen semiring in both
//!   expansion directions (push over the frontier's columns, pull as a
//!   masked row-scan against a [`DenseFrontier`]); the RCM traversal uses
//!   the `(select2nd, min)` semiring ([`Select2ndMin`]).
//! * [`mod@bandwidth`] — bandwidth, envelope/profile and
//!   wavefront metrics used to evaluate ordering quality.
//! * [`mm`] — Matrix Market I/O so real SuiteSparse matrices can be used
//!   in place of the synthetic generators.
//! * [`Permutation`] — validated vertex orderings with composition/inverse.
//!
//! Indices are `u32` throughout the pattern code (supporting matrices with up
//! to ~4 billion rows), matching the memory-conscious layout the paper's
//! CombBLAS backend uses.

pub mod bandwidth;
pub mod bitmap;
pub mod components;
pub mod coo;
pub mod csc;
pub mod csr_num;
pub mod densevec;
pub mod frontier;
pub mod mm;
pub mod perm;
pub mod semiring;
pub mod sortkernel;
pub mod split;
pub mod spmspv;
pub mod spvec;
pub mod spy;

pub use bandwidth::{bandwidth as matrix_bandwidth, envelope_size, BandwidthReport};
pub use bitmap::VertexBitmap;
pub use components::{connected_components, Components};
pub use coo::CooBuilder;
pub use csc::CscMatrix;
pub use csr_num::CsrNumeric;
pub use densevec::{dense_reduce, dense_set, DenseVec};
pub use frontier::DenseFrontier;
pub use perm::Permutation;
pub use semiring::{BoolOr, MinIdx, Select2ndMin, Semiring};
pub use sortkernel::{bucket_sortperm_ref, counting_sortperm, SortpermScratch};
pub use split::{ComponentPiece, ComponentSplit};
pub use spmspv::{spmspv, spmspv_pull, spmspv_pull_ref, spmspv_ref, PullBuffer, SpmspvWorkspace};
pub use spvec::SparseVec;
pub use spy::spy;

/// Index type used for vertices / rows / columns in pattern matrices.
pub type Vidx = u32;

/// Label type used for orderings: `-1` means "not yet labeled", otherwise the
/// value is a 0-based label. `i64` comfortably holds labels for any `u32`
/// indexed matrix.
pub type Label = i64;

/// Sentinel for "vertex not yet visited / labeled".
pub const UNVISITED: Label = -1;
