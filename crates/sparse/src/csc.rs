//! Compressed-sparse-column pattern matrices.
//!
//! RCM consumes only the *structure* of a matrix, so [`CscMatrix`] stores no
//! numerical values — just column pointers and row indices. For a symmetric
//! matrix this doubles as the adjacency structure of the graph `G(A)`:
//! column `v` lists the neighbours of vertex `v`.

use crate::perm::Permutation;
use crate::Vidx;

/// A pattern (structure-only) sparse matrix in CSC layout.
///
/// Invariants maintained by all constructors:
/// * `col_ptr.len() == n_cols + 1`, monotonically non-decreasing,
///   `col_ptr[0] == 0`, `col_ptr[n_cols] == row_idx.len()`.
/// * Row indices within each column are strictly increasing (sorted, unique).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CscMatrix {
    n_rows: usize,
    n_cols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<Vidx>,
}

impl CscMatrix {
    /// Construct from raw parts, checking invariants in debug builds.
    pub fn from_parts(
        n_rows: usize,
        n_cols: usize,
        col_ptr: Vec<usize>,
        row_idx: Vec<Vidx>,
    ) -> Self {
        assert_eq!(col_ptr.len(), n_cols + 1, "col_ptr length must be n_cols+1");
        assert_eq!(col_ptr[0], 0);
        assert_eq!(*col_ptr.last().unwrap(), row_idx.len());
        debug_assert!(col_ptr.windows(2).all(|w| w[0] <= w[1]));
        debug_assert!(row_idx.iter().all(|&r| (r as usize) < n_rows));
        debug_assert!((0..n_cols).all(|c| {
            let s = &row_idx[col_ptr[c]..col_ptr[c + 1]];
            s.windows(2).all(|w| w[0] < w[1])
        }));
        CscMatrix {
            n_rows,
            n_cols,
            col_ptr,
            row_idx,
        }
    }

    /// Decompose into `(n_rows, n_cols, col_ptr, row_idx)` — the inverse of
    /// [`CscMatrix::from_parts`]. Hands the backing buffers to the caller so
    /// warm workspaces (e.g. the component splitter) can recycle them
    /// instead of reallocating.
    pub fn into_parts(self) -> (usize, usize, Vec<usize>, Vec<Vidx>) {
        (self.n_rows, self.n_cols, self.col_ptr, self.row_idx)
    }

    /// An `n × n` matrix with no nonzeros.
    pub fn empty(n: usize) -> Self {
        CscMatrix {
            n_rows: n,
            n_cols: n,
            col_ptr: vec![0; n + 1],
            row_idx: Vec::new(),
        }
    }

    /// Identity pattern (diagonal only).
    pub fn eye(n: usize) -> Self {
        CscMatrix {
            n_rows: n,
            n_cols: n,
            col_ptr: (0..=n).collect(),
            row_idx: (0..n as Vidx).collect(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// Row indices of the nonzeros in column `c` (sorted ascending).
    #[inline]
    pub fn col(&self, c: usize) -> &[Vidx] {
        &self.row_idx[self.col_ptr[c]..self.col_ptr[c + 1]]
    }

    /// Number of nonzeros in column `c` — the degree of vertex `c` when the
    /// matrix is a symmetric adjacency structure.
    #[inline]
    pub fn col_nnz(&self, c: usize) -> usize {
        self.col_ptr[c + 1] - self.col_ptr[c]
    }

    /// The raw column-pointer array.
    pub fn col_ptr(&self) -> &[usize] {
        &self.col_ptr
    }

    /// The raw row-index array.
    pub fn row_idx(&self) -> &[Vidx] {
        &self.row_idx
    }

    /// Degrees of all vertices, counting the diagonal entry as a self-loop
    /// *excluded* (graph degree, as used by the RCM tie-breaking sort).
    pub fn degrees(&self) -> Vec<Vidx> {
        let mut out = Vec::new();
        self.degrees_into(&mut out);
        out
    }

    /// Compute the degree vector into a caller-owned buffer (cleared
    /// first) — the grow-only companion of [`CscMatrix::degrees`] for warm
    /// workspaces: no allocation when the buffer's capacity already covers
    /// this matrix.
    pub fn degrees_into(&self, out: &mut Vec<Vidx>) {
        out.clear();
        out.extend((0..self.n_cols).map(|c| {
            let mut d = self.col_nnz(c) as Vidx;
            // A structural diagonal entry is not a graph neighbour.
            if self.col(c).binary_search(&(c as Vidx)).is_ok() {
                d -= 1;
            }
            d
        }));
    }

    /// Check whether an entry exists at `(row, col)`.
    #[inline]
    pub fn contains(&self, row: Vidx, col: Vidx) -> bool {
        self.col(col as usize).binary_search(&row).is_ok()
    }

    /// Transpose (swaps the roles of rows and columns).
    pub fn transpose(&self) -> CscMatrix {
        let mut col_ptr = vec![0usize; self.n_rows + 1];
        for &r in &self.row_idx {
            col_ptr[r as usize + 1] += 1;
        }
        for i in 0..self.n_rows {
            col_ptr[i + 1] += col_ptr[i];
        }
        let mut row_idx = vec![0 as Vidx; self.nnz()];
        let mut cursor = col_ptr.clone();
        for c in 0..self.n_cols {
            for &r in self.col(c) {
                let slot = &mut cursor[r as usize];
                row_idx[*slot] = c as Vidx;
                *slot += 1;
            }
        }
        CscMatrix::from_parts(self.n_cols, self.n_rows, col_ptr, row_idx)
    }

    /// True when the pattern equals its transpose.
    pub fn is_symmetric(&self) -> bool {
        if self.n_rows != self.n_cols {
            return false;
        }
        // Cheap pass: every (r, c) must have a matching (c, r).
        for c in 0..self.n_cols {
            for &r in self.col(c) {
                if !self.contains(c as Vidx, r) {
                    return false;
                }
            }
        }
        true
    }

    /// Symmetric permutation `PAPᵀ`: entry `(i, j)` moves to
    /// `(perm[i], perm[j])` where `perm` maps old ids to new labels.
    pub fn permute_sym(&self, perm: &Permutation) -> CscMatrix {
        assert_eq!(
            self.n_rows, self.n_cols,
            "permute_sym needs a square matrix"
        );
        assert_eq!(perm.len(), self.n_cols, "permutation size mismatch");
        let n = self.n_cols;
        let p = perm.as_new_of_old();
        let old_of_new = perm.old_of_new();

        let mut col_ptr = vec![0usize; n + 1];
        for new_c in 0..n {
            let old_c = old_of_new[new_c] as usize;
            col_ptr[new_c + 1] = col_ptr[new_c] + self.col_nnz(old_c);
        }
        let mut row_idx = vec![0 as Vidx; self.nnz()];
        for new_c in 0..n {
            let old_c = old_of_new[new_c] as usize;
            let dst = &mut row_idx[col_ptr[new_c]..col_ptr[new_c + 1]];
            for (slot, &old_r) in dst.iter_mut().zip(self.col(old_c)) {
                *slot = p[old_r as usize];
            }
            dst.sort_unstable();
        }
        CscMatrix::from_parts(n, n, col_ptr, row_idx)
    }

    /// Extract the sub-matrix with rows in `[r0, r1)` and columns in
    /// `[c0, c1)`, re-indexed to local coordinates. Used to form the 2D
    /// blocks of the distributed matrix.
    pub fn sub_block(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> CscMatrix {
        assert!(r0 <= r1 && r1 <= self.n_rows);
        assert!(c0 <= c1 && c1 <= self.n_cols);
        let ncols = c1 - c0;
        let mut col_ptr = vec![0usize; ncols + 1];
        let mut row_idx = Vec::new();
        for (lc, c) in (c0..c1).enumerate() {
            let rows = self.col(c);
            // Binary search for the window [r0, r1).
            let lo = rows.partition_point(|&r| (r as usize) < r0);
            let hi = rows.partition_point(|&r| (r as usize) < r1);
            for &r in &rows[lo..hi] {
                row_idx.push(r - r0 as Vidx);
            }
            col_ptr[lc + 1] = row_idx.len();
        }
        CscMatrix::from_parts(r1 - r0, ncols, col_ptr, row_idx)
    }

    /// Iterate over all `(row, col)` entries in column-major order.
    pub fn iter_entries(&self) -> impl Iterator<Item = (Vidx, Vidx)> + '_ {
        (0..self.n_cols).flat_map(move |c| self.col(c).iter().map(move |&r| (r, c as Vidx)))
    }

    /// A 64-bit fingerprint of the sparsity *pattern* — dimensions, column
    /// pointers and row indices, exactly the data [`CscMatrix`] stores.
    ///
    /// Two matrices have equal fingerprints iff they hash the same canonical
    /// CSC form, so any construction route that produces the same pattern —
    /// COO triplets pushed in a different order, with duplicates, or with
    /// different numerical values attached upstream — fingerprints
    /// identically. This is the cache key of the ordering service's
    /// pattern cache: re-ordering a pattern the service has seen costs one
    /// O(nnz) hash instead of a BFS. The hash is deterministic across runs
    /// and platforms (no randomized state), and 64 bits wide, so consumers
    /// that cannot tolerate a ~2⁻⁶⁴ collision must confirm a hash hit with
    /// a full pattern comparison (`==` — the service cache does).
    pub fn pattern_fingerprint(&self) -> u64 {
        // SplitMix64-style avalanche per word: cheap, high-quality, and
        // stable — the same mixer the offline rand shim seeds with.
        #[inline]
        fn mix(h: u64, w: u64) -> u64 {
            let mut z = (h ^ w).wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        let mut h = mix(0x243F_6A88_85A3_08D3, self.n_rows as u64);
        h = mix(h, self.n_cols as u64);
        // col_ptr fixes the per-column layout; row_idx pairs are packed two
        // per word so the dominant O(nnz) pass mixes half as often.
        for &p in &self.col_ptr {
            h = mix(h, p as u64);
        }
        for pair in self.row_idx.chunks(2) {
            let w = (pair[0] as u64) << 32 | pair.get(1).copied().unwrap_or(0) as u64;
            h = mix(h, w);
        }
        // Length-extension guard: [r] vs [r, 0] pack to the same word.
        mix(h, self.row_idx.len() as u64)
    }

    /// Remove any diagonal entries (self-loops do not affect RCM but skew
    /// degree statistics).
    pub fn without_diagonal(&self) -> CscMatrix {
        let mut col_ptr = vec![0usize; self.n_cols + 1];
        let mut row_idx = Vec::with_capacity(self.nnz());
        for c in 0..self.n_cols {
            for &r in self.col(c) {
                if r as usize != c {
                    row_idx.push(r);
                }
            }
            col_ptr[c + 1] = row_idx.len();
        }
        CscMatrix::from_parts(self.n_rows, self.n_cols, col_ptr, row_idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooBuilder;

    fn path_graph(n: usize) -> CscMatrix {
        let mut b = CooBuilder::new(n, n);
        for v in 0..n - 1 {
            b.push_sym(v as Vidx, (v + 1) as Vidx);
        }
        b.build()
    }

    #[test]
    fn eye_has_expected_shape() {
        let m = CscMatrix::eye(4);
        assert_eq!(m.nnz(), 4);
        assert!(m.is_symmetric());
        assert!(m.contains(2, 2));
        assert!(!m.contains(1, 2));
        assert_eq!(m.degrees(), vec![0, 0, 0, 0]); // diagonals excluded
    }

    #[test]
    fn transpose_involution() {
        let mut b = CooBuilder::new(3, 4);
        b.push(0, 1);
        b.push(2, 3);
        b.push(1, 0);
        let m = b.build();
        let t = m.transpose();
        assert_eq!(t.n_rows(), 4);
        assert_eq!(t.n_cols(), 3);
        assert!(t.contains(1, 0));
        assert!(t.contains(3, 2));
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn degrees_of_path() {
        let m = path_graph(5);
        assert_eq!(m.degrees(), vec![1, 2, 2, 2, 1]);
    }

    #[test]
    fn permute_sym_reverses_path() {
        let m = path_graph(4);
        // Reverse the vertex order; a path stays a path.
        let p = Permutation::from_new_of_old(vec![3, 2, 1, 0]).unwrap();
        let pm = m.permute_sym(&p);
        assert!(pm.is_symmetric());
        assert_eq!(pm.nnz(), m.nnz());
        assert_eq!(pm.degrees(), vec![1, 2, 2, 1]);
        assert!(pm.contains(0, 1) && pm.contains(1, 2) && pm.contains(2, 3));
    }

    #[test]
    fn permute_sym_identity_is_noop() {
        let m = path_graph(6);
        let id = Permutation::identity(6);
        assert_eq!(m.permute_sym(&id), m);
    }

    #[test]
    fn sub_block_extracts_window() {
        let m = path_graph(6);
        // Rows 2..5, cols 2..5 of the path: local path fragment.
        let b = m.sub_block(2, 5, 2, 5);
        assert_eq!(b.n_rows(), 3);
        assert_eq!(b.n_cols(), 3);
        assert!(b.contains(1, 0)); // global (3,2)
        assert!(b.contains(0, 1)); // global (2,3)
        assert!(b.contains(2, 1)); // global (4,3)
        assert!(!b.contains(0, 0));
    }

    #[test]
    fn sub_block_covers_whole_matrix() {
        let m = path_graph(5);
        let b = m.sub_block(0, 5, 0, 5);
        assert_eq!(b, m);
    }

    #[test]
    fn without_diagonal_strips_self_loops() {
        let mut b = CooBuilder::new(3, 3);
        b.push_sym(0, 1);
        b.push(1, 1);
        b.push(2, 2);
        let m = b.build();
        assert_eq!(m.nnz(), 4);
        let stripped = m.without_diagonal();
        assert_eq!(stripped.nnz(), 2);
        assert!(stripped.is_symmetric());
    }

    #[test]
    fn fingerprint_ignores_construction_route() {
        // The same pattern assembled from shuffled, duplicated triplets
        // canonicalizes to the same CSC form, hence the same fingerprint.
        let a = path_graph(7);
        let mut b = CooBuilder::new(7, 7);
        for &(u, v) in &[
            (5, 6),
            (1, 0),
            (2, 3),
            (1, 2),
            (3, 4),
            (4, 5),
            (2, 1),
            (1, 2),
        ] {
            b.push_sym(u, v);
        }
        let c = b.build();
        assert_eq!(a, c);
        assert_eq!(a.pattern_fingerprint(), c.pattern_fingerprint());
    }

    #[test]
    fn fingerprint_separates_nearby_patterns() {
        let base = path_graph(6);
        let mut others = vec![
            path_graph(5),
            path_graph(7),
            CscMatrix::empty(6),
            CscMatrix::eye(6),
            base.without_diagonal(), // identical here; sanity-checked below
        ];
        // Same edges, one vertex more: padding must change the hash.
        let mut b = CooBuilder::new(7, 7);
        for v in 0..5 {
            b.push_sym(v, v + 1);
        }
        others.push(b.build());
        assert_eq!(others[4].pattern_fingerprint(), base.pattern_fingerprint());
        others.remove(4);
        for o in &others {
            assert_ne!(
                o.pattern_fingerprint(),
                base.pattern_fingerprint(),
                "distinct patterns must fingerprint apart"
            );
        }
    }

    #[test]
    fn fingerprint_guards_against_length_extension() {
        // [r] in one column vs [r, 0] split over two: the odd-length tail
        // packs a zero, so only the length guard separates them.
        let mut b1 = CooBuilder::new(3, 3);
        b1.push(1, 0);
        let one = b1.build();
        let mut b2 = CooBuilder::new(3, 3);
        b2.push(1, 0);
        b2.push(0, 0);
        let two = b2.build();
        assert_ne!(one.pattern_fingerprint(), two.pattern_fingerprint());
    }

    #[test]
    fn iter_entries_column_major() {
        let m = path_graph(3);
        let entries: Vec<_> = m.iter_entries().collect();
        assert_eq!(entries, vec![(1, 0), (0, 1), (2, 1), (1, 2)]);
    }
}
