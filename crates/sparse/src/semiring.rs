//! Semirings for sparse matrix–sparse vector multiplication.
//!
//! The paper replaces the usual `(multiply, add)` of linear algebra with
//! overloaded operators (§III-A): for the RCM traversal the semiring is
//! `(select2nd, min)` — "multiplying" a (pattern) matrix entry by a vector
//! value passes the vector value through unchanged, and colliding products in
//! the same output row keep the minimum. This guarantees each newly
//! discovered vertex attaches to the parent with the smallest label (Fig. 2),
//! which is what makes the exploration deterministic.
//!
//! Matrices here are pattern-only, so `multiply` takes just the vector value.

use crate::Vidx;

/// A semiring over vector element type `T` for pattern-matrix SpMSpV.
///
/// `multiply(x)` combines an (implicit, boolean) matrix entry with the vector
/// value `x`; `add` combines two products that land on the same output index.
/// Both must be pure; `add` must be associative and commutative for the
/// result to be independent of traversal order.
pub trait Semiring<T: Copy> {
    /// "Multiplication": combine a present matrix entry with vector value.
    fn multiply(x: T) -> T;
    /// "Addition": merge two products targeting the same output index.
    fn add(a: T, b: T) -> T;
    /// Additive identity: `add(identity(), x) == x` for every `x`. Lets the
    /// pull kernel run a branch-light accumulator seeded with the identity
    /// instead of threading an `Option<T>` through the inner loop.
    fn identity() -> T;
}

/// The RCM BFS semiring `(select2nd, min)` of Algorithm 3 / Figure 2.
///
/// Values are parent labels; each discovered vertex keeps the minimum label
/// among all of its already-visited neighbours.
pub struct Select2ndMin;

impl Semiring<i64> for Select2ndMin {
    #[inline]
    fn multiply(x: i64) -> i64 {
        x
    }
    #[inline]
    fn add(a: i64, b: i64) -> i64 {
        a.min(b)
    }
    #[inline]
    fn identity() -> i64 {
        i64::MAX
    }
}

/// Plain boolean BFS semiring: values carry no information, reachability
/// only. Used where the paper notes "the overloaded addition … can be
/// replaced by any equivalent operation" (Algorithm 4).
pub struct BoolOr;

impl Semiring<()> for BoolOr {
    #[inline]
    fn multiply(_x: ()) {}
    #[inline]
    fn add(_a: (), _b: ()) {}
    #[inline]
    fn identity() {}
}

/// Semiring carrying `(value, index)` pairs and keeping the lexicographic
/// minimum; useful for deterministic parent selection when values can tie.
pub struct MinIdx;

impl Semiring<(i64, Vidx)> for MinIdx {
    #[inline]
    fn multiply(x: (i64, Vidx)) -> (i64, Vidx) {
        x
    }
    #[inline]
    fn add(a: (i64, Vidx), b: (i64, Vidx)) -> (i64, Vidx) {
        a.min(b)
    }
    #[inline]
    fn identity() -> (i64, Vidx) {
        (i64::MAX, Vidx::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select2nd_min_keeps_smaller_label() {
        assert_eq!(Select2ndMin::multiply(7), 7);
        assert_eq!(Select2ndMin::add(3, 5), 3);
        assert_eq!(Select2ndMin::add(5, 3), 3);
    }

    #[test]
    fn select2nd_min_is_associative_on_samples() {
        let vals = [-1i64, 0, 1, 5, 100];
        for &a in &vals {
            for &b in &vals {
                for &c in &vals {
                    assert_eq!(
                        Select2ndMin::add(Select2ndMin::add(a, b), c),
                        Select2ndMin::add(a, Select2ndMin::add(b, c))
                    );
                }
            }
        }
    }

    #[test]
    fn identity_is_neutral_for_add() {
        for &x in &[i64::MIN, -1, 0, 7, i64::MAX] {
            assert_eq!(Select2ndMin::add(Select2ndMin::identity(), x), x);
            assert_eq!(Select2ndMin::add(x, Select2ndMin::identity()), x);
        }
        let p = (3i64, 4 as Vidx);
        assert_eq!(MinIdx::add(MinIdx::identity(), p), p);
    }

    #[test]
    fn minidx_orders_lexicographically() {
        assert_eq!(MinIdx::add((2, 9), (2, 3)), (2, 3));
        assert_eq!(MinIdx::add((1, 9), (2, 3)), (1, 9));
    }
}
