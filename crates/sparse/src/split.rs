//! Component extraction: carve a multi-component matrix into per-component
//! sub-matrices that can be ordered as independent jobs.
//!
//! RCM on a disconnected graph is embarrassingly parallel — each connected
//! component is its own BFS universe — but the sequential driver discovers
//! that one component at a time, paying an `O(n)` unvisited-minimum-degree
//! scan per reseed. [`ComponentSplit`] does the decomposition up front: given
//! a matrix and its [`Components`] labeling it produces one sub-CSC per
//! component together with the local↔global vertex maps a scheduler needs to
//! stitch per-component orderings back into a global permutation.
//!
//! Local ids are assigned in ascending global-id order, so every (degree,
//! vertex-id) tie-break inside a component is preserved verbatim: ordering a
//! sub-matrix replays exactly the labels the sequential whole-matrix driver
//! would have produced for that component. That is what makes the engine's
//! component-parallel path bit-identical to the sequential one.
//!
//! Like the other kernels, the splitter is a warm workspace: all scratch and
//! all per-piece buffers are grow-only and recycled across calls (the
//! sub-matrices' own backing vectors round-trip through
//! [`CscMatrix::into_parts`]), so re-splitting matrices no larger than
//! already seen performs zero steady-state allocation —
//! [`ComponentSplit::growth_events`] exposes when buffers last had to grow.

use crate::components::Components;
use crate::csc::CscMatrix;
use crate::Vidx;

/// One connected component extracted from a larger matrix.
#[derive(Clone, Debug)]
pub struct ComponentPiece {
    /// The component's adjacency structure in local (0-based, dense) ids.
    pub matrix: CscMatrix,
    /// `vertices[u]` is the global id of local vertex `u`, sorted ascending —
    /// the local→global map. Its inverse lives in
    /// [`ComponentSplit::local_of_global`].
    pub vertices: Vec<Vidx>,
}

impl ComponentPiece {
    fn empty() -> Self {
        ComponentPiece {
            matrix: CscMatrix::empty(0),
            vertices: Vec::new(),
        }
    }
}

/// Recycled working buffers for one piece, between splits.
#[derive(Default)]
struct PieceBufs {
    col_ptr: Vec<usize>,
    row_idx: Vec<Vidx>,
    vertices: Vec<Vidx>,
}

/// Warm extractor turning (matrix, [`Components`]) into per-component
/// [`ComponentPiece`]s. See the module docs for the contract.
#[derive(Default)]
pub struct ComponentSplit {
    /// Global→local vertex map of the most recent split (length `n`).
    local_of_global: Vec<Vidx>,
    /// Per-component nonzero tallies (length `k`).
    comp_nnz: Vec<usize>,
    /// Finished pieces, one slot per component, recycled across calls.
    pieces: Vec<ComponentPiece>,
    /// Buffers in flight between reclaim and rebuild.
    work: Vec<PieceBufs>,
    growth_events: usize,
}

impl ComponentSplit {
    /// A splitter with no warm buffers yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of times any install-managed buffer had to grow. Flat across
    /// calls once the splitter has seen the largest matrix it will serve.
    pub fn growth_events(&self) -> usize {
        self.growth_events
    }

    /// The global→local vertex map of the most recent [`ComponentSplit::split`]
    /// call: `local_of_global()[v]` is the local id of global vertex `v`
    /// inside its piece.
    pub fn local_of_global(&self) -> &[Vidx] {
        &self.local_of_global
    }

    fn grow_to<T: Clone>(buf: &mut Vec<T>, len: usize, fill: T, events: &mut usize) {
        if buf.capacity() < len {
            *events += 1;
        }
        buf.clear();
        buf.resize(len, fill);
    }

    /// Split `a` into one sub-matrix per component of `comps`. The returned
    /// slice has exactly `comps.count()` pieces, indexed by component id
    /// (components are numbered by smallest global vertex id). Sub-matrices
    /// keep every entry of `a`, including structural diagonals.
    pub fn split(&mut self, a: &CscMatrix, comps: &Components) -> &[ComponentPiece] {
        let n = a.n_rows();
        assert_eq!(a.n_cols(), n, "component split needs a square matrix");
        assert_eq!(comps.component_of.len(), n, "labeling/matrix size mismatch");
        let k = comps.count();
        let mut events = self.growth_events;

        Self::grow_to(&mut self.local_of_global, n, 0, &mut events);
        Self::grow_to(&mut self.comp_nnz, k, 0, &mut events);

        // Pass 1: assign local ids in ascending global order and tally each
        // component's nonzeros. `comp_nnz` doubles as the fill cursor.
        let mut next_local = std::mem::take(&mut self.comp_nnz);
        for v in 0..n {
            let c = comps.component_of[v] as usize;
            self.local_of_global[v] = next_local[c] as Vidx;
            next_local[c] += 1;
        }
        self.comp_nnz = next_local;
        debug_assert!((0..k).all(|c| self.comp_nnz[c] == comps.sizes[c]));
        for c in self.comp_nnz.iter_mut() {
            *c = 0;
        }
        for v in 0..n {
            self.comp_nnz[comps.component_of[v] as usize] += a.col_nnz(v);
        }

        // Reclaim buffers from the previous round's pieces (slot-for-slot, so
        // re-splitting the same matrix finds capacities that already fit).
        while self.pieces.len() < k {
            self.growth_events += 1;
            self.pieces.push(ComponentPiece::empty());
        }
        while self.work.len() < k {
            // Bookkeeping only — PieceBufs start empty; real growth is
            // counted per buffer below.
            self.work.push(PieceBufs::default());
        }
        for c in 0..k {
            let slot = std::mem::replace(&mut self.pieces[c], ComponentPiece::empty());
            let (_, _, col_ptr, row_idx) = slot.matrix.into_parts();
            let w = &mut self.work[c];
            w.col_ptr = col_ptr;
            w.row_idx = row_idx;
            w.vertices = slot.vertices;
            let size = comps.sizes[c];
            w.col_ptr.clear();
            if w.col_ptr.capacity() < size + 1 {
                events += 1;
                w.col_ptr.reserve(size + 1);
            }
            if w.row_idx.capacity() < self.comp_nnz[c] {
                events += 1;
                w.row_idx.reserve(self.comp_nnz[c]);
            }
            if w.vertices.capacity() < size {
                events += 1;
                w.vertices.reserve(size);
            }
            w.row_idx.clear();
            w.vertices.clear();
            w.col_ptr.push(0);
        }

        // Pass 2: one global column scan appends each column to its piece.
        // Within a component, ascending global order == ascending local
        // order, and neighbours relabel monotonically, so every local column
        // lands sorted — the CSC invariants hold by construction.
        for v in 0..n {
            let c = comps.component_of[v] as usize;
            let w = &mut self.work[c];
            w.vertices.push(v as Vidx);
            for &r in a.col(v) {
                w.row_idx.push(self.local_of_global[r as usize]);
            }
            w.col_ptr.push(w.row_idx.len());
        }

        // Rebuild the pieces from the filled buffers.
        for c in 0..k {
            let w = std::mem::take(&mut self.work[c]);
            let size = comps.sizes[c];
            self.pieces[c] = ComponentPiece {
                matrix: CscMatrix::from_parts(size, size, w.col_ptr, w.row_idx),
                vertices: w.vertices,
            };
        }
        self.growth_events = events;
        &self.pieces[..k]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::connected_components;
    use crate::coo::CooBuilder;

    fn two_paths_interleaved() -> CscMatrix {
        // Path A over even ids {0,2,4,6}, path B over odd ids {1,3,5}.
        let mut b = CooBuilder::new(7, 7);
        b.push_sym(0, 2);
        b.push_sym(2, 4);
        b.push_sym(4, 6);
        b.push_sym(1, 3);
        b.push_sym(3, 5);
        b.build()
    }

    #[test]
    fn splits_interleaved_paths() {
        let a = two_paths_interleaved();
        let comps = connected_components(&a);
        let mut sp = ComponentSplit::new();
        let pieces = sp.split(&a, &comps);
        assert_eq!(pieces.len(), 2);
        assert_eq!(pieces[0].vertices, vec![0, 2, 4, 6]);
        assert_eq!(pieces[1].vertices, vec![1, 3, 5]);
        // Piece 0 is a 4-path in local ids 0-1-2-3.
        let m0 = &pieces[0].matrix;
        assert_eq!(m0.n_rows(), 4);
        assert_eq!(m0.nnz(), 6);
        assert!(m0.contains(1, 0) && m0.contains(2, 1) && m0.contains(3, 2));
        // Piece 1 is a 3-path.
        let m1 = &pieces[1].matrix;
        assert_eq!(m1.n_rows(), 3);
        assert!(m1.contains(1, 0) && m1.contains(2, 1));
        // The inverse map matches `vertices`.
        let vertex_lists: Vec<Vec<Vidx>> = pieces.iter().map(|p| p.vertices.clone()).collect();
        for (c, verts) in vertex_lists.iter().enumerate() {
            for (u, &g) in verts.iter().enumerate() {
                assert_eq!(sp.local_of_global()[g as usize], u as Vidx);
                assert_eq!(comps.component_of[g as usize] as usize, c);
            }
        }
    }

    #[test]
    fn preserves_structural_diagonals() {
        let mut b = CooBuilder::new(4, 4);
        b.push_sym(0, 2);
        b.push(2, 2); // self-loop in component {0, 2}
        b.push(1, 1); // self-loop on the singleton 1
        let a = b.build();
        let comps = connected_components(&a);
        let mut sp = ComponentSplit::new();
        let pieces = sp.split(&a, &comps);
        assert_eq!(pieces.len(), 3); // {0,2}, {1}, {3}
        assert!(pieces[0].matrix.contains(1, 1)); // global (2,2)
        assert!(pieces[1].matrix.contains(0, 0)); // global (1,1)
        assert_eq!(pieces[2].matrix.nnz(), 0);
        let total: usize = pieces.iter().map(|p| p.matrix.nnz()).sum();
        assert_eq!(total, a.nnz());
    }

    #[test]
    fn isolated_vertices_become_singletons() {
        let a = CscMatrix::empty(5);
        let comps = connected_components(&a);
        let mut sp = ComponentSplit::new();
        let pieces = sp.split(&a, &comps);
        assert_eq!(pieces.len(), 5);
        for (c, p) in pieces.iter().enumerate() {
            assert_eq!(p.matrix.n_rows(), 1);
            assert_eq!(p.vertices, vec![c as Vidx]);
        }
    }

    #[test]
    fn empty_matrix_yields_no_pieces() {
        let a = CscMatrix::empty(0);
        let comps = connected_components(&a);
        let mut sp = ComponentSplit::new();
        assert!(sp.split(&a, &comps).is_empty());
    }

    #[test]
    fn resplitting_is_allocation_free() {
        let a = two_paths_interleaved();
        let comps = connected_components(&a);
        let mut sp = ComponentSplit::new();
        sp.split(&a, &comps);
        let warm = sp.growth_events();
        assert!(warm > 0, "first split must install buffers");
        for _ in 0..3 {
            sp.split(&a, &comps);
        }
        assert_eq!(sp.growth_events(), warm, "warm re-splits must not grow");
        // A strictly smaller matrix fits in the same buffers.
        let mut b = CooBuilder::new(3, 3);
        b.push_sym(0, 2);
        let small = b.build();
        let small_comps = connected_components(&small);
        sp.split(&small, &small_comps);
        assert_eq!(sp.growth_events(), warm);
    }
}
