//! One-bit-per-vertex sets for the cache-shaped expansion kernels.
//!
//! The Beamer-style pull scan ([`crate::spmspv_pull`]) spends its time
//! asking "is row `r` still a candidate?" for every vertex of the matrix.
//! A `Vec<bool>` answers one vertex per byte; [`VertexBitmap`] packs 64
//! answers into each `u64` word, so one cache line covers 512 vertices and
//! a word whose bits are all zero — a fully-visited stretch of the vertex
//! range — is skipped with a single compare instead of 64 loads. The
//! iteration order over set bits is ascending vertex index, which is
//! exactly the row-scan order the pull kernel needs for bit-identical
//! output.
//!
//! Buffers follow the workspace grow-only contract: [`VertexBitmap::ensure`]
//! never shrinks the backing words, and the O(words) resets
//! ([`VertexBitmap::reset_ones`] / [`VertexBitmap::reset_zeros`]) report
//! whether the store had to grow so owners can fold it into their
//! growth-event counters.

use crate::Vidx;
use std::ops::Range;

const WORD_BITS: usize = 64;

/// A set of vertices stored one bit per vertex in `u64` words.
///
/// Bits at positions `>= len` are kept zero (the *tail invariant*), so word
/// iteration never reports a phantom vertex even on a warm bitmap whose
/// backing store once served a larger matrix.
///
/// ```
/// use rcm_sparse::VertexBitmap;
///
/// let mut b = VertexBitmap::new(130);
/// b.insert(3);
/// b.insert(128);
/// assert!(b.contains(3) && !b.contains(4));
/// assert_eq!(b.ones().collect::<Vec<_>>(), vec![3, 128]);
/// assert_eq!(b.words()[1], 0, "word 1 (bits 64..128) skippable in one compare");
/// ```
#[derive(Clone, Debug)]
pub struct VertexBitmap {
    words: Vec<u64>,
    len: usize,
}

impl VertexBitmap {
    /// An empty set over `n` vertices (all bits clear).
    pub fn new(n: usize) -> Self {
        VertexBitmap {
            words: vec![0; n.div_ceil(WORD_BITS)],
            len: n,
        }
    }

    /// Logical number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the logical length is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of backing words covering the logical length.
    #[inline]
    pub fn n_words(&self) -> usize {
        self.len.div_ceil(WORD_BITS)
    }

    /// Grow (never shrinks) to at least `n` vertices; new bits are clear.
    /// Returns whether the backing store had to grow.
    pub fn ensure(&mut self, n: usize) -> bool {
        self.len = self.len.max(n);
        let need = n.div_ceil(WORD_BITS);
        let grew = self.words.capacity() < need;
        if self.words.len() < need {
            self.words.resize(need, 0);
        }
        grew
    }

    /// Re-bind to an `n`-vertex matrix with every vertex *out* of the set.
    /// O(words); returns whether the backing store had to grow.
    pub fn reset_zeros(&mut self, n: usize) -> bool {
        let grew = self.ensure(n);
        self.len = n;
        self.words.fill(0);
        grew
    }

    /// Re-bind to an `n`-vertex matrix with every vertex *in* the set
    /// (the "all unvisited" install state). O(words); bits beyond `n` are
    /// cleared to keep the tail invariant. Returns whether the backing
    /// store had to grow.
    pub fn reset_ones(&mut self, n: usize) -> bool {
        let grew = self.ensure(n);
        self.len = n;
        let full = n / WORD_BITS;
        self.words[..full].fill(u64::MAX);
        self.words[full..].fill(0);
        if !n.is_multiple_of(WORD_BITS) {
            self.words[full] = (1u64 << (n % WORD_BITS)) - 1;
        }
        grew
    }

    /// Put vertex `i` in the set.
    #[inline]
    pub fn insert(&mut self, i: Vidx) {
        let i = i as usize;
        debug_assert!(i < self.len, "vertex {i} out of range {}", self.len);
        self.words[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
    }

    /// Take vertex `i` out of the set.
    #[inline]
    pub fn remove(&mut self, i: Vidx) {
        let i = i as usize;
        debug_assert!(i < self.len, "vertex {i} out of range {}", self.len);
        self.words[i / WORD_BITS] &= !(1u64 << (i % WORD_BITS));
    }

    /// O(1) membership test (false beyond the logical length).
    #[inline]
    pub fn contains(&self, i: Vidx) -> bool {
        let i = i as usize;
        i < self.len && self.words[i / WORD_BITS] & (1u64 << (i % WORD_BITS)) != 0
    }

    /// The backing words (64 vertices each, tail bits zero) — the word
    /// stream the pull kernel scans.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Number of vertices in the set.
    pub fn count(&self) -> usize {
        self.words[..self.n_words()]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// The smallest vertex in word `wi` that is *not* in the set (and is
    /// within the logical length), if any — the "first unset in word" scan
    /// used to find an unvisited vertex inside a partially-visited word.
    pub fn first_unset_in_word(&self, wi: usize) -> Option<Vidx> {
        let base = wi * WORD_BITS;
        if base >= self.len {
            return None;
        }
        let limit = (self.len - base).min(WORD_BITS);
        let mask = if limit == WORD_BITS {
            u64::MAX
        } else {
            (1u64 << limit) - 1
        };
        let unset = !self.words[wi] & mask;
        if unset == 0 {
            None
        } else {
            Some((base + unset.trailing_zeros() as usize) as Vidx)
        }
    }

    /// The smallest vertex not in the set, scanning a word at a time
    /// (all-ones words — fully visited stretches — cost one compare each).
    pub fn first_unset(&self) -> Option<Vidx> {
        (0..self.n_words()).find_map(|wi| self.first_unset_in_word(wi))
    }

    /// Iterate the set vertices in ascending order, skipping empty words
    /// with one compare each.
    pub fn ones(&self) -> Ones<'_> {
        self.ones_in(0..self.len)
    }

    /// Iterate the set vertices inside `range` (clamped to the logical
    /// length) in ascending order — the chunk-claiming form the pool's
    /// pull expansion uses.
    pub fn ones_in(&self, range: Range<usize>) -> Ones<'_> {
        let start = range.start.min(self.len);
        let end = range.end.min(self.len);
        let mut it = Ones {
            words: &self.words,
            wi: start / WORD_BITS,
            end_word: end.div_ceil(WORD_BITS),
            cur: 0,
            start,
            end,
        };
        if start < end {
            it.cur = it.load(it.wi);
        } else {
            it.end_word = it.wi; // empty range: exhaust immediately
        }
        it
    }
}

/// Iterator over the set bits of a [`VertexBitmap`] within a vertex range.
pub struct Ones<'a> {
    words: &'a [u64],
    wi: usize,
    end_word: usize,
    cur: u64,
    start: usize,
    end: usize,
}

impl Ones<'_> {
    /// Word `wi` masked to the iteration range.
    fn load(&self, wi: usize) -> u64 {
        let mut w = self.words[wi];
        let base = wi * WORD_BITS;
        if base < self.start {
            w &= u64::MAX << (self.start - base);
        }
        if base + WORD_BITS > self.end {
            let keep = self.end - base; // > 0 while wi < end_word
            if keep < WORD_BITS {
                w &= (1u64 << keep) - 1;
            }
        }
        w
    }
}

impl Iterator for Ones<'_> {
    type Item = Vidx;

    #[inline]
    fn next(&mut self) -> Option<Vidx> {
        loop {
            if self.cur != 0 {
                let b = self.cur.trailing_zeros() as usize;
                self.cur &= self.cur - 1;
                return Some((self.wi * WORD_BITS + b) as Vidx);
            }
            self.wi += 1;
            if self.wi >= self.end_word {
                return None;
            }
            self.cur = self.load(self.wi);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains_roundtrip() {
        let mut b = VertexBitmap::new(200);
        for v in [0u32, 63, 64, 65, 127, 128, 199] {
            assert!(!b.contains(v));
            b.insert(v);
            assert!(b.contains(v));
        }
        b.remove(64);
        assert!(!b.contains(64));
        assert!(b.contains(63) && b.contains(65));
        assert_eq!(b.count(), 6);
    }

    #[test]
    fn ones_skips_empty_words_and_orders_ascending() {
        let mut b = VertexBitmap::new(640);
        let set = [600u32, 5, 130, 128, 7];
        for &v in &set {
            b.insert(v);
        }
        assert_eq!(b.ones().collect::<Vec<_>>(), vec![5, 7, 128, 130, 600]);
    }

    #[test]
    fn ones_in_masks_partial_boundary_words() {
        let mut b = VertexBitmap::new(256);
        for v in 0..256u32 {
            b.insert(v);
        }
        assert_eq!(
            b.ones_in(62..67).collect::<Vec<_>>(),
            vec![62, 63, 64, 65, 66]
        );
        assert_eq!(b.ones_in(100..100).count(), 0);
        assert_eq!(b.ones_in(250..300).collect::<Vec<_>>().len(), 6);
    }

    #[test]
    fn reset_ones_sets_exact_prefix_and_clears_tail() {
        let mut b = VertexBitmap::new(0);
        assert!(b.reset_ones(70), "first bind must grow");
        assert_eq!(b.count(), 70);
        assert!(b.contains(69) && !b.contains(70));
        // Re-bind smaller: high-water store, shorter logical length, no
        // phantom bits from the larger run.
        assert!(!b.reset_ones(10), "smaller re-bind must not grow");
        assert_eq!(b.count(), 10);
        assert_eq!(b.ones().max(), Some(9));
        assert_eq!(b.words()[1], 0, "tail word cleared");
    }

    #[test]
    fn first_unset_scans_past_full_words() {
        let mut b = VertexBitmap::new(130);
        b.reset_ones(130);
        assert_eq!(b.first_unset(), None, "full set has no unset vertex");
        b.remove(129);
        assert_eq!(b.first_unset(), Some(129));
        assert_eq!(b.first_unset_in_word(0), None);
        assert_eq!(b.first_unset_in_word(2), Some(129));
        b.remove(70);
        assert_eq!(b.first_unset(), Some(70));
    }

    #[test]
    fn first_unset_respects_logical_length() {
        // 65 vertices, all set: bit 65 of word 1 is physically zero but
        // beyond the logical length — it must not be reported.
        let mut b = VertexBitmap::new(65);
        b.reset_ones(65);
        assert_eq!(b.first_unset_in_word(1), None);
        assert_eq!(b.first_unset(), None);
    }

    #[test]
    fn ensure_grows_only() {
        let mut b = VertexBitmap::new(10);
        b.insert(3);
        assert!(b.ensure(500));
        assert!(b.contains(3), "growth preserves contents");
        assert!(!b.ensure(100), "shrinking request is a no-op");
        assert_eq!(b.len(), 500);
    }
}
