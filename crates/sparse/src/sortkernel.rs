//! Two-pass counting sort for SORTPERM's (value, degree, vertex) keys.
//!
//! SORTPERM (Table I) ranks the current expansion's vertices by
//! `(parent label, degree, vertex)`. Parent labels in one Cuthill-McKee
//! level are drawn from the *previous* level's half-open label range, so
//! instead of comparison-sorting full tuples — or pushing each vertex into
//! a per-parent bucket `Vec` whose reallocation and pointer-chasing costs
//! dominate for small buckets — the kernel counts bucket sizes, prefix-sums
//! them, and scatters `(degree, vertex)` pairs into one flat buffer: two
//! linear passes, O(entries + buckets), no per-bucket allocation. Each
//! bucket is then finished with a tiny `(degree, vertex)` sort, which is
//! exactly the tie-break order of the tuple sort because vertex ids are
//! unique.
//!
//! The scratch buffers follow the grow-only workspace contract (PR 5): a
//! warm [`SortpermScratch`] serves any batch no larger than its high-water
//! mark without allocating.

use crate::{Label, Vidx};

/// Reusable scratch for [`counting_sortperm`]: the bucket histogram /
/// offset array and the flat scatter buffer.
#[derive(Default)]
pub struct SortpermScratch {
    offs: Vec<usize>,
    buf: Vec<(Vidx, Vidx)>,
    growth_events: usize,
}

impl SortpermScratch {
    /// Empty scratch (first use counts one growth event per buffer).
    pub fn new() -> Self {
        Self::default()
    }

    /// Times either backing store had to grow — flat once warm.
    pub fn growth_events(&self) -> usize {
        self.growth_events
    }

    /// Pre-grow both backing stores to their `n`-vertex high-water mark
    /// (≤ `n` entries and ≤ `n + 1` bucket offsets per call, since vertices
    /// are unique and parent labels are consecutive). Install-time warm-up:
    /// after this, calls for any level of an `n`-vertex ordering allocate
    /// nothing, however the per-level shapes fall.
    pub fn ensure(&mut self, n: usize) {
        let grew = self.offs.capacity() < n + 1 || self.buf.capacity() < n;
        self.offs.reserve(n + 1 - self.offs.len().min(n + 1));
        self.buf.reserve(n - self.buf.len().min(n));
        if grew {
            self.growth_events += 1;
        }
    }
}

/// Sort `entries` — `(vertex, value)` pairs with every value inside the
/// half-open `value_range` — by `(value, degree, vertex)` using a two-pass
/// counting sort keyed on the value, and return the ordered
/// `(degree, vertex)` pairs.
///
/// Bit-identical to collecting `(value, degrees[vertex], vertex)` tuples
/// and `sort_unstable`-ing them: the counting pass groups by value in
/// ascending order, and the per-bucket `(degree, vertex)` sort applies the
/// same tie-break (unique vertex ids make the comparison total, so
/// unstable sorting cannot diverge).
pub fn counting_sortperm<'a>(
    entries: &[(Vidx, Label)],
    value_range: (Label, Label),
    degrees: &[Vidx],
    scratch: &'a mut SortpermScratch,
) -> &'a [(Vidx, Vidx)] {
    let (lo, hi) = value_range;
    debug_assert!(lo <= hi, "empty or inverted value range {lo}..{hi}");
    let nbuckets = (hi - lo) as usize;
    let offs_cap = scratch.offs.capacity();
    let buf_cap = scratch.buf.capacity();

    // Pass 1: count per-value bucket sizes, then prefix-sum into offsets.
    scratch.offs.clear();
    scratch.offs.resize(nbuckets + 1, 0);
    for &(v, val) in entries {
        debug_assert!(
            (lo..hi).contains(&val),
            "value {val} for vertex {v} outside batch range {lo}..{hi}"
        );
        scratch.offs[(val - lo) as usize + 1] += 1;
    }
    for k in 1..=nbuckets {
        scratch.offs[k] += scratch.offs[k - 1];
    }

    // Pass 2: scatter (degree, vertex) pairs to their bucket slots,
    // advancing `offs[b]` in place as the live cursor (no extra array);
    // afterwards `offs[b]` holds bucket `b`'s end.
    scratch.buf.clear();
    scratch.buf.resize(entries.len(), (0, 0));
    for &(v, val) in entries {
        let b = (val - lo) as usize;
        scratch.buf[scratch.offs[b]] = (degrees[v as usize], v);
        scratch.offs[b] += 1;
    }

    // Finish each bucket with the (degree, vertex) tie-break.
    let mut start = 0usize;
    for k in 0..nbuckets {
        let end = scratch.offs[k];
        scratch.buf[start..end].sort_unstable();
        start = end;
    }

    if scratch.offs.capacity() > offs_cap || scratch.buf.capacity() > buf_cap {
        scratch.growth_events += 1;
    }
    &scratch.buf
}

/// Per-parent bucket-`Vec` reference implementation — the pre-counting-sort
/// idiom (push into `Vec<Vec<_>>`, sort each bucket, concatenate), kept for
/// differential tests and the SORTPERM microbenchmark baseline.
pub fn bucket_sortperm_ref(
    entries: &[(Vidx, Label)],
    value_range: (Label, Label),
    degrees: &[Vidx],
) -> Vec<(Vidx, Vidx)> {
    let (lo, hi) = value_range;
    let mut buckets: Vec<Vec<(Vidx, Vidx)>> = vec![Vec::new(); (hi - lo) as usize];
    for &(v, val) in entries {
        buckets[(val - lo) as usize].push((degrees[v as usize], v));
    }
    let mut out = Vec::with_capacity(entries.len());
    for bucket in &mut buckets {
        bucket.sort_unstable();
        out.extend_from_slice(bucket);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuple_sort_ref(entries: &[(Vidx, Label)], degrees: &[Vidx]) -> Vec<(Vidx, Vidx)> {
        let mut tuples: Vec<(Label, Vidx, Vidx)> = entries
            .iter()
            .map(|&(v, val)| (val, degrees[v as usize], v))
            .collect();
        tuples.sort_unstable();
        tuples.into_iter().map(|(_, d, v)| (d, v)).collect()
    }

    #[test]
    fn matches_tuple_sort_with_duplicates_and_empty_buckets() {
        let degrees: Vec<Vidx> = vec![3, 1, 4, 1, 5, 9, 2, 6, 5, 3];
        // Values in 10..15; value 12 bucket left empty; ties on value AND
        // degree resolved by vertex.
        let entries: Vec<(Vidx, Label)> = vec![
            (7, 14),
            (2, 10),
            (9, 10),
            (0, 10),
            (4, 13),
            (8, 13),
            (1, 11),
            (3, 11),
        ];
        let expect = tuple_sort_ref(&entries, &degrees);
        let mut scratch = SortpermScratch::new();
        let got = counting_sortperm(&entries, (10, 15), &degrees, &mut scratch);
        assert_eq!(got, &expect[..]);
        assert_eq!(bucket_sortperm_ref(&entries, (10, 15), &degrees), expect);
    }

    #[test]
    fn empty_input_and_single_bucket() {
        let degrees: Vec<Vidx> = vec![2, 2, 2];
        let mut scratch = SortpermScratch::new();
        assert!(counting_sortperm(&[], (0, 0), &degrees, &mut scratch).is_empty());
        let entries: Vec<(Vidx, Label)> = vec![(2, 5), (0, 5), (1, 5)];
        let got = counting_sortperm(&entries, (5, 6), &degrees, &mut scratch);
        assert_eq!(got, &[(2, 0), (2, 1), (2, 2)]);
    }

    #[test]
    fn warm_scratch_stops_growing_at_high_water() {
        let degrees: Vec<Vidx> = (0..100).map(|v| (v % 7) as Vidx).collect();
        let big: Vec<(Vidx, Label)> = (0..100).map(|v| (v as Vidx, (v % 20) as Label)).collect();
        let small: Vec<(Vidx, Label)> = (0..10).map(|v| (v as Vidx, (v % 3) as Label)).collect();
        let mut scratch = SortpermScratch::new();
        counting_sortperm(&big, (0, 20), &degrees, &mut scratch);
        let warm = scratch.growth_events();
        for _ in 0..5 {
            counting_sortperm(&small, (0, 3), &degrees, &mut scratch);
            counting_sortperm(&big, (0, 20), &degrees, &mut scratch);
        }
        assert_eq!(scratch.growth_events(), warm);
    }
}
