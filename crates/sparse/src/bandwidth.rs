//! Ordering-quality metrics: bandwidth, envelope (profile) and wavefront.
//!
//! Definitions follow §II-A of the paper. For a symmetric matrix `A`, let
//! `f_i(A)` be the row index of the first nonzero in column `i`; the i-th
//! bandwidth is `β_i(A) = i − f_i(A)` (clamped at 0 for columns whose first
//! nonzero is on/below the diagonal), the overall bandwidth is
//! `β(A) = max_i β_i(A)`, and the profile (envelope size) is `Σ_i β_i(A)`.

use crate::csc::CscMatrix;

/// Overall bandwidth `β(A) = max_i (i − f_i(A))`.
pub fn bandwidth(a: &CscMatrix) -> usize {
    let mut bw = 0usize;
    for c in 0..a.n_cols() {
        bw = bw.max(col_bandwidth(a, c));
    }
    bw
}

/// The i-th bandwidth `β_i(A)` of column `i`.
#[inline]
pub fn col_bandwidth(a: &CscMatrix, c: usize) -> usize {
    match a.col(c).first() {
        Some(&first) if (first as usize) < c => c - first as usize,
        _ => 0,
    }
}

/// Envelope size (profile) `|Env(A)| = Σ_i β_i(A)`.
pub fn envelope_size(a: &CscMatrix) -> u64 {
    (0..a.n_cols()).map(|c| col_bandwidth(a, c) as u64).sum()
}

/// Maximum and root-mean-square *wavefront*. The wavefront at step `i` is
/// the number of rows `j ≥ i` that have a nonzero in columns `0..=i`; it
/// governs the working-set size of envelope-based factorizations and is the
/// quantity Sloan's algorithm minimises.
pub fn wavefront(a: &CscMatrix) -> (usize, f64) {
    let n = a.n_cols();
    if n == 0 {
        return (0, 0.0);
    }
    // Row j enters the front when column min-neighbour(j) is reached and
    // leaves after column j itself is eliminated.
    let mut first_col = (0..n).collect::<Vec<usize>>();
    for c in 0..n {
        for &r in a.col(c) {
            let r = r as usize;
            if c < first_col[r] {
                first_col[r] = c;
            }
        }
    }
    let mut enters = vec![0i64; n + 1];
    for j in 0..n {
        enters[first_col[j]] += 1;
        enters[j + 1] -= 1;
    }
    let mut active = 0i64;
    let mut maxw = 0i64;
    let mut sumsq = 0f64;
    for e in enters.iter().take(n) {
        active += e;
        maxw = maxw.max(active);
        sumsq += (active as f64) * (active as f64);
    }
    (maxw as usize, (sumsq / n as f64).sqrt())
}

/// Summary of ordering quality for reporting.
#[derive(Clone, Debug, PartialEq)]
pub struct BandwidthReport {
    /// Overall bandwidth `β(A)`.
    pub bandwidth: usize,
    /// Envelope size (profile) `|Env(A)|`.
    pub profile: u64,
    /// Maximum wavefront.
    pub max_wavefront: usize,
    /// Root-mean-square wavefront.
    pub rms_wavefront: f64,
}

impl BandwidthReport {
    /// Compute all quality metrics for a (symmetric) matrix.
    pub fn of(a: &CscMatrix) -> Self {
        let (maxw, rmsw) = wavefront(a);
        BandwidthReport {
            bandwidth: bandwidth(a),
            profile: envelope_size(a),
            max_wavefront: maxw,
            rms_wavefront: rmsw,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooBuilder;
    use crate::perm::Permutation;
    use crate::Vidx;

    fn path_graph(n: usize) -> CscMatrix {
        let mut b = CooBuilder::new(n, n);
        for v in 0..n - 1 {
            b.push_sym(v as Vidx, (v + 1) as Vidx);
        }
        b.build()
    }

    #[test]
    fn diagonal_matrix_has_zero_bandwidth() {
        let m = CscMatrix::eye(5);
        assert_eq!(bandwidth(&m), 0);
        assert_eq!(envelope_size(&m), 0);
    }

    #[test]
    fn path_in_natural_order_has_bandwidth_one() {
        let m = path_graph(6);
        assert_eq!(bandwidth(&m), 1);
        assert_eq!(envelope_size(&m), 5); // columns 1..=5 each contribute 1
    }

    #[test]
    fn scrambled_path_has_larger_bandwidth() {
        let m = path_graph(6);
        // Send vertex 0 to position 5: edge (0,1) now spans |5-?| > 1.
        let p = Permutation::from_new_of_old(vec![5, 0, 1, 2, 3, 4]).unwrap();
        let pm = m.permute_sym(&p);
        assert!(bandwidth(&pm) > 1);
        assert_eq!(bandwidth(&pm), 5);
    }

    #[test]
    fn arrow_matrix_bandwidth() {
        // Star graph centered at the last vertex (arrowhead matrix pointing
        // down-right): column n-1 touches row 0 → β = n-1.
        let n = 7;
        let mut b = CooBuilder::new(n, n);
        for v in 0..n - 1 {
            b.push_sym(v as Vidx, (n - 1) as Vidx);
        }
        let m = b.build();
        assert_eq!(bandwidth(&m), n - 1);
        // Profile: only column n-1 has entries above the diagonal at distance
        // ... every column v < n-1 has entry (n-1, v) below diagonal (β_v = 0),
        // column n-1 has first nonzero at row 0 → β = n-1.
        assert_eq!(envelope_size(&m), (n - 1) as u64);
    }

    #[test]
    fn wavefront_of_tridiagonal() {
        let m = path_graph(5);
        let (maxw, rmsw) = wavefront(&m);
        // Tridiagonal: at each step the active front holds the current and
        // next row → max wavefront 2 (except the final step).
        assert_eq!(maxw, 2);
        assert!(rmsw > 1.0 && rmsw <= 2.0);
    }

    #[test]
    fn report_is_consistent() {
        let m = path_graph(8);
        let r = BandwidthReport::of(&m);
        assert_eq!(r.bandwidth, 1);
        assert_eq!(r.profile, 7);
        assert_eq!(r.max_wavefront, 2);
    }

    #[test]
    fn empty_matrix_report() {
        let m = CscMatrix::empty(0);
        let r = BandwidthReport::of(&m);
        assert_eq!(r.bandwidth, 0);
        assert_eq!(r.profile, 0);
        assert_eq!(r.max_wavefront, 0);
    }
}
