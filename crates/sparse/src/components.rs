//! Connected components of a symmetric pattern matrix.
//!
//! RCM processes one component at a time (Algorithm 3 assumes a connected
//! graph; the drivers reseed per component). This module provides the
//! standalone component analysis used by tests, statistics and callers that
//! want to inspect structure before ordering.

use crate::csc::CscMatrix;
use crate::Vidx;

/// Component labeling of a graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Components {
    /// `component_of[v]` is the 0-based component id of vertex `v`;
    /// components are numbered by their smallest vertex id.
    pub component_of: Vec<Vidx>,
    /// Vertex count of each component.
    pub sizes: Vec<usize>,
}

impl Components {
    /// Number of components.
    pub fn count(&self) -> usize {
        self.sizes.len()
    }

    /// True when the whole graph is one component (or empty).
    pub fn is_connected(&self) -> bool {
        self.count() <= 1
    }

    /// Size of the largest component.
    pub fn largest(&self) -> usize {
        self.sizes.iter().copied().max().unwrap_or(0)
    }
}

/// Label connected components with an iterative BFS (no recursion — safe for
/// path-like graphs of any length).
pub fn connected_components(a: &CscMatrix) -> Components {
    assert_eq!(a.n_rows(), a.n_cols(), "components need a square matrix");
    let n = a.n_rows();
    let mut component_of = vec![Vidx::MAX; n];
    let mut sizes = Vec::new();
    let mut queue: Vec<Vidx> = Vec::new();
    for v in 0..n {
        if component_of[v] != Vidx::MAX {
            continue;
        }
        let id = sizes.len() as Vidx;
        let mut size = 1usize;
        component_of[v] = id;
        queue.clear();
        queue.push(v as Vidx);
        // True FIFO frontier: `head` walks forward over the queue instead of
        // popping from the back, so vertices are visited in breadth order.
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            for &w in a.col(u as usize) {
                if component_of[w as usize] == Vidx::MAX {
                    component_of[w as usize] = id;
                    size += 1;
                    queue.push(w);
                }
            }
        }
        sizes.push(size);
    }
    Components {
        component_of,
        sizes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooBuilder;

    #[test]
    fn single_path_is_connected() {
        let mut b = CooBuilder::new(5, 5);
        for v in 0..4u32 {
            b.push_sym(v, v + 1);
        }
        let c = connected_components(&b.build());
        assert!(c.is_connected());
        assert_eq!(c.sizes, vec![5]);
    }

    #[test]
    fn isolated_vertices_are_components() {
        let c = connected_components(&CscMatrix::empty(4));
        assert_eq!(c.count(), 4);
        assert_eq!(c.largest(), 1);
        assert_eq!(c.component_of, vec![0, 1, 2, 3]);
    }

    #[test]
    fn mixed_components() {
        let mut b = CooBuilder::new(7, 7);
        b.push_sym(0, 1);
        b.push_sym(1, 2);
        b.push_sym(4, 5);
        let c = connected_components(&b.build());
        assert_eq!(c.count(), 4); // {0,1,2}, {3}, {4,5}, {6}
        assert_eq!(c.sizes, vec![3, 1, 2, 1]);
        assert_eq!(c.component_of[5], c.component_of[4]);
        assert_ne!(c.component_of[0], c.component_of[4]);
    }

    #[test]
    fn empty_matrix() {
        let c = connected_components(&CscMatrix::empty(0));
        assert_eq!(c.count(), 0);
        assert!(c.is_connected());
    }

    /// Labeling must not depend on traversal order: a DFS reference walk
    /// (LIFO frontier) over the same graph produces the identical labeling,
    /// because ids are assigned by smallest vertex and membership is a graph
    /// property, not a visitation artifact.
    #[test]
    fn labeling_is_traversal_order_independent() {
        fn dfs_reference(a: &CscMatrix) -> Components {
            let n = a.n_rows();
            let mut component_of = vec![Vidx::MAX; n];
            let mut sizes = Vec::new();
            let mut stack: Vec<Vidx> = Vec::new();
            for v in 0..n {
                if component_of[v] != Vidx::MAX {
                    continue;
                }
                let id = sizes.len() as Vidx;
                let mut size = 1usize;
                component_of[v] = id;
                stack.clear();
                stack.push(v as Vidx);
                while let Some(u) = stack.pop() {
                    for &w in a.col(u as usize) {
                        if component_of[w as usize] == Vidx::MAX {
                            component_of[w as usize] = id;
                            size += 1;
                            stack.push(w);
                        }
                    }
                }
                sizes.push(size);
            }
            Components {
                component_of,
                sizes,
            }
        }

        // An irregular multi-component graph: a path, a star, a triangle with
        // a pendant, and isolated vertices, with ids interleaved.
        let mut b = CooBuilder::new(16, 16);
        b.push_sym(0, 4);
        b.push_sym(4, 8);
        b.push_sym(8, 12); // path 0-4-8-12
        b.push_sym(1, 5);
        b.push_sym(1, 9);
        b.push_sym(1, 13); // star at 1
        b.push_sym(2, 6);
        b.push_sym(6, 10);
        b.push_sym(2, 10);
        b.push_sym(10, 14); // triangle + pendant
        let a = b.build();
        let bfs = connected_components(&a);
        assert_eq!(bfs, dfs_reference(&a));
        assert_eq!(bfs.count(), 3 + 4); // three shapes + {3,7,11,15}
    }

    #[test]
    fn long_path_does_not_overflow_stack() {
        let n = 200_000;
        let mut b = CooBuilder::new(n, n);
        for v in 0..(n - 1) as u32 {
            b.push_sym(v, v + 1);
        }
        let c = connected_components(&b.build());
        assert!(c.is_connected());
        assert_eq!(c.largest(), n);
    }
}
