//! ASCII "spy plots" — terminal renderings of sparsity structure.
//!
//! Fig. 3 of the paper shows a spy plot per matrix; the quickstart example
//! and the `rcm-order` CLI use this module to visualize how RCM pulls the
//! nonzeros toward the diagonal.

use crate::csc::CscMatrix;

/// Render an `size × size` character grid of the matrix's nonzero density.
///
/// Each cell aggregates a block of the matrix; density is mapped to
/// ` .:+#@` (empty → dense). The output includes a border.
pub fn spy(a: &CscMatrix, size: usize) -> String {
    let size = size.clamp(1, 200);
    let n_rows = a.n_rows().max(1);
    let n_cols = a.n_cols().max(1);
    let mut counts = vec![0u64; size * size];
    for (r, c) in a.iter_entries() {
        let br = (r as usize * size) / n_rows;
        let bc = (c as usize * size) / n_cols;
        counts[br * size + bc] += 1;
    }
    // Per-cell capacity for density normalization.
    let cell_rows = (n_rows as f64 / size as f64).max(1.0);
    let cell_cols = (n_cols as f64 / size as f64).max(1.0);
    let cap = (cell_rows * cell_cols).max(1.0);
    const RAMP: [char; 6] = [' ', '.', ':', '+', '#', '@'];
    let mut out = String::with_capacity((size + 3) * (size + 2));
    out.push('+');
    out.push_str(&"-".repeat(size));
    out.push_str("+\n");
    for r in 0..size {
        out.push('|');
        for c in 0..size {
            let density = counts[r * size + c] as f64 / cap;
            let idx = if counts[r * size + c] == 0 {
                0
            } else {
                // Log-ish scaling: sparse matrices have tiny densities.
                let scaled = (density * 50.0).min(1.0);
                1 + ((scaled * (RAMP.len() - 2) as f64).round() as usize).min(RAMP.len() - 2)
            };
            out.push(RAMP[idx]);
        }
        out.push_str("|\n");
    }
    out.push('+');
    out.push_str(&"-".repeat(size));
    out.push_str("+\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooBuilder;
    use crate::Vidx;

    #[test]
    fn diagonal_matrix_draws_a_diagonal() {
        let a = CscMatrix::eye(64);
        let plot = spy(&a, 8);
        let lines: Vec<&str> = plot.lines().collect();
        assert_eq!(lines.len(), 10); // 8 rows + 2 borders
        for (k, line) in lines[1..9].iter().enumerate() {
            let chars: Vec<char> = line.chars().collect();
            assert_ne!(chars[1 + k], ' ', "diagonal cell {k} should be marked");
        }
    }

    #[test]
    fn empty_matrix_is_blank() {
        let a = CscMatrix::empty(10);
        let plot = spy(&a, 5);
        for line in plot.lines().skip(1).take(5) {
            assert!(line[1..6].chars().all(|c| c == ' '));
        }
    }

    #[test]
    fn banded_matrix_marks_near_diagonal_only() {
        let n = 100usize;
        let mut b = CooBuilder::new(n, n);
        for v in 0..(n - 1) as Vidx {
            b.push_sym(v, v + 1);
        }
        let plot = spy(&b.build(), 10);
        let lines: Vec<&str> = plot.lines().collect();
        // Far-off-diagonal corner must stay blank.
        let top_right = lines[1].chars().nth(9).unwrap();
        assert_eq!(top_right, ' ');
    }

    #[test]
    fn size_is_clamped() {
        let a = CscMatrix::eye(3);
        let plot = spy(&a, 0);
        assert!(plot.lines().count() >= 3);
    }
}
