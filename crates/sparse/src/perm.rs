//! Vertex permutations (orderings) with validity checking.
//!
//! A [`Permutation`] maps *old* vertex ids to *new* labels. RCM produces such
//! a map; applying it to a matrix yields `PAPᵀ`.

use crate::Vidx;

/// A bijection on `{0, …, n-1}`.
///
/// Internally stores `new_of_old`: `new_of_old[v]` is the new label of old
/// vertex `v`. The inverse view (`old_of_new`) is computed on demand.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Permutation {
    new_of_old: Vec<Vidx>,
}

impl Permutation {
    /// Identity permutation on `n` elements.
    pub fn identity(n: usize) -> Self {
        Permutation {
            new_of_old: (0..n as Vidx).collect(),
        }
    }

    /// Build from a `new_of_old` map, validating bijectivity.
    ///
    /// Returns `None` if the input is not a permutation of `0..n`.
    pub fn from_new_of_old(new_of_old: Vec<Vidx>) -> Option<Self> {
        let n = new_of_old.len();
        let mut seen = vec![false; n];
        for &l in &new_of_old {
            let l = l as usize;
            if l >= n || seen[l] {
                return None;
            }
            seen[l] = true;
        }
        Some(Permutation { new_of_old })
    }

    /// Build from an ordering sequence: `order[k]` is the old vertex that
    /// receives new label `k` (i.e. the `old_of_new` view).
    pub fn from_order(order: &[Vidx]) -> Option<Self> {
        let n = order.len();
        let mut new_of_old = vec![Vidx::MAX; n];
        for (k, &v) in order.iter().enumerate() {
            let v = v as usize;
            if v >= n || new_of_old[v] != Vidx::MAX {
                return None;
            }
            new_of_old[v] = k as Vidx;
        }
        Some(Permutation { new_of_old })
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.new_of_old.len()
    }

    /// True when the permutation is empty.
    pub fn is_empty(&self) -> bool {
        self.new_of_old.is_empty()
    }

    /// New label of old vertex `v`.
    #[inline]
    pub fn new_of(&self, v: Vidx) -> Vidx {
        self.new_of_old[v as usize]
    }

    /// The raw `new_of_old` slice.
    pub fn as_new_of_old(&self) -> &[Vidx] {
        &self.new_of_old
    }

    /// The inverse view: element `k` is the old vertex with new label `k`.
    pub fn old_of_new(&self) -> Vec<Vidx> {
        let mut out = vec![0 as Vidx; self.new_of_old.len()];
        for (old, &new) in self.new_of_old.iter().enumerate() {
            out[new as usize] = old as Vidx;
        }
        out
    }

    /// Inverse permutation.
    pub fn inverse(&self) -> Permutation {
        Permutation {
            new_of_old: self.old_of_new(),
        }
    }

    /// Reverse the ordering: new label `k` becomes `n-1-k`.
    ///
    /// This converts a Cuthill-McKee ordering into Reverse Cuthill-McKee.
    pub fn reversed(&self) -> Permutation {
        let n = self.new_of_old.len() as Vidx;
        Permutation {
            new_of_old: self.new_of_old.iter().map(|&l| n - 1 - l).collect(),
        }
    }

    /// Composition: apply `self` first, then `after` (both old→new maps);
    /// the result maps `v ↦ after[self[v]]`.
    pub fn then(&self, after: &Permutation) -> Permutation {
        assert_eq!(self.len(), after.len(), "permutation size mismatch");
        Permutation {
            new_of_old: self
                .new_of_old
                .iter()
                .map(|&mid| after.new_of_old[mid as usize])
                .collect(),
        }
    }

    /// Permute a data slice: `out[new_of_old[i]] = data[i]`.
    pub fn apply_to_slice<T: Clone>(&self, data: &[T]) -> Vec<T> {
        assert_eq!(data.len(), self.len());
        let mut out: Vec<T> = data.to_vec();
        for (old, &new) in self.new_of_old.iter().enumerate() {
            out[new as usize] = data[old].clone();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_roundtrip() {
        let p = Permutation::identity(5);
        assert_eq!(p.len(), 5);
        assert_eq!(p.new_of(3), 3);
        assert_eq!(p.inverse(), p);
    }

    #[test]
    fn from_new_of_old_rejects_non_bijections() {
        assert!(Permutation::from_new_of_old(vec![0, 0, 1]).is_none());
        assert!(Permutation::from_new_of_old(vec![0, 3, 1]).is_none());
        assert!(Permutation::from_new_of_old(vec![2, 0, 1]).is_some());
    }

    #[test]
    fn from_order_matches_inverse() {
        // order: vertex 2 gets label 0, vertex 0 label 1, vertex 1 label 2.
        let p = Permutation::from_order(&[2, 0, 1]).unwrap();
        assert_eq!(p.new_of(2), 0);
        assert_eq!(p.new_of(0), 1);
        assert_eq!(p.new_of(1), 2);
        assert_eq!(p.old_of_new(), vec![2, 0, 1]);
    }

    #[test]
    fn from_order_rejects_duplicates() {
        assert!(Permutation::from_order(&[0, 0, 1]).is_none());
    }

    #[test]
    fn reversed_flips_labels() {
        let p = Permutation::from_new_of_old(vec![0, 1, 2, 3]).unwrap();
        let r = p.reversed();
        assert_eq!(r.as_new_of_old(), &[3, 2, 1, 0]);
        // Reversing twice is the identity transformation.
        assert_eq!(r.reversed(), p);
    }

    #[test]
    fn composition_applies_in_order() {
        let a = Permutation::from_new_of_old(vec![1, 2, 0]).unwrap();
        let b = Permutation::from_new_of_old(vec![2, 0, 1]).unwrap();
        let c = a.then(&b);
        // v=0: a->1, b->0
        assert_eq!(c.new_of(0), 0);
        assert_eq!(c.new_of(1), 1);
        assert_eq!(c.new_of(2), 2);
    }

    #[test]
    fn inverse_composes_to_identity() {
        let p = Permutation::from_new_of_old(vec![3, 0, 2, 1]).unwrap();
        assert_eq!(p.then(&p.inverse()), Permutation::identity(4));
        assert_eq!(p.inverse().then(&p), Permutation::identity(4));
    }

    #[test]
    fn apply_to_slice_moves_data() {
        let p = Permutation::from_new_of_old(vec![2, 0, 1]).unwrap();
        let data = vec!["a", "b", "c"];
        assert_eq!(p.apply_to_slice(&data), vec!["b", "c", "a"]);
    }
}
