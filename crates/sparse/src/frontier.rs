//! The dense half of the dual frontier representation.
//!
//! A BFS frontier has two natural encodings: the sorted sparse
//! `(index, value)` list of [`SparseVec`] (cheap to iterate, cheap to ship —
//! the *push* representation) and a dense SPA — a value scratchpad plus an
//! epoch-stamped membership array — that answers "is vertex `w` in the
//! frontier, and with which value?" in O(1) (the *pull* representation).
//! [`DenseFrontier`] is that second encoding, built so that loading a sparse
//! frontier costs O(nnz) and *clearing* costs O(1) (the epoch bump), which is
//! what makes per-level direction switching free: the direction-optimizing
//! driver converts sparse → dense only on the levels that pull
//! ([`crate::spmspv_pull`]) and never pays an O(n) reset.

use crate::spvec::SparseVec;
use crate::Vidx;

/// A dense, epoch-stamped frontier: the SPA/bitmap representation used by
/// the pull (masked row-scan) expansion kernel.
///
/// ```
/// use rcm_sparse::{DenseFrontier, SparseVec};
///
/// let x = SparseVec::from_entries(8, vec![(4, 2i64), (1, 3)]);
/// let mut f = DenseFrontier::new(8);
/// f.load(&x);
/// assert_eq!(f.nnz(), 2);
/// assert_eq!(f.get(4), Some(2));
/// assert_eq!(f.get(0), None);
/// assert_eq!(f.to_sparse(), x);
/// ```
#[derive(Clone, Debug)]
pub struct DenseFrontier<T> {
    values: Vec<T>,
    stamp: Vec<u32>,
    epoch: u32,
    nnz: usize,
}

impl<T: Copy + Default> DenseFrontier<T> {
    /// An empty dense frontier over `n` vertices.
    pub fn new(n: usize) -> Self {
        DenseFrontier {
            values: vec![T::default(); n],
            stamp: vec![0; n],
            // Stamp 0 means "never inserted", so the epoch starts above it.
            epoch: 1,
            nnz: 0,
        }
    }

    /// Logical length `n` (number of vertices).
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the logical length is zero.
    pub fn is_empty_len(&self) -> bool {
        self.values.is_empty()
    }

    /// Stored entries — `nnz(x)` in the paper.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// True when no vertex is in the frontier.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nnz == 0
    }

    /// Grow (never shrinks) to `n` vertices.
    pub fn ensure(&mut self, n: usize) {
        if self.values.len() < n {
            self.values.resize(n, T::default());
            self.stamp.resize(n, 0);
        }
    }

    /// Drop every entry in O(1) (epoch bump; wraparound resets the stamps).
    pub fn clear(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.fill(0);
            self.epoch = 1;
        }
        self.nnz = 0;
    }

    /// Insert (or overwrite) vertex `i` with `value`.
    #[inline]
    pub fn insert(&mut self, i: Vidx, value: T) {
        let ii = i as usize;
        if self.stamp[ii] != self.epoch {
            self.stamp[ii] = self.epoch;
            self.nnz += 1;
        }
        self.values[ii] = value;
    }

    /// O(1) membership test.
    #[inline]
    pub fn contains(&self, i: Vidx) -> bool {
        self.stamp[i as usize] == self.epoch
    }

    /// O(1) lookup: the stored value of `i`, if it is in the frontier.
    #[inline]
    pub fn get(&self, i: Vidx) -> Option<T> {
        let ii = i as usize;
        if self.stamp[ii] == self.epoch {
            Some(self.values[ii])
        } else {
            None
        }
    }

    /// Replace the contents with the entries of a sparse frontier —
    /// the sparse → dense conversion of the dual representation, O(nnz).
    pub fn load(&mut self, x: &SparseVec<T>) {
        self.ensure(x.len());
        self.clear();
        for &(i, v) in x.entries() {
            self.insert(i, v);
        }
    }

    /// Dense → sparse conversion: an O(n) scan yielding the entries in
    /// ascending index order.
    pub fn to_sparse(&self) -> SparseVec<T> {
        let entries: Vec<(Vidx, T)> = (0..self.values.len())
            .filter(|&i| self.stamp[i] == self.epoch)
            .map(|i| (i as Vidx, self.values[i]))
            .collect();
        SparseVec::from_sorted_entries(self.values.len(), entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_roundtrips_through_sparse() {
        let x = SparseVec::from_entries(10, vec![(7, 1i64), (2, 2), (5, 3)]);
        let mut f = DenseFrontier::new(10);
        f.load(&x);
        assert_eq!(f.nnz(), 3);
        assert!(f.contains(7) && f.contains(2) && f.contains(5));
        assert!(!f.contains(0));
        assert_eq!(f.get(2), Some(2));
        assert_eq!(f.to_sparse(), x);
    }

    #[test]
    fn clear_is_constant_time_epoch_bump() {
        let mut f = DenseFrontier::new(4);
        f.insert(1, 5i64);
        f.insert(3, 7);
        assert_eq!(f.nnz(), 2);
        f.clear();
        assert!(f.is_empty());
        assert_eq!(f.get(1), None);
        // Stale values from the previous epoch must never resurface.
        f.insert(3, 9);
        assert_eq!(f.get(3), Some(9));
        assert_eq!(f.nnz(), 1);
    }

    #[test]
    fn insert_overwrites_without_double_counting() {
        let mut f = DenseFrontier::new(4);
        f.insert(2, 1i64);
        f.insert(2, 8);
        assert_eq!(f.nnz(), 1);
        assert_eq!(f.get(2), Some(8));
    }

    #[test]
    fn epoch_wraparound_resets_stamps() {
        let mut f: DenseFrontier<i64> = DenseFrontier::new(3);
        f.epoch = u32::MAX;
        f.insert(0, 1);
        f.clear(); // wraps to 0 → resets to 1
        assert!(!f.contains(0));
        f.insert(1, 2);
        assert_eq!(f.to_sparse().entries(), &[(1, 2)]);
    }

    #[test]
    fn load_grows_to_input_length() {
        let mut f = DenseFrontier::new(2);
        let x = SparseVec::from_entries(9, vec![(8, 4i64)]);
        f.load(&x);
        assert_eq!(f.len(), 9);
        assert_eq!(f.get(8), Some(4));
    }
}
