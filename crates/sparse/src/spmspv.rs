//! Sequential sparse matrix–sparse vector multiplication over a semiring —
//! both expansion directions of the direction-optimizing frontier layer.
//!
//! **Push** ([`spmspv`]) — `SPMSPV(A, x, SR)` (Table I): for every stored
//! entry `x[k]`, visit column `A(:, k)` and merge the products into the
//! output with the semiring's `add`. The serial complexity is
//! `Σ_{k ∈ IND(x)} nnz(A(:, k))` — proportional to the *frontier's* edges.
//!
//! **Pull** ([`spmspv_pull`]) — the Beamer-style bottom-up dual for
//! symmetric patterns: every *candidate* row `r` scans its own adjacency
//! `A(:, r)` and merges the values of the neighbours present in a dense
//! frontier ([`DenseFrontier`]). Complexity is proportional to the
//! *candidates'* edges, independent of frontier size — cheaper than push
//! exactly when the frontier is a large fraction of the unvisited vertices.
//! For a symmetric `A` the two directions produce bit-identical results
//! (row `r`'s in-neighbours are its out-neighbours).
//!
//! The push implementation uses a *sparse accumulator* (SPA): a dense value
//! scratchpad plus a stamp array, reusable across calls via
//! [`SpmspvWorkspace`] so each multiplication allocates nothing. The pull
//! implementation needs no accumulator at all — each output row is finished
//! the moment its scan ends. Its candidate set is a [`VertexBitmap`]
//! scanned a `u64` word at a time (fully visited 64-vertex stretches cost
//! one compare), and its output lands in a warm [`PullBuffer`], so a warm
//! pull level allocates nothing either.

use crate::bitmap::VertexBitmap;
use crate::csc::CscMatrix;
use crate::frontier::DenseFrontier;
use crate::semiring::Semiring;
use crate::spvec::SparseVec;
use crate::Vidx;

/// Reusable scratch space for [`spmspv`] — a classic stamped sparse
/// accumulator sized to the number of matrix rows.
pub struct SpmspvWorkspace<T> {
    values: Vec<T>,
    stamp: Vec<u32>,
    epoch: u32,
    touched: Vec<Vidx>,
    growth_events: usize,
}

impl<T: Copy + Default> SpmspvWorkspace<T> {
    /// Workspace for matrices with `n_rows` rows.
    pub fn new(n_rows: usize) -> Self {
        SpmspvWorkspace {
            values: vec![T::default(); n_rows],
            stamp: vec![0; n_rows],
            epoch: 0,
            touched: Vec::new(),
            growth_events: if n_rows > 0 { 1 } else { 0 },
        }
    }

    /// Times [`SpmspvWorkspace::ensure`] had to grow the accumulator
    /// (a non-empty construction counts once) — the grow-only contract the
    /// engine's growth-event tests assert on: a workspace that has seen an
    /// `n`-row matrix serves any smaller one without allocating.
    pub fn growth_events(&self) -> usize {
        self.growth_events
    }

    /// Grow (never shrinks) to accommodate `n_rows`.
    pub fn ensure(&mut self, n_rows: usize) {
        if self.values.len() < n_rows {
            self.values.resize(n_rows, T::default());
            self.stamp.resize(n_rows, 0);
            self.growth_events += 1;
        }
    }

    fn begin(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Stamp wrapped around: reset to keep correctness.
            self.stamp.fill(0);
            self.epoch = 1;
        }
        self.touched.clear();
    }
}

impl<T: Copy + Default> Default for SpmspvWorkspace<T> {
    fn default() -> Self {
        Self::new(0)
    }
}

/// Multiply pattern matrix `a` by sparse vector `x` over semiring `S`.
///
/// Returns a sparse vector of length `a.n_rows()` whose entry at row `r` is
/// the semiring-sum of `S::multiply(x[k])` over all stored `(r, k)` with
/// `x[k]` stored. Output entries are sorted by index.
///
/// Also returns the number of traversed matrix nonzeros (the serial work
/// `Σ nnz(A(:, k))`), which the distributed simulator charges as compute.
pub fn spmspv<T, S>(
    a: &CscMatrix,
    x: &SparseVec<T>,
    ws: &mut SpmspvWorkspace<T>,
) -> (SparseVec<T>, usize)
where
    T: Copy + Default,
    S: Semiring<T>,
{
    assert_eq!(a.n_cols(), x.len(), "dimension mismatch in SpMSpV");
    ws.ensure(a.n_rows());
    ws.begin();
    let mut work = 0usize;
    for &(k, xv) in x.entries() {
        let col = a.col(k as usize);
        work += col.len();
        let prod = S::multiply(xv);
        for &r in col {
            let ri = r as usize;
            if ws.stamp[ri] == ws.epoch {
                ws.values[ri] = S::add(ws.values[ri], prod);
            } else {
                ws.stamp[ri] = ws.epoch;
                ws.values[ri] = prod;
                ws.touched.push(r);
            }
        }
    }
    ws.touched.sort_unstable();
    let entries: Vec<(Vidx, T)> = ws
        .touched
        .iter()
        .map(|&r| (r, ws.values[r as usize]))
        .collect();
    (SparseVec::from_sorted_entries(a.n_rows(), entries), work)
}

/// Warm, workspace-owned output buffer for [`spmspv_pull`].
///
/// The pull kernel appends its `(row, value)` results here instead of
/// allocating a fresh `Vec` every level; once the buffer has reached its
/// high-water capacity, steady-state calls allocate nothing. Growth is
/// counted so the engine's grow-only tests can assert the high-water
/// contract, mirroring [`SpmspvWorkspace::growth_events`] on the push side.
#[derive(Default)]
pub struct PullBuffer<T> {
    entries: Vec<(Vidx, T)>,
    growth_events: usize,
}

impl<T: Copy> PullBuffer<T> {
    /// An empty buffer (first non-trivial use will count one growth event).
    pub fn new() -> Self {
        PullBuffer {
            entries: Vec::new(),
            growth_events: 0,
        }
    }

    /// The kernel's output: candidate rows with at least one frontier
    /// neighbour, in ascending row order, valid until the next pull call.
    pub fn entries(&self) -> &[(Vidx, T)] {
        &self.entries
    }

    /// Times the backing store had to grow — flat once warm.
    pub fn growth_events(&self) -> usize {
        self.growth_events
    }

    /// Pre-grow the backing store to its `n`-vertex high-water mark (a pull
    /// never yields more than `n` rows). Install-time warm-up: after this,
    /// pulls during an `n`-vertex ordering allocate nothing, however the
    /// per-level result sizes fall.
    pub fn ensure(&mut self, n: usize) {
        if self.entries.capacity() < n {
            self.entries.reserve(n - self.entries.len());
            self.growth_events += 1;
        }
    }

    /// Copy the entries out as a [`SparseVec`] of length `n` (the same
    /// O(nnz) copy the push kernel pays to package its accumulator).
    pub fn to_sparse(&self, n: usize) -> SparseVec<T> {
        SparseVec::from_sorted_entries(n, self.entries.clone())
    }
}

/// Pull (bottom-up) expansion over a symmetric pattern: for every row `r`
/// in the `candidates` bitmap, the semiring-sum of `S::multiply(x[w])` over
/// the frontier neighbours `w` of `r`.
///
/// This is the masked row-scan dual of [`spmspv`] + `SELECT`: because `a`
/// is symmetric, scanning `A(:, r)` enumerates exactly the columns whose
/// push expansion would reach `r`, so the buffer ends up equal to
/// `spmspv(a, x).select(candidates)` **bit for bit** (the
/// `(select2nd, min)` semiring included) while touching
/// `Σ_{r ∈ candidates} nnz(A(:, r))` matrix entries instead of
/// `Σ_{k ∈ IND(x)} nnz(A(:, k))`.
///
/// The candidate set is consumed a 64-vertex word at a time: an all-zero
/// word — a fully visited stretch — costs one compare, and within a live
/// word rows are extracted bit by bit, so the membership test never touches
/// one byte per vertex the way a `Vec<bool>` mask does. Each row runs a
/// branch-light accumulator seeded with [`Semiring::identity`] (no
/// `Option` in the inner loop). Results land in `buf` (cleared first);
/// nothing is allocated once `buf` is at its high-water capacity.
///
/// Returns the number of traversed matrix nonzeros — only the edges of
/// rows the scan actually visited, which is what `DriverStats` and the
/// simulator should charge for this kernel.
pub fn spmspv_pull<T, S>(
    a: &CscMatrix,
    x: &DenseFrontier<T>,
    candidates: &VertexBitmap,
    buf: &mut PullBuffer<T>,
) -> usize
where
    T: Copy + Default,
    S: Semiring<T>,
{
    let n = a.n_rows();
    assert_eq!(
        n,
        a.n_cols(),
        "pull expansion needs a square (symmetric) pattern"
    );
    // `>=`, not `==`: warm candidate sets and dense frontiers keep their
    // high-water length across matrices (grow-only contract). The last
    // scanned word is masked to `n` bits, so stale candidate bits beyond
    // the matrix are ignored; stale frontier entries belong to older
    // epochs and are invisible to `get`.
    assert!(
        x.len() >= n && candidates.len() >= n,
        "dimension mismatch in pull SpMSpV: frontier {} / candidates {} < rows {}",
        x.len(),
        candidates.len(),
        n
    );
    let cap_before = buf.entries.capacity();
    buf.entries.clear();
    let mut work = 0usize;
    let words = candidates.words();
    for (wi, &word) in words.iter().enumerate().take(n.div_ceil(64)) {
        let mut bits = word;
        if wi == n / 64 && !n.is_multiple_of(64) {
            bits &= (1u64 << (n % 64)) - 1;
        }
        // One compare retires 64 fully-visited vertices.
        while bits != 0 {
            let r = wi * 64 + bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let col = a.col(r);
            work += col.len();
            let mut acc = S::identity();
            let mut found = false;
            for &w in col {
                if let Some(xv) = x.get(w) {
                    acc = S::add(acc, S::multiply(xv));
                    found = true;
                }
            }
            if found {
                buf.entries.push((r as Vidx, acc));
            }
        }
    }
    if buf.entries.capacity() > cap_before {
        buf.growth_events += 1;
    }
    work
}

/// Closure-masked reference implementation of the pull expansion — the
/// pre-bitmap kernel, kept for differential tests and as the "old pull"
/// baseline in the kernel microbenchmarks. Allocates its output and tests
/// candidacy one row at a time.
///
/// Returns the output (sorted by index, candidate rows with at least one
/// frontier neighbour only) and the number of traversed matrix nonzeros.
pub fn spmspv_pull_ref<T, S>(
    a: &CscMatrix,
    x: &DenseFrontier<T>,
    candidate: impl Fn(Vidx) -> bool,
) -> (SparseVec<T>, usize)
where
    T: Copy + Default,
    S: Semiring<T>,
{
    assert_eq!(
        a.n_rows(),
        a.n_cols(),
        "pull expansion needs a square (symmetric) pattern"
    );
    assert!(
        x.len() >= a.n_rows(),
        "dimension mismatch in pull SpMSpV: frontier {} < rows {}",
        x.len(),
        a.n_rows()
    );
    let mut entries: Vec<(Vidx, T)> = Vec::new();
    let mut work = 0usize;
    for r in 0..a.n_rows() {
        let rv = r as Vidx;
        if !candidate(rv) {
            continue;
        }
        let col = a.col(r);
        work += col.len();
        let mut acc: Option<T> = None;
        for &w in col {
            if let Some(xv) = x.get(w) {
                let prod = S::multiply(xv);
                acc = Some(match acc {
                    Some(old) => S::add(old, prod),
                    None => prod,
                });
            }
        }
        if let Some(v) = acc {
            entries.push((rv, v));
        }
    }
    (SparseVec::from_sorted_entries(a.n_rows(), entries), work)
}

/// Naive reference implementation (dense accumulation, fresh allocation) for
/// differential testing of [`spmspv`] and of the distributed version.
pub fn spmspv_ref<T, S>(a: &CscMatrix, x: &SparseVec<T>) -> SparseVec<T>
where
    T: Copy + Default,
    S: Semiring<T>,
{
    assert_eq!(a.n_cols(), x.len());
    let mut acc: Vec<Option<T>> = vec![None; a.n_rows()];
    for &(k, xv) in x.entries() {
        let prod = S::multiply(xv);
        for &r in a.col(k as usize) {
            let slot = &mut acc[r as usize];
            *slot = Some(match *slot {
                Some(old) => S::add(old, prod),
                None => prod,
            });
        }
    }
    let entries: Vec<(Vidx, T)> = acc
        .iter()
        .enumerate()
        .filter_map(|(r, v)| v.map(|v| (r as Vidx, v)))
        .collect();
    SparseVec::from_sorted_entries(a.n_rows(), entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooBuilder;
    use crate::semiring::Select2ndMin;

    /// The 8-vertex example of Figure 2 in the paper.
    ///
    /// Vertices a..h = 0..7; BFS tree rooted at a; current frontier {e, b}
    /// with labels e=2, b=3; expected next frontier {c, f, g} where c picks
    /// parent e (label 2) over b (label 3).
    fn figure2_matrix() -> CscMatrix {
        let mut b = CooBuilder::new(8, 8);
        // Edges from the figure: a-b, a-e, b-c, b-d, e-c, e-f, c-g, f-g, d-h?
        // (The figure shows: a adj {b, e}; b adj {a, c, d}; e adj {a, c, f};
        //  c adj {b, e, g}; d adj {b}; f adj {e, g}; g adj {c, f}; h isolated-ish via d.)
        let edges = [
            (0, 1),
            (0, 4),
            (1, 2),
            (1, 3),
            (4, 2),
            (4, 5),
            (2, 6),
            (5, 6),
            (3, 7),
        ];
        for (u, v) in edges {
            b.push_sym(u, v);
        }
        b.build()
    }

    #[test]
    fn figure2_example_minimum_parent_label_wins() {
        let a = figure2_matrix();
        // Frontier: e (vertex 4) labeled 2, b (vertex 1) labeled 3.
        let x = SparseVec::from_entries(8, vec![(4, 2i64), (1, 3)]);
        let mut ws = SpmspvWorkspace::new(8);
        let (y, work) = spmspv::<i64, Select2ndMin>(&a, &x, &mut ws);
        // Neighbours of {e, b}: a, c, f (from e), a, c, d (from b).
        // Output rows: a(0), c(2), d(3), f(5).
        let got: Vec<_> = y.entries().to_vec();
        assert_eq!(got, vec![(0, 2), (2, 2), (3, 3), (5, 2)]);
        // Work = deg(e) + deg(b) = 3 + 3.
        assert_eq!(work, 6);
    }

    #[test]
    fn matches_reference_on_figure2() {
        let a = figure2_matrix();
        let x = SparseVec::from_entries(8, vec![(4, 2i64), (1, 3)]);
        let mut ws = SpmspvWorkspace::new(8);
        let (y, _) = spmspv::<i64, Select2ndMin>(&a, &x, &mut ws);
        let yref = spmspv_ref::<i64, Select2ndMin>(&a, &x);
        assert_eq!(y, yref);
    }

    #[test]
    fn empty_input_gives_empty_output() {
        let a = figure2_matrix();
        let x: SparseVec<i64> = SparseVec::new(8);
        let mut ws = SpmspvWorkspace::new(8);
        let (y, work) = spmspv::<i64, Select2ndMin>(&a, &x, &mut ws);
        assert!(y.is_empty());
        assert_eq!(work, 0);
    }

    #[test]
    fn workspace_reuse_across_calls_is_clean() {
        let a = figure2_matrix();
        let mut ws = SpmspvWorkspace::new(8);
        let x1 = SparseVec::from_entries(8, vec![(0, 0i64)]);
        let (y1, _) = spmspv::<i64, Select2ndMin>(&a, &x1, &mut ws);
        assert_eq!(y1.entries(), &[(1, 0), (4, 0)]);
        // Second call must not see stale accumulator state.
        let x2 = SparseVec::from_entries(8, vec![(7, 9i64)]);
        let (y2, _) = spmspv::<i64, Select2ndMin>(&a, &x2, &mut ws);
        assert_eq!(y2.entries(), &[(3, 9)]);
    }

    /// Bitmap over `n` vertices holding exactly the `keep` ones.
    fn bitmap_where(n: usize, keep: impl Fn(Vidx) -> bool) -> VertexBitmap {
        let mut b = VertexBitmap::new(n);
        for v in 0..n as Vidx {
            if keep(v) {
                b.insert(v);
            }
        }
        b
    }

    #[test]
    fn pull_matches_push_plus_select_on_figure2() {
        let a = figure2_matrix();
        // Frontier {e=2, b=3}; pretend a, d are already visited so the mask
        // keeps only c, f (and the never-reached g, h).
        let x = SparseVec::from_entries(8, vec![(4, 2i64), (1, 3)]);
        let visited = [true, true, false, true, true, false, false, false];
        let mut ws = SpmspvWorkspace::new(8);
        let (push, _) = spmspv::<i64, Select2ndMin>(&a, &x, &mut ws);
        let expect = push.select(&visited, |v| !v);
        let mut dense = DenseFrontier::new(8);
        dense.load(&x);
        let cands = bitmap_where(8, |r| !visited[r as usize]);
        let mut buf = PullBuffer::new();
        let work = spmspv_pull::<i64, Select2ndMin>(&a, &dense, &cands, &mut buf);
        assert_eq!(buf.to_sparse(8), expect);
        // Work = Σ deg over candidate rows c, f, g, h = 3 + 2 + 2 + 1.
        assert_eq!(work, 8);
        // The closure-masked reference kernel agrees entirely.
        let (pull_ref, work_ref) =
            spmspv_pull_ref::<i64, Select2ndMin>(&a, &dense, |r| !visited[r as usize]);
        assert_eq!(pull_ref, expect);
        assert_eq!(work_ref, work);
    }

    #[test]
    fn pull_equals_push_for_every_mask_on_figure2() {
        let a = figure2_matrix();
        let x = SparseVec::from_entries(8, vec![(0, 5i64), (2, 1), (6, 4)]);
        let mut dense = DenseFrontier::new(8);
        dense.load(&x);
        let mut ws = SpmspvWorkspace::new(8);
        let mut buf = PullBuffer::new();
        let (push, _) = spmspv::<i64, Select2ndMin>(&a, &x, &mut ws);
        for mask_bits in 0u16..256 {
            let keep = |r: Vidx| mask_bits & (1 << r) != 0;
            let expect = push.select(&[0u8, 1, 2, 3, 4, 5, 6, 7], |i| keep(i as Vidx));
            let cands = bitmap_where(8, keep);
            spmspv_pull::<i64, Select2ndMin>(&a, &dense, &cands, &mut buf);
            assert_eq!(buf.to_sparse(8), expect, "mask {mask_bits:#b} diverged");
            let (pull_ref, _) = spmspv_pull_ref::<i64, Select2ndMin>(&a, &dense, keep);
            assert_eq!(pull_ref, expect, "mask {mask_bits:#b} diverged (ref)");
        }
    }

    #[test]
    fn pull_on_empty_frontier_scans_but_emits_nothing() {
        let a = figure2_matrix();
        let dense: DenseFrontier<i64> = DenseFrontier::new(8);
        let mut cands = VertexBitmap::new(8);
        cands.reset_ones(8);
        let mut buf = PullBuffer::new();
        let work = spmspv_pull::<i64, Select2ndMin>(&a, &dense, &cands, &mut buf);
        assert!(buf.entries().is_empty());
        assert_eq!(work, a.nnz(), "pull pays for every candidate row scanned");
        let (y, work_ref) = spmspv_pull_ref::<i64, Select2ndMin>(&a, &dense, |_| true);
        assert!(y.is_empty());
        assert_eq!(work_ref, work);
    }

    #[test]
    fn pull_work_charges_only_scanned_rows() {
        let a = figure2_matrix();
        let x = SparseVec::from_entries(8, vec![(4, 2i64)]);
        let mut dense = DenseFrontier::new(8);
        dense.load(&x);
        let mut buf = PullBuffer::new();
        // No candidates: nothing scanned, zero work.
        let empty = VertexBitmap::new(8);
        assert_eq!(
            spmspv_pull::<i64, Select2ndMin>(&a, &dense, &empty, &mut buf),
            0
        );
        // Candidates {c, f} only: work = deg(c) + deg(f) = 3 + 2, not nnz.
        let cands = bitmap_where(8, |r| r == 2 || r == 5);
        assert_eq!(
            spmspv_pull::<i64, Select2ndMin>(&a, &dense, &cands, &mut buf),
            5
        );
    }

    #[test]
    fn pull_word_skip_crosses_word_boundaries() {
        // A 130-vertex path: words 0 and 1 hold no candidates and must be
        // skipped; candidates live in word 2 only.
        let n = 130usize;
        let mut b = CooBuilder::new(n, n);
        for v in 0..n - 1 {
            b.push_sym(v as Vidx, v as Vidx + 1);
        }
        let a = b.build();
        let x = SparseVec::from_entries(n, vec![(127, 7i64)]);
        let mut dense = DenseFrontier::new(n);
        dense.load(&x);
        let cands = bitmap_where(n, |r| r >= 128);
        let mut buf = PullBuffer::new();
        let work = spmspv_pull::<i64, Select2ndMin>(&a, &dense, &cands, &mut buf);
        // Scanned rows 128 (deg 2) and 129 (deg 1) only.
        assert_eq!(work, 3);
        assert_eq!(buf.entries(), &[(128, 7)]);
    }

    #[test]
    fn pull_ignores_stale_candidate_bits_past_the_matrix() {
        // Warm candidate bitmap from a larger matrix: logical length 130
        // with bits ≥ the current 66-vertex matrix still set. The kernel
        // masks its last scanned word to 66 bits and never touches them.
        let n = 66usize;
        let mut b = CooBuilder::new(n, n);
        for v in 0..n - 1 {
            b.push_sym(v as Vidx, v as Vidx + 1);
        }
        let a = b.build();
        let mut cands = VertexBitmap::new(130);
        cands.reset_ones(130);
        let x = SparseVec::from_entries(n, vec![(0, 1i64)]);
        let mut dense = DenseFrontier::new(130);
        dense.load(&x);
        let mut buf = PullBuffer::new();
        let work = spmspv_pull::<i64, Select2ndMin>(&a, &dense, &cands, &mut buf);
        assert_eq!(work, a.nnz());
        // Only vertex 1 neighbours the frontier {0}; in particular no row
        // past vertex 65 was scanned despite its stale candidate bit.
        assert_eq!(buf.entries(), &[(1, 1)]);
    }

    #[test]
    fn pull_buffer_stops_growing_at_high_water() {
        let a = figure2_matrix();
        let x = SparseVec::from_entries(8, vec![(4, 2i64), (1, 3)]);
        let mut dense = DenseFrontier::new(8);
        dense.load(&x);
        let mut cands = VertexBitmap::new(8);
        cands.reset_ones(8);
        let mut buf = PullBuffer::new();
        spmspv_pull::<i64, Select2ndMin>(&a, &dense, &cands, &mut buf);
        let warm = buf.growth_events();
        assert!(warm >= 1, "first non-empty output must count a growth");
        for _ in 0..10 {
            spmspv_pull::<i64, Select2ndMin>(&a, &dense, &cands, &mut buf);
        }
        assert_eq!(
            buf.growth_events(),
            warm,
            "steady-state pull must not grow the warm output buffer"
        );
    }

    #[test]
    fn epoch_wraparound_resets_stamps() {
        let a = figure2_matrix();
        let mut ws = SpmspvWorkspace::new(8);
        ws.epoch = u32::MAX - 1;
        let x = SparseVec::from_entries(8, vec![(0, 1i64)]);
        let (y1, _) = spmspv::<i64, Select2ndMin>(&a, &x, &mut ws);
        let (y2, _) = spmspv::<i64, Select2ndMin>(&a, &x, &mut ws);
        let (y3, _) = spmspv::<i64, Select2ndMin>(&a, &x, &mut ws);
        assert_eq!(y1, y2);
        assert_eq!(y2, y3);
    }
}
