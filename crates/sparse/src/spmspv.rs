//! Sequential sparse matrix–sparse vector multiplication over a semiring —
//! both expansion directions of the direction-optimizing frontier layer.
//!
//! **Push** ([`spmspv`]) — `SPMSPV(A, x, SR)` (Table I): for every stored
//! entry `x[k]`, visit column `A(:, k)` and merge the products into the
//! output with the semiring's `add`. The serial complexity is
//! `Σ_{k ∈ IND(x)} nnz(A(:, k))` — proportional to the *frontier's* edges.
//!
//! **Pull** ([`spmspv_pull`]) — the Beamer-style bottom-up dual for
//! symmetric patterns: every *candidate* row `r` scans its own adjacency
//! `A(:, r)` and merges the values of the neighbours present in a dense
//! frontier ([`DenseFrontier`]). Complexity is proportional to the
//! *candidates'* edges, independent of frontier size — cheaper than push
//! exactly when the frontier is a large fraction of the unvisited vertices.
//! For a symmetric `A` the two directions produce bit-identical results
//! (row `r`'s in-neighbours are its out-neighbours).
//!
//! The push implementation uses a *sparse accumulator* (SPA): a dense value
//! scratchpad plus a stamp array, reusable across calls via
//! [`SpmspvWorkspace`] so each multiplication allocates nothing. The pull
//! implementation needs no accumulator at all — each output row is finished
//! the moment its scan ends.

use crate::csc::CscMatrix;
use crate::frontier::DenseFrontier;
use crate::semiring::Semiring;
use crate::spvec::SparseVec;
use crate::Vidx;

/// Reusable scratch space for [`spmspv`] — a classic stamped sparse
/// accumulator sized to the number of matrix rows.
pub struct SpmspvWorkspace<T> {
    values: Vec<T>,
    stamp: Vec<u32>,
    epoch: u32,
    touched: Vec<Vidx>,
    growth_events: usize,
}

impl<T: Copy + Default> SpmspvWorkspace<T> {
    /// Workspace for matrices with `n_rows` rows.
    pub fn new(n_rows: usize) -> Self {
        SpmspvWorkspace {
            values: vec![T::default(); n_rows],
            stamp: vec![0; n_rows],
            epoch: 0,
            touched: Vec::new(),
            growth_events: if n_rows > 0 { 1 } else { 0 },
        }
    }

    /// Times [`SpmspvWorkspace::ensure`] had to grow the accumulator
    /// (a non-empty construction counts once) — the grow-only contract the
    /// engine's growth-event tests assert on: a workspace that has seen an
    /// `n`-row matrix serves any smaller one without allocating.
    pub fn growth_events(&self) -> usize {
        self.growth_events
    }

    /// Grow (never shrinks) to accommodate `n_rows`.
    pub fn ensure(&mut self, n_rows: usize) {
        if self.values.len() < n_rows {
            self.values.resize(n_rows, T::default());
            self.stamp.resize(n_rows, 0);
            self.growth_events += 1;
        }
    }

    fn begin(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Stamp wrapped around: reset to keep correctness.
            self.stamp.fill(0);
            self.epoch = 1;
        }
        self.touched.clear();
    }
}

impl<T: Copy + Default> Default for SpmspvWorkspace<T> {
    fn default() -> Self {
        Self::new(0)
    }
}

/// Multiply pattern matrix `a` by sparse vector `x` over semiring `S`.
///
/// Returns a sparse vector of length `a.n_rows()` whose entry at row `r` is
/// the semiring-sum of `S::multiply(x[k])` over all stored `(r, k)` with
/// `x[k]` stored. Output entries are sorted by index.
///
/// Also returns the number of traversed matrix nonzeros (the serial work
/// `Σ nnz(A(:, k))`), which the distributed simulator charges as compute.
pub fn spmspv<T, S>(
    a: &CscMatrix,
    x: &SparseVec<T>,
    ws: &mut SpmspvWorkspace<T>,
) -> (SparseVec<T>, usize)
where
    T: Copy + Default,
    S: Semiring<T>,
{
    assert_eq!(a.n_cols(), x.len(), "dimension mismatch in SpMSpV");
    ws.ensure(a.n_rows());
    ws.begin();
    let mut work = 0usize;
    for &(k, xv) in x.entries() {
        let col = a.col(k as usize);
        work += col.len();
        let prod = S::multiply(xv);
        for &r in col {
            let ri = r as usize;
            if ws.stamp[ri] == ws.epoch {
                ws.values[ri] = S::add(ws.values[ri], prod);
            } else {
                ws.stamp[ri] = ws.epoch;
                ws.values[ri] = prod;
                ws.touched.push(r);
            }
        }
    }
    ws.touched.sort_unstable();
    let entries: Vec<(Vidx, T)> = ws
        .touched
        .iter()
        .map(|&r| (r, ws.values[r as usize]))
        .collect();
    (SparseVec::from_sorted_entries(a.n_rows(), entries), work)
}

/// Pull (bottom-up) expansion over a symmetric pattern: for every row `r`
/// with `candidate(r)` true, the semiring-sum of `S::multiply(x[w])` over
/// the frontier neighbours `w` of `r`.
///
/// This is the masked row-scan dual of [`spmspv`] + `SELECT`: because `a`
/// is symmetric, scanning `A(:, r)` enumerates exactly the columns whose
/// push expansion would reach `r`, so
/// `spmspv_pull(a, x, pred) == spmspv(a, x).select(pred)` **bit for bit**
/// (the `(select2nd, min)` semiring included) while touching
/// `Σ_{r: candidate} nnz(A(:, r))` matrix entries instead of
/// `Σ_{k ∈ IND(x)} nnz(A(:, k))`.
///
/// Returns the output (sorted by index, candidate rows with at least one
/// frontier neighbour only) and the number of traversed matrix nonzeros.
pub fn spmspv_pull<T, S>(
    a: &CscMatrix,
    x: &DenseFrontier<T>,
    candidate: impl Fn(Vidx) -> bool,
) -> (SparseVec<T>, usize)
where
    T: Copy + Default,
    S: Semiring<T>,
{
    assert_eq!(
        a.n_rows(),
        a.n_cols(),
        "pull expansion needs a square (symmetric) pattern"
    );
    // `>=`, not `==`: a warm dense frontier keeps its high-water length
    // across matrices (grow-only contract). Stale entries beyond — or
    // below — `n` belong to older epochs and are invisible to `get`.
    assert!(
        x.len() >= a.n_rows(),
        "dimension mismatch in pull SpMSpV: frontier {} < rows {}",
        x.len(),
        a.n_rows()
    );
    let mut entries: Vec<(Vidx, T)> = Vec::new();
    let mut work = 0usize;
    for r in 0..a.n_rows() {
        let rv = r as Vidx;
        if !candidate(rv) {
            continue;
        }
        let col = a.col(r);
        work += col.len();
        let mut acc: Option<T> = None;
        for &w in col {
            if let Some(xv) = x.get(w) {
                let prod = S::multiply(xv);
                acc = Some(match acc {
                    Some(old) => S::add(old, prod),
                    None => prod,
                });
            }
        }
        if let Some(v) = acc {
            entries.push((rv, v));
        }
    }
    (SparseVec::from_sorted_entries(a.n_rows(), entries), work)
}

/// Naive reference implementation (dense accumulation, fresh allocation) for
/// differential testing of [`spmspv`] and of the distributed version.
pub fn spmspv_ref<T, S>(a: &CscMatrix, x: &SparseVec<T>) -> SparseVec<T>
where
    T: Copy + Default,
    S: Semiring<T>,
{
    assert_eq!(a.n_cols(), x.len());
    let mut acc: Vec<Option<T>> = vec![None; a.n_rows()];
    for &(k, xv) in x.entries() {
        let prod = S::multiply(xv);
        for &r in a.col(k as usize) {
            let slot = &mut acc[r as usize];
            *slot = Some(match *slot {
                Some(old) => S::add(old, prod),
                None => prod,
            });
        }
    }
    let entries: Vec<(Vidx, T)> = acc
        .iter()
        .enumerate()
        .filter_map(|(r, v)| v.map(|v| (r as Vidx, v)))
        .collect();
    SparseVec::from_sorted_entries(a.n_rows(), entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooBuilder;
    use crate::semiring::Select2ndMin;

    /// The 8-vertex example of Figure 2 in the paper.
    ///
    /// Vertices a..h = 0..7; BFS tree rooted at a; current frontier {e, b}
    /// with labels e=2, b=3; expected next frontier {c, f, g} where c picks
    /// parent e (label 2) over b (label 3).
    fn figure2_matrix() -> CscMatrix {
        let mut b = CooBuilder::new(8, 8);
        // Edges from the figure: a-b, a-e, b-c, b-d, e-c, e-f, c-g, f-g, d-h?
        // (The figure shows: a adj {b, e}; b adj {a, c, d}; e adj {a, c, f};
        //  c adj {b, e, g}; d adj {b}; f adj {e, g}; g adj {c, f}; h isolated-ish via d.)
        let edges = [
            (0, 1),
            (0, 4),
            (1, 2),
            (1, 3),
            (4, 2),
            (4, 5),
            (2, 6),
            (5, 6),
            (3, 7),
        ];
        for (u, v) in edges {
            b.push_sym(u, v);
        }
        b.build()
    }

    #[test]
    fn figure2_example_minimum_parent_label_wins() {
        let a = figure2_matrix();
        // Frontier: e (vertex 4) labeled 2, b (vertex 1) labeled 3.
        let x = SparseVec::from_entries(8, vec![(4, 2i64), (1, 3)]);
        let mut ws = SpmspvWorkspace::new(8);
        let (y, work) = spmspv::<i64, Select2ndMin>(&a, &x, &mut ws);
        // Neighbours of {e, b}: a, c, f (from e), a, c, d (from b).
        // Output rows: a(0), c(2), d(3), f(5).
        let got: Vec<_> = y.entries().to_vec();
        assert_eq!(got, vec![(0, 2), (2, 2), (3, 3), (5, 2)]);
        // Work = deg(e) + deg(b) = 3 + 3.
        assert_eq!(work, 6);
    }

    #[test]
    fn matches_reference_on_figure2() {
        let a = figure2_matrix();
        let x = SparseVec::from_entries(8, vec![(4, 2i64), (1, 3)]);
        let mut ws = SpmspvWorkspace::new(8);
        let (y, _) = spmspv::<i64, Select2ndMin>(&a, &x, &mut ws);
        let yref = spmspv_ref::<i64, Select2ndMin>(&a, &x);
        assert_eq!(y, yref);
    }

    #[test]
    fn empty_input_gives_empty_output() {
        let a = figure2_matrix();
        let x: SparseVec<i64> = SparseVec::new(8);
        let mut ws = SpmspvWorkspace::new(8);
        let (y, work) = spmspv::<i64, Select2ndMin>(&a, &x, &mut ws);
        assert!(y.is_empty());
        assert_eq!(work, 0);
    }

    #[test]
    fn workspace_reuse_across_calls_is_clean() {
        let a = figure2_matrix();
        let mut ws = SpmspvWorkspace::new(8);
        let x1 = SparseVec::from_entries(8, vec![(0, 0i64)]);
        let (y1, _) = spmspv::<i64, Select2ndMin>(&a, &x1, &mut ws);
        assert_eq!(y1.entries(), &[(1, 0), (4, 0)]);
        // Second call must not see stale accumulator state.
        let x2 = SparseVec::from_entries(8, vec![(7, 9i64)]);
        let (y2, _) = spmspv::<i64, Select2ndMin>(&a, &x2, &mut ws);
        assert_eq!(y2.entries(), &[(3, 9)]);
    }

    #[test]
    fn pull_matches_push_plus_select_on_figure2() {
        let a = figure2_matrix();
        // Frontier {e=2, b=3}; pretend a, d are already visited so the mask
        // keeps only c, f (and the never-reached g, h).
        let x = SparseVec::from_entries(8, vec![(4, 2i64), (1, 3)]);
        let visited = [true, true, false, true, true, false, false, false];
        let mut ws = SpmspvWorkspace::new(8);
        let (push, _) = spmspv::<i64, Select2ndMin>(&a, &x, &mut ws);
        let expect = push.select(&visited, |v| !v);
        let mut dense = DenseFrontier::new(8);
        dense.load(&x);
        let (pull, work) = spmspv_pull::<i64, Select2ndMin>(&a, &dense, |r| !visited[r as usize]);
        assert_eq!(pull, expect);
        // Work = Σ deg over candidate rows c, f, g, h = 3 + 2 + 2 + 1.
        assert_eq!(work, 8);
    }

    #[test]
    fn pull_equals_push_for_every_mask_on_figure2() {
        let a = figure2_matrix();
        let x = SparseVec::from_entries(8, vec![(0, 5i64), (2, 1), (6, 4)]);
        let mut dense = DenseFrontier::new(8);
        dense.load(&x);
        let mut ws = SpmspvWorkspace::new(8);
        let (push, _) = spmspv::<i64, Select2ndMin>(&a, &x, &mut ws);
        for mask_bits in 0u16..256 {
            let keep = |r: Vidx| mask_bits & (1 << r) != 0;
            let expect = push.select(&[0u8, 1, 2, 3, 4, 5, 6, 7], |i| keep(i as Vidx));
            let (pull, _) = spmspv_pull::<i64, Select2ndMin>(&a, &dense, keep);
            assert_eq!(pull, expect, "mask {mask_bits:#b} diverged");
        }
    }

    #[test]
    fn pull_on_empty_frontier_scans_but_emits_nothing() {
        let a = figure2_matrix();
        let dense: DenseFrontier<i64> = DenseFrontier::new(8);
        let (y, work) = spmspv_pull::<i64, Select2ndMin>(&a, &dense, |_| true);
        assert!(y.is_empty());
        assert_eq!(work, a.nnz(), "pull pays for every candidate row scanned");
    }

    #[test]
    fn epoch_wraparound_resets_stamps() {
        let a = figure2_matrix();
        let mut ws = SpmspvWorkspace::new(8);
        ws.epoch = u32::MAX - 1;
        let x = SparseVec::from_entries(8, vec![(0, 1i64)]);
        let (y1, _) = spmspv::<i64, Select2ndMin>(&a, &x, &mut ws);
        let (y2, _) = spmspv::<i64, Select2ndMin>(&a, &x, &mut ws);
        let (y3, _) = spmspv::<i64, Select2ndMin>(&a, &x, &mut ws);
        assert_eq!(y1, y2);
        assert_eq!(y2, y3);
    }
}
