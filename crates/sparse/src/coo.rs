//! Coordinate-format (triplet) accumulation for building pattern matrices.

use crate::csc::CscMatrix;
use crate::Vidx;

/// Accumulates `(row, col)` pattern entries and converts them into a
/// [`CscMatrix`]. Duplicates are removed; optional symmetrization mirrors
/// every entry across the diagonal (RCM operates on symmetric matrices, and
/// real-world inputs often store only one triangle).
#[derive(Clone, Debug)]
pub struct CooBuilder {
    n_rows: usize,
    n_cols: usize,
    entries: Vec<(Vidx, Vidx)>,
}

impl CooBuilder {
    /// New builder for an `n_rows × n_cols` matrix.
    pub fn new(n_rows: usize, n_cols: usize) -> Self {
        assert!(n_rows <= Vidx::MAX as usize && n_cols <= Vidx::MAX as usize);
        CooBuilder {
            n_rows,
            n_cols,
            entries: Vec::new(),
        }
    }

    /// New builder with pre-reserved capacity for `cap` entries.
    pub fn with_capacity(n_rows: usize, n_cols: usize, cap: usize) -> Self {
        let mut b = Self::new(n_rows, n_cols);
        b.entries.reserve(cap);
        b
    }

    /// Number of (possibly duplicated) entries pushed so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries have been pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Record a nonzero at `(row, col)`. Panics on out-of-range indices.
    #[inline]
    pub fn push(&mut self, row: Vidx, col: Vidx) {
        debug_assert!(
            (row as usize) < self.n_rows && (col as usize) < self.n_cols,
            "entry ({row}, {col}) out of bounds for {}x{}",
            self.n_rows,
            self.n_cols
        );
        self.entries.push((row, col));
    }

    /// Record both `(row, col)` and `(col, row)` (requires a square matrix).
    #[inline]
    pub fn push_sym(&mut self, row: Vidx, col: Vidx) {
        self.push(row, col);
        if row != col {
            self.entries.push((col, row));
        }
    }

    /// Mirror all off-diagonal entries across the diagonal so that the
    /// resulting pattern is structurally symmetric. Requires a square matrix.
    pub fn symmetrize(&mut self) {
        assert_eq!(self.n_rows, self.n_cols, "symmetrize needs a square matrix");
        let m = self.entries.len();
        for k in 0..m {
            let (r, c) = self.entries[k];
            if r != c {
                self.entries.push((c, r));
            }
        }
    }

    /// Sort column-major, deduplicate and build the CSC pattern matrix.
    pub fn build(mut self) -> CscMatrix {
        // Column-major order so that row indices within each column come out
        // sorted, which the CSC kernels rely on.
        self.entries.sort_unstable_by_key(|a| (a.1, a.0));
        self.entries.dedup();

        let mut col_ptr = vec![0usize; self.n_cols + 1];
        for &(_, c) in &self.entries {
            col_ptr[c as usize + 1] += 1;
        }
        for c in 0..self.n_cols {
            col_ptr[c + 1] += col_ptr[c];
        }
        let row_idx: Vec<Vidx> = self.entries.iter().map(|&(r, _)| r).collect();
        CscMatrix::from_parts(self.n_rows, self.n_cols, col_ptr, row_idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_small_matrix() {
        let mut b = CooBuilder::new(3, 3);
        b.push(0, 1);
        b.push(1, 0);
        b.push(2, 2);
        b.push(0, 1); // duplicate is dropped
        let m = b.build();
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.col(0), &[1]);
        assert_eq!(m.col(1), &[0]);
        assert_eq!(m.col(2), &[2]);
    }

    #[test]
    fn symmetrize_mirrors_entries() {
        let mut b = CooBuilder::new(4, 4);
        b.push(0, 1);
        b.push(2, 3);
        b.symmetrize();
        let m = b.build();
        assert_eq!(m.nnz(), 4);
        assert!(m.is_symmetric());
    }

    #[test]
    fn push_sym_adds_mirror_once_for_diagonal() {
        let mut b = CooBuilder::new(2, 2);
        b.push_sym(0, 0);
        b.push_sym(0, 1);
        let m = b.build();
        assert_eq!(m.nnz(), 3); // (0,0), (0,1), (1,0)
        assert!(m.is_symmetric());
    }

    #[test]
    fn empty_builder_gives_empty_matrix() {
        let m = CooBuilder::new(5, 5).build();
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.n_rows(), 5);
        for c in 0..5 {
            assert!(m.col(c).is_empty());
        }
    }

    #[test]
    fn rows_within_column_are_sorted() {
        let mut b = CooBuilder::new(4, 4);
        b.push(3, 1);
        b.push(0, 1);
        b.push(2, 1);
        let m = b.build();
        assert_eq!(m.col(1), &[0, 2, 3]);
    }
}
