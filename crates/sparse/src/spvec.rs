//! Sparse vectors: the frontier representation of the RCM algorithms.
//!
//! A [`SparseVec<T>`] represents a subset of vertices, each carrying a value
//! (a label, a parent label, a BFS level, …). Entries are kept sorted by
//! index, mirroring CombBLAS's `{index, value}`-pair storage (§IV-A of the
//! paper), which makes merging, selection and ownership splitting cheap.

use crate::Vidx;

/// A length-`n` sparse vector with `nnz` stored `(index, value)` pairs,
/// sorted by strictly increasing index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SparseVec<T> {
    len: usize,
    entries: Vec<(Vidx, T)>,
}

impl<T: Copy> SparseVec<T> {
    /// Empty sparse vector of logical length `len`.
    pub fn new(len: usize) -> Self {
        SparseVec {
            len,
            entries: Vec::new(),
        }
    }

    /// Build from `(index, value)` pairs; sorts and asserts uniqueness.
    pub fn from_entries(len: usize, mut entries: Vec<(Vidx, T)>) -> Self {
        entries.sort_unstable_by_key(|&(i, _)| i);
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "duplicate indices in sparse vector"
        );
        debug_assert!(entries.iter().all(|&(i, _)| (i as usize) < len));
        SparseVec { len, entries }
    }

    /// Build from pre-sorted unique `(index, value)` pairs without sorting.
    pub fn from_sorted_entries(len: usize, entries: Vec<(Vidx, T)>) -> Self {
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        debug_assert!(entries.iter().all(|&(i, _)| (i as usize) < len));
        SparseVec { len, entries }
    }

    /// A single-entry vector: the initial BFS frontier `{r}`.
    pub fn singleton(len: usize, idx: Vidx, value: T) -> Self {
        SparseVec {
            len,
            entries: vec![(idx, value)],
        }
    }

    /// Logical length `n` (number of vertices).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the logical length is zero.
    pub fn is_empty_len(&self) -> bool {
        self.len == 0
    }

    /// Number of stored nonzeros — `nnz(x)` in the paper.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are stored (the loop-termination test of
    /// Algorithms 3 and 4: `L_cur = ∅`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The stored `(index, value)` pairs, sorted by index.
    #[inline]
    pub fn entries(&self) -> &[(Vidx, T)] {
        &self.entries
    }

    /// Mutable access to the stored pairs (indices must stay sorted/unique).
    pub fn entries_mut(&mut self) -> &mut Vec<(Vidx, T)> {
        &mut self.entries
    }

    /// `IND(x)`: indices of the nonzero entries.
    pub fn ind(&self) -> impl Iterator<Item = Vidx> + '_ {
        self.entries.iter().map(|&(i, _)| i)
    }

    /// Value stored at `idx`, if present (binary search).
    pub fn get(&self, idx: Vidx) -> Option<T> {
        self.entries
            .binary_search_by_key(&idx, |&(i, _)| i)
            .ok()
            .map(|k| self.entries[k].1)
    }

    /// `SELECT(x, y, expr)`: keep entries whose *dense companion* value
    /// satisfies the predicate. `y` must have length `len`.
    pub fn select<Y: Copy>(&self, y: &[Y], pred: impl Fn(Y) -> bool) -> SparseVec<T> {
        assert_eq!(y.len(), self.len, "dense companion length mismatch");
        SparseVec {
            len: self.len,
            entries: self
                .entries
                .iter()
                .copied()
                .filter(|&(i, _)| pred(y[i as usize]))
                .collect(),
        }
    }

    /// Map stored values in place.
    pub fn map_values(&mut self, f: impl Fn(Vidx, T) -> T) {
        for (i, v) in &mut self.entries {
            *v = f(*i, *v);
        }
    }

    /// Replace values with the corresponding entries of a dense vector:
    /// the `L_cur ← SET(L_cur, R)` step of Algorithm 3 (sparse side).
    pub fn gather_from_dense<Y: Copy + Into<T>>(&mut self, y: &[Y]) {
        assert_eq!(y.len(), self.len);
        for (i, v) in &mut self.entries {
            *v = y[*i as usize].into();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_entries_sorts() {
        let v = SparseVec::from_entries(10, vec![(7, 1i64), (2, 2), (5, 3)]);
        assert_eq!(v.entries(), &[(2, 2), (5, 3), (7, 1)]);
        assert_eq!(v.nnz(), 3);
        assert_eq!(v.len(), 10);
    }

    #[test]
    fn ind_yields_indices() {
        let v = SparseVec::from_entries(10, vec![(3, 0i64), (1, 0)]);
        let idx: Vec<_> = v.ind().collect();
        assert_eq!(idx, vec![1, 3]);
    }

    #[test]
    fn get_binary_searches() {
        let v = SparseVec::from_entries(10, vec![(3, 30i64), (1, 10), (8, 80)]);
        assert_eq!(v.get(3), Some(30));
        assert_eq!(v.get(4), None);
    }

    #[test]
    fn select_filters_on_dense_companion() {
        let v = SparseVec::from_entries(5, vec![(0, 1i64), (2, 2), (4, 3)]);
        let dense = vec![-1i64, -1, 5, -1, -1];
        // Keep unvisited vertices (companion == -1), as in Algorithm 3 line 8.
        let kept = v.select(&dense, |y| y == -1);
        assert_eq!(kept.entries(), &[(0, 1), (4, 3)]);
    }

    #[test]
    fn gather_from_dense_overwrites_values() {
        let mut v = SparseVec::from_entries(4, vec![(1, 0i64), (3, 0)]);
        let dense = vec![9i64, 8, 7, 6];
        v.gather_from_dense(&dense);
        assert_eq!(v.entries(), &[(1, 8), (3, 6)]);
    }

    #[test]
    fn singleton_frontier() {
        let v = SparseVec::singleton(100, 42, 0i64);
        assert_eq!(v.nnz(), 1);
        assert_eq!(v.get(42), Some(0));
        assert!(!v.is_empty());
    }

    #[test]
    fn empty_is_empty() {
        let v: SparseVec<i64> = SparseVec::new(5);
        assert!(v.is_empty());
        assert_eq!(v.nnz(), 0);
    }
}
