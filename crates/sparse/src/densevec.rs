//! Dense-vector helpers implementing the local Table-I primitives.
//!
//! Dense vectors store information about *all* vertices (length always `n`):
//! the ordering vector `R`, the level vector `L`, and the degree vector `D`
//! of Algorithms 3 and 4. We use plain `Vec<T>` plus free functions rather
//! than a wrapper type so callers keep full slice ergonomics; [`DenseVec`] is
//! provided as a documented alias.

use crate::spvec::SparseVec;
use crate::Vidx;

/// Alias emphasising a vector of per-vertex data of length `n`.
pub type DenseVec<T> = Vec<T>;

/// `SET(y, x)`: overwrite `y[i]` with `x[i]` for every stored entry of the
/// sparse vector `x`; all other entries of `y` are untouched.
pub fn dense_set<T: Copy>(y: &mut [T], x: &SparseVec<T>) {
    assert_eq!(y.len(), x.len(), "SET: length mismatch");
    for &(i, v) in x.entries() {
        y[i as usize] = v;
    }
}

/// `REDUCE(x, y, op)`: fold the dense values `y[i]` over the stored indices
/// `i` of `x`. Returns `None` when `x` has no entries.
pub fn dense_reduce<T, Y: Copy>(
    x: &SparseVec<T>,
    y: &[Y],
    mut op: impl FnMut(Y, Y) -> Y,
) -> Option<Y>
where
    T: Copy,
{
    assert_eq!(y.len(), x.len(), "REDUCE: length mismatch");
    let mut it = x.ind().map(|i| y[i as usize]);
    let first = it.next()?;
    Some(it.fold(first, &mut op))
}

/// Argmin-style reduction used by Algorithm 4 line 16: over the stored
/// indices of `x`, find the index whose dense value `y[i]` is smallest,
/// breaking ties toward the smaller index. Returns `None` for an empty `x`.
pub fn dense_argmin<T: Copy, Y: Copy + Ord>(x: &SparseVec<T>, y: &[Y]) -> Option<Vidx> {
    assert_eq!(y.len(), x.len());
    x.ind().min_by_key(|&i| (y[i as usize], i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_overwrites_only_stored_entries() {
        let mut y = vec![-1i64; 5];
        let x = SparseVec::from_entries(5, vec![(1, 10i64), (3, 30)]);
        dense_set(&mut y, &x);
        assert_eq!(y, vec![-1, 10, -1, 30, -1]);
    }

    #[test]
    fn reduce_min_matches_table1_example() {
        // Table I example: reduction op = min over dense values at sparse indices.
        let x = SparseVec::from_entries(6, vec![(0, ()), (2, ()), (5, ())]);
        let y = vec![9u32, 1, 4, 0, 7, 6];
        let mv = dense_reduce(&x, &y, |a, b| a.min(b));
        assert_eq!(mv, Some(4));
    }

    #[test]
    fn reduce_empty_is_none() {
        let x: SparseVec<()> = SparseVec::new(3);
        let y = vec![1u32, 2, 3];
        assert_eq!(dense_reduce(&x, &y, |a, b| a.min(b)), None);
    }

    #[test]
    fn argmin_breaks_ties_to_lower_index() {
        let x = SparseVec::from_entries(4, vec![(1, ()), (2, ()), (3, ())]);
        let y = vec![0u32, 5, 5, 7];
        assert_eq!(dense_argmin(&x, &y), Some(1));
    }
}
