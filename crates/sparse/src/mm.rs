//! Matrix Market I/O.
//!
//! Supports the subset of the format needed to ingest SuiteSparse matrices
//! for RCM: `matrix coordinate` with `pattern`, `real` or `integer` fields
//! and `general` or `symmetric` symmetry. Values are discarded when reading
//! into a pattern matrix; [`read_numeric`] keeps them.

use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use crate::coo::CooBuilder;
use crate::csc::CscMatrix;
use crate::csr_num::CsrNumeric;
use crate::Vidx;

/// Errors raised by the Matrix Market parser.
#[derive(Debug)]
pub enum MmError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem with the file contents.
    Parse(String),
}

impl std::fmt::Display for MmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MmError::Io(e) => write!(f, "I/O error: {e}"),
            MmError::Parse(msg) => write!(f, "Matrix Market parse error: {msg}"),
        }
    }
}

impl std::error::Error for MmError {}

impl From<std::io::Error> for MmError {
    fn from(e: std::io::Error) -> Self {
        MmError::Io(e)
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Field {
    Pattern,
    Real,
    Integer,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Symmetry {
    General,
    Symmetric,
}

struct Header {
    field: Field,
    symmetry: Symmetry,
    n_rows: usize,
    n_cols: usize,
    nnz: usize,
}

fn parse_header(
    lines: &mut impl Iterator<Item = Result<String, std::io::Error>>,
) -> Result<Header, MmError> {
    let banner = lines
        .next()
        .ok_or_else(|| MmError::Parse("empty file".into()))??;
    let banner_lc = banner.to_ascii_lowercase();
    let toks: Vec<&str> = banner_lc.split_whitespace().collect();
    if toks.len() < 5 || toks[0] != "%%matrixmarket" || toks[1] != "matrix" {
        return Err(MmError::Parse(format!("bad banner: {banner}")));
    }
    if toks[2] != "coordinate" {
        return Err(MmError::Parse(format!(
            "only coordinate format supported, got {}",
            toks[2]
        )));
    }
    let field = match toks[3] {
        "pattern" => Field::Pattern,
        "real" => Field::Real,
        "integer" => Field::Integer,
        other => return Err(MmError::Parse(format!("unsupported field type {other}"))),
    };
    let symmetry = match toks[4] {
        "general" => Symmetry::General,
        "symmetric" => Symmetry::Symmetric,
        other => return Err(MmError::Parse(format!("unsupported symmetry {other}"))),
    };
    // Skip comments, find the size line.
    for line in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let dims: Vec<&str> = t.split_whitespace().collect();
        if dims.len() != 3 {
            return Err(MmError::Parse(format!("bad size line: {t}")));
        }
        let n_rows = dims[0]
            .parse::<usize>()
            .map_err(|e| MmError::Parse(e.to_string()))?;
        let n_cols = dims[1]
            .parse::<usize>()
            .map_err(|e| MmError::Parse(e.to_string()))?;
        let nnz = dims[2]
            .parse::<usize>()
            .map_err(|e| MmError::Parse(e.to_string()))?;
        return Ok(Header {
            field,
            symmetry,
            n_rows,
            n_cols,
            nnz,
        });
    }
    Err(MmError::Parse("missing size line".into()))
}

/// Read a pattern [`CscMatrix`] from Matrix Market text. Symmetric files are
/// expanded to both triangles; numeric values (if any) are ignored.
pub fn read_pattern<R: Read>(reader: R) -> Result<CscMatrix, MmError> {
    let buf = BufReader::new(reader);
    let mut lines = buf.lines();
    let h = parse_header(&mut lines)?;
    let mut b = CooBuilder::with_capacity(h.n_rows, h.n_cols, h.nnz * 2);
    let mut seen = 0usize;
    for line in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let r: usize = it
            .next()
            .ok_or_else(|| MmError::Parse("short entry line".into()))?
            .parse()
            .map_err(|e: std::num::ParseIntError| MmError::Parse(e.to_string()))?;
        let c: usize = it
            .next()
            .ok_or_else(|| MmError::Parse("short entry line".into()))?
            .parse()
            .map_err(|e: std::num::ParseIntError| MmError::Parse(e.to_string()))?;
        if h.field != Field::Pattern && it.next().is_none() {
            return Err(MmError::Parse("missing value on entry line".into()));
        }
        if r == 0 || c == 0 || r > h.n_rows || c > h.n_cols {
            return Err(MmError::Parse(format!("entry ({r},{c}) out of bounds")));
        }
        let (r, c) = ((r - 1) as Vidx, (c - 1) as Vidx);
        match h.symmetry {
            Symmetry::General => b.push(r, c),
            Symmetry::Symmetric => b.push_sym(r, c),
        }
        seen += 1;
    }
    if seen != h.nnz {
        return Err(MmError::Parse(format!(
            "header declares {} entries, file has {seen}",
            h.nnz
        )));
    }
    Ok(b.build())
}

/// Read a numeric [`CsrNumeric`] from Matrix Market text (pattern files get
/// value 1.0 on every entry).
pub fn read_numeric<R: Read>(reader: R) -> Result<CsrNumeric, MmError> {
    let buf = BufReader::new(reader);
    let mut lines = buf.lines();
    let h = parse_header(&mut lines)?;
    let mut triplets: Vec<(Vidx, Vidx, f64)> = Vec::with_capacity(h.nnz * 2);
    let mut seen = 0usize;
    for line in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let r: usize = it
            .next()
            .ok_or_else(|| MmError::Parse("short entry line".into()))?
            .parse()
            .map_err(|e: std::num::ParseIntError| MmError::Parse(e.to_string()))?;
        let c: usize = it
            .next()
            .ok_or_else(|| MmError::Parse("short entry line".into()))?
            .parse()
            .map_err(|e: std::num::ParseIntError| MmError::Parse(e.to_string()))?;
        let v: f64 = match h.field {
            Field::Pattern => 1.0,
            _ => it
                .next()
                .ok_or_else(|| MmError::Parse("missing value".into()))?
                .parse()
                .map_err(|e: std::num::ParseFloatError| MmError::Parse(e.to_string()))?,
        };
        if r == 0 || c == 0 || r > h.n_rows || c > h.n_cols {
            return Err(MmError::Parse(format!("entry ({r},{c}) out of bounds")));
        }
        let (r, c) = ((r - 1) as Vidx, (c - 1) as Vidx);
        triplets.push((r, c, v));
        if h.symmetry == Symmetry::Symmetric && r != c {
            triplets.push((c, r, v));
        }
        seen += 1;
    }
    if seen != h.nnz {
        return Err(MmError::Parse(format!(
            "header declares {} entries, file has {seen}",
            h.nnz
        )));
    }
    Ok(CsrNumeric::from_triplets(h.n_rows, h.n_cols, triplets))
}

/// Write a pattern matrix as `coordinate pattern general` Matrix Market text.
pub fn write_pattern<W: Write>(a: &CscMatrix, mut w: W) -> std::io::Result<()> {
    writeln!(w, "%%MatrixMarket matrix coordinate pattern general")?;
    writeln!(w, "% written by rcm-sparse")?;
    writeln!(w, "{} {} {}", a.n_rows(), a.n_cols(), a.nnz())?;
    for (r, c) in a.iter_entries() {
        writeln!(w, "{} {}", r + 1, c + 1)?;
    }
    Ok(())
}

/// Convenience: read a pattern matrix from a file path.
pub fn read_pattern_file(path: impl AsRef<Path>) -> Result<CscMatrix, MmError> {
    let f = std::fs::File::open(path)?;
    read_pattern(f)
}

/// Convenience: write a pattern matrix to a file path.
pub fn write_pattern_file(a: &CscMatrix, path: impl AsRef<Path>) -> std::io::Result<()> {
    let f = std::fs::File::create(path)?;
    write_pattern(a, std::io::BufWriter::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SYMMETRIC_SAMPLE: &str = "\
%%MatrixMarket matrix coordinate pattern symmetric
% a 4-vertex path stored as lower triangle
4 4 3
2 1
3 2
4 3
";

    #[test]
    fn read_symmetric_pattern_expands_triangles() {
        let m = read_pattern(SYMMETRIC_SAMPLE.as_bytes()).unwrap();
        assert_eq!(m.n_rows(), 4);
        assert_eq!(m.nnz(), 6);
        assert!(m.is_symmetric());
        assert!(m.contains(0, 1) && m.contains(1, 0));
    }

    #[test]
    fn roundtrip_write_read() {
        let m = read_pattern(SYMMETRIC_SAMPLE.as_bytes()).unwrap();
        let mut buf = Vec::new();
        write_pattern(&m, &mut buf).unwrap();
        let m2 = read_pattern(buf.as_slice()).unwrap();
        assert_eq!(m, m2);
    }

    #[test]
    fn read_real_general() {
        let text = "\
%%MatrixMarket matrix coordinate real general
2 3 2
1 1 1.5
2 3 -2.0
";
        let m = read_pattern(text.as_bytes()).unwrap();
        assert_eq!(m.n_rows(), 2);
        assert_eq!(m.n_cols(), 3);
        assert_eq!(m.nnz(), 2);
        let num = read_numeric(text.as_bytes()).unwrap();
        assert_eq!(num.get(0, 0), 1.5);
        assert_eq!(num.get(1, 2), -2.0);
    }

    #[test]
    fn read_numeric_symmetric_mirrors_values() {
        let text = "\
%%MatrixMarket matrix coordinate real symmetric
2 2 2
1 1 4.0
2 1 1.0
";
        let num = read_numeric(text.as_bytes()).unwrap();
        assert_eq!(num.get(0, 1), 1.0);
        assert_eq!(num.get(1, 0), 1.0);
        assert!(num.is_symmetric(1e-12));
    }

    #[test]
    fn bad_banner_is_rejected() {
        let text = "%%NotMatrixMarket nothing\n1 1 0\n";
        assert!(read_pattern(text.as_bytes()).is_err());
    }

    #[test]
    fn nnz_mismatch_is_rejected() {
        let text = "\
%%MatrixMarket matrix coordinate pattern general
2 2 3
1 1
2 2
";
        assert!(matches!(
            read_pattern(text.as_bytes()),
            Err(MmError::Parse(_))
        ));
    }

    #[test]
    fn out_of_bounds_entry_is_rejected() {
        let text = "\
%%MatrixMarket matrix coordinate pattern general
2 2 1
3 1
";
        assert!(read_pattern(text.as_bytes()).is_err());
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "\
%%MatrixMarket matrix coordinate pattern general
% comment

2 2 1
% another comment
1 2
";
        let m = read_pattern(text.as_bytes()).unwrap();
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn crlf_line_endings_parse_identically() {
        // SuiteSparse files written on Windows carry \r\n; the parser must
        // treat them exactly like \n (including on the banner and size
        // lines).
        let unix = SYMMETRIC_SAMPLE;
        let dos = unix.replace('\n', "\r\n");
        let m_unix = read_pattern(unix.as_bytes()).unwrap();
        let m_dos = read_pattern(dos.as_bytes()).unwrap();
        assert_eq!(m_unix, m_dos);
        let n_unix = read_numeric(unix.as_bytes()).unwrap();
        let n_dos = read_numeric(dos.as_bytes()).unwrap();
        assert_eq!(n_unix.get(0, 1), n_dos.get(0, 1));
    }

    #[test]
    fn blank_and_comment_interleave_between_entries() {
        // Comments and blank lines may appear *anywhere* after the banner,
        // including between data entries and before the size line.
        let text = "\
%%MatrixMarket matrix coordinate pattern symmetric
% leading comment

% another
3 3 2

2 1
% between entries

3 2
";
        let m = read_pattern(text.as_bytes()).unwrap();
        assert_eq!(m.n_rows(), 3);
        assert_eq!(m.nnz(), 4); // two entries, both triangles
        assert!(m.is_symmetric());
    }

    #[test]
    fn pattern_symmetric_vs_real_general_headers() {
        // The same structure declared two ways: `pattern symmetric` stores
        // one triangle with no values; `real general` stores both triangles
        // with values. The resulting patterns must agree.
        let sym = "\
%%MatrixMarket matrix coordinate pattern symmetric
3 3 2
2 1
3 2
";
        let gen = "\
%%MatrixMarket matrix coordinate real general
3 3 4
2 1 1.0
1 2 1.0
3 2 2.5
2 3 2.5
";
        let m_sym = read_pattern(sym.as_bytes()).unwrap();
        let m_gen = read_pattern(gen.as_bytes()).unwrap();
        assert_eq!(m_sym, m_gen);
        // `real` entries missing their value token are malformed.
        let missing_value = "\
%%MatrixMarket matrix coordinate real general
2 2 1
1 2
";
        assert!(matches!(
            read_pattern(missing_value.as_bytes()),
            Err(MmError::Parse(_))
        ));
    }

    #[test]
    fn out_of_range_one_based_indices_are_rejected() {
        // Matrix Market indices are 1-based: 0 is below range, n+1 above;
        // both must fail with a parse error, in both readers.
        for bad in [
            "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n0 1\n",
            "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 0\n",
            "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n3 1\n",
            "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 3\n",
            "%%MatrixMarket matrix coordinate pattern symmetric\n2 2 1\n2 3\n",
        ] {
            assert!(
                matches!(read_pattern(bad.as_bytes()), Err(MmError::Parse(_))),
                "pattern reader accepted: {bad}"
            );
        }
        let bad_num = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 5.0\n";
        assert!(matches!(
            read_numeric(bad_num.as_bytes()),
            Err(MmError::Parse(_))
        ));
    }

    #[test]
    fn unsupported_header_variants_are_rejected() {
        for bad in [
            // array (dense) format
            "%%MatrixMarket matrix array real general\n2 2\n1.0\n0.0\n0.0\n1.0\n",
            // complex field
            "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1.0 0.0\n",
            // skew-symmetric / hermitian symmetry
            "%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 1\n2 1 1.0\n",
            "%%MatrixMarket matrix coordinate complex hermitian\n2 2 1\n2 1 1.0 0.0\n",
            // truncated banner
            "%%MatrixMarket matrix coordinate\n1 1 0\n",
        ] {
            assert!(
                read_pattern(bad.as_bytes()).is_err(),
                "accepted unsupported header: {bad}"
            );
        }
    }

    #[test]
    fn malformed_size_line_is_rejected() {
        for bad in [
            "%%MatrixMarket matrix coordinate pattern general\n2 2\n",
            "%%MatrixMarket matrix coordinate pattern general\n2 2 1 9\n1 1\n",
            "%%MatrixMarket matrix coordinate pattern general\nx y z\n",
            "%%MatrixMarket matrix coordinate pattern general\n-2 2 1\n1 1\n",
            "%%MatrixMarket matrix coordinate pattern general\n",
        ] {
            assert!(
                matches!(read_pattern(bad.as_bytes()), Err(MmError::Parse(_))),
                "accepted malformed size line: {bad}"
            );
        }
    }
}
