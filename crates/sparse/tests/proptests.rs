//! Property-based tests for the sparse substrate.

use proptest::prelude::*;
use proptest::strategy::ValueTree;
use rcm_sparse::{
    bandwidth, bucket_sortperm_ref, connected_components, coo::CooBuilder, counting_sortperm,
    envelope_size, spmspv, spmspv_ref, ComponentSplit, CscMatrix, Label, Permutation, Select2ndMin,
    SortpermScratch, SparseVec, SpmspvWorkspace, VertexBitmap, Vidx,
};
use std::collections::HashSet;

/// Strategy: a random symmetric pattern matrix with `n` in 1..=max_n.
fn arb_sym_matrix(max_n: usize, max_edges: usize) -> impl Strategy<Value = CscMatrix> {
    (1..=max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n), 0..=max_edges).prop_map(move |pairs| {
            let mut b = CooBuilder::new(n, n);
            for (u, v) in pairs {
                b.push_sym(u as Vidx, v as Vidx);
            }
            b.build()
        })
    })
}

/// Strategy: a random permutation of size n.
fn arb_perm(n: usize) -> impl Strategy<Value = Permutation> {
    Just(()).prop_perturb(move |_, mut rng| {
        let mut v: Vec<Vidx> = (0..n as Vidx).collect();
        // Fisher-Yates with proptest's rng for shrinkable determinism.
        for i in (1..n).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            v.swap(i, j);
        }
        Permutation::from_new_of_old(v).unwrap()
    })
}

proptest! {
    #[test]
    fn coo_build_is_symmetric_and_sorted(m in arb_sym_matrix(40, 120)) {
        prop_assert!(m.is_symmetric());
        for c in 0..m.n_cols() {
            let col = m.col(c);
            prop_assert!(col.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn fingerprint_is_a_pattern_invariant(
        n in 1usize..30,
        pairs in proptest::collection::vec((0usize..30, 0usize..30), 0..80),
        extra_dups in 0usize..10,
    ) {
        // Build the same edge set twice: once as given, once reversed with
        // a prefix of the edges pushed again (duplicates collapse in the
        // canonical CSC form). Fingerprints must agree; a genuinely
        // different pattern (one more edge) must disagree.
        let edges: Vec<(Vidx, Vidx)> = pairs
            .into_iter()
            .map(|(u, v)| ((u % n) as Vidx, (v % n) as Vidx))
            .collect();
        let mut b1 = CooBuilder::new(n, n);
        for &(u, v) in &edges {
            b1.push_sym(u, v);
        }
        let a = b1.build();
        let mut b2 = CooBuilder::new(n, n);
        for &(u, v) in edges.iter().rev() {
            b2.push_sym(v, u);
        }
        for &(u, v) in edges.iter().take(extra_dups) {
            b2.push_sym(u, v);
        }
        let c = b2.build();
        prop_assert_eq!(&a, &c);
        prop_assert_eq!(a.pattern_fingerprint(), c.pattern_fingerprint());
        // Adding a previously absent edge changes the pattern and the hash.
        if n >= 2 {
            let (u, v) = (0 as Vidx, (n - 1) as Vidx);
            if !a.contains(u, v) {
                let mut b3 = CooBuilder::new(n, n);
                for &(x, y) in &edges {
                    b3.push_sym(x, y);
                }
                b3.push_sym(u, v);
                prop_assert_ne!(b3.build().pattern_fingerprint(), a.pattern_fingerprint());
            }
        }
    }

    #[test]
    fn transpose_is_involution(m in arb_sym_matrix(30, 80)) {
        prop_assert_eq!(m.transpose().transpose(), m.clone());
        // Symmetric matrices equal their transpose.
        prop_assert_eq!(m.transpose(), m);
    }

    #[test]
    fn permutation_preserves_nnz_and_degree_multiset(m in arb_sym_matrix(25, 60)) {
        let n = m.n_cols();
        let perm_strategy = arb_perm(n);
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let p = perm_strategy.new_tree(&mut runner).unwrap().current();
        let pm = m.permute_sym(&p);
        prop_assert_eq!(pm.nnz(), m.nnz());
        prop_assert!(pm.is_symmetric());
        let mut d1 = m.degrees();
        let mut d2 = pm.degrees();
        d1.sort_unstable();
        d2.sort_unstable();
        prop_assert_eq!(d1, d2);
    }

    #[test]
    fn spmspv_matches_reference(
        m in arb_sym_matrix(30, 100),
        seeds in proptest::collection::vec((0usize..30, -10i64..10), 0..10)
    ) {
        let n = m.n_cols();
        let mut dedup: Vec<(Vidx, i64)> = seeds
            .into_iter()
            .filter(|&(i, _)| i < n)
            .map(|(i, v)| (i as Vidx, v))
            .collect();
        dedup.sort_unstable_by_key(|&(i, _)| i);
        dedup.dedup_by_key(|e| e.0);
        let x = SparseVec::from_sorted_entries(n, dedup);
        let mut ws = SpmspvWorkspace::new(n);
        let (y, work) = spmspv::<i64, Select2ndMin>(&m, &x, &mut ws);
        let yref = spmspv_ref::<i64, Select2ndMin>(&m, &x);
        prop_assert_eq!(&y, &yref);
        // Work equals sum of accessed column lengths.
        let expect_work: usize = x.ind().map(|k| m.col_nnz(k as usize)).sum();
        prop_assert_eq!(work, expect_work);
        // Output indices are exactly the union of accessed columns' rows.
        let mut expect_rows: Vec<Vidx> = x
            .ind()
            .flat_map(|k| m.col(k as usize).iter().copied())
            .collect();
        expect_rows.sort_unstable();
        expect_rows.dedup();
        let got_rows: Vec<Vidx> = y.ind().collect();
        prop_assert_eq!(got_rows, expect_rows);
    }

    #[test]
    fn bandwidth_zero_iff_diagonal(m in arb_sym_matrix(20, 50)) {
        let bw = bandwidth::bandwidth(&m);
        let has_offdiag = m.iter_entries().any(|(r, c)| r != c);
        prop_assert_eq!(bw > 0, has_offdiag);
    }

    #[test]
    fn envelope_bounded_by_n_times_bandwidth(m in arb_sym_matrix(25, 60)) {
        let bw = bandwidth::bandwidth(&m) as u64;
        let env = envelope_size(&m);
        prop_assert!(env <= bw * m.n_cols() as u64);
        prop_assert!(env >= bw); // the column achieving β contributes at least β
    }

    #[test]
    fn mm_roundtrip_preserves_matrix(m in arb_sym_matrix(20, 50)) {
        let mut buf = Vec::new();
        rcm_sparse::mm::write_pattern(&m, &mut buf).unwrap();
        let back = rcm_sparse::mm::read_pattern(buf.as_slice()).unwrap();
        prop_assert_eq!(back, m);
    }

    #[test]
    fn vertex_bitmap_matches_hashset(
        n in 1usize..300,
        ops in proptest::collection::vec((0u8..3, 0usize..300), 0..200),
        raw_lo in 0usize..300,
        raw_hi in 0usize..300,
    ) {
        // Differential model: the bitmap starts all-unvisited (the install
        // state every backend uses) and must track a HashSet through any
        // insert/remove/contains sequence.
        let mut bm = VertexBitmap::new(0);
        bm.reset_ones(n);
        let mut model: HashSet<Vidx> = (0..n as Vidx).collect();
        for (op, raw) in ops {
            let v = (raw % n) as Vidx;
            match op {
                0 => { bm.insert(v); model.insert(v); }
                1 => { bm.remove(v); model.remove(&v); }
                _ => prop_assert_eq!(bm.contains(v), model.contains(&v)),
            }
        }
        prop_assert_eq!(bm.count(), model.len());
        let mut expect: Vec<Vidx> = model.iter().copied().collect();
        expect.sort_unstable();
        let got: Vec<Vidx> = bm.ones().collect();
        prop_assert_eq!(&got, &expect);
        // Word-level range iteration masks boundary words correctly.
        let (lo, hi) = {
            let a = raw_lo % (n + 1);
            let b = raw_hi % (n + 1);
            (a.min(b), a.max(b))
        };
        let in_range: Vec<Vidx> = expect
            .iter()
            .copied()
            .filter(|&v| (lo..hi).contains(&(v as usize)))
            .collect();
        prop_assert_eq!(bm.ones_in(lo..hi).collect::<Vec<Vidx>>(), in_range);
        // first_unset is the smallest vertex missing from the model.
        let expect_unset = (0..n as Vidx).find(|v| !model.contains(v));
        prop_assert_eq!(bm.first_unset(), expect_unset);
    }

    #[test]
    fn counting_sortperm_matches_bucket_reference(
        nbuckets in 1i64..10,
        lo in -5i64..5,
        raw_entries in proptest::collection::vec((0u32..80, 0i64..10), 0..120),
    ) {
        // Frontier entries carry unique vertex ids; values (parent labels)
        // repeat freely and may leave buckets empty.
        let degrees: Vec<Vidx> = (0..80u32).map(|v| (v * 13 + 5) % 7).collect();
        let mut seen = HashSet::new();
        let entries: Vec<(Vidx, Label)> = raw_entries
            .into_iter()
            .filter(|&(v, _)| seen.insert(v))
            .map(|(v, raw)| (v, lo + raw % nbuckets))
            .collect();
        let range = (lo, lo + nbuckets);
        let mut scratch = SortpermScratch::new();
        let got = counting_sortperm(&entries, range, &degrees, &mut scratch).to_vec();
        let expect = bucket_sortperm_ref(&entries, range, &degrees);
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn component_split_round_trips(m in arb_sym_matrix(30, 40)) {
        // Splitting and stitching back with the identity map must recover
        // the original matrix exactly: pieces partition the vertex set, and
        // every entry reappears at its global coordinates.
        let comps = connected_components(&m);
        let mut sp = ComponentSplit::new();
        let pieces = sp.split(&m, &comps);
        prop_assert_eq!(pieces.len(), comps.count());
        let n = m.n_rows();
        let mut seen = vec![false; n];
        let mut b = CooBuilder::new(n, n);
        for piece in pieces {
            prop_assert_eq!(piece.matrix.n_rows(), piece.vertices.len());
            prop_assert!(piece.vertices.windows(2).all(|w| w[0] < w[1]));
            for &g in &piece.vertices {
                prop_assert!(!seen[g as usize], "vertex in two pieces");
                seen[g as usize] = true;
            }
            for (r, c) in piece.matrix.iter_entries() {
                b.push(piece.vertices[r as usize], piece.vertices[c as usize]);
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "pieces must cover every vertex");
        prop_assert_eq!(b.build(), m.clone());
    }

    #[test]
    fn sub_blocks_tile_the_matrix(m in arb_sym_matrix(24, 70)) {
        let n = m.n_rows();
        let half = n / 2;
        // 2x2 tiling: total nnz of blocks equals matrix nnz.
        let mut total = 0usize;
        for (r0, r1) in [(0, half), (half, n)] {
            for (c0, c1) in [(0, half), (half, n)] {
                total += m.sub_block(r0, r1, c0, c1).nnz();
            }
        }
        prop_assert_eq!(total, m.nnz());
    }
}
