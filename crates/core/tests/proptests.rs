//! Property-based tests of the RCM algorithms: structural invariants that
//! must hold for arbitrary symmetric graphs.

use proptest::prelude::*;
use rcm_core::{
    algebraic_rcm, bfs_level_structure, ordering_bandwidth, ordering_profile, par_cuthill_mckee,
    par_rcm, pseudo_peripheral, rcm, rcm_globalsort, rcm_nosort, sloan, thread_counts_from_env,
};
use rcm_sparse::{envelope_size, matrix_bandwidth, CooBuilder, CscMatrix, Permutation, Vidx};

fn build_matrix(n: usize, edges: &[(usize, usize)]) -> CscMatrix {
    let mut b = CooBuilder::new(n, n);
    for &(u, v) in edges {
        if u % n != v % n {
            b.push_sym((u % n) as Vidx, (v % n) as Vidx);
        }
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rcm_labels_respect_bfs_level_adjacency(
        n in 2usize..80,
        edges in proptest::collection::vec((0usize..80, 0usize..80), 0..200),
    ) {
        // In a CM ordering, labels within a component increase level by
        // level, so adjacent vertices can never be more than "one whole
        // level plus the two levels' sizes" apart. We check the weaker but
        // exact property: for every edge, the CM labels of its endpoints
        // differ by less than the sum of the two largest level sizes... and
        // more usefully, that every vertex's label is strictly greater than
        // its parent's (min-labeled neighbour in the previous level).
        let a = build_matrix(n, &edges);
        let (cm, _) = rcm_core::cuthill_mckee(&a);
        let labels = cm.as_new_of_old();
        // For each non-root vertex in a component, at least one neighbour
        // must have a smaller label (its parent) — CM grows connected
        // prefixes within each component.
        let old_of_new = cm.old_of_new();
        let mut is_component_root = vec![false; n];
        let mut seen_components = std::collections::HashSet::new();
        // Roots are exactly the vertices whose label is the smallest in
        // their component; find them by scanning labels in order.
        let mut comp_of = vec![usize::MAX; n];
        let mut comp_count = 0usize;
        for v in 0..n {
            if comp_of[v] == usize::MAX {
                // BFS to mark the component.
                let mut stack = vec![v];
                comp_of[v] = comp_count;
                while let Some(u) = stack.pop() {
                    for &w in a.col(u) {
                        if comp_of[w as usize] == usize::MAX {
                            comp_of[w as usize] = comp_count;
                            stack.push(w as usize);
                        }
                    }
                }
                comp_count += 1;
            }
        }
        for &v in &old_of_new {
            let c = comp_of[v as usize];
            if seen_components.insert(c) {
                is_component_root[v as usize] = true;
            }
        }
        for v in 0..n {
            if is_component_root[v] || a.col(v).is_empty() {
                continue;
            }
            let has_smaller_neighbour =
                a.col(v).iter().any(|&w| labels[w as usize] < labels[v]);
            prop_assert!(
                has_smaller_neighbour,
                "vertex {v} (label {}) has no parent",
                labels[v]
            );
        }
    }

    #[test]
    fn all_heuristics_return_valid_permutations(
        n in 1usize..60,
        edges in proptest::collection::vec((0usize..60, 0usize..60), 0..120),
    ) {
        let a = build_matrix(n, &edges);
        for (name, p) in [
            ("rcm", rcm(&a)),
            ("algebraic", algebraic_rcm(&a).0),
            ("shared", par_rcm(&a, 2).0),
            ("sloan", sloan(&a)),
            ("nosort", rcm_nosort(&a)),
            ("globalsort", rcm_globalsort(&a)),
        ] {
            prop_assert_eq!(p.len(), n, "{} wrong length", name);
            prop_assert_eq!(
                p.then(&p.inverse()),
                Permutation::identity(n),
                "{} not a bijection",
                name
            );
        }
    }

    #[test]
    fn par_rcm_equals_serial_at_every_thread_count(
        n in 1usize..70,
        edges in proptest::collection::vec((0usize..70, 0usize..70), 0..180),
    ) {
        // Random graphs are frequently disconnected at these densities, so
        // this also covers the multi-component seed scan. CI overrides the
        // sweep via RCM_THREADS.
        let a = build_matrix(n, &edges);
        let expect = rcm(&a);
        let (expect_cm, _) = rcm_core::cuthill_mckee(&a);
        for t in thread_counts_from_env(&[1, 3, 8]) {
            let (got, _) = par_rcm(&a, t);
            prop_assert_eq!(&got, &expect, "par_rcm diverged at {} threads", t);
            let (got_cm, _) = par_cuthill_mckee(&a, t);
            prop_assert_eq!(&got_cm, &expect_cm, "par_cuthill_mckee diverged at {} threads", t);
        }
    }

    #[test]
    fn profile_metrics_agree_with_materialization(
        n in 1usize..50,
        edges in proptest::collection::vec((0usize..50, 0usize..50), 0..100),
    ) {
        let a = build_matrix(n, &edges);
        let p = rcm(&a);
        let pa = a.permute_sym(&p);
        prop_assert_eq!(ordering_bandwidth(&a, &p), matrix_bandwidth(&pa));
        prop_assert_eq!(ordering_profile(&a, &p), envelope_size(&pa));
    }

    #[test]
    fn pseudo_peripheral_never_decreases_eccentricity(
        n in 2usize..60,
        edges in proptest::collection::vec((0usize..60, 0usize..60), 1..120),
        start in 0usize..60,
    ) {
        let a = build_matrix(n, &edges);
        let start = (start % n) as Vidx;
        let pp = pseudo_peripheral(&a, start);
        let start_ecc = bfs_level_structure(&a, start).eccentricity();
        prop_assert!(pp.eccentricity >= start_ecc);
        // The returned eccentricity must be correct.
        let check = bfs_level_structure(&a, pp.vertex).eccentricity();
        prop_assert_eq!(pp.eccentricity, check);
    }

    #[test]
    fn bfs_level_structure_is_a_valid_bfs(
        n in 1usize..60,
        edges in proptest::collection::vec((0usize..60, 0usize..60), 0..150),
        root in 0usize..60,
    ) {
        let a = build_matrix(n, &edges);
        let root = (root % n) as Vidx;
        let ls = bfs_level_structure(&a, root);
        // Edge levels differ by at most one within the component.
        for (r, c) in a.iter_entries() {
            let (lr, lc) = (ls.level_of[r as usize], ls.level_of[c as usize]);
            if lr >= 0 && lc >= 0 {
                prop_assert!((lr - lc).abs() <= 1, "edge ({r},{c}) spans levels {lr},{lc}");
            } else {
                prop_assert!(lr < 0 && lc < 0, "edge between component and outside");
            }
        }
        // Level boundaries partition the order array.
        let total: usize = (0..ls.height()).map(|k| ls.level(k).len()).sum();
        prop_assert_eq!(total, ls.component_size());
        // Each level-k vertex (k>0) has a neighbour in level k-1.
        for k in 1..ls.height() {
            for &v in ls.level(k) {
                let ok = a
                    .col(v as usize)
                    .iter()
                    .any(|&w| ls.level_of[w as usize] == k as i32 - 1);
                prop_assert!(ok, "vertex {v} in level {k} has no parent");
            }
        }
    }

    #[test]
    fn sloan_profile_no_worse_than_natural(
        n in 2usize..60,
        edges in proptest::collection::vec((0usize..60, 0usize..60), 1..150),
    ) {
        let a = build_matrix(n, &edges);
        let id = Permutation::identity(n);
        let p = sloan(&a);
        // Sloan orders from a pseudo-peripheral pair; on *arbitrary* inputs
        // it must at minimum stay within a constant factor of the input
        // profile (it's a minimization heuristic, not a guarantee).
        let before = ordering_profile(&a, &id).max(1);
        let after = ordering_profile(&a, &p);
        prop_assert!(
            after <= before * 2 + n as u64,
            "sloan exploded the profile: {} -> {}",
            before,
            after
        );
    }
}

/// Degenerate shapes that stress specific backend paths: the star's single
/// fat level (parallel pipeline with one shared parent), the path's chain
/// of singleton levels (sequential cutover on every level), and a forest of
/// disconnected pieces (per-component seed scan + visited bookkeeping).
mod par_rcm_degenerate_graphs {
    use super::*;

    fn assert_matches_serial(a: &CscMatrix, what: &str) {
        let expect = rcm(a);
        for t in thread_counts_from_env(&[1, 3, 8]) {
            let (got, _) = par_rcm(a, t);
            assert_eq!(got, expect, "{what}: diverged at {t} threads");
        }
    }

    #[test]
    fn star_graph() {
        let n = 3000;
        let mut b = CooBuilder::new(n, n);
        for v in 1..n {
            b.push_sym(0, v as Vidx);
        }
        assert_matches_serial(&b.build(), "star");
    }

    #[test]
    fn path_graph() {
        let n = 2000;
        let mut b = CooBuilder::new(n, n);
        for v in 0..n - 1 {
            b.push_sym(v as Vidx, (v + 1) as Vidx);
        }
        assert_matches_serial(&b.build(), "path");
    }

    #[test]
    fn disconnected_forest() {
        // Stars of decreasing size plus isolated vertices, interleaved ids.
        let n = 1500;
        let mut b = CooBuilder::new(n, n);
        let mut v = 0usize;
        let mut hub_size = 64usize;
        while v + hub_size + 1 < n && hub_size > 1 {
            let hub = v as Vidx;
            for l in 1..=hub_size {
                b.push_sym(hub, (v + l) as Vidx);
            }
            v += hub_size + 7; // gap leaves isolated vertices between stars
            hub_size = hub_size * 3 / 4;
        }
        assert_matches_serial(&b.build(), "forest");
    }

    #[test]
    fn two_wide_components() {
        // Two caterpillars whose levels clear the sequential cutover, so
        // the parallel pipeline runs in both components.
        let hubs = 4usize;
        let leaves = 400usize;
        let comp = hubs * (leaves + 1);
        let mut b = CooBuilder::new(2 * comp, 2 * comp);
        for c in 0..2 {
            for h in 0..hubs {
                let hub = (c * comp + h * (leaves + 1)) as Vidx;
                if h + 1 < hubs {
                    b.push_sym(hub, hub + (leaves + 1) as Vidx);
                }
                for l in 1..=leaves {
                    b.push_sym(hub, hub + l as Vidx);
                }
            }
        }
        assert_matches_serial(&b.build(), "two-caterpillars");
    }
}
