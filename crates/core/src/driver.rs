//! The algebraic RCM driver, written **once** over the Table-I primitives.
//!
//! The paper's central claim is that RCM is expressible in a handful of
//! matrix-algebra operations (Table I): SpMSpV over the `(select2nd, min)`
//! semiring, `SELECT`, `SET`, `REDUCE`, and `SORTPERM` — and that any
//! runtime supplying those primitives can execute the same algorithm,
//! whether it is one core, a multithreaded node, or an MPI+OpenMP cluster.
//! This module *is* that claim in code:
//!
//! * [`RcmRuntime`] captures exactly the Table-I surface plus an associated
//!   frontier type and a cost hook ([`RcmRuntime::set_phase`] /
//!   [`RcmRuntime::now`]), and
//! * [`drive_cm`] runs the pseudo-peripheral search (Algorithm 4), the
//!   level-synchronous BFS, and the labeling/`SORTPERM` pass (Algorithm 3)
//!   generically — the only copy of that pipeline in the workspace.
//!
//! Four backends implement the trait (see [`crate::backends`]):
//!
//! | backend | runtime | entry point |
//! |---|---|---|
//! | [`SerialBackend`] | sequential `rcm-sparse` vectors | [`crate::algebraic_rcm`] |
//! | [`PooledBackend`] | work-stealing thread pool ([`crate::pool`]) | [`crate::par_rcm`] |
//! | [`DistBackend`] | simulated 2D runtime (`rcm-dist`), flat MPI | [`crate::dist_rcm`] |
//! | [`HybridBackend`] | `DistBackend` with `threads_per_proc > 1` (Fig. 6) | [`crate::dist_rcm`] |
//!
//! All four produce **bit-identical** permutations — the cross-backend
//! equality is enforced by the integration suite on every suite graph.
//!
//! # Direction-optimizing frontier expansion
//!
//! The paper's Fig. 5 breakdown shows frontier expansion (SpMSpV over the
//! `(select2nd, min)` semiring) dominating the distributed runtime, and
//! RCM-on-mesh frontiers routinely grow to a large fraction of the
//! unvisited vertices — the regime where a push-only sparse expansion does
//! redundant per-edge work. The driver therefore keeps the frontier in a
//! **dual representation** and picks an expansion direction per level:
//!
//! | | **push** (top-down) | **pull** (bottom-up) |
//! |---|---|---|
//! | frontier rep | sorted sparse `(vertex, value)` list | dense label array / SPA bitmap |
//! | kernel | SpMSpV over the frontier's columns + `SELECT` | masked row-scan over the unvisited rows ([`RcmRuntime::expand_pull`]) |
//! | edges touched | `Σ deg(frontier)` | `Σ deg(unvisited)` |
//! | distributed comm | sparse gather/reduce ∝ `nnz(f)` | dense allgather/reduce `Θ(n/√p′)` |
//! | serial kernel | [`rcm_sparse::spmspv()`] | [`rcm_sparse::spmspv_pull()`] |
//! | pooled kernel | chunk-claimed expansion + atomic `fetch_min` dedup | chunk-claimed row-scan, no atomics (each row computed once) |
//! | dist kernel | [`rcm_dist::dist_spmspv`] | [`rcm_dist::dist_spmspv_pull`] |
//!
//! The switch heuristic ([`ExpandDirection::Adaptive`], the default) is
//! Beamer-style with two named threshold constants: a level **pulls** when
//! [`PULL_ALPHA`]` · nnz(frontier) ≥ |unvisited|` (the frontier is a large
//! fraction of the remaining work, so the masked row-scan touches no more
//! than ~`PULL_ALPHA×` the push edges) **and**
//! [`PULL_BETA`]` · nnz(frontier) ≥ n` (the dense representation's Θ(n)
//! scan/allgather is amortized); it **pushes** otherwise. Backends gate
//! the adaptive policy through [`RcmRuntime::pull_profitable`]: pull's
//! payoff is avoiding frontier-proportional communication (dist/hybrid)
//! or per-edge atomics (the pool with >1 worker), so the sequential
//! reference — where neither cost exists and min-label forbids Beamer's
//! early exit — keeps its adaptive runs push-only. Both directions
//! compute the identical `(select2nd, min)` result — forced modes
//! (`RCM_DIRECTION=push|pull|adaptive|alternate`, or
//! [`drive_cm_directed`] / `DistRcmConfig::direction`) are bit-identical by
//! construction and swept in CI. [`DriverStats`] records the direction
//! chosen per level ([`LevelStat::direction`],
//! [`DriverStats::pull_expands`]).
//!
//! # Worked example: running the generic driver on a backend
//!
//! ```
//! use rcm_core::backends::SerialBackend;
//! use rcm_core::driver::{drive_cm, LabelingMode};
//! use rcm_sparse::CooBuilder;
//!
//! // A path graph with scrambled vertex numbering.
//! let mut b = CooBuilder::new(5, 5);
//! for (u, v) in [(0, 3), (3, 1), (1, 4), (4, 2)] {
//!     b.push_sym(u, v);
//! }
//! let a = b.build();
//!
//! // Any `RcmRuntime` runs the identical Algorithm 3/4 pipeline.
//! let mut rt = SerialBackend::new(&a);
//! let stats = drive_cm(&mut rt, LabelingMode::PerLevel);
//! let cm = rt.into_cm_permutation();
//! assert_eq!(stats.components, 1);
//!
//! // Reversing Cuthill-McKee gives RCM; the path becomes tridiagonal.
//! let reordered = a.permute_sym(&cm.reversed());
//! assert_eq!(rcm_sparse::matrix_bandwidth(&reordered), 1);
//! ```
//!
//! # Pluggable start-node selection
//!
//! Every component is ordered from a start vertex, and the quality/cost
//! trade-off of finding that vertex is its own axis: the George–Liu search
//! (Algorithm 4) runs one full BFS per sweep, and the paper's Fig. 4
//! breakdown shows the peripheral phase as a visible slice of distributed
//! runtime — every sweep saved is a direct α–β communication win. The
//! driver therefore takes the selection as a [`StartNodeStrategy`]
//! ([`drive_cm_with`]); [`StartNode`] ships four implementations
//! (George–Liu, the RCM++-style bi-criteria early-terminating finder,
//! a fixed user vertex, and the zero-sweep minimum-degree baseline).
//!
//! ```
//! use rcm_core::backends::SerialBackend;
//! use rcm_core::driver::{drive_cm_with, ExpandDirection, LabelingMode, StartNode};
//! use rcm_sparse::CooBuilder;
//!
//! let mut b = CooBuilder::new(6, 6);
//! for (u, v) in [(0, 3), (3, 1), (1, 4), (4, 2), (2, 5)] {
//!     b.push_sym(u, v);
//! }
//! let a = b.build();
//!
//! // The bi-criteria finder follows the same sweep trajectory as
//! // George–Liu but stops as soon as the eccentricity gain falls below
//! // its threshold — never more sweeps, often fewer.
//! let mut gl = SerialBackend::new(&a);
//! let gl_stats = drive_cm_with(
//!     &mut gl,
//!     LabelingMode::PerLevel,
//!     ExpandDirection::Push,
//!     &StartNode::GeorgeLiu,
//! );
//! let mut bc = SerialBackend::new(&a);
//! let bc_stats = drive_cm_with(
//!     &mut bc,
//!     LabelingMode::PerLevel,
//!     ExpandDirection::Push,
//!     &StartNode::BiCriteria,
//! );
//! assert!(bc_stats.peripheral_bfs <= gl_stats.peripheral_bfs);
//! assert_eq!(gl_stats.peripheral_stats[0].eccentricity, 5); // a true path end
//!
//! // The zero-sweep baseline orders straight from the min-degree seed.
//! let mut md = SerialBackend::new(&a);
//! let md_stats = drive_cm_with(
//!     &mut md,
//!     LabelingMode::PerLevel,
//!     ExpandDirection::Push,
//!     &StartNode::MinDegree,
//! );
//! assert_eq!(md_stats.peripheral_bfs, 0);
//! ```
//!
//! [`SerialBackend`]: crate::backends::SerialBackend
//! [`PooledBackend`]: crate::backends::PooledBackend
//! [`DistBackend`]: crate::backends::DistBackend
//! [`HybridBackend`]: crate::backends::HybridBackend

use rcm_dist::Phase;
use rcm_sparse::{CscMatrix, Label, Permutation, Vidx};

/// Adaptive push→pull switch, frontier-vs-remaining term: a level pulls
/// only when `PULL_ALPHA · nnz(frontier) ≥ |unvisited|` — the frontier is
/// at least `1/PULL_ALPHA` of the remaining work, so the masked row-scan
/// touches at most ~`PULL_ALPHA×` the edges the push expansion would
/// (Beamer's `m_f > m_u/α` in vertex form).
pub const PULL_ALPHA: usize = 2;

/// Adaptive push→pull switch, frontier-vs-graph term: a level pulls only
/// when additionally `PULL_BETA · nnz(frontier) ≥ n`. The pull
/// representation is dense — its distributed allgather and its mask scan
/// cost `Θ(n)` regardless of the frontier — so thin late levels (small
/// remaining *and* small frontier) must stay on the sparse push path even
/// though the `PULL_ALPHA` test passes there.
pub const PULL_BETA: usize = 16;

/// The frontier-expansion direction policy — and, per level, the direction
/// actually chosen (only [`ExpandDirection::Push`] / [`ExpandDirection::Pull`]
/// ever appear in [`LevelStat::direction`]).
///
/// The policy enters [`drive_cm_directed`] explicitly, or through the
/// `RCM_DIRECTION` environment variable (`push`, `pull`, `adaptive`,
/// `alternate`) for the plain entry points — every combination produces
/// the bit-identical permutation; only the cost changes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ExpandDirection {
    /// Always expand top-down: sparse SpMSpV over the frontier's columns.
    Push,
    /// Always expand bottom-up: masked row-scan over the unvisited rows
    /// against the dense frontier ([`RcmRuntime::expand_pull`]).
    Pull,
    /// Beamer-style per-level choice: pull when
    /// `PULL_ALPHA · nnz(f) ≥ |unvisited|` **and** `PULL_BETA · nnz(f) ≥ n`,
    /// push otherwise ([`PULL_ALPHA`], [`PULL_BETA`]).
    #[default]
    Adaptive,
    /// Alternate push/pull on every expansion — a test policy that forces a
    /// direction switch at every level boundary, exercising the dual
    /// representation's round-trip on each level.
    Alternating,
}

impl ExpandDirection {
    /// Short display name (`push`, `pull`, `adaptive`, `alternate`).
    pub fn name(&self) -> &'static str {
        match self {
            ExpandDirection::Push => "push",
            ExpandDirection::Pull => "pull",
            ExpandDirection::Adaptive => "adaptive",
            ExpandDirection::Alternating => "alternate",
        }
    }

    /// Parse a policy name (the `RCM_DIRECTION` vocabulary).
    pub fn parse(s: &str) -> Option<ExpandDirection> {
        match s.trim().to_ascii_lowercase().as_str() {
            "push" => Some(ExpandDirection::Push),
            "pull" => Some(ExpandDirection::Pull),
            "adaptive" => Some(ExpandDirection::Adaptive),
            "alternate" | "alternating" => Some(ExpandDirection::Alternating),
            _ => None,
        }
    }

    /// The policy selected by the `RCM_DIRECTION` environment variable,
    /// falling back to [`ExpandDirection::Adaptive`] when unset or
    /// unrecognized. CI sweeps this to enforce direction independence on
    /// every PR.
    pub fn from_env() -> ExpandDirection {
        std::env::var("RCM_DIRECTION")
            .ok()
            .and_then(|s| ExpandDirection::parse(&s))
            .unwrap_or(ExpandDirection::Adaptive)
    }

    /// Resolve the policy to a concrete per-level direction.
    ///
    /// `expansions` is the count of expansions executed so far (the
    /// alternation parity), `frontier_nnz` the current frontier's stored
    /// entries, `remaining` the vertices the level's mask still admits, and
    /// `n` the matrix dimension.
    fn choose(
        &self,
        expansions: usize,
        frontier_nnz: usize,
        remaining: usize,
        n: usize,
    ) -> ExpandDirection {
        match self {
            ExpandDirection::Push => ExpandDirection::Push,
            ExpandDirection::Pull => ExpandDirection::Pull,
            ExpandDirection::Alternating => {
                if expansions % 2 == 1 {
                    ExpandDirection::Pull
                } else {
                    ExpandDirection::Push
                }
            }
            ExpandDirection::Adaptive => {
                if frontier_nnz * PULL_ALPHA >= remaining && frontier_nnz * PULL_BETA >= n {
                    ExpandDirection::Pull
                } else {
                    ExpandDirection::Push
                }
            }
        }
    }
}

/// Which dense `Label` companion vector a `SELECT`/`SET` targets.
///
/// Algorithms 3 and 4 keep two dense vectors: the ordering vector `R`
/// ([`DenseTarget::Order`], `-1` = unvisited) and the per-sweep BFS level
/// vector `L` ([`DenseTarget::Levels`], reset at every pseudo-peripheral
/// sweep via [`RcmRuntime::reset_levels`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DenseTarget {
    /// The ordering vector `R` of Algorithm 3.
    Order,
    /// The BFS level vector `L` of Algorithm 4.
    Levels,
}

/// How the driver assigns labels (the §VI sorting ablation, driver side).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum LabelingMode {
    /// One `SORTPERM` per BFS level — the paper's algorithm.
    #[default]
    PerLevel,
    /// Stamp BFS levels only, then one global `SORTPERM` keyed by
    /// `(level, degree, vertex)` over the whole component.
    GlobalAtEnd,
}

/// Bi-criteria continuation threshold: a sweep must grow the eccentricity
/// by at least `max(1, previous_eccentricity / BI_CRITERIA_GAIN_DIV)`
/// levels for the search to continue. George–Liu demands a gain of exactly
/// 1 level; requiring a fraction of the current eccentricity instead stops
/// the search once sweeps stop paying for themselves — each skipped sweep
/// is a full BFS (and, distributed, its α–β communication).
pub const BI_CRITERIA_GAIN_DIV: i64 = 8;

/// The start-node selection strategy — how the driver turns a component's
/// min-degree seed into the vertex the ordering pass starts from.
///
/// Enters the driver through [`drive_cm_with`] (or
/// `EngineConfig::builder().start_node(..)`, `rcm-order --start-node`,
/// `DistRcmConfig::start_node`), or through the `RCM_START_NODE`
/// environment variable (`george-liu`, `bi-criteria`, `min-degree`,
/// `fixed:N`) for the env-driven entry points. Each variant implements
/// [`StartNodeStrategy`]; custom strategies implement the trait directly.
///
/// | strategy | sweeps | start vertex |
/// |---|---|---|
/// | [`StartNode::GeorgeLiu`] (default) | until eccentricity stops growing | pseudo-peripheral |
/// | [`StartNode::BiCriteria`] | ≤ George–Liu (early-terminating) | near-peripheral |
/// | [`StartNode::MinDegree`] | 0 | the min-degree seed |
/// | [`StartNode::Fixed`] | 0 (its component) | user-supplied |
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum StartNode {
    /// Algorithm 4, the classical George–Liu search: sweep until the
    /// eccentricity stops growing. The default — bit-identical to the
    /// pre-strategy driver.
    #[default]
    GeorgeLiu,
    /// The RCM++-style bi-criteria finder (arXiv 2409.04171): the
    /// candidate set is the last BFS level scored by degree×eccentricity,
    /// and the sweep loop terminates early once a sweep grows the
    /// eccentricity by less than `1/`[`BI_CRITERIA_GAIN_DIV`] of its
    /// previous value. All last-level candidates share their distance from
    /// the sweep root, so the degree×eccentricity score ranks them exactly
    /// like the degree `REDUCE` George–Liu already performs — the two
    /// strategies walk the *same* root trajectory, and the stronger
    /// continuation test means bi-criteria never runs **more** sweeps than
    /// George–Liu on any input (and the saved sweeps' α–β communication is
    /// never charged on the distributed backends).
    BiCriteria,
    /// Zero-sweep baseline: order straight from the min-degree seed.
    MinDegree,
    /// A user-supplied start vertex. Applies to the component containing
    /// the vertex (scheduled first); every other component — or the whole
    /// run, when the vertex is out of range — falls back to George–Liu
    /// from its seed.
    Fixed(
        /// The requested start vertex (original numbering).
        Vidx,
    ),
}

impl StartNode {
    /// Short display name (`george-liu`, `bi-criteria`, `min-degree`,
    /// `fixed`).
    pub fn name(&self) -> &'static str {
        match self {
            StartNode::GeorgeLiu => "george-liu",
            StartNode::BiCriteria => "bi-criteria",
            StartNode::MinDegree => "min-degree",
            StartNode::Fixed(_) => "fixed",
        }
    }

    /// Parse a strategy spec (the `RCM_START_NODE` / `--start-node`
    /// vocabulary): `george-liu`, `bi-criteria`, `min-degree`, or
    /// `fixed:N` (also a bare vertex number).
    pub fn parse(s: &str) -> Option<StartNode> {
        let s = s.trim().to_ascii_lowercase();
        match s.as_str() {
            "george-liu" | "georgeliu" | "gl" => Some(StartNode::GeorgeLiu),
            "bi-criteria" | "bicriteria" | "rcm++" => Some(StartNode::BiCriteria),
            "min-degree" | "mindegree" => Some(StartNode::MinDegree),
            other => {
                let v = other.strip_prefix("fixed:").unwrap_or(other);
                v.parse::<Vidx>().ok().map(StartNode::Fixed)
            }
        }
    }

    /// The strategy selected by the `RCM_START_NODE` environment variable,
    /// falling back to [`StartNode::GeorgeLiu`] when unset or
    /// unrecognized. CI sweeps this to enforce per-strategy determinism on
    /// every PR.
    pub fn from_env() -> StartNode {
        std::env::var("RCM_START_NODE")
            .ok()
            .and_then(|s| StartNode::parse(&s))
            .unwrap_or(StartNode::GeorgeLiu)
    }

    /// A discriminant folded into pattern-cache keys: two orderings of the
    /// same pattern under different strategies must never alias
    /// (`crate::service::PatternCache`). George–Liu salts with 0 so
    /// default-strategy keys match the pre-strategy cache layout.
    pub fn cache_salt(&self) -> u64 {
        match self {
            StartNode::GeorgeLiu => 0,
            StartNode::BiCriteria => 0x9e37_79b9_7f4a_7c15,
            StartNode::MinDegree => 0xc2b2_ae3d_27d4_eb4f,
            StartNode::Fixed(v) => {
                0xd6e8_feb8_6659_fd93 ^ (*v as u64).wrapping_mul(0x0000_0100_0000_01b3)
            }
        }
    }
}

/// Per-component record of the start-node selection phase.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PeripheralStat {
    /// The vertex the ordering pass started from.
    pub start: Vidx,
    /// BFS sweeps the strategy ran (0 for the zero-sweep strategies).
    pub sweeps: usize,
    /// Total BFS levels traversed across those sweeps.
    pub levels: usize,
    /// Final eccentricity measured from the returned vertex (0 when no
    /// sweep ran).
    pub eccentricity: usize,
}

/// A start-node selection strategy, generic over the runtime: given the
/// component's min-degree seed, produce the vertex the ordering pass
/// starts from.
///
/// Implementations run entirely on the Table-I primitives (any BFS sweeps
/// go through the same [`RcmRuntime`] surface as the ordering pass, so
/// the distributed backends charge — or save — the real α–β cost), must
/// return a vertex in `seed`'s component that is still unvisited in `R`,
/// and must be deterministic: the returned vertex may depend only on the
/// graph and `seed`, never on execution order. [`StartNode`] implements
/// this trait; [`drive_cm_with`] consumes it.
pub trait StartNodeStrategy {
    /// Select the start vertex for the component seeded at `seed`,
    /// returning it with the phase's execution record (the driver appends
    /// the record to [`DriverStats::peripheral_stats`]).
    fn select<R: RcmRuntime>(
        &self,
        rt: &mut R,
        seed: Vidx,
        policy: ExpandDirection,
        stats: &mut DriverStats,
    ) -> (Vidx, PeripheralStat);
}

impl StartNodeStrategy for StartNode {
    fn select<R: RcmRuntime>(
        &self,
        rt: &mut R,
        seed: Vidx,
        policy: ExpandDirection,
        stats: &mut DriverStats,
    ) -> (Vidx, PeripheralStat) {
        match self {
            StartNode::GeorgeLiu => peripheral_sweeps(rt, seed, policy, stats, |_| 1),
            StartNode::BiCriteria => peripheral_sweeps(rt, seed, policy, stats, |nlvl| {
                (nlvl / BI_CRITERIA_GAIN_DIV).max(1)
            }),
            StartNode::MinDegree => (
                seed,
                PeripheralStat {
                    start: seed,
                    ..PeripheralStat::default()
                },
            ),
            StartNode::Fixed(v) => {
                // Honor the request only when the vertex exists and is
                // still unvisited (i.e. this is its component's turn);
                // otherwise run the default search from the seed.
                if (*v as usize) < rt.n() {
                    let x = rt.singleton(*v, 0);
                    let kept = rt.select_unvisited(&x, DenseTarget::Order);
                    if rt.is_nonempty(&kept) {
                        return (
                            *v,
                            PeripheralStat {
                                start: *v,
                                ..PeripheralStat::default()
                            },
                        );
                    }
                }
                peripheral_sweeps(rt, seed, policy, stats, |_| 1)
            }
        }
    }
}

/// Per-BFS-level execution record of the ordering pass (level-synchronous
/// behaviour made visible: frontier width and simulated time per level).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LevelStat {
    /// Vertices labeled in this level.
    pub frontier: usize,
    /// Simulated seconds this level took (all phases; `0.0` on backends
    /// without a clock).
    pub seconds: f64,
    /// Expansion direction the per-level policy chose (always
    /// [`ExpandDirection::Push`] or [`ExpandDirection::Pull`]).
    pub direction: ExpandDirection,
}

/// Statistics of one generic driver run, common to every backend.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DriverStats {
    /// Connected components processed.
    pub components: usize,
    /// BFS sweeps in the pseudo-peripheral searches.
    pub peripheral_bfs: usize,
    /// Frontier-expansion iterations in the ordering passes.
    pub levels: usize,
    /// Matrix nonzeros traversed by all SpMSpV calls (backends that do not
    /// track it report 0).
    pub spmspv_work: usize,
    /// Expansions (ordering *and* peripheral) that ran top-down (push).
    pub push_expands: usize,
    /// Expansions (ordering *and* peripheral) that ran bottom-up (pull).
    pub pull_expands: usize,
    /// Per-level trace of the ordering passes, concatenated across
    /// components (empty in [`LabelingMode::GlobalAtEnd`]).
    pub level_stats: Vec<LevelStat>,
    /// Per-component record of the start-node selection phase, in
    /// component processing order.
    pub peripheral_stats: Vec<PeripheralStat>,
}

/// The Table-I primitives a backend must supply to run RCM.
///
/// Method-per-primitive, exactly the paper's surface: the semiring SpMSpV
/// ([`Self::spmspv`]), `SELECT` ([`Self::select_unvisited`]), `SET` in both
/// directions ([`Self::set_dense`] / [`Self::gather_values`]), `REDUCE`
/// ([`Self::argmin_degree`], [`Self::find_unvisited_min_degree`]) and
/// `SORTPERM` ([`Self::sortperm`]), plus an associated frontier type, a few
/// frontier utilities, and the cost hook ([`Self::set_phase`],
/// [`Self::now`]) that maps driver progress onto the backend's accounting
/// (a [`rcm_dist::SimClock`] for the simulated runtimes, nothing for the
/// native ones).
///
/// # Contract
///
/// Every primitive must produce the *value* its sequential specification
/// produces ([`crate::algebraic`]); how it executes — serially, on a
/// work-stealing pool, or on a simulated process grid — is the backend's
/// business. Backends are free to fuse work across primitives (the pooled
/// backend's SpMSpV already filters visited vertices and pre-sorts its
/// output), as long as each call site still observes its specified result.
/// See [`crate::driver`]'s module docs for a worked example, and the
/// README's "adding a backend" walk-through.
pub trait RcmRuntime {
    /// The backend's sparse frontier (a distributed/sequential sparse
    /// vector of `(vertex, Label)` pairs).
    type Frontier: Clone;

    /// Number of vertices (matrix rows).
    fn n(&self) -> usize;

    // --- cost hook -----------------------------------------------------

    /// Tell the backend which Fig. 4 phase subsequent work belongs to.
    fn set_phase(&mut self, _phase: Phase) {}

    /// Simulated seconds elapsed (0.0 for backends without a clock).
    fn now(&self) -> f64 {
        0.0
    }

    // --- frontier utilities --------------------------------------------

    /// The frontier `{v}` with one stored value.
    fn singleton(&mut self, v: Vidx, value: Label) -> Self::Frontier;

    /// `nnz(x) > 0` — the loop-exit test of Algorithms 3 and 4 (an
    /// AllReduce on distributed backends).
    fn is_nonempty(&mut self, x: &Self::Frontier) -> bool;

    /// `nnz(x)` — the density input of the per-level direction policy.
    /// Distributed backends already learn the global count from the
    /// emptiness AllReduce (the same 8-byte reduction carries it), so this
    /// must charge nothing extra.
    fn frontier_nnz(&mut self, x: &Self::Frontier) -> usize;

    /// Whether the bottom-up expansion can actually beat push on this
    /// backend — the [`ExpandDirection::Adaptive`] policy only considers
    /// pulling when this is `true`. Forced modes ignore it.
    ///
    /// Pull pays off by avoiding frontier-proportional *communication*
    /// (distributed backends) or per-edge *atomics* (parallel shared
    /// memory); a sequential SPA push has neither cost, and the
    /// `(select2nd, min)` semiring forbids Beamer's early exit, so the
    /// serial reference returns `false` (and the pooled backend does when
    /// running single-threaded).
    fn pull_profitable(&self) -> bool {
        true
    }

    /// Append `x`'s entries to `acc` (the [`LabelingMode::GlobalAtEnd`]
    /// accumulator). Entry sets must stay disjoint.
    fn append(&mut self, acc: &mut Self::Frontier, x: &Self::Frontier);

    /// Overwrite every stored value with `value` (level stamping).
    fn stamp(&mut self, x: &mut Self::Frontier, value: Label);

    // --- Table I -------------------------------------------------------

    /// `SPMSPV(A, x)` over the `(select2nd, min)` semiring: for every
    /// vertex adjacent to `x`'s support, the minimum stored value among its
    /// frontier neighbours.
    fn spmspv(&mut self, x: &Self::Frontier) -> Self::Frontier;

    /// `SELECT(x, R = -1)`: keep entries whose companion in `which` is
    /// unvisited.
    fn select_unvisited(&mut self, x: &Self::Frontier, which: DenseTarget) -> Self::Frontier;

    /// Pull (bottom-up) expansion fused with `SELECT`: for every vertex
    /// whose companion in `which` is unvisited, the semiring-sum of its
    /// frontier neighbours' values — a masked row-scan over the symmetric
    /// pattern against the *dense* frontier representation, reproducing
    /// `select_unvisited(spmspv(x), which)` **bit for bit** while touching
    /// the unvisited rows' edges instead of the frontier's.
    ///
    /// The default falls back to that push pair, so a backend without a
    /// native pull kernel still honors every forced-direction mode
    /// correctly (at push cost). All four in-tree backends override it.
    fn expand_pull(&mut self, x: &Self::Frontier, which: DenseTarget) -> Self::Frontier {
        let y = self.spmspv(x);
        self.select_unvisited(&y, which)
    }

    /// `SET(dense, x)`: overwrite the dense companion at `x`'s support.
    fn set_dense(&mut self, which: DenseTarget, x: &Self::Frontier);

    /// Point update of a dense companion (root seeding).
    fn set_dense_at(&mut self, which: DenseTarget, v: Vidx, value: Label);

    /// `SET(x, dense)`: refresh `x`'s values from the dense companion
    /// (Algorithm 3 line 6).
    fn gather_values(&mut self, x: &mut Self::Frontier, which: DenseTarget);

    /// Reset the BFS level vector `L` to all-unvisited (start of every
    /// pseudo-peripheral sweep).
    fn reset_levels(&mut self);

    /// Called when a pseudo-peripheral search finishes. Backends whose BFS
    /// marks share state with the ordering pass (the pooled backend's
    /// `visited` array) roll them back here; backends with a dedicated
    /// level vector need do nothing — the next search resets it, and the
    /// ordering pass never reads `L`.
    fn end_peripheral_search(&mut self) {}

    /// `SORTPERM(x, D)`: assign consecutive labels `nv, nv+1, …` in
    /// lexicographic `(stored value, degree, vertex)` order. `batch` is the
    /// half-open label range of the previous frontier (the possible parent
    /// values — the bucket structure the paper's specialized sort
    /// exploits). Returns the labels as a frontier of `(vertex, label)`
    /// entries plus the number labeled.
    fn sortperm(
        &mut self,
        x: &Self::Frontier,
        batch: (Label, Label),
        nv: Label,
    ) -> (Self::Frontier, usize);

    /// `REDUCE(x, D, argmin)`: the stored vertex minimizing
    /// `(degree, vertex)` — Algorithm 4's next-root pick.
    fn argmin_degree(&mut self, x: &Self::Frontier) -> Option<Vidx>;

    /// Seed selection: the unvisited vertex (in `R`) of minimum
    /// `(degree, vertex)`, or `None` when all are labeled.
    fn find_unvisited_min_degree(&mut self) -> Option<Vidx>;

    // --- introspection --------------------------------------------------

    /// Matrix nonzeros traversed by SpMSpV so far (0 if untracked).
    fn spmspv_work(&self) -> usize {
        0
    }
}

/// Resolve the policy to this level's direction, folding in the backend's
/// profitability hint: an adaptive policy never pulls on a backend that
/// declares pull unprofitable ([`RcmRuntime::pull_profitable`]); forced
/// and alternating policies are honored regardless.
fn resolve_direction<R: RcmRuntime>(
    rt: &R,
    policy: ExpandDirection,
    expansions: usize,
    frontier_nnz: usize,
    remaining: usize,
    n: usize,
) -> ExpandDirection {
    if policy == ExpandDirection::Adaptive && !rt.pull_profitable() {
        return ExpandDirection::Push;
    }
    policy.choose(expansions, frontier_nnz, remaining, n)
}

/// One frontier expansion in the chosen direction, with the select fold.
///
/// Push: `SELECT(SPMSPV(A, cur), which = -1)` — the top-down pair. Pull:
/// [`RcmRuntime::expand_pull`] — the bottom-up fusion of both. Either way
/// the result is the unvisited neighbours of `cur` with their minimum
/// candidate-parent values; `direction` must already be resolved to
/// `Push`/`Pull` ([`ExpandDirection::choose`]). Expansion work is charged
/// to `spmspv_phase`, the push-path select to `other_phase`.
fn expand_frontier<R: RcmRuntime>(
    rt: &mut R,
    cur: &R::Frontier,
    which: DenseTarget,
    direction: ExpandDirection,
    spmspv_phase: Phase,
    other_phase: Phase,
    stats: &mut DriverStats,
) -> R::Frontier {
    match direction {
        ExpandDirection::Pull => {
            stats.pull_expands += 1;
            rt.set_phase(spmspv_phase);
            let next = rt.expand_pull(cur, which);
            rt.set_phase(other_phase);
            next
        }
        _ => {
            stats.push_expands += 1;
            rt.set_phase(spmspv_phase);
            let next = rt.spmspv(cur);
            rt.set_phase(other_phase);
            rt.select_unvisited(&next, which)
        }
    }
}

/// Algorithm 4's sweep loop, generically, parameterized by the
/// continuation threshold: after a sweep of eccentricity `ecc`, the search
/// continues only while `ecc - nlvl >= min_gain(nlvl)` (`nlvl` being the
/// previous sweep's eccentricity, `-1` before the first). George–Liu is
/// `min_gain ≡ 1` — `ecc - nlvl < 1 ⟺ ecc ≤ nlvl`, the classical "stopped
/// growing" test, bit for bit. The bi-criteria finder demands a larger
/// gain; since every `min_gain ≥ 1`, any such strategy stops no later than
/// George–Liu on the identical root trajectory. Returns the final root and
/// the phase record; bumps `stats.peripheral_bfs` once per full BFS sweep.
fn peripheral_sweeps<R: RcmRuntime>(
    rt: &mut R,
    start: Vidx,
    policy: ExpandDirection,
    stats: &mut DriverStats,
    min_gain: impl Fn(i64) -> i64,
) -> (Vidx, PeripheralStat) {
    let n = rt.n();
    let mut r = start;
    let mut nlvl: i64 = -1;
    let mut pstat = PeripheralStat::default();
    loop {
        // One full level-synchronous BFS from r, levels tracked in L.
        rt.set_phase(Phase::PeripheralOther);
        rt.reset_levels();
        rt.set_dense_at(DenseTarget::Levels, r, 0);
        let mut cur = rt.singleton(r, 0);
        let mut cur_nnz = 1usize;
        // Vertices the pull mask (L = -1) still admits.
        let mut remaining = n - 1;
        let mut ecc: i64 = 0;
        stats.peripheral_bfs += 1;
        loop {
            // L_cur ← SET(L_cur, L); L_next ← SELECT(SPMSPV(A, L_cur), L = -1).
            rt.set_phase(Phase::PeripheralOther);
            rt.gather_values(&mut cur, DenseTarget::Levels);
            let direction = resolve_direction(
                rt,
                policy,
                stats.push_expands + stats.pull_expands,
                cur_nnz,
                remaining,
                n,
            );
            let mut next = expand_frontier(
                rt,
                &cur,
                DenseTarget::Levels,
                direction,
                Phase::PeripheralSpmspv,
                Phase::PeripheralOther,
                stats,
            );
            if !rt.is_nonempty(&next) {
                break;
            }
            ecc += 1;
            rt.stamp(&mut next, ecc);
            rt.set_dense(DenseTarget::Levels, &next);
            cur_nnz = rt.frontier_nnz(&next);
            remaining -= cur_nnz;
            cur = next;
        }
        pstat.sweeps += 1;
        pstat.levels += ecc as usize;
        pstat.start = r;
        pstat.eccentricity = ecc as usize;
        // Converged: the eccentricity gain fell below the threshold.
        if ecc - nlvl < min_gain(nlvl) {
            rt.end_peripheral_search();
            return (r, pstat);
        }
        nlvl = ecc;
        // r ← REDUCE(L_cur, D): minimum-degree vertex of the last level.
        rt.set_phase(Phase::PeripheralOther);
        let v = rt.argmin_degree(&cur).unwrap_or(r);
        if v == r {
            rt.end_peripheral_search();
            return (r, pstat);
        }
        r = v;
    }
}

/// Algorithm 3: label `root`'s component with consecutive Cuthill-McKee
/// labels starting at `*nv`. Returns the number of frontier-expansion
/// levels and appends per-level records to `stats`.
fn label_component<R: RcmRuntime>(
    rt: &mut R,
    root: Vidx,
    nv: &mut Label,
    mode: LabelingMode,
    policy: ExpandDirection,
    stats: &mut DriverStats,
) {
    if mode == LabelingMode::GlobalAtEnd {
        label_component_global_sort(rt, root, nv, policy, stats);
        return;
    }
    let n = rt.n();
    rt.set_phase(Phase::OrderingOther);
    // R[r] ← nv; L_cur ← {r}.
    rt.set_dense_at(DenseTarget::Order, root, *nv);
    let mut batch_start = *nv;
    *nv += 1;
    let mut cur = rt.singleton(root, 0);
    let mut cur_nnz = 1usize;
    loop {
        let level_t0 = rt.now();
        // L_cur ← SET(L_cur, R): frontier values become the labels assigned
        // in the previous round.
        rt.set_phase(Phase::OrderingOther);
        rt.gather_values(&mut cur, DenseTarget::Order);
        // L_next ← SELECT(SPMSPV(A, L_cur), R = -1) — push — or the fused
        // masked row-scan — pull. The pull mask (R = -1) admits n - nv
        // vertices: everything not yet labeled, across all components.
        let direction = resolve_direction(
            rt,
            policy,
            stats.push_expands + stats.pull_expands,
            cur_nnz,
            n - *nv as usize,
            n,
        );
        let next = expand_frontier(
            rt,
            &cur,
            DenseTarget::Order,
            direction,
            Phase::OrderingSpmspv,
            Phase::OrderingOther,
            stats,
        );
        if !rt.is_nonempty(&next) {
            break;
        }
        stats.levels += 1;
        // R_next ← SORTPERM(L_next, D) + nv.
        rt.set_phase(Phase::OrderingSort);
        let (labels, count) = rt.sortperm(&next, (batch_start, *nv), *nv);
        // R ← SET(R, R_next); nv ← nv + nnz(R_next).
        rt.set_phase(Phase::OrderingOther);
        rt.set_dense(DenseTarget::Order, &labels);
        batch_start = *nv;
        *nv += count as Label;
        stats.level_stats.push(LevelStat {
            frontier: count,
            seconds: rt.now() - level_t0,
            direction,
        });
        cur_nnz = count;
        cur = next;
    }
}

/// [`LabelingMode::GlobalAtEnd`]: BFS stamping 1-based levels, then one
/// global `SORTPERM` keyed by `(level, degree, vertex)` over the whole
/// component. `R` holds a sentinel during the BFS so `SELECT` keeps
/// working; the final `SET` overwrites it with real labels.
fn label_component_global_sort<R: RcmRuntime>(
    rt: &mut R,
    root: Vidx,
    nv: &mut Label,
    policy: ExpandDirection,
    stats: &mut DriverStats,
) {
    const VISITING: Label = Label::MAX;
    let n = rt.n();
    rt.set_phase(Phase::OrderingOther);
    rt.set_dense_at(DenseTarget::Order, root, VISITING);
    let mut acc = rt.singleton(root, 0);
    let mut cur = acc.clone();
    let mut cur_nnz = 1usize;
    // Vertices the pull mask (R = -1) admits: not yet labeled in previous
    // components (n - nv) and not stamped VISITING in this one.
    let mut remaining = n - *nv as usize - 1;
    let mut level: Label = 0;
    loop {
        let direction = resolve_direction(
            rt,
            policy,
            stats.push_expands + stats.pull_expands,
            cur_nnz,
            remaining,
            n,
        );
        let next = expand_frontier(
            rt,
            &cur,
            DenseTarget::Order,
            direction,
            Phase::OrderingSpmspv,
            Phase::OrderingOther,
            stats,
        );
        if !rt.is_nonempty(&next) {
            break;
        }
        let mut next = next;
        level += 1;
        rt.stamp(&mut next, level);
        let mut mark = next.clone();
        rt.stamp(&mut mark, VISITING);
        rt.set_dense(DenseTarget::Order, &mark);
        rt.append(&mut acc, &next);
        cur_nnz = rt.frontier_nnz(&next);
        remaining -= cur_nnz;
        cur = next;
    }
    rt.set_phase(Phase::OrderingSort);
    let (labels, count) = rt.sortperm(&acc, (0, level + 1), *nv);
    rt.set_phase(Phase::OrderingOther);
    rt.set_dense(DenseTarget::Order, &labels);
    *nv += count as Label;
    stats.levels += level as usize;
}

/// Run the full Cuthill-McKee pipeline (Algorithms 3 + 4, per connected
/// component) on any backend, with the direction policy taken from the
/// `RCM_DIRECTION` environment variable ([`ExpandDirection::from_env`],
/// default [`ExpandDirection::Adaptive`]) and the start-node strategy from
/// `RCM_START_NODE` ([`StartNode::from_env`], default
/// [`StartNode::GeorgeLiu`]). See [`drive_cm_with`].
pub fn drive_cm<R: RcmRuntime>(rt: &mut R, mode: LabelingMode) -> DriverStats {
    drive_cm_with(
        rt,
        mode,
        ExpandDirection::from_env(),
        &StartNode::from_env(),
    )
}

/// Run the full Cuthill-McKee pipeline (Algorithms 3 + 4, per connected
/// component) on any backend under an explicit frontier-direction policy
/// and the default George–Liu start-node search — the classical driver,
/// bit for bit. See [`drive_cm_with`] for a pluggable strategy.
pub fn drive_cm_directed<R: RcmRuntime>(
    rt: &mut R,
    mode: LabelingMode,
    policy: ExpandDirection,
) -> DriverStats {
    drive_cm_with(rt, mode, policy, &StartNode::GeorgeLiu)
}

/// Run the full Cuthill-McKee pipeline (Algorithm 3 per connected
/// component) on any backend under an explicit frontier-direction policy
/// and an explicit [`StartNodeStrategy`]. On return the backend's ordering
/// vector `R` holds the unreversed CM labels; extraction (reversal,
/// mapping back to original ids) is backend-specific.
///
/// Components are seeded at the unvisited vertex of minimum
/// `(degree, vertex)` and handed to the strategy for refinement (the
/// default [`StartNode::GeorgeLiu`] runs Algorithm 4, exactly like the
/// classical driver) — all backends therefore produce the identical label
/// assignment for a given strategy, under **every** direction policy (the
/// pull expansion is specified to reproduce the push pair bit for bit;
/// only the cost differs).
pub fn drive_cm_with<R: RcmRuntime, S: StartNodeStrategy + ?Sized>(
    rt: &mut R,
    mode: LabelingMode,
    policy: ExpandDirection,
    strategy: &S,
) -> DriverStats {
    let n = rt.n();
    let mut stats = DriverStats::default();
    let mut nv: Label = 0;
    while (nv as usize) < n {
        rt.set_phase(Phase::PeripheralOther);
        let seed = rt
            .find_unvisited_min_degree()
            .expect("an unvisited vertex exists");
        let (root, pstat) = strategy.select(rt, seed, policy, &mut stats);
        stats.peripheral_stats.push(pstat);
        stats.components += 1;
        label_component(rt, root, &mut nv, mode, policy, &mut stats);
    }
    stats.spmspv_work = rt.spmspv_work();
    stats
}

/// Backend selector for [`rcm_with_backend`] — the uniform entry the
/// cross-backend tests and the `repro backends` sweep use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendKind {
    /// [`crate::backends::SerialBackend`] (via [`crate::algebraic_rcm`]).
    Serial,
    /// [`crate::backends::PooledBackend`] with this many worker threads.
    Pooled {
        /// Worker threads.
        threads: usize,
    },
    /// [`crate::backends::DistBackend`], flat MPI (1 thread/process).
    Dist {
        /// Total cores (= processes; must form a square grid).
        cores: usize,
    },
    /// [`crate::backends::HybridBackend`] (MPI × OpenMP, Fig. 6).
    Hybrid {
        /// Total cores.
        cores: usize,
        /// Threads per MPI process (> 1).
        threads_per_proc: usize,
    },
}

impl BackendKind {
    /// Short display name (`serial`, `pooled`, `dist`, `hybrid`).
    pub fn name(&self) -> &'static str {
        match self {
            BackendKind::Serial => "serial",
            BackendKind::Pooled { .. } => "pooled",
            BackendKind::Dist { .. } => "dist",
            BackendKind::Hybrid { .. } => "hybrid",
        }
    }
}

/// Compute the RCM permutation of `a` on the chosen backend, direction
/// policy from the environment ([`ExpandDirection::from_env`]).
///
/// Every backend returns the bit-identical permutation; they differ only in
/// how (and at what modeled cost) they execute the shared generic driver.
pub fn rcm_with_backend(a: &CscMatrix, kind: BackendKind) -> Permutation {
    rcm_with_backend_directed(a, kind, ExpandDirection::from_env())
}

/// [`rcm_with_backend`] under an explicit frontier-direction policy — the
/// uniform entry of the forced-direction equivalence tests and the
/// `repro direction` ablation. A thin shim over a per-call
/// [`crate::engine::OrderingEngine`]; sessions that order many matrices
/// should hold a warm engine instead.
pub fn rcm_with_backend_directed(
    a: &CscMatrix,
    kind: BackendKind,
    direction: ExpandDirection,
) -> Permutation {
    crate::engine::order_once(
        crate::engine::EngineConfig::builder()
            .backend(kind)
            .direction(direction)
            .build(),
        a,
    )
    .perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcm_sparse::CooBuilder;

    fn path(n: usize) -> CscMatrix {
        let mut b = CooBuilder::new(n, n);
        for v in 0..n - 1 {
            b.push_sym(v as Vidx, (v + 1) as Vidx);
        }
        b.build()
    }

    #[test]
    fn backend_kinds_have_names() {
        assert_eq!(BackendKind::Serial.name(), "serial");
        assert_eq!(BackendKind::Pooled { threads: 2 }.name(), "pooled");
        assert_eq!(BackendKind::Dist { cores: 4 }.name(), "dist");
        assert_eq!(
            BackendKind::Hybrid {
                cores: 24,
                threads_per_proc: 6
            }
            .name(),
            "hybrid"
        );
    }

    #[test]
    fn rcm_with_backend_agrees_across_all_kinds() {
        let a = path(23);
        let expect = rcm_with_backend(&a, BackendKind::Serial);
        for kind in [
            BackendKind::Pooled { threads: 3 },
            BackendKind::Dist { cores: 4 },
            BackendKind::Hybrid {
                cores: 24,
                threads_per_proc: 6,
            },
        ] {
            assert_eq!(
                rcm_with_backend(&a, kind),
                expect,
                "{} diverged",
                kind.name()
            );
        }
    }

    #[test]
    fn driver_stats_count_components() {
        use crate::backends::SerialBackend;
        let mut b = CooBuilder::new(7, 7);
        b.push_sym(0, 1);
        b.push_sym(2, 3);
        b.push_sym(3, 4);
        let a = b.build();
        let mut rt = SerialBackend::new(&a);
        let stats = drive_cm(&mut rt, LabelingMode::PerLevel);
        assert_eq!(stats.components, 4); // {0,1}, {2,3,4}, {5}, {6}
        assert!(stats.spmspv_work > 0);
        let labeled: usize = stats.level_stats.iter().map(|l| l.frontier).sum();
        assert_eq!(labeled + stats.components, 7);
    }

    #[test]
    fn direction_names_parse_and_roundtrip() {
        for d in [
            ExpandDirection::Push,
            ExpandDirection::Pull,
            ExpandDirection::Adaptive,
            ExpandDirection::Alternating,
        ] {
            assert_eq!(ExpandDirection::parse(d.name()), Some(d));
        }
        assert_eq!(
            ExpandDirection::parse("ALTERNATING"),
            Some(ExpandDirection::Alternating)
        );
        assert_eq!(ExpandDirection::parse("sideways"), None);
    }

    #[test]
    fn adaptive_policy_needs_both_thresholds() {
        let adaptive = ExpandDirection::Adaptive;
        let n = 1000;
        // Fat frontier, comparable remaining: pull.
        assert_eq!(
            adaptive.choose(0, 400, 500, n),
            ExpandDirection::Pull,
            "ALPHA and BETA both satisfied"
        );
        // Thin frontier, huge remaining: push (ALPHA fails).
        assert_eq!(adaptive.choose(0, 10, 900, n), ExpandDirection::Push);
        // Thin frontier, tiny remaining: push (ALPHA passes, BETA fails) —
        // the dense Θ(n) pull cost is not amortized on late thin levels.
        assert_eq!(adaptive.choose(0, 10, 12, n), ExpandDirection::Push);
        // Forced modes ignore the counts entirely.
        assert_eq!(
            ExpandDirection::Push.choose(1, 400, 500, n),
            ExpandDirection::Push
        );
        assert_eq!(
            ExpandDirection::Pull.choose(0, 1, 900, n),
            ExpandDirection::Pull
        );
        // Alternating flips on the expansion parity.
        assert_eq!(
            ExpandDirection::Alternating.choose(0, 1, 900, n),
            ExpandDirection::Push
        );
        assert_eq!(
            ExpandDirection::Alternating.choose(1, 1, 900, n),
            ExpandDirection::Pull
        );
    }

    #[test]
    fn forced_directions_are_bit_identical_on_the_serial_backend() {
        use crate::backends::SerialBackend;
        let a = path(40);
        let reference = {
            let mut rt = SerialBackend::new(&a);
            drive_cm_directed(&mut rt, LabelingMode::PerLevel, ExpandDirection::Push);
            rt.into_order()
        };
        for policy in [
            ExpandDirection::Pull,
            ExpandDirection::Adaptive,
            ExpandDirection::Alternating,
        ] {
            let mut rt = SerialBackend::new(&a);
            let stats = drive_cm_directed(&mut rt, LabelingMode::PerLevel, policy);
            assert_eq!(rt.into_order(), reference, "{} diverged", policy.name());
            match policy {
                ExpandDirection::Pull => {
                    assert_eq!(stats.push_expands, 0);
                    assert!(stats.pull_expands > 0);
                    assert!(stats
                        .level_stats
                        .iter()
                        .all(|l| l.direction == ExpandDirection::Pull));
                }
                ExpandDirection::Alternating => {
                    assert!(stats.push_expands > 0 && stats.pull_expands > 0);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn startnode_names_parse_and_roundtrip() {
        for s in [
            StartNode::GeorgeLiu,
            StartNode::BiCriteria,
            StartNode::MinDegree,
        ] {
            assert_eq!(StartNode::parse(s.name()), Some(s));
        }
        assert_eq!(StartNode::parse("RCM++"), Some(StartNode::BiCriteria));
        assert_eq!(StartNode::parse("fixed:7"), Some(StartNode::Fixed(7)));
        assert_eq!(StartNode::parse("7"), Some(StartNode::Fixed(7)));
        assert_eq!(StartNode::parse("sideways"), None);
        assert_eq!(StartNode::default(), StartNode::GeorgeLiu);
    }

    #[test]
    fn cache_salts_distinguish_every_strategy() {
        let salts = [
            StartNode::GeorgeLiu.cache_salt(),
            StartNode::BiCriteria.cache_salt(),
            StartNode::MinDegree.cache_salt(),
            StartNode::Fixed(0).cache_salt(),
            StartNode::Fixed(1).cache_salt(),
        ];
        for i in 0..salts.len() {
            for j in i + 1..salts.len() {
                assert_ne!(salts[i], salts[j], "salt {i} aliases salt {j}");
            }
        }
        assert_eq!(StartNode::GeorgeLiu.cache_salt(), 0);
    }

    #[test]
    fn george_liu_strategy_is_the_classical_driver_bit_for_bit() {
        use crate::backends::SerialBackend;
        let a = crate::testutil::scrambled_grid(9, 7);
        let (classical, classical_stats) = {
            let mut rt = SerialBackend::new(&a);
            let stats = drive_cm_directed(&mut rt, LabelingMode::PerLevel, ExpandDirection::Push);
            (rt.into_order(), stats)
        };
        let mut rt = SerialBackend::new(&a);
        let stats = drive_cm_with(
            &mut rt,
            LabelingMode::PerLevel,
            ExpandDirection::Push,
            &StartNode::GeorgeLiu,
        );
        assert_eq!(rt.into_order(), classical);
        assert_eq!(stats.peripheral_bfs, classical_stats.peripheral_bfs);
        assert_eq!(stats.peripheral_stats.len(), stats.components);
        let p = &stats.peripheral_stats[0];
        assert!(p.sweeps >= 1 && p.levels >= p.eccentricity && p.eccentricity >= 1);
    }

    #[test]
    fn bi_criteria_never_runs_more_sweeps_than_george_liu() {
        use crate::backends::SerialBackend;
        for a in [
            path(200),
            crate::testutil::scrambled_grid(16, 5),
            crate::testutil::scrambled_grid(40, 11),
        ] {
            let run = |s: StartNode| {
                let mut rt = SerialBackend::new(&a);
                let stats =
                    drive_cm_with(&mut rt, LabelingMode::PerLevel, ExpandDirection::Push, &s);
                (rt.into_order(), stats)
            };
            let (_, gl) = run(StartNode::GeorgeLiu);
            let (_, bc) = run(StartNode::BiCriteria);
            assert!(
                bc.peripheral_bfs <= gl.peripheral_bfs,
                "bi-criteria ran {} sweeps vs george-liu's {}",
                bc.peripheral_bfs,
                gl.peripheral_bfs
            );
        }
    }

    #[test]
    fn min_degree_orders_with_zero_sweeps() {
        use crate::backends::SerialBackend;
        let a = crate::testutil::scrambled_grid(8, 3);
        let mut rt = SerialBackend::new(&a);
        let stats = drive_cm_with(
            &mut rt,
            LabelingMode::PerLevel,
            ExpandDirection::Push,
            &StartNode::MinDegree,
        );
        assert_eq!(stats.peripheral_bfs, 0);
        assert!(stats
            .peripheral_stats
            .iter()
            .all(|p| p.sweeps == 0 && p.eccentricity == 0));
        // Still a valid bijective labeling.
        let order = rt.into_order();
        let mut seen = vec![false; order.len()];
        for &l in &order {
            assert!((l as usize) < order.len() && !seen[l as usize]);
            seen[l as usize] = true;
        }
    }

    #[test]
    fn fixed_vertex_is_honored_and_out_of_range_falls_back() {
        use crate::backends::SerialBackend;
        let a = path(9);
        let mut rt = SerialBackend::new(&a);
        let stats = drive_cm_with(
            &mut rt,
            LabelingMode::PerLevel,
            ExpandDirection::Push,
            &StartNode::Fixed(4),
        );
        assert_eq!(stats.peripheral_stats[0].start, 4);
        assert_eq!(stats.peripheral_bfs, 0);
        // The requested vertex gets the first CM label.
        assert_eq!(rt.into_order()[4], 0);

        // Out of range: identical to George–Liu.
        let reference = {
            let mut rt = SerialBackend::new(&a);
            drive_cm_directed(&mut rt, LabelingMode::PerLevel, ExpandDirection::Push);
            rt.into_order()
        };
        let mut rt = SerialBackend::new(&a);
        let stats = drive_cm_with(
            &mut rt,
            LabelingMode::PerLevel,
            ExpandDirection::Push,
            &StartNode::Fixed(99),
        );
        assert!(stats.peripheral_bfs >= 1);
        assert_eq!(rt.into_order(), reference);
    }

    #[test]
    fn rcm_with_backend_directed_agrees_across_kinds_and_directions() {
        let a = path(23);
        let expect = rcm_with_backend_directed(&a, BackendKind::Serial, ExpandDirection::Push);
        for direction in [
            ExpandDirection::Push,
            ExpandDirection::Pull,
            ExpandDirection::Adaptive,
            ExpandDirection::Alternating,
        ] {
            for kind in [
                BackendKind::Serial,
                BackendKind::Pooled { threads: 3 },
                BackendKind::Dist { cores: 4 },
                BackendKind::Hybrid {
                    cores: 24,
                    threads_per_proc: 6,
                },
            ] {
                assert_eq!(
                    rcm_with_backend_directed(&a, kind, direction),
                    expect,
                    "{} diverged under {}",
                    kind.name(),
                    direction.name()
                );
            }
        }
    }
}
