//! Reverse Cuthill-McKee orderings — sequential, shared-memory parallel, and
//! distributed-memory (the reproduction target: Azad, Jacquelin, Buluç, Ng,
//! *The Reverse Cuthill-McKee Algorithm in Distributed-Memory*, IPDPS 2017).
//!
//! Four interchangeable implementations, all returning a validated
//! [`Permutation`] mapping old vertex ids to new
//! labels:
//!
//! | module | algorithm | use case |
//! |---|---|---|
//! | [`serial`] | classical George–Liu RCM (Algorithm 1) | reference / small matrices |
//! | [`algebraic`] | matrix-algebraic RCM (Algorithms 3–4) | the distributed algorithm's specification |
//! | [`shared`] | multithreaded level-synchronous RCM | SpMP-style baseline of Table II |
//! | [`distributed`] | 2D-decomposed RCM on the simulated runtime | the paper's contribution (Figs. 4–6) |
//!
//! All of the algebraic entry points are thin shims over **one** generic
//! pipeline: [`driver::drive_cm`] writes the pseudo-peripheral search,
//! level-synchronous BFS, and labeling `SORTPERM` once over the Table-I
//! primitives trait [`driver::RcmRuntime`], and the four backends in
//! [`backends`] (serial, pooled, distributed, hybrid) supply the
//! primitives. All implementations produce *identical* orderings (ties
//! broken by vertex id); the distributed ones match exactly whenever no
//! load-balance permutation is applied. This cross-backend equality is the
//! backbone of the test suite.
//!
//! ```
//! use rcm_core::rcm;
//! use rcm_sparse::CooBuilder;
//!
//! // A path graph with scrambled vertex numbering.
//! let mut b = CooBuilder::new(5, 5);
//! for (u, v) in [(0, 3), (3, 1), (1, 4), (4, 2)] {
//!     b.push_sym(u, v);
//! }
//! let a = b.build();
//! let perm = rcm(&a);
//! let reordered = a.permute_sym(&perm);
//! assert_eq!(rcm_sparse::matrix_bandwidth(&reordered), 1);
//! ```

pub mod algebraic;
pub mod backends;
pub mod compress;
pub mod distributed;
pub mod driver;
pub mod engine;
pub mod peripheral;
pub mod pool;
pub mod quality;
pub mod serial;
pub mod service;
pub mod shared;
pub mod sloan;
pub mod unordered;

pub use algebraic::{
    algebraic_cm, algebraic_cm_directed, algebraic_rcm, algebraic_rcm_directed, AlgebraicStats,
};
pub use backends::{DistBackend, HybridBackend, PooledBackend, SerialBackend, SerialWorkspace};
pub use compress::{find_supervariables, rcm_compressed, CompressStats};
pub use distributed::{dist_rcm, DistRcmConfig, DistRcmResult, LevelStat, SortMode};
pub use driver::{
    drive_cm, drive_cm_directed, drive_cm_with, rcm_with_backend, rcm_with_backend_directed,
    BackendKind, DenseTarget, DriverStats, ExpandDirection, LabelingMode, PeripheralStat,
    RcmRuntime, StartNode, StartNodeStrategy, BI_CRITERIA_GAIN_DIV, PULL_ALPHA, PULL_BETA,
};
pub use engine::{
    CacheConfig, EngineConfig, EngineConfigBuilder, OrderingEngine, OrderingReport,
    DEFAULT_CACHE_NNZ,
};
pub use peripheral::{bfs_level_structure, pseudo_peripheral, LevelStructure, PseudoPeripheral};
pub use pool::{
    thread_counts_from_env, ChunkQueue, PoolConfig, PooledWorkspace, RcmPool, DEFAULT_CHUNK,
    DEFAULT_SEQ_CUTOFF,
};
pub use quality::{
    ordering_bandwidth, ordering_profile, ordering_wavefront, quality_report, OrderingQuality,
};
pub use serial::{cuthill_mckee, rcm_from_root, SerialRcmStats};
pub use service::{
    CacheOutcome, CacheStats, CachedOrdering, JobHandle, OrderingRequest, OrderingService,
    PatternCache, ServiceConfig, ServiceStats,
};
pub use shared::{
    par_cuthill_mckee, par_cuthill_mckee_with_pool, par_cuthill_mckee_with_pool_directed, par_rcm,
    par_rcm_directed, SharedRcmStats,
};
pub use sloan::{sloan, sloan_with_weights, SloanWeights};
pub use unordered::{rcm_globalsort, rcm_nosort};

use rcm_sparse::{CscMatrix, Permutation};

/// Compute the Reverse Cuthill-McKee ordering of a symmetric pattern matrix
/// with the sequential George–Liu algorithm (the right default for
/// single-machine use).
pub fn rcm(a: &CscMatrix) -> Permutation {
    serial::rcm(a).0
}

/// Shared test fixtures (one copy instead of one per test module).
#[cfg(test)]
pub(crate) mod testutil {
    use rcm_sparse::{CooBuilder, CscMatrix, Permutation, Vidx};

    /// A `w × w` 2D grid graph with its vertices scrambled by the affine
    /// map `i ↦ (i · stride) mod n` — the standard adversarial input of
    /// the cross-backend tests (a known-good topology under an ordering
    /// the algorithms must undo).
    pub(crate) fn scrambled_grid(w: usize, stride: usize) -> CscMatrix {
        let mut b = CooBuilder::new(w * w, w * w);
        for y in 0..w {
            for x in 0..w {
                let u = (y * w + x) as Vidx;
                if x + 1 < w {
                    b.push_sym(u, u + 1);
                }
                if y + 1 < w {
                    b.push_sym(u, u + w as Vidx);
                }
            }
        }
        let n = w * w;
        let perm: Vec<Vidx> = (0..n).map(|i| ((i * stride) % n) as Vidx).collect();
        b.build()
            .permute_sym(&Permutation::from_new_of_old(perm).unwrap())
    }
}
