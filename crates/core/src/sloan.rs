//! Sloan's profile/wavefront-reduction ordering.
//!
//! The paper cites Sloan's algorithm \[6\] alongside (R)CM as the standard
//! bandwidth/profile heuristics; implementing it gives the quality
//! comparison RCM is usually judged against: Sloan typically produces
//! *better profiles* (envelope sizes) at somewhat higher cost, while RCM is
//! simpler, cheaper and parallelizes (which is the paper's whole point).
//!
//! This is the classical formulation (Sloan 1986, in the Kumfert–Pothen
//! notation): vertices move through `inactive → preactive → active →
//! numbered`, and the next vertex is the highest-priority preactive/active
//! vertex with priority
//!
//! ```text
//!   P(v) = W1 · dist(v, e) − W2 · (deg(v) + 1)
//! ```
//!
//! where `e` is the far end of a pseudo-diameter. The max-priority queue is
//! a lazy binary heap (stale entries are skipped on pop).

use crate::peripheral::{bfs_level_structure, pseudo_peripheral_with_degrees};
use rcm_sparse::{CscMatrix, Permutation, Vidx};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Weights of Sloan's priority function. Sloan's recommended `(2, 1)` is the
/// default; Kumfert–Pothen explore class-dependent weights.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SloanWeights {
    /// Weight of the distance-to-end (global) term.
    pub w1: i64,
    /// Weight of the degree (local) term.
    pub w2: i64,
}

impl Default for SloanWeights {
    fn default() -> Self {
        SloanWeights { w1: 2, w2: 1 }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Inactive,
    Preactive,
    Active,
    Numbered,
}

/// Sloan ordering with default weights.
pub fn sloan(a: &CscMatrix) -> Permutation {
    sloan_with_weights(a, SloanWeights::default())
}

/// Sloan ordering with explicit weights.
pub fn sloan_with_weights(a: &CscMatrix, weights: SloanWeights) -> Permutation {
    assert_eq!(a.n_rows(), a.n_cols(), "Sloan needs a square matrix");
    let n = a.n_rows();
    let degrees = a.degrees();
    let mut status = vec![Status::Inactive; n];
    let mut order: Vec<Vidx> = Vec::with_capacity(n);

    while order.len() < n {
        // Pseudo-diameter endpoints (s, e) of the next component.
        let seed = (0..n)
            .filter(|&v| status[v] == Status::Inactive)
            .min_by_key(|&v| (degrees[v], v as Vidx))
            .expect("an unnumbered vertex exists") as Vidx;
        let s = pseudo_peripheral_with_degrees(a, seed, &degrees).vertex;
        let ls = bfs_level_structure(a, s);
        let e = *ls
            .level(ls.height() - 1)
            .iter()
            .min_by_key(|&&w| (degrees[w as usize], w))
            .expect("last level nonempty");
        // Distances to the far end e, within the component.
        let dist_e = bfs_level_structure(a, e).level_of;

        // Initial priorities.
        let mut priority: Vec<i64> = (0..n)
            .map(|v| {
                let d = dist_e[v].max(0) as i64;
                weights.w1 * d - weights.w2 * (degrees[v] as i64 + 1)
            })
            .collect();

        let mut heap: BinaryHeap<(i64, Reverse<Vidx>)> = BinaryHeap::new();
        status[s as usize] = Status::Preactive;
        heap.push((priority[s as usize], Reverse(s)));

        while let Some((p, Reverse(v))) = heap.pop() {
            let v = v as usize;
            // Lazy deletion: skip stale or already-numbered entries.
            if status[v] == Status::Numbered || p != priority[v] {
                continue;
            }
            if status[v] == Status::Preactive {
                // Examining a preactive vertex activates the local front
                // around it: its neighbours gain W2 and become candidates.
                for &w in a.col(v) {
                    let w = w as usize;
                    priority[w] += weights.w2;
                    if status[w] == Status::Inactive {
                        status[w] = Status::Preactive;
                    }
                    if status[w] != Status::Numbered {
                        heap.push((priority[w], Reverse(w as Vidx)));
                    }
                }
            }
            status[v] = Status::Numbered;
            order.push(v as Vidx);
            // Newly exposed neighbours: preactive neighbours of v become
            // active and bump *their* neighbourhoods.
            for &w in a.col(v) {
                let w = w as usize;
                if status[w] == Status::Preactive {
                    status[w] = Status::Active;
                    priority[w] += weights.w2;
                    heap.push((priority[w], Reverse(w as Vidx)));
                    for &x in a.col(w) {
                        let x = x as usize;
                        if status[x] != Status::Numbered {
                            priority[x] += weights.w2;
                            if status[x] == Status::Inactive {
                                status[x] = Status::Preactive;
                            }
                            heap.push((priority[x], Reverse(x as Vidx)));
                        }
                    }
                }
            }
        }
    }
    Permutation::from_order(&order).expect("Sloan numbers each vertex exactly once")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::{ordering_bandwidth, ordering_profile};
    use rcm_sparse::CooBuilder;

    use crate::testutil::scrambled_grid;

    #[test]
    fn sloan_is_a_valid_permutation() {
        let a = scrambled_grid(9, 13);
        let p = sloan(&a);
        assert_eq!(p.len(), 81);
        assert_eq!(p.then(&p.inverse()), Permutation::identity(81));
    }

    #[test]
    fn sloan_reduces_profile_substantially() {
        let a = scrambled_grid(15, 41);
        let id = Permutation::identity(a.n_rows());
        let before = ordering_profile(&a, &id);
        let after = ordering_profile(&a, &sloan(&a));
        assert!(
            after * 3 < before,
            "Sloan should cut the profile: {before} -> {after}"
        );
    }

    #[test]
    fn sloan_profile_competitive_with_rcm() {
        // Sloan targets the profile; on meshes it is usually at least close
        // to RCM (often better). Allow 30% slack to avoid flaky coupling to
        // tie-breaking details.
        let a = scrambled_grid(14, 23);
        let p_sloan = ordering_profile(&a, &sloan(&a));
        let p_rcm = ordering_profile(&a, &crate::rcm(&a));
        assert!(
            (p_sloan as f64) <= p_rcm as f64 * 1.3,
            "Sloan profile {p_sloan} should be competitive with RCM {p_rcm}"
        );
    }

    #[test]
    fn handles_components_and_isolated_vertices() {
        let mut b = CooBuilder::new(7, 7);
        b.push_sym(0, 1);
        b.push_sym(1, 2);
        b.push_sym(4, 5);
        let a = b.build();
        let p = sloan(&a);
        assert_eq!(p.len(), 7);
    }

    #[test]
    fn custom_weights_change_the_ordering() {
        // Grids are too degree-homogeneous for the weights to matter; glue a
        // star onto a path so the local (degree) and global (distance) terms
        // genuinely compete.
        let n = 40usize;
        let mut b = CooBuilder::new(n, n);
        for v in 0..19u32 {
            b.push_sym(v, v + 1);
        }
        for v in 21..40u32 {
            b.push_sym(20, v);
        }
        b.push_sym(10, 20);
        let a = b.build();
        let p1 = sloan_with_weights(&a, SloanWeights { w1: 1000, w2: 1 });
        let p2 = sloan_with_weights(&a, SloanWeights { w1: 1, w2: 1000 });
        assert_ne!(p1, p2);
    }

    #[test]
    fn path_is_ordered_end_to_end() {
        let mut b = CooBuilder::new(6, 6);
        for v in 0..5u32 {
            b.push_sym(v, v + 1);
        }
        let a = b.build();
        let p = sloan(&a);
        assert_eq!(ordering_bandwidth(&a, &p), 1);
    }
}
