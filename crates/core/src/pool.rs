//! Work-stealing shared-memory execution backend for the level-synchronous
//! RCM of [`crate::shared`].
//!
//! The original backend split each frontier statically into `nthreads`
//! contiguous chunks and spawned fresh OS threads *per level*, so one heavy
//! chunk (a few high-degree vertices) held the whole level hostage and the
//! spawn overhead swamped thin levels — scaling plateaued past ~4 threads.
//! This module replaces it with a pool of **persistent workers** (spawned
//! once per [`RcmPool`], parked on a condvar gate between jobs, joined on
//! drop — they survive across orderings and across matrices) and a dynamic
//! three-phase pipeline per parallel level:
//!
//! 1. **Expansion** — workers claim fixed-size frontier chunks from a
//!    [`ChunkQueue`] (one atomic claim counter; a thread that finishes its
//!    chunk immediately steals the next one), emit
//!    `(vertex, parent label, degree)` candidates into their own reusable
//!    arena buffer, and `fetch_min` the epoch-tagged parent label into a
//!    shared per-vertex claim array.
//! 2. **Merge/dedup** — after a barrier, each worker filters its own
//!    candidates: `(w, p)` survives iff the claim array still holds `p`
//!    for `w`. Because `min` is commutative and every `(w, p)` pair is
//!    emitted exactly once, the surviving set is the minimum-parent set of
//!    the `(select2nd, min)` semiring regardless of interleaving — a
//!    merge/dedup with no comparison sort and no serial bottleneck.
//!    Survivors are routed to the worker owning their *parent* range,
//!    mirroring the AllToAll of the paper's distributed bucket `SORTPERM`
//!    (§IV-B).
//! 3. **Bucket sort** — parent labels of a frontier are contiguous (they
//!    were assigned consecutively last level), so each worker places its
//!    received tuples into per-parent buckets by streaming (linear work, no
//!    comparison sort across buckets) and sorts each bucket by
//!    `(degree, vertex)`. Concatenating the workers' segments in parent
//!    order yields the `(parent label, degree, vertex)` ordering.
//!
//! Every phase is deterministic: the claim array converges to the same
//! minima under any interleaving, and within a parent bucket the
//! `(degree, vertex)` key is unique, so the result is bit-identical to the
//! sequential algorithm for *any* thread count, chunk size, or claim
//! interleaving. All scratch buffers are owned by the [`RcmPool`] and
//! reused across levels, components, orderings, and matrices — the claim
//! array's level epochs are **monotone for the pool's lifetime**, so a new
//! ordering needs no `O(n)` invalidation pass, and
//! [`RcmPool::growth_events`] exposes when the install-managed buffers last
//! had to grow (a pool that has seen an `n`-vertex matrix installs any
//! smaller one without allocating).
//!
//! **Pull levels.** The direction-optimizing driver can run a level
//! bottom-up instead: the coordinator scatters the frontier into a dense
//! per-vertex parent-label array (`Vidx::MAX` = not in frontier), and the
//! expansion phase claims chunks of the *vertex range* `0..n` — each worker
//! walks the *unvisited bitmap* ([`VertexBitmap`]) over its chunk, so a
//! fully visited 64-vertex word costs one compare, and scans each surviving
//! row's adjacency for the minimum frontier label. Because every row is
//! computed by exactly one worker, pull needs **no atomic dedup at all**
//! (the `fetch_min` claim array sits idle); the merge phase routes
//! candidates to their parent-range owners unchanged and the bucket sort is
//! shared verbatim, so a pull level yields the byte-identical
//! `(parent, degree, vertex)` stream a push level would.
//!
//! **Batch jobs.** Besides level expansions, the gate can post a *batch*
//! job ([`RcmPool::order_cm_batch`]): workers claim whole matrices
//! (one-ordering-per-claim, claim granularity 1) and run the complete
//! sequential Cuthill-McKee pipeline on each, using a worker-local
//! [`SerialWorkspace`] that stays warm across batch jobs. This is the
//! second level of the [`crate::engine::OrderingEngine`] batch policy:
//! matrices too small to ever cross the parallel cutover are ordered whole,
//! one per worker, while large ones take the level-parallel path above.
//!
//! Synchronization per parallel level: one condvar broadcast to release the
//! workers, two [`Barrier`] waits between phases, one condvar signal back
//! to the coordinator. Levels below [`PoolConfig::seq_cutoff`] never touch
//! the workers.

use crate::backends::serial::{SerialBackend, SerialWorkspace};
use crate::driver::{drive_cm_with, DriverStats, ExpandDirection, LabelingMode, StartNode};
use rcm_sparse::{CscMatrix, Label, Permutation, VertexBitmap, Vidx, UNVISITED};
use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Condvar, Mutex, MutexGuard, RwLock};

/// Frontier size below which a level is expanded on the calling thread.
///
/// Releasing and re-parking the worker pool costs a few microseconds per
/// level; below this many frontier vertices the sequential path wins. This
/// is the cutover the old backend hard-coded at 256 inside `expand_level`;
/// it is now a field of [`PoolConfig`] (`seq_cutoff`) so benchmarks can
/// sweep it.
pub const DEFAULT_SEQ_CUTOFF: usize = 256;

/// Default work-stealing claim granularity (frontier vertices per chunk).
///
/// Small enough that a straggler chunk cannot dominate a level, large
/// enough that the atomic claim counter stays off the profile.
pub const DEFAULT_CHUNK: usize = 64;

/// Configuration of the shared-memory execution backend.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolConfig {
    /// Worker threads (also the fan-out of the merge and bucket phases).
    pub nthreads: usize,
    /// Frontiers smaller than this are expanded sequentially
    /// ([`DEFAULT_SEQ_CUTOFF`]).
    pub seq_cutoff: usize,
    /// Frontier vertices per work-stealing claim ([`DEFAULT_CHUNK`]).
    pub chunk: usize,
}

impl PoolConfig {
    /// Default configuration for `nthreads` workers.
    pub fn new(nthreads: usize) -> Self {
        PoolConfig {
            nthreads: nthreads.max(1),
            seq_cutoff: DEFAULT_SEQ_CUTOFF,
            chunk: DEFAULT_CHUNK,
        }
    }
}

/// A chunked work queue with a single atomic claim counter.
///
/// `len` items are divided into `⌈len/chunk⌉` contiguous chunks; workers
/// call [`ChunkQueue::claim`] until it returns `None`. A fast worker simply
/// claims (steals) more chunks than a slow one — there is no static
/// assignment to rebalance. [`ChunkQueue::reset`] re-arms the queue for the
/// next level; [`ChunkQueue::reset_chunked`] additionally changes the claim
/// granularity (batch jobs claim whole orderings, granularity 1).
pub struct ChunkQueue {
    next: AtomicUsize,
    len: AtomicUsize,
    chunk: AtomicUsize,
}

impl ChunkQueue {
    /// Queue over `len` items in `chunk`-sized claims.
    pub fn new(len: usize, chunk: usize) -> Self {
        ChunkQueue {
            next: AtomicUsize::new(0),
            len: AtomicUsize::new(len),
            chunk: AtomicUsize::new(chunk.max(1)),
        }
    }

    /// Re-arm the queue for a new batch of `len` items.
    pub fn reset(&self, len: usize) {
        self.len.store(len, Ordering::Relaxed);
        self.next.store(0, Ordering::Release);
    }

    /// Re-arm the queue with a different claim granularity.
    pub fn reset_chunked(&self, len: usize, chunk: usize) {
        self.chunk.store(chunk.max(1), Ordering::Relaxed);
        self.reset(len);
    }

    /// Claim the next unprocessed chunk, or `None` when the queue is empty.
    pub fn claim(&self) -> Option<Range<usize>> {
        let chunk = self.chunk.load(Ordering::Relaxed);
        let c = self.next.fetch_add(1, Ordering::Relaxed);
        let start = c.checked_mul(chunk)?;
        let len = self.len.load(Ordering::Relaxed);
        if start >= len {
            return None;
        }
        Some(start..(start + chunk).min(len))
    }

    /// Total number of chunks the queue hands out per batch.
    pub fn nchunks(&self) -> usize {
        self.len
            .load(Ordering::Relaxed)
            .div_ceil(self.chunk.load(Ordering::Relaxed))
    }
}

/// Candidate emitted during frontier expansion:
/// `(vertex, parent label, degree)` — lexicographic order groups duplicates
/// of a vertex with the minimum parent label first.
pub(crate) type Candidate = (Vidx, Vidx, Vidx);

/// Claim-array tag of a level: high 32 bits hold the *complement* of the
/// level epoch, so newer levels always `fetch_min` below stale entries and
/// the array needs no clearing between levels — or between orderings, since
/// the epoch counter is monotone for the pool's lifetime; the low 32 bits
/// hold the parent label, so within a level the minimum parent wins.
fn claim_tag(epoch: u64) -> u64 {
    debug_assert!(epoch > 0 && epoch <= u32::MAX as u64, "epoch out of range");
    ((!(epoch as u32)) as u64) << 32
}

/// What the gate posted: one parallel frontier expansion, or a batch of
/// whole sequential orderings.
#[derive(Clone, Copy)]
enum JobKind {
    /// One level of the three-phase pipeline.
    Level {
        /// Label of `frontier[0]` for the posted level.
        base_label: Vidx,
        /// Run the bottom-up (pull) expansion phase.
        pull: bool,
    },
    /// Whole sequential orderings, claimed one matrix at a time
    /// ([`RcmPool::order_cm_batch`]).
    Batch,
}

/// Coordinator→worker task descriptor plus the completion count.
struct GateState {
    /// Bumped once per posted job; workers run when it changes. Monotone
    /// for the pool's lifetime (this is also the claim-array epoch).
    epoch: u64,
    /// The posted job.
    job: JobKind,
    /// Workers exit their loop when set.
    shutdown: bool,
    /// Workers done with the current job.
    done: usize,
    /// First worker panic of the job, re-thrown by the coordinator (a
    /// panicking worker must not leave its siblings stuck on the barrier).
    panic: Option<Box<dyn std::any::Any + Send>>,
}

/// Condvar gate parking the workers between jobs.
struct Gate {
    state: Mutex<GateState>,
    start: Condvar,
    finished: Condvar,
}

/// The coordinator's borrows, smuggled to the persistent workers as raw
/// pointers.
///
/// # Safety discipline
///
/// The pointers are installed at the start of [`RcmPool::run`] /
/// [`RcmPool::order_cm_batch`] and remain valid for the whole call (they
/// point into the caller's arguments or the call's stack frame). Workers
/// dereference them **only** while executing a posted job, and the
/// coordinator never returns from the posting call before every worker has
/// reported done — so every dereference happens strictly inside the
/// lifetime of the borrow the pointer was created from. Between jobs the
/// workers are parked on the gate and touch nothing.
struct JobData {
    a: *const CscMatrix,
    degrees: *const Vidx,
    degrees_len: usize,
    batch: *const BatchJob,
}

// Safety: see the discipline above — the pointers are only dereferenced
// while the coordinator keeps the underlying borrows alive, and all shared
// mutation goes through the Mutex/RwLock/atomic fields of `PoolShared`.
unsafe impl Send for JobData {}

/// One batch job: the matrices to order (as raw pointers into the caller's
/// slice) and a per-matrix output slot.
struct BatchJob {
    mats: Vec<*const CscMatrix>,
    direction: ExpandDirection,
    start_node: StartNode,
    outs: Vec<Mutex<Option<(Permutation, DriverStats)>>>,
}

/// One worker's outbox for the merge phase: surviving candidates for
/// destination worker `k` occupy `buf[offs[k]..offs[k + 1]]`.
///
/// This used to be `Vec<Vec<Candidate>>` — one push-grown `Vec` per
/// destination. The flat form is filled by a two-pass counting sort (count
/// survivors per destination, prefix-sum, scatter), so the merge phase
/// makes two linear passes over the candidate buffer and never grows more
/// than one allocation, no matter how many workers it routes to.
#[derive(Default)]
struct RouteBox {
    buf: Vec<Candidate>,
    /// `nthreads + 1` segment offsets into `buf`.
    offs: Vec<u32>,
}

/// Everything the persistent workers share with the coordinator.
///
/// The `RwLock`s are phase-disciplined: writers and readers of the same
/// buffer are always separated by a barrier or by the gate, so every lock
/// acquisition is uncontended — they exist to keep the code in safe Rust,
/// not to arbitrate races.
struct PoolShared {
    config: PoolConfig,
    /// Not-yet-visited vertices, one bit each — the pull expansion scans
    /// this a word at a time and the push expansion tests membership.
    unvisited: RwLock<VertexBitmap>,
    frontier: RwLock<Vec<Vidx>>,
    /// Dense frontier for pull levels: `pull_labels[v]` = parent label of
    /// frontier vertex `v`, `Vidx::MAX` otherwise.
    pull_labels: RwLock<Vec<Vidx>>,
    cands: Vec<RwLock<Vec<Candidate>>>,
    routes: Vec<RwLock<RouteBox>>,
    sorted: Vec<RwLock<Vec<Candidate>>>,
    claims: Vec<AtomicUsize>,
    /// Per-vertex epoch-tagged minimum-parent claims (see [`claim_tag`];
    /// push levels only — pull computes each vertex exactly once). Grown
    /// under the write lock while the workers are parked; never cleared.
    best: RwLock<Vec<AtomicU64>>,
    queue: ChunkQueue,
    barrier: Barrier,
    gate: Gate,
    job: Mutex<JobData>,
}

impl PoolShared {
    /// Lock the gate, surviving poisoning (a propagated worker panic must
    /// not turn [`RcmPool`]'s drop into a double panic).
    fn lock_gate(&self) -> MutexGuard<'_, GateState> {
        self.gate
            .state
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Advance the gate epoch for a new job, recycling the 32-bit claim-tag
    /// space before it can wrap: when the epoch reaches `u32::MAX` the
    /// claim array is cleared once (an `O(n)` pass every 2³² jobs) and the
    /// count restarts — so "stale claims never match or win" holds for the
    /// pool's entire lifetime, not just its first 4 billion levels. Called
    /// only while every worker is parked (the posting sites hold the gate).
    fn bump_epoch(&self, st: &mut GateState) {
        if st.epoch >= u32::MAX as u64 {
            for b in self.best.write().unwrap().iter() {
                b.store(u64::MAX, Ordering::Relaxed);
            }
            st.epoch = 0;
        }
        st.epoch += 1;
    }
}

/// The dense companions and scratch of [`crate::backends::PooledBackend`],
/// owned by the pool so they stay warm across orderings: the ordering
/// vector `R`, the BFS level vector `L`, the level-mark undo list, and the
/// candidate buffer the backend's frontier conversions reuse.
#[derive(Default)]
pub struct PooledWorkspace {
    pub(crate) order: Vec<Label>,
    pub(crate) levels: Vec<Label>,
    pub(crate) touched: Vec<Vidx>,
    pub(crate) cands: Vec<Candidate>,
    pub(crate) sort_scratch: rcm_sparse::SortpermScratch,
}

impl PooledWorkspace {
    /// Bind an `n`-vertex matrix: reset the active prefix of both dense
    /// companions to unvisited (grow-only — installing a matrix no larger
    /// than any seen before allocates nothing). Returns whether any buffer
    /// had to grow.
    fn install(&mut self, n: usize) -> bool {
        let grew = self.order.capacity() < n;
        if self.order.len() < n {
            self.order.resize(n, UNVISITED);
            self.levels.resize(n, UNVISITED);
        }
        self.order[..n].fill(UNVISITED);
        self.levels[..n].fill(UNVISITED);
        self.touched.clear();
        grew
    }
}

/// The work-stealing pool: configuration, the persistent worker threads,
/// and every arena they share. Workers are spawned once in [`RcmPool::new`]
/// and parked between jobs; [`Drop`] shuts them down and joins them.
pub struct RcmPool {
    config: PoolConfig,
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    /// Sequential-path scratch (coordinator-local).
    seq_cand: Vec<Candidate>,
    /// The [`crate::backends::PooledBackend`] dense companions.
    backend_ws: PooledWorkspace,
    /// Warm degree buffer for [`RcmPool::run_warm`].
    degrees: Vec<Vidx>,
    /// Coordinator-side serial workspace for batch jobs (each worker keeps
    /// its own, local to its loop).
    batch_ws: SerialWorkspace,
    growth_events: usize,
}

impl RcmPool {
    /// Pool with `config.nthreads` workers (spawned now, parked until the
    /// first job) and empty arenas.
    pub fn new(config: PoolConfig) -> Self {
        let nthreads = config.nthreads.max(1);
        let config = PoolConfig { nthreads, ..config };
        let shared = Arc::new(PoolShared {
            config,
            unvisited: RwLock::new(VertexBitmap::new(0)),
            frontier: RwLock::new(Vec::new()),
            pull_labels: RwLock::new(Vec::new()),
            cands: (0..nthreads).map(|_| RwLock::new(Vec::new())).collect(),
            routes: (0..nthreads)
                .map(|_| RwLock::new(RouteBox::default()))
                .collect(),
            sorted: (0..nthreads).map(|_| RwLock::new(Vec::new())).collect(),
            claims: (0..nthreads).map(|_| AtomicUsize::new(0)).collect(),
            best: RwLock::new(Vec::new()),
            queue: ChunkQueue::new(0, config.chunk),
            barrier: Barrier::new(nthreads),
            gate: Gate {
                state: Mutex::new(GateState {
                    epoch: 0,
                    job: JobKind::Level {
                        base_label: 0,
                        pull: false,
                    },
                    shutdown: false,
                    done: 0,
                    panic: None,
                }),
                start: Condvar::new(),
                finished: Condvar::new(),
            },
            job: Mutex::new(JobData {
                a: std::ptr::null(),
                degrees: std::ptr::null(),
                degrees_len: 0,
                batch: std::ptr::null(),
            }),
        });
        let workers = if nthreads > 1 {
            (0..nthreads)
                .map(|tid| {
                    let shared = Arc::clone(&shared);
                    std::thread::spawn(move || worker_loop(&shared, tid))
                })
                .collect()
        } else {
            Vec::new()
        };
        RcmPool {
            config,
            shared,
            workers,
            seq_cand: Vec::new(),
            backend_ws: PooledWorkspace::default(),
            degrees: Vec::new(),
            batch_ws: SerialWorkspace::new(),
            growth_events: 0,
        }
    }

    /// Configured worker count.
    pub fn nthreads(&self) -> usize {
        self.config.nthreads
    }

    /// The active configuration.
    pub fn config(&self) -> &PoolConfig {
        &self.config
    }

    /// Set the gate epoch directly — only for the wraparound tests, which
    /// cannot post 2³² real jobs.
    #[cfg(test)]
    fn set_epoch_for_test(&self, epoch: u64) {
        self.shared.lock_gate().epoch = epoch;
    }

    /// Times any install-managed arena (visited set, pull-label array,
    /// claim array, dense companions, degree buffer) had to grow. A warm
    /// pool re-ordering matrices no larger than any it has seen reports a
    /// stable count — the engine's growth-event tests assert on this.
    pub fn growth_events(&self) -> usize {
        self.growth_events
    }

    /// Bind an `n`-vertex matrix to the shared arenas: grow-only resize,
    /// prefix reset. The claim array is *not* cleared — level epochs are
    /// monotone, so stale claims can never match or win again.
    fn install(&mut self, n: usize) {
        let mut grew = false;
        grew |= self.shared.unvisited.write().unwrap().reset_ones(n);
        self.shared.frontier.write().unwrap().clear();
        {
            let mut pull_labels = self.shared.pull_labels.write().unwrap();
            grew |= pull_labels.capacity() < n;
            pull_labels.clear();
            pull_labels.resize(n, Vidx::MAX);
        }
        {
            let mut best = self.shared.best.write().unwrap();
            if best.len() < n {
                grew = true;
                best.resize_with(n, || AtomicU64::new(u64::MAX));
            }
        }
        grew |= self.backend_ws.install(n);
        if grew {
            self.growth_events += 1;
        }
    }

    /// Hand the driver a [`LevelExecutor`] over `a` plus the pool-owned
    /// [`PooledWorkspace`], and run it. `degrees[v]` must be the degree of
    /// vertex `v` of `a`. The executor's visited set starts all false and
    /// its frontier empty; the workspace's dense companions start all
    /// unvisited.
    pub fn run<R>(
        &mut self,
        a: &CscMatrix,
        degrees: &[Vidx],
        driver: impl FnOnce(&mut LevelExecutor<'_>, &mut PooledWorkspace) -> R,
    ) -> R {
        self.install(a.n_rows());
        {
            let mut job = self.shared.job.lock().unwrap();
            job.a = a;
            job.degrees = degrees.as_ptr();
            job.degrees_len = degrees.len();
            job.batch = std::ptr::null();
        }
        let result = {
            let mut exec = LevelExecutor {
                shared: &self.shared,
                seq_cand: &mut self.seq_cand,
                a,
                degrees,
            };
            driver(&mut exec, &mut self.backend_ws)
        };
        let mut job = self.shared.job.lock().unwrap();
        job.a = std::ptr::null();
        job.degrees = std::ptr::null();
        job.degrees_len = 0;
        drop(job);
        result
    }

    /// [`RcmPool::run`] with the degree vector computed into (and reused
    /// from) the pool's warm buffer — the zero-steady-state-allocation
    /// entry the engine uses. The driver closure reads the degrees from
    /// [`LevelExecutor::degrees`].
    pub fn run_warm<R>(
        &mut self,
        a: &CscMatrix,
        driver: impl FnOnce(&mut LevelExecutor<'_>, &mut PooledWorkspace) -> R,
    ) -> R {
        let mut degrees = std::mem::take(&mut self.degrees);
        if degrees.capacity() < a.n_rows() {
            self.growth_events += 1;
        }
        a.degrees_into(&mut degrees);
        let result = self.run(a, &degrees, driver);
        self.degrees = degrees;
        result
    }

    /// Order every matrix with the sequential Cuthill-McKee pipeline,
    /// scheduling **whole orderings one per worker** (claim granularity 1)
    /// — the small-matrix half of the engine's two-level batch parallelism.
    /// Returns the unreversed CM permutation and driver statistics per
    /// matrix, in input order; every permutation is bit-identical to the
    /// level-parallel path (which is bit-identical to serial by the
    /// cross-backend invariant), regardless of which worker claimed it.
    pub fn order_cm_batch(
        &mut self,
        mats: &[&CscMatrix],
        direction: ExpandDirection,
        start_node: StartNode,
    ) -> Vec<(Permutation, DriverStats)> {
        if mats.is_empty() {
            return Vec::new();
        }
        if self.config.nthreads == 1 || mats.len() == 1 {
            return mats
                .iter()
                .map(|a| order_serial_cm(a, &mut self.batch_ws, direction, start_node))
                .collect();
        }
        let job = BatchJob {
            mats: mats.iter().map(|a| *a as *const CscMatrix).collect(),
            direction,
            start_node,
            outs: mats.iter().map(|_| Mutex::new(None)).collect(),
        };
        self.shared.queue.reset_chunked(mats.len(), 1);
        {
            let mut slot = self.shared.job.lock().unwrap();
            slot.a = std::ptr::null();
            slot.batch = &job;
        }
        {
            let mut st = self.shared.lock_gate();
            self.shared.bump_epoch(&mut st);
            st.job = JobKind::Batch;
            st.done = 0;
            self.shared.gate.start.notify_all();
        }
        // The coordinator steals whole orderings too — it would otherwise
        // idle for the entire batch. Its own panic must still wait for the
        // workers to drain before unwinding (they hold pointers into this
        // frame), hence the catch/rethrow.
        let batch_ws = &mut self.batch_ws;
        let mine = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            while let Some(range) = self.shared.queue.claim() {
                for i in range {
                    let a = unsafe { &*job.mats[i] };
                    let result = order_serial_cm(a, batch_ws, direction, start_node);
                    *job.outs[i].lock().unwrap() = Some(result);
                }
            }
        }));
        let workers_panic = {
            let mut st = self.shared.lock_gate();
            while st.done < self.config.nthreads {
                st = self
                    .shared
                    .gate
                    .finished
                    .wait(st)
                    .unwrap_or_else(|poison| poison.into_inner());
            }
            st.panic.take()
        };
        self.shared.job.lock().unwrap().batch = std::ptr::null();
        if let Err(payload) = mine {
            std::panic::resume_unwind(payload);
        }
        if let Some(payload) = workers_panic {
            std::panic::resume_unwind(payload);
        }
        job.outs
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap()
                    .expect("every batch matrix was claimed and ordered")
            })
            .collect()
    }
}

impl Drop for RcmPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.lock_gate();
            st.shutdown = true;
            self.shared.gate.start.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// One whole sequential Cuthill-McKee ordering through a warm
/// [`SerialWorkspace`] (the batch-job body, shared by coordinator and
/// workers).
fn order_serial_cm(
    a: &CscMatrix,
    ws: &mut SerialWorkspace,
    direction: ExpandDirection,
    start_node: StartNode,
) -> (Permutation, DriverStats) {
    let mut rt = SerialBackend::warm(a, std::mem::take(ws));
    let stats = drive_cm_with(&mut rt, LabelingMode::PerLevel, direction, &start_node);
    let (perm, warm) = rt.finish();
    *ws = warm;
    (perm, stats)
}

/// Per-level front end the driver sees: owns the visited/frontier state and
/// dispatches each expansion to the sequential path or the worker pool.
pub struct LevelExecutor<'s> {
    shared: &'s PoolShared,
    seq_cand: &'s mut Vec<Candidate>,
    a: &'s CscMatrix,
    degrees: &'s [Vidx],
}

impl LevelExecutor<'_> {
    /// Worker count of the owning pool.
    pub fn nthreads(&self) -> usize {
        self.shared.config.nthreads
    }

    /// The installed matrix's vertex count.
    pub fn n(&self) -> usize {
        self.a.n_rows()
    }

    /// The installed matrix's degree vector.
    pub fn degrees(&self) -> &[Vidx] {
        self.degrees
    }

    /// Mutate the unvisited-vertex bitmap and the current frontier (seed
    /// scans, root marking, labeling) — marking a vertex visited is
    /// [`VertexBitmap::remove`]. Scoped so no lock can be held across an
    /// expansion — the workers read both under the same locks.
    pub fn with_state<R>(&mut self, f: impl FnOnce(&mut VertexBitmap, &mut Vec<Vidx>) -> R) -> R {
        let mut unvisited = self.shared.unvisited.write().unwrap();
        let mut frontier = self.shared.frontier.write().unwrap();
        f(&mut unvisited, &mut frontier)
    }

    /// Chunks claimed per worker in the most recent parallel expansion — a
    /// dynamic schedule shows uneven counts on skewed frontiers.
    pub fn last_claim_counts(&self) -> Vec<usize> {
        self.shared
            .claims
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Expand the current frontier (label of `frontier[0]` = `base_label`).
    ///
    /// On return `out` holds the deduplicated candidates (minimum parent
    /// per vertex) sorted by `(parent label, degree, vertex)`, ready for
    /// labeling. Returns `true` when the parallel pipeline ran.
    pub(crate) fn expand(&mut self, base_label: Vidx, out: &mut Vec<Candidate>) -> bool {
        out.clear();
        let config = &self.shared.config;
        let plen = self.shared.frontier.read().unwrap().len();
        if config.nthreads == 1 || plen < config.seq_cutoff.max(1) {
            self.expand_sequential(base_label, out);
            return false;
        }
        self.run_parallel_level(plen, base_label, false, out);
        true
    }

    /// Bottom-up (pull) expansion of the current frontier: scan every
    /// unvisited vertex's adjacency against the dense frontier-label array
    /// instead of expanding the frontier's columns. Produces the identical
    /// `(parent, degree, vertex)` candidate stream as [`Self::expand`].
    /// Returns `true` when the parallel pipeline ran.
    pub(crate) fn expand_pull(&mut self, base_label: Vidx, out: &mut Vec<Candidate>) -> bool {
        out.clear();
        let config = &self.shared.config;
        let n = self.a.n_rows();
        // Scatter the frontier into the dense pull-label array (the dual
        // representation's sparse → dense conversion, O(frontier)).
        {
            let frontier = self.shared.frontier.read().unwrap();
            let mut labels = self.shared.pull_labels.write().unwrap();
            for (off, &v) in frontier.iter().enumerate() {
                labels[v as usize] = base_label + off as Vidx;
            }
        }
        // The pull scan's length is the vertex range, not the frontier.
        let parallel = !(config.nthreads == 1 || n < config.seq_cutoff.max(1));
        if parallel {
            self.run_parallel_level(n, base_label, true, out);
        } else {
            self.expand_pull_sequential(out);
        }
        // Clear the scatter for the next level (only the touched entries).
        {
            let frontier = self.shared.frontier.read().unwrap();
            let mut labels = self.shared.pull_labels.write().unwrap();
            for &v in frontier.iter() {
                labels[v as usize] = Vidx::MAX;
            }
        }
        parallel
    }

    /// Post one parallel level (`queue_len` claimable items) and collect
    /// the workers' sorted segments into `out`.
    fn run_parallel_level(
        &mut self,
        queue_len: usize,
        base_label: Vidx,
        pull: bool,
        out: &mut Vec<Candidate>,
    ) {
        let config = &self.shared.config;
        // Post the level and park until the last worker reports in.
        self.shared.queue.reset_chunked(queue_len, config.chunk);
        {
            let mut st = self.shared.lock_gate();
            self.shared.bump_epoch(&mut st);
            st.job = JobKind::Level { base_label, pull };
            st.done = 0;
            self.shared.gate.start.notify_all();
            while st.done < config.nthreads {
                st = self
                    .shared
                    .gate
                    .finished
                    .wait(st)
                    .unwrap_or_else(|poison| poison.into_inner());
            }
            if let Some(payload) = st.panic.take() {
                // The workers are parked again (each caught its own
                // unwind); propagate the original panic to the caller. The
                // pool's arena locks may be poisoned now — the pool must
                // not be reused after a propagated panic.
                drop(st);
                std::panic::resume_unwind(payload);
            }
        }
        // Concatenate the workers' segments in parent-range order: the
        // global (parent, degree, vertex) ordering.
        for sorted in &self.shared.sorted {
            out.extend_from_slice(&sorted.read().unwrap());
        }
    }

    /// Single-thread path for small frontiers: emit, sort, dedup, reorder.
    fn expand_sequential(&mut self, base_label: Vidx, out: &mut Vec<Candidate>) {
        let sh = self.shared;
        let unvisited_guard = sh.unvisited.read().unwrap();
        let unvisited: &VertexBitmap = &unvisited_guard;
        let frontier_guard = sh.frontier.read().unwrap();
        let frontier: &[Vidx] = &frontier_guard;
        self.seq_cand.clear();
        for (off, &v) in frontier.iter().enumerate() {
            let parent = base_label + off as Vidx;
            for &w in self.a.col(v as usize) {
                if unvisited.contains(w) {
                    self.seq_cand.push((w, parent, self.degrees[w as usize]));
                }
            }
        }
        self.seq_cand.sort_unstable();
        let mut last: Option<Vidx> = None;
        for &c in self.seq_cand.iter() {
            if last != Some(c.0) {
                last = Some(c.0);
                out.push(c);
            }
        }
        out.sort_unstable_by_key(|&(v, parent, deg)| (parent, deg, v));
    }

    /// Single-thread pull path: walk the unvisited bitmap (fully visited
    /// 64-vertex words cost one compare) and scan each surviving row
    /// against the dense pull-label array. Each vertex is computed exactly
    /// once, so no dedup pass is needed — only the final
    /// `(parent, degree, vertex)` reorder.
    fn expand_pull_sequential(&mut self, out: &mut Vec<Candidate>) {
        let sh = self.shared;
        let unvisited_guard = sh.unvisited.read().unwrap();
        let labels_guard = sh.pull_labels.read().unwrap();
        let labels: &[Vidx] = &labels_guard;
        for v in unvisited_guard.ones() {
            let mut best = Vidx::MAX;
            for &w in self.a.col(v as usize) {
                let l = labels[w as usize];
                if l < best {
                    best = l;
                }
            }
            if best != Vidx::MAX {
                out.push((v, best, self.degrees[v as usize]));
            }
        }
        out.sort_unstable_by_key(|&(v, parent, deg)| (parent, deg, v));
    }
}

/// Worker body: park on the gate, run the posted job (one level of the
/// three-phase pipeline, or a share of a batch of whole orderings), report
/// completion, repeat until shutdown. The serial workspace for batch jobs
/// is worker-local and stays warm for the pool's lifetime.
fn worker_loop(shared: &PoolShared, tid: usize) {
    let mut hist: Vec<u32> = Vec::new();
    let mut cursors: Vec<u32> = Vec::new();
    let mut batch_ws = SerialWorkspace::new();
    let mut last_epoch = 0u64;
    loop {
        let job = {
            let mut st = shared.lock_gate();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != last_epoch {
                    last_epoch = st.epoch;
                    break st.job;
                }
                st = shared
                    .gate
                    .start
                    .wait(st)
                    .unwrap_or_else(|poison| poison.into_inner());
            }
        };
        let outcome = match job {
            JobKind::Level { base_label, pull } => run_level(
                shared,
                tid,
                base_label,
                pull,
                last_epoch,
                &mut hist,
                &mut cursors,
            ),
            JobKind::Batch => run_batch_share(shared, &mut batch_ws),
        };
        let mut st = shared.lock_gate();
        if let Err(payload) = outcome {
            st.panic.get_or_insert(payload);
        }
        st.done += 1;
        if st.done == shared.config.nthreads {
            shared.gate.finished.notify_one();
        }
    }
}

/// One worker's share of a posted batch job: claim whole matrices from the
/// queue and run the sequential pipeline on each.
fn run_batch_share(
    shared: &PoolShared,
    ws: &mut SerialWorkspace,
) -> Result<(), Box<dyn std::any::Any + Send>> {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    catch_unwind(AssertUnwindSafe(|| {
        // Safety: the batch pointer is installed by `order_cm_batch`, which
        // does not return before this worker reports done.
        let job: &BatchJob = unsafe { &*shared.job.lock().unwrap().batch };
        while let Some(range) = shared.queue.claim() {
            for i in range {
                let a = unsafe { &*job.mats[i] };
                let result = order_serial_cm(a, ws, job.direction, job.start_node);
                *job.outs[i].lock().unwrap() = Some(result);
            }
        }
    }))
}

/// One worker's share of the three-phase pipeline for one level.
///
/// Each phase body runs under `catch_unwind` with the barriers *outside*
/// the catch: a panicking worker still arrives at both barriers and still
/// reports completion, so its siblings and the coordinator never hang —
/// the first payload travels back through the gate and is re-thrown on the
/// coordinator. (Locks it held while panicking are poisoned, so the pool
/// must not be reused after a propagated panic — the unwind makes that the
/// natural outcome.)
fn run_level(
    shared: &PoolShared,
    tid: usize,
    base_label: Vidx,
    pull: bool,
    epoch: u64,
    hist: &mut Vec<u32>,
    cursors: &mut Vec<u32>,
) -> Result<(), Box<dyn std::any::Any + Send>> {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    let nw = shared.config.nthreads;
    let tag = claim_tag(epoch);
    // Safety: the matrix/degree pointers are installed by `RcmPool::run`,
    // which keeps the borrows alive until after this worker reports done.
    let (a, degrees) = {
        let job = shared.job.lock().unwrap();
        unsafe {
            (
                &*job.a,
                std::slice::from_raw_parts(job.degrees, job.degrees_len),
            )
        }
    };

    // --- Phase 1: dynamic expansion ------------------------------------
    // Push: claim frontier chunks, emit each unvisited neighbour with its
    // parent label and `fetch_min` the minimum-parent claim. Pull: claim
    // vertex-range chunks and walk the unvisited bitmap over each chunk —
    // a fully visited 64-vertex word costs one compare — scanning each
    // surviving row's adjacency against the dense frontier-label array;
    // each vertex is computed by exactly one worker, so no claims are
    // needed.
    let r1 = catch_unwind(AssertUnwindSafe(|| {
        let unvisited_guard = shared.unvisited.read().unwrap();
        let unvisited: &VertexBitmap = &unvisited_guard;
        let frontier_guard = shared.frontier.read().unwrap();
        let frontier: &[Vidx] = &frontier_guard;
        let labels_guard = shared.pull_labels.read().unwrap();
        let labels: &[Vidx] = &labels_guard;
        let best_guard = shared.best.read().unwrap();
        let best: &[AtomicU64] = &best_guard;
        let mut cand = shared.cands[tid].write().unwrap();
        cand.clear();
        let mut claimed = 0usize;
        while let Some(range) = shared.queue.claim() {
            claimed += 1;
            if pull {
                for v in unvisited.ones_in(range) {
                    let mut min_label = Vidx::MAX;
                    for &w in a.col(v as usize) {
                        let l = labels[w as usize];
                        if l < min_label {
                            min_label = l;
                        }
                    }
                    if min_label != Vidx::MAX {
                        cand.push((v, min_label, degrees[v as usize]));
                    }
                }
            } else {
                for off in range {
                    let parent = base_label + off as Vidx;
                    for &w in a.col(frontier[off] as usize) {
                        if unvisited.contains(w) {
                            cand.push((w, parent, degrees[w as usize]));
                            best[w as usize].fetch_min(tag | parent as u64, Ordering::Relaxed);
                        }
                    }
                }
            }
        }
        shared.claims[tid].store(claimed, Ordering::Relaxed);
    }));
    shared.barrier.wait();

    // --- Phase 2: merge/dedup (claim-array filter) + routing -----------
    let r2 = if r1.is_ok() {
        catch_unwind(AssertUnwindSafe(|| {
            // Push: each (vertex, parent) pair was emitted by exactly one
            // worker, so keeping the pairs whose claim survived yields the
            // unique minimum-parent set with no cross-worker comparison at
            // all. Pull: candidates are already unique minima — routing
            // only. Routing is a two-pass counting sort into the flat
            // outbox (count survivors per destination, prefix-sum,
            // scatter) instead of per-destination `Vec` pushes; within a
            // destination segment the scatter preserves candidate order,
            // so the stream each owner receives is unchanged.
            let plen = shared.frontier.read().unwrap().len();
            let best_guard = shared.best.read().unwrap();
            let best: &[AtomicU64] = &best_guard;
            let cand = shared.cands[tid].read().unwrap();
            let survives = |c: &Candidate| {
                pull || best[c.0 as usize].load(Ordering::Relaxed) == tag | c.1 as u64
            };
            let mut route = shared.routes[tid].write().unwrap();
            let rb = &mut *route;
            rb.offs.clear();
            rb.offs.resize(nw + 1, 0);
            for c in cand.iter() {
                if survives(c) {
                    rb.offs[bucket_owner((c.1 - base_label) as usize, plen, nw) + 1] += 1;
                }
            }
            for k in 1..=nw {
                rb.offs[k] += rb.offs[k - 1];
            }
            rb.buf.clear();
            rb.buf.resize(rb.offs[nw] as usize, (0, 0, 0));
            // Scatter, advancing offs[k] in place; shift back afterwards so
            // offs[k]..offs[k + 1] is destination k's segment again.
            for &c in cand.iter() {
                if survives(&c) {
                    let k = bucket_owner((c.1 - base_label) as usize, plen, nw);
                    rb.buf[rb.offs[k] as usize] = c;
                    rb.offs[k] += 1;
                }
            }
            for k in (1..=nw).rev() {
                rb.offs[k] = rb.offs[k - 1];
            }
            rb.offs[0] = 0;
        }))
    } else {
        Ok(())
    };
    shared.barrier.wait();

    // --- Phase 3: streaming bucket sort over this worker's parent range -
    let r3 = if r1.is_ok() && r2.is_ok() {
        catch_unwind(AssertUnwindSafe(|| {
            let plen = shared.frontier.read().unwrap().len();
            let routes: Vec<_> = shared.routes.iter().map(|r| r.read().unwrap()).collect();
            fn inbox(rb: &RouteBox, tid: usize) -> &[Candidate] {
                &rb.buf[rb.offs[tid] as usize..rb.offs[tid + 1] as usize]
            }
            let mut sorted = shared.sorted[tid].write().unwrap();
            let range = bucket_range(tid, plen, nw);
            let width = range.len();
            hist.clear();
            hist.resize(width + 1, 0);
            for rb in routes.iter() {
                for &(_, parent, _) in inbox(rb, tid) {
                    hist[(parent - base_label) as usize - range.start + 1] += 1;
                }
            }
            for b in 0..width {
                hist[b + 1] += hist[b];
            }
            sorted.clear();
            sorted.resize(hist[width] as usize, (0, 0, 0));
            cursors.clear();
            cursors.extend_from_slice(&hist[..width]);
            for rb in routes.iter() {
                for &c in inbox(rb, tid) {
                    let b = (c.1 - base_label) as usize - range.start;
                    sorted[cursors[b] as usize] = c;
                    cursors[b] += 1;
                }
            }
            // Within a parent bucket the (degree, vertex) key is unique, so
            // the placement order above cannot leak into the result.
            for b in 0..width {
                let (s, e) = (hist[b] as usize, hist[b + 1] as usize);
                sorted[s..e].sort_unstable_by_key(|&(v, _, deg)| (deg, v));
            }
        }))
    } else {
        Ok(())
    };
    r1.and(r2).and(r3)
}

/// Which bucket worker owns parent offset `off` of a `plen`-wide frontier.
fn bucket_owner(off: usize, plen: usize, nworkers: usize) -> usize {
    off * nworkers / plen
}

/// The parent-offset range bucket worker `k` owns — the exact preimage of
/// [`bucket_owner`], so routing and placement always agree.
fn bucket_range(k: usize, plen: usize, nworkers: usize) -> Range<usize> {
    (k * plen).div_ceil(nworkers)..((k + 1) * plen).div_ceil(nworkers)
}

/// Thread counts to exercise in determinism tests: the `RCM_THREADS`
/// environment variable as a comma-separated list (`RCM_THREADS=1,2,8`),
/// falling back to `default`. CI sweeps this to enforce thread-count
/// independence on every PR.
pub fn thread_counts_from_env(default: &[usize]) -> Vec<usize> {
    match std::env::var("RCM_THREADS") {
        Ok(raw) => {
            let parsed: Vec<usize> = raw
                .split(',')
                .filter_map(|tok| tok.trim().parse().ok())
                .filter(|&t| t > 0)
                .collect();
            if parsed.is_empty() {
                default.to_vec()
            } else {
                parsed
            }
        }
        Err(_) => default.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcm_sparse::CooBuilder;

    #[test]
    fn chunk_queue_covers_every_item_once() {
        let q = ChunkQueue::new(103, 10);
        assert_eq!(q.nchunks(), 11);
        let mut seen = [false; 103];
        while let Some(r) = q.claim() {
            for i in r {
                assert!(!seen[i], "item {i} claimed twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        assert!(q.claim().is_none(), "exhausted queue must stay empty");
        q.reset(7);
        assert_eq!(q.claim(), Some(0..7));
        assert!(q.claim().is_none());
    }

    #[test]
    fn chunk_queue_regrains_for_batch_jobs() {
        let q = ChunkQueue::new(100, 10);
        q.reset_chunked(3, 1);
        assert_eq!(q.nchunks(), 3);
        assert_eq!(q.claim(), Some(0..1));
        assert_eq!(q.claim(), Some(1..2));
        assert_eq!(q.claim(), Some(2..3));
        assert!(q.claim().is_none());
        q.reset_chunked(20, 10);
        assert_eq!(q.claim(), Some(0..10));
    }

    #[test]
    fn chunk_queue_concurrent_claims_are_disjoint() {
        let q = ChunkQueue::new(10_000, 7);
        let counts: Vec<usize> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(|| {
                        let mut n = 0usize;
                        while let Some(r) = q.claim() {
                            n += r.len();
                        }
                        n
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(counts.iter().sum::<usize>(), 10_000);
    }

    #[test]
    fn bucket_owner_matches_bucket_range() {
        for (plen, nw) in [(1usize, 4usize), (5, 4), (256, 3), (1000, 16), (17, 17)] {
            let mut covered = 0usize;
            for k in 0..nw {
                for off in bucket_range(k, plen, nw) {
                    assert_eq!(bucket_owner(off, plen, nw), k, "plen={plen} nw={nw}");
                    covered += 1;
                }
            }
            assert_eq!(covered, plen, "ranges must partition plen={plen}");
        }
    }

    /// Run one expansion over `frontier` with the given pool and return
    /// the candidate list plus whether the parallel path ran.
    fn expand_once(
        pool: &mut RcmPool,
        a: &CscMatrix,
        degrees: &[Vidx],
        frontier: &[Vidx],
        base_label: Vidx,
    ) -> (Vec<Candidate>, bool) {
        pool.run(a, degrees, |exec, _ws| {
            exec.with_state(|unvisited, f| {
                for &v in frontier {
                    unvisited.remove(v);
                }
                f.extend_from_slice(frontier);
            });
            let mut out = Vec::new();
            let parallel = exec.expand(base_label, &mut out);
            (out, parallel)
        })
    }

    #[test]
    fn parallel_pipeline_matches_sequential_expansion() {
        // Dense-ish deterministic graph: one fat frontier, many duplicate
        // candidates crossing worker boundaries.
        let n = 900usize;
        let mut b = CooBuilder::new(n, n);
        for v in 0..n {
            for s in [1usize, 7, 31, 113] {
                let w = (v + s) % n;
                if w != v {
                    b.push_sym(v as Vidx, w as Vidx);
                }
            }
        }
        let a = b.build();
        let degrees = a.degrees();
        let frontier: Vec<Vidx> = (0..300).map(|i| (i * 3) as Vidx).collect();

        let mut seq_pool = RcmPool::new(PoolConfig::new(1));
        let (expect, par) = expand_once(&mut seq_pool, &a, &degrees, &frontier, 40);
        assert!(!par);
        assert!(!expect.is_empty());

        for nthreads in [2usize, 3, 8] {
            let mut pool = RcmPool::new(PoolConfig {
                nthreads,
                seq_cutoff: 1, // force the parallel path
                chunk: 16,
            });
            let (got, par) = expand_once(&mut pool, &a, &degrees, &frontier, 40);
            assert!(par);
            assert_eq!(got, expect, "{nthreads} threads diverged");
        }
    }

    #[test]
    fn persistent_workers_survive_many_runs() {
        // The same pool executes parallel levels across repeated runs —
        // the workers are spawned once at construction and reused.
        let n = 600usize;
        let mut b = CooBuilder::new(n, n);
        for v in 0..n {
            for s in [1usize, 13, 57] {
                let w = (v + s) % n;
                if w != v {
                    b.push_sym(v as Vidx, w as Vidx);
                }
            }
        }
        let a = b.build();
        let degrees = a.degrees();
        let frontier: Vec<Vidx> = (0..200).map(|i| (i * 2) as Vidx).collect();
        let mut pool = RcmPool::new(PoolConfig {
            nthreads: 3,
            seq_cutoff: 1,
            chunk: 8,
        });
        let (expect, par) = expand_once(&mut pool, &a, &degrees, &frontier, 10);
        assert!(par);
        for round in 0..5 {
            let (got, par) = expand_once(&mut pool, &a, &degrees, &frontier, 10);
            assert!(par);
            assert_eq!(got, expect, "round {round} diverged on the warm pool");
        }
    }

    #[test]
    fn claim_tags_survive_the_epoch_wraparound() {
        // The claim-tag space is 32 bits wide; a pool that lives past 2³²
        // posted jobs must recycle it. The hardest case: the level at
        // epoch u32::MAX writes tag-0 entries (the complement of the
        // epoch) into the claim array — the smallest possible tags, which
        // would win every future `fetch_min` — and the very next level
        // wraps. Without the recycling clear, the post-wrap filter would
        // reject every candidate and drop vertices from the frontier.
        let n = 900usize;
        let mut b = CooBuilder::new(n, n);
        for v in 0..n {
            for s in [1usize, 7, 31] {
                let w = (v + s) % n;
                if w != v {
                    b.push_sym(v as Vidx, w as Vidx);
                }
            }
        }
        let a = b.build();
        let degrees = a.degrees();
        let frontier: Vec<Vidx> = (0..300).map(|i| (i * 3) as Vidx).collect();
        let mut seq_pool = RcmPool::new(PoolConfig::new(1));
        let (expect, _) = expand_once(&mut seq_pool, &a, &degrees, &frontier, 40);
        let mut pool = RcmPool::new(PoolConfig {
            nthreads: 3,
            seq_cutoff: 1,
            chunk: 16,
        });
        pool.set_epoch_for_test(u32::MAX as u64 - 1);
        for round in 0..4 {
            // Rounds post epochs MAX, then wrap → 1, 2, 3.
            let (got, par) = expand_once(&mut pool, &a, &degrees, &frontier, 40);
            assert!(par);
            assert_eq!(got, expect, "round {round} diverged across the wrap");
        }
    }

    #[test]
    fn claim_counts_cover_the_queue() {
        let n = 2000usize;
        let mut b = CooBuilder::new(n, n);
        for v in 0..n - 1 {
            b.push_sym(v as Vidx, (v + 1) as Vidx);
        }
        let a = b.build();
        let degrees = a.degrees();
        let frontier: Vec<Vidx> = (0..1000).map(|i| (i * 2) as Vidx).collect();
        let mut pool = RcmPool::new(PoolConfig {
            nthreads: 4,
            seq_cutoff: 1,
            chunk: 16,
        });
        pool.run(&a, &degrees, |exec, _ws| {
            exec.with_state(|unvisited, f| {
                for &v in &frontier {
                    unvisited.remove(v);
                }
                f.extend_from_slice(&frontier);
            });
            let mut out = Vec::new();
            assert!(exec.expand(0, &mut out));
            assert_eq!(
                exec.last_claim_counts().iter().sum::<usize>(),
                frontier.len().div_ceil(16),
                "workers must claim every chunk exactly once"
            );
        });
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn worker_panic_propagates_instead_of_hanging() {
        // A too-short degree slice makes a worker panic mid-expansion; the
        // panic must surface on the caller promptly (previously the
        // siblings deadlocked on the barrier and the test would hang).
        let n = 800usize;
        let mut b = CooBuilder::new(n, n);
        for v in 0..n - 1 {
            b.push_sym(v as Vidx, (v + 1) as Vidx);
        }
        let a = b.build();
        let degrees = a.degrees();
        // Even vertices in the frontier → odd neighbours become candidates,
        // whose degree lookups overrun the truncated slice.
        let frontier: Vec<Vidx> = (0..400).map(|i| (i * 2) as Vidx).collect();
        let mut pool = RcmPool::new(PoolConfig {
            nthreads: 3,
            seq_cutoff: 1,
            chunk: 16,
        });
        let short = &degrees[..1];
        let _ = expand_once(&mut pool, &a, short, &frontier, 0);
    }

    use crate::testutil::scrambled_grid;

    #[test]
    fn batch_orderings_match_single_shot_at_every_thread_count() {
        let mats: Vec<CscMatrix> = vec![
            scrambled_grid(9, 7),
            scrambled_grid(12, 5),
            CscMatrix::empty(0),
            CscMatrix::empty(1),
            scrambled_grid(7, 3),
            {
                // Star: one fat level.
                let mut b = CooBuilder::new(50, 50);
                for v in 1..50 {
                    b.push_sym(0, v as Vidx);
                }
                b.build()
            },
            scrambled_grid(11, 13),
        ];
        let refs: Vec<&CscMatrix> = mats.iter().collect();
        let expect: Vec<Permutation> = mats
            .iter()
            .map(|a| crate::serial::cuthill_mckee(a).0)
            .collect();
        for nthreads in [1usize, 2, 3, 8] {
            let mut pool = RcmPool::new(PoolConfig::new(nthreads));
            // Two rounds through the same warm pool: batch state must not
            // leak between batches.
            for round in 0..2 {
                let got = pool.order_cm_batch(&refs, ExpandDirection::Push, StartNode::GeorgeLiu);
                assert_eq!(got.len(), mats.len());
                for (i, (perm, stats)) in got.iter().enumerate() {
                    assert_eq!(
                        perm, &expect[i],
                        "matrix {i} diverged at {nthreads} threads (round {round})"
                    );
                    assert_eq!(perm.len(), mats[i].n_rows());
                    if mats[i].n_rows() > 1 {
                        assert!(stats.components > 0);
                    }
                }
            }
        }
    }

    #[test]
    fn growth_events_stay_flat_on_not_larger_matrices() {
        let big = scrambled_grid(20, 13);
        let small = scrambled_grid(8, 3);
        let mut pool = RcmPool::new(PoolConfig::new(3));
        let degrees_big = big.degrees();
        let degrees_small = small.degrees();
        pool.run(&big, &degrees_big, |_, _| ());
        let warm = pool.growth_events();
        assert!(warm > 0, "first install must grow");
        for _ in 0..3 {
            pool.run(&small, &degrees_small, |_, _| ());
            pool.run(&big, &degrees_big, |_, _| ());
        }
        assert_eq!(
            pool.growth_events(),
            warm,
            "re-installing not-larger matrices must not grow"
        );
        let bigger = scrambled_grid(25, 7);
        let degrees_bigger = bigger.degrees();
        pool.run(&bigger, &degrees_bigger, |_, _| ());
        assert!(pool.growth_events() > warm, "a larger matrix must grow");
    }

    #[test]
    fn thread_counts_env_parsing() {
        // The env var is CI-controlled; mutating it here would race other
        // tests, so assert the branch that applies.
        match std::env::var("RCM_THREADS") {
            Ok(_) => assert!(!thread_counts_from_env(&[1, 4]).is_empty()),
            Err(_) => assert_eq!(thread_counts_from_env(&[1, 4]), vec![1, 4]),
        }
    }
}
