//! Work-stealing shared-memory execution backend for the level-synchronous
//! RCM of [`crate::shared`].
//!
//! The previous backend split each frontier statically into `nthreads`
//! contiguous chunks and spawned fresh OS threads *per level*, so one heavy
//! chunk (a few high-degree vertices) held the whole level hostage and the
//! spawn overhead swamped thin levels — scaling plateaued past ~4 threads.
//! This module replaces it with a pool of persistent workers (spawned once
//! per ordering, parked on a condvar gate between levels) and a dynamic
//! three-phase pipeline per parallel level:
//!
//! 1. **Expansion** — workers claim fixed-size frontier chunks from a
//!    [`ChunkQueue`] (one atomic claim counter; a thread that finishes its
//!    chunk immediately steals the next one), emit
//!    `(vertex, parent label, degree)` candidates into their own reusable
//!    arena buffer, and `fetch_min` the epoch-tagged parent label into a
//!    shared per-vertex claim array.
//! 2. **Merge/dedup** — after a barrier, each worker filters its own
//!    candidates: `(w, p)` survives iff the claim array still holds `p`
//!    for `w`. Because `min` is commutative and every `(w, p)` pair is
//!    emitted exactly once, the surviving set is the minimum-parent set of
//!    the `(select2nd, min)` semiring regardless of interleaving — a
//!    merge/dedup with no comparison sort and no serial bottleneck.
//!    Survivors are routed to the worker owning their *parent* range,
//!    mirroring the AllToAll of the paper's distributed bucket `SORTPERM`
//!    (§IV-B).
//! 3. **Bucket sort** — parent labels of a frontier are contiguous (they
//!    were assigned consecutively last level), so each worker places its
//!    received tuples into per-parent buckets by streaming (linear work, no
//!    comparison sort across buckets) and sorts each bucket by
//!    `(degree, vertex)`. Concatenating the workers' segments in parent
//!    order yields the `(parent label, degree, vertex)` ordering.
//!
//! Every phase is deterministic: the claim array converges to the same
//! minima under any interleaving, and within a parent bucket the
//! `(degree, vertex)` key is unique, so the result is bit-identical to the
//! sequential algorithm for *any* thread count, chunk size, or claim
//! interleaving. All scratch buffers are owned by the [`RcmPool`] and
//! reused across levels, components, and even matrices — steady-state
//! levels allocate nothing.
//!
//! **Pull levels.** The direction-optimizing driver can run a level
//! bottom-up instead: the coordinator scatters the frontier into a dense
//! per-vertex parent-label array (`Vidx::MAX` = not in frontier), and the
//! expansion phase claims chunks of the *vertex range* `0..n` — each worker
//! scans its unvisited rows' adjacencies and takes the minimum frontier
//! label directly. Because every row is computed by exactly one worker,
//! pull needs **no atomic dedup at all** (the `fetch_min` claim array sits
//! idle); the merge phase routes candidates to their parent-range owners
//! unchanged and the bucket sort is shared verbatim, so a pull level yields
//! the byte-identical `(parent, degree, vertex)` stream a push level would.
//!
//! Synchronization per parallel level: one condvar broadcast to release the
//! workers, two [`Barrier`] waits between phases, one condvar signal back
//! to the coordinator. Levels below [`PoolConfig::seq_cutoff`] never touch
//! the workers.

use rcm_sparse::{CscMatrix, Vidx};
use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Barrier, Condvar, Mutex, RwLock};

/// Frontier size below which a level is expanded on the calling thread.
///
/// Releasing and re-parking the worker pool costs a few microseconds per
/// level; below this many frontier vertices the sequential path wins. This
/// is the cutover the old backend hard-coded at 256 inside `expand_level`;
/// it is now a field of [`PoolConfig`] (`seq_cutoff`) so benchmarks can
/// sweep it.
pub const DEFAULT_SEQ_CUTOFF: usize = 256;

/// Default work-stealing claim granularity (frontier vertices per chunk).
///
/// Small enough that a straggler chunk cannot dominate a level, large
/// enough that the atomic claim counter stays off the profile.
pub const DEFAULT_CHUNK: usize = 64;

/// Configuration of the shared-memory execution backend.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolConfig {
    /// Worker threads (also the fan-out of the merge and bucket phases).
    pub nthreads: usize,
    /// Frontiers smaller than this are expanded sequentially
    /// ([`DEFAULT_SEQ_CUTOFF`]).
    pub seq_cutoff: usize,
    /// Frontier vertices per work-stealing claim ([`DEFAULT_CHUNK`]).
    pub chunk: usize,
}

impl PoolConfig {
    /// Default configuration for `nthreads` workers.
    pub fn new(nthreads: usize) -> Self {
        PoolConfig {
            nthreads: nthreads.max(1),
            seq_cutoff: DEFAULT_SEQ_CUTOFF,
            chunk: DEFAULT_CHUNK,
        }
    }
}

/// A chunked work queue with a single atomic claim counter.
///
/// `len` items are divided into `⌈len/chunk⌉` contiguous chunks; workers
/// call [`ChunkQueue::claim`] until it returns `None`. A fast worker simply
/// claims (steals) more chunks than a slow one — there is no static
/// assignment to rebalance. [`ChunkQueue::reset`] re-arms the queue for the
/// next level.
pub struct ChunkQueue {
    next: AtomicUsize,
    len: AtomicUsize,
    chunk: usize,
}

impl ChunkQueue {
    /// Queue over `len` items in `chunk`-sized claims.
    pub fn new(len: usize, chunk: usize) -> Self {
        ChunkQueue {
            next: AtomicUsize::new(0),
            len: AtomicUsize::new(len),
            chunk: chunk.max(1),
        }
    }

    /// Re-arm the queue for a new batch of `len` items.
    pub fn reset(&self, len: usize) {
        self.len.store(len, Ordering::Relaxed);
        self.next.store(0, Ordering::Release);
    }

    /// Claim the next unprocessed chunk, or `None` when the queue is empty.
    pub fn claim(&self) -> Option<Range<usize>> {
        let c = self.next.fetch_add(1, Ordering::Relaxed);
        let start = c.checked_mul(self.chunk)?;
        let len = self.len.load(Ordering::Relaxed);
        if start >= len {
            return None;
        }
        Some(start..(start + self.chunk).min(len))
    }

    /// Total number of chunks the queue hands out per batch.
    pub fn nchunks(&self) -> usize {
        self.len.load(Ordering::Relaxed).div_ceil(self.chunk)
    }
}

/// Candidate emitted during frontier expansion:
/// `(vertex, parent label, degree)` — lexicographic order groups duplicates
/// of a vertex with the minimum parent label first.
pub(crate) type Candidate = (Vidx, Vidx, Vidx);

/// Claim-array tag of a level: high 32 bits hold the *complement* of the
/// level epoch, so newer levels always `fetch_min` below stale entries and
/// the array needs no clearing between levels; the low 32 bits hold the
/// parent label, so within a level the minimum parent wins.
fn claim_tag(epoch: u64) -> u64 {
    debug_assert!(epoch > 0 && epoch <= u32::MAX as u64, "epoch out of range");
    ((!(epoch as u32)) as u64) << 32
}

/// Coordinator→worker task descriptor plus the completion count.
struct GateState {
    /// Bumped once per posted level; workers run when it changes.
    epoch: u64,
    /// Label of `frontier[0]` for the posted level.
    base_label: Vidx,
    /// Posted level runs the bottom-up (pull) expansion phase.
    pull: bool,
    /// Workers exit their loop when set.
    shutdown: bool,
    /// Workers done with the current level.
    done: usize,
    /// First worker panic of the level, re-thrown by the coordinator (a
    /// panicking worker must not leave its siblings stuck on the barrier).
    panic: Option<Box<dyn std::any::Any + Send>>,
}

/// Condvar gate parking the workers between levels.
struct Gate {
    state: Mutex<GateState>,
    start: Condvar,
    finished: Condvar,
}

/// Everything the workers share for the duration of one [`RcmPool::run`].
///
/// The `RwLock`s are phase-disciplined: writers and readers of the same
/// buffer are always separated by a barrier or by the gate, so every lock
/// acquisition is uncontended — they exist to keep the code in safe Rust,
/// not to arbitrate races.
struct RunShared<'e> {
    a: &'e CscMatrix,
    degrees: &'e [Vidx],
    visited: &'e RwLock<Vec<bool>>,
    frontier: &'e RwLock<Vec<Vidx>>,
    /// Dense frontier for pull levels: `pull_labels[v]` = parent label of
    /// frontier vertex `v`, `Vidx::MAX` otherwise.
    pull_labels: &'e RwLock<Vec<Vidx>>,
    cands: &'e [RwLock<Vec<Candidate>>],
    routes: &'e [RwLock<Vec<Vec<Candidate>>>],
    sorted: &'e [RwLock<Vec<Candidate>>],
    claims: &'e [AtomicUsize],
    /// Per-vertex epoch-tagged minimum-parent claims (see [`claim_tag`];
    /// push levels only — pull computes each vertex exactly once).
    best: &'e [AtomicU64],
    queue: ChunkQueue,
    barrier: Barrier,
    gate: Gate,
    config: PoolConfig,
}

/// The work-stealing pool: configuration plus the per-worker buffer sets,
/// which persist across [`RcmPool::run`] calls so repeated orderings reuse
/// their high-water-mark capacity.
pub struct RcmPool {
    config: PoolConfig,
    visited: RwLock<Vec<bool>>,
    frontier: RwLock<Vec<Vidx>>,
    pull_labels: RwLock<Vec<Vidx>>,
    cands: Vec<RwLock<Vec<Candidate>>>,
    routes: Vec<RwLock<Vec<Vec<Candidate>>>>,
    sorted: Vec<RwLock<Vec<Candidate>>>,
    claims: Vec<AtomicUsize>,
    best: Vec<AtomicU64>,
    /// Sequential-path scratch (coordinator-local).
    seq_cand: Vec<Candidate>,
}

impl RcmPool {
    /// Pool with `config.nthreads` workers and empty arenas.
    pub fn new(config: PoolConfig) -> Self {
        let nthreads = config.nthreads.max(1);
        let config = PoolConfig { nthreads, ..config };
        RcmPool {
            config,
            visited: RwLock::new(Vec::new()),
            frontier: RwLock::new(Vec::new()),
            pull_labels: RwLock::new(Vec::new()),
            cands: (0..nthreads).map(|_| RwLock::new(Vec::new())).collect(),
            routes: (0..nthreads)
                .map(|_| RwLock::new(vec![Vec::new(); nthreads]))
                .collect(),
            sorted: (0..nthreads).map(|_| RwLock::new(Vec::new())).collect(),
            claims: (0..nthreads).map(|_| AtomicUsize::new(0)).collect(),
            best: Vec::new(),
            seq_cand: Vec::new(),
        }
    }

    /// Configured worker count.
    pub fn nthreads(&self) -> usize {
        self.config.nthreads
    }

    /// The active configuration.
    pub fn config(&self) -> &PoolConfig {
        &self.config
    }

    /// Spawn the workers (scoped — joined before `run` returns), hand the
    /// driver a [`LevelExecutor`], and run it. `degrees[v]` must be the
    /// degree of vertex `v` of `a`. The executor's visited set starts all
    /// false and its frontier empty.
    pub fn run<R>(
        &mut self,
        a: &CscMatrix,
        degrees: &[Vidx],
        driver: impl FnOnce(&mut LevelExecutor<'_, '_>) -> R,
    ) -> R {
        let nthreads = self.config.nthreads;
        {
            let mut visited = self.visited.write().unwrap();
            visited.clear();
            visited.resize(a.n_rows(), false);
            self.frontier.write().unwrap().clear();
            let mut pull_labels = self.pull_labels.write().unwrap();
            pull_labels.clear();
            pull_labels.resize(a.n_rows(), Vidx::MAX);
        }
        // Invalidate claim-array entries from any previous run (epochs
        // restart at zero each run).
        if self.best.len() < a.n_rows() {
            self.best
                .resize_with(a.n_rows(), || AtomicU64::new(u64::MAX));
        }
        for b in &self.best[..a.n_rows()] {
            b.store(u64::MAX, Ordering::Relaxed);
        }
        let shared = RunShared {
            a,
            degrees,
            visited: &self.visited,
            frontier: &self.frontier,
            pull_labels: &self.pull_labels,
            cands: &self.cands,
            routes: &self.routes,
            sorted: &self.sorted,
            claims: &self.claims,
            best: &self.best,
            queue: ChunkQueue::new(0, self.config.chunk),
            barrier: Barrier::new(nthreads),
            gate: Gate {
                state: Mutex::new(GateState {
                    epoch: 0,
                    base_label: 0,
                    pull: false,
                    shutdown: false,
                    done: 0,
                    panic: None,
                }),
                start: Condvar::new(),
                finished: Condvar::new(),
            },
            config: self.config,
        };
        let seq_cand = &mut self.seq_cand;
        if nthreads == 1 {
            let mut exec = LevelExecutor {
                shared: &shared,
                seq_cand,
            };
            return driver(&mut exec);
        }
        std::thread::scope(|scope| {
            for tid in 0..nthreads {
                let shared = &shared;
                scope.spawn(move || worker_loop(shared, tid));
            }
            let mut exec = LevelExecutor {
                shared: &shared,
                seq_cand,
            };
            let result = driver(&mut exec);
            let mut st = shared.gate.state.lock().unwrap();
            st.shutdown = true;
            shared.gate.start.notify_all();
            drop(st);
            result
        })
    }
}

/// Per-level front end the driver sees: owns the visited/frontier state and
/// dispatches each expansion to the sequential path or the worker pool.
pub struct LevelExecutor<'s, 'e> {
    shared: &'s RunShared<'e>,
    seq_cand: &'s mut Vec<Candidate>,
}

impl LevelExecutor<'_, '_> {
    /// Worker count of the owning pool.
    pub fn nthreads(&self) -> usize {
        self.shared.config.nthreads
    }

    /// Mutate the visited set and the current frontier (seed scans, root
    /// marking, labeling). Scoped so no lock can be held across an
    /// expansion — the workers read both under the same locks.
    pub fn with_state<R>(&mut self, f: impl FnOnce(&mut Vec<bool>, &mut Vec<Vidx>) -> R) -> R {
        let mut visited = self.shared.visited.write().unwrap();
        let mut frontier = self.shared.frontier.write().unwrap();
        f(&mut visited, &mut frontier)
    }

    /// Chunks claimed per worker in the most recent parallel expansion — a
    /// dynamic schedule shows uneven counts on skewed frontiers.
    pub fn last_claim_counts(&self) -> Vec<usize> {
        self.shared
            .claims
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Expand the current frontier (label of `frontier[0]` = `base_label`).
    ///
    /// On return `out` holds the deduplicated candidates (minimum parent
    /// per vertex) sorted by `(parent label, degree, vertex)`, ready for
    /// labeling. Returns `true` when the parallel pipeline ran.
    pub(crate) fn expand(&mut self, base_label: Vidx, out: &mut Vec<Candidate>) -> bool {
        out.clear();
        let config = &self.shared.config;
        let plen = self.shared.frontier.read().unwrap().len();
        if config.nthreads == 1 || plen < config.seq_cutoff.max(1) {
            self.expand_sequential(base_label, out);
            return false;
        }
        self.run_parallel_level(plen, base_label, false, out);
        true
    }

    /// Bottom-up (pull) expansion of the current frontier: scan every
    /// unvisited vertex's adjacency against the dense frontier-label array
    /// instead of expanding the frontier's columns. Produces the identical
    /// `(parent, degree, vertex)` candidate stream as [`Self::expand`].
    /// Returns `true` when the parallel pipeline ran.
    pub(crate) fn expand_pull(&mut self, base_label: Vidx, out: &mut Vec<Candidate>) -> bool {
        out.clear();
        let config = &self.shared.config;
        let n = self.shared.a.n_rows();
        // Scatter the frontier into the dense pull-label array (the dual
        // representation's sparse → dense conversion, O(frontier)).
        {
            let frontier = self.shared.frontier.read().unwrap();
            let mut labels = self.shared.pull_labels.write().unwrap();
            for (off, &v) in frontier.iter().enumerate() {
                labels[v as usize] = base_label + off as Vidx;
            }
        }
        // The pull scan's length is the vertex range, not the frontier.
        let parallel = !(config.nthreads == 1 || n < config.seq_cutoff.max(1));
        if parallel {
            self.run_parallel_level(n, base_label, true, out);
        } else {
            self.expand_pull_sequential(out);
        }
        // Clear the scatter for the next level (only the touched entries).
        {
            let frontier = self.shared.frontier.read().unwrap();
            let mut labels = self.shared.pull_labels.write().unwrap();
            for &v in frontier.iter() {
                labels[v as usize] = Vidx::MAX;
            }
        }
        parallel
    }

    /// Post one parallel level (`queue_len` claimable items) and collect
    /// the workers' sorted segments into `out`.
    fn run_parallel_level(
        &mut self,
        queue_len: usize,
        base_label: Vidx,
        pull: bool,
        out: &mut Vec<Candidate>,
    ) {
        let config = &self.shared.config;
        // Post the level and park until the last worker reports in.
        self.shared.queue.reset(queue_len);
        {
            let mut st = self.shared.gate.state.lock().unwrap();
            st.epoch += 1;
            st.base_label = base_label;
            st.pull = pull;
            st.done = 0;
            self.shared.gate.start.notify_all();
            while st.done < config.nthreads {
                st = self.shared.gate.finished.wait(st).unwrap();
            }
            if let Some(payload) = st.panic.take() {
                // Release the workers (they are parked, not panicked — each
                // caught its own unwind) so the scope can join them, then
                // propagate the original panic to the caller.
                st.shutdown = true;
                self.shared.gate.start.notify_all();
                drop(st);
                std::panic::resume_unwind(payload);
            }
        }
        // Concatenate the workers' segments in parent-range order: the
        // global (parent, degree, vertex) ordering.
        for sorted in self.shared.sorted {
            out.extend_from_slice(&sorted.read().unwrap());
        }
    }

    /// Single-thread path for small frontiers: emit, sort, dedup, reorder.
    fn expand_sequential(&mut self, base_label: Vidx, out: &mut Vec<Candidate>) {
        let sh = self.shared;
        let visited_guard = sh.visited.read().unwrap();
        let visited: &[bool] = &visited_guard;
        let frontier_guard = sh.frontier.read().unwrap();
        let frontier: &[Vidx] = &frontier_guard;
        self.seq_cand.clear();
        for (off, &v) in frontier.iter().enumerate() {
            let parent = base_label + off as Vidx;
            for &w in sh.a.col(v as usize) {
                if !visited[w as usize] {
                    self.seq_cand.push((w, parent, sh.degrees[w as usize]));
                }
            }
        }
        self.seq_cand.sort_unstable();
        let mut last: Option<Vidx> = None;
        for &c in self.seq_cand.iter() {
            if last != Some(c.0) {
                last = Some(c.0);
                out.push(c);
            }
        }
        out.sort_unstable_by_key(|&(v, parent, deg)| (parent, deg, v));
    }

    /// Single-thread pull path: masked scan over the vertex range against
    /// the dense pull-label array. Each vertex is computed exactly once, so
    /// no dedup pass is needed — only the final `(parent, degree, vertex)`
    /// reorder.
    fn expand_pull_sequential(&mut self, out: &mut Vec<Candidate>) {
        let sh = self.shared;
        let visited_guard = sh.visited.read().unwrap();
        let visited: &[bool] = &visited_guard;
        let labels_guard = sh.pull_labels.read().unwrap();
        let labels: &[Vidx] = &labels_guard;
        for (v, &vis) in visited.iter().enumerate() {
            if vis {
                continue;
            }
            let mut best = Vidx::MAX;
            for &w in sh.a.col(v) {
                let l = labels[w as usize];
                if l < best {
                    best = l;
                }
            }
            if best != Vidx::MAX {
                out.push((v as Vidx, best, sh.degrees[v]));
            }
        }
        out.sort_unstable_by_key(|&(v, parent, deg)| (parent, deg, v));
    }
}

/// Worker body: park on the gate, run the three-phase pipeline per posted
/// level, report completion, repeat until shutdown.
fn worker_loop(shared: &RunShared<'_>, tid: usize) {
    let mut hist: Vec<u32> = Vec::new();
    let mut cursors: Vec<u32> = Vec::new();
    let mut last_epoch = 0u64;
    loop {
        let (base_label, pull) = {
            let mut st = shared.gate.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != last_epoch {
                    last_epoch = st.epoch;
                    break (st.base_label, st.pull);
                }
                st = shared.gate.start.wait(st).unwrap();
            }
        };
        let outcome = run_level(
            shared,
            tid,
            base_label,
            pull,
            last_epoch,
            &mut hist,
            &mut cursors,
        );
        let mut st = shared.gate.state.lock().unwrap();
        if let Err(payload) = outcome {
            st.panic.get_or_insert(payload);
        }
        st.done += 1;
        if st.done == shared.config.nthreads {
            shared.gate.finished.notify_one();
        }
    }
}

/// One worker's share of the three-phase pipeline for one level.
///
/// Each phase body runs under `catch_unwind` with the barriers *outside*
/// the catch: a panicking worker still arrives at both barriers and still
/// reports completion, so its siblings and the coordinator never hang —
/// the first payload travels back through the gate and is re-thrown on the
/// coordinator. (Locks it held while panicking are poisoned, so the pool
/// must not be reused after a propagated panic — the unwind makes that the
/// natural outcome.)
fn run_level(
    shared: &RunShared<'_>,
    tid: usize,
    base_label: Vidx,
    pull: bool,
    epoch: u64,
    hist: &mut Vec<u32>,
    cursors: &mut Vec<u32>,
) -> Result<(), Box<dyn std::any::Any + Send>> {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    let nw = shared.config.nthreads;
    let tag = claim_tag(epoch);

    // --- Phase 1: dynamic expansion ------------------------------------
    // Push: claim frontier chunks, emit each unvisited neighbour with its
    // parent label and `fetch_min` the minimum-parent claim. Pull: claim
    // vertex-range chunks, scan each unvisited vertex's adjacency against
    // the dense frontier-label array — each vertex is computed by exactly
    // one worker, so no claims are needed.
    let r1 = catch_unwind(AssertUnwindSafe(|| {
        let visited_guard = shared.visited.read().unwrap();
        let visited: &[bool] = &visited_guard;
        let frontier_guard = shared.frontier.read().unwrap();
        let frontier: &[Vidx] = &frontier_guard;
        let labels_guard = shared.pull_labels.read().unwrap();
        let labels: &[Vidx] = &labels_guard;
        let mut cand = shared.cands[tid].write().unwrap();
        cand.clear();
        let mut claimed = 0usize;
        while let Some(range) = shared.queue.claim() {
            claimed += 1;
            if pull {
                for v in range {
                    if visited[v] {
                        continue;
                    }
                    let mut best = Vidx::MAX;
                    for &w in shared.a.col(v) {
                        let l = labels[w as usize];
                        if l < best {
                            best = l;
                        }
                    }
                    if best != Vidx::MAX {
                        cand.push((v as Vidx, best, shared.degrees[v]));
                    }
                }
            } else {
                for off in range {
                    let parent = base_label + off as Vidx;
                    for &w in shared.a.col(frontier[off] as usize) {
                        if !visited[w as usize] {
                            cand.push((w, parent, shared.degrees[w as usize]));
                            shared.best[w as usize]
                                .fetch_min(tag | parent as u64, Ordering::Relaxed);
                        }
                    }
                }
            }
        }
        shared.claims[tid].store(claimed, Ordering::Relaxed);
    }));
    shared.barrier.wait();

    // --- Phase 2: merge/dedup (claim-array filter) + routing -----------
    let r2 = if r1.is_ok() {
        catch_unwind(AssertUnwindSafe(|| {
            // Push: each (vertex, parent) pair was emitted by exactly one
            // worker, so keeping the pairs whose claim survived yields the
            // unique minimum-parent set with no cross-worker comparison at
            // all. Pull: candidates are already unique minima — routing
            // only.
            let plen = shared.frontier.read().unwrap().len();
            let cand = shared.cands[tid].read().unwrap();
            let mut route = shared.routes[tid].write().unwrap();
            route.resize_with(nw, Vec::new);
            for outbox in route.iter_mut() {
                outbox.clear();
            }
            for &c in cand.iter() {
                if pull || shared.best[c.0 as usize].load(Ordering::Relaxed) == tag | c.1 as u64 {
                    let off = (c.1 - base_label) as usize;
                    route[bucket_owner(off, plen, nw)].push(c);
                }
            }
        }))
    } else {
        Ok(())
    };
    shared.barrier.wait();

    // --- Phase 3: streaming bucket sort over this worker's parent range -
    let r3 = if r1.is_ok() && r2.is_ok() {
        catch_unwind(AssertUnwindSafe(|| {
            let plen = shared.frontier.read().unwrap().len();
            let routes: Vec<_> = shared.routes.iter().map(|r| r.read().unwrap()).collect();
            let mut sorted = shared.sorted[tid].write().unwrap();
            let range = bucket_range(tid, plen, nw);
            let width = range.len();
            hist.clear();
            hist.resize(width + 1, 0);
            for inbox in routes.iter().map(|r| &r[tid]) {
                for &(_, parent, _) in inbox {
                    hist[(parent - base_label) as usize - range.start + 1] += 1;
                }
            }
            for b in 0..width {
                hist[b + 1] += hist[b];
            }
            sorted.clear();
            sorted.resize(hist[width] as usize, (0, 0, 0));
            cursors.clear();
            cursors.extend_from_slice(&hist[..width]);
            for inbox in routes.iter().map(|r| &r[tid]) {
                for &c in inbox {
                    let b = (c.1 - base_label) as usize - range.start;
                    sorted[cursors[b] as usize] = c;
                    cursors[b] += 1;
                }
            }
            // Within a parent bucket the (degree, vertex) key is unique, so
            // the placement order above cannot leak into the result.
            for b in 0..width {
                let (s, e) = (hist[b] as usize, hist[b + 1] as usize);
                sorted[s..e].sort_unstable_by_key(|&(v, _, deg)| (deg, v));
            }
        }))
    } else {
        Ok(())
    };
    r1.and(r2).and(r3)
}

/// Which bucket worker owns parent offset `off` of a `plen`-wide frontier.
fn bucket_owner(off: usize, plen: usize, nworkers: usize) -> usize {
    off * nworkers / plen
}

/// The parent-offset range bucket worker `k` owns — the exact preimage of
/// [`bucket_owner`], so routing and placement always agree.
fn bucket_range(k: usize, plen: usize, nworkers: usize) -> Range<usize> {
    (k * plen).div_ceil(nworkers)..((k + 1) * plen).div_ceil(nworkers)
}

/// Thread counts to exercise in determinism tests: the `RCM_THREADS`
/// environment variable as a comma-separated list (`RCM_THREADS=1,2,8`),
/// falling back to `default`. CI sweeps this to enforce thread-count
/// independence on every PR.
pub fn thread_counts_from_env(default: &[usize]) -> Vec<usize> {
    match std::env::var("RCM_THREADS") {
        Ok(raw) => {
            let parsed: Vec<usize> = raw
                .split(',')
                .filter_map(|tok| tok.trim().parse().ok())
                .filter(|&t| t > 0)
                .collect();
            if parsed.is_empty() {
                default.to_vec()
            } else {
                parsed
            }
        }
        Err(_) => default.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcm_sparse::CooBuilder;

    #[test]
    fn chunk_queue_covers_every_item_once() {
        let q = ChunkQueue::new(103, 10);
        assert_eq!(q.nchunks(), 11);
        let mut seen = [false; 103];
        while let Some(r) = q.claim() {
            for i in r {
                assert!(!seen[i], "item {i} claimed twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        assert!(q.claim().is_none(), "exhausted queue must stay empty");
        q.reset(7);
        assert_eq!(q.claim(), Some(0..7));
        assert!(q.claim().is_none());
    }

    #[test]
    fn chunk_queue_concurrent_claims_are_disjoint() {
        let q = ChunkQueue::new(10_000, 7);
        let counts: Vec<usize> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(|| {
                        let mut n = 0usize;
                        while let Some(r) = q.claim() {
                            n += r.len();
                        }
                        n
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(counts.iter().sum::<usize>(), 10_000);
    }

    #[test]
    fn bucket_owner_matches_bucket_range() {
        for (plen, nw) in [(1usize, 4usize), (5, 4), (256, 3), (1000, 16), (17, 17)] {
            let mut covered = 0usize;
            for k in 0..nw {
                for off in bucket_range(k, plen, nw) {
                    assert_eq!(bucket_owner(off, plen, nw), k, "plen={plen} nw={nw}");
                    covered += 1;
                }
            }
            assert_eq!(covered, plen, "ranges must partition plen={plen}");
        }
    }

    /// Run one expansion over `frontier` with the given pool and return
    /// the candidate list plus whether the parallel path ran.
    fn expand_once(
        pool: &mut RcmPool,
        a: &CscMatrix,
        degrees: &[Vidx],
        frontier: &[Vidx],
        base_label: Vidx,
    ) -> (Vec<Candidate>, bool) {
        pool.run(a, degrees, |exec| {
            exec.with_state(|visited, f| {
                for &v in frontier {
                    visited[v as usize] = true;
                }
                f.extend_from_slice(frontier);
            });
            let mut out = Vec::new();
            let parallel = exec.expand(base_label, &mut out);
            (out, parallel)
        })
    }

    #[test]
    fn parallel_pipeline_matches_sequential_expansion() {
        // Dense-ish deterministic graph: one fat frontier, many duplicate
        // candidates crossing worker boundaries.
        let n = 900usize;
        let mut b = CooBuilder::new(n, n);
        for v in 0..n {
            for s in [1usize, 7, 31, 113] {
                let w = (v + s) % n;
                if w != v {
                    b.push_sym(v as Vidx, w as Vidx);
                }
            }
        }
        let a = b.build();
        let degrees = a.degrees();
        let frontier: Vec<Vidx> = (0..300).map(|i| (i * 3) as Vidx).collect();

        let mut seq_pool = RcmPool::new(PoolConfig::new(1));
        let (expect, par) = expand_once(&mut seq_pool, &a, &degrees, &frontier, 40);
        assert!(!par);
        assert!(!expect.is_empty());

        for nthreads in [2usize, 3, 8] {
            let mut pool = RcmPool::new(PoolConfig {
                nthreads,
                seq_cutoff: 1, // force the parallel path
                chunk: 16,
            });
            let (got, par) = expand_once(&mut pool, &a, &degrees, &frontier, 40);
            assert!(par);
            assert_eq!(got, expect, "{nthreads} threads diverged");
        }
    }

    #[test]
    fn claim_counts_cover_the_queue() {
        let n = 2000usize;
        let mut b = CooBuilder::new(n, n);
        for v in 0..n - 1 {
            b.push_sym(v as Vidx, (v + 1) as Vidx);
        }
        let a = b.build();
        let degrees = a.degrees();
        let frontier: Vec<Vidx> = (0..1000).map(|i| (i * 2) as Vidx).collect();
        let mut pool = RcmPool::new(PoolConfig {
            nthreads: 4,
            seq_cutoff: 1,
            chunk: 16,
        });
        pool.run(&a, &degrees, |exec| {
            exec.with_state(|visited, f| {
                for &v in &frontier {
                    visited[v as usize] = true;
                }
                f.extend_from_slice(&frontier);
            });
            let mut out = Vec::new();
            assert!(exec.expand(0, &mut out));
            assert_eq!(
                exec.last_claim_counts().iter().sum::<usize>(),
                frontier.len().div_ceil(16),
                "workers must claim every chunk exactly once"
            );
        });
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn worker_panic_propagates_instead_of_hanging() {
        // A too-short degree slice makes a worker panic mid-expansion; the
        // panic must surface on the caller promptly (previously the
        // siblings deadlocked on the barrier and the test would hang).
        let n = 800usize;
        let mut b = CooBuilder::new(n, n);
        for v in 0..n - 1 {
            b.push_sym(v as Vidx, (v + 1) as Vidx);
        }
        let a = b.build();
        let degrees = a.degrees();
        // Even vertices in the frontier → odd neighbours become candidates,
        // whose degree lookups overrun the truncated slice.
        let frontier: Vec<Vidx> = (0..400).map(|i| (i * 2) as Vidx).collect();
        let mut pool = RcmPool::new(PoolConfig {
            nthreads: 3,
            seq_cutoff: 1,
            chunk: 16,
        });
        let short = &degrees[..1];
        let _ = expand_once(&mut pool, &a, short, &frontier, 0);
    }

    #[test]
    fn thread_counts_env_parsing() {
        // The env var is CI-controlled; mutating it here would race other
        // tests, so assert the branch that applies.
        match std::env::var("RCM_THREADS") {
            Ok(_) => assert!(!thread_counts_from_env(&[1, 4]).is_empty()),
            Err(_) => assert_eq!(thread_counts_from_env(&[1, 4]), vec![1, 4]),
        }
    }
}
