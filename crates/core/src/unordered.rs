//! Sequential ablation variants of RCM — the paper's §VI "immediate future
//! work involves finding alternatives to sorting (i.e. global sorting at the
//! end, or not sorting at all and sacrifice some quality)".
//!
//! * [`rcm_nosort`] — plain FIFO BFS: children are labeled in adjacency
//!   order, skipping the per-level degree sort entirely.
//! * [`rcm_globalsort`] — BFS records levels only; one global sort keyed by
//!   `(level, degree, vertex)` assigns all labels at the end.
//!
//! Distributed counterparts live in
//! [`SortMode`](crate::distributed::SortMode); the `repro -- ablation`
//! experiment compares bandwidth and simulated time across all variants.

use crate::peripheral::pseudo_peripheral_with_degrees;
use rcm_sparse::{CscMatrix, Permutation, Vidx};

/// RCM without any sorting: BFS in adjacency order (reversed at the end).
pub fn rcm_nosort(a: &CscMatrix) -> Permutation {
    assert_eq!(a.n_rows(), a.n_cols());
    let n = a.n_rows();
    let degrees = a.degrees();
    let mut visited = vec![false; n];
    let mut order: Vec<Vidx> = Vec::with_capacity(n);
    while order.len() < n {
        let seed = (0..n)
            .filter(|&v| !visited[v])
            .min_by_key(|&v| (degrees[v], v as Vidx))
            .unwrap() as Vidx;
        let root = pseudo_peripheral_with_degrees(a, seed, &degrees).vertex;
        visited[root as usize] = true;
        order.push(root);
        let mut head = order.len() - 1;
        while head < order.len() {
            let v = order[head];
            head += 1;
            for &w in a.col(v as usize) {
                if !visited[w as usize] {
                    visited[w as usize] = true;
                    order.push(w);
                }
            }
        }
    }
    Permutation::from_order(&order)
        .expect("BFS visits each vertex once")
        .reversed()
}

/// RCM with a single global sort at the end: vertices are labeled by
/// `(component, level, degree, vertex)` lexicographic order, then reversed.
pub fn rcm_globalsort(a: &CscMatrix) -> Permutation {
    assert_eq!(a.n_rows(), a.n_cols());
    let n = a.n_rows();
    let degrees = a.degrees();
    let mut level = vec![-1i64; n];
    let mut component = vec![-1i64; n];
    let mut labeled = 0usize;
    let mut comp = 0i64;
    while labeled < n {
        let seed = (0..n)
            .filter(|&v| level[v] < 0)
            .min_by_key(|&v| (degrees[v], v as Vidx))
            .unwrap() as Vidx;
        let root = pseudo_peripheral_with_degrees(a, seed, &degrees).vertex;
        // BFS recording levels.
        level[root as usize] = 0;
        component[root as usize] = comp;
        labeled += 1;
        let mut frontier = vec![root];
        let mut lvl = 0i64;
        while !frontier.is_empty() {
            lvl += 1;
            let mut next = Vec::new();
            for &v in &frontier {
                for &w in a.col(v as usize) {
                    if level[w as usize] < 0 {
                        level[w as usize] = lvl;
                        component[w as usize] = comp;
                        labeled += 1;
                        next.push(w);
                    }
                }
            }
            frontier = next;
        }
        comp += 1;
    }
    let mut keys: Vec<(i64, i64, Vidx, Vidx)> = (0..n)
        .map(|v| (component[v], level[v], degrees[v], v as Vidx))
        .collect();
    keys.sort_unstable();
    let order: Vec<Vidx> = keys.iter().map(|&(_, _, _, v)| v).collect();
    Permutation::from_order(&order)
        .expect("every vertex keyed once")
        .reversed()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::ordering_bandwidth;
    use crate::serial;
    use rcm_sparse::CooBuilder;

    use crate::testutil::scrambled_grid;

    #[test]
    fn variants_produce_valid_permutations() {
        let a = scrambled_grid(10, 17);
        assert_eq!(rcm_nosort(&a).len(), 100);
        assert_eq!(rcm_globalsort(&a).len(), 100);
    }

    #[test]
    fn variants_still_reduce_bandwidth_substantially() {
        let a = scrambled_grid(14, 41);
        let before = rcm_sparse::matrix_bandwidth(&a);
        for p in [rcm_nosort(&a), rcm_globalsort(&a)] {
            let after = ordering_bandwidth(&a, &p);
            assert!(
                after * 3 < before,
                "ablation variant failed to reduce bandwidth: {before} -> {after}"
            );
        }
    }

    #[test]
    fn full_sort_is_at_least_as_good_on_grids() {
        let a = scrambled_grid(12, 29);
        let (full, _) = serial::rcm(&a);
        let bw_full = ordering_bandwidth(&a, &full);
        let bw_nosort = ordering_bandwidth(&a, &rcm_nosort(&a));
        assert!(bw_full <= bw_nosort, "full {bw_full} vs nosort {bw_nosort}");
    }

    #[test]
    fn handles_components() {
        let mut b = CooBuilder::new(8, 8);
        b.push_sym(0, 1);
        b.push_sym(4, 5);
        b.push_sym(5, 6);
        let a = b.build();
        assert_eq!(rcm_nosort(&a).len(), 8);
        assert_eq!(rcm_globalsort(&a).len(), 8);
    }
}
