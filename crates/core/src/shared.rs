//! Shared-memory (multithreaded) level-synchronous RCM — the SpMP-style
//! baseline of Table II.
//!
//! The paper compares its distributed implementation against SpMP (Park et
//! al.), which implements the level-synchronous shared-memory RCM of
//! Karantasis et al. \[8\]. This module provides an equivalent baseline on
//! top of the work-stealing backend of [`crate::pool`]:
//!
//! * frontier expansion is claimed chunk-by-chunk from an atomic work
//!   queue, each worker emitting `(vertex, parent-label, degree)` candidates
//!   for unvisited neighbours into its reusable arena *without* claiming
//!   them (no atomics on the hot path — `visited` is only read during a
//!   level and written between levels),
//! * candidates are merged and deduplicated in parallel keeping the minimum
//!   parent label, reproducing the `(select2nd, min)` semantics, then
//! * bucket-sorted by `(parent label, degree, vertex)` in parallel
//!   (mirroring the distributed `SORTPERM`) and labeled.
//!
//! The result is *deterministic* and identical to the sequential and
//! algebraic orderings — thread count changes runtime, never the answer.
//! CI enforces this with an `RCM_THREADS` sweep (see
//! [`crate::pool::thread_counts_from_env`]).

use crate::peripheral::pseudo_peripheral_with_degrees;
use crate::pool::{LevelExecutor, PoolConfig, RcmPool};
use rcm_sparse::{CscMatrix, Permutation, Vidx};

/// Statistics of a shared-memory RCM run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SharedRcmStats {
    /// Connected components processed.
    pub components: usize,
    /// BFS sweeps in the pseudo-peripheral searches.
    pub peripheral_bfs: usize,
    /// Ordering levels traversed.
    pub levels: usize,
    /// Frontier expansions executed through the parallel pipeline,
    /// including a component's final (empty-result) expansion; the rest
    /// fell under the pool's sequential cutover
    /// ([`crate::pool::DEFAULT_SEQ_CUTOFF`]).
    pub parallel_levels: usize,
}

/// Multithreaded RCM with `nthreads` worker threads.
///
/// Produces exactly the same permutation as [`crate::serial::rcm`] and
/// [`crate::algebraic::algebraic_rcm`] for any thread count.
pub fn par_rcm(a: &CscMatrix, nthreads: usize) -> (Permutation, SharedRcmStats) {
    let (cm, stats) = par_cuthill_mckee(a, nthreads);
    (cm.reversed(), stats)
}

/// Multithreaded Cuthill-McKee (unreversed).
pub fn par_cuthill_mckee(a: &CscMatrix, nthreads: usize) -> (Permutation, SharedRcmStats) {
    let mut pool = RcmPool::new(PoolConfig::new(nthreads));
    par_cuthill_mckee_with_pool(a, &mut pool)
}

/// Multithreaded Cuthill-McKee on a caller-owned [`RcmPool`] — reuse the
/// pool across matrices to amortize arena growth (benchmark loops).
pub fn par_cuthill_mckee_with_pool(
    a: &CscMatrix,
    pool: &mut RcmPool,
) -> (Permutation, SharedRcmStats) {
    assert_eq!(a.n_rows(), a.n_cols());
    let n = a.n_rows();
    let degrees = a.degrees();
    pool.run(a, &degrees, |exec| {
        let mut order: Vec<Vidx> = Vec::with_capacity(n);
        let mut stats = SharedRcmStats::default();
        // Level output buffer, reused across levels and components.
        let mut cands = Vec::new();

        while order.len() < n {
            let seed = exec
                .with_state(|visited, _| {
                    (0..n)
                        .filter(|&v| !visited[v])
                        .min_by_key(|&v| (degrees[v], v as Vidx))
                })
                .expect("unvisited vertex exists") as Vidx;
            let (root, bfs_count) = if exec.nthreads() == 1 {
                let pp = pseudo_peripheral_with_degrees(a, seed, &degrees);
                (pp.vertex, pp.bfs_count)
            } else {
                parallel_pseudo_peripheral(exec, &degrees, seed)
            };
            stats.components += 1;
            stats.peripheral_bfs += bfs_count;

            let mut base_label = order.len() as Vidx;
            order.push(root);
            exec.with_state(|visited, frontier| {
                visited[root as usize] = true;
                frontier.clear();
                frontier.push(root);
            });
            loop {
                let parallel = exec.expand(base_label, &mut cands);
                if parallel {
                    stats.parallel_levels += 1;
                }
                if cands.is_empty() {
                    break;
                }
                stats.levels += 1;
                base_label = order.len() as Vidx;
                exec.with_state(|visited, frontier| {
                    frontier.clear();
                    for &(v, _, _) in &cands {
                        visited[v as usize] = true;
                        order.push(v);
                        frontier.push(v);
                    }
                });
            }
        }
        (
            Permutation::from_order(&order).expect("CM visits each vertex once"),
            stats,
        )
    })
}

/// George–Liu pseudo-peripheral search running its BFS sweeps through the
/// worker pool (Algorithm 2; the paper parallelizes these sweeps with the
/// same machinery as the ordering pass).
///
/// Level *sets* are interleaving-independent, and both the stopping rule
/// and the minimum-degree pick operate on sets, so the returned vertex is
/// identical to [`pseudo_peripheral_with_degrees`]. BFS visited marks are
/// undone before returning — the ordering pass owns the visited array.
fn parallel_pseudo_peripheral(
    exec: &mut LevelExecutor<'_, '_>,
    degrees: &[Vidx],
    start: Vidx,
) -> (Vidx, usize) {
    // One full BFS sweep from `r`; leaves the last nonempty level in
    // `last_level` and every visited vertex in `touched`, returns the
    // eccentricity.
    fn sweep(
        exec: &mut LevelExecutor<'_, '_>,
        r: Vidx,
        cands: &mut Vec<crate::pool::Candidate>,
        last_level: &mut Vec<Vidx>,
        touched: &mut Vec<Vidx>,
    ) -> usize {
        exec.with_state(|visited, frontier| {
            visited[r as usize] = true;
            frontier.clear();
            frontier.push(r);
        });
        touched.clear();
        touched.push(r);
        last_level.clear();
        last_level.push(r);
        let mut ecc = 0usize;
        loop {
            // BFS needs no real labels; positions from 0 keep the claim
            // filter's (vertex, parent) pairs unique.
            exec.expand(0, cands);
            if cands.is_empty() {
                break;
            }
            ecc += 1;
            exec.with_state(|visited, frontier| {
                frontier.clear();
                for &(v, _, _) in cands.iter() {
                    visited[v as usize] = true;
                    frontier.push(v);
                }
            });
            last_level.clear();
            last_level.extend(cands.iter().map(|&(v, _, _)| v));
            touched.extend_from_slice(last_level);
        }
        ecc
    }
    fn unmark(exec: &mut LevelExecutor<'_, '_>, touched: &[Vidx]) {
        exec.with_state(|visited, _| {
            for &v in touched {
                visited[v as usize] = false;
            }
        });
    }

    let mut cands = Vec::new();
    let mut last_level: Vec<Vidx> = Vec::new();
    let mut touched: Vec<Vidx> = Vec::new();
    let mut r = start;
    let mut ecc = sweep(exec, r, &mut cands, &mut last_level, &mut touched);
    let mut bfs_count = 1usize;
    loop {
        // Shrink: minimum-degree vertex of the last level (ties toward the
        // smaller id) — the same set-based pick as the serial finder.
        let v = *last_level
            .iter()
            .min_by_key(|&&w| (degrees[w as usize], w))
            .expect("last level is nonempty");
        unmark(exec, &touched);
        if v == r {
            break;
        }
        let ecc_v = sweep(exec, v, &mut cands, &mut last_level, &mut touched);
        bfs_count += 1;
        r = v;
        if ecc_v <= ecc {
            unmark(exec, &touched);
            break;
        }
        ecc = ecc_v;
    }
    (r, bfs_count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::thread_counts_from_env;
    use crate::serial;
    use rcm_sparse::CooBuilder;

    fn scrambled_grid(w: usize, stride: usize) -> CscMatrix {
        let mut b = CooBuilder::new(w * w, w * w);
        for y in 0..w {
            for x in 0..w {
                let u = (y * w + x) as Vidx;
                if x + 1 < w {
                    b.push_sym(u, u + 1);
                }
                if y + 1 < w {
                    b.push_sym(u, u + w as Vidx);
                }
            }
        }
        let n = w * w;
        let perm: Vec<Vidx> = (0..n).map(|i| ((i * stride) % n) as Vidx).collect();
        b.build()
            .permute_sym(&Permutation::from_new_of_old(perm).unwrap())
    }

    #[test]
    fn matches_serial_for_any_thread_count() {
        let a = scrambled_grid(13, 23);
        let (expect, _) = serial::rcm(&a);
        for t in thread_counts_from_env(&[1, 2, 3, 4, 8]) {
            let (got, _) = par_rcm(&a, t);
            assert_eq!(got, expect, "{t} threads diverged");
        }
    }

    /// Caterpillar: `hubs` path-connected hub vertices, each with `leaves`
    /// pendant vertices. Every interior BFS level holds `leaves + 1`
    /// vertices, safely above [`crate::pool::DEFAULT_SEQ_CUTOFF`].
    fn wide_level_graph(hubs: usize, leaves: usize) -> CscMatrix {
        let n = hubs * (leaves + 1);
        let mut b = CooBuilder::new(n, n);
        for h in 0..hubs {
            let hub = (h * (leaves + 1)) as Vidx;
            if h + 1 < hubs {
                b.push_sym(hub, hub + (leaves + 1) as Vidx);
            }
            for l in 1..=leaves {
                b.push_sym(hub, hub + l as Vidx);
            }
        }
        b.build()
    }

    #[test]
    fn matches_serial_above_the_cutover() {
        let a = wide_level_graph(10, 300);
        let (expect, _) = serial::rcm(&a);
        for t in thread_counts_from_env(&[2, 5, 8]) {
            let (got, stats) = par_rcm(&a, t);
            assert_eq!(got, expect, "{t} threads diverged");
            if t > 1 {
                assert!(
                    stats.parallel_levels > 0,
                    "{t} threads never took the parallel path"
                );
            }
        }
    }

    #[test]
    fn cutover_threshold_is_configurable() {
        // With seq_cutoff = 1 even tiny frontiers go parallel; the answer
        // must not change.
        let a = scrambled_grid(9, 7);
        let (expect, _) = serial::rcm(&a);
        let mut pool = RcmPool::new(PoolConfig {
            nthreads: 3,
            seq_cutoff: 1,
            chunk: 2,
        });
        let (got, stats) = par_cuthill_mckee_with_pool(&a, &mut pool);
        assert_eq!(got.reversed(), expect);
        // Every expansion goes parallel: one per level plus each
        // component's final empty expansion.
        assert_eq!(stats.parallel_levels, stats.levels + stats.components);
    }

    #[test]
    fn large_frontier_takes_threaded_path() {
        // A star graph has one giant level — forces the parallel branch.
        let n = 2000;
        let mut b = CooBuilder::new(n, n);
        for v in 1..n {
            b.push_sym(0, v as Vidx);
        }
        let a = b.build();
        let (p, stats) = par_rcm(&a, 4);
        assert_eq!(p.len(), n);
        assert_eq!(stats.components, 1);
        assert!(stats.parallel_levels > 0, "star level must run in parallel");
        let (expect, _) = serial::rcm(&a);
        assert_eq!(p, expect);
    }

    #[test]
    fn components_counted() {
        let mut b = CooBuilder::new(6, 6);
        b.push_sym(0, 1);
        b.push_sym(2, 3);
        let a = b.build();
        let (p, stats) = par_rcm(&a, 2);
        assert_eq!(p.len(), 6);
        assert_eq!(stats.components, 4);
    }

    #[test]
    fn duplicate_candidates_keep_min_parent() {
        // Diamond: 0-1, 0-2, 1-3, 2-3. From root 0, vertex 3 is reachable
        // from both 1 and 2; it must attach to the smaller label.
        let mut b = CooBuilder::new(4, 4);
        b.push_sym(0, 1);
        b.push_sym(0, 2);
        b.push_sym(1, 3);
        b.push_sym(2, 3);
        let a = b.build();
        let (p, _) = par_rcm(&a, 2);
        let (expect, _) = serial::rcm(&a);
        assert_eq!(p, expect);
    }

    #[test]
    fn pool_reuse_across_matrices_is_clean() {
        let mut pool = RcmPool::new(PoolConfig::new(4));
        for (w, stride) in [(20usize, 13usize), (31, 17), (12, 7)] {
            let a = scrambled_grid(w, stride);
            let (expect, _) = serial::rcm(&a);
            let (got, _) = par_cuthill_mckee_with_pool(&a, &mut pool);
            assert_eq!(got.reversed(), expect, "{w}x{w} grid diverged");
        }
    }
}
