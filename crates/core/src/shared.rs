//! Shared-memory (multithreaded) level-synchronous RCM — the SpMP-style
//! baseline of Table II.
//!
//! The paper compares its distributed implementation against SpMP (Park et
//! al.), which implements the level-synchronous shared-memory RCM of
//! Karantasis et al. \[8\]. This module provides an equivalent baseline using
//! real OS threads:
//!
//! * frontier expansion is split across threads, each emitting
//!   `(vertex, parent-label)` candidates for unvisited neighbours *without*
//!   claiming them (no atomics on the hot path — `visited` is only read
//!   during a level and written between levels),
//! * candidates are merged and deduplicated keeping the minimum parent
//!   label, reproducing the `(select2nd, min)` semantics, then
//! * sorted by `(parent label, degree, vertex)` and labeled.
//!
//! The result is *deterministic* and identical to the sequential and
//! algebraic orderings — thread count changes runtime, never the answer.

use crate::peripheral::pseudo_peripheral_with_degrees;
use rcm_sparse::{CscMatrix, Permutation, Vidx};

/// Statistics of a shared-memory RCM run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SharedRcmStats {
    /// Connected components processed.
    pub components: usize,
    /// BFS sweeps in the pseudo-peripheral searches.
    pub peripheral_bfs: usize,
    /// Ordering levels traversed.
    pub levels: usize,
}

/// Candidate entry emitted during parallel expansion:
/// `(vertex, parent label, degree)` — ordered so that sorting by the tuple
/// groups duplicates of a vertex with the minimum parent first.
type Candidate = (Vidx, Vidx, Vidx);

/// Expand one frontier level in parallel.
///
/// `frontier` holds the current level in label order; `base_label` is the
/// label of `frontier[0]`. Returns deduplicated candidates sorted by
/// `(parent label, degree, vertex)`, ready for labeling.
fn expand_level(
    a: &CscMatrix,
    degrees: &[Vidx],
    visited: &[bool],
    frontier: &[Vidx],
    base_label: Vidx,
    nthreads: usize,
) -> Vec<Candidate> {
    let nthreads = nthreads.max(1).min(frontier.len().max(1));
    let chunk = frontier.len().div_ceil(nthreads);
    let mut per_thread: Vec<Vec<Candidate>> = Vec::new();
    if nthreads == 1 || frontier.len() < 256 {
        // Not worth spawning below this size.
        let mut out = Vec::new();
        for (off, &v) in frontier.iter().enumerate() {
            let parent_label = base_label + off as Vidx;
            for &w in a.col(v as usize) {
                if !visited[w as usize] {
                    out.push((w, parent_label, degrees[w as usize]));
                }
            }
        }
        out.sort_unstable();
        per_thread.push(out);
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = frontier
                .chunks(chunk)
                .enumerate()
                .map(|(c, slice)| {
                    scope.spawn(move || {
                        let mut out: Vec<Candidate> = Vec::new();
                        let chunk_base = base_label + (c * chunk) as Vidx;
                        for (off, &v) in slice.iter().enumerate() {
                            let parent_label = chunk_base + off as Vidx;
                            for &w in a.col(v as usize) {
                                if !visited[w as usize] {
                                    out.push((w, parent_label, degrees[w as usize]));
                                }
                            }
                        }
                        // Pre-sort locally so the merge below is linear.
                        out.sort_unstable();
                        out
                    })
                })
                .collect();
            for h in handles {
                per_thread.push(h.join().expect("expansion thread panicked"));
            }
        });
    }

    // K-way merge by (vertex, parent) keeping the first (= minimum-parent)
    // occurrence of each vertex.
    let total: usize = per_thread.iter().map(Vec::len).sum();
    let mut merged: Vec<Candidate> = Vec::with_capacity(total);
    let mut cursors = vec![0usize; per_thread.len()];
    loop {
        let mut best: Option<(Candidate, usize)> = None;
        for (t, list) in per_thread.iter().enumerate() {
            if cursors[t] < list.len() {
                let cand = list[cursors[t]];
                if best.is_none_or(|(b, _)| cand < b) {
                    best = Some((cand, t));
                }
            }
        }
        match best {
            None => break,
            Some((cand, t)) => {
                cursors[t] += 1;
                match merged.last() {
                    Some(&(v, _, _)) if v == cand.0 => {} // duplicate vertex: min parent kept
                    _ => merged.push(cand),
                }
            }
        }
    }
    // Relabel order: (parent label, degree, vertex).
    merged.sort_unstable_by_key(|&(v, parent, deg)| (parent, deg, v));
    merged
}

/// Multithreaded RCM with `nthreads` worker threads.
///
/// Produces exactly the same permutation as [`crate::serial::rcm`] and
/// [`crate::algebraic::algebraic_rcm`] for any thread count.
pub fn par_rcm(a: &CscMatrix, nthreads: usize) -> (Permutation, SharedRcmStats) {
    let (cm, stats) = par_cuthill_mckee(a, nthreads);
    (cm.reversed(), stats)
}

/// Multithreaded Cuthill-McKee (unreversed).
pub fn par_cuthill_mckee(a: &CscMatrix, nthreads: usize) -> (Permutation, SharedRcmStats) {
    assert_eq!(a.n_rows(), a.n_cols());
    let n = a.n_rows();
    let degrees = a.degrees();
    let mut visited = vec![false; n];
    let mut order: Vec<Vidx> = Vec::with_capacity(n);
    let mut stats = SharedRcmStats::default();

    while order.len() < n {
        let seed = (0..n)
            .filter(|&v| !visited[v])
            .min_by_key(|&v| (degrees[v], v as Vidx))
            .expect("unvisited vertex exists") as Vidx;
        let pp = pseudo_peripheral_with_degrees(a, seed, &degrees);
        stats.components += 1;
        stats.peripheral_bfs += pp.bfs_count;

        let root = pp.vertex;
        visited[root as usize] = true;
        let mut base_label = order.len() as Vidx;
        order.push(root);
        let mut frontier = vec![root];
        while !frontier.is_empty() {
            let cands = expand_level(a, &degrees, &visited, &frontier, base_label, nthreads);
            if cands.is_empty() {
                break;
            }
            stats.levels += 1;
            base_label = order.len() as Vidx;
            let mut next = Vec::with_capacity(cands.len());
            for &(v, _, _) in &cands {
                visited[v as usize] = true;
                order.push(v);
                next.push(v);
            }
            frontier = next;
        }
    }
    (
        Permutation::from_order(&order).expect("CM visits each vertex once"),
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial;
    use rcm_sparse::CooBuilder;

    fn scrambled_grid(w: usize, stride: usize) -> CscMatrix {
        let mut b = CooBuilder::new(w * w, w * w);
        for y in 0..w {
            for x in 0..w {
                let u = (y * w + x) as Vidx;
                if x + 1 < w {
                    b.push_sym(u, u + 1);
                }
                if y + 1 < w {
                    b.push_sym(u, u + w as Vidx);
                }
            }
        }
        let n = w * w;
        let perm: Vec<Vidx> = (0..n).map(|i| ((i * stride) % n) as Vidx).collect();
        b.build()
            .permute_sym(&Permutation::from_new_of_old(perm).unwrap())
    }

    #[test]
    fn matches_serial_for_any_thread_count() {
        let a = scrambled_grid(13, 23);
        let (expect, _) = serial::rcm(&a);
        for t in [1usize, 2, 3, 4, 8] {
            let (got, _) = par_rcm(&a, t);
            assert_eq!(got, expect, "{t} threads diverged");
        }
    }

    #[test]
    fn large_frontier_takes_threaded_path() {
        // A star graph has one giant level — forces the threaded branch.
        let n = 2000;
        let mut b = CooBuilder::new(n, n);
        for v in 1..n {
            b.push_sym(0, v as Vidx);
        }
        let a = b.build();
        let (p, stats) = par_rcm(&a, 4);
        assert_eq!(p.len(), n);
        assert_eq!(stats.components, 1);
        let (expect, _) = serial::rcm(&a);
        assert_eq!(p, expect);
    }

    #[test]
    fn components_counted() {
        let mut b = CooBuilder::new(6, 6);
        b.push_sym(0, 1);
        b.push_sym(2, 3);
        let a = b.build();
        let (p, stats) = par_rcm(&a, 2);
        assert_eq!(p.len(), 6);
        assert_eq!(stats.components, 4);
    }

    #[test]
    fn duplicate_candidates_keep_min_parent() {
        // Diamond: 0-1, 0-2, 1-3, 2-3. From root 0, vertex 3 is reachable
        // from both 1 and 2; it must attach to the smaller label.
        let mut b = CooBuilder::new(4, 4);
        b.push_sym(0, 1);
        b.push_sym(0, 2);
        b.push_sym(1, 3);
        b.push_sym(2, 3);
        let a = b.build();
        let (p, _) = par_rcm(&a, 2);
        let (expect, _) = serial::rcm(&a);
        assert_eq!(p, expect);
    }
}
