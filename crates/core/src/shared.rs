//! Shared-memory (multithreaded) level-synchronous RCM — the SpMP-style
//! baseline of Table II.
//!
//! Since the [`crate::driver`] refactor this module is a thin shim: the
//! BFS/peripheral/labeling pipeline lives **once** in
//! [`crate::driver::drive_cm`], and these entry points run it on
//! [`crate::backends::PooledBackend`] — the work-stealing pool of
//! [`crate::pool`], whose three-phase level pipeline (dynamic chunk
//! claiming, epoch-stamped `fetch_min` minimum-parent dedup, parallel
//! per-parent bucket sort) supplies the Table-I primitives.
//!
//! The result is *deterministic* and identical to the sequential and
//! algebraic orderings — thread count changes runtime, never the answer.
//! CI enforces this with an `RCM_THREADS` sweep (see
//! [`crate::pool::thread_counts_from_env`]).

use crate::backends::PooledBackend;
use crate::driver::{drive_cm_with, ExpandDirection, LabelingMode, StartNode};
use crate::pool::{PoolConfig, RcmPool};
use rcm_sparse::{CscMatrix, Permutation};

/// Statistics of a shared-memory RCM run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SharedRcmStats {
    /// Connected components processed.
    pub components: usize,
    /// BFS sweeps in the pseudo-peripheral searches.
    pub peripheral_bfs: usize,
    /// Ordering levels traversed.
    pub levels: usize,
    /// Frontier expansions executed through the parallel pipeline,
    /// including a component's final (empty-result) expansion; the rest
    /// fell under the pool's sequential cutover
    /// ([`crate::pool::DEFAULT_SEQ_CUTOFF`]).
    pub parallel_levels: usize,
    /// Frontier expansions that ran top-down (push).
    pub push_expands: usize,
    /// Frontier expansions that ran bottom-up (pull — the pool's
    /// no-atomics masked row-scan pipeline).
    pub pull_expands: usize,
}

/// Multithreaded RCM with `nthreads` worker threads, direction policy from
/// the environment (`RCM_DIRECTION`, default adaptive).
///
/// Produces exactly the same permutation as [`crate::serial::rcm`] and
/// [`crate::algebraic::algebraic_rcm`] for any thread count.
pub fn par_rcm(a: &CscMatrix, nthreads: usize) -> (Permutation, SharedRcmStats) {
    let (cm, stats) = par_cuthill_mckee(a, nthreads);
    (cm.reversed(), stats)
}

/// [`par_rcm`] under an explicit frontier-direction policy. The
/// permutation is identical for every policy and thread count.
///
/// A thin shim over a per-call [`crate::engine::OrderingEngine`]; sessions
/// that order many matrices should hold a warm engine (or a caller-owned
/// pool, [`par_cuthill_mckee_with_pool`]) instead of paying the worker
/// spawn per call.
pub fn par_rcm_directed(
    a: &CscMatrix,
    nthreads: usize,
    direction: ExpandDirection,
) -> (Permutation, SharedRcmStats) {
    let raw = crate::engine::order_once(
        crate::engine::EngineConfig::builder()
            .backend(crate::driver::BackendKind::Pooled { threads: nthreads })
            .direction(direction)
            .build(),
        a,
    );
    (
        raw.perm,
        SharedRcmStats {
            components: raw.stats.components,
            peripheral_bfs: raw.stats.peripheral_bfs,
            levels: raw.stats.levels,
            parallel_levels: raw.parallel_levels,
            push_expands: raw.stats.push_expands,
            pull_expands: raw.stats.pull_expands,
        },
    )
}

/// Multithreaded Cuthill-McKee (unreversed).
pub fn par_cuthill_mckee(a: &CscMatrix, nthreads: usize) -> (Permutation, SharedRcmStats) {
    let mut pool = RcmPool::new(PoolConfig::new(nthreads));
    par_cuthill_mckee_with_pool(a, &mut pool)
}

/// Multithreaded Cuthill-McKee on a caller-owned [`RcmPool`] — reuse the
/// pool across matrices to amortize arena growth (benchmark loops).
pub fn par_cuthill_mckee_with_pool(
    a: &CscMatrix,
    pool: &mut RcmPool,
) -> (Permutation, SharedRcmStats) {
    par_cuthill_mckee_with_pool_directed(a, pool, ExpandDirection::from_env())
}

/// [`par_cuthill_mckee_with_pool`] under an explicit frontier-direction
/// policy.
pub fn par_cuthill_mckee_with_pool_directed(
    a: &CscMatrix,
    pool: &mut RcmPool,
    direction: ExpandDirection,
) -> (Permutation, SharedRcmStats) {
    let (perm, stats, parallel_levels) = pooled_cm_raw(a, pool, direction, StartNode::from_env());
    (
        perm,
        SharedRcmStats {
            components: stats.components,
            peripheral_bfs: stats.peripheral_bfs,
            levels: stats.levels,
            parallel_levels,
            push_expands: stats.push_expands,
            pull_expands: stats.pull_expands,
        },
    )
}

/// One warm Cuthill-McKee ordering on a caller-owned pool, returning the
/// full [`DriverStats`] — the level-parallel path both the public shims and
/// [`crate::engine::OrderingEngine`] build on. The degree vector comes from
/// the pool's warm buffer ([`RcmPool::run_warm`]), so a reused pool
/// performs no steady-state install allocation.
pub(crate) fn pooled_cm_raw(
    a: &CscMatrix,
    pool: &mut RcmPool,
    direction: ExpandDirection,
    start_node: StartNode,
) -> (Permutation, crate::driver::DriverStats, usize) {
    assert_eq!(a.n_rows(), a.n_cols());
    pool.run_warm(a, |exec, ws| {
        let mut rt = PooledBackend::new(exec, ws);
        let stats = drive_cm_with(&mut rt, LabelingMode::PerLevel, direction, &start_node);
        let (perm, parallel_levels) = rt.into_cm_permutation();
        (perm, stats, parallel_levels)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::thread_counts_from_env;
    use crate::serial;
    use rcm_sparse::{CooBuilder, Vidx};

    use crate::testutil::scrambled_grid;

    #[test]
    fn matches_serial_for_any_thread_count() {
        let a = scrambled_grid(13, 23);
        let (expect, _) = serial::rcm(&a);
        for t in thread_counts_from_env(&[1, 2, 3, 4, 8]) {
            let (got, _) = par_rcm(&a, t);
            assert_eq!(got, expect, "{t} threads diverged");
        }
    }

    /// Caterpillar: `hubs` path-connected hub vertices, each with `leaves`
    /// pendant vertices. Every interior BFS level holds `leaves + 1`
    /// vertices, safely above [`crate::pool::DEFAULT_SEQ_CUTOFF`].
    fn wide_level_graph(hubs: usize, leaves: usize) -> CscMatrix {
        let n = hubs * (leaves + 1);
        let mut b = CooBuilder::new(n, n);
        for h in 0..hubs {
            let hub = (h * (leaves + 1)) as Vidx;
            if h + 1 < hubs {
                b.push_sym(hub, hub + (leaves + 1) as Vidx);
            }
            for l in 1..=leaves {
                b.push_sym(hub, hub + l as Vidx);
            }
        }
        b.build()
    }

    #[test]
    fn matches_serial_above_the_cutover() {
        let a = wide_level_graph(10, 300);
        let (expect, _) = serial::rcm(&a);
        for t in thread_counts_from_env(&[2, 5, 8]) {
            let (got, stats) = par_rcm(&a, t);
            assert_eq!(got, expect, "{t} threads diverged");
            if t > 1 {
                assert!(
                    stats.parallel_levels > 0,
                    "{t} threads never took the parallel path"
                );
            }
        }
    }

    #[test]
    fn cutover_threshold_is_configurable() {
        // With seq_cutoff = 1 even tiny frontiers go parallel; the answer
        // must not change.
        let a = scrambled_grid(9, 7);
        let (expect, _) = serial::rcm(&a);
        let mut pool = RcmPool::new(PoolConfig {
            nthreads: 3,
            seq_cutoff: 1,
            chunk: 2,
        });
        let (got, stats) = par_cuthill_mckee_with_pool(&a, &mut pool);
        assert_eq!(got.reversed(), expect);
        // Every ordering expansion goes parallel: one per level plus each
        // component's final empty expansion.
        assert_eq!(stats.parallel_levels, stats.levels + stats.components);
    }

    #[test]
    fn large_frontier_takes_threaded_path() {
        // A star graph has one giant level — forces the parallel branch.
        let n = 2000;
        let mut b = CooBuilder::new(n, n);
        for v in 1..n {
            b.push_sym(0, v as Vidx);
        }
        let a = b.build();
        let (p, stats) = par_rcm(&a, 4);
        assert_eq!(p.len(), n);
        assert_eq!(stats.components, 1);
        assert!(stats.parallel_levels > 0, "star level must run in parallel");
        let (expect, _) = serial::rcm(&a);
        assert_eq!(p, expect);
    }

    #[test]
    fn components_counted() {
        let mut b = CooBuilder::new(6, 6);
        b.push_sym(0, 1);
        b.push_sym(2, 3);
        let a = b.build();
        let (p, stats) = par_rcm(&a, 2);
        assert_eq!(p.len(), 6);
        assert_eq!(stats.components, 4);
    }

    #[test]
    fn duplicate_candidates_keep_min_parent() {
        // Diamond: 0-1, 0-2, 1-3, 2-3. From root 0, vertex 3 is reachable
        // from both 1 and 2; it must attach to the smaller label.
        let mut b = CooBuilder::new(4, 4);
        b.push_sym(0, 1);
        b.push_sym(0, 2);
        b.push_sym(1, 3);
        b.push_sym(2, 3);
        let a = b.build();
        let (p, _) = par_rcm(&a, 2);
        let (expect, _) = serial::rcm(&a);
        assert_eq!(p, expect);
    }

    #[test]
    fn pool_reuse_across_matrices_is_clean() {
        let mut pool = RcmPool::new(PoolConfig::new(4));
        for (w, stride) in [(20usize, 13usize), (31, 17), (12, 7)] {
            let a = scrambled_grid(w, stride);
            let (expect, _) = serial::rcm(&a);
            let (got, _) = par_cuthill_mckee_with_pool(&a, &mut pool);
            assert_eq!(got.reversed(), expect, "{w}x{w} grid diverged");
        }
    }
}
