//! Classical sequential Cuthill-McKee / Reverse Cuthill-McKee
//! (Algorithm 1 of the paper, in the George–Liu formulation).
//!
//! Vertices are numbered level by level from a pseudo-peripheral root; the
//! unnumbered neighbours of each vertex are labeled in increasing order of
//! degree. Ties are broken by vertex id, which makes this implementation
//! produce *exactly* the same ordering as the matrix-algebraic formulation
//! (Algorithm 3) — each vertex is claimed by its minimum-label parent
//! (first-touch in label order ≡ the `(select2nd, min)` semiring) and
//! children sort by `(degree, id)` within a parent. This equality is
//! verified by cross-implementation tests.
//!
//! Graphs with several connected components are handled George–Liu style:
//! each new component starts from a pseudo-peripheral vertex found from the
//! unnumbered vertex of minimum degree.

use crate::peripheral::pseudo_peripheral_with_degrees;
use rcm_sparse::{CscMatrix, Permutation, Vidx};

/// Statistics of a sequential CM/RCM run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SerialRcmStats {
    /// Connected components processed.
    pub components: usize,
    /// Total BFS sweeps spent finding pseudo-peripheral vertices.
    pub peripheral_bfs: usize,
    /// Levels traversed in the numbering passes (sum over components).
    pub levels: usize,
}

/// Cuthill-McKee ordering of a symmetric pattern matrix.
///
/// Returns the permutation mapping old vertex ids to new labels, plus run
/// statistics. Reverse it (`.reversed()`) for RCM.
pub fn cuthill_mckee(a: &CscMatrix) -> (Permutation, SerialRcmStats) {
    assert_eq!(
        a.n_rows(),
        a.n_cols(),
        "CM needs a square (symmetric) matrix"
    );
    let n = a.n_rows();
    let degrees = a.degrees();
    let mut label_of = vec![Vidx::MAX; n];
    let mut order: Vec<Vidx> = Vec::with_capacity(n);
    let mut stats = SerialRcmStats::default();
    // Scratch reused across components.
    let mut children: Vec<Vidx> = Vec::new();

    let mut next_component_scan = 0usize;
    while order.len() < n {
        // Seed: unnumbered vertex of minimum degree (deterministic).
        let mut seed = None;
        let mut best = (Vidx::MAX, Vidx::MAX);
        for v in next_component_scan..n {
            if label_of[v] == Vidx::MAX {
                let key = (degrees[v], v as Vidx);
                if key < best {
                    best = key;
                    seed = Some(v as Vidx);
                }
            }
        }
        // All labeled vertices are before the first unlabeled one only in
        // pathological orders; keep the scan start conservative.
        next_component_scan = 0;
        let seed = seed.expect("unlabeled vertex must exist");
        let pp = pseudo_peripheral_with_degrees(a, seed, &degrees);
        stats.components += 1;
        stats.peripheral_bfs += pp.bfs_count;

        // Number the component from the pseudo-peripheral root.
        let root = pp.vertex;
        let comp_start = order.len();
        label_of[root as usize] = comp_start as Vidx;
        order.push(root);
        let mut head = comp_start;
        let mut level_marker = order.len();
        while head < order.len() {
            let v = order[head];
            head += 1;
            children.clear();
            for &w in a.col(v as usize) {
                if label_of[w as usize] == Vidx::MAX {
                    // Reserve immediately so later parents skip it; the
                    // final label is assigned after sorting.
                    label_of[w as usize] = Vidx::MAX - 1;
                    children.push(w);
                }
            }
            children.sort_unstable_by_key(|&w| (degrees[w as usize], w));
            for &w in &children {
                label_of[w as usize] = order.len() as Vidx;
                order.push(w);
            }
            if head == level_marker && order.len() > level_marker {
                stats.levels += 1;
                level_marker = order.len();
            }
        }
    }
    (
        Permutation::from_order(&order).expect("CM visits each vertex exactly once"),
        stats,
    )
}

/// Reverse Cuthill-McKee ordering: [`cuthill_mckee`] with labels reversed.
pub fn rcm(a: &CscMatrix) -> (Permutation, SerialRcmStats) {
    let (cm, stats) = cuthill_mckee(a);
    (cm.reversed(), stats)
}

/// RCM rooted at a caller-supplied vertex (skips the pseudo-peripheral
/// search for the first component — useful for differential testing).
pub fn rcm_from_root(a: &CscMatrix, root: Vidx) -> Permutation {
    assert_eq!(a.n_rows(), a.n_cols());
    let n = a.n_rows();
    let degrees = a.degrees();
    let mut label_of = vec![Vidx::MAX; n];
    let mut order: Vec<Vidx> = Vec::with_capacity(n);
    let mut children: Vec<Vidx> = Vec::new();
    let mut root = Some(root);
    while order.len() < n {
        let start = match root.take() {
            Some(r) => r,
            None => {
                let mut best = (Vidx::MAX, Vidx::MAX);
                for v in 0..n {
                    if label_of[v] == Vidx::MAX {
                        best = best.min((degrees[v], v as Vidx));
                    }
                }
                pseudo_peripheral_with_degrees(a, best.1, &degrees).vertex
            }
        };
        label_of[start as usize] = order.len() as Vidx;
        order.push(start);
        let mut head = order.len() - 1;
        while head < order.len() {
            let v = order[head];
            head += 1;
            children.clear();
            for &w in a.col(v as usize) {
                if label_of[w as usize] == Vidx::MAX {
                    label_of[w as usize] = Vidx::MAX - 1;
                    children.push(w);
                }
            }
            children.sort_unstable_by_key(|&w| (degrees[w as usize], w));
            for &w in &children {
                label_of[w as usize] = order.len() as Vidx;
                order.push(w);
            }
        }
    }
    Permutation::from_order(&order)
        .expect("CM visits each vertex exactly once")
        .reversed()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcm_sparse::{envelope_size, matrix_bandwidth, CooBuilder};

    fn path(n: usize) -> CscMatrix {
        let mut b = CooBuilder::new(n, n);
        for v in 0..n - 1 {
            b.push_sym(v as Vidx, (v + 1) as Vidx);
        }
        b.build()
    }

    fn shuffled_path(n: usize) -> CscMatrix {
        // Deterministic scramble: reverse bit-ish pattern via stride.
        let stride = 7usize;
        assert!(!n.is_multiple_of(stride), "stride must be coprime with n");
        let perm: Vec<Vidx> = (0..n).map(|i| ((i * stride) % n) as Vidx).collect();
        let p = Permutation::from_new_of_old(perm).unwrap();
        path(n).permute_sym(&p)
    }

    #[test]
    fn rcm_restores_path_bandwidth() {
        let a = shuffled_path(50);
        assert!(matrix_bandwidth(&a) > 1);
        let (p, stats) = rcm(&a);
        let pa = a.permute_sym(&p);
        assert_eq!(matrix_bandwidth(&pa), 1);
        assert_eq!(stats.components, 1);
    }

    #[test]
    fn rcm_is_valid_permutation() {
        let a = shuffled_path(23);
        let (p, _) = rcm(&a);
        assert_eq!(p.len(), 23);
        // Permutation type guarantees bijectivity; double-check round trip.
        assert_eq!(p.then(&p.inverse()), Permutation::identity(23));
    }

    #[test]
    fn rcm_is_reverse_of_cm() {
        let a = shuffled_path(31);
        let (cm, _) = cuthill_mckee(&a);
        let (rcm_p, _) = rcm(&a);
        assert_eq!(cm.reversed(), rcm_p);
    }

    #[test]
    fn handles_multiple_components() {
        let mut b = CooBuilder::new(9, 9);
        // Component 1: path 0-1-2; component 2: triangle 3-4-5;
        // component 3: isolated vertices 6, 7, 8.
        b.push_sym(0, 1);
        b.push_sym(1, 2);
        b.push_sym(3, 4);
        b.push_sym(4, 5);
        b.push_sym(3, 5);
        let a = b.build();
        let (p, stats) = rcm(&a);
        assert_eq!(p.len(), 9);
        assert_eq!(stats.components, 5);
        let pa = a.permute_sym(&p);
        // Each component stays contiguous → bandwidth ≤ 2 (triangle width).
        assert!(matrix_bandwidth(&pa) <= 2);
    }

    #[test]
    fn empty_and_singleton() {
        let a = CscMatrix::empty(0);
        let (p, _) = rcm(&a);
        assert_eq!(p.len(), 0);
        let a1 = CscMatrix::empty(1);
        let (p1, s1) = rcm(&a1);
        assert_eq!(p1.len(), 1);
        assert_eq!(s1.components, 1);
    }

    #[test]
    fn rcm_never_increases_path_profile() {
        let a = shuffled_path(40);
        let before = envelope_size(&a);
        let (p, _) = rcm(&a);
        let after = envelope_size(&a.permute_sym(&p));
        assert!(after <= before, "profile {before} -> {after}");
    }

    #[test]
    fn rcm_from_root_respects_root() {
        let a = path(6);
        let p = rcm_from_root(&a, 0);
        // Rooted at 0, CM numbers 0..5 in order; RCM reverses.
        assert_eq!(p.as_new_of_old(), &[5, 4, 3, 2, 1, 0]);
    }

    #[test]
    fn grid_rcm_beats_shuffled_bandwidth() {
        // 2D grid shuffled, then RCM: bandwidth should come back near grid
        // width.
        let w = 12usize;
        let mut b = CooBuilder::new(w * w, w * w);
        for y in 0..w {
            for x in 0..w {
                let u = (y * w + x) as Vidx;
                if x + 1 < w {
                    b.push_sym(u, u + 1);
                }
                if y + 1 < w {
                    b.push_sym(u, u + w as Vidx);
                }
            }
        }
        let a = b.build();
        let stride = 37usize;
        let perm: Vec<Vidx> = (0..w * w)
            .map(|i| ((i * stride) % (w * w)) as Vidx)
            .collect();
        let shuffled = a.permute_sym(&Permutation::from_new_of_old(perm).unwrap());
        let bw_shuffled = matrix_bandwidth(&shuffled);
        let (p, _) = rcm(&shuffled);
        let bw_rcm = matrix_bandwidth(&shuffled.permute_sym(&p));
        assert!(bw_rcm <= 2 * w, "RCM bandwidth {bw_rcm} vs grid width {w}");
        assert!(
            bw_rcm * 3 < bw_shuffled,
            "no real improvement: {bw_shuffled} -> {bw_rcm}"
        );
    }
}
