//! BFS level structures and the pseudo-peripheral vertex finder.
//!
//! The starting vertex strongly impacts RCM quality (§II-A): a vertex of
//! (near-)maximal eccentricity is wanted. Finding a true peripheral vertex
//! is prohibitively expensive, so the George–Liu refinement of the
//! Gibbs–Poole–Stockmeyer heuristic (Algorithm 2 of the paper) is used:
//! repeatedly BFS, hop to a minimum-degree vertex of the last level, and
//! stop when the eccentricity no longer grows.

use rcm_sparse::{CscMatrix, Vidx};

/// The rooted level structure `L(v) = {L₀(v), …, L_ℓ(v)}` restricted to the
/// connected component of the root.
#[derive(Clone, Debug)]
pub struct LevelStructure {
    /// Level of each vertex; `-1` for vertices outside the root's component.
    pub level_of: Vec<i32>,
    /// Vertices in BFS order; level `k` occupies
    /// `order[starts[k]..starts[k+1]]`.
    pub order: Vec<Vidx>,
    /// Level boundaries into `order`; `starts.len() == height + 1`.
    pub starts: Vec<usize>,
}

impl LevelStructure {
    /// Number of levels (eccentricity of the root + 1).
    pub fn height(&self) -> usize {
        self.starts.len() - 1
    }

    /// Eccentricity `ℓ(root)` within the component.
    pub fn eccentricity(&self) -> usize {
        self.height().saturating_sub(1)
    }

    /// Vertices of level `k`.
    pub fn level(&self, k: usize) -> &[Vidx] {
        &self.order[self.starts[k]..self.starts[k + 1]]
    }

    /// Width `ν(v)`: the size of the largest level.
    pub fn width(&self) -> usize {
        (0..self.height())
            .map(|k| self.level(k).len())
            .max()
            .unwrap_or(0)
    }

    /// Number of vertices reached (the component size).
    pub fn component_size(&self) -> usize {
        self.order.len()
    }
}

/// Breadth-first search from `root`, producing the rooted level structure.
pub fn bfs_level_structure(a: &CscMatrix, root: Vidx) -> LevelStructure {
    let n = a.n_rows();
    assert!((root as usize) < n, "root {root} out of range");
    let mut level_of = vec![-1i32; n];
    let mut order = Vec::new();
    let mut starts = vec![0usize];
    level_of[root as usize] = 0;
    order.push(root);
    let mut frontier_begin = 0usize;
    let mut level = 0i32;
    loop {
        // `frontier_end` closes the current level; the expansion below
        // appends the next one.
        let frontier_end = order.len();
        starts.push(frontier_end);
        level += 1;
        for idx in frontier_begin..frontier_end {
            let v = order[idx];
            for &w in a.col(v as usize) {
                if level_of[w as usize] < 0 {
                    level_of[w as usize] = level;
                    order.push(w);
                }
            }
        }
        if order.len() == frontier_end {
            break;
        }
        frontier_begin = frontier_end;
    }
    LevelStructure {
        level_of,
        order,
        starts,
    }
}

/// Result of the pseudo-peripheral search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PseudoPeripheral {
    /// The pseudo-peripheral vertex.
    pub vertex: Vidx,
    /// Its eccentricity within the component.
    pub eccentricity: usize,
    /// Number of full BFS sweeps performed (`|iters|` in the paper's cost
    /// analysis).
    pub bfs_count: usize,
}

/// George–Liu pseudo-peripheral vertex finder (Algorithm 2 of the paper),
/// starting from `start`.
///
/// Repeats: BFS from `r`; pick the minimum-degree vertex `v` (ties toward
/// the smaller id) in the last level; if `ℓ(v) > ℓ(r)` continue from `v`,
/// else stop and return `v`.
pub fn pseudo_peripheral(a: &CscMatrix, start: Vidx) -> PseudoPeripheral {
    let degrees = a.degrees();
    pseudo_peripheral_with_degrees(a, start, &degrees)
}

/// [`pseudo_peripheral`] with a precomputed degree vector.
pub fn pseudo_peripheral_with_degrees(
    a: &CscMatrix,
    start: Vidx,
    degrees: &[Vidx],
) -> PseudoPeripheral {
    let mut r = start;
    let mut ls = bfs_level_structure(a, r);
    let mut bfs_count = 1;
    let mut ecc = ls.eccentricity();
    loop {
        // Shrink: minimum-degree vertex of the last level.
        let last = ls.level(ls.height() - 1);
        let v = *last
            .iter()
            .min_by_key(|&&w| (degrees[w as usize], w))
            .expect("last level is nonempty");
        if v == r {
            break;
        }
        let ls_v = bfs_level_structure(a, v);
        bfs_count += 1;
        let ecc_v = ls_v.eccentricity();
        r = v;
        ls = ls_v;
        if ecc_v <= ecc {
            ecc = ecc_v;
            break;
        }
        ecc = ecc_v;
    }
    PseudoPeripheral {
        vertex: r,
        eccentricity: ecc,
        bfs_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcm_sparse::CooBuilder;

    fn path(n: usize) -> CscMatrix {
        let mut b = CooBuilder::new(n, n);
        for v in 0..n - 1 {
            b.push_sym(v as Vidx, (v + 1) as Vidx);
        }
        b.build()
    }

    fn star(n: usize) -> CscMatrix {
        let mut b = CooBuilder::new(n, n);
        for v in 1..n {
            b.push_sym(0, v as Vidx);
        }
        b.build()
    }

    #[test]
    fn levels_of_path_from_middle() {
        let a = path(7);
        let ls = bfs_level_structure(&a, 3);
        assert_eq!(ls.eccentricity(), 3);
        assert_eq!(ls.level(0), &[3]);
        let mut l1 = ls.level(1).to_vec();
        l1.sort_unstable();
        assert_eq!(l1, vec![2, 4]);
        assert_eq!(ls.component_size(), 7);
        assert_eq!(ls.width(), 2);
    }

    #[test]
    fn levels_respect_components() {
        // Two disjoint edges.
        let mut b = CooBuilder::new(4, 4);
        b.push_sym(0, 1);
        b.push_sym(2, 3);
        let a = b.build();
        let ls = bfs_level_structure(&a, 0);
        assert_eq!(ls.component_size(), 2);
        assert_eq!(ls.level_of[2], -1);
        assert_eq!(ls.level_of[3], -1);
    }

    #[test]
    fn pseudo_peripheral_of_path_is_an_endpoint() {
        let a = path(10);
        let pp = pseudo_peripheral(&a, 4);
        assert!(pp.vertex == 0 || pp.vertex == 9, "got {}", pp.vertex);
        assert_eq!(pp.eccentricity, 9);
        assert!(pp.bfs_count >= 2);
    }

    #[test]
    fn pseudo_peripheral_of_star_is_a_leaf() {
        let a = star(6);
        let pp = pseudo_peripheral(&a, 0);
        assert_ne!(pp.vertex, 0);
        assert_eq!(pp.eccentricity, 2);
    }

    #[test]
    fn pseudo_peripheral_is_deterministic() {
        let a = path(30);
        assert_eq!(pseudo_peripheral(&a, 13), pseudo_peripheral(&a, 13));
    }

    #[test]
    fn singleton_component() {
        let a = CscMatrix::empty(3);
        let ls = bfs_level_structure(&a, 1);
        assert_eq!(ls.component_size(), 1);
        assert_eq!(ls.eccentricity(), 0);
        let pp = pseudo_peripheral(&a, 1);
        assert_eq!(pp.vertex, 1);
        assert_eq!(pp.eccentricity, 0);
    }

    #[test]
    fn grid_peripheral_reaches_a_corner_distance() {
        // 2D grid: diameter from corner to corner = (w-1)+(h-1).
        let w = 8;
        let mut b = CooBuilder::new(w * w, w * w);
        for y in 0..w {
            for x in 0..w {
                let u = (y * w + x) as Vidx;
                if x + 1 < w {
                    b.push_sym(u, u + 1);
                }
                if y + 1 < w {
                    b.push_sym(u, u + w as Vidx);
                }
            }
        }
        let a = b.build();
        let pp = pseudo_peripheral(&a, (w * w / 2) as Vidx);
        assert_eq!(pp.eccentricity, 2 * (w - 1));
    }
}
