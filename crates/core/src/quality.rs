//! Ordering-quality evaluation without materializing the permuted matrix.
//!
//! Bandwidth and profile of `PAPᵀ` can be computed in `O(nnz)` directly from
//! the permutation, which matters when evaluating many orderings of large
//! matrices (the `fig3` and `table2` experiments do exactly that).

use rcm_sparse::{CscMatrix, Permutation, Vidx};

/// Bandwidth of `PAPᵀ`: `max |perm[u] − perm[v]|` over stored off-diagonal
/// entries `(u, v)`.
pub fn ordering_bandwidth(a: &CscMatrix, perm: &Permutation) -> usize {
    assert_eq!(perm.len(), a.n_cols());
    let p = perm.as_new_of_old();
    let mut bw = 0usize;
    for c in 0..a.n_cols() {
        let pc = p[c] as i64;
        for &r in a.col(c) {
            let d = (p[r as usize] as i64 - pc).unsigned_abs() as usize;
            bw = bw.max(d);
        }
    }
    bw
}

/// Envelope size (profile) of `PAPᵀ`: `Σ_i (i − f_i)` where `f_i` is the
/// smallest new label among column `i`'s neighbours (clamped at `i`).
pub fn ordering_profile(a: &CscMatrix, perm: &Permutation) -> u64 {
    assert_eq!(perm.len(), a.n_cols());
    let p = perm.as_new_of_old();
    let n = a.n_cols();
    // min_label[i] = smallest label among the neighbours of the vertex with
    // label i (including itself).
    let mut min_label: Vec<Vidx> = (0..n as Vidx).collect();
    for c in 0..n {
        let pc = p[c];
        for &r in a.col(c) {
            let pr = p[r as usize];
            if pr < min_label[pc as usize] {
                min_label[pc as usize] = pr;
            }
        }
    }
    (0..n).map(|i| (i as Vidx - min_label[i]) as u64).sum()
}

/// Wavefront of `PAPᵀ` computed directly from the permutation:
/// `(max wavefront, rms wavefront)`. The wavefront at elimination step `i`
/// is the number of rows active in the front — the quantity Sloan's
/// algorithm targets.
pub fn ordering_wavefront(a: &CscMatrix, perm: &Permutation) -> (usize, f64) {
    assert_eq!(perm.len(), a.n_cols());
    let p = perm.as_new_of_old();
    let n = a.n_cols();
    if n == 0 {
        return (0, 0.0);
    }
    // first_col[i]: earliest elimination step that touches the row with new
    // label i (including its own step).
    let mut first_col: Vec<Vidx> = (0..n as Vidx).collect();
    for c in 0..n {
        let pc = p[c];
        for &r in a.col(c) {
            let pr = p[r as usize];
            // Column pc touches row pr: row pr becomes active at step
            // min(pc, its current entry).
            if pc < first_col[pr as usize] {
                first_col[pr as usize] = pc;
            }
        }
    }
    let mut enters = vec![0i64; n + 1];
    for i in 0..n {
        enters[first_col[i] as usize] += 1;
        enters[i + 1] -= 1;
    }
    let mut active = 0i64;
    let mut maxw = 0i64;
    let mut sumsq = 0.0f64;
    for e in enters.iter().take(n) {
        active += e;
        maxw = maxw.max(active);
        sumsq += (active * active) as f64;
    }
    (maxw as usize, (sumsq / n as f64).sqrt())
}

/// Before/after quality summary of an ordering.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OrderingQuality {
    /// Bandwidth of the input ordering.
    pub bandwidth_before: usize,
    /// Bandwidth after applying the permutation.
    pub bandwidth_after: usize,
    /// Profile (envelope size) of the input ordering.
    pub profile_before: u64,
    /// Profile after applying the permutation.
    pub profile_after: u64,
}

/// Evaluate `perm` against the identity ordering of `a`.
pub fn quality_report(a: &CscMatrix, perm: &Permutation) -> OrderingQuality {
    let id = Permutation::identity(a.n_cols());
    OrderingQuality {
        bandwidth_before: ordering_bandwidth(a, &id),
        bandwidth_after: ordering_bandwidth(a, perm),
        profile_before: ordering_profile(a, &id),
        profile_after: ordering_profile(a, perm),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcm_sparse::{envelope_size, matrix_bandwidth, CooBuilder};

    fn path(n: usize) -> CscMatrix {
        let mut b = CooBuilder::new(n, n);
        for v in 0..n - 1 {
            b.push_sym(v as Vidx, (v + 1) as Vidx);
        }
        b.build()
    }

    #[test]
    fn identity_matches_direct_metrics() {
        let a = path(20);
        let id = Permutation::identity(20);
        assert_eq!(ordering_bandwidth(&a, &id), matrix_bandwidth(&a));
        assert_eq!(ordering_profile(&a, &id), envelope_size(&a));
    }

    #[test]
    fn agrees_with_materialized_permutation() {
        let a = path(30);
        let stride = 7;
        let perm: Vec<Vidx> = (0..30).map(|i| ((i * stride) % 30) as Vidx).collect();
        let p = Permutation::from_new_of_old(perm).unwrap();
        let pa = a.permute_sym(&p);
        assert_eq!(ordering_bandwidth(&a, &p), matrix_bandwidth(&pa));
        assert_eq!(ordering_profile(&a, &p), envelope_size(&pa));
    }

    #[test]
    fn wavefront_matches_materialized_metric() {
        let a = path(25);
        let stride = 9;
        let perm: Vec<Vidx> = (0..25).map(|i| ((i * stride) % 25) as Vidx).collect();
        let p = Permutation::from_new_of_old(perm).unwrap();
        let pa = a.permute_sym(&p);
        let direct = rcm_sparse::bandwidth::wavefront(&pa);
        let viaperm = ordering_wavefront(&a, &p);
        assert_eq!(viaperm.0, direct.0);
        assert!((viaperm.1 - direct.1).abs() < 1e-12);
    }

    #[test]
    fn quality_report_before_after() {
        let a = path(40);
        let stride = 11;
        let scramble =
            Permutation::from_new_of_old((0..40).map(|i| ((i * stride) % 40) as Vidx).collect())
                .unwrap();
        let scrambled = a.permute_sym(&scramble);
        let (rcm, _) = crate::serial::rcm(&scrambled);
        let q = quality_report(&scrambled, &rcm);
        assert!(q.bandwidth_after < q.bandwidth_before);
        assert!(q.profile_after < q.profile_before);
        assert_eq!(q.bandwidth_after, 1); // a path reordered perfectly
    }
}
