//! The four [`RcmRuntime`](crate::driver::RcmRuntime) implementations.
//!
//! | backend | Table-I primitives supplied by | cost accounting |
//! |---|---|---|
//! | [`SerialBackend`] | sequential `rcm-sparse` SpMSpV/sort | none |
//! | [`PooledBackend`] | the work-stealing pool of [`crate::pool`] | none |
//! | [`DistBackend`] | `rcm-dist` distributed primitives | [`rcm_dist::SimClock`] (flat MPI) |
//! | [`HybridBackend`] | [`DistBackend`] | compute divided by [`rcm_dist::MachineModel::thread_speedup`] |
//!
//! Every backend executes the identical generic driver
//! ([`crate::driver::drive_cm`]) and produces the bit-identical
//! permutation; only the execution substrate and the modeled cost differ.

mod dist;
mod hybrid;
mod pooled;
pub(crate) mod serial;

pub use dist::DistBackend;
pub use hybrid::HybridBackend;
pub use pooled::PooledBackend;
pub use serial::{SerialBackend, SerialWorkspace};
