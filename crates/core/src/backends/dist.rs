//! [`DistBackend`]: the Table-I primitives on the simulated 2D-decomposed
//! runtime of `rcm-dist`, with every step charged to a [`SimClock`] under
//! the Fig. 4 phase taxonomy. One thread per process — the flat-MPI
//! configuration; see [`crate::backends::HybridBackend`] for MPI×OpenMP.

use crate::distributed::{DistRcmConfig, DistRcmResult, SortMode};
use crate::driver::{DenseTarget, DriverStats, RcmRuntime};
use rcm_dist::{
    dist_argmin, dist_find_unvisited_min_degree, dist_gather_values, dist_is_nonempty, dist_select,
    dist_set, dist_sortperm, dist_sortperm_samplesort, dist_spmspv, dist_spmspv_pull,
    DistCscMatrix, DistDenseVec, DistSparseVec, DistSpmspvWorkspace, Phase, SimClock,
};
use rcm_sparse::{CscMatrix, Label, Permutation, Select2ndMin, VertexBitmap, Vidx, UNVISITED};

/// Simulated distributed-memory backend (2D process grid, α–β machine
/// model, per-phase cost accounting).
pub struct DistBackend {
    dmat: DistCscMatrix,
    degrees: DistDenseVec<Vidx>,
    order: DistDenseVec<Label>,
    levels: DistDenseVec<Label>,
    /// Vertices with `order[g] == UNVISITED` — the pull kernel's candidate
    /// set, kept as a bitmap so its local scan skips fully visited words.
    unvisited_order: VertexBitmap,
    /// Vertices with `levels[g] == UNVISITED`.
    unvisited_levels: VertexBitmap,
    ws: DistSpmspvWorkspace<Label>,
    clock: SimClock,
    config: DistRcmConfig,
}

impl DistBackend {
    /// Distribute `a` over the configuration's process grid and start the
    /// clock (a fresh SpMSpV workspace per call; use [`DistBackend::warm`]
    /// to amortize).
    ///
    /// Panics when the configuration's process count is not a perfect
    /// square (the paper's CombBLAS restriction, §V-A).
    pub fn new(a: &CscMatrix, config: &DistRcmConfig) -> Self {
        DistBackend::warm(a, config, DistSpmspvWorkspace::new())
    }

    /// [`DistBackend::new`] reusing a warm [`DistSpmspvWorkspace`] from a
    /// previous ordering — the engine's install phase. The matrix
    /// distribution and the dense companions are rebuilt per install (that
    /// *is* the modeled 2D decomposition); the stamped SpMSpV accumulator,
    /// the dominant steady-state scratch, carries its high-water-mark
    /// capacity across matrices (recover it with
    /// [`DistBackend::into_result_warm`]).
    pub fn warm(a: &CscMatrix, config: &DistRcmConfig, ws: DistSpmspvWorkspace<Label>) -> Self {
        let grid = config.hybrid.grid().unwrap_or_else(|| {
            panic!(
                "{} processes do not form a square grid",
                config.hybrid.nprocs()
            )
        });
        let dmat = DistCscMatrix::from_global(grid, a, config.balance_seed);
        let mut clock = SimClock::new(config.machine, config.hybrid.threads_per_proc);
        let degrees = dmat.degrees_dvec();
        clock.set_phase(Phase::OrderingOther);
        let order: DistDenseVec<Label> = DistDenseVec::filled(dmat.layout().clone(), UNVISITED);
        clock.charge_elems(dmat.layout().max_local_len());
        // The level vector is (re)initialized by `reset_levels` before
        // every use; constructing it here is not charged.
        let levels: DistDenseVec<Label> = DistDenseVec::filled(dmat.layout().clone(), UNVISITED);
        // The bitmaps shadow the dense companions; their word-fill rides
        // along with the (already charged) dense initialization.
        let n = dmat.n_rows();
        let mut unvisited_order = VertexBitmap::new(0);
        unvisited_order.reset_ones(n);
        let mut unvisited_levels = VertexBitmap::new(0);
        unvisited_levels.reset_ones(n);
        DistBackend {
            dmat,
            degrees,
            order,
            levels,
            unvisited_order,
            unvisited_levels,
            ws,
            clock,
            config: *config,
        }
    }

    /// Finish the run: reverse CM → RCM, map internal (balance-permuted)
    /// ids back to original vertex ids, and package the clock's accounting
    /// with the driver's statistics.
    pub fn into_result(self, stats: DriverStats) -> DistRcmResult {
        self.into_result_warm(stats).0
    }

    /// [`DistBackend::into_result`] that also hands the warm SpMSpV
    /// workspace back for the next install.
    pub fn into_result_warm(
        self,
        stats: DriverStats,
    ) -> (DistRcmResult, DistSpmspvWorkspace<Label>) {
        let n = self.dmat.n_rows();
        let labels_internal: Vec<Vidx> = self
            .order
            .to_global()
            .iter()
            .map(|&l| (n as Label - 1 - l) as Vidx)
            .collect();
        let labels_original = self.dmat.to_original(&labels_internal);
        let perm =
            Permutation::from_new_of_old(labels_original).expect("RCM labels form a bijection");
        let messages = self.clock.messages;
        let bytes = self.clock.bytes;
        let grid_side = self.dmat.grid().pr;
        let breakdown = self.clock.into_breakdown();
        let result = DistRcmResult {
            perm,
            sim_seconds: breakdown.total(),
            breakdown,
            grid_side,
            threads_per_proc: self.config.hybrid.threads_per_proc,
            components: stats.components,
            peripheral_bfs: stats.peripheral_bfs,
            levels: stats.levels,
            messages,
            bytes,
            push_expands: stats.push_expands,
            pull_expands: stats.pull_expands,
            level_stats: stats.level_stats,
            peripheral_stats: stats.peripheral_stats,
        };
        (result, self.ws)
    }
}

/// Assign labels to the frontier without sorting ([`SortMode::NoSort`]):
/// global index order via an ExScan of per-rank counts.
fn assign_unsorted_labels(
    next: &DistSparseVec<Label>,
    nv: Label,
    clock: &mut SimClock,
) -> (DistSparseVec<Label>, usize) {
    let p = next.layout.nprocs();
    let machine = *clock.machine();
    let mut parts = Vec::with_capacity(p);
    let mut running = 0usize;
    let mut max_scan = 0usize;
    for part in &next.parts {
        max_scan = max_scan.max(part.len());
        let labeled: Vec<(Vidx, Label)> = part
            .iter()
            .enumerate()
            .map(|(k, &(g, _))| (g, nv + (running + k) as Label))
            .collect();
        running += part.len();
        parts.push(labeled);
    }
    clock.charge_elems(max_scan);
    if p > 1 {
        clock.charge_comm(machine.t_allreduce(p, 8), p as u64, 8);
    }
    (
        DistSparseVec {
            layout: next.layout.clone(),
            parts,
        },
        running,
    )
}

impl RcmRuntime for DistBackend {
    type Frontier = DistSparseVec<Label>;

    fn n(&self) -> usize {
        self.dmat.n_rows()
    }

    fn set_phase(&mut self, phase: Phase) {
        self.clock.set_phase(phase);
    }

    fn now(&self) -> f64 {
        self.clock.now()
    }

    fn singleton(&mut self, v: Vidx, value: Label) -> Self::Frontier {
        DistSparseVec::singleton(self.dmat.layout().clone(), v, value)
    }

    fn is_nonempty(&mut self, x: &Self::Frontier) -> bool {
        dist_is_nonempty(x, &mut self.clock)
    }

    fn frontier_nnz(&mut self, x: &Self::Frontier) -> usize {
        // The global count piggybacks on `is_nonempty`'s 8-byte AllReduce
        // (the reduction carries the count), so no extra charge here.
        x.total_nnz()
    }

    fn append(&mut self, acc: &mut Self::Frontier, x: &Self::Frontier) {
        for (rank, part) in x.parts.iter().enumerate() {
            acc.parts[rank].extend_from_slice(part);
        }
    }

    fn stamp(&mut self, x: &mut Self::Frontier, value: Label) {
        let mut max_scan = 0usize;
        for part in &mut x.parts {
            max_scan = max_scan.max(part.len());
            for (_, v) in part.iter_mut() {
                *v = value;
            }
        }
        self.clock.charge_elems(max_scan);
    }

    fn spmspv(&mut self, x: &Self::Frontier) -> Self::Frontier {
        dist_spmspv::<Label, Select2ndMin>(&self.dmat, x, &mut self.ws, &mut self.clock)
    }

    fn select_unvisited(&mut self, x: &Self::Frontier, which: DenseTarget) -> Self::Frontier {
        let dense = match which {
            DenseTarget::Order => &self.order,
            DenseTarget::Levels => &self.levels,
        };
        dist_select(x, dense, |l| l == UNVISITED, &mut self.clock)
    }

    fn expand_pull(&mut self, x: &Self::Frontier, which: DenseTarget) -> Self::Frontier {
        // Dense-allgather pull: Θ(n/√p′) communication regardless of the
        // frontier, vs. the sparse gather/reduce of the push path. The
        // candidate set is the unvisited bitmap shadowing the dense
        // companion, so the local scan skips fully visited 64-vertex words.
        let cands = match which {
            DenseTarget::Order => &self.unvisited_order,
            DenseTarget::Levels => &self.unvisited_levels,
        };
        dist_spmspv_pull::<Label, Select2ndMin>(&self.dmat, x, cands, &mut self.ws, &mut self.clock)
    }

    fn set_dense(&mut self, which: DenseTarget, x: &Self::Frontier) {
        let (dense, bits) = match which {
            DenseTarget::Order => (&mut self.order, &mut self.unvisited_order),
            DenseTarget::Levels => (&mut self.levels, &mut self.unvisited_levels),
        };
        dist_set(dense, x, &mut self.clock);
        for (g, value) in x.iter_entries() {
            if value == UNVISITED {
                bits.insert(g);
            } else {
                bits.remove(g);
            }
        }
    }

    fn set_dense_at(&mut self, which: DenseTarget, v: Vidx, value: Label) {
        let (dense, bits) = match which {
            DenseTarget::Order => (&mut self.order, &mut self.unvisited_order),
            DenseTarget::Levels => (&mut self.levels, &mut self.unvisited_levels),
        };
        dense.set(v, value);
        if value == UNVISITED {
            bits.insert(v);
        } else {
            bits.remove(v);
        }
    }

    fn gather_values(&mut self, x: &mut Self::Frontier, which: DenseTarget) {
        match which {
            DenseTarget::Order => dist_gather_values(x, &self.order, &mut self.clock),
            DenseTarget::Levels => dist_gather_values(x, &self.levels, &mut self.clock),
        }
    }

    fn reset_levels(&mut self) {
        self.levels = DistDenseVec::filled(self.dmat.layout().clone(), UNVISITED);
        self.unvisited_levels.reset_ones(self.dmat.n_rows());
        self.clock.charge_elems(self.dmat.layout().max_local_len());
    }

    fn sortperm(
        &mut self,
        x: &Self::Frontier,
        batch: (Label, Label),
        nv: Label,
    ) -> (Self::Frontier, usize) {
        match self.config.sort_mode {
            SortMode::Full | SortMode::GlobalSortAtEnd => {
                dist_sortperm(x, &self.degrees, batch, nv, &mut self.clock)
            }
            SortMode::GeneralSamplesort => {
                dist_sortperm_samplesort(x, &self.degrees, nv, &mut self.clock)
            }
            SortMode::NoSort => {
                // The paper's ablation skips the sort; labels are assigned
                // in global index order and charged as plain streaming
                // work, not sorting.
                self.clock.set_phase(Phase::OrderingOther);
                assign_unsorted_labels(x, nv, &mut self.clock)
            }
        }
    }

    fn argmin_degree(&mut self, x: &Self::Frontier) -> Option<Vidx> {
        dist_argmin(x, &self.degrees, &mut self.clock)
    }

    fn find_unvisited_min_degree(&mut self) -> Option<Vidx> {
        dist_find_unvisited_min_degree(&self.order, &self.degrees, &mut self.clock)
    }
}
