//! [`PooledBackend`]: the Table-I primitives on the work-stealing pool of
//! [`crate::pool`].
//!
//! The pool's three-phase level pipeline (dynamic expansion → epoch-stamped
//! `fetch_min` dedup → parallel per-parent bucket sort) *is* the semiring
//! SpMSpV fused with `SELECT` and the sort half of `SORTPERM`:
//! [`RcmRuntime::spmspv`] runs one [`LevelExecutor::expand`], whose output
//! is already restricted to unvisited vertices (the pool's unvisited
//! bitmap mirrors both dense companions) with minimum parent labels,
//! sorted by `(parent, degree, vertex)`. The trait's `SELECT` then re-filters (a
//! no-op pass that keeps the contract honest) and `SORTPERM` assigns
//! consecutive labels over the already-bucketed tuples.
//!
//! Lifecycle: construction is the *install* phase — the dense companions
//! live in the pool-owned [`PooledWorkspace`] (warm across orderings and
//! matrices; [`PooledBackend::new`] resets their active prefix, grow-only),
//! and the executor borrows the pool's persistent workers and arenas. One
//! `RcmPool` therefore serves any number of orderings with zero
//! steady-state growth of its install-managed buffers.
//!
//! Determinism: the pool's claim array converges to the same minima under
//! any interleaving, so every primitive returns the exact sequential value
//! for any thread count — the backend is bit-identical to
//! [`crate::backends::SerialBackend`].
//!
//! Contract note: when every frontier value is equal (BFS sweeps, level
//! stamps), the pool's expansion emits frontier *positions* as values
//! instead of the shared input value. The driver never observes them — it
//! stamps or re-gathers before the next read — and the result's *support*
//! (the semiring's select set) is always exact; frontiers mixing duplicate
//! and distinct values are rejected with a panic.

use crate::driver::{DenseTarget, RcmRuntime};
use crate::pool::{LevelExecutor, PooledWorkspace};
use rcm_dist::Phase;
use rcm_sparse::{counting_sortperm, Label, Permutation, Vidx, UNVISITED};

/// Work-stealing shared-memory backend over a borrowed [`LevelExecutor`]
/// and the pool-owned [`PooledWorkspace`] (construct inside
/// [`crate::pool::RcmPool::run`] / [`crate::pool::RcmPool::run_warm`]).
pub struct PooledBackend<'x, 's> {
    exec: &'x mut LevelExecutor<'s>,
    ws: &'x mut PooledWorkspace,
    n: usize,
    phase: Phase,
    parallel_levels: usize,
}

impl<'x, 's> PooledBackend<'x, 's> {
    /// Backend over the executor's installed matrix and the pool-owned
    /// workspace. The pool's install pass (inside
    /// [`crate::pool::RcmPool::run`]) has already grown the workspace and
    /// reset its dense companions to unvisited, so construction allocates
    /// nothing.
    pub fn new(exec: &'x mut LevelExecutor<'s>, ws: &'x mut PooledWorkspace) -> Self {
        let n = exec.n();
        PooledBackend {
            exec,
            ws,
            n,
            phase: Phase::OrderingOther,
            parallel_levels: 0,
        }
    }

    /// The raw CM labels plus the count of frontier expansions that ran
    /// through the parallel pipeline (the rest fell under the pool's
    /// sequential cutover).
    pub fn into_order(self) -> (Vec<Label>, usize) {
        (self.ws.order[..self.n].to_vec(), self.parallel_levels)
    }

    /// The (unreversed) Cuthill-McKee permutation after
    /// [`crate::driver::drive_cm`], plus the parallel-expansion count.
    pub fn into_cm_permutation(self) -> (Permutation, usize) {
        let new_of_old: Vec<Vidx> = self.ws.order[..self.n].iter().map(|&l| l as Vidx).collect();
        (
            Permutation::from_new_of_old(new_of_old).expect("labels form a bijection"),
            self.parallel_levels,
        )
    }

    fn dense(&self, which: DenseTarget) -> &[Label] {
        match which {
            DenseTarget::Order => &self.ws.order[..self.n],
            DenseTarget::Levels => &self.ws.levels[..self.n],
        }
    }

    /// Load `x` into the pool's frontier array and return the base label.
    ///
    /// When the stored values are the consecutive labels of the previous
    /// SORTPERM batch, position `k` of the pool frontier must hold the
    /// vertex labeled `base + k` so expansion emits true parent labels.
    /// Otherwise (BFS sweeps, level stamps: all values equal) positions are
    /// only dedup keys and entry order is used. A mix of duplicated and
    /// distinct values is outside this backend's contract — the occupancy
    /// check turns it into a loud panic instead of a silently corrupted
    /// frontier.
    fn load_frontier(&mut self, x: &[(Vidx, Label)]) -> Vidx {
        let min = x.iter().map(|&(_, v)| v).min().unwrap_or(0);
        let max = x.iter().map(|&(_, v)| v).max().unwrap_or(-1);
        let consecutive = !x.is_empty() && (max - min + 1) as usize == x.len();
        let base: Vidx = if consecutive { min as Vidx } else { 0 };
        self.exec.with_state(|_, frontier| {
            frontier.clear();
            if consecutive {
                frontier.resize(x.len(), Vidx::MAX);
                for &(v, value) in x {
                    frontier[(value - min) as usize] = v;
                }
                assert!(
                    !frontier.contains(&Vidx::MAX),
                    "PooledBackend frontier values must be all-equal or distinct \
                     consecutive labels"
                );
            } else {
                frontier.extend(x.iter().map(|&(v, _)| v));
            }
        });
        base
    }
}

impl RcmRuntime for PooledBackend<'_, '_> {
    /// `(vertex, value)` pairs; entry order is backend-private (the pool
    /// keeps its `(parent, degree, vertex)` bucket order).
    type Frontier = Vec<(Vidx, Label)>;

    fn n(&self) -> usize {
        self.n
    }

    fn set_phase(&mut self, phase: Phase) {
        self.phase = phase;
    }

    fn singleton(&mut self, v: Vidx, value: Label) -> Self::Frontier {
        vec![(v, value)]
    }

    fn is_nonempty(&mut self, x: &Self::Frontier) -> bool {
        !x.is_empty()
    }

    fn append(&mut self, acc: &mut Self::Frontier, x: &Self::Frontier) {
        acc.extend_from_slice(x);
    }

    fn stamp(&mut self, x: &mut Self::Frontier, value: Label) {
        for (_, v) in x.iter_mut() {
            *v = value;
        }
    }

    fn spmspv(&mut self, x: &Self::Frontier) -> Self::Frontier {
        let base = self.load_frontier(x);
        let parallel = self.exec.expand(base, &mut self.ws.cands);
        if parallel && self.phase == Phase::OrderingSpmspv {
            self.parallel_levels += 1;
        }
        self.ws
            .cands
            .iter()
            .map(|&(v, p, _)| (v, p as Label))
            .collect()
    }

    fn expand_pull(&mut self, x: &Self::Frontier, _which: DenseTarget) -> Self::Frontier {
        // The pool's unvisited bitmap mirrors both dense companions for the
        // vertices the current component can reach, so it *is* the pull
        // mask — the bottom-up pipeline already returns only unvisited
        // vertices, exactly what `SELECT` would keep.
        let base = self.load_frontier(x);
        let parallel = self.exec.expand_pull(base, &mut self.ws.cands);
        if parallel && self.phase == Phase::OrderingSpmspv {
            self.parallel_levels += 1;
        }
        self.ws
            .cands
            .iter()
            .map(|&(v, p, _)| (v, p as Label))
            .collect()
    }

    fn frontier_nnz(&mut self, x: &Self::Frontier) -> usize {
        x.len()
    }

    fn pull_profitable(&self) -> bool {
        // Pull's shared-memory payoff is skipping the per-edge atomic
        // `fetch_min` dedup, which only exists when workers actually run
        // concurrently.
        self.exec.nthreads() > 1
    }

    fn select_unvisited(&mut self, x: &Self::Frontier, which: DenseTarget) -> Self::Frontier {
        // The expansion already filtered against the pool's visited array
        // (which mirrors both companions), so this keeps everything — the
        // explicit filter documents and enforces the SELECT contract.
        let dense = self.dense(which);
        x.iter()
            .copied()
            .filter(|&(v, _)| dense[v as usize] == UNVISITED)
            .collect()
    }

    fn set_dense(&mut self, which: DenseTarget, x: &Self::Frontier) {
        match which {
            DenseTarget::Order => {
                for &(v, value) in x {
                    self.ws.order[v as usize] = value;
                }
            }
            DenseTarget::Levels => {
                for &(v, value) in x {
                    self.ws.levels[v as usize] = value;
                    self.ws.touched.push(v);
                }
            }
        }
        self.exec.with_state(|unvisited, _| {
            for &(v, _) in x {
                unvisited.remove(v);
            }
        });
    }

    fn set_dense_at(&mut self, which: DenseTarget, v: Vidx, value: Label) {
        match which {
            DenseTarget::Order => self.ws.order[v as usize] = value,
            DenseTarget::Levels => {
                self.ws.levels[v as usize] = value;
                self.ws.touched.push(v);
            }
        }
        self.exec.with_state(|unvisited, _| {
            unvisited.remove(v);
        });
    }

    fn gather_values(&mut self, x: &mut Self::Frontier, which: DenseTarget) {
        let dense = self.dense(which);
        for (v, value) in x.iter_mut() {
            *value = dense[*v as usize];
        }
    }

    fn reset_levels(&mut self) {
        // Undo the BFS marks (they all lie inside a not-yet-ordered
        // component, so unconditional unmarking is safe).
        for &v in &self.ws.touched {
            self.ws.levels[v as usize] = UNVISITED;
        }
        let touched = &self.ws.touched;
        self.exec.with_state(|unvisited, _| {
            for &v in touched {
                unvisited.insert(v);
            }
        });
        self.ws.touched.clear();
    }

    fn end_peripheral_search(&mut self) {
        // The BFS marks live in the shared unvisited bitmap the ordering
        // pass is about to own — roll them back.
        self.reset_levels();
    }

    fn sortperm(
        &mut self,
        x: &Self::Frontier,
        batch: (Label, Label),
        nv: Label,
    ) -> (Self::Frontier, usize) {
        // The pool already delivers (parent, degree, vertex) bucket order,
        // so this pass is a (cheap) verification sort for the general case
        // — a two-pass counting sort keyed on the batch's label range, like
        // the serial backend's.
        let degrees = self.exec.degrees();
        let sorted = counting_sortperm(x, batch, degrees, &mut self.ws.sort_scratch);
        let count = sorted.len();
        let labeled: Self::Frontier = sorted
            .iter()
            .enumerate()
            .map(|(k, &(_, v))| (v, nv + k as Label))
            .collect();
        (labeled, count)
    }

    fn argmin_degree(&mut self, x: &Self::Frontier) -> Option<Vidx> {
        let degrees = self.exec.degrees();
        x.iter()
            .map(|&(v, _)| v)
            .min_by_key(|&w| (degrees[w as usize], w))
    }

    fn find_unvisited_min_degree(&mut self) -> Option<Vidx> {
        let degrees = self.exec.degrees();
        (0..self.n)
            .filter(|&v| self.ws.order[v] == UNVISITED)
            .min_by_key(|&v| (degrees[v], v as Vidx))
            .map(|v| v as Vidx)
    }
}
