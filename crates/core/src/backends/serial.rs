//! [`SerialBackend`]: the Table-I primitives on sequential `rcm-sparse`
//! vectors — the *specification* backend every other one must match bit
//! for bit (the data path of the former `algebraic.rs` driver).
//!
//! The backend's allocation lifecycle is split in two, the pattern every
//! backend follows since the engine refactor:
//!
//! * **construct** — [`SerialWorkspace::new`] allocates nothing; buffers
//!   grow to the first installed matrix and then only ever grow
//!   ([`SerialWorkspace::growth_events`] counts when).
//! * **install** — [`SerialBackend::warm`] binds a matrix to a workspace:
//!   the active prefixes of the dense companions are reset to unvisited and
//!   the degree vector recomputed, all without allocating when the matrix
//!   is no larger than any the workspace has seen.
//!
//! [`SerialBackend::finish`] hands the warm workspace back for the next
//! ordering; [`SerialBackend::new`] remains the one-shot convenience that
//! owns a fresh workspace.

use crate::driver::{DenseTarget, RcmRuntime};
use rcm_sparse::{
    counting_sortperm, dense_set, spmspv, spmspv_pull, CscMatrix, DenseFrontier, Label,
    Permutation, PullBuffer, Select2ndMin, SortpermScratch, SparseVec, SpmspvWorkspace,
    VertexBitmap, Vidx, UNVISITED,
};

/// The grow-only, reusable state of a [`SerialBackend`]: dense ordering and
/// level companions (each shadowed by an unvisited-vertex bitmap so the
/// pull kernel can skip fully visited 64-vertex words in one compare), the
/// degree vector, and the SpMSpV scratch (sparse accumulator + dense pull
/// frontier + warm pull output buffer + SORTPERM counting-sort scratch).
/// Keep one per session and thread it through successive orderings to
/// amortize every allocation.
pub struct SerialWorkspace {
    degrees: Vec<Vidx>,
    order: Vec<Label>,
    levels: Vec<Label>,
    /// Vertices with `order[v] == UNVISITED`, bit per vertex.
    unvisited_order: VertexBitmap,
    /// Vertices with `levels[v] == UNVISITED`, bit per vertex.
    unvisited_levels: VertexBitmap,
    spa: SpmspvWorkspace<Label>,
    pull: DenseFrontier<Label>,
    pull_buf: PullBuffer<Label>,
    sort_scratch: SortpermScratch,
    growth_events: usize,
}

impl Default for SerialWorkspace {
    fn default() -> Self {
        SerialWorkspace::new()
    }
}

impl SerialWorkspace {
    /// Empty workspace; buffers grow on first install.
    pub fn new() -> Self {
        SerialWorkspace {
            degrees: Vec::new(),
            order: Vec::new(),
            levels: Vec::new(),
            unvisited_order: VertexBitmap::new(0),
            unvisited_levels: VertexBitmap::new(0),
            spa: SpmspvWorkspace::new(0),
            pull: DenseFrontier::new(0),
            pull_buf: PullBuffer::new(),
            sort_scratch: SortpermScratch::new(),
            growth_events: 0,
        }
    }

    /// Times any buffer had to grow (the first install counts once). A
    /// warm workspace re-installed on matrices no larger than any it has
    /// seen reports a stable count.
    pub fn growth_events(&self) -> usize {
        self.growth_events
            + self.spa.growth_events()
            + self.pull_buf.growth_events()
            + self.sort_scratch.growth_events()
    }

    /// Bind an `n`-vertex matrix: recompute degrees, reset the active
    /// prefix of both dense companions, pre-grow the SpMSpV scratch.
    /// Grow-only — no allocation when `n` is within the high-water mark.
    fn install(&mut self, a: &CscMatrix) {
        let n = a.n_rows();
        let dense_grew = self.order.capacity() < n || self.degrees.capacity() < n;
        a.degrees_into(&mut self.degrees);
        if self.order.len() < n {
            self.order.resize(n, UNVISITED);
            self.levels.resize(n, UNVISITED);
        }
        self.order[..n].fill(UNVISITED);
        self.levels[..n].fill(UNVISITED);
        // `|` not `||`: both bitmaps must be re-bound even when the first
        // one reports growth.
        let bits_grew = self.unvisited_order.reset_ones(n) | self.unvisited_levels.reset_ones(n);
        if dense_grew || bits_grew {
            self.growth_events += 1;
        }
        self.spa.ensure(n);
        self.pull.ensure(n);
        // Pre-grow the shape-dependent scratch to its n-bounded ceiling so
        // growth stays monotone in the matrix size: a level's pull results
        // and SORTPERM entries are both ≤ n, but their per-level peaks do
        // not track n (a 200-vertex star has a fatter level than a bigger
        // grid), so without this a warm workspace could grow on a smaller
        // matrix.
        self.pull_buf.ensure(n);
        self.sort_scratch.ensure(n);
    }
}

/// Sequential reference backend over [`rcm_sparse`] containers.
pub struct SerialBackend<'a> {
    a: &'a CscMatrix,
    n: usize,
    ws: SerialWorkspace,
    spmspv_work: usize,
}

impl<'a> SerialBackend<'a> {
    /// One-shot backend over a square symmetric pattern matrix (a fresh
    /// workspace per call; use [`SerialBackend::warm`] to amortize).
    pub fn new(a: &'a CscMatrix) -> Self {
        SerialBackend::warm(a, SerialWorkspace::new())
    }

    /// Backend over `a` reusing a warm workspace from a previous ordering
    /// (the engine's install phase). Recover the workspace afterwards with
    /// [`SerialBackend::finish`].
    pub fn warm(a: &'a CscMatrix, mut ws: SerialWorkspace) -> Self {
        assert_eq!(a.n_rows(), a.n_cols(), "RCM needs a square matrix");
        ws.install(a);
        SerialBackend {
            a,
            n: a.n_rows(),
            ws,
            spmspv_work: 0,
        }
    }

    fn dense(&self, which: DenseTarget) -> &[Label] {
        match which {
            DenseTarget::Order => &self.ws.order[..self.n],
            DenseTarget::Levels => &self.ws.levels[..self.n],
        }
    }

    /// The raw Cuthill-McKee labels after [`crate::driver::drive_cm`].
    pub fn into_order(self) -> Vec<Label> {
        self.ws.order[..self.n].to_vec()
    }

    /// The (unreversed) Cuthill-McKee permutation after
    /// [`crate::driver::drive_cm`].
    pub fn into_cm_permutation(self) -> Permutation {
        self.finish().0
    }

    /// The (unreversed) Cuthill-McKee permutation plus the warm workspace,
    /// ready for the next install.
    pub fn finish(self) -> (Permutation, SerialWorkspace) {
        let new_of_old: Vec<Vidx> = self.ws.order[..self.n].iter().map(|&l| l as Vidx).collect();
        (
            Permutation::from_new_of_old(new_of_old).expect("labels form a bijection"),
            self.ws,
        )
    }
}

impl RcmRuntime for SerialBackend<'_> {
    type Frontier = SparseVec<Label>;

    fn n(&self) -> usize {
        self.n
    }

    fn singleton(&mut self, v: Vidx, value: Label) -> SparseVec<Label> {
        SparseVec::singleton(self.n, v, value)
    }

    fn is_nonempty(&mut self, x: &SparseVec<Label>) -> bool {
        !x.is_empty()
    }

    fn frontier_nnz(&mut self, x: &SparseVec<Label>) -> usize {
        x.nnz()
    }

    fn pull_profitable(&self) -> bool {
        // One core, no communication, no atomics: the SPA push is already
        // optimal and min-label pull cannot early-exit, so the adaptive
        // policy stays push-only here (forced pull still works and is what
        // the equivalence suite sweeps).
        false
    }

    fn append(&mut self, acc: &mut SparseVec<Label>, x: &SparseVec<Label>) {
        // The accumulator feeds only `sortperm`, which does a full tuple
        // sort — keeping it index-sorted here would be wasted work.
        acc.entries_mut().extend_from_slice(x.entries());
    }

    fn stamp(&mut self, x: &mut SparseVec<Label>, value: Label) {
        x.map_values(|_, _| value);
    }

    fn spmspv(&mut self, x: &SparseVec<Label>) -> SparseVec<Label> {
        let (y, work) = spmspv::<Label, Select2ndMin>(self.a, x, &mut self.ws.spa);
        self.spmspv_work += work;
        y
    }

    fn select_unvisited(&mut self, x: &SparseVec<Label>, which: DenseTarget) -> SparseVec<Label> {
        x.select(self.dense(which), |l| l == UNVISITED)
    }

    fn expand_pull(&mut self, x: &SparseVec<Label>, which: DenseTarget) -> SparseVec<Label> {
        // Sparse → dense conversion of the dual representation, then the
        // bitmap-masked row-scan kernel over the unvisited rows (all-visited
        // words cost one compare each) into the warm output buffer.
        let ws = &mut self.ws;
        ws.pull.load(x);
        let cands = match which {
            DenseTarget::Order => &ws.unvisited_order,
            DenseTarget::Levels => &ws.unvisited_levels,
        };
        self.spmspv_work +=
            spmspv_pull::<Label, Select2ndMin>(self.a, &ws.pull, cands, &mut ws.pull_buf);
        ws.pull_buf.to_sparse(self.n)
    }

    fn set_dense(&mut self, which: DenseTarget, x: &SparseVec<Label>) {
        // Only the active prefix of the warm (possibly longer) buffer; the
        // unvisited bitmap shadows every write.
        let ws = &mut self.ws;
        let (dense, bits) = match which {
            DenseTarget::Order => (&mut ws.order[..self.n], &mut ws.unvisited_order),
            DenseTarget::Levels => (&mut ws.levels[..self.n], &mut ws.unvisited_levels),
        };
        dense_set(dense, x);
        for &(v, value) in x.entries() {
            if value == UNVISITED {
                bits.insert(v);
            } else {
                bits.remove(v);
            }
        }
    }

    fn set_dense_at(&mut self, which: DenseTarget, v: Vidx, value: Label) {
        let ws = &mut self.ws;
        let (dense, bits) = match which {
            DenseTarget::Order => (&mut ws.order, &mut ws.unvisited_order),
            DenseTarget::Levels => (&mut ws.levels, &mut ws.unvisited_levels),
        };
        dense[v as usize] = value;
        if value == UNVISITED {
            bits.insert(v);
        } else {
            bits.remove(v);
        }
    }

    fn gather_values(&mut self, x: &mut SparseVec<Label>, which: DenseTarget) {
        match which {
            DenseTarget::Order => x.gather_from_dense(&self.ws.order[..self.n]),
            DenseTarget::Levels => x.gather_from_dense(&self.ws.levels[..self.n]),
        }
    }

    fn reset_levels(&mut self) {
        self.ws.levels[..self.n].fill(UNVISITED);
        self.ws.unvisited_levels.reset_ones(self.n);
    }

    fn sortperm(
        &mut self,
        x: &SparseVec<Label>,
        batch: (Label, Label),
        nv: Label,
    ) -> (SparseVec<Label>, usize) {
        // Parent labels fall in the previous level's half-open `batch`
        // range, so a two-pass counting sort keyed on the label replaces
        // the full (value, degree, vertex) tuple sort — bit-identical
        // because the per-bucket (degree, vertex) sort is the same
        // tie-break over unique vertex ids.
        let ws = &mut self.ws;
        let sorted = counting_sortperm(x.entries(), batch, &ws.degrees, &mut ws.sort_scratch);
        let count = sorted.len();
        let labeled: Vec<(Vidx, Label)> = sorted
            .iter()
            .enumerate()
            .map(|(k, &(_, v))| (v, nv + k as Label))
            .collect();
        (SparseVec::from_entries(self.n, labeled), count)
    }

    fn argmin_degree(&mut self, x: &SparseVec<Label>) -> Option<Vidx> {
        x.ind().min_by_key(|&w| (self.ws.degrees[w as usize], w))
    }

    fn find_unvisited_min_degree(&mut self) -> Option<Vidx> {
        // Iterate the unvisited bitmap instead of testing every label:
        // fully visited 64-vertex words cost one compare each, and the
        // ascending-index iteration keeps the tie-break identical.
        self.ws
            .unvisited_order
            .ones()
            .min_by_key(|&v| (self.ws.degrees[v as usize], v))
    }

    fn spmspv_work(&self) -> usize {
        self.spmspv_work
    }
}
