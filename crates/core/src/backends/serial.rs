//! [`SerialBackend`]: the Table-I primitives on sequential `rcm-sparse`
//! vectors — the *specification* backend every other one must match bit
//! for bit (the data path of the former `algebraic.rs` driver).
//!
//! The backend's allocation lifecycle is split in two, the pattern every
//! backend follows since the engine refactor:
//!
//! * **construct** — [`SerialWorkspace::new`] allocates nothing; buffers
//!   grow to the first installed matrix and then only ever grow
//!   ([`SerialWorkspace::growth_events`] counts when).
//! * **install** — [`SerialBackend::warm`] binds a matrix to a workspace:
//!   the active prefixes of the dense companions are reset to unvisited and
//!   the degree vector recomputed, all without allocating when the matrix
//!   is no larger than any the workspace has seen.
//!
//! [`SerialBackend::finish`] hands the warm workspace back for the next
//! ordering; [`SerialBackend::new`] remains the one-shot convenience that
//! owns a fresh workspace.

use crate::driver::{DenseTarget, RcmRuntime};
use rcm_sparse::{
    dense_set, spmspv, spmspv_pull, CscMatrix, DenseFrontier, Label, Permutation, Select2ndMin,
    SparseVec, SpmspvWorkspace, Vidx, UNVISITED,
};

/// The grow-only, reusable state of a [`SerialBackend`]: dense ordering and
/// level companions, the degree vector, and the SpMSpV scratch (sparse
/// accumulator + dense pull frontier). Keep one per session and thread it
/// through successive orderings to amortize every allocation.
pub struct SerialWorkspace {
    degrees: Vec<Vidx>,
    order: Vec<Label>,
    levels: Vec<Label>,
    spa: SpmspvWorkspace<Label>,
    pull: DenseFrontier<Label>,
    growth_events: usize,
}

impl Default for SerialWorkspace {
    fn default() -> Self {
        SerialWorkspace::new()
    }
}

impl SerialWorkspace {
    /// Empty workspace; buffers grow on first install.
    pub fn new() -> Self {
        SerialWorkspace {
            degrees: Vec::new(),
            order: Vec::new(),
            levels: Vec::new(),
            spa: SpmspvWorkspace::new(0),
            pull: DenseFrontier::new(0),
            growth_events: 0,
        }
    }

    /// Times any buffer had to grow (the first install counts once). A
    /// warm workspace re-installed on matrices no larger than any it has
    /// seen reports a stable count.
    pub fn growth_events(&self) -> usize {
        self.growth_events + self.spa.growth_events()
    }

    /// Bind an `n`-vertex matrix: recompute degrees, reset the active
    /// prefix of both dense companions, pre-grow the SpMSpV scratch.
    /// Grow-only — no allocation when `n` is within the high-water mark.
    fn install(&mut self, a: &CscMatrix) {
        let n = a.n_rows();
        if self.order.capacity() < n || self.degrees.capacity() < n {
            self.growth_events += 1;
        }
        a.degrees_into(&mut self.degrees);
        if self.order.len() < n {
            self.order.resize(n, UNVISITED);
            self.levels.resize(n, UNVISITED);
        }
        self.order[..n].fill(UNVISITED);
        self.levels[..n].fill(UNVISITED);
        self.spa.ensure(n);
        self.pull.ensure(n);
    }
}

/// Sequential reference backend over [`rcm_sparse`] containers.
pub struct SerialBackend<'a> {
    a: &'a CscMatrix,
    n: usize,
    ws: SerialWorkspace,
    spmspv_work: usize,
}

impl<'a> SerialBackend<'a> {
    /// One-shot backend over a square symmetric pattern matrix (a fresh
    /// workspace per call; use [`SerialBackend::warm`] to amortize).
    pub fn new(a: &'a CscMatrix) -> Self {
        SerialBackend::warm(a, SerialWorkspace::new())
    }

    /// Backend over `a` reusing a warm workspace from a previous ordering
    /// (the engine's install phase). Recover the workspace afterwards with
    /// [`SerialBackend::finish`].
    pub fn warm(a: &'a CscMatrix, mut ws: SerialWorkspace) -> Self {
        assert_eq!(a.n_rows(), a.n_cols(), "RCM needs a square matrix");
        ws.install(a);
        SerialBackend {
            a,
            n: a.n_rows(),
            ws,
            spmspv_work: 0,
        }
    }

    fn dense(&self, which: DenseTarget) -> &[Label] {
        match which {
            DenseTarget::Order => &self.ws.order[..self.n],
            DenseTarget::Levels => &self.ws.levels[..self.n],
        }
    }

    /// The raw Cuthill-McKee labels after [`crate::driver::drive_cm`].
    pub fn into_order(self) -> Vec<Label> {
        self.ws.order[..self.n].to_vec()
    }

    /// The (unreversed) Cuthill-McKee permutation after
    /// [`crate::driver::drive_cm`].
    pub fn into_cm_permutation(self) -> Permutation {
        self.finish().0
    }

    /// The (unreversed) Cuthill-McKee permutation plus the warm workspace,
    /// ready for the next install.
    pub fn finish(self) -> (Permutation, SerialWorkspace) {
        let new_of_old: Vec<Vidx> = self.ws.order[..self.n].iter().map(|&l| l as Vidx).collect();
        (
            Permutation::from_new_of_old(new_of_old).expect("labels form a bijection"),
            self.ws,
        )
    }
}

impl RcmRuntime for SerialBackend<'_> {
    type Frontier = SparseVec<Label>;

    fn n(&self) -> usize {
        self.n
    }

    fn singleton(&mut self, v: Vidx, value: Label) -> SparseVec<Label> {
        SparseVec::singleton(self.n, v, value)
    }

    fn is_nonempty(&mut self, x: &SparseVec<Label>) -> bool {
        !x.is_empty()
    }

    fn frontier_nnz(&mut self, x: &SparseVec<Label>) -> usize {
        x.nnz()
    }

    fn pull_profitable(&self) -> bool {
        // One core, no communication, no atomics: the SPA push is already
        // optimal and min-label pull cannot early-exit, so the adaptive
        // policy stays push-only here (forced pull still works and is what
        // the equivalence suite sweeps).
        false
    }

    fn append(&mut self, acc: &mut SparseVec<Label>, x: &SparseVec<Label>) {
        // The accumulator feeds only `sortperm`, which does a full tuple
        // sort — keeping it index-sorted here would be wasted work.
        acc.entries_mut().extend_from_slice(x.entries());
    }

    fn stamp(&mut self, x: &mut SparseVec<Label>, value: Label) {
        x.map_values(|_, _| value);
    }

    fn spmspv(&mut self, x: &SparseVec<Label>) -> SparseVec<Label> {
        let (y, work) = spmspv::<Label, Select2ndMin>(self.a, x, &mut self.ws.spa);
        self.spmspv_work += work;
        y
    }

    fn select_unvisited(&mut self, x: &SparseVec<Label>, which: DenseTarget) -> SparseVec<Label> {
        x.select(self.dense(which), |l| l == UNVISITED)
    }

    fn expand_pull(&mut self, x: &SparseVec<Label>, which: DenseTarget) -> SparseVec<Label> {
        // Sparse → dense conversion of the dual representation, then the
        // masked row-scan kernel over the unvisited rows.
        self.ws.pull.load(x);
        let dense = match which {
            DenseTarget::Order => &self.ws.order,
            DenseTarget::Levels => &self.ws.levels,
        };
        let (y, work) = spmspv_pull::<Label, Select2ndMin>(self.a, &self.ws.pull, |r| {
            dense[r as usize] == UNVISITED
        });
        self.spmspv_work += work;
        y
    }

    fn set_dense(&mut self, which: DenseTarget, x: &SparseVec<Label>) {
        // Only the active prefix of the warm (possibly longer) buffer.
        match which {
            DenseTarget::Order => dense_set(&mut self.ws.order[..self.n], x),
            DenseTarget::Levels => dense_set(&mut self.ws.levels[..self.n], x),
        }
    }

    fn set_dense_at(&mut self, which: DenseTarget, v: Vidx, value: Label) {
        match which {
            DenseTarget::Order => self.ws.order[v as usize] = value,
            DenseTarget::Levels => self.ws.levels[v as usize] = value,
        }
    }

    fn gather_values(&mut self, x: &mut SparseVec<Label>, which: DenseTarget) {
        match which {
            DenseTarget::Order => x.gather_from_dense(&self.ws.order[..self.n]),
            DenseTarget::Levels => x.gather_from_dense(&self.ws.levels[..self.n]),
        }
    }

    fn reset_levels(&mut self) {
        self.ws.levels[..self.n].fill(UNVISITED);
    }

    fn sortperm(
        &mut self,
        x: &SparseVec<Label>,
        batch: (Label, Label),
        nv: Label,
    ) -> (SparseVec<Label>, usize) {
        let mut tuples: Vec<(Label, Vidx, Vidx)> = x
            .entries()
            .iter()
            .map(|&(v, value)| {
                debug_assert!(
                    value >= batch.0 && value < batch.1,
                    "SORTPERM: value outside the declared bucket range"
                );
                (value, self.ws.degrees[v as usize], v)
            })
            .collect();
        tuples.sort_unstable();
        let count = tuples.len();
        let labeled: Vec<(Vidx, Label)> = tuples
            .iter()
            .enumerate()
            .map(|(k, &(_, _, v))| (v, nv + k as Label))
            .collect();
        (SparseVec::from_entries(self.n, labeled), count)
    }

    fn argmin_degree(&mut self, x: &SparseVec<Label>) -> Option<Vidx> {
        x.ind().min_by_key(|&w| (self.ws.degrees[w as usize], w))
    }

    fn find_unvisited_min_degree(&mut self) -> Option<Vidx> {
        (0..self.n)
            .filter(|&v| self.ws.order[v] == UNVISITED)
            .min_by_key(|&v| (self.ws.degrees[v], v as Vidx))
            .map(|v| v as Vidx)
    }

    fn spmspv_work(&self) -> usize {
        self.spmspv_work
    }
}
