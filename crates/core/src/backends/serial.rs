//! [`SerialBackend`]: the Table-I primitives on sequential `rcm-sparse`
//! vectors — the *specification* backend every other one must match bit
//! for bit (the data path of the former `algebraic.rs` driver).

use crate::driver::{DenseTarget, RcmRuntime};
use rcm_sparse::{
    dense_set, spmspv, spmspv_pull, CscMatrix, DenseFrontier, Label, Permutation, Select2ndMin,
    SparseVec, SpmspvWorkspace, Vidx, UNVISITED,
};

/// Sequential reference backend over [`rcm_sparse`] containers.
pub struct SerialBackend<'a> {
    a: &'a CscMatrix,
    degrees: Vec<Vidx>,
    order: Vec<Label>,
    levels: Vec<Label>,
    ws: SpmspvWorkspace<Label>,
    /// Dense half of the dual frontier representation — the pull
    /// expansion's O(1)-membership scatter, reused across levels.
    pull: DenseFrontier<Label>,
    spmspv_work: usize,
}

impl<'a> SerialBackend<'a> {
    /// Backend over a square symmetric pattern matrix.
    pub fn new(a: &'a CscMatrix) -> Self {
        assert_eq!(a.n_rows(), a.n_cols(), "RCM needs a square matrix");
        let n = a.n_rows();
        SerialBackend {
            a,
            degrees: a.degrees(),
            order: vec![UNVISITED; n],
            levels: vec![UNVISITED; n],
            ws: SpmspvWorkspace::new(n),
            pull: DenseFrontier::new(n),
            spmspv_work: 0,
        }
    }

    fn dense(&self, which: DenseTarget) -> &[Label] {
        match which {
            DenseTarget::Order => &self.order,
            DenseTarget::Levels => &self.levels,
        }
    }

    fn dense_mut(&mut self, which: DenseTarget) -> &mut [Label] {
        match which {
            DenseTarget::Order => &mut self.order,
            DenseTarget::Levels => &mut self.levels,
        }
    }

    /// The raw Cuthill-McKee labels after [`crate::driver::drive_cm`].
    pub fn into_order(self) -> Vec<Label> {
        self.order
    }

    /// The (unreversed) Cuthill-McKee permutation after
    /// [`crate::driver::drive_cm`].
    pub fn into_cm_permutation(self) -> Permutation {
        let new_of_old: Vec<Vidx> = self.order.iter().map(|&l| l as Vidx).collect();
        Permutation::from_new_of_old(new_of_old).expect("labels form a bijection")
    }
}

impl RcmRuntime for SerialBackend<'_> {
    type Frontier = SparseVec<Label>;

    fn n(&self) -> usize {
        self.a.n_rows()
    }

    fn singleton(&mut self, v: Vidx, value: Label) -> SparseVec<Label> {
        SparseVec::singleton(self.n(), v, value)
    }

    fn is_nonempty(&mut self, x: &SparseVec<Label>) -> bool {
        !x.is_empty()
    }

    fn frontier_nnz(&mut self, x: &SparseVec<Label>) -> usize {
        x.nnz()
    }

    fn pull_profitable(&self) -> bool {
        // One core, no communication, no atomics: the SPA push is already
        // optimal and min-label pull cannot early-exit, so the adaptive
        // policy stays push-only here (forced pull still works and is what
        // the equivalence suite sweeps).
        false
    }

    fn append(&mut self, acc: &mut SparseVec<Label>, x: &SparseVec<Label>) {
        // The accumulator feeds only `sortperm`, which does a full tuple
        // sort — keeping it index-sorted here would be wasted work.
        acc.entries_mut().extend_from_slice(x.entries());
    }

    fn stamp(&mut self, x: &mut SparseVec<Label>, value: Label) {
        x.map_values(|_, _| value);
    }

    fn spmspv(&mut self, x: &SparseVec<Label>) -> SparseVec<Label> {
        let (y, work) = spmspv::<Label, Select2ndMin>(self.a, x, &mut self.ws);
        self.spmspv_work += work;
        y
    }

    fn select_unvisited(&mut self, x: &SparseVec<Label>, which: DenseTarget) -> SparseVec<Label> {
        x.select(self.dense(which), |l| l == UNVISITED)
    }

    fn expand_pull(&mut self, x: &SparseVec<Label>, which: DenseTarget) -> SparseVec<Label> {
        // Sparse → dense conversion of the dual representation, then the
        // masked row-scan kernel over the unvisited rows.
        self.pull.load(x);
        let dense = match which {
            DenseTarget::Order => &self.order,
            DenseTarget::Levels => &self.levels,
        };
        let (y, work) = spmspv_pull::<Label, Select2ndMin>(self.a, &self.pull, |r| {
            dense[r as usize] == UNVISITED
        });
        self.spmspv_work += work;
        y
    }

    fn set_dense(&mut self, which: DenseTarget, x: &SparseVec<Label>) {
        dense_set(self.dense_mut(which), x);
    }

    fn set_dense_at(&mut self, which: DenseTarget, v: Vidx, value: Label) {
        self.dense_mut(which)[v as usize] = value;
    }

    fn gather_values(&mut self, x: &mut SparseVec<Label>, which: DenseTarget) {
        match which {
            DenseTarget::Order => x.gather_from_dense(&self.order),
            DenseTarget::Levels => x.gather_from_dense(&self.levels),
        }
    }

    fn reset_levels(&mut self) {
        self.levels.fill(UNVISITED);
    }

    fn sortperm(
        &mut self,
        x: &SparseVec<Label>,
        batch: (Label, Label),
        nv: Label,
    ) -> (SparseVec<Label>, usize) {
        let mut tuples: Vec<(Label, Vidx, Vidx)> = x
            .entries()
            .iter()
            .map(|&(v, value)| {
                debug_assert!(
                    value >= batch.0 && value < batch.1,
                    "SORTPERM: value outside the declared bucket range"
                );
                (value, self.degrees[v as usize], v)
            })
            .collect();
        tuples.sort_unstable();
        let count = tuples.len();
        let labeled: Vec<(Vidx, Label)> = tuples
            .iter()
            .enumerate()
            .map(|(k, &(_, _, v))| (v, nv + k as Label))
            .collect();
        (SparseVec::from_entries(self.n(), labeled), count)
    }

    fn argmin_degree(&mut self, x: &SparseVec<Label>) -> Option<Vidx> {
        x.ind().min_by_key(|&w| (self.degrees[w as usize], w))
    }

    fn find_unvisited_min_degree(&mut self) -> Option<Vidx> {
        (0..self.n())
            .filter(|&v| self.order[v] == UNVISITED)
            .min_by_key(|&v| (self.degrees[v], v as Vidx))
            .map(|v| v as Vidx)
    }

    fn spmspv_work(&self) -> usize {
        self.spmspv_work
    }
}
