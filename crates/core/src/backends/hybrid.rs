//! [`HybridBackend`]: the Fig. 6 MPI×OpenMP configuration — a
//! [`DistBackend`] whose processes are multithreaded.
//!
//! The data path is identical to the flat backend (the permutation cannot
//! depend on the thread count); what changes is the cost model: every
//! compute charge is divided by [`rcm_dist::MachineModel::thread_speedup`]
//! for the configured `threads_per_proc`, while communication is charged
//! undivided — exactly the trade the paper sweeps in Fig. 6 (fewer, fatter
//! processes ⇒ a smaller process grid, cheaper collectives, sub-linear
//! compute speedup).

use crate::backends::DistBackend;
use crate::distributed::{DistRcmConfig, DistRcmResult};
use crate::driver::{DenseTarget, DriverStats, RcmRuntime};
use rcm_dist::Phase;
use rcm_sparse::{CscMatrix, Label, Vidx};

/// The MPI×OpenMP backend: a [`DistBackend`] with `threads_per_proc > 1`.
pub struct HybridBackend(DistBackend);

impl HybridBackend {
    /// Distribute `a` over `config`'s grid with multithreaded processes.
    ///
    /// Panics when `config.hybrid.threads_per_proc <= 1` (that is the flat
    /// [`DistBackend`]) or when the process count is not a perfect square.
    pub fn new(a: &CscMatrix, config: &DistRcmConfig) -> Self {
        HybridBackend::warm(a, config, rcm_dist::DistSpmspvWorkspace::new())
    }

    /// [`HybridBackend::new`] reusing a warm SpMSpV workspace (see
    /// [`DistBackend::warm`]).
    pub fn warm(
        a: &CscMatrix,
        config: &DistRcmConfig,
        ws: rcm_dist::DistSpmspvWorkspace<rcm_sparse::Label>,
    ) -> Self {
        assert!(
            config.hybrid.threads_per_proc > 1,
            "HybridBackend needs threads_per_proc > 1 (got {}); use DistBackend for flat MPI",
            config.hybrid.threads_per_proc
        );
        HybridBackend(DistBackend::warm(a, config, ws))
    }

    /// See [`DistBackend::into_result`].
    pub fn into_result(self, stats: DriverStats) -> DistRcmResult {
        self.0.into_result(stats)
    }

    /// See [`DistBackend::into_result_warm`].
    pub fn into_result_warm(
        self,
        stats: DriverStats,
    ) -> (
        DistRcmResult,
        rcm_dist::DistSpmspvWorkspace<rcm_sparse::Label>,
    ) {
        self.0.into_result_warm(stats)
    }
}

impl RcmRuntime for HybridBackend {
    type Frontier = <DistBackend as RcmRuntime>::Frontier;

    fn n(&self) -> usize {
        self.0.n()
    }

    fn set_phase(&mut self, phase: Phase) {
        self.0.set_phase(phase);
    }

    fn now(&self) -> f64 {
        self.0.now()
    }

    fn singleton(&mut self, v: Vidx, value: Label) -> Self::Frontier {
        self.0.singleton(v, value)
    }

    fn is_nonempty(&mut self, x: &Self::Frontier) -> bool {
        self.0.is_nonempty(x)
    }

    fn frontier_nnz(&mut self, x: &Self::Frontier) -> usize {
        self.0.frontier_nnz(x)
    }

    fn append(&mut self, acc: &mut Self::Frontier, x: &Self::Frontier) {
        self.0.append(acc, x);
    }

    fn stamp(&mut self, x: &mut Self::Frontier, value: Label) {
        self.0.stamp(x, value);
    }

    fn spmspv(&mut self, x: &Self::Frontier) -> Self::Frontier {
        self.0.spmspv(x)
    }

    fn select_unvisited(&mut self, x: &Self::Frontier, which: DenseTarget) -> Self::Frontier {
        self.0.select_unvisited(x, which)
    }

    fn expand_pull(&mut self, x: &Self::Frontier, which: DenseTarget) -> Self::Frontier {
        // Same dense-allgather data path; the pull scan's compute is
        // divided by `thread_speedup` through the shared clock, while the
        // dense allgather is charged undivided — the Fig. 6 trade applies
        // to both directions.
        self.0.expand_pull(x, which)
    }

    fn set_dense(&mut self, which: DenseTarget, x: &Self::Frontier) {
        self.0.set_dense(which, x);
    }

    fn set_dense_at(&mut self, which: DenseTarget, v: Vidx, value: Label) {
        self.0.set_dense_at(which, v, value);
    }

    fn gather_values(&mut self, x: &mut Self::Frontier, which: DenseTarget) {
        self.0.gather_values(x, which);
    }

    fn reset_levels(&mut self) {
        self.0.reset_levels();
    }

    fn end_peripheral_search(&mut self) {
        self.0.end_peripheral_search();
    }

    fn sortperm(
        &mut self,
        x: &Self::Frontier,
        batch: (Label, Label),
        nv: Label,
    ) -> (Self::Frontier, usize) {
        self.0.sortperm(x, batch, nv)
    }

    fn argmin_degree(&mut self, x: &Self::Frontier) -> Option<Vidx> {
        self.0.argmin_degree(x)
    }

    fn find_unvisited_min_degree(&mut self) -> Option<Vidx> {
        self.0.find_unvisited_min_degree()
    }
}
