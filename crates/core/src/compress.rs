//! Supervariable compression: order the quotient graph of indistinguishable
//! vertices, then expand.
//!
//! FEM matrices couple every degree of freedom of a node with every dof of
//! neighbouring nodes, so the `d` dofs of one node have *identical closed
//! neighbourhoods* (`adj(u) ∪ {u}`). Classic ordering codes (SPARSPAK, and
//! the SpMP baseline the paper compares against) detect these
//! "indistinguishable" vertices, order the compressed quotient graph, and
//! expand — cutting ordering time by up to the dof count without hurting
//! quality. Three of the paper's matrices (`ldoor` 2 dofs, `audikw_1` and
//! `dielFilterV3real`/`Flan_1565` 3 dofs) compress substantially.
//!
//! [`rcm_compressed`] applies George–Liu RCM to the quotient with
//! *expanded* degrees (each supervariable counts the vertices behind its
//! neighbours) so the degree-based tie-breaking matches what plain RCM sees.

use crate::peripheral::pseudo_peripheral_with_degrees;
use rcm_sparse::{CscMatrix, Permutation, Vidx};

/// Outcome statistics of compression.
#[derive(Clone, Debug, PartialEq)]
pub struct CompressStats {
    /// Vertices of the original graph.
    pub vertices: usize,
    /// Supervariables after compression.
    pub supervariables: usize,
    /// `vertices / supervariables`.
    pub ratio: f64,
}

/// Group vertices by identical closed neighbourhoods.
///
/// Returns `(super_of, members)`: the supervariable id of each vertex, and
/// each supervariable's member list (ascending vertex ids).
pub fn find_supervariables(a: &CscMatrix) -> (Vec<Vidx>, Vec<Vec<Vidx>>) {
    let n = a.n_rows();
    // Hash the closed neighbourhood (adjacency plus self). A *commutative*
    // per-element mix keeps the hash independent of adjacency order, so no
    // sorted copy is needed and the loop pipelines well; exact verification
    // below makes hash collisions harmless.
    #[inline]
    fn mix(w: Vidx) -> u64 {
        let mut x = (w as u64).wrapping_add(0x9e3779b97f4a7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        x ^ (x >> 27)
    }
    let mut keyed: Vec<(u64, u32, Vidx)> = Vec::with_capacity(n);
    for v in 0..n {
        let mut h = 0u64;
        let mut len = 1u32; // the closed set always contains v itself
        for &w in a.col(v) {
            if w as usize == v {
                continue; // already counted as "self"
            }
            h = h.wrapping_add(mix(w));
            len += 1;
        }
        h = h.wrapping_add(mix(v as Vidx));
        keyed.push((h, len, v as Vidx));
    }
    // Sort-based grouping (cheaper and more cache-friendly than a hash map
    // for this one-shot pass); ties keep ascending vertex order.
    keyed.sort_unstable();

    let mut super_of = vec![Vidx::MAX; n];
    let mut members: Vec<Vec<Vidx>> = Vec::new();
    let mut groups: Vec<Vec<Vidx>> = Vec::new();
    // Allocation-free closed-neighbourhood equality: walk both adjacency
    // lists with the vertex itself virtually inserted.
    let closed_eq = |u: Vidx, v: Vidx| -> bool {
        let merged = |x: Vidx| {
            let col = a.col(x as usize);
            let mut inserted = col.binary_search(&x).is_ok();
            let mut it = col.iter().copied().peekable();
            std::iter::from_fn(move || {
                if !inserted {
                    match it.peek() {
                        Some(&w) if w < x => return it.next(),
                        _ => {
                            inserted = true;
                            return Some(x);
                        }
                    }
                }
                it.next()
            })
        };
        merged(u).eq(merged(v))
    };
    let mut i = 0usize;
    while i < keyed.len() {
        let mut j = i + 1;
        while j < keyed.len() && keyed[j].0 == keyed[i].0 && keyed[j].1 == keyed[i].1 {
            j += 1;
        }
        if j == i + 1 {
            groups.push(vec![keyed[i].2]);
        } else {
            // Verify exact equality within the hash bucket.
            let mut bucket: Vec<Vidx> = keyed[i..j].iter().map(|k| k.2).collect();
            while let Some(&rep) = bucket.first() {
                if bucket.len() == 1 {
                    groups.push(bucket);
                    break;
                }
                let (same, rest): (Vec<Vidx>, Vec<Vidx>) =
                    bucket.iter().partition(|&&v| closed_eq(rep, v));
                groups.push(same);
                bucket = rest;
            }
        }
        i = j;
    }
    groups.sort_unstable_by_key(|g| g[0]);
    for g in groups {
        let id = members.len() as Vidx;
        for &v in &g {
            super_of[v as usize] = id;
        }
        members.push(g);
    }
    (super_of, members)
}

/// RCM via supervariable compression. Returns the ordering (on the original
/// vertices) and the compression statistics.
pub fn rcm_compressed(a: &CscMatrix) -> (Permutation, CompressStats) {
    assert_eq!(a.n_rows(), a.n_cols());
    let n = a.n_rows();
    let (super_of, members) = find_supervariables(a);
    let ns = members.len();
    let stats = CompressStats {
        vertices: n,
        supervariables: ns,
        ratio: if ns == 0 { 1.0 } else { n as f64 / ns as f64 },
    };

    // Compression below ~15% does not pay for the quotient construction:
    // fall back to plain RCM (this is what production ordering codes do).
    if ns as f64 > 0.85 * n as f64 {
        let (perm, _) = crate::serial::rcm(a);
        return (perm, stats);
    }

    // Quotient graph: the representative's adjacency, mapped to super ids.
    // Built column-by-column straight into CSC (each column needs only a
    // small local sort; no global triplet sort).
    let mut col_ptr = vec![0usize; ns + 1];
    let mut row_idx: Vec<Vidx> = Vec::with_capacity(a.nnz() / 2);
    let mut nbrs: Vec<Vidx> = Vec::new();
    for (sid, group) in members.iter().enumerate() {
        let rep = group[0];
        nbrs.clear();
        nbrs.extend(
            a.col(rep as usize)
                .iter()
                .map(|&w| super_of[w as usize])
                .filter(|&s| s != sid as Vidx),
        );
        nbrs.sort_unstable();
        nbrs.dedup();
        row_idx.extend_from_slice(&nbrs);
        col_ptr[sid + 1] = row_idx.len();
    }
    let q = CscMatrix::from_parts(ns, ns, col_ptr, row_idx);

    // Expanded degrees: a supervariable's degree counts original vertices.
    let expanded_deg: Vec<Vidx> = (0..ns)
        .map(|sid| {
            let within = members[sid].len() as Vidx - 1;
            let outside: Vidx = q
                .col(sid)
                .iter()
                .map(|&s| members[s as usize].len() as Vidx)
                .sum();
            within + outside
        })
        .collect();

    // George–Liu CM on the quotient with expanded degrees.
    let mut label_of = vec![Vidx::MAX; ns];
    let mut order: Vec<Vidx> = Vec::with_capacity(ns);
    let mut children: Vec<Vidx> = Vec::new();
    while order.len() < ns {
        let seed = (0..ns)
            .filter(|&s| label_of[s] == Vidx::MAX)
            .min_by_key(|&s| (expanded_deg[s], s as Vidx))
            .unwrap() as Vidx;
        let root = pseudo_peripheral_with_degrees(&q, seed, &expanded_deg).vertex;
        label_of[root as usize] = order.len() as Vidx;
        order.push(root);
        let mut head = order.len() - 1;
        while head < order.len() {
            let v = order[head];
            head += 1;
            children.clear();
            for &w in q.col(v as usize) {
                if label_of[w as usize] == Vidx::MAX {
                    label_of[w as usize] = Vidx::MAX - 1;
                    children.push(w);
                }
            }
            children.sort_unstable_by_key(|&w| (expanded_deg[w as usize], w));
            for &w in &children {
                label_of[w as usize] = order.len() as Vidx;
                order.push(w);
            }
        }
    }

    // Expand: supervariables in CM order, members ascending, then reverse.
    let mut full_order: Vec<Vidx> = Vec::with_capacity(n);
    for &sid in &order {
        full_order.extend_from_slice(&members[sid as usize]);
    }
    let perm = Permutation::from_order(&full_order)
        .expect("expansion covers every vertex once")
        .reversed();
    (perm, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::ordering_bandwidth;
    use rcm_sparse::CooBuilder;

    /// 1D chain of nodes with `d` fully-coupled dofs per node.
    fn chain_with_dofs(nodes: usize, d: usize) -> CscMatrix {
        let n = nodes * d;
        let mut b = CooBuilder::new(n, n);
        for node in 0..nodes {
            for i in 0..d {
                for j in 0..d {
                    if i != j {
                        b.push((node * d + i) as Vidx, (node * d + j) as Vidx);
                    }
                }
            }
            if node + 1 < nodes {
                for i in 0..d {
                    for j in 0..d {
                        b.push_sym((node * d + i) as Vidx, ((node + 1) * d + j) as Vidx);
                    }
                }
            }
        }
        b.build()
    }

    #[test]
    fn dof_cliques_compress_to_nodes() {
        let a = chain_with_dofs(20, 3);
        let (super_of, members) = find_supervariables(&a);
        assert_eq!(members.len(), 20);
        // The three dofs of each node share a supervariable.
        for node in 0..20usize {
            let s = super_of[node * 3];
            assert_eq!(super_of[node * 3 + 1], s);
            assert_eq!(super_of[node * 3 + 2], s);
        }
    }

    #[test]
    fn compressed_rcm_matches_plain_rcm_quality() {
        let a = chain_with_dofs(30, 2);
        let (plain, _) = crate::serial::rcm(&a);
        let (compressed, stats) = rcm_compressed(&a);
        assert_eq!(stats.supervariables, 30);
        assert!((stats.ratio - 2.0).abs() < 1e-9);
        let bw_plain = ordering_bandwidth(&a, &plain);
        let bw_comp = ordering_bandwidth(&a, &compressed);
        // A dof-chain reorders to bandwidth 2d−1 either way.
        assert_eq!(bw_plain, bw_comp);
    }

    #[test]
    fn graph_without_duplicates_does_not_compress() {
        let mut b = CooBuilder::new(10, 10);
        for v in 0..9u32 {
            b.push_sym(v, v + 1);
        }
        // Break symmetry of endpoints' neighbourhoods with one chord.
        b.push_sym(0, 5);
        let a = b.build();
        let (_, members) = find_supervariables(&a);
        assert_eq!(members.len(), 10);
        let (p, stats) = rcm_compressed(&a);
        assert_eq!(p.len(), 10);
        assert!((stats.ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn compression_handles_components_and_isolated() {
        let mut b = CooBuilder::new(8, 8);
        b.push_sym(0, 1);
        b.push_sym(2, 3);
        let a = b.build();
        let (p, stats) = rcm_compressed(&a);
        assert_eq!(p.len(), 8);
        // The edge pairs {0,1} and {2,3} are 2-cliques with identical closed
        // neighbourhoods, so each merges into one supervariable; isolated
        // vertices keep distinct closed sets ({v} each) and stay separate.
        assert_eq!(stats.supervariables, 6);
    }

    #[test]
    fn compressed_ordering_on_suite_class_matrix() {
        // 3-dof stencil compresses ~3x and keeps RCM-grade bandwidth.
        let spec = rcm_graphgen::StencilSpec {
            nx: 6,
            ny: 6,
            nz: 3,
            offsets: rcm_graphgen::StencilSpec::offsets_27pt(),
            dofs: 3,
        };
        let a = rcm_graphgen::shuffled(&spec.build(), 7);
        let (plain, _) = crate::serial::rcm(&a);
        let (compressed, stats) = rcm_compressed(&a);
        assert!(stats.ratio > 2.9, "ratio {}", stats.ratio);
        let bw_plain = ordering_bandwidth(&a, &plain) as f64;
        let bw_comp = ordering_bandwidth(&a, &compressed) as f64;
        assert!(
            bw_comp <= bw_plain * 1.25 + 8.0,
            "compressed bandwidth {bw_comp} vs plain {bw_plain}"
        );
    }
}
