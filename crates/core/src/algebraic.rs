//! The matrix-algebraic RCM formulation — Algorithms 3 and 4 of the paper,
//! executed sequentially on `rcm-sparse` vectors.
//!
//! This module is the *specification* of the distributed implementation:
//! `distributed::dist_rcm` must produce exactly this ordering for every grid
//! size (the `(select2nd, min)` semiring and `(parent label, degree, vertex)`
//! sort make the computation fully deterministic). It is also, by the
//! tie-breaking argument documented in [`crate::serial`], identical to the
//! classical George–Liu ordering.

use crate::peripheral::pseudo_peripheral_with_degrees;
use rcm_sparse::{
    dense_set, spmspv, CscMatrix, Label, Permutation, Select2ndMin, SparseVec, SpmspvWorkspace,
    Vidx, UNVISITED,
};

/// Statistics of an algebraic RCM run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AlgebraicStats {
    /// Connected components processed.
    pub components: usize,
    /// BFS sweeps in the pseudo-peripheral searches.
    pub peripheral_bfs: usize,
    /// Frontier-expansion iterations in the ordering passes.
    pub levels: usize,
    /// Total matrix nonzeros traversed by all SpMSpV calls.
    pub spmspv_work: usize,
}

/// Algorithm 3: label one connected component starting from the
/// pseudo-peripheral vertex `root`. `order` is the dense ordering vector `R`
/// (`-1` = unvisited); `nv` the global label counter.
fn label_component(
    a: &CscMatrix,
    degrees: &[Vidx],
    root: Vidx,
    order: &mut [Label],
    nv: &mut Label,
    ws: &mut SpmspvWorkspace<Label>,
    stats: &mut AlgebraicStats,
) {
    let n = a.n_rows();
    // R[r] ← nv; L_cur ← {r}.
    order[root as usize] = *nv;
    let mut batch_start = *nv; // labels of the current frontier: [batch_start, nv)
    *nv += 1;
    let mut cur = SparseVec::singleton(n, root, 0 as Label);

    while !cur.is_empty() {
        // L_cur ← SET(L_cur, R): frontier values become the labels assigned
        // in the previous round.
        cur.gather_from_dense(order);
        // L_next ← SPMSPV(A, L_cur) over (select2nd, min).
        let (next, work) = spmspv::<Label, Select2ndMin>(a, &cur, ws);
        stats.spmspv_work += work;
        // L_next ← SELECT(L_next, R = -1): keep unvisited vertices.
        let next = next.select(order, |r| r == UNVISITED);
        if next.is_empty() {
            break;
        }
        stats.levels += 1;
        // R_next ← SORTPERM(L_next, D) + nv: lexicographic
        // (parent label, degree, vertex) → consecutive labels.
        let mut tuples: Vec<(Label, Vidx, Vidx)> = next
            .entries()
            .iter()
            .map(|&(v, parent_label)| {
                debug_assert!(parent_label >= batch_start && parent_label < *nv);
                (parent_label, degrees[v as usize], v)
            })
            .collect();
        tuples.sort_unstable();
        batch_start = *nv;
        for (k, &(_, _, v)) in tuples.iter().enumerate() {
            order[v as usize] = *nv + k as Label;
        }
        *nv += tuples.len() as Label;
        // L_cur ← L_next (values refreshed by SET at loop head).
        cur = next;
    }
}

/// Reverse Cuthill-McKee via the matrix-algebraic formulation.
///
/// Handles multiple connected components by reseeding at the unvisited
/// vertex of minimum degree (then refining it to a pseudo-peripheral vertex
/// with Algorithm 4's search), exactly like the classical driver.
pub fn algebraic_rcm(a: &CscMatrix) -> (Permutation, AlgebraicStats) {
    let (p, s) = algebraic_cm(a);
    (p.reversed(), s)
}

/// Cuthill-McKee (unreversed) via the matrix-algebraic formulation.
pub fn algebraic_cm(a: &CscMatrix) -> (Permutation, AlgebraicStats) {
    assert_eq!(a.n_rows(), a.n_cols(), "RCM needs a square matrix");
    let n = a.n_rows();
    let degrees = a.degrees();
    let mut order: Vec<Label> = vec![UNVISITED; n];
    let mut nv: Label = 0;
    let mut ws = SpmspvWorkspace::new(n);
    let mut stats = AlgebraicStats::default();

    while (nv as usize) < n {
        // Seed the next component with the unvisited minimum-degree vertex.
        let seed = (0..n)
            .filter(|&v| order[v] == UNVISITED)
            .min_by_key(|&v| (degrees[v], v))
            .expect("an unvisited vertex exists") as Vidx;
        let pp = pseudo_peripheral_with_degrees(a, seed, &degrees);
        stats.components += 1;
        stats.peripheral_bfs += pp.bfs_count;
        label_component(
            a, &degrees, pp.vertex, &mut order, &mut nv, &mut ws, &mut stats,
        );
    }
    let new_of_old: Vec<Vidx> = order.iter().map(|&l| l as Vidx).collect();
    (
        Permutation::from_new_of_old(new_of_old).expect("labels form a bijection"),
        stats,
    )
}

/// Algorithm 4 expressed algebraically (provided for completeness and for
/// differential testing against [`crate::peripheral::pseudo_peripheral`],
/// which it must agree with).
pub fn algebraic_pseudo_peripheral(a: &CscMatrix, start: Vidx) -> (Vidx, usize, usize) {
    let n = a.n_rows();
    let degrees = a.degrees();
    let mut r = start;
    let mut nlvl: i64 = -1;
    let mut bfs_count = 0usize;
    let mut ws: SpmspvWorkspace<Label> = SpmspvWorkspace::new(n);
    loop {
        // One full BFS from r, tracking levels in the dense vector L.
        let mut levels: Vec<Label> = vec![UNVISITED; n];
        levels[r as usize] = 0;
        let mut cur = SparseVec::singleton(n, r, 0 as Label);
        let mut ecc: i64 = 0;
        bfs_count += 1;
        loop {
            cur.gather_from_dense(&levels);
            let (next, _) = spmspv::<Label, Select2ndMin>(a, &cur, &mut ws);
            let next = next.select(&levels, |l| l == UNVISITED);
            if next.is_empty() {
                break;
            }
            ecc += 1;
            let mut stamped = next.clone();
            stamped.map_values(|_, _| ecc);
            dense_set(&mut levels, &stamped);
            cur = next;
        }
        // Converged: the eccentricity did not grow; the current root is the
        // pseudo-peripheral vertex (its level structure was just computed).
        if ecc <= nlvl {
            return (r, ecc as usize, bfs_count);
        }
        nlvl = ecc;
        // r ← REDUCE(L_cur, D): minimum-degree vertex of the last level.
        let v = cur
            .ind()
            .min_by_key(|&w| (degrees[w as usize], w))
            .unwrap_or(r);
        if v == r {
            return (r, ecc as usize, bfs_count);
        }
        r = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial;
    use rcm_sparse::{matrix_bandwidth, CooBuilder};

    fn path(n: usize) -> CscMatrix {
        let mut b = CooBuilder::new(n, n);
        for v in 0..n - 1 {
            b.push_sym(v as Vidx, (v + 1) as Vidx);
        }
        b.build()
    }

    fn scrambled(a: &CscMatrix, stride: usize) -> CscMatrix {
        let n = a.n_rows();
        let perm: Vec<Vidx> = (0..n).map(|i| ((i * stride) % n) as Vidx).collect();
        a.permute_sym(&Permutation::from_new_of_old(perm).unwrap())
    }

    #[test]
    fn algebraic_equals_classical_on_path() {
        let a = scrambled(&path(40), 13);
        let (alg, _) = algebraic_rcm(&a);
        let (cls, _) = serial::rcm(&a);
        assert_eq!(alg, cls);
    }

    #[test]
    fn algebraic_equals_classical_on_grid() {
        let w = 9usize;
        let mut b = CooBuilder::new(w * w, w * w);
        for y in 0..w {
            for x in 0..w {
                let u = (y * w + x) as Vidx;
                if x + 1 < w {
                    b.push_sym(u, u + 1);
                }
                if y + 1 < w {
                    b.push_sym(u, u + w as Vidx);
                }
            }
        }
        let a = scrambled(&b.build(), 23);
        let (alg, stats) = algebraic_rcm(&a);
        let (cls, _) = serial::rcm(&a);
        assert_eq!(alg, cls);
        assert_eq!(stats.components, 1);
        assert!(stats.spmspv_work > 0);
    }

    #[test]
    fn algebraic_handles_components() {
        let mut b = CooBuilder::new(7, 7);
        b.push_sym(0, 1);
        b.push_sym(2, 3);
        b.push_sym(3, 4);
        let a = b.build();
        let (p, stats) = algebraic_rcm(&a);
        assert_eq!(p.len(), 7);
        assert_eq!(stats.components, 4); // {0,1}, {2,3,4}, {5}, {6}
        let (cls, _) = serial::rcm(&a);
        assert_eq!(p, cls);
    }

    #[test]
    fn algebraic_rcm_reduces_bandwidth() {
        let a = scrambled(&path(60), 17);
        let (p, _) = algebraic_rcm(&a);
        assert_eq!(matrix_bandwidth(&a.permute_sym(&p)), 1);
    }

    #[test]
    fn algebraic_peripheral_matches_graph_version() {
        let a = scrambled(&path(35), 11);
        let (v_alg, ecc_alg, _) = algebraic_pseudo_peripheral(&a, 5);
        let pp = crate::peripheral::pseudo_peripheral(&a, 5);
        assert_eq!(v_alg, pp.vertex);
        assert_eq!(ecc_alg, pp.eccentricity);
    }

    #[test]
    fn empty_matrix() {
        let a = CscMatrix::empty(0);
        let (p, _) = algebraic_rcm(&a);
        assert_eq!(p.len(), 0);
    }

    #[test]
    fn single_vertex() {
        let a = CscMatrix::empty(1);
        let (p, stats) = algebraic_rcm(&a);
        assert_eq!(p.len(), 1);
        assert_eq!(stats.components, 1);
        assert_eq!(stats.levels, 0);
    }
}
