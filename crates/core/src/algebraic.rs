//! The matrix-algebraic RCM formulation — Algorithms 3 and 4 of the paper.
//!
//! Since the [`crate::driver`] refactor this module is a thin shim: the
//! pipeline itself (pseudo-peripheral search, level-synchronous BFS,
//! labeling `SORTPERM`) lives **once** in [`crate::driver::drive_cm`], and
//! these entry points run it through a per-call
//! [`crate::engine::OrderingEngine`] on [`crate::backends::SerialBackend`]
//! (sessions that order many matrices should hold a warm engine instead) —
//! the
//! sequential `rcm-sparse` data path that serves as the *specification* of
//! every other backend: the pooled, distributed and hybrid runtimes must
//! produce exactly this ordering (the `(select2nd, min)` semiring and the
//! `(parent label, degree, vertex)` sort make the computation fully
//! deterministic). It is also, by the tie-breaking argument documented in
//! [`crate::serial`], identical to the classical George–Liu ordering.

use crate::driver::{BackendKind, ExpandDirection};
use crate::engine::{order_once, EngineConfig};
use rcm_sparse::{CscMatrix, Permutation};

/// Statistics of an algebraic RCM run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AlgebraicStats {
    /// Connected components processed.
    pub components: usize,
    /// BFS sweeps in the pseudo-peripheral searches.
    pub peripheral_bfs: usize,
    /// Frontier-expansion iterations in the ordering passes.
    pub levels: usize,
    /// Total matrix nonzeros traversed by all SpMSpV calls (pseudo-
    /// peripheral sweeps included; the pull direction counts its scanned
    /// candidate-row edges).
    pub spmspv_work: usize,
    /// Frontier expansions that ran top-down (push).
    pub push_expands: usize,
    /// Frontier expansions that ran bottom-up (pull).
    pub pull_expands: usize,
}

/// Reverse Cuthill-McKee via the matrix-algebraic formulation, direction
/// policy from the environment (`RCM_DIRECTION`, default adaptive).
///
/// Handles multiple connected components by reseeding at the unvisited
/// vertex of minimum degree (then refining it to a pseudo-peripheral vertex
/// with Algorithm 4's search), exactly like the classical driver.
pub fn algebraic_rcm(a: &CscMatrix) -> (Permutation, AlgebraicStats) {
    let (p, s) = algebraic_cm(a);
    (p.reversed(), s)
}

/// [`algebraic_rcm`] under an explicit frontier-direction policy. The
/// permutation is identical for every policy; only the execution (and
/// [`AlgebraicStats::pull_expands`]) changes.
pub fn algebraic_rcm_directed(
    a: &CscMatrix,
    direction: ExpandDirection,
) -> (Permutation, AlgebraicStats) {
    let raw = order_once(
        EngineConfig::builder()
            .backend(BackendKind::Serial)
            .direction(direction)
            .build(),
        a,
    );
    (
        raw.perm,
        AlgebraicStats {
            components: raw.stats.components,
            peripheral_bfs: raw.stats.peripheral_bfs,
            levels: raw.stats.levels,
            spmspv_work: raw.stats.spmspv_work,
            push_expands: raw.stats.push_expands,
            pull_expands: raw.stats.pull_expands,
        },
    )
}

/// Cuthill-McKee (unreversed) via the matrix-algebraic formulation.
pub fn algebraic_cm(a: &CscMatrix) -> (Permutation, AlgebraicStats) {
    algebraic_cm_directed(a, ExpandDirection::from_env())
}

/// [`algebraic_cm`] under an explicit frontier-direction policy (the
/// engine's RCM un-reversed — label reversal is an involution).
pub fn algebraic_cm_directed(
    a: &CscMatrix,
    direction: ExpandDirection,
) -> (Permutation, AlgebraicStats) {
    let (p, s) = algebraic_rcm_directed(a, direction);
    (p.reversed(), s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial;
    use rcm_sparse::{matrix_bandwidth, CooBuilder, Vidx};

    fn path(n: usize) -> CscMatrix {
        let mut b = CooBuilder::new(n, n);
        for v in 0..n - 1 {
            b.push_sym(v as Vidx, (v + 1) as Vidx);
        }
        b.build()
    }

    fn scrambled(a: &CscMatrix, stride: usize) -> CscMatrix {
        let n = a.n_rows();
        let perm: Vec<Vidx> = (0..n).map(|i| ((i * stride) % n) as Vidx).collect();
        a.permute_sym(&Permutation::from_new_of_old(perm).unwrap())
    }

    #[test]
    fn algebraic_equals_classical_on_path() {
        let a = scrambled(&path(40), 13);
        let (alg, _) = algebraic_rcm(&a);
        let (cls, _) = serial::rcm(&a);
        assert_eq!(alg, cls);
    }

    #[test]
    fn algebraic_equals_classical_on_grid() {
        let w = 9usize;
        let mut b = CooBuilder::new(w * w, w * w);
        for y in 0..w {
            for x in 0..w {
                let u = (y * w + x) as Vidx;
                if x + 1 < w {
                    b.push_sym(u, u + 1);
                }
                if y + 1 < w {
                    b.push_sym(u, u + w as Vidx);
                }
            }
        }
        let a = scrambled(&b.build(), 23);
        let (alg, stats) = algebraic_rcm(&a);
        let (cls, _) = serial::rcm(&a);
        assert_eq!(alg, cls);
        assert_eq!(stats.components, 1);
        assert!(stats.spmspv_work > 0);
    }

    #[test]
    fn algebraic_handles_components() {
        let mut b = CooBuilder::new(7, 7);
        b.push_sym(0, 1);
        b.push_sym(2, 3);
        b.push_sym(3, 4);
        let a = b.build();
        let (p, stats) = algebraic_rcm(&a);
        assert_eq!(p.len(), 7);
        assert_eq!(stats.components, 4); // {0,1}, {2,3,4}, {5}, {6}
        let (cls, _) = serial::rcm(&a);
        assert_eq!(p, cls);
    }

    #[test]
    fn algebraic_rcm_reduces_bandwidth() {
        let a = scrambled(&path(60), 17);
        let (p, _) = algebraic_rcm(&a);
        assert_eq!(matrix_bandwidth(&a.permute_sym(&p)), 1);
    }

    #[test]
    fn empty_matrix() {
        let a = CscMatrix::empty(0);
        let (p, _) = algebraic_rcm(&a);
        assert_eq!(p.len(), 0);
    }

    #[test]
    fn single_vertex() {
        let a = CscMatrix::empty(1);
        let (p, stats) = algebraic_rcm(&a);
        assert_eq!(p.len(), 1);
        assert_eq!(stats.components, 1);
        assert_eq!(stats.levels, 0);
    }
}
