//! [`OrderingService`]: the asynchronous front door of the ordering stack —
//! a bounded job queue, sharded warm engines, and a pattern-fingerprint
//! ordering cache.
//!
//! The paper treats RCM as a one-shot distributed kernel; the production
//! workload this repository grows toward is the opposite shape: millions of
//! users repeatedly re-ordering the *same* sparsity patterns with new
//! numerical values (every time-step of a transient solve, every load case
//! of the same mesh). Three observations drive the design:
//!
//! 1. **Identical patterns are the common case.** A pattern seen before
//!    needs no BFS at all — one O(nnz) hash plus an equality check returns
//!    the cached permutation bit for bit. That is the
//!    [`PatternCache`]: fingerprint ([`CscMatrix::pattern_fingerprint`]) →
//!    permutation + quality stats, LRU-bounded by total stored nonzeros,
//!    every hash hit confirmed by a full pattern comparison so a 64-bit
//!    collision can never return a wrong ordering.
//! 2. **Ordering capacity is a pool of warm engines.** Each of the `N`
//!    worker shards owns one long-lived [`OrderingEngine`] whose
//!    workspaces (and pool workers, for the pooled backend) persist across
//!    jobs — the PR-5 amortization, multiplied by shards.
//! 3. **Small jobs batch, large jobs parallelize.** The admission policy
//!    drains runs of below-cutover matrices from the queue head into one
//!    [`OrderingEngine::order_batch`] group (ordered whole, one per pool
//!    worker on a pooled shard), while large matrices take the
//!    level-parallel path individually — L-RCM's component-level job
//!    granularity applied at the service tier.
//!
//! ```text
//!          submit(OrderingRequest) ──► fingerprint ──► cache hit? ──► JobHandle
//!                │                         (O(nnz))        │ yes       complete
//!                │ miss                                    │           immediately
//!                ▼                                         │
//!        identical job in flight? ── yes: coalesce onto its result
//!                │ no                 (no queue, no shard, no BFS)
//!                ▼
//!        bounded job queue  ◄──────── back-pressure: submit blocks when full
//!           │         │
//!     admission policy: runs of small jobs group into order_batch
//!           │         │
//!        shard 0 … shard N-1          each shard = one warm OrderingEngine
//!           │         │
//!           ▼         ▼
//!       order / order_batch ──► insert into cache ──► complete JobHandle
//! ```
//!
//! Completion is observed through the returned [`JobHandle`]:
//! [`JobHandle::wait`] blocks, [`JobHandle::try_poll`] doesn't, and
//! [`JobHandle::latency`] reports the submit→completion time once done.
//! [`OrderingService::stats`] surfaces the cache and shard counters as a
//! [`ServiceStats`].
//!
//! # Worked example: one service, repeated patterns
//!
//! ```
//! use rcm_core::service::{OrderingRequest, OrderingService, ServiceConfig};
//! use rcm_core::{BackendKind, CacheOutcome, EngineConfig};
//! use rcm_sparse::CooBuilder;
//!
//! let path = |n: usize| {
//!     let mut b = CooBuilder::new(n, n);
//!     for v in 0..n as u32 - 1 {
//!         b.push_sym(v, v + 1);
//!     }
//!     b.build()
//! };
//!
//! let config = ServiceConfig::new(EngineConfig::builder().backend(BackendKind::Serial).build())
//!     .shards(2);
//! let service = OrderingService::start(config);
//!
//! // One user orders a 100-vertex pattern; once it completes, a second
//! // user submitting the same pattern is served from the cache, and a
//! // third user's new pattern goes to a shard as usual.
//! let a = service.submit(OrderingRequest::new(path(100)));
//! let ra = a.wait(); // ordered on a shard, inserted into the cache
//! let b = service.submit(OrderingRequest::new(path(100)));
//! let c = service.submit(OrderingRequest::new(path(40)));
//!
//! let (rb, rc) = (b.wait(), c.wait());
//! assert_eq!(ra.perm, rb.perm); // cached permutation is bit-identical
//! assert_eq!(rb.cache, Some(CacheOutcome::Hit));
//! assert_eq!(ra.bandwidth_after, 1); // RCM makes a path tridiagonal
//! assert_eq!(rc.perm.len(), 40);
//!
//! let stats = service.stats();
//! assert_eq!(stats.submitted, 3);
//! assert_eq!(stats.completed, 3);
//! assert_eq!(stats.cache_hits, 1); // the repeated pattern hit the cache
//! ```

use crate::driver::{DriverStats, StartNode};
use crate::engine::{CacheConfig, EngineConfig, OrderingEngine, OrderingReport};
use crate::pool::DEFAULT_SEQ_CUTOFF;
use rcm_sparse::{CscMatrix, Permutation};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Pattern-fingerprint ordering cache
// ---------------------------------------------------------------------------

/// One stored ordering: the full pattern (for collision-proof equality on a
/// hash hit) plus everything a report needs.
struct CacheEntry {
    pattern: CscMatrix,
    start_node: StartNode,
    perm: Permutation,
    bandwidth_before: usize,
    bandwidth_after: usize,
    stats: DriverStats,
    last_used: u64,
}

impl CacheEntry {
    /// Bound-accounting weight: stored nonzeros, floored at the permutation
    /// length + 1 so degenerate (empty) patterns still consume budget.
    fn weight(&self) -> usize {
        self.pattern.nnz().max(self.perm.len() + 1)
    }
}

/// A cached ordering returned by [`PatternCache::lookup`] — the data a hit
/// turns into an [`OrderingReport`] without re-running any BFS.
#[derive(Clone, Debug)]
pub struct CachedOrdering {
    /// The cached RCM permutation (bit-identical to a fresh ordering).
    pub perm: Permutation,
    /// Bandwidth of the input ordering, as computed at insertion.
    pub bandwidth_before: usize,
    /// Bandwidth under `perm`, as computed at insertion.
    pub bandwidth_after: usize,
    /// The execution record of the ordering that populated the entry.
    pub stats: DriverStats,
}

impl CachedOrdering {
    /// Materialize the hit as a report for matrix `a` (`wall_seconds` is
    /// the measured hash + lookup time — the O(nnz) fast path).
    pub(crate) fn into_report(self, a: &CscMatrix, wall_seconds: f64) -> OrderingReport {
        OrderingReport {
            n: a.n_rows(),
            nnz: a.nnz(),
            bandwidth_before: self.bandwidth_before,
            bandwidth_after: self.bandwidth_after,
            stats: self.stats,
            parallel_levels: 0,
            wall_seconds,
            sim: None,
            compress: None,
            cache: Some(CacheOutcome::Hit),
            perm: self.perm,
        }
    }
}

/// How the cache participated in producing one [`OrderingReport`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The permutation came straight from the pattern cache.
    Hit,
    /// The pattern was ordered and inserted into the cache.
    Miss,
}

/// Counter snapshot of a [`PatternCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a cached permutation.
    pub hits: usize,
    /// Lookups that found nothing (including hash collisions rejected by
    /// the full pattern comparison).
    pub misses: usize,
    /// Entries evicted to respect the nnz bound.
    pub evictions: usize,
    /// Orderings inserted.
    pub insertions: usize,
    /// Entries currently stored.
    pub entries: usize,
    /// Total weight (≈ nonzeros) currently stored.
    pub stored_nnz: usize,
    /// The configured weight bound.
    pub max_nnz: usize,
}

/// The pattern-fingerprint ordering cache: 64-bit fingerprint of the CSC
/// pattern → cached permutation + quality stats, least-recently-used
/// eviction bounded by total stored nonzeros.
///
/// A hash hit alone never returns an ordering — the stored pattern is
/// compared for full equality first, so two patterns colliding on the
/// 64-bit fingerprint coexist (the bucket holds both) and a lookup can
/// never hand back the wrong permutation. Single-threaded by design; the
/// [`OrderingService`] shares one instance across shards behind a mutex,
/// and a cache-configured [`OrderingEngine`] owns a private one.
pub struct PatternCache {
    buckets: HashMap<u64, Vec<CacheEntry>>,
    max_nnz: usize,
    stored: usize,
    clock: u64,
    hits: usize,
    misses: usize,
    evictions: usize,
    insertions: usize,
}

impl PatternCache {
    /// An empty cache bounded by `config.max_nnz` total stored nonzeros.
    pub fn new(config: CacheConfig) -> Self {
        PatternCache {
            buckets: HashMap::new(),
            max_nnz: config.max_nnz,
            stored: 0,
            clock: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            insertions: 0,
        }
    }

    /// Fold the start-node strategy into the bucket key: the same pattern
    /// ordered under different strategies yields different permutations, so
    /// the entries must never alias. George–Liu salts with 0, keeping
    /// default-strategy keys identical to the raw fingerprint.
    fn keyed(fingerprint: u64, start_node: StartNode) -> u64 {
        fingerprint ^ start_node.cache_salt()
    }

    /// Look up the ordering for pattern `a` under `fingerprint`, as ordered
    /// by `start_node`. On a hash hit the stored pattern is compared for
    /// full equality and the stored strategy for exact equality; only both
    /// matching counts as a hit (collisions are misses for `a` and leave
    /// the colliding entry untouched).
    pub fn lookup(
        &mut self,
        fingerprint: u64,
        a: &CscMatrix,
        start_node: StartNode,
    ) -> Option<CachedOrdering> {
        self.clock += 1;
        let clock = self.clock;
        if let Some(bucket) = self.buckets.get_mut(&Self::keyed(fingerprint, start_node)) {
            if let Some(entry) = bucket
                .iter_mut()
                .find(|e| e.start_node == start_node && e.pattern == *a)
            {
                entry.last_used = clock;
                self.hits += 1;
                return Some(CachedOrdering {
                    perm: entry.perm.clone(),
                    bandwidth_before: entry.bandwidth_before,
                    bandwidth_after: entry.bandwidth_after,
                    stats: entry.stats.clone(),
                });
            }
        }
        self.misses += 1;
        None
    }

    /// Insert the ordering `report` for pattern `a`, evicting
    /// least-recently-used entries until the nnz bound holds. A pattern
    /// heavier than the whole bound is not cached (it would evict
    /// everything and immediately overflow); re-inserting an already
    /// cached pattern refreshes its recency instead of duplicating it.
    pub fn insert(
        &mut self,
        fingerprint: u64,
        a: &CscMatrix,
        report: &OrderingReport,
        start_node: StartNode,
    ) {
        self.clock += 1;
        let entry = CacheEntry {
            pattern: a.clone(),
            start_node,
            perm: report.perm.clone(),
            bandwidth_before: report.bandwidth_before,
            bandwidth_after: report.bandwidth_after,
            stats: report.stats.clone(),
            last_used: self.clock,
        };
        let weight = entry.weight();
        if weight > self.max_nnz {
            return;
        }
        let bucket = self
            .buckets
            .entry(Self::keyed(fingerprint, start_node))
            .or_default();
        if let Some(existing) = bucket
            .iter_mut()
            .find(|e| e.start_node == start_node && e.pattern == entry.pattern)
        {
            existing.last_used = self.clock;
            return;
        }
        bucket.push(entry);
        self.stored += weight;
        self.insertions += 1;
        while self.stored > self.max_nnz {
            self.evict_lru();
        }
    }

    /// Remove the least-recently-used entry (caller guarantees non-empty).
    fn evict_lru(&mut self) {
        let (&fp, _) = self
            .buckets
            .iter()
            .filter(|(_, b)| !b.is_empty())
            .min_by_key(|(_, b)| b.iter().map(|e| e.last_used).min().unwrap_or(u64::MAX))
            .expect("evict_lru on a non-empty cache");
        let bucket = self.buckets.get_mut(&fp).expect("bucket exists");
        let idx = bucket
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(i, _)| i)
            .expect("non-empty bucket");
        let evicted = bucket.swap_remove(idx);
        self.stored -= evicted.weight();
        self.evictions += 1;
        if bucket.is_empty() {
            self.buckets.remove(&fp);
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            insertions: self.insertions,
            entries: self.buckets.values().map(Vec::len).sum(),
            stored_nnz: self.stored,
            max_nnz: self.max_nnz,
        }
    }
}

// ---------------------------------------------------------------------------
// Requests, handles, configuration
// ---------------------------------------------------------------------------

/// One ordering job for [`OrderingService::submit`]: the matrix (owned —
/// the service outlives the submitting scope) plus per-request policy.
#[derive(Clone, Debug)]
pub struct OrderingRequest {
    matrix: CscMatrix,
    use_cache: bool,
}

impl OrderingRequest {
    /// An ordering request with the default policy (cache participation
    /// on). The matrix is consumed; symmetrize unsymmetric patterns at
    /// intake (`A + Aᵀ`, as the `rcm-order` CLI does) — the fingerprint
    /// keys on the stored pattern.
    pub fn new(matrix: CscMatrix) -> Self {
        OrderingRequest {
            matrix,
            use_cache: true,
        }
    }

    /// Skip the pattern cache for this request: no lookup, no insertion —
    /// the job always runs on a shard engine (its report carries
    /// `cache: None`).
    pub fn bypass_cache(mut self) -> Self {
        self.use_cache = false;
        self
    }

    /// The matrix to be ordered.
    pub fn matrix(&self) -> &CscMatrix {
        &self.matrix
    }
}

/// Completion slot shared between a [`JobHandle`] and the worker that
/// fulfills it.
struct JobSlot {
    state: Mutex<Option<(OrderingReport, Duration)>>,
    done: Condvar,
    submitted_at: Instant,
}

impl JobSlot {
    fn new() -> Self {
        JobSlot {
            state: Mutex::new(None),
            done: Condvar::new(),
            submitted_at: Instant::now(),
        }
    }

    fn complete(&self, report: OrderingReport) {
        let latency = self.submitted_at.elapsed();
        let mut state = self.state.lock().expect("job slot poisoned");
        *state = Some((report, latency));
        self.done.notify_all();
    }
}

/// A submitted job's future result. Cloneable; every clone observes the
/// same completion.
#[derive(Clone)]
pub struct JobHandle {
    slot: Arc<JobSlot>,
    id: u64,
}

impl JobHandle {
    /// Monotone job id, in submission order.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Block until the job completes and return its report.
    pub fn wait(&self) -> OrderingReport {
        let mut state = self.slot.state.lock().expect("job slot poisoned");
        while state.is_none() {
            state = self.slot.done.wait(state).expect("job slot poisoned");
        }
        state
            .as_ref()
            .map(|(r, _)| r.clone())
            .expect("just checked")
    }

    /// Return the report if the job already completed, without blocking.
    pub fn try_poll(&self) -> Option<OrderingReport> {
        let state = self.slot.state.lock().expect("job slot poisoned");
        state.as_ref().map(|(r, _)| r.clone())
    }

    /// Submit→completion latency (queue wait + service time; the hash time
    /// alone for a cache hit completed at submit). `None` until done.
    pub fn latency(&self) -> Option<Duration> {
        let state = self.slot.state.lock().expect("job slot poisoned");
        state.as_ref().map(|(_, d)| *d)
    }
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("id", &self.id)
            .field("done", &self.try_poll().is_some())
            .finish()
    }
}

/// Configuration of an [`OrderingService`], built fluently:
///
/// ```
/// use rcm_core::service::ServiceConfig;
/// use rcm_core::{BackendKind, CacheConfig, EngineConfig};
///
/// let config = ServiceConfig::new(
///     EngineConfig::builder().backend(BackendKind::Pooled { threads: 2 }).build(),
/// )
/// .shards(3)
/// .queue_capacity(128)
/// .cache(CacheConfig::new(1 << 20));
/// assert_eq!(config.shards, 3);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// The per-shard engine configuration. Its `cache` field is ignored:
    /// the service owns **one** shared [`PatternCache`] at the front door
    /// (per-shard private caches would fragment hits across shards).
    pub engine: EngineConfig,
    /// Worker shards, each owning one warm engine (≥ 1).
    pub shards: usize,
    /// Bounded queue depth; `submit` blocks when the queue is full
    /// (back-pressure instead of unbounded memory growth).
    pub queue_capacity: usize,
    /// The shared pattern cache; `None` disables caching entirely.
    pub cache: Option<CacheConfig>,
    /// Matrices with fewer rows than this are batch-groupable: a run of
    /// them at the queue head is drained into one
    /// [`OrderingEngine::order_batch`] call.
    pub batch_cutover: usize,
    /// Most jobs one batch group may absorb.
    pub batch_max: usize,
}

impl ServiceConfig {
    /// Defaults: 2 shards, queue depth 64, the default cache, batch
    /// cutover at the pool's sequential cutoff, groups of at most 16.
    pub fn new(engine: EngineConfig) -> Self {
        ServiceConfig {
            engine,
            shards: 2,
            queue_capacity: 64,
            cache: Some(CacheConfig::default()),
            batch_cutover: DEFAULT_SEQ_CUTOFF,
            batch_max: 16,
        }
    }

    /// Set the worker shard count (clamped to ≥ 1).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Set the bounded queue depth (clamped to ≥ 1).
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Configure the shared pattern cache.
    pub fn cache(mut self, cache: CacheConfig) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Disable the pattern cache (every job runs on a shard engine).
    pub fn no_cache(mut self) -> Self {
        self.cache = None;
        self
    }

    /// Set the batch-group admission cutover (rows).
    pub fn batch_cutover(mut self, rows: usize) -> Self {
        self.batch_cutover = rows;
        self
    }

    /// Set the most jobs one batch group may absorb (clamped to ≥ 1).
    pub fn batch_max(mut self, jobs: usize) -> Self {
        self.batch_max = jobs.max(1);
        self
    }
}

/// Counter snapshot of a running [`OrderingService`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Worker shards.
    pub shards: usize,
    /// Jobs accepted by `submit` (including cache hits completed inline).
    pub submitted: usize,
    /// Jobs completed (their `JobHandle` is resolvable).
    pub completed: usize,
    /// Jobs that ran inside a batch group of ≥ 2.
    pub batched: usize,
    /// Submits coalesced onto an identical in-flight computation: the
    /// pattern had already missed the cache for an earlier, still-running
    /// job, so the later handle waits for that job's result instead of
    /// enqueueing a redundant BFS.
    pub coalesced: usize,
    /// Pattern-cache hits (lookups returning a cached permutation).
    pub cache_hits: usize,
    /// Pattern-cache misses.
    pub cache_misses: usize,
    /// Pattern-cache evictions under the nnz bound.
    pub cache_evictions: usize,
    /// Entries resident in the cache.
    pub cache_entries: usize,
    /// Total nonzeros resident in the cache.
    pub cache_nnz: usize,
    /// Jobs completed per shard (index = shard id); cache hits complete at
    /// the front door and appear in no shard's count.
    pub per_shard: Vec<usize>,
}

// ---------------------------------------------------------------------------
// The service
// ---------------------------------------------------------------------------

/// One queued ordering job.
struct Job {
    matrix: CscMatrix,
    fingerprint: Option<u64>,
    slot: Arc<JobSlot>,
}

/// Queue state behind the mutex: pending jobs + the open/shutdown flag.
struct QueueState {
    jobs: VecDeque<Job>,
    open: bool,
}

/// One in-flight cache-participating computation: the pattern (kept for
/// collision-proof equality, exactly like the cache itself) plus the
/// handles of later identical submits coalesced onto it.
struct InFlight {
    pattern: CscMatrix,
    waiters: Vec<Arc<JobSlot>>,
}

struct ServiceInner {
    queue: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    config: ServiceConfig,
    cache: Option<Mutex<PatternCache>>,
    /// Cache-participating jobs submitted but not yet completed, keyed by
    /// fingerprint — the coalescing point for concurrent identical submits.
    in_flight: Mutex<HashMap<u64, Vec<InFlight>>>,
    next_id: AtomicU64,
    submitted: AtomicUsize,
    completed: AtomicUsize,
    batched: AtomicUsize,
    coalesced: AtomicUsize,
    per_shard: Vec<AtomicUsize>,
}

impl ServiceInner {
    /// Lock the queue, riding through poisoning (a worker panic must not
    /// wedge shutdown).
    fn lock_queue(&self) -> MutexGuard<'_, QueueState> {
        match self.queue.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Record one finished job and resolve its handle. Counters first:
    /// a waiter that wakes on the handle must already see this completion
    /// in [`OrderingService::stats`].
    fn finish(&self, shard: usize, job: &Job, report: OrderingReport) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.per_shard[shard].fetch_add(1, Ordering::Relaxed);
        job.slot.complete(report);
    }
}

/// The thread-safe ordering front door. See the [module docs](self) for
/// the architecture and a worked example.
///
/// Dropping the service closes the queue, drains every pending job (their
/// handles still resolve), and joins the shard threads.
pub struct OrderingService {
    inner: Arc<ServiceInner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl OrderingService {
    /// Start the service: spawn `config.shards` worker threads, each
    /// constructing its warm [`OrderingEngine`] in-thread.
    pub fn start(config: ServiceConfig) -> Self {
        let cache = config.cache.map(|c| Mutex::new(PatternCache::new(c)));
        let inner = Arc::new(ServiceInner {
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                open: true,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            config,
            cache,
            in_flight: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(0),
            submitted: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
            batched: AtomicUsize::new(0),
            coalesced: AtomicUsize::new(0),
            per_shard: (0..config.shards).map(|_| AtomicUsize::new(0)).collect(),
        });
        // Shard engines never cache privately: the shared front-door cache
        // is the single source of cached orderings.
        let mut shard_engine = config.engine;
        shard_engine.cache = None;
        let workers = (0..config.shards)
            .map(|shard| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("rcm-service-{shard}"))
                    .spawn(move || worker_loop(inner, shard_engine, shard))
                    .expect("spawn service shard")
            })
            .collect();
        OrderingService { inner, workers }
    }

    /// Convenience constructor with the default service configuration.
    pub fn with_engine(engine: EngineConfig) -> Self {
        OrderingService::start(ServiceConfig::new(engine))
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.inner.config
    }

    /// Submit one ordering job.
    ///
    /// The calling thread pays the O(nnz) fingerprint hash; a cache hit
    /// completes the returned handle *before* `submit` returns — no queue,
    /// no shard, no BFS. A miss enqueues the job, blocking while the
    /// bounded queue is full (back-pressure).
    pub fn submit(&self, request: OrderingRequest) -> JobHandle {
        let inner = &*self.inner;
        inner.submitted.fetch_add(1, Ordering::Relaxed);
        let slot = Arc::new(JobSlot::new());
        let handle = JobHandle {
            slot: Arc::clone(&slot),
            id: inner.next_id.fetch_add(1, Ordering::Relaxed),
        };
        let OrderingRequest { matrix, use_cache } = request;
        let fingerprint = match (&inner.cache, use_cache) {
            (Some(cache), true) => {
                let t0 = Instant::now();
                let fp = matrix.pattern_fingerprint();
                let hit = cache.lock().expect("pattern cache poisoned").lookup(
                    fp,
                    &matrix,
                    inner.config.engine.start_node,
                );
                if let Some(cached) = hit {
                    inner.completed.fetch_add(1, Ordering::Relaxed);
                    slot.complete(cached.into_report(&matrix, t0.elapsed().as_secs_f64()));
                    return handle;
                }
                // The pattern missed, but an identical job may already be
                // queued or running: coalesce onto it instead of computing
                // the same ordering twice. Equality on the stored pattern
                // keeps this collision-proof, exactly like the cache.
                let mut in_flight = inner.in_flight.lock().expect("in-flight map poisoned");
                if let Some(entry) = in_flight
                    .get_mut(&fp)
                    .and_then(|bucket| bucket.iter_mut().find(|e| e.pattern == matrix))
                {
                    entry.waiters.push(Arc::clone(&slot));
                    inner.coalesced.fetch_add(1, Ordering::Relaxed);
                    return handle;
                }
                in_flight.entry(fp).or_default().push(InFlight {
                    pattern: matrix.clone(),
                    waiters: Vec::new(),
                });
                Some(fp)
            }
            _ => None,
        };
        let mut queue = inner.lock_queue();
        while queue.open && queue.jobs.len() >= inner.config.queue_capacity {
            queue = inner
                .not_full
                .wait(queue)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        assert!(queue.open, "submit on a shut-down OrderingService");
        queue.jobs.push_back(Job {
            matrix,
            fingerprint,
            slot,
        });
        drop(queue);
        inner.not_empty.notify_one();
        handle
    }

    /// Block until `handle`'s job completes and return its report
    /// (equivalent to [`JobHandle::wait`]).
    pub fn wait(&self, handle: &JobHandle) -> OrderingReport {
        handle.wait()
    }

    /// Non-blocking completion check (equivalent to [`JobHandle::try_poll`]).
    pub fn try_poll(&self, handle: &JobHandle) -> Option<OrderingReport> {
        handle.try_poll()
    }

    /// Counter snapshot: queue/shard progress plus the cache counters.
    pub fn stats(&self) -> ServiceStats {
        let inner = &*self.inner;
        let cache = inner
            .cache
            .as_ref()
            .map(|c| c.lock().expect("pattern cache poisoned").stats())
            .unwrap_or_default();
        ServiceStats {
            shards: inner.config.shards,
            submitted: inner.submitted.load(Ordering::Relaxed),
            completed: inner.completed.load(Ordering::Relaxed),
            batched: inner.batched.load(Ordering::Relaxed),
            coalesced: inner.coalesced.load(Ordering::Relaxed),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_evictions: cache.evictions,
            cache_entries: cache.entries,
            cache_nnz: cache.stored_nnz,
            per_shard: inner
                .per_shard
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

impl Drop for OrderingService {
    fn drop(&mut self) {
        {
            let mut queue = self.inner.lock_queue();
            queue.open = false;
        }
        self.inner.not_empty.notify_all();
        self.inner.not_full.notify_all();
        for worker in self.workers.drain(..) {
            // A shard that panicked already resolved nothing; propagating
            // here would abort the caller's unwind — just drop the error.
            let _ = worker.join();
        }
    }
}

/// One shard: construct the warm engine in-thread, then serve jobs until
/// the queue is closed *and* drained.
fn worker_loop(inner: Arc<ServiceInner>, engine_config: EngineConfig, shard: usize) {
    let mut engine = OrderingEngine::new(engine_config);
    loop {
        let batch = {
            let mut queue = inner.lock_queue();
            let first = loop {
                if let Some(job) = queue.jobs.pop_front() {
                    break job;
                }
                if !queue.open {
                    return;
                }
                queue = inner
                    .not_empty
                    .wait(queue)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            };
            // Admission policy: a run of small jobs at the queue head
            // becomes one order_batch group on this shard.
            let mut batch = vec![first];
            if batch[0].matrix.n_rows() < inner.config.batch_cutover {
                while batch.len() < inner.config.batch_max
                    && queue
                        .jobs
                        .front()
                        .is_some_and(|j| j.matrix.n_rows() < inner.config.batch_cutover)
                {
                    batch.push(queue.jobs.pop_front().expect("front checked"));
                }
            }
            batch
        };
        inner.not_full.notify_all();
        if batch.len() > 1 {
            inner.batched.fetch_add(batch.len(), Ordering::Relaxed);
            let mats: Vec<CscMatrix> = batch.iter().map(|j| j.matrix.clone()).collect();
            let reports = engine.order_batch(&mats);
            for (job, mut report) in batch.into_iter().zip(reports) {
                store_and_finish(&inner, shard, &job, &mut report);
            }
        } else {
            let job = batch.into_iter().next().expect("batch of one");
            let mut report = engine.order(&job.matrix);
            store_and_finish(&inner, shard, &job, &mut report);
        }
    }
}

/// Stamp the cache outcome, publish the ordering to the shared cache,
/// resolve the job's handle, and complete every submit that coalesced onto
/// this computation while it was in flight.
fn store_and_finish(inner: &ServiceInner, shard: usize, job: &Job, report: &mut OrderingReport) {
    if let (Some(cache), Some(fp)) = (&inner.cache, job.fingerprint) {
        report.cache = Some(CacheOutcome::Miss);
        // Insert before retiring the in-flight entry: a concurrent submit
        // always sees either the cache entry or the in-flight entry.
        cache.lock().expect("pattern cache poisoned").insert(
            fp,
            &job.matrix,
            report,
            inner.config.engine.start_node,
        );
    }
    inner.finish(shard, job, report.clone());
    let Some(fp) = job.fingerprint else { return };
    let waiters = {
        let mut in_flight = inner.in_flight.lock().expect("in-flight map poisoned");
        let Some(bucket) = in_flight.get_mut(&fp) else {
            return;
        };
        let Some(idx) = bucket.iter().position(|e| e.pattern == job.matrix) else {
            return;
        };
        let entry = bucket.swap_remove(idx);
        if bucket.is_empty() {
            in_flight.remove(&fp);
        }
        entry.waiters
    };
    if waiters.is_empty() {
        return;
    }
    // Waiters never touched the queue or a shard: they complete here as
    // cache hits served by the job that did the work.
    let mut hit = report.clone();
    hit.cache = Some(CacheOutcome::Hit);
    for waiter in waiters {
        inner.completed.fetch_add(1, Ordering::Relaxed);
        waiter.complete(hit.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{rcm_with_backend, BackendKind};
    use crate::testutil::scrambled_grid;
    use rcm_sparse::CooBuilder;

    fn path(n: usize) -> CscMatrix {
        let mut b = CooBuilder::new(n, n);
        for v in 0..(n - 1) as u32 {
            b.push_sym(v, v + 1);
        }
        b.build()
    }

    fn serial_service(cache: Option<CacheConfig>) -> OrderingService {
        let mut config =
            ServiceConfig::new(EngineConfig::builder().backend(BackendKind::Serial).build())
                .shards(2);
        config.cache = cache;
        OrderingService::start(config)
    }

    #[test]
    fn submit_wait_try_poll_roundtrip() {
        let service = serial_service(Some(CacheConfig::default()));
        let a = scrambled_grid(10, 7);
        let handle = service.submit(OrderingRequest::new(a.clone()));
        let report = handle.wait();
        assert_eq!(report.perm, rcm_with_backend(&a, BackendKind::Serial));
        assert_eq!(report.cache, Some(CacheOutcome::Miss));
        // After wait, try_poll and latency must agree it's done.
        assert_eq!(handle.try_poll().expect("done").perm, report.perm);
        assert!(handle.latency().expect("done") > Duration::ZERO);
        assert_eq!(service.try_poll(&handle).expect("done").perm, report.perm);
    }

    #[test]
    fn repeated_pattern_hits_the_cache_with_identical_perm() {
        let service = serial_service(Some(CacheConfig::default()));
        let a = scrambled_grid(12, 5);
        let first = service.submit(OrderingRequest::new(a.clone())).wait();
        assert_eq!(first.cache, Some(CacheOutcome::Miss));
        let second = service.submit(OrderingRequest::new(a.clone())).wait();
        assert_eq!(second.cache, Some(CacheOutcome::Hit));
        assert_eq!(first.perm, second.perm);
        assert_eq!(first.bandwidth_after, second.bandwidth_after);
        let stats = service.stats();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.completed, 2);
    }

    #[test]
    fn bypass_cache_never_touches_the_cache() {
        let service = serial_service(Some(CacheConfig::default()));
        let a = scrambled_grid(9, 4);
        let first = service
            .submit(OrderingRequest::new(a.clone()).bypass_cache())
            .wait();
        assert_eq!(first.cache, None);
        let second = service
            .submit(OrderingRequest::new(a.clone()).bypass_cache())
            .wait();
        assert_eq!(second.cache, None);
        assert_eq!(first.perm, second.perm);
        let stats = service.stats();
        assert_eq!(stats.cache_hits + stats.cache_misses, 0);
        assert_eq!(stats.cache_entries, 0);
    }

    #[test]
    fn uncached_service_still_orders_correctly() {
        let service = serial_service(None);
        let a = scrambled_grid(8, 3);
        let report = service.submit(OrderingRequest::new(a.clone())).wait();
        assert_eq!(report.cache, None);
        assert_eq!(report.perm, rcm_with_backend(&a, BackendKind::Serial));
        assert_eq!(service.stats().cache_entries, 0);
    }

    #[test]
    fn small_jobs_form_batch_groups() {
        // One shard so every small job funnels through the same worker;
        // submit a burst before the worker can drain it.
        let config =
            ServiceConfig::new(EngineConfig::builder().backend(BackendKind::Serial).build())
                .shards(1)
                .no_cache();
        let service = OrderingService::start(config);
        let mats: Vec<CscMatrix> = (0..24).map(|i| path(10 + (i % 5))).collect();
        let handles: Vec<JobHandle> = mats
            .iter()
            .map(|a| service.submit(OrderingRequest::new(a.clone())))
            .collect();
        for (a, h) in mats.iter().zip(&handles) {
            assert_eq!(h.wait().perm, rcm_with_backend(a, BackendKind::Serial));
        }
        // Scheduling-dependent, but with 24 queued small jobs and one
        // shard at least one group of ≥ 2 must have formed.
        assert!(
            service.stats().batched >= 2,
            "no batch group formed: {:?}",
            service.stats()
        );
    }

    #[test]
    fn drop_drains_pending_jobs() {
        let service = serial_service(None);
        let mats: Vec<CscMatrix> = (0..8).map(|i| scrambled_grid(6 + i % 3, 5)).collect();
        let handles: Vec<JobHandle> = mats
            .iter()
            .map(|a| service.submit(OrderingRequest::new(a.clone())))
            .collect();
        drop(service);
        for (a, h) in mats.iter().zip(&handles) {
            let report = h.try_poll().expect("drop must drain pending jobs");
            assert_eq!(report.perm, rcm_with_backend(a, BackendKind::Serial));
        }
    }

    #[test]
    fn collision_on_the_fingerprint_is_rejected_by_pattern_equality() {
        // Force two different patterns through the same fingerprint slot:
        // full equality on the stored pattern must turn the bogus hash hit
        // into a miss and keep both entries servable.
        let a = path(20);
        let b = scrambled_grid(5, 3);
        let mut cache = PatternCache::new(CacheConfig::new(1 << 20));
        let report_a = OrderingEngine::new(EngineConfig::builder().build()).order(&a);
        let report_b = OrderingEngine::new(EngineConfig::builder().build()).order(&b);
        let fp = 0xDEAD_BEEF; // deliberately shared, unlike the real hashes
        cache.insert(fp, &a, &report_a, StartNode::GeorgeLiu);
        assert!(
            cache.lookup(fp, &b, StartNode::GeorgeLiu).is_none(),
            "a colliding pattern must not return the wrong permutation"
        );
        assert_eq!(cache.stats().misses, 1);
        cache.insert(fp, &b, &report_b, StartNode::GeorgeLiu);
        // Both patterns now coexist under one fingerprint.
        assert_eq!(
            cache
                .lookup(fp, &a, StartNode::GeorgeLiu)
                .expect("entry a")
                .perm,
            report_a.perm
        );
        assert_eq!(
            cache
                .lookup(fp, &b, StartNode::GeorgeLiu)
                .expect("entry b")
                .perm,
            report_b.perm
        );
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn lru_eviction_respects_the_nnz_bound() {
        let mats: Vec<CscMatrix> = (0..6).map(|i| path(30 + i)).collect();
        let mut engine = OrderingEngine::new(EngineConfig::builder().build());
        let reports: Vec<OrderingReport> = mats.iter().map(|a| engine.order(a)).collect();
        // Room for roughly two path patterns (~62 nnz, weight ≥ n+1 each).
        let mut cache = PatternCache::new(CacheConfig::new(160));
        for (a, r) in mats.iter().zip(&reports) {
            cache.insert(a.pattern_fingerprint(), a, r, StartNode::GeorgeLiu);
        }
        let stats = cache.stats();
        assert!(stats.evictions > 0, "bound must force evictions: {stats:?}");
        assert!(stats.stored_nnz <= 160, "{stats:?}");
        // The most recently inserted pattern survived; the first is gone.
        let last = mats.last().expect("non-empty");
        assert!(cache
            .lookup(last.pattern_fingerprint(), last, StartNode::GeorgeLiu)
            .is_some());
        assert!(cache
            .lookup(
                mats[0].pattern_fingerprint(),
                &mats[0],
                StartNode::GeorgeLiu
            )
            .is_none());
    }

    #[test]
    fn oversized_pattern_is_not_cached() {
        let a = path(100); // weight ≥ 101 > bound
        let mut engine = OrderingEngine::new(EngineConfig::builder().build());
        let report = engine.order(&a);
        let mut cache = PatternCache::new(CacheConfig::new(50));
        cache.insert(a.pattern_fingerprint(), &a, &report, StartNode::GeorgeLiu);
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().insertions, 0);
    }

    #[test]
    fn reinserting_a_cached_pattern_does_not_duplicate_it() {
        let a = path(25);
        let mut engine = OrderingEngine::new(EngineConfig::builder().build());
        let report = engine.order(&a);
        let mut cache = PatternCache::new(CacheConfig::new(1 << 20));
        let fp = a.pattern_fingerprint();
        cache.insert(fp, &a, &report, StartNode::GeorgeLiu);
        cache.insert(fp, &a, &report, StartNode::GeorgeLiu);
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.insertions, 1);
    }

    #[test]
    fn cache_misses_across_start_node_strategies() {
        // One pattern, four strategies: an entry stored under one strategy
        // must never satisfy a lookup under another — the permutations
        // differ. Same strategy still hits.
        let a = scrambled_grid(7, 5);
        let fp = a.pattern_fingerprint();
        let mut cache = PatternCache::new(CacheConfig::new(1 << 20));
        let report = OrderingEngine::new(
            EngineConfig::builder()
                .start_node(StartNode::GeorgeLiu)
                .build(),
        )
        .order(&a);
        cache.insert(fp, &a, &report, StartNode::GeorgeLiu);
        for other in [
            StartNode::BiCriteria,
            StartNode::MinDegree,
            StartNode::Fixed(3),
        ] {
            assert!(
                cache.lookup(fp, &a, other).is_none(),
                "a {} lookup must miss an entry cached under george-liu",
                other.name()
            );
        }
        assert!(cache.lookup(fp, &a, StartNode::GeorgeLiu).is_some());
        // Each strategy caches independently; all four coexist.
        for strategy in [
            StartNode::BiCriteria,
            StartNode::MinDegree,
            StartNode::Fixed(3),
        ] {
            let r =
                OrderingEngine::new(EngineConfig::builder().start_node(strategy).build()).order(&a);
            cache.insert(fp, &a, &r, strategy);
            assert_eq!(
                cache.lookup(fp, &a, strategy).expect("own entry").perm,
                r.perm
            );
        }
        assert_eq!(cache.stats().entries, 4);
    }

    #[test]
    fn concurrent_identical_submits_coalesce_onto_one_computation() {
        // One shard kept busy by a few large distinct jobs, so the repeated
        // pattern is still in flight when its duplicates arrive.
        let config =
            ServiceConfig::new(EngineConfig::builder().backend(BackendKind::Serial).build())
                .shards(1);
        let service = OrderingService::start(config);
        let busywork: Vec<JobHandle> = [13, 17, 19, 21]
            .iter()
            .map(|&stride| service.submit(OrderingRequest::new(scrambled_grid(40, stride))))
            .collect();
        let a = scrambled_grid(9, 7);
        let primary = service.submit(OrderingRequest::new(a.clone()));
        let dups: Vec<JobHandle> = (0..5)
            .map(|_| service.submit(OrderingRequest::new(a.clone())))
            .collect();
        let expected = primary.wait();
        assert_eq!(expected.cache, Some(CacheOutcome::Miss));
        for d in &dups {
            let report = d.wait();
            assert_eq!(report.perm, expected.perm);
            assert_eq!(report.cache, Some(CacheOutcome::Hit));
        }
        for h in &busywork {
            h.wait();
        }
        let stats = service.stats();
        assert_eq!(stats.coalesced, 5, "{stats:?}");
        assert_eq!(stats.submitted, 10);
        assert_eq!(stats.completed, 10);
        // The duplicates never reached a shard: 4 busywork + 1 primary.
        assert_eq!(stats.per_shard.iter().sum::<usize>(), 5);
        // They found the computation in flight, not in the cache.
        assert_eq!(stats.cache_hits, 0, "{stats:?}");
        // A post-completion submit is an ordinary cache hit, not coalesced.
        let late = service.submit(OrderingRequest::new(a.clone())).wait();
        assert_eq!(late.cache, Some(CacheOutcome::Hit));
        let stats = service.stats();
        assert_eq!(stats.coalesced, 5);
        assert_eq!(stats.cache_hits, 1);
    }

    #[test]
    fn bypassing_submits_do_not_coalesce() {
        let service = serial_service(Some(CacheConfig::default()));
        let a = scrambled_grid(8, 5);
        let handles: Vec<JobHandle> = (0..3)
            .map(|_| service.submit(OrderingRequest::new(a.clone()).bypass_cache()))
            .collect();
        let first = handles[0].wait();
        for h in &handles {
            let report = h.wait();
            assert_eq!(report.cache, None);
            assert_eq!(report.perm, first.perm);
        }
        let stats = service.stats();
        assert_eq!(stats.coalesced, 0);
        assert_eq!(stats.per_shard.iter().sum::<usize>(), 3);
    }

    #[test]
    fn split_component_shards_match_the_sequential_driver() {
        // Two disjoint scrambled paths interleaved over odd/even ids.
        let n = 60;
        let mut b = CooBuilder::new(n, n);
        for v in (0..n as u32 - 2).step_by(2) {
            b.push_sym(v, v + 2); // even path
        }
        for v in (1..n as u32 - 2).step_by(2) {
            b.push_sym(v, v + 2); // odd path
        }
        let a = b.build();
        let config = ServiceConfig::new(
            EngineConfig::builder()
                .backend(BackendKind::Pooled { threads: 2 })
                .split_components(true)
                .build(),
        )
        .shards(2);
        let service = OrderingService::start(config);
        let report = service
            .submit(OrderingRequest::new(a.clone()).bypass_cache())
            .wait();
        assert_eq!(
            report.perm,
            rcm_with_backend(&a, BackendKind::Pooled { threads: 2 })
        );
        assert_eq!(report.stats.components, 2);
        // Cached resubmission of a split-ordered pattern stays identical.
        let first = service.submit(OrderingRequest::new(a.clone())).wait();
        let second = service.submit(OrderingRequest::new(a.clone())).wait();
        assert_eq!(first.perm, report.perm);
        assert_eq!(second.perm, report.perm);
        assert_eq!(second.cache, Some(CacheOutcome::Hit));
    }

    #[test]
    fn per_shard_counters_sum_to_engine_completions() {
        let service = serial_service(Some(CacheConfig::default()));
        let mats: Vec<CscMatrix> = (0..6).map(|i| scrambled_grid(7 + i, 13)).collect();
        let handles: Vec<JobHandle> = mats
            .iter()
            .map(|a| service.submit(OrderingRequest::new(a.clone())))
            .collect();
        for h in &handles {
            h.wait();
        }
        let stats = service.stats();
        assert_eq!(stats.completed, mats.len());
        // Every job missed (all patterns distinct), so every completion
        // ran on a shard.
        assert_eq!(stats.per_shard.iter().sum::<usize>(), mats.len());
    }
}
