//! The distributed-memory RCM algorithm — Algorithms 3 and 4 of the paper
//! executed on the `rcm-dist` simulated runtime.
//!
//! Since the [`crate::driver`] refactor this module holds only the run
//! configuration and result types plus the [`dist_rcm`] shim: the
//! BFS/peripheral/labeling pipeline lives **once** in
//! [`crate::driver::drive_cm`], and `dist_rcm` runs it on
//! [`crate::backends::DistBackend`] (flat MPI) or
//! [`crate::backends::HybridBackend`] (`threads_per_proc > 1`, the Fig. 6
//! MPI×OpenMP configuration). Every step charges simulated time to a
//! [`rcm_dist::SimClock`] under the phase taxonomy of Fig. 4
//! (`Peripheral/Ordering × SpMSpV/Sort/Other`), which is what the
//! benchmark harness plots.
//!
//! Determinism: with `balance_seed = None` the returned permutation is
//! *identical* to [`crate::algebraic::algebraic_rcm`] for every grid size
//! and thread count — the cross-backend tests rely on this. A load-balance
//! permutation relabels vertices internally, which can change
//! `(degree, id)` tie-breaks; quality is unaffected but exact orderings may
//! differ.

use crate::driver::{ExpandDirection, StartNode};
pub use crate::driver::{LevelStat, PeripheralStat};
use rcm_dist::{HybridConfig, MachineModel};
use rcm_sparse::{CscMatrix, Permutation};

/// How (and whether) frontier vertices are sorted before labeling — the
/// §VI "future work" ablation knob.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SortMode {
    /// Per-level distributed bucket sort (the paper's algorithm).
    #[default]
    Full,
    /// No sorting: label frontier vertices in global index order. Saves the
    /// per-level AllToAlls at the price of ordering quality.
    NoSort,
    /// Label by BFS level only, with one global sort at the very end keyed
    /// by `(level, degree, vertex)`.
    GlobalSortAtEnd,
    /// Per-level sorting like [`SortMode::Full`], but with a *general* PSRS
    /// sample sort instead of the paper's specialized bucket sort — the
    /// §IV-B "state-of-the-art general sorting library" baseline. Produces
    /// the identical ordering at a higher simulated cost.
    GeneralSamplesort,
}

/// Configuration of a distributed RCM run.
#[derive(Clone, Copy, Debug)]
pub struct DistRcmConfig {
    /// Machine cost model.
    pub machine: MachineModel,
    /// Cores and threads-per-process.
    pub hybrid: HybridConfig,
    /// Seed of the load-balance permutation (§IV-A); `None` disables it.
    pub balance_seed: Option<u64>,
    /// Sorting strategy (ablation; default = the paper's algorithm).
    pub sort_mode: SortMode,
    /// Frontier-expansion direction policy (forced push/pull or the
    /// Beamer-style adaptive switch). Every policy produces the identical
    /// permutation; the constructors default it from `RCM_DIRECTION`.
    pub direction: ExpandDirection,
    /// Start-node selection strategy (George–Liu sweep, RCM++ bi-criteria,
    /// a fixed vertex, or zero-sweep min-degree). The constructors default
    /// it from `RCM_START_NODE`.
    pub start_node: StartNode,
}

impl DistRcmConfig {
    /// The paper's preferred configuration: Edison model, 6 threads/process.
    pub fn hybrid_on_edison(cores: usize) -> Self {
        DistRcmConfig {
            machine: MachineModel::edison(),
            hybrid: HybridConfig::new(cores, 6),
            balance_seed: None,
            sort_mode: SortMode::Full,
            direction: ExpandDirection::from_env(),
            start_node: StartNode::from_env(),
        }
    }

    /// Flat-MPI configuration (1 thread per process, Fig. 6).
    pub fn flat_on_edison(cores: usize) -> Self {
        DistRcmConfig {
            machine: MachineModel::edison(),
            hybrid: HybridConfig::new(cores, 1),
            balance_seed: None,
            sort_mode: SortMode::Full,
            direction: ExpandDirection::from_env(),
            start_node: StartNode::from_env(),
        }
    }
}

/// Result of a distributed RCM run.
#[derive(Clone, Debug)]
pub struct DistRcmResult {
    /// The RCM ordering (old vertex id → new label), in *original* ids.
    pub perm: Permutation,
    /// Simulated wall-clock seconds (sum of all phases).
    pub sim_seconds: f64,
    /// Per-phase compute/communication breakdown (Figs. 4–6).
    pub breakdown: rcm_dist::Breakdown,
    /// Process-grid side length (`√p′`).
    pub grid_side: usize,
    /// Threads per process used by the cost model.
    pub threads_per_proc: usize,
    /// Connected components labeled.
    pub components: usize,
    /// BFS sweeps spent in pseudo-peripheral searches.
    pub peripheral_bfs: usize,
    /// Frontier-expansion iterations in the ordering passes.
    pub levels: usize,
    /// Total messages the cost model counted.
    pub messages: u64,
    /// Total bytes the cost model counted.
    pub bytes: u64,
    /// Frontier expansions (ordering and peripheral) that ran top-down.
    pub push_expands: usize,
    /// Frontier expansions (ordering and peripheral) that ran bottom-up
    /// (dense-allgather pull).
    pub pull_expands: usize,
    /// Per-level trace of the ordering passes (concatenated across
    /// components), including the direction chosen per level.
    pub level_stats: Vec<LevelStat>,
    /// Per-component peripheral-search trace (start vertex, sweeps run,
    /// BFS levels traversed, final eccentricity).
    pub peripheral_stats: Vec<PeripheralStat>,
}

/// Run distributed RCM on a symmetric pattern matrix.
///
/// A thin shim over a per-call [`crate::engine::OrderingEngine`]:
/// `threads_per_proc > 1` selects the hybrid backend (compute charged
/// through [`MachineModel::thread_speedup`]), otherwise the flat one — the
/// data path, and therefore the permutation, is identical either way.
/// Sessions that order many matrices should hold a warm engine instead.
///
/// Panics when the configuration's process count is not a perfect square
/// (the paper's CombBLAS restriction, §V-A).
pub fn dist_rcm(a: &CscMatrix, config: &DistRcmConfig) -> DistRcmResult {
    let kind = if config.hybrid.threads_per_proc > 1 {
        crate::driver::BackendKind::Hybrid {
            cores: config.hybrid.cores,
            threads_per_proc: config.hybrid.threads_per_proc,
        }
    } else {
        crate::driver::BackendKind::Dist {
            cores: config.hybrid.cores,
        }
    };
    let engine_cfg = crate::engine::EngineConfig::builder()
        .backend(kind)
        .direction(config.direction)
        .start_node(config.start_node)
        .dist(*config)
        .build();
    crate::engine::OrderingEngine::new(engine_cfg).order_dist(a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebraic::algebraic_rcm;
    use rcm_dist::Phase;
    use rcm_sparse::{matrix_bandwidth, CooBuilder, Vidx};

    fn scrambled_path(n: usize, stride: usize) -> CscMatrix {
        let mut b = CooBuilder::new(n, n);
        for v in 0..n - 1 {
            b.push_sym(v as Vidx, (v + 1) as Vidx);
        }
        let a = b.build();
        let perm: Vec<Vidx> = (0..n).map(|i| ((i * stride) % n) as Vidx).collect();
        a.permute_sym(&Permutation::from_new_of_old(perm).unwrap())
    }

    fn grid_graph(w: usize) -> CscMatrix {
        let mut b = CooBuilder::new(w * w, w * w);
        for y in 0..w {
            for x in 0..w {
                let u = (y * w + x) as Vidx;
                if x + 1 < w {
                    b.push_sym(u, u + 1);
                }
                if y + 1 < w {
                    b.push_sym(u, u + w as Vidx);
                }
            }
        }
        b.build()
    }

    fn config_with_cores(cores: usize) -> DistRcmConfig {
        DistRcmConfig {
            machine: MachineModel::edison(),
            hybrid: HybridConfig::new(cores, 1),
            balance_seed: None,
            sort_mode: SortMode::Full,
            direction: ExpandDirection::from_env(),
            start_node: StartNode::GeorgeLiu,
        }
    }

    #[test]
    fn distributed_equals_algebraic_on_every_grid() {
        let a = scrambled_path(37, 11);
        let (expect, _) = algebraic_rcm(&a);
        for procs in [1usize, 4, 9, 16] {
            let res = dist_rcm(&a, &config_with_cores(procs));
            assert_eq!(res.perm, expect, "diverged on {procs} ranks");
        }
    }

    #[test]
    fn distributed_equals_algebraic_on_2d_grid_graph() {
        let a = grid_graph(11);
        let (expect, _) = algebraic_rcm(&a);
        for procs in [1usize, 9, 25] {
            let res = dist_rcm(&a, &config_with_cores(procs));
            assert_eq!(res.perm, expect, "diverged on {procs} ranks");
        }
    }

    #[test]
    fn distributed_handles_components() {
        let mut b = CooBuilder::new(12, 12);
        b.push_sym(0, 1);
        b.push_sym(1, 2);
        b.push_sym(5, 6);
        b.push_sym(7, 8);
        b.push_sym(8, 9);
        b.push_sym(9, 7);
        let a = b.build();
        let (expect, _) = algebraic_rcm(&a);
        let res = dist_rcm(&a, &config_with_cores(4));
        assert_eq!(res.perm, expect);
        assert_eq!(res.components, 7); // {0,1,2} {3} {4} {5,6} {7,8,9} {10} {11}
    }

    #[test]
    fn balance_permutation_preserves_quality() {
        let a = scrambled_path(60, 17);
        let plain = dist_rcm(&a, &config_with_cores(4));
        let mut cfg = config_with_cores(4);
        cfg.balance_seed = Some(99);
        let balanced = dist_rcm(&a, &cfg);
        let bw_plain = matrix_bandwidth(&a.permute_sym(&plain.perm));
        let bw_balanced = matrix_bandwidth(&a.permute_sym(&balanced.perm));
        assert_eq!(bw_plain, 1);
        assert_eq!(bw_balanced, 1);
    }

    #[test]
    fn more_ranks_cost_more_communication() {
        let a = grid_graph(14);
        let r1 = dist_rcm(&a, &config_with_cores(1));
        let r16 = dist_rcm(&a, &config_with_cores(16));
        assert_eq!(r1.breakdown.comm_total(), 0.0);
        assert!(r16.breakdown.comm_total() > 0.0);
        assert!(r16.messages > 0);
        // Compute per rank shrinks: the max-over-ranks compute on 16 ranks
        // must be below the single-rank compute.
        assert!(r16.breakdown.compute_total() < r1.breakdown.compute_total());
    }

    #[test]
    fn hybrid_threads_speed_up_compute() {
        let a = grid_graph(14);
        let mut flat = config_with_cores(4);
        flat.hybrid = HybridConfig::new(4, 1);
        let mut hybrid = config_with_cores(4);
        hybrid.hybrid = HybridConfig::new(24, 6); // same 4-rank grid, 6 threads
        let rf = dist_rcm(&a, &flat);
        let rh = dist_rcm(&a, &hybrid);
        assert_eq!(rf.perm, rh.perm);
        assert!(rh.breakdown.compute_total() < rf.breakdown.compute_total());
        assert_eq!(rf.grid_side, rh.grid_side);
    }

    #[test]
    fn nosort_is_valid_but_lower_quality_on_grids() {
        let a = grid_graph(13);
        let mut cfg = config_with_cores(4);
        cfg.sort_mode = SortMode::NoSort;
        let res = dist_rcm(&a, &cfg);
        assert_eq!(res.perm.len(), a.n_rows());
        // Still a bandwidth reducer on a shuffled path, just not optimal.
        let full = dist_rcm(&a, &config_with_cores(4));
        let bw_nosort = matrix_bandwidth(&a.permute_sym(&res.perm));
        let bw_full = matrix_bandwidth(&a.permute_sym(&full.perm));
        assert!(bw_full <= bw_nosort);
    }

    #[test]
    fn global_sort_at_end_is_valid() {
        let a = grid_graph(9);
        let mut cfg = config_with_cores(4);
        cfg.sort_mode = SortMode::GlobalSortAtEnd;
        let res = dist_rcm(&a, &cfg);
        assert_eq!(res.perm.len(), a.n_rows());
        let bw = matrix_bandwidth(&a.permute_sym(&res.perm));
        assert!(
            bw < a.n_rows() / 2,
            "global-sort RCM should still help: {bw}"
        );
    }

    #[test]
    fn breakdown_phases_are_populated() {
        let a = grid_graph(12);
        let res = dist_rcm(&a, &config_with_cores(9));
        for ph in Phase::ALL {
            let pair = res.breakdown.get(ph);
            assert!(pair.compute > 0.0 || pair.comm > 0.0, "{ph:?} empty");
        }
        assert!(res.peripheral_bfs >= 2);
        assert!(res.levels > 0);
        assert!((res.sim_seconds - res.breakdown.total()).abs() < 1e-12);
    }
}
