//! The distributed-memory RCM algorithm — Algorithms 3 and 4 of the paper
//! executed on the `rcm-dist` simulated runtime.
//!
//! The driver reproduces the paper's structure exactly:
//!
//! 1. Distribute the matrix over a square `√p′ × √p′` process grid
//!    (`p′` = cores / threads-per-process), optionally applying the random
//!    load-balance permutation of §IV-A.
//! 2. Find a pseudo-peripheral vertex with repeated level-synchronous BFS
//!    (Algorithm 4): distributed SpMSpV over `(select2nd, min)`, SELECT of
//!    unvisited vertices, SET of level numbers, and a final REDUCE picking
//!    the minimum-degree vertex of the last level.
//! 3. Label the component (Algorithm 3): the same BFS skeleton plus the
//!    distributed SORTPERM bucket sort that assigns labels in
//!    `(parent label, degree, vertex)` order.
//! 4. Repeat 2–3 per connected component; reverse all labels; map back to
//!    original vertex ids.
//!
//! Every step charges simulated time to a [`SimClock`] under the phase
//! taxonomy of Fig. 4 (`Peripheral/Ordering × SpMSpV/Sort/Other`), which is
//! what the benchmark harness plots.
//!
//! Determinism: with `balance_seed = None` the returned permutation is
//! *identical* to [`crate::algebraic::algebraic_rcm`] for every grid size —
//! the cross-implementation tests rely on this. A load-balance permutation
//! relabels vertices internally, which can change `(degree, id)` tie-breaks;
//! quality is unaffected but exact orderings may differ.

use rcm_dist::{
    dist_argmin, dist_find_unvisited_min_degree, dist_gather_values, dist_is_nonempty, dist_select,
    dist_set, dist_sortperm, dist_spmspv, DistCscMatrix, DistDenseVec, DistSparseVec,
    DistSpmspvWorkspace, HybridConfig, MachineModel, Phase, SimClock,
};
use rcm_sparse::{CscMatrix, Label, Permutation, Select2ndMin, Vidx, UNVISITED};

/// How (and whether) frontier vertices are sorted before labeling — the
/// §VI "future work" ablation knob.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SortMode {
    /// Per-level distributed bucket sort (the paper's algorithm).
    #[default]
    Full,
    /// No sorting: label frontier vertices in global index order. Saves the
    /// per-level AllToAlls at the price of ordering quality.
    NoSort,
    /// Label by BFS level only, with one global sort at the very end keyed
    /// by `(level, degree, vertex)`.
    GlobalSortAtEnd,
    /// Per-level sorting like [`SortMode::Full`], but with a *general* PSRS
    /// sample sort instead of the paper's specialized bucket sort — the
    /// §IV-B "state-of-the-art general sorting library" baseline. Produces
    /// the identical ordering at a higher simulated cost.
    GeneralSamplesort,
}

/// Configuration of a distributed RCM run.
#[derive(Clone, Copy, Debug)]
pub struct DistRcmConfig {
    /// Machine cost model.
    pub machine: MachineModel,
    /// Cores and threads-per-process.
    pub hybrid: HybridConfig,
    /// Seed of the load-balance permutation (§IV-A); `None` disables it.
    pub balance_seed: Option<u64>,
    /// Sorting strategy (ablation; default = the paper's algorithm).
    pub sort_mode: SortMode,
}

impl DistRcmConfig {
    /// The paper's preferred configuration: Edison model, 6 threads/process.
    pub fn hybrid_on_edison(cores: usize) -> Self {
        DistRcmConfig {
            machine: MachineModel::edison(),
            hybrid: HybridConfig::new(cores, 6),
            balance_seed: None,
            sort_mode: SortMode::Full,
        }
    }

    /// Flat-MPI configuration (1 thread per process, Fig. 6).
    pub fn flat_on_edison(cores: usize) -> Self {
        DistRcmConfig {
            machine: MachineModel::edison(),
            hybrid: HybridConfig::new(cores, 1),
            balance_seed: None,
            sort_mode: SortMode::Full,
        }
    }
}

/// Per-BFS-level execution record of the ordering pass (level-synchronous
/// behaviour made visible: frontier width and simulated time per level).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LevelStat {
    /// Vertices labeled in this level.
    pub frontier: usize,
    /// Simulated seconds this level took (all phases).
    pub seconds: f64,
}

/// Result of a distributed RCM run.
#[derive(Clone, Debug)]
pub struct DistRcmResult {
    /// The RCM ordering (old vertex id → new label), in *original* ids.
    pub perm: Permutation,
    /// Simulated wall-clock seconds (sum of all phases).
    pub sim_seconds: f64,
    /// Per-phase compute/communication breakdown (Figs. 4–6).
    pub breakdown: rcm_dist::Breakdown,
    /// Process-grid side length (`√p′`).
    pub grid_side: usize,
    /// Threads per process used by the cost model.
    pub threads_per_proc: usize,
    /// Connected components labeled.
    pub components: usize,
    /// BFS sweeps spent in pseudo-peripheral searches.
    pub peripheral_bfs: usize,
    /// Frontier-expansion iterations in the ordering passes.
    pub levels: usize,
    /// Total messages the cost model counted.
    pub messages: u64,
    /// Total bytes the cost model counted.
    pub bytes: u64,
    /// Per-level trace of the ordering passes (concatenated across
    /// components).
    pub level_stats: Vec<LevelStat>,
}

/// Distributed pseudo-peripheral search (Algorithm 4) from `start`.
/// Returns the vertex and its eccentricity; charges `Peripheral*` phases.
fn dist_pseudo_peripheral(
    a: &DistCscMatrix,
    degrees: &DistDenseVec<Vidx>,
    start: Vidx,
    ws: &mut DistSpmspvWorkspace<Label>,
    clock: &mut SimClock,
    bfs_count: &mut usize,
) -> (Vidx, usize) {
    let layout = a.layout().clone();
    let mut r = start;
    let mut nlvl: i64 = -1;
    loop {
        // One full level-synchronous BFS from r.
        clock.set_phase(Phase::PeripheralOther);
        let mut levels: DistDenseVec<Label> = DistDenseVec::filled(layout.clone(), UNVISITED);
        clock.charge_elems(layout.max_local_len());
        levels.set(r, 0);
        let mut cur = DistSparseVec::singleton(layout.clone(), r, 0 as Label);
        let mut ecc: i64 = 0;
        *bfs_count += 1;
        loop {
            clock.set_phase(Phase::PeripheralOther);
            dist_gather_values(&mut cur, &levels, clock);
            clock.set_phase(Phase::PeripheralSpmspv);
            let next = dist_spmspv::<Label, Select2ndMin>(a, &cur, ws, clock);
            clock.set_phase(Phase::PeripheralOther);
            let mut next = dist_select(&next, &levels, |l| l == UNVISITED, clock);
            if !dist_is_nonempty(&next, clock) {
                break;
            }
            ecc += 1;
            // Stamp the new frontier with its level and record it in L.
            let mut max_scan = 0usize;
            for part in &mut next.parts {
                max_scan = max_scan.max(part.len());
                for (_, v) in part.iter_mut() {
                    *v = ecc;
                }
            }
            clock.charge_elems(max_scan);
            dist_set(&mut levels, &next, clock);
            cur = next;
        }
        if ecc <= nlvl {
            return (r, ecc as usize);
        }
        nlvl = ecc;
        // r ← REDUCE(L_cur, D): minimum-degree vertex of the last level.
        clock.set_phase(Phase::PeripheralOther);
        let v = dist_argmin(&cur, degrees, clock).unwrap_or(r);
        if v == r {
            return (r, ecc as usize);
        }
        r = v;
    }
}

/// Assign labels to the frontier without sorting (SortMode::NoSort): global
/// index order via an ExScan of per-rank counts.
fn assign_unsorted_labels(
    next: &DistSparseVec<Label>,
    nv: Label,
    clock: &mut SimClock,
) -> (DistSparseVec<Label>, usize) {
    let p = next.layout.nprocs();
    let machine = *clock.machine();
    let mut parts = Vec::with_capacity(p);
    let mut running = 0usize;
    let mut max_scan = 0usize;
    for part in &next.parts {
        max_scan = max_scan.max(part.len());
        let labeled: Vec<(Vidx, Label)> = part
            .iter()
            .enumerate()
            .map(|(k, &(g, _))| (g, nv + (running + k) as Label))
            .collect();
        running += part.len();
        parts.push(labeled);
    }
    clock.charge_elems(max_scan);
    if p > 1 {
        clock.charge_comm(machine.t_allreduce(p, 8), p as u64, 8);
    }
    (
        DistSparseVec {
            layout: next.layout.clone(),
            parts,
        },
        running,
    )
}

/// Label one component (Algorithm 3) rooted at `root`. Returns the number of
/// ordering levels traversed.
#[allow(clippy::too_many_arguments)]
fn dist_label_component(
    a: &DistCscMatrix,
    degrees: &DistDenseVec<Vidx>,
    root: Vidx,
    order: &mut DistDenseVec<Label>,
    nv: &mut Label,
    sort_mode: SortMode,
    ws: &mut DistSpmspvWorkspace<Label>,
    clock: &mut SimClock,
    level_stats: &mut Vec<LevelStat>,
) -> usize {
    let layout = a.layout().clone();
    let mut levels = 0usize;

    if sort_mode == SortMode::GlobalSortAtEnd {
        // BFS stamping levels, then one global SORTPERM keyed by
        // (level, degree, vertex) over the whole component.
        let component = dist_bfs_levels(a, root, order, ws, clock);
        let ecc = component
            .parts
            .iter()
            .flatten()
            .map(|&(_, l)| l)
            .max()
            .unwrap_or(0);
        clock.set_phase(Phase::OrderingSort);
        let (labels, count) = dist_sortperm(&component, degrees, (0, ecc + 1), *nv, clock);
        clock.set_phase(Phase::OrderingOther);
        dist_set(order, &labels, clock);
        *nv += count as Label;
        return ecc as usize;
    }

    clock.set_phase(Phase::OrderingOther);
    order.set(root, *nv);
    let mut batch_start = *nv;
    *nv += 1;
    let mut cur = DistSparseVec::singleton(layout, root, 0 as Label);

    loop {
        let level_t0 = clock.now();
        clock.set_phase(Phase::OrderingOther);
        // L_cur ← SET(L_cur, R).
        dist_gather_values(&mut cur, order, clock);
        // L_next ← SPMSPV(A, L_cur, (select2nd, min)).
        clock.set_phase(Phase::OrderingSpmspv);
        let next = dist_spmspv::<Label, Select2ndMin>(a, &cur, ws, clock);
        // L_next ← SELECT(L_next, R = −1).
        clock.set_phase(Phase::OrderingOther);
        let next = dist_select(&next, order, |r| r == UNVISITED, clock);
        if !dist_is_nonempty(&next, clock) {
            break;
        }
        levels += 1;
        // R_next ← SORTPERM(L_next, D) + nv.
        let (labels, count) = match sort_mode {
            SortMode::Full => {
                clock.set_phase(Phase::OrderingSort);
                dist_sortperm(&next, degrees, (batch_start, *nv), *nv, clock)
            }
            SortMode::NoSort => {
                clock.set_phase(Phase::OrderingOther);
                assign_unsorted_labels(&next, *nv, clock)
            }
            SortMode::GeneralSamplesort => {
                clock.set_phase(Phase::OrderingSort);
                rcm_dist::dist_sortperm_samplesort(&next, degrees, *nv, clock)
            }
            SortMode::GlobalSortAtEnd => unreachable!("handled above"),
        };
        // R ← SET(R, R_next); nv ← nv + nnz(R_next).
        clock.set_phase(Phase::OrderingOther);
        dist_set(order, &labels, clock);
        batch_start = *nv;
        *nv += count as Label;
        level_stats.push(LevelStat {
            frontier: count,
            seconds: clock.now() - level_t0,
        });
        cur = next;
    }
    levels
}

/// Plain BFS stamping 1-based levels of `root`'s component into a sparse
/// result (and marking `order` with a placeholder so SELECT keeps working).
/// Used only by `SortMode::GlobalSortAtEnd`.
fn dist_bfs_levels(
    a: &DistCscMatrix,
    root: Vidx,
    order: &mut DistDenseVec<Label>,
    ws: &mut DistSpmspvWorkspace<Label>,
    clock: &mut SimClock,
) -> DistSparseVec<Label> {
    let layout = a.layout().clone();
    clock.set_phase(Phase::OrderingOther);
    // Reuse `order` as the visited marker with a sentinel the final SET will
    // overwrite (labels are assigned by the caller's global sortperm).
    const VISITING: Label = Label::MAX;
    order.set(root, VISITING);
    let mut all = DistSparseVec::singleton(layout.clone(), root, 0 as Label);
    let mut cur = all.clone();
    let mut level: Label = 0;
    loop {
        clock.set_phase(Phase::OrderingSpmspv);
        let next = dist_spmspv::<Label, Select2ndMin>(a, &cur, ws, clock);
        clock.set_phase(Phase::OrderingOther);
        let mut next = dist_select(&next, order, |r| r == UNVISITED, clock);
        if !dist_is_nonempty(&next, clock) {
            break;
        }
        level += 1;
        let mut max_scan = 0usize;
        for part in &mut next.parts {
            max_scan = max_scan.max(part.len());
            for (_, v) in part.iter_mut() {
                *v = level;
            }
        }
        clock.charge_elems(max_scan);
        let mut stamp = next.clone();
        for part in &mut stamp.parts {
            for (_, v) in part.iter_mut() {
                *v = VISITING;
            }
        }
        dist_set(order, &stamp, clock);
        // Accumulate (vertex, level) pairs.
        for (rank, part) in next.parts.iter().enumerate() {
            all.parts[rank].extend_from_slice(part);
        }
        cur = next;
    }
    for part in &mut all.parts {
        part.sort_unstable_by_key(|&(g, _)| g);
    }
    all
}

/// Run distributed RCM on a symmetric pattern matrix.
///
/// Panics when the configuration's process count is not a perfect square
/// (the paper's CombBLAS restriction, §V-A).
pub fn dist_rcm(a: &CscMatrix, config: &DistRcmConfig) -> DistRcmResult {
    let grid = config.hybrid.grid().unwrap_or_else(|| {
        panic!(
            "{} processes do not form a square grid",
            config.hybrid.nprocs()
        )
    });
    let dmat = DistCscMatrix::from_global(grid, a, config.balance_seed);
    let mut clock = SimClock::new(config.machine, config.hybrid.threads_per_proc);
    let n = a.n_rows();

    let degrees = dmat.degrees_dvec();
    clock.set_phase(Phase::OrderingOther);
    let mut order: DistDenseVec<Label> = DistDenseVec::filled(dmat.layout().clone(), UNVISITED);
    clock.charge_elems(dmat.layout().max_local_len());

    let mut nv: Label = 0;
    let mut components = 0usize;
    let mut peripheral_bfs = 0usize;
    let mut levels = 0usize;
    let mut level_stats: Vec<LevelStat> = Vec::new();
    // One SpMSpV workspace for the entire run — every BFS sweep and every
    // ordering level reuses the same dense accumulator.
    let mut ws: DistSpmspvWorkspace<Label> = DistSpmspvWorkspace::new();
    while (nv as usize) < n {
        clock.set_phase(Phase::PeripheralOther);
        let seed = dist_find_unvisited_min_degree(&order, &degrees, &mut clock)
            .expect("unvisited vertex must exist");
        let (root, _ecc) = dist_pseudo_peripheral(
            &dmat,
            &degrees,
            seed,
            &mut ws,
            &mut clock,
            &mut peripheral_bfs,
        );
        components += 1;
        levels += dist_label_component(
            &dmat,
            &degrees,
            root,
            &mut order,
            &mut nv,
            config.sort_mode,
            &mut ws,
            &mut clock,
            &mut level_stats,
        );
    }

    // Reverse (CM → RCM) and map back to original vertex ids.
    let labels_internal: Vec<Vidx> = order
        .to_global()
        .iter()
        .map(|&l| (n as Label - 1 - l) as Vidx)
        .collect();
    let labels_original = dmat.to_original(&labels_internal);
    let perm = Permutation::from_new_of_old(labels_original).expect("RCM labels form a bijection");

    let messages = clock.messages;
    let bytes = clock.bytes;
    let breakdown = clock.into_breakdown();
    DistRcmResult {
        perm,
        sim_seconds: breakdown.total(),
        breakdown,
        grid_side: grid.pr,
        threads_per_proc: config.hybrid.threads_per_proc,
        components,
        peripheral_bfs,
        levels,
        messages,
        bytes,
        level_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebraic::algebraic_rcm;
    use rcm_sparse::{matrix_bandwidth, CooBuilder};

    fn scrambled_path(n: usize, stride: usize) -> CscMatrix {
        let mut b = CooBuilder::new(n, n);
        for v in 0..n - 1 {
            b.push_sym(v as Vidx, (v + 1) as Vidx);
        }
        let a = b.build();
        let perm: Vec<Vidx> = (0..n).map(|i| ((i * stride) % n) as Vidx).collect();
        a.permute_sym(&Permutation::from_new_of_old(perm).unwrap())
    }

    fn grid_graph(w: usize) -> CscMatrix {
        let mut b = CooBuilder::new(w * w, w * w);
        for y in 0..w {
            for x in 0..w {
                let u = (y * w + x) as Vidx;
                if x + 1 < w {
                    b.push_sym(u, u + 1);
                }
                if y + 1 < w {
                    b.push_sym(u, u + w as Vidx);
                }
            }
        }
        b.build()
    }

    fn config_with_cores(cores: usize) -> DistRcmConfig {
        DistRcmConfig {
            machine: MachineModel::edison(),
            hybrid: HybridConfig::new(cores, 1),
            balance_seed: None,
            sort_mode: SortMode::Full,
        }
    }

    #[test]
    fn distributed_equals_algebraic_on_every_grid() {
        let a = scrambled_path(37, 11);
        let (expect, _) = algebraic_rcm(&a);
        for procs in [1usize, 4, 9, 16] {
            let res = dist_rcm(&a, &config_with_cores(procs));
            assert_eq!(res.perm, expect, "diverged on {procs} ranks");
        }
    }

    #[test]
    fn distributed_equals_algebraic_on_2d_grid_graph() {
        let a = grid_graph(11);
        let (expect, _) = algebraic_rcm(&a);
        for procs in [1usize, 9, 25] {
            let res = dist_rcm(&a, &config_with_cores(procs));
            assert_eq!(res.perm, expect, "diverged on {procs} ranks");
        }
    }

    #[test]
    fn distributed_handles_components() {
        let mut b = CooBuilder::new(12, 12);
        b.push_sym(0, 1);
        b.push_sym(1, 2);
        b.push_sym(5, 6);
        b.push_sym(7, 8);
        b.push_sym(8, 9);
        b.push_sym(9, 7);
        let a = b.build();
        let (expect, _) = algebraic_rcm(&a);
        let res = dist_rcm(&a, &config_with_cores(4));
        assert_eq!(res.perm, expect);
        assert_eq!(res.components, 7); // {0,1,2} {3} {4} {5,6} {7,8,9} {10} {11}
    }

    #[test]
    fn balance_permutation_preserves_quality() {
        let a = scrambled_path(60, 17);
        let plain = dist_rcm(&a, &config_with_cores(4));
        let mut cfg = config_with_cores(4);
        cfg.balance_seed = Some(99);
        let balanced = dist_rcm(&a, &cfg);
        let bw_plain = matrix_bandwidth(&a.permute_sym(&plain.perm));
        let bw_balanced = matrix_bandwidth(&a.permute_sym(&balanced.perm));
        assert_eq!(bw_plain, 1);
        assert_eq!(bw_balanced, 1);
    }

    #[test]
    fn more_ranks_cost_more_communication() {
        let a = grid_graph(14);
        let r1 = dist_rcm(&a, &config_with_cores(1));
        let r16 = dist_rcm(&a, &config_with_cores(16));
        assert_eq!(r1.breakdown.comm_total(), 0.0);
        assert!(r16.breakdown.comm_total() > 0.0);
        assert!(r16.messages > 0);
        // Compute per rank shrinks: the max-over-ranks compute on 16 ranks
        // must be below the single-rank compute.
        assert!(r16.breakdown.compute_total() < r1.breakdown.compute_total());
    }

    #[test]
    fn hybrid_threads_speed_up_compute() {
        let a = grid_graph(14);
        let mut flat = config_with_cores(4);
        flat.hybrid = HybridConfig::new(4, 1);
        let mut hybrid = config_with_cores(4);
        hybrid.hybrid = HybridConfig::new(24, 6); // same 4-rank grid, 6 threads
        let rf = dist_rcm(&a, &flat);
        let rh = dist_rcm(&a, &hybrid);
        assert_eq!(rf.perm, rh.perm);
        assert!(rh.breakdown.compute_total() < rf.breakdown.compute_total());
        assert_eq!(rf.grid_side, rh.grid_side);
    }

    #[test]
    fn nosort_is_valid_but_lower_quality_on_grids() {
        let a = grid_graph(13);
        let mut cfg = config_with_cores(4);
        cfg.sort_mode = SortMode::NoSort;
        let res = dist_rcm(&a, &cfg);
        assert_eq!(res.perm.len(), a.n_rows());
        // Still a bandwidth reducer on a shuffled path, just not optimal.
        let full = dist_rcm(&a, &config_with_cores(4));
        let bw_nosort = matrix_bandwidth(&a.permute_sym(&res.perm));
        let bw_full = matrix_bandwidth(&a.permute_sym(&full.perm));
        assert!(bw_full <= bw_nosort);
    }

    #[test]
    fn global_sort_at_end_is_valid() {
        let a = grid_graph(9);
        let mut cfg = config_with_cores(4);
        cfg.sort_mode = SortMode::GlobalSortAtEnd;
        let res = dist_rcm(&a, &cfg);
        assert_eq!(res.perm.len(), a.n_rows());
        let bw = matrix_bandwidth(&a.permute_sym(&res.perm));
        assert!(
            bw < a.n_rows() / 2,
            "global-sort RCM should still help: {bw}"
        );
    }

    #[test]
    fn breakdown_phases_are_populated() {
        let a = grid_graph(12);
        let res = dist_rcm(&a, &config_with_cores(9));
        for ph in Phase::ALL {
            let pair = res.breakdown.get(ph);
            assert!(pair.compute > 0.0 || pair.comm > 0.0, "{ph:?} empty");
        }
        assert!(res.peripheral_bfs >= 2);
        assert!(res.levels > 0);
        assert!((res.sim_seconds - res.breakdown.total()).abs() < 1e-12);
    }
}
