//! [`OrderingEngine`]: a long-lived, batch-capable RCM ordering service.
//!
//! The paper positions RCM as a *preprocessing* step that runs in front of
//! every iterative solve (§I), which in production means ordering a stream
//! of matrices, not one. Every per-call entry point
//! ([`crate::algebraic_rcm`], [`crate::par_rcm`], [`crate::dist_rcm`],
//! [`crate::rcm_with_backend`]) pays the full backend construction on each
//! call — dense companions, SpMSpV accumulators, and (for the pooled
//! backend) the worker threads themselves. The engine amortizes all of it
//! across calls and across matrices:
//!
//! ```text
//! OrderingEngine::new(EngineConfig)      construct: allocate nothing,
//!        │                               spawn the pool workers once
//!        │ order(&A) / order_batch(&[A])
//!        ▼
//! install: bind A to the warm backend    grow-only, epoch-stamped buffers —
//!        │                               a small matrix after a huge one
//!        │                               reuses memory, no realloc
//!        ▼
//! drive:  drive_cm over the reinstalled  the one generic Algorithm 3/4
//!        │ runtime                       pipeline of [`crate::driver`]
//!        ▼
//! report: OrderingReport                 permutation + bandwidth before/
//!                                        after + DriverStats + timing
//! ```
//!
//! Batch calls add a second level of parallelism on the pooled backend:
//! matrices too small to ever cross the pool's sequential cutover are
//! ordered **whole, one per worker** (the pool's batch job), while large
//! matrices take the usual level-parallel path — the policy is by matrix
//! size ([`EngineConfig::batch_small_cutoff`]). Either way every
//! permutation is bit-identical to the corresponding single-shot
//! [`crate::rcm_with_backend`] call; the cross-backend equivalence suite
//! extends over warm reuse.
//!
//! # Worked example: one warm engine, many matrices
//!
//! ```
//! use rcm_core::{BackendKind, EngineConfig, OrderingEngine};
//! use rcm_sparse::CooBuilder;
//!
//! let path = |n: usize| {
//!     let mut b = CooBuilder::new(n, n);
//!     for v in 0..n as u32 - 1 {
//!         b.push_sym(v, v + 1);
//!     }
//!     b.build()
//! };
//!
//! // One session object; its workspaces stay warm between calls.
//! let mut engine =
//!     OrderingEngine::new(EngineConfig::builder().backend(BackendKind::Serial).build());
//! let big = path(300);
//! let small = path(40);
//! for a in [&big, &small] {
//!     let report = engine.order(a);
//!     assert_eq!(report.perm.len(), a.n_rows());
//!     assert_eq!(report.bandwidth_after, 1); // RCM makes a path tridiagonal
//! }
//! // The small matrix reused the big one's buffers: no further growth.
//! let warm = engine.growth_events();
//! engine.order(&small);
//! assert_eq!(engine.growth_events(), warm);
//! assert_eq!(engine.orderings(), 3);
//! ```

use crate::backends::{DistBackend, HybridBackend, SerialBackend, SerialWorkspace};
use crate::compress::{rcm_compressed, CompressStats};
use crate::distributed::{DistRcmConfig, DistRcmResult, SortMode};
use crate::driver::{
    drive_cm_with, BackendKind, DriverStats, ExpandDirection, LabelingMode, PeripheralStat,
    StartNode,
};
use crate::pool::{PoolConfig, RcmPool};
use crate::quality::ordering_bandwidth;
use crate::service::{CacheOutcome, CacheStats, PatternCache};
use rcm_dist::{DistSpmspvWorkspace, HybridConfig, MachineModel};
use rcm_sparse::{
    connected_components, matrix_bandwidth, ComponentSplit, Components, CscMatrix, Label,
    Permutation, Vidx,
};
use std::time::Instant;

/// Default [`CacheConfig::max_nnz`] bound: ~16M stored pattern nonzeros
/// (about 128 MiB of cached CSC indices at `u32`), plenty for the synthetic
/// suite and a visible fraction of a SuiteSparse working set.
pub const DEFAULT_CACHE_NNZ: usize = 16 << 20;

/// Configuration of a pattern-fingerprint ordering cache
/// ([`crate::service::PatternCache`]) — attached to an [`OrderingEngine`]
/// via [`EngineConfigBuilder::cache`], or shared service-wide via
/// [`crate::service::ServiceConfig::cache`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total stored pattern nonzeros the cache may hold; least-recently
    /// used entries are evicted beyond it.
    pub max_nnz: usize,
}

impl CacheConfig {
    /// A cache bounded at `max_nnz` total stored pattern nonzeros.
    pub fn new(max_nnz: usize) -> Self {
        CacheConfig { max_nnz }
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            max_nnz: DEFAULT_CACHE_NNZ,
        }
    }
}

/// Configuration of an [`OrderingEngine`] session. Build it fluently:
///
/// ```
/// use rcm_core::{BackendKind, CacheConfig, EngineConfig, ExpandDirection};
///
/// let config = EngineConfig::builder()
///     .backend(BackendKind::Pooled { threads: 4 })
///     .direction(ExpandDirection::Adaptive)
///     .cache(CacheConfig::default())
///     .build();
/// assert!(config.cache.is_some());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// The [`crate::driver::RcmRuntime`] backend every ordering runs on.
    pub backend: BackendKind,
    /// Frontier-expansion direction policy (bit-identical permutations for
    /// every setting; see [`crate::driver::ExpandDirection`]).
    pub direction: ExpandDirection,
    /// Start-node selection strategy per component (see
    /// [`crate::driver::StartNode`]; the George–Liu default reproduces the
    /// classical driver bit for bit, and each strategy is deterministic
    /// across backends, directions, and thread counts).
    pub start_node: StartNode,
    /// Order through supervariable compression
    /// ([`crate::compress::rcm_compressed`]): detect indistinguishable
    /// vertices, order the quotient, expand. Reports go out with
    /// [`OrderingReport::compress`] populated. The quotient ordering uses
    /// the sequential George–Liu pipeline regardless of `backend`.
    pub compress: bool,
    /// Full distributed run configuration (machine model, balance seed,
    /// sort mode) for the dist/hybrid backends. `None` = the Edison model
    /// with the paper's defaults, derived from `backend`. The engine's
    /// `backend` and `direction` fields stay authoritative either way.
    pub dist: Option<DistRcmConfig>,
    /// Batch-mode size policy: matrices with fewer rows than this are
    /// ordered whole, one per pool worker, instead of level-parallel.
    /// `None` = the pool's sequential cutover
    /// ([`crate::pool::PoolConfig::seq_cutoff`]) — a matrix below it could
    /// never produce a frontier that engages the workers anyway.
    pub batch_small_cutoff: Option<usize>,
    /// Give the engine a private pattern-fingerprint ordering cache
    /// ([`crate::service::PatternCache`]): identical patterns return the
    /// cached permutation in O(nnz) hash time, reports carry
    /// [`OrderingReport::cache`]. `None` (the default) disables it. The
    /// [`crate::service::OrderingService`] ignores this field on its shard
    /// engines — it owns one *shared* cache at the front door instead.
    pub cache: Option<CacheConfig>,
    /// Schedule connected components as independent ordering jobs: detect
    /// components up front ([`rcm_sparse::connected_components`]), carve the
    /// matrix with a warm [`rcm_sparse::ComponentSplit`], order each piece
    /// on the configured backend (on the pooled backend pieces go
    /// whole-per-worker through the batch job; a piece runs level-parallel
    /// only when it is a true giant holding a strict majority of the
    /// vertices), and stitch the local permutations back together.
    /// The result is **bit-identical** to the sequential whole-matrix
    /// driver — the stitcher replays its deterministic component order (the
    /// unvisited minimum-(degree, id) seed). Connected matrices pay one
    /// O(n + nnz) detection pass and take the ordinary path; the
    /// compression path ignores this flag (the quotient pipeline has its
    /// own traversal).
    pub split_components: bool,
}

impl EngineConfig {
    /// Start building a configuration. Defaults: serial backend, direction
    /// from `RCM_DIRECTION`, start node from `RCM_START_NODE`, no
    /// compression, paper-default distributed model, batch cutoff from the
    /// pool, no cache.
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder {
            config: EngineConfig {
                backend: BackendKind::Serial,
                direction: ExpandDirection::from_env(),
                start_node: StartNode::from_env(),
                compress: false,
                dist: None,
                batch_small_cutoff: None,
                cache: None,
                split_components: false,
            },
        }
    }

    /// Defaults for a backend: direction from `RCM_DIRECTION`, no
    /// compression, paper-default distributed model, cutoff from the pool.
    #[deprecated(note = "use `EngineConfig::builder().backend(..).build()`")]
    pub fn new(backend: BackendKind) -> Self {
        EngineConfig::builder().backend(backend).build()
    }

    /// A backend with an explicit direction policy.
    #[deprecated(note = "use `EngineConfig::builder().backend(..).direction(..).build()`")]
    pub fn directed(backend: BackendKind, direction: ExpandDirection) -> Self {
        EngineConfig::builder()
            .backend(backend)
            .direction(direction)
            .build()
    }
}

/// Fluent builder for [`EngineConfig`] — see [`EngineConfig::builder`].
#[derive(Clone, Copy, Debug)]
pub struct EngineConfigBuilder {
    config: EngineConfig,
}

impl EngineConfigBuilder {
    /// Select the [`crate::driver::RcmRuntime`] backend.
    pub fn backend(mut self, backend: BackendKind) -> Self {
        self.config.backend = backend;
        self
    }

    /// Shorthand for the pooled backend at `threads` workers (clamped to
    /// ≥ 1) — `builder().threads(4)` ≡ `builder().backend(BackendKind::
    /// Pooled { threads: 4 })`.
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.backend = BackendKind::Pooled {
            threads: threads.max(1),
        };
        self
    }

    /// Set the frontier-expansion direction policy.
    pub fn direction(mut self, direction: ExpandDirection) -> Self {
        self.config.direction = direction;
        self
    }

    /// Set the start-node selection strategy
    /// ([`EngineConfig::start_node`]).
    pub fn start_node(mut self, start_node: StartNode) -> Self {
        self.config.start_node = start_node;
        self
    }

    /// Order through supervariable compression
    /// ([`crate::compress::rcm_compressed`]).
    pub fn compress(mut self, compress: bool) -> Self {
        self.config.compress = compress;
        self
    }

    /// Supply a full distributed run configuration for the dist/hybrid
    /// backends (machine model, balance seed, sort mode).
    pub fn dist(mut self, dist: DistRcmConfig) -> Self {
        self.config.dist = Some(dist);
        self
    }

    /// Set the batch-mode size policy ([`EngineConfig::batch_small_cutoff`]).
    pub fn batch_small_cutoff(mut self, rows: usize) -> Self {
        self.config.batch_small_cutoff = Some(rows);
        self
    }

    /// Attach a private pattern-fingerprint ordering cache
    /// ([`EngineConfig::cache`]).
    pub fn cache(mut self, cache: CacheConfig) -> Self {
        self.config.cache = Some(cache);
        self
    }

    /// Schedule connected components as independent ordering jobs
    /// ([`EngineConfig::split_components`]).
    pub fn split_components(mut self, split: bool) -> Self {
        self.config.split_components = split;
        self
    }

    /// Finish the configuration.
    pub fn build(self) -> EngineConfig {
        self.config
    }
}

/// Everything one ordering produced — callers stop recomputing quality
/// metrics.
#[derive(Clone, Debug)]
pub struct OrderingReport {
    /// The RCM permutation (old vertex id → new label).
    pub perm: Permutation,
    /// Matrix rows.
    pub n: usize,
    /// Matrix stored nonzeros.
    pub nnz: usize,
    /// Bandwidth of the input ordering.
    pub bandwidth_before: usize,
    /// Bandwidth under `perm`.
    pub bandwidth_after: usize,
    /// Generic-driver execution record (default/empty on the compression
    /// path, which bypasses the algebraic driver).
    pub stats: DriverStats,
    /// Frontier expansions that ran through the pooled backend's parallel
    /// pipeline (0 on other backends and on batch-scheduled small
    /// matrices).
    pub parallel_levels: usize,
    /// Measured wall-clock seconds of install + drive + extraction (quality
    /// metrics excluded). For batch-scheduled small matrices this is the
    /// batch total amortized over its matrices.
    pub wall_seconds: f64,
    /// The full simulated result (breakdown, messages, bytes) when the
    /// backend is dist/hybrid.
    pub sim: Option<DistRcmResult>,
    /// Compression statistics when [`EngineConfig::compress`] is set.
    pub compress: Option<CompressStats>,
    /// How a pattern cache participated: `Some(Hit)` = permutation came
    /// from the cache, `Some(Miss)` = ordered fresh and inserted, `None` =
    /// no cache in the path (unconfigured engine or bypassed request).
    pub cache: Option<CacheOutcome>,
}

impl OrderingReport {
    /// Simulated seconds (0.0 on backends without a clock).
    pub fn sim_seconds(&self) -> f64 {
        self.sim.as_ref().map_or(0.0, |r| r.sim_seconds)
    }

    /// Total pseudo-peripheral BFS sweeps across every component (0 for
    /// zero-sweep strategies, cache hits, and the compression path).
    pub fn peripheral_sweeps(&self) -> usize {
        self.stats.peripheral_stats.iter().map(|p| p.sweeps).sum()
    }

    /// The first component's start-node record (schedule order), when the
    /// algebraic driver ran.
    pub fn peripheral_first(&self) -> Option<&PeripheralStat> {
        self.stats.peripheral_stats.first()
    }
}

/// The permutation and execution record of one ordering, before quality
/// metrics — what the thin per-call shims need.
pub(crate) struct RawOrdering {
    pub(crate) perm: Permutation,
    pub(crate) stats: DriverStats,
    pub(crate) parallel_levels: usize,
    pub(crate) sim: Option<DistRcmResult>,
    pub(crate) compress: Option<CompressStats>,
}

/// A long-lived ordering session: one instance of the configured backend
/// plus its warm workspaces, serving [`OrderingEngine::order`] and
/// [`OrderingEngine::order_batch`] calls. See the module docs for the
/// lifecycle and a worked example.
///
/// # Panics and poisoning
///
/// A panic escaping an ordering (a malformed matrix, an internal invariant
/// assert) leaves a *pooled* engine unusable: the pool's arena locks are
/// poisoned, as documented on [`crate::pool::RcmPool`]. A caller that
/// catches such a panic must drop the engine and construct a new one —
/// further calls panic on the poisoned locks rather than risk ordering
/// with corrupted state.
pub struct OrderingEngine {
    config: EngineConfig,
    serial_ws: SerialWorkspace,
    pool: Option<RcmPool>,
    dist_ws: DistSpmspvWorkspace<Label>,
    splitter: ComponentSplit,
    cache: Option<PatternCache>,
    orderings: usize,
}

impl OrderingEngine {
    /// Construct a session. The pooled backend spawns its persistent
    /// workers here (once); every other allocation waits for the first
    /// install. A compressing engine never touches the configured backend
    /// (the quotient pipeline is sequential), so no workers are spawned
    /// for it.
    pub fn new(config: EngineConfig) -> Self {
        let pool = match config.backend {
            BackendKind::Pooled { threads } if !config.compress => {
                Some(RcmPool::new(PoolConfig::new(threads)))
            }
            _ => None,
        };
        OrderingEngine {
            cache: config.cache.map(PatternCache::new),
            config,
            serial_ws: SerialWorkspace::new(),
            pool,
            dist_ws: DistSpmspvWorkspace::new(),
            splitter: ComponentSplit::new(),
            orderings: 0,
        }
    }

    /// Convenience constructor with the backend's defaults.
    pub fn with_backend(backend: BackendKind) -> Self {
        OrderingEngine::new(EngineConfig::builder().backend(backend).build())
    }

    /// The session configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Orderings served so far (batch matrices count individually).
    pub fn orderings(&self) -> usize {
        self.orderings
    }

    /// Times any install-managed warm buffer (serial workspace, pool
    /// arenas, distributed SpMSpV accumulator, component splitter) had to
    /// grow. Re-ordering matrices no larger than any this engine has seen
    /// leaves the count unchanged — the growth-event tests assert exactly
    /// that.
    pub fn growth_events(&self) -> usize {
        self.serial_ws.growth_events()
            + self.pool.as_ref().map_or(0, |p| p.growth_events())
            + self.dist_ws.growth_events()
            + self.splitter.growth_events()
    }

    /// Order one matrix on the warm backend and report the permutation
    /// with its quality metrics, execution record, and timing.
    ///
    /// With a configured cache ([`EngineConfigBuilder::cache`]) a
    /// previously seen pattern returns its cached permutation in O(nnz)
    /// hash + equality time — no BFS — and the report says which happened
    /// via [`OrderingReport::cache`].
    pub fn order(&mut self, a: &CscMatrix) -> OrderingReport {
        if self.cache.is_none() {
            return self.order_uncached(a);
        }
        let t0 = Instant::now();
        let fp = a.pattern_fingerprint();
        let cache = self.cache.as_mut().expect("checked above");
        if let Some(cached) = cache.lookup(fp, a, self.config.start_node) {
            self.orderings += 1;
            return cached.into_report(a, t0.elapsed().as_secs_f64());
        }
        let mut report = self.order_uncached(a);
        report.cache = Some(CacheOutcome::Miss);
        let cache = self.cache.as_mut().expect("checked above");
        cache.insert(fp, a, &report, self.config.start_node);
        report
    }

    /// [`OrderingEngine::order`] without cache participation.
    fn order_uncached(&mut self, a: &CscMatrix) -> OrderingReport {
        let bandwidth_before = matrix_bandwidth(a);
        let t0 = Instant::now();
        let raw = self.order_raw(a);
        let wall_seconds = t0.elapsed().as_secs_f64();
        let bandwidth_after = ordering_bandwidth(a, &raw.perm);
        OrderingReport {
            n: a.n_rows(),
            nnz: a.nnz(),
            bandwidth_before,
            bandwidth_after,
            stats: raw.stats,
            parallel_levels: raw.parallel_levels,
            wall_seconds,
            sim: raw.sim,
            compress: raw.compress,
            cache: None,
            perm: raw.perm,
        }
    }

    /// Counter snapshot of the engine's private pattern cache (`None`
    /// when the engine was built without one).
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(PatternCache::stats)
    }

    /// Order a batch of matrices through the warm engine, returning one
    /// report per input in input order.
    ///
    /// On a multithreaded pooled backend the schedule is two-level:
    /// matrices below [`EngineConfig::batch_small_cutoff`] are ordered
    /// whole, one per worker, on the same pool (they could never engage the
    /// level-parallel pipeline), while larger ones run level-parallel as
    /// usual. Other backends order sequentially through the warm
    /// workspaces. Permutations are bit-identical to per-matrix
    /// [`OrderingEngine::order`] calls either way.
    pub fn order_batch(&mut self, mats: &[CscMatrix]) -> Vec<OrderingReport> {
        // A caching engine routes per-matrix through `order` so every
        // matrix participates in the cache — a batch of repeated patterns
        // collapses to one BFS plus hash-time hits. A splitting engine
        // routes per-matrix too: each matrix decomposes into its own
        // component jobs.
        if self.cache.is_none() && !self.config.split_components {
            if let BackendKind::Pooled { threads } = self.config.backend {
                if threads > 1 && !self.config.compress && mats.len() > 1 {
                    return self.order_batch_pooled(mats);
                }
            }
        }
        mats.iter().map(|a| self.order(a)).collect()
    }

    /// The two-level pooled batch schedule (see [`OrderingEngine::order_batch`]).
    fn order_batch_pooled(&mut self, mats: &[CscMatrix]) -> Vec<OrderingReport> {
        let pool = self.pool.as_mut().expect("pooled engine owns a pool");
        let cutoff = self
            .config
            .batch_small_cutoff
            .unwrap_or(pool.config().seq_cutoff);
        let small_idx: Vec<usize> = (0..mats.len())
            .filter(|&i| mats[i].n_rows() < cutoff)
            .collect();
        let smalls: Vec<&CscMatrix> = small_idx.iter().map(|&i| &mats[i]).collect();
        let t0 = Instant::now();
        let small_cm = pool.order_cm_batch(&smalls, self.config.direction, self.config.start_node);
        let amortized = t0.elapsed().as_secs_f64() / small_cm.len().max(1) as f64;
        let mut out: Vec<Option<OrderingReport>> = (0..mats.len()).map(|_| None).collect();
        for (&i, (cm, stats)) in small_idx.iter().zip(small_cm) {
            let a = &mats[i];
            let perm = cm.reversed();
            let bandwidth_after = ordering_bandwidth(a, &perm);
            out[i] = Some(OrderingReport {
                n: a.n_rows(),
                nnz: a.nnz(),
                bandwidth_before: matrix_bandwidth(a),
                bandwidth_after,
                stats,
                parallel_levels: 0,
                wall_seconds: amortized,
                sim: None,
                compress: None,
                cache: None,
                perm,
            });
            self.orderings += 1;
        }
        for i in 0..mats.len() {
            if out[i].is_none() {
                out[i] = Some(self.order(&mats[i]));
            }
        }
        out.into_iter()
            .map(|r| r.expect("every batch slot filled"))
            .collect()
    }

    /// One ordering on the warm backend, without quality metrics — the
    /// body of [`OrderingEngine::order`] and of the thin per-call shims.
    pub(crate) fn order_raw(&mut self, a: &CscMatrix) -> RawOrdering {
        self.orderings += 1;
        if self.config.compress {
            let (perm, stats) = rcm_compressed(a);
            return RawOrdering {
                perm,
                stats: DriverStats::default(),
                parallel_levels: 0,
                sim: None,
                compress: Some(stats),
            };
        }
        if self.config.split_components {
            let comps = connected_components(a);
            if comps.count() > 1 {
                return self.order_split(a, &comps);
            }
        }
        match self.config.backend {
            BackendKind::Serial => {
                let ws = std::mem::take(&mut self.serial_ws);
                let mut rt = SerialBackend::warm(a, ws);
                let stats = drive_cm_with(
                    &mut rt,
                    LabelingMode::PerLevel,
                    self.config.direction,
                    &self.config.start_node,
                );
                let (cm, ws) = rt.finish();
                self.serial_ws = ws;
                RawOrdering {
                    perm: cm.reversed(),
                    stats,
                    parallel_levels: 0,
                    sim: None,
                    compress: None,
                }
            }
            BackendKind::Pooled { .. } => {
                let pool = self.pool.as_mut().expect("pooled engine owns a pool");
                let (cm, stats, parallel_levels) = crate::shared::pooled_cm_raw(
                    a,
                    pool,
                    self.config.direction,
                    self.config.start_node,
                );
                RawOrdering {
                    perm: cm.reversed(),
                    stats,
                    parallel_levels,
                    sim: None,
                    compress: None,
                }
            }
            BackendKind::Dist { .. } | BackendKind::Hybrid { .. } => {
                let result = self.order_dist(a);
                RawOrdering {
                    perm: result.perm.clone(),
                    stats: DriverStats {
                        components: result.components,
                        peripheral_bfs: result.peripheral_bfs,
                        levels: result.levels,
                        spmspv_work: 0,
                        push_expands: result.push_expands,
                        pull_expands: result.pull_expands,
                        level_stats: result.level_stats.clone(),
                        peripheral_stats: result.peripheral_stats.clone(),
                    },
                    parallel_levels: 0,
                    sim: Some(result),
                    compress: None,
                }
            }
        }
    }

    /// The component-parallel path of [`OrderingEngine::order_raw`]:
    /// split → schedule → stitch.
    ///
    /// The sequential driver reseeds every component at the globally
    /// unvisited vertex minimizing `(degree, id)`; since degrees never
    /// cross component boundaries, that is exactly ascending order of each
    /// component's own `(degree, id)` minimum — a schedule this method can
    /// compute up front and replay. Each piece keeps its vertices in
    /// ascending global-id order (see [`rcm_sparse::ComponentSplit`]), so
    /// every tie-break inside a piece matches the whole-matrix run and the
    /// stitched permutation is bit-identical to the sequential one: piece
    /// `c` at schedule offset `o` with local unreversed-CM labels `cm`
    /// contributes global RCM labels `n - 1 - o - cm[u]`.
    ///
    /// Per-piece stats merge in schedule order (`components` sums to the
    /// piece count, level traces concatenate); on the dist/hybrid backends
    /// the pieces run as independent simulated jobs and the report carries
    /// no aggregate simulated result.
    fn order_split(&mut self, a: &CscMatrix, comps: &Components) -> RawOrdering {
        let n = a.n_rows();
        let k = comps.count();
        let mut splitter = std::mem::take(&mut self.splitter);
        let pieces = splitter.split(a, comps);

        // Deterministic schedule: ascending (degree, id) minimum per piece.
        let mut best: Vec<(Vidx, Vidx)> = vec![(Vidx::MAX, Vidx::MAX); k];
        for v in 0..n {
            let c = comps.component_of[v] as usize;
            let mut d = a.col_nnz(v) as Vidx;
            if a.col(v).binary_search(&(v as Vidx)).is_ok() {
                d -= 1; // structural diagonal is not a graph neighbour
            }
            if d < best[c].0 {
                best[c] = (d, v as Vidx);
            }
        }
        let mut schedule: Vec<usize> = (0..k).collect();
        schedule.sort_unstable_by_key(|&c| best[c]);

        // Per-piece start-node strategy. The uniform strategies apply to
        // every piece unchanged (each piece's min-degree seed is the same
        // vertex the sequential reseeding would pick). A `Fixed` vertex
        // applies only to the piece holding it — translated to the piece's
        // local numbering, with that piece hoisted to the front of the
        // schedule (the sequential driver labels the fixed vertex's
        // component first) — while every other piece, or the whole run when
        // the vertex is out of range, falls back to George–Liu.
        let mut piece_strategy: Vec<StartNode> = vec![self.config.start_node; k];
        if let StartNode::Fixed(v) = self.config.start_node {
            piece_strategy = vec![StartNode::GeorgeLiu; k];
            if (v as usize) < n {
                let c = comps.component_of[v as usize] as usize;
                let local = pieces[c]
                    .vertices
                    .binary_search(&v)
                    .expect("fixed vertex lies in its component's piece");
                piece_strategy[c] = StartNode::Fixed(local as Vidx);
                let pos = schedule.iter().position(|&x| x == c).expect("c < k");
                schedule.remove(pos);
                schedule.insert(0, c);
            }
        }

        // Order every piece on the warm backend. Results are unreversed CM
        // permutations in local ids, indexed by component id.
        let mut results: Vec<Option<(Permutation, DriverStats)>> = (0..k).map(|_| None).collect();
        let mut parallel_levels = 0usize;
        match self.config.backend {
            BackendKind::Serial => {
                for (c, piece) in pieces.iter().enumerate() {
                    let ws = std::mem::take(&mut self.serial_ws);
                    let mut rt = SerialBackend::warm(&piece.matrix, ws);
                    let stats = drive_cm_with(
                        &mut rt,
                        LabelingMode::PerLevel,
                        self.config.direction,
                        &piece_strategy[c],
                    );
                    let (cm, ws) = rt.finish();
                    self.serial_ws = ws;
                    results[c] = Some((cm, stats));
                }
            }
            BackendKind::Pooled { .. } => {
                let pool = self.pool.as_mut().expect("pooled engine owns a pool");
                let cutoff = self
                    .config
                    .batch_small_cutoff
                    .unwrap_or(pool.config().seq_cutoff);
                // Pieces go whole-per-worker through the pool's batch job
                // unless one is a true giant — above the level cutoff AND
                // holding a strict majority of the vertices. Only then can
                // level parallelism beat component parallelism: with the
                // work spread over several comparable pieces, running them
                // whole on separate workers is sync-free and keeps every
                // worker busy, while the level pipeline would serialize
                // the pieces and pay per-level sync on narrow frontiers.
                // The batch job runs one strategy for all its pieces, so a
                // piece with a divergent (fixed-vertex) strategy takes the
                // level-parallel path below instead.
                let batch_strategy = match self.config.start_node {
                    StartNode::Fixed(_) => StartNode::GeorgeLiu,
                    uniform => uniform,
                };
                let small_idx: Vec<usize> = (0..k)
                    .filter(|&c| {
                        let rows = pieces[c].matrix.n_rows();
                        piece_strategy[c] == batch_strategy && (rows < cutoff || 2 * rows <= n)
                    })
                    .collect();
                let smalls: Vec<&CscMatrix> =
                    small_idx.iter().map(|&c| &pieces[c].matrix).collect();
                let small_cm = pool.order_cm_batch(&smalls, self.config.direction, batch_strategy);
                for (&c, res) in small_idx.iter().zip(small_cm) {
                    results[c] = Some(res);
                }
                for (c, slot) in results.iter_mut().enumerate() {
                    if slot.is_none() {
                        let (cm, stats, levels) = crate::shared::pooled_cm_raw(
                            &pieces[c].matrix,
                            pool,
                            self.config.direction,
                            piece_strategy[c],
                        );
                        parallel_levels += levels;
                        *slot = Some((cm, stats));
                    }
                }
            }
            BackendKind::Dist { .. } | BackendKind::Hybrid { .. } => {
                for (c, piece) in pieces.iter().enumerate() {
                    let result = self.order_dist_with(&piece.matrix, piece_strategy[c]);
                    let stats = DriverStats {
                        components: result.components,
                        peripheral_bfs: result.peripheral_bfs,
                        levels: result.levels,
                        spmspv_work: 0,
                        push_expands: result.push_expands,
                        pull_expands: result.pull_expands,
                        level_stats: result.level_stats.clone(),
                        peripheral_stats: result.peripheral_stats.clone(),
                    };
                    results[c] = Some((result.perm.reversed(), stats));
                }
            }
        }

        // Stitch: pieces take consecutive CM label blocks in schedule
        // order; the global permutation is the reversal of that CM.
        let mut new_of_old = vec![0 as Vidx; n];
        let mut offset = 0usize;
        let mut stats = DriverStats::default();
        for &c in &schedule {
            let piece = &pieces[c];
            let (cm, piece_stats) = results[c].take().expect("every piece ordered");
            let labels = cm.as_new_of_old();
            for (u, &g) in piece.vertices.iter().enumerate() {
                new_of_old[g as usize] = (n - 1 - offset - labels[u] as usize) as Vidx;
            }
            offset += piece.matrix.n_rows();
            stats.components += piece_stats.components;
            stats.peripheral_bfs += piece_stats.peripheral_bfs;
            stats.levels += piece_stats.levels;
            stats.spmspv_work += piece_stats.spmspv_work;
            stats.push_expands += piece_stats.push_expands;
            stats.pull_expands += piece_stats.pull_expands;
            stats.level_stats.extend(piece_stats.level_stats);
            // Peripheral records carry piece-local start vertices; report
            // them in the caller's (global) numbering.
            stats
                .peripheral_stats
                .extend(piece_stats.peripheral_stats.into_iter().map(|mut p| {
                    p.start = piece.vertices[p.start as usize];
                    p
                }));
        }
        self.splitter = splitter;
        RawOrdering {
            perm: Permutation::from_new_of_old(new_of_old)
                .expect("stitched component labels form a bijection"),
            stats,
            parallel_levels,
            sim: None,
            compress: None,
        }
    }

    /// One ordering on the warm dist/hybrid backend, returning the full
    /// simulated result directly — the [`crate::dist_rcm`] shim's body,
    /// which needs no second copy of the permutation or level trace.
    pub(crate) fn order_dist(&mut self, a: &CscMatrix) -> DistRcmResult {
        self.order_dist_with(a, self.config.start_node)
    }

    /// [`OrderingEngine::order_dist`] under an explicit start-node strategy
    /// (the split path orders pieces under per-piece strategies).
    fn order_dist_with(&mut self, a: &CscMatrix, start_node: StartNode) -> DistRcmResult {
        let mut dcfg = self.dist_config();
        dcfg.start_node = start_node;
        let mode = if dcfg.sort_mode == SortMode::GlobalSortAtEnd {
            LabelingMode::GlobalAtEnd
        } else {
            LabelingMode::PerLevel
        };
        let ws = std::mem::take(&mut self.dist_ws);
        let (result, ws) = if dcfg.hybrid.threads_per_proc > 1 {
            let mut rt = HybridBackend::warm(a, &dcfg, ws);
            let stats = drive_cm_with(&mut rt, mode, dcfg.direction, &dcfg.start_node);
            rt.into_result_warm(stats)
        } else {
            let mut rt = DistBackend::warm(a, &dcfg, ws);
            let stats = drive_cm_with(&mut rt, mode, dcfg.direction, &dcfg.start_node);
            rt.into_result_warm(stats)
        };
        self.dist_ws = ws;
        result
    }

    /// The effective distributed configuration: the user-supplied machine
    /// model, balance seed, and sort mode (or the Edison defaults), with
    /// the engine's backend (core count, threads/process) and direction
    /// applied on top — `EngineConfig::backend`/`direction` stay
    /// authoritative even against an inconsistent `dist` override.
    fn dist_config(&self) -> DistRcmConfig {
        let hybrid = match self.config.backend {
            BackendKind::Dist { cores } => HybridConfig::new(cores, 1),
            BackendKind::Hybrid {
                cores,
                threads_per_proc,
            } => HybridConfig::new(cores, threads_per_proc),
            _ => unreachable!("dist_config is only consulted for dist/hybrid backends"),
        };
        let mut cfg = self.config.dist.unwrap_or_else(|| DistRcmConfig {
            machine: MachineModel::edison(),
            hybrid,
            balance_seed: None,
            sort_mode: SortMode::Full,
            direction: self.config.direction,
            start_node: self.config.start_node,
        });
        cfg.hybrid = hybrid;
        cfg.direction = self.config.direction;
        cfg.start_node = self.config.start_node;
        cfg
    }
}

/// Run `a` once through a fresh single-use engine — the per-call shims'
/// body ([`crate::algebraic_rcm`], [`crate::par_rcm`], [`crate::dist_rcm`],
/// [`crate::rcm_with_backend`] all route here).
pub(crate) fn order_once(config: EngineConfig, a: &CscMatrix) -> RawOrdering {
    OrderingEngine::new(config).order_raw(a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::rcm_with_backend;
    use rcm_sparse::{CooBuilder, Vidx};

    use crate::testutil::scrambled_grid;

    #[test]
    fn warm_engine_matches_single_shot_on_every_backend() {
        let mats = [
            scrambled_grid(12, 7),
            scrambled_grid(7, 3),
            scrambled_grid(10, 11),
        ];
        for kind in [
            BackendKind::Serial,
            BackendKind::Pooled { threads: 3 },
            BackendKind::Dist { cores: 4 },
            BackendKind::Hybrid {
                cores: 24,
                threads_per_proc: 6,
            },
        ] {
            let mut engine = OrderingEngine::with_backend(kind);
            for (i, a) in mats.iter().enumerate() {
                let report = engine.order(a);
                assert_eq!(
                    report.perm,
                    rcm_with_backend(a, kind),
                    "{} engine diverged on matrix {i}",
                    kind.name()
                );
                assert!(report.bandwidth_after <= report.bandwidth_before);
                assert!(report.stats.components > 0);
            }
            assert_eq!(engine.orderings(), mats.len());
        }
    }

    #[test]
    fn dist_reports_carry_the_simulated_result() {
        let a = scrambled_grid(9, 5);
        let mut engine = OrderingEngine::with_backend(BackendKind::Dist { cores: 4 });
        let report = engine.order(&a);
        assert!(report.sim_seconds() > 0.0);
        let sim = report
            .sim
            .as_ref()
            .expect("dist backend must attach a sim result");
        assert!(sim.sim_seconds > 0.0);
        assert_eq!(sim.perm, report.perm);
        let mut serial = OrderingEngine::with_backend(BackendKind::Serial);
        assert_eq!(serial.order(&a).sim_seconds(), 0.0);
    }

    #[test]
    fn compress_reports_compression_stats() {
        // A 2-dof chain compresses 2x; the report must say so.
        let nodes = 30usize;
        let d = 2usize;
        let n = nodes * d;
        let mut b = CooBuilder::new(n, n);
        for node in 0..nodes {
            b.push_sym((node * d) as Vidx, (node * d + 1) as Vidx);
            if node + 1 < nodes {
                for i in 0..d {
                    for j in 0..d {
                        b.push_sym((node * d + i) as Vidx, ((node + 1) * d + j) as Vidx);
                    }
                }
            }
        }
        let a = b.build();
        let cfg = EngineConfig::builder()
            .backend(BackendKind::Serial)
            .compress(true)
            .build();
        let mut engine = OrderingEngine::new(cfg);
        let report = engine.order(&a);
        let stats = report.compress.expect("compression stats attached");
        assert_eq!(stats.vertices, n);
        assert_eq!(stats.supervariables, nodes);
        assert_eq!(report.perm.len(), n);
    }

    #[test]
    fn batch_mixes_small_and_large_and_matches_single_shot() {
        let mats: Vec<CscMatrix> = vec![
            scrambled_grid(6, 5),   // 36 vertices: far below the cutover
            scrambled_grid(20, 13), // 400 vertices: level-parallel path
            CscMatrix::empty(0),
            scrambled_grid(4, 3),
            CscMatrix::empty(1),
            scrambled_grid(18, 7),
        ];
        let kind = BackendKind::Pooled { threads: 3 };
        let mut engine = OrderingEngine::with_backend(kind);
        let reports = engine.order_batch(&mats);
        assert_eq!(reports.len(), mats.len());
        for (i, (a, report)) in mats.iter().zip(&reports).enumerate() {
            assert_eq!(
                report.perm,
                rcm_with_backend(a, kind),
                "batch slot {i} diverged from single-shot"
            );
            assert_eq!(report.n, a.n_rows());
        }
        assert_eq!(engine.orderings(), mats.len());
        // The same engine keeps serving after a batch.
        let again = engine.order(&mats[1]);
        assert_eq!(again.perm, reports[1].perm);
    }

    #[test]
    fn caching_engine_hits_on_repeats_and_stays_bit_identical() {
        let a = scrambled_grid(11, 7);
        let b = scrambled_grid(8, 3);
        let mut engine = OrderingEngine::new(
            EngineConfig::builder()
                .backend(BackendKind::Serial)
                .cache(CacheConfig::default())
                .build(),
        );
        let first = engine.order(&a);
        assert_eq!(first.cache, Some(crate::service::CacheOutcome::Miss));
        let second = engine.order(&a);
        assert_eq!(second.cache, Some(crate::service::CacheOutcome::Hit));
        assert_eq!(first.perm, second.perm);
        assert_eq!(first.bandwidth_after, second.bandwidth_after);
        // A batch over repeated + fresh patterns routes through the cache.
        let reports = engine.order_batch(&[a.clone(), b.clone(), a.clone()]);
        assert_eq!(reports[0].cache, Some(crate::service::CacheOutcome::Hit));
        assert_eq!(reports[1].cache, Some(crate::service::CacheOutcome::Miss));
        assert_eq!(reports[2].cache, Some(crate::service::CacheOutcome::Hit));
        assert_eq!(reports[1].perm, rcm_with_backend(&b, BackendKind::Serial));
        let stats = engine.cache_stats().expect("cache configured");
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.entries, 2);
        assert_eq!(engine.orderings(), 5);
        // An uncached engine reports no cache participation at all.
        let mut plain = OrderingEngine::with_backend(BackendKind::Serial);
        assert_eq!(plain.order(&a).cache, None);
        assert!(plain.cache_stats().is_none());
    }

    /// Several scrambled grids as one matrix, with vertex ids strewn across
    /// components by a stride scramble of the block-diagonal composite.
    fn multi_component(sides: &[(usize, usize)]) -> CscMatrix {
        let blocks: Vec<CscMatrix> = sides
            .iter()
            .map(|&(side, stride)| scrambled_grid(side, stride))
            .collect();
        let n: usize = blocks.iter().map(|b| b.n_rows()).sum();
        let mut builder = CooBuilder::new(n, n);
        let mut offset = 0;
        for block in &blocks {
            for (r, c) in block.iter_entries() {
                builder.push(r + offset as Vidx, c + offset as Vidx);
            }
            offset += block.n_rows();
        }
        let gcd = |mut a: usize, mut b: usize| {
            while b != 0 {
                (a, b) = (b, a % b);
            }
            a
        };
        let stride = (2..).find(|&s| gcd(s, n) == 1).unwrap();
        let perm: Vec<Vidx> = (0..n).map(|i| ((i * stride) % n) as Vidx).collect();
        builder
            .build()
            .permute_sym(&Permutation::from_new_of_old(perm).unwrap())
    }

    #[test]
    fn split_engine_is_bit_identical_to_sequential_on_every_backend() {
        let a = multi_component(&[(9, 1), (5, 2), (7, 3), (3, 4)]);
        assert!(rcm_sparse::connected_components(&a).count() >= 4);
        for kind in [
            BackendKind::Serial,
            BackendKind::Pooled { threads: 3 },
            BackendKind::Dist { cores: 4 },
            BackendKind::Hybrid {
                cores: 24,
                threads_per_proc: 6,
            },
        ] {
            let sequential = rcm_with_backend(&a, kind);
            let mut engine = OrderingEngine::new(
                EngineConfig::builder()
                    .backend(kind)
                    .split_components(true)
                    .build(),
            );
            let report = engine.order(&a);
            assert_eq!(
                report.perm,
                sequential,
                "{} split path diverged from the sequential driver",
                kind.name()
            );
            assert_eq!(report.stats.components, 4);
            // A connected matrix takes the ordinary path under the flag.
            let connected = scrambled_grid(6, 7);
            assert_eq!(
                engine.order(&connected).perm,
                rcm_with_backend(&connected, kind)
            );
        }
    }

    #[test]
    fn split_engine_growth_stays_flat_on_resplits() {
        let a = multi_component(&[(8, 5), (6, 5), (4, 7)]);
        let mut engine = OrderingEngine::new(
            EngineConfig::builder()
                .backend(BackendKind::Pooled { threads: 3 })
                .split_components(true)
                .build(),
        );
        engine.order(&a);
        let warm = engine.growth_events();
        assert!(warm > 0);
        for _ in 0..3 {
            engine.order(&a);
        }
        assert_eq!(engine.growth_events(), warm);
    }

    #[test]
    fn growth_events_stay_flat_for_not_larger_matrices() {
        let big = scrambled_grid(24, 13);
        let small = scrambled_grid(9, 4);
        for kind in [
            BackendKind::Serial,
            BackendKind::Pooled { threads: 3 },
            BackendKind::Dist { cores: 4 },
        ] {
            let mut engine = OrderingEngine::with_backend(kind);
            engine.order(&big);
            let warm = engine.growth_events();
            assert!(warm > 0, "{}: first install must grow", kind.name());
            for _ in 0..3 {
                engine.order(&small);
                engine.order(&big);
            }
            assert_eq!(
                engine.growth_events(),
                warm,
                "{}: warm engine must not grow on not-larger matrices",
                kind.name()
            );
        }
    }
}
