//! Experiment runners regenerating every table and figure of the paper.
//!
//! Each function returns [`Table`]s (also written as CSV under the results
//! directory) whose rows correspond to the series plotted in the paper:
//!
//! | function | paper artifact |
//! |---|---|
//! | [`fig1_cg_solve`] | Fig. 1 — CG+block-Jacobi solve time, natural vs RCM |
//! | [`fig3_suite_table`] | Fig. 3 — matrix suite statistics + RCM bandwidths |
//! | [`table2_shared_memory`] | Table II — shared-memory baseline vs distributed |
//! | [`fig4_breakdown`] | Fig. 4 — distributed runtime breakdown per matrix |
//! | [`fig5_spmspv_split`] | Fig. 5 — SpMSpV computation vs communication |
//! | [`fig6_flat_vs_hybrid`] | Fig. 6 — flat MPI vs hybrid on ldoor |
//! | [`ablation_sort_modes`] | §VI — sorting-strategy ablation |
//! | [`direction_ablation`] | direction-optimizing expand: push / pull / adaptive |
//! | [`backend_sweep`] | one generic driver on all four `RcmRuntime` backends |
//! | [`balance_ablation`] | §IV-A — load-balance permutation sweep |
//! | [`mtx_table`] | real Matrix Market inputs (`repro --mtx`) next to the suite |
//! | [`throughput_table`] | warm `OrderingEngine` vs cold per-call orderings/sec |
//! | [`service_table`] | `OrderingService` closed-loop load: cold vs warm shards vs cache |
//! | [`components_table`] | component-parallel split+schedule+stitch vs the sequential driver |
//! | [`startnode_table`] | start-node strategy ablation: george-liu vs bi-criteria vs min-degree |
//! | [`kernels_table`] | per-edge / per-element kernel microbenchmarks |
//!
//! Absolute times come from the calibrated Edison model and will not match
//! the paper's testbed exactly; the *shapes* (who wins, scaling knees,
//! crossover points) are the reproduction target. See EXPERIMENTS.md.

use std::path::{Path, PathBuf};
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rcm_core::{
    algebraic_rcm_directed, bfs_level_structure, dist_rcm, ordering_bandwidth, ordering_profile,
    ordering_wavefront, par_rcm, par_rcm_directed, pseudo_peripheral, rcm, rcm_compressed,
    rcm_globalsort, rcm_nosort, rcm_with_backend, sloan, BackendKind, DistRcmConfig,
    ExpandDirection, SortMode, StartNode,
};
use rcm_dist::{
    Breakdown, DistCscMatrix, MachineModel, Phase, PAPER_FLAT_CORES, PAPER_HYBRID_CORES,
};
use rcm_graphgen::{block_diag, forest, multi_body, suite, suite_matrix, SuiteMatrix};
use rcm_solver::{cg_iteration_cost, pcg, BlockJacobi};
use rcm_sparse::{
    bucket_sortperm_ref, connected_components, counting_sortperm, matrix_bandwidth, mm, spmspv,
    spmspv_pull, spmspv_pull_ref, CooBuilder, CscMatrix, CsrNumeric, DenseFrontier, Label,
    Permutation, PullBuffer, Select2ndMin, SortpermScratch, SparseVec, SpmspvWorkspace,
    VertexBitmap, Vidx, UNVISITED,
};

use crate::report::{fmt_count, fmt_secs, Table};

/// Shared experiment configuration.
#[derive(Clone, Debug)]
pub struct ExpConfig {
    /// Multiplier on each suite matrix's laptop default scale (1.0 = the
    /// documented defaults; >1 moves toward paper-sized inputs).
    pub scale_mult: f64,
    /// Directory for CSV output.
    pub results_dir: PathBuf,
    /// Restrict to a 3-matrix subset and fewer core counts (CI/tests).
    pub quick: bool,
    /// Matrix Market inputs to run next to the synthetic suite
    /// (`repro --mtx <path>`), loaded and validated by [`load_mtx`].
    pub mtx: Vec<MtxInput>,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            scale_mult: 1.0,
            results_dir: PathBuf::from("results"),
            quick: false,
            mtx: Vec::new(),
        }
    }
}

impl ExpConfig {
    fn matrices(&self) -> Vec<SuiteMatrix> {
        let all: Vec<SuiteMatrix> = suite().into_iter().filter(|m| m.in_fig3).collect();
        if self.quick {
            all.into_iter()
                .filter(|m| matches!(m.name, "nd24k" | "ldoor" | "Li7Nmax6"))
                .collect()
        } else {
            all
        }
    }

    fn hybrid_cores(&self) -> Vec<usize> {
        if self.quick {
            vec![1, 24, 216]
        } else {
            PAPER_HYBRID_CORES.to_vec()
        }
    }

    fn flat_cores(&self) -> Vec<usize> {
        if self.quick {
            vec![1, 16, 256]
        } else {
            PAPER_FLAT_CORES.to_vec()
        }
    }

    fn generate(&self, m: &SuiteMatrix) -> CscMatrix {
        m.generate(m.default_scale * self.scale_mult)
    }
}

// ---------------------------------------------------------------------------
// Fig. 3 — suite statistics
// ---------------------------------------------------------------------------

/// Regenerate the Fig. 3 table: dimensions, nonzeros, pre/post-RCM bandwidth
/// and pseudo-diameter — paper value next to our (scaled) synthetic value.
pub fn fig3_suite_table(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "Fig. 3 — matrix suite (paper value | ours at default scale)",
        &[
            "matrix",
            "rows(paper)",
            "rows",
            "nnz(paper)",
            "nnz",
            "bw-pre(paper)",
            "bw-pre",
            "bw-post(paper)",
            "bw-post",
            "pdiam(paper)",
            "pdiam",
        ],
    );
    for m in cfg.matrices() {
        let a = cfg.generate(&m);
        let perm = rcm(&a);
        let bw_pre = matrix_bandwidth(&a);
        let bw_post = ordering_bandwidth(&a, &perm);
        let degrees = a.degrees();
        let seed = (0..a.n_rows())
            .min_by_key(|&v| (degrees[v], v))
            .unwrap_or(0) as u32;
        let pdiam = pseudo_peripheral(&a, seed).eccentricity;
        t.row(vec![
            m.name.to_string(),
            fmt_count(m.paper.rows as u64),
            fmt_count(a.n_rows() as u64),
            fmt_count(m.paper.nnz as u64),
            fmt_count(a.nnz() as u64),
            fmt_count(m.paper.bw_pre as u64),
            fmt_count(bw_pre as u64),
            fmt_count(m.paper.bw_post as u64),
            fmt_count(bw_post as u64),
            m.paper.pseudo_diameter.to_string(),
            pdiam.to_string(),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// Table II — shared-memory baseline vs distributed runtime
// ---------------------------------------------------------------------------

/// Regenerate Table II: wall-clock runtime of the shared-memory baseline at
/// several thread counts (measured on the host) next to the simulated
/// distributed runtime at 1/6/24 cores, plus the ordering bandwidth.
pub fn table2_shared_memory(cfg: &ExpConfig) -> Table {
    let threads = [1usize, 2, 4, 8, 16];
    let mut t = Table::new(
        "Table II — shared-memory RCM (measured) vs distributed RCM (simulated)",
        &[
            "matrix", "BW", "shm 1t", "shm 2t", "shm 4t", "shm 8t", "shm 16t", "dist 1c",
            "dist 6c", "dist 24c",
        ],
    );
    for m in cfg.matrices() {
        let a = cfg.generate(&m);
        let mut cells = vec![m.name.to_string()];
        // Quality: all implementations are ordering-identical; report once.
        let (perm, _) = par_rcm(&a, 1);
        cells.push(fmt_count(ordering_bandwidth(&a, &perm) as u64));
        for &th in &threads {
            let t0 = Instant::now();
            let (p, _) = par_rcm(&a, th);
            let dt = t0.elapsed().as_secs_f64();
            assert_eq!(p.len(), a.n_rows());
            cells.push(fmt_secs(dt));
        }
        for cores in [1usize, 6, 24] {
            let r = dist_rcm(&a, &DistRcmConfig::hybrid_on_edison(cores));
            cells.push(fmt_secs(r.sim_seconds));
        }
        t.row(cells);
    }
    t
}

// ---------------------------------------------------------------------------
// Shared-memory strong scaling (Table II, measured on the host)
// ---------------------------------------------------------------------------

/// Thread counts of the shared-memory strong-scaling sweep.
pub const SCALING_THREADS: [usize; 5] = [1, 2, 4, 8, 16];

/// Strong scaling of the work-stealing shared-memory backend: `par_rcm`
/// wall time at 1/2/4/8/16 threads plus speedups over one thread.
///
/// Outside quick mode each instance is grown until it crosses the Table II
/// floor of 100k vertices (capped by an nnz budget), so the sweep exercises
/// frontiers wide enough for the parallel pipeline. Numbers depend on the
/// host's core count — on a single-core box every column degenerates to
/// ~1x, which is itself useful as an overhead ceiling check.
pub fn shared_scaling(cfg: &ExpConfig) -> Table {
    let names = if cfg.quick {
        vec!["ldoor"]
    } else {
        vec!["ldoor", "Li7Nmax6", "thermal2"]
    };
    let reps = if cfg.quick { 1 } else { 3 };
    let mut t = Table::new(
        "Shared-memory strong scaling — par_rcm (measured on this host)",
        &[
            "matrix", "vertices", "edges", "t(1t)", "t(2t)", "t(4t)", "t(8t)", "t(16t)", "su(2t)",
            "su(4t)", "su(8t)", "su(16t)",
        ],
    );
    for name in names {
        let m = suite_matrix(name).expect("scaling matrix registered");
        let mut scale = m.default_scale * cfg.scale_mult;
        let mut a = m.generate(scale);
        if !cfg.quick {
            while a.n_rows() < 100_000 && a.nnz() < 30_000_000 {
                scale *= 1.6;
                a = m.generate(scale);
            }
        }
        let mut times = Vec::new();
        for &threads in &SCALING_THREADS {
            let mut best = f64::INFINITY;
            for _ in 0..reps {
                let t0 = Instant::now();
                let (p, _) = par_rcm(&a, threads);
                best = best.min(t0.elapsed().as_secs_f64());
                assert_eq!(p.len(), a.n_rows());
            }
            times.push(best);
        }
        let mut row = vec![
            m.name.to_string(),
            fmt_count(a.n_rows() as u64),
            fmt_count(a.nnz() as u64),
        ];
        row.extend(times.iter().map(|&dt| fmt_secs(dt)));
        row.extend(
            times[1..]
                .iter()
                .map(|&dt| format!("{:.2}x", times[0] / dt)),
        );
        t.row(row);
    }
    t
}

// ---------------------------------------------------------------------------
// Figs. 4 and 5 — distributed breakdown sweeps
// ---------------------------------------------------------------------------

/// One matrix's sweep over core counts.
pub struct SweepPanel {
    /// Suite matrix name.
    pub name: String,
    /// `(cores, breakdown, total-seconds)` per configuration.
    pub points: Vec<(usize, Breakdown, f64)>,
}

/// Run the hybrid (6 threads/process) sweep used by both Fig. 4 and Fig. 5.
pub fn run_hybrid_sweep(cfg: &ExpConfig) -> Vec<SweepPanel> {
    let mut panels = Vec::new();
    for m in cfg.matrices() {
        let a = cfg.generate(&m);
        let mut points = Vec::new();
        for cores in cfg.hybrid_cores() {
            let mut c = DistRcmConfig::hybrid_on_edison(cores);
            c.balance_seed = Some(0xBA1A);
            let r = dist_rcm(&a, &c);
            points.push((cores, r.breakdown.clone(), r.sim_seconds));
        }
        panels.push(SweepPanel {
            name: m.name.to_string(),
            points,
        });
    }
    panels
}

/// Fig. 4: per-phase runtime breakdown for every suite matrix.
pub fn fig4_breakdown(panels: &[SweepPanel]) -> Vec<Table> {
    panels
        .iter()
        .map(|p| {
            let mut t = Table::new(
                format!("Fig. 4 — runtime breakdown: {}", p.name),
                &[
                    "cores",
                    "Peripheral:SpMSpV",
                    "Peripheral:Other",
                    "Ordering:SpMSpV",
                    "Ordering:Sorting",
                    "Ordering:Other",
                    "total",
                ],
            );
            for (cores, b, total) in &p.points {
                let mut row = vec![cores.to_string()];
                for ph in Phase::ALL {
                    row.push(fmt_secs(b.get(ph).total()));
                }
                row.push(fmt_secs(*total));
                t.row(row);
            }
            t
        })
        .collect()
}

/// Fig. 5: computation vs communication inside all SpMSpV calls.
pub fn fig5_spmspv_split(panels: &[SweepPanel]) -> Vec<Table> {
    panels
        .iter()
        .map(|p| {
            let mut t = Table::new(
                format!("Fig. 5 — SpMSpV computation vs communication: {}", p.name),
                &["cores", "computation", "communication", "comm-fraction"],
            );
            for (cores, b, _) in &p.points {
                let split = b.spmspv_split();
                let frac = if split.total() > 0.0 {
                    split.comm / split.total()
                } else {
                    0.0
                };
                t.row(vec![
                    cores.to_string(),
                    fmt_secs(split.compute),
                    fmt_secs(split.comm),
                    format!("{:.0}%", frac * 100.0),
                ]);
            }
            t
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Fig. 6 — flat MPI vs hybrid on ldoor
// ---------------------------------------------------------------------------

/// Fig. 6: breakdown of flat-MPI RCM on the ldoor stand-in, with the hybrid
/// total alongside (the paper quotes a ~5× hybrid advantage at 4096 cores).
pub fn fig6_flat_vs_hybrid(cfg: &ExpConfig) -> Table {
    let m = suite_matrix("ldoor").expect("ldoor is registered");
    let a = cfg.generate(&m);
    let mut t = Table::new(
        "Fig. 6 — flat MPI breakdown on ldoor (hybrid total for comparison)",
        &[
            "cores",
            "Peripheral:SpMSpV",
            "Peripheral:Other",
            "Ordering:SpMSpV",
            "Ordering:Sorting",
            "Ordering:Other",
            "flat total",
            "hybrid total",
        ],
    );
    for cores in cfg.flat_cores() {
        let mut flat_cfg = DistRcmConfig::flat_on_edison(cores);
        flat_cfg.balance_seed = Some(0xBA1A);
        let flat = dist_rcm(&a, &flat_cfg);
        // Nearest hybrid configuration with the same core budget: 6
        // threads/process needs cores divisible into a square process count;
        // reuse the paper pairing (4096 flat vs 4056 hybrid etc.).
        let hybrid_cores = PAPER_HYBRID_CORES
            .iter()
            .copied()
            .min_by_key(|&h| h.abs_diff(cores))
            .unwrap();
        let mut hybrid_cfg = DistRcmConfig::hybrid_on_edison(hybrid_cores);
        hybrid_cfg.balance_seed = Some(0xBA1A);
        let hybrid = dist_rcm(&a, &hybrid_cfg);
        let mut row = vec![cores.to_string()];
        for ph in Phase::ALL {
            row.push(fmt_secs(flat.breakdown.get(ph).total()));
        }
        row.push(fmt_secs(flat.sim_seconds));
        row.push(fmt_secs(hybrid.sim_seconds));
        t.row(row);
    }
    t
}

// ---------------------------------------------------------------------------
// Fig. 1 — CG + block-Jacobi, natural vs RCM
// ---------------------------------------------------------------------------

/// Fig. 1: CG solve time (measured iterations × modeled per-iteration time)
/// for the thermal2 stand-in under natural and RCM orderings.
pub fn fig1_cg_solve(cfg: &ExpConfig) -> Table {
    let m = suite_matrix("thermal2").expect("thermal2 is registered");
    let pattern = cfg.generate(&m);
    let machine = MachineModel::edison();
    let rel_tol = 1e-6;
    let max_iter = 20_000;

    let perm = rcm(&pattern);
    let reordered = pattern.permute_sym(&perm);
    let natural_num = CsrNumeric::laplacian_from_pattern(&pattern, 0.02);
    let rcm_num = CsrNumeric::laplacian_from_pattern(&reordered, 0.02);
    let rhs_for = |a: &CsrNumeric| -> Vec<f64> {
        let n = a.n_rows();
        let x: Vec<f64> = (0..n).map(|i| ((i % 13) as f64) - 6.0).collect();
        let mut b = vec![0.0; n];
        a.spmv(&x, &mut b);
        b
    };

    let cores = if cfg.quick {
        vec![1usize, 16, 64]
    } else {
        vec![1usize, 4, 16, 64, 256]
    };
    let mut t = Table::new(
        "Fig. 1 — CG+block-Jacobi on thermal2: natural vs RCM ordering",
        &[
            "cores",
            "nat iters",
            "nat t/iter",
            "nat total",
            "rcm iters",
            "rcm t/iter",
            "rcm total",
            "speedup",
        ],
    );
    for p in cores {
        let mut row = vec![p.to_string()];
        let mut totals = [0.0f64; 2];
        for (k, (a, pat)) in [(&natural_num, &pattern), (&rcm_num, &reordered)]
            .into_iter()
            .enumerate()
        {
            let bj = BlockJacobi::new(a, p);
            let res = pcg(a, &rhs_for(a), &bj, rel_tol, max_iter);
            assert!(res.converged, "CG failed to converge on {} blocks", p);
            let iter_cost = cg_iteration_cost(pat, &machine, p, bj.factor_nnz());
            let total = res.iterations as f64 * iter_cost.total();
            totals[k] = total;
            row.push(res.iterations.to_string());
            row.push(fmt_secs(iter_cost.total()));
            row.push(fmt_secs(total));
        }
        row.push(format!("{:.1}x", totals[0] / totals[1]));
        t.row(row);
    }
    t
}

// ---------------------------------------------------------------------------
// Ablation — sorting strategies (§VI)
// ---------------------------------------------------------------------------

/// Compare the paper's per-level bucket sort against the no-sort and
/// global-sort-at-end alternatives: ordering quality (bandwidth) and
/// simulated time at a small and a large core count.
pub fn ablation_sort_modes(cfg: &ExpConfig) -> Table {
    let names = if cfg.quick {
        vec!["ldoor"]
    } else {
        vec!["nd24k", "ldoor", "Serena", "nlpkkt240"]
    };
    let core_counts = if cfg.quick { vec![24] } else { vec![54, 1014] };
    let mut t = Table::new(
        "Ablation — sorting strategy: bandwidth and simulated time",
        &[
            "matrix",
            "mode",
            "bandwidth",
            "serial-bw",
            "time@54c",
            "time@1014c",
        ],
    );
    for name in names {
        let m = suite_matrix(name).unwrap();
        let a = cfg.generate(&m);
        // Serial ablation variants give the quality yardstick.
        let serial_bw = [
            ordering_bandwidth(&a, &rcm(&a)),
            ordering_bandwidth(&a, &rcm_nosort(&a)),
            ordering_bandwidth(&a, &rcm_globalsort(&a)),
        ];
        for (mode, label, sbw) in [
            (SortMode::Full, "full-sort", serial_bw[0]),
            (SortMode::GeneralSamplesort, "samplesort", serial_bw[0]),
            (SortMode::NoSort, "no-sort", serial_bw[1]),
            (SortMode::GlobalSortAtEnd, "global-end", serial_bw[2]),
        ] {
            let mut times = Vec::new();
            let mut bw = 0usize;
            for &cores in &core_counts {
                let mut c = DistRcmConfig::hybrid_on_edison(cores);
                c.sort_mode = mode;
                let r = dist_rcm(&a, &c);
                bw = ordering_bandwidth(&a, &r.perm);
                times.push(fmt_secs(r.sim_seconds));
            }
            while times.len() < 2 {
                times.push("-".into());
            }
            t.row(vec![
                name.to_string(),
                label.to_string(),
                fmt_count(bw as u64),
                fmt_count(sbw as u64),
                times[0].clone(),
                times[1].clone(),
            ]);
        }
    }
    t
}

// ---------------------------------------------------------------------------
// Ablation — direction-optimizing frontier expansion (push / pull / adaptive)
// ---------------------------------------------------------------------------

/// The three user-facing direction policies the ablation compares.
const DIRECTIONS: [ExpandDirection; 3] = [
    ExpandDirection::Push,
    ExpandDirection::Pull,
    ExpandDirection::Adaptive,
];

/// Direction-optimizing expand ablation: push-only, pull-only, and the
/// adaptive Beamer-style switch side by side on the low-diameter suite
/// graphs (where RCM frontiers grow to a large fraction of the unvisited
/// vertices) plus any `--mtx` inputs.
///
/// Serial and pooled rows report measured wall-clock; dist (16 ranks, flat)
/// and hybrid (24 cores, 6 t/p) report simulated time, where the model
/// makes the trade visible deterministically: pull's dense allgather and
/// streaming row-scan beat push's sparse gather/reduce exactly on
/// dense-frontier levels, and adaptive takes whichever is cheaper per
/// level. `pull-lv` counts the expansions the adaptive run chose to pull;
/// `identical` asserts all three permutations match the serial push
/// reference bit for bit.
pub fn direction_ablation(cfg: &ExpConfig) -> Table {
    // Low-diameter suite classes: pseudo-diameter ≤ ~60 at paper scale, the
    // fat-frontier regime the direction switch targets (quick mode reuses
    // the standard CI trio).
    let names = if cfg.quick {
        vec!["nd24k", "ldoor", "Li7Nmax6"]
    } else {
        vec!["Li7Nmax6", "Nm7", "nd24k", "Serena", "audikw_1", "ldoor"]
    };
    let mut inputs: Vec<(String, CscMatrix)> = names
        .into_iter()
        .map(|name| {
            let m = suite_matrix(name).expect("direction suite matrix registered");
            (name.to_string(), cfg.generate(&m))
        })
        .collect();
    inputs.extend(
        cfg.mtx
            .iter()
            .map(|input| (input.name.clone(), input.matrix.clone())),
    );

    let mut t = Table::new(
        "Direction ablation — push / pull / adaptive frontier expansion",
        &[
            "matrix",
            "backend",
            "clock",
            "t(push)",
            "t(pull)",
            "t(adaptive)",
            "pull-lv",
            "identical",
        ],
    );
    for (name, a) in &inputs {
        let reference = algebraic_rcm_directed(a, ExpandDirection::Push).0;
        // Measured backends: serial and the 4-thread pool.
        for (backend, threads) in [("serial", 1usize), ("pooled", 4)] {
            let mut times = Vec::new();
            let mut pull_levels = 0usize;
            let mut identical = true;
            for d in DIRECTIONS {
                let t0 = Instant::now();
                let (perm, pulls) = if backend == "serial" {
                    let (perm, s) = algebraic_rcm_directed(a, d);
                    (perm, s.pull_expands)
                } else {
                    let (perm, s) = par_rcm_directed(a, threads, d);
                    (perm, s.pull_expands)
                };
                times.push(fmt_secs(t0.elapsed().as_secs_f64()));
                identical &= perm == reference;
                if d == ExpandDirection::Adaptive {
                    pull_levels = pulls;
                }
            }
            t.row(vec![
                name.clone(),
                backend.to_string(),
                "measured".into(),
                times[0].clone(),
                times[1].clone(),
                times[2].clone(),
                pull_levels.to_string(),
                identical.to_string(),
            ]);
        }
        // Simulated backends: flat 16 ranks and 24-core hybrid (the
        // `repro backends` configurations).
        for (backend, base) in [
            ("dist", DistRcmConfig::flat_on_edison(16)),
            ("hybrid", DistRcmConfig::hybrid_on_edison(24)),
        ] {
            let mut times = Vec::new();
            let mut pull_levels = 0usize;
            let mut identical = true;
            for d in DIRECTIONS {
                let mut dcfg = base;
                dcfg.direction = d;
                let r = dist_rcm(a, &dcfg);
                times.push(fmt_secs(r.sim_seconds));
                identical &= r.perm == reference;
                if d == ExpandDirection::Adaptive {
                    pull_levels = r.pull_expands;
                }
            }
            t.row(vec![
                name.clone(),
                backend.to_string(),
                "simulated".into(),
                times[0].clone(),
                times[1].clone(),
                times[2].clone(),
                pull_levels.to_string(),
                identical.to_string(),
            ]);
        }
    }
    t
}

// ---------------------------------------------------------------------------
// Ordering throughput — warm OrderingEngine vs cold per-call construction
// ---------------------------------------------------------------------------

/// One `(suite class, backend)` throughput measurement of the
/// `repro throughput` experiment, in raw numbers (the table formats them).
pub struct ThroughputRow {
    /// Suite class name.
    pub matrix: String,
    /// Backend measured (`serial` or `pooled`).
    pub backend: &'static str,
    /// Matrices in the stream (the class at several scales).
    pub batch_size: usize,
    /// Orderings/second with a fresh engine constructed per call (what
    /// every per-call entry point pays).
    pub cold_ops: f64,
    /// Orderings/second through one warm engine, `order` per matrix.
    pub warm_ops: f64,
    /// Orderings/second through one warm engine's `order_batch` (two-level
    /// parallelism on the pooled backend).
    pub batch_ops: f64,
    /// Every engine permutation matched `rcm_with_backend` bit for bit —
    /// on the measured backend for the whole stream, and on all four
    /// backends for the stream's largest matrix.
    pub identical: bool,
}

/// Measure warm-engine vs cold per-call ordering throughput per suite
/// class: a stream of the class at several scales, each configuration
/// timed best-of-`reps` over full passes. Cold constructs an
/// [`rcm_core::OrderingEngine`] per ordering (for the pooled backend that includes
/// the worker spawn, exactly what `par_rcm` pays per call); warm reuses
/// one engine; batch additionally schedules small matrices whole,
/// one-per-worker.
pub fn throughput_measurements(cfg: &ExpConfig) -> Vec<ThroughputRow> {
    let names: Vec<&str> = cfg.matrices().iter().map(|m| m.name).collect();
    let reps = if cfg.quick { 3 } else { 5 };
    // A stream of the class at staggered scales, shrunk so one pass stays
    // cheap enough to repeat: throughput over many matrices is the metric,
    // not single-matrix latency.
    let scales = [0.45f64, 0.6, 0.75, 0.9];
    let mut rows = Vec::new();
    for name in names {
        let m = suite_matrix(name).expect("throughput suite matrix registered");
        let mats: Vec<CscMatrix> = scales
            .iter()
            .map(|s| m.generate(m.default_scale * cfg.scale_mult * s))
            .collect();
        let largest = mats
            .iter()
            .max_by_key(|a| a.n_rows())
            .expect("non-empty stream");
        // Bit-equality across all four backends on the stream's largest
        // matrix — checked once per class (the dist/hybrid simulations are
        // the expensive part), shared by both measured rows.
        let serial_ref = rcm_with_backend(largest, BackendKind::Serial);
        let mut four_way_identical = true;
        for check_kind in [
            BackendKind::Pooled { threads: 4 },
            BackendKind::Dist { cores: 16 },
            BackendKind::Hybrid {
                cores: 24,
                threads_per_proc: 6,
            },
        ] {
            four_way_identical &= rcm_core::OrderingEngine::with_backend(check_kind)
                .order(largest)
                .perm
                == serial_ref;
        }
        for (backend, kind) in [
            ("serial", BackendKind::Serial),
            ("pooled", BackendKind::Pooled { threads: 4 }),
        ] {
            // Bit-equality of the warm engine against the per-call entry,
            // on the measured backend for every stream matrix.
            let mut engine = rcm_core::OrderingEngine::with_backend(kind);
            let identical = four_way_identical
                && mats
                    .iter()
                    .all(|a| engine.order(a).perm == rcm_with_backend(a, kind));

            // The three modes are measured *interleaved* within each rep
            // (cold, then warm, then batch, adjacent in time) so ambient
            // load — a CI runner compiling sibling crates, say — hits all
            // three roughly equally; best-of across reps then discards the
            // noisy ones. Cold constructs a fresh engine (backend
            // included) per ordering; warm reuses the one engine (already
            // warmed by the equality pass above).
            let mut cold_best = f64::INFINITY;
            let mut warm_best = f64::INFINITY;
            let mut batch_best = f64::INFINITY;
            for _ in 0..reps {
                let t0 = Instant::now();
                for a in &mats {
                    let report = rcm_core::OrderingEngine::with_backend(kind).order(a);
                    assert_eq!(report.perm.len(), a.n_rows());
                }
                cold_best = cold_best.min(t0.elapsed().as_secs_f64());
                let t0 = Instant::now();
                for a in &mats {
                    let report = engine.order(a);
                    assert_eq!(report.perm.len(), a.n_rows());
                }
                warm_best = warm_best.min(t0.elapsed().as_secs_f64());
                let t0 = Instant::now();
                let reports = engine.order_batch(&mats);
                batch_best = batch_best.min(t0.elapsed().as_secs_f64());
                assert_eq!(reports.len(), mats.len());
            }
            let ops = |secs: f64| mats.len() as f64 / secs.max(1e-12);
            rows.push(ThroughputRow {
                matrix: name.to_string(),
                backend,
                batch_size: mats.len(),
                cold_ops: ops(cold_best),
                warm_ops: ops(warm_best),
                batch_ops: ops(batch_best),
                identical,
            });
        }
    }
    rows
}

/// The `repro throughput` table: orderings/second, warm engine vs cold
/// per-call construction vs warm batch, per suite class and backend. The
/// bench tests assert warm ≥ cold on every class's pooled row (the
/// amortization the engine exists for) and that every permutation stayed
/// bit-identical to `rcm_with_backend`.
pub fn throughput_table(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "Ordering throughput — warm OrderingEngine vs cold per-call (orderings/sec)",
        &[
            "matrix",
            "backend",
            "stream",
            "cold o/s",
            "warm o/s",
            "batch o/s",
            "warm/cold",
            "identical",
        ],
    );
    for row in throughput_measurements(cfg) {
        t.row(vec![
            row.matrix.clone(),
            row.backend.to_string(),
            row.batch_size.to_string(),
            format!("{:.1}", row.cold_ops),
            format!("{:.1}", row.warm_ops),
            format!("{:.1}", row.batch_ops),
            format!("{:.2}x", row.warm_ops / row.cold_ops),
            row.identical.to_string(),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// Service tier — closed-loop load: cold vs warm shards vs pattern cache
// ---------------------------------------------------------------------------

/// One suite-class row of the `repro service` experiment, in raw numbers
/// (the table formats them).
pub struct ServiceRow {
    /// Suite class name.
    pub matrix: String,
    /// Jobs per timed pass (the class at several scales, repeated).
    pub jobs: usize,
    /// Orderings/second with a fresh engine constructed per job — what a
    /// caller pays without any service tier.
    pub cold_ops: f64,
    /// Orderings/second through the `OrderingService` with the pattern
    /// cache disabled: the bounded queue feeding sharded warm engines.
    pub warm_ops: f64,
    /// Orderings/second through the service with a prewarmed pattern
    /// cache: every job is an O(nnz) fingerprint hit at submit.
    pub cached_ops: f64,
    /// Median submit→completion latency (ms) under Poisson-ish arrivals
    /// on the cached service.
    pub p50_ms: f64,
    /// 95th-percentile submit→completion latency (ms), same phase.
    pub p95_ms: f64,
    /// Cache hits / lookups over the cached phases.
    pub hit_rate: f64,
    /// Every cached permutation matched the fresh single-shot ordering
    /// bit for bit.
    pub identical: bool,
}

/// Measure the service tier per suite class: a closed-loop job stream (the
/// class at several scales, repeated, deterministically shuffled) driven
/// through (a) a fresh engine per job, (b) an `OrderingService` with warm
/// shards and no cache, and (c) the same service with a prewarmed pattern
/// cache — each timed best-of-`reps`, interleaved so ambient load hits all
/// three alike. A final phase replays the stream with Poisson-ish
/// inter-arrival gaps from the seeded shim RNG and reports latency
/// percentiles off the `JobHandle` clocks.
pub fn service_measurements(cfg: &ExpConfig) -> Vec<ServiceRow> {
    use rcm_core::{
        CacheOutcome, EngineConfig, OrderingEngine, OrderingRequest, OrderingService, ServiceConfig,
    };
    let names: Vec<&str> = cfg.matrices().iter().map(|m| m.name).collect();
    let reps = if cfg.quick { 3 } else { 5 };
    let scales = [0.45f64, 0.6, 0.75, 0.9];
    let passes = 3;
    let mut rows = Vec::new();
    for name in names {
        let m = suite_matrix(name).expect("service suite matrix registered");
        let mats: Vec<CscMatrix> = scales
            .iter()
            .map(|s| m.generate(m.default_scale * cfg.scale_mult * s))
            .collect();
        // The job stream: every pattern `passes` times, deterministically
        // shuffled — the repeated-pattern workload the cache exists for.
        let mut stream: Vec<usize> = (0..mats.len()).cycle().take(mats.len() * passes).collect();
        let mut rng = StdRng::seed_from_u64(0x5EED ^ name.len() as u64);
        for i in (1..stream.len()).rev() {
            stream.swap(i, rng.gen_range(0..i + 1));
        }
        let fresh: Vec<Permutation> = mats
            .iter()
            .map(|a| rcm_with_backend(a, BackendKind::Serial))
            .collect();

        let engine_cfg = EngineConfig::builder().backend(BackendKind::Serial).build();
        let warm_service =
            OrderingService::start(ServiceConfig::new(engine_cfg).shards(2).no_cache());
        let cached_service = OrderingService::start(ServiceConfig::new(engine_cfg).shards(2));
        // Prewarm: each distinct pattern ordered (and inserted) once, and
        // its cached permutation checked bit for bit against the fresh
        // single-shot ordering.
        let mut identical = true;
        for (a, expect) in mats.iter().zip(&fresh) {
            let miss = cached_service
                .submit(OrderingRequest::new(a.clone()))
                .wait();
            let hit = cached_service
                .submit(OrderingRequest::new(a.clone()))
                .wait();
            identical &= hit.cache == Some(CacheOutcome::Hit);
            identical &= miss.perm == *expect && hit.perm == *expect;
        }

        // The three modes are timed *interleaved* within each rep (cold,
        // warm, cached adjacent in time) so ambient load hits all three
        // roughly equally; best-of across reps discards the noisy ones.
        let mut cold_best = f64::INFINITY;
        let mut warm_best = f64::INFINITY;
        let mut cached_best = f64::INFINITY;
        for _ in 0..reps {
            let t0 = Instant::now();
            for &i in &stream {
                let report = OrderingEngine::with_backend(BackendKind::Serial).order(&mats[i]);
                assert_eq!(report.perm.len(), mats[i].n_rows());
            }
            cold_best = cold_best.min(t0.elapsed().as_secs_f64());

            let t0 = Instant::now();
            let handles: Vec<_> = stream
                .iter()
                .map(|&i| warm_service.submit(OrderingRequest::new(mats[i].clone())))
                .collect();
            for h in &handles {
                h.wait();
            }
            warm_best = warm_best.min(t0.elapsed().as_secs_f64());

            let t0 = Instant::now();
            let handles: Vec<_> = stream
                .iter()
                .map(|&i| cached_service.submit(OrderingRequest::new(mats[i].clone())))
                .collect();
            for h in &handles {
                identical &= h.wait().cache == Some(CacheOutcome::Hit);
            }
            cached_best = cached_best.min(t0.elapsed().as_secs_f64());
        }

        // Latency under Poisson-ish arrivals: exponential inter-arrival
        // gaps from the seeded shim RNG, latencies off the handle clocks.
        let mean_gap_us = 150.0;
        let handles: Vec<_> = stream
            .iter()
            .map(|&i| {
                let h = cached_service.submit(OrderingRequest::new(mats[i].clone()));
                let u: f64 = rng.gen();
                let gap = -mean_gap_us * (1.0 - u).ln();
                std::thread::sleep(std::time::Duration::from_micros(gap as u64));
                h
            })
            .collect();
        let mut latencies: Vec<f64> = handles
            .iter()
            .map(|h| {
                h.wait();
                h.latency()
                    .expect("waited handle has a latency")
                    .as_secs_f64()
            })
            .collect();
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let pct = |p: usize| latencies[(latencies.len() - 1) * p / 100] * 1e3;

        let stats = cached_service.stats();
        let lookups = (stats.cache_hits + stats.cache_misses).max(1);
        rows.push(ServiceRow {
            matrix: name.to_string(),
            jobs: stream.len(),
            cold_ops: stream.len() as f64 / cold_best.max(1e-12),
            warm_ops: stream.len() as f64 / warm_best.max(1e-12),
            cached_ops: stream.len() as f64 / cached_best.max(1e-12),
            p50_ms: pct(50),
            p95_ms: pct(95),
            hit_rate: stats.cache_hits as f64 / lookups as f64,
            identical,
        });
    }
    rows
}

/// The `repro service` table: orderings/second through a fresh engine per
/// job, the warm sharded service, and the pattern-cached service, plus
/// latency percentiles under Poisson-ish arrivals. The bench tests assert
/// cached > warm strictly on every class and that every cached permutation
/// stayed bit-identical to the fresh ordering.
pub fn service_table(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "Ordering service — closed-loop load: cold vs warm shards vs pattern cache (orderings/sec)",
        &[
            "matrix",
            "jobs",
            "cold o/s",
            "warm o/s",
            "cached o/s",
            "cached/warm",
            "p50 ms",
            "p95 ms",
            "hit rate",
            "identical",
        ],
    );
    for row in service_measurements(cfg) {
        t.row(vec![
            row.matrix.clone(),
            row.jobs.to_string(),
            format!("{:.1}", row.cold_ops),
            format!("{:.1}", row.warm_ops),
            format!("{:.1}", row.cached_ops),
            format!("{:.2}x", row.cached_ops / row.warm_ops),
            format!("{:.3}", row.p50_ms),
            format!("{:.3}", row.p95_ms),
            format!("{:.2}", row.hit_rate),
            row.identical.to_string(),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// Component-parallel ordering — split + schedule + stitch vs sequential
// ---------------------------------------------------------------------------

/// One `(class, backend, threads)` row of the `repro components`
/// experiment, in raw numbers (the table formats them).
pub struct ComponentRow {
    /// Multi-component class name (`forest`, `multi_body`, `block_diag`).
    pub class: String,
    /// Backend measured (`serial` or `pooled`).
    pub backend: &'static str,
    /// Pool worker threads (1 on the serial row).
    pub threads: usize,
    /// Vertices in the class matrix.
    pub n: usize,
    /// Stored entries in the class matrix.
    pub nnz: usize,
    /// Connected components in the class matrix.
    pub components: usize,
    /// Best-of-reps wall seconds per ordering for the sequential driver
    /// (one warm engine, `split_components` off): every component pays a
    /// full unvisited-minimum scan and, pooled, per-level worker sync.
    pub seq_secs: f64,
    /// Best-of-reps wall seconds per ordering with component splitting on:
    /// detect once, order each sub-matrix as an independent job (small
    /// components whole-per-worker), stitch.
    pub split_secs: f64,
    /// The split ordering matched the sequential driver bit for bit — on
    /// the measured backend every rep, and on all four backends checked
    /// once per class.
    pub identical: bool,
}

/// The three multi-component classes of the `repro components` experiment.
///
/// Component *count* is the driving dimension — the sequential driver pays
/// one full unvisited-minimum scan per component and, pooled, per-level
/// sync inside every tiny component — so quick mode keeps fixed
/// many-component shapes (~10³ vertices, cheap enough for CI) rather than
/// scaling the components away; full mode grows with `scale_mult`.
fn component_classes(cfg: &ExpConfig) -> Vec<(&'static str, CscMatrix)> {
    if cfg.quick {
        vec![
            ("forest", forest(24, 40, 11)),
            ("multi_body", multi_body(6, 10, 12)),
            ("block_diag", block_diag(4, 7, 13)),
        ]
    } else {
        let k = |base: usize| ((base as f64 * cfg.scale_mult).round() as usize).max(2);
        vec![
            ("forest", forest(k(64), 120, 11)),
            ("multi_body", multi_body(k(10), 22, 12)),
            ("block_diag", block_diag(k(8), 12, 13)),
        ]
    }
}

/// Measure component-parallel ordering per multi-component class: one warm
/// engine with `split_components` off (the sequential driver) against one
/// with it on, per backend — serial plus pooled at each `RCM_THREADS`
/// count — timed best-of-`reps` with the two drivers interleaved within
/// each rep so ambient load hits both alike. Bit-equality of the split
/// ordering is checked against the plain serial reference on all four
/// backends once per class, and against the measured backend every rep.
pub fn component_measurements(cfg: &ExpConfig) -> Vec<ComponentRow> {
    let reps = if cfg.quick { 3 } else { 5 };
    let inner = if cfg.quick { 4 } else { 2 };
    let thread_counts = rcm_core::thread_counts_from_env(&[1, 4]);
    let mut rows = Vec::new();
    for (class, a) in component_classes(cfg) {
        let components = connected_components(&a).count();
        let serial_ref = rcm_with_backend(&a, BackendKind::Serial);
        // Bit-equality of the split path across all four backends, checked
        // once per class (the dist/hybrid simulations are the expensive
        // part), shared by every measured row of the class.
        let mut four_way_identical = true;
        for kind in [
            BackendKind::Serial,
            BackendKind::Pooled { threads: 4 },
            BackendKind::Dist { cores: 16 },
            BackendKind::Hybrid {
                cores: 24,
                threads_per_proc: 6,
            },
        ] {
            let mut split_engine = rcm_core::OrderingEngine::new(
                rcm_core::EngineConfig::builder()
                    .backend(kind)
                    .split_components(true)
                    .build(),
            );
            four_way_identical &= split_engine.order(&a).perm == serial_ref;
        }
        let mut backends: Vec<(&'static str, usize, BackendKind)> =
            vec![("serial", 1, BackendKind::Serial)];
        for &t in &thread_counts {
            backends.push(("pooled", t, BackendKind::Pooled { threads: t }));
        }
        for (backend, threads, kind) in backends {
            let mut seq = rcm_core::OrderingEngine::with_backend(kind);
            let mut split = rcm_core::OrderingEngine::new(
                rcm_core::EngineConfig::builder()
                    .backend(kind)
                    .split_components(true)
                    .build(),
            );
            // Warms both engines (workspaces, pool spawn) and pins the
            // per-backend equality before any timing.
            let mut identical = four_way_identical && split.order(&a).perm == seq.order(&a).perm;
            let mut seq_best = f64::INFINITY;
            let mut split_best = f64::INFINITY;
            for _ in 0..reps {
                let t0 = Instant::now();
                for _ in 0..inner {
                    let report = seq.order(&a);
                    assert_eq!(report.perm.len(), a.n_rows());
                }
                seq_best = seq_best.min(t0.elapsed().as_secs_f64() / inner as f64);
                let t0 = Instant::now();
                for _ in 0..inner {
                    let report = split.order(&a);
                    assert_eq!(report.perm.len(), a.n_rows());
                }
                split_best = split_best.min(t0.elapsed().as_secs_f64() / inner as f64);
                identical &= split.order(&a).perm == seq.order(&a).perm;
            }
            rows.push(ComponentRow {
                class: class.to_string(),
                backend,
                threads,
                n: a.n_rows(),
                nnz: a.nnz(),
                components,
                seq_secs: seq_best,
                split_secs: split_best,
                identical,
            });
        }
    }
    rows
}

/// The `repro components` table: sequential-driver vs component-parallel
/// wall time per multi-component class and backend. The bench tests assert
/// split ≥ sequential throughput on every pooled row (whole-component
/// batch scheduling is what the split path exists for) and that every
/// split ordering stayed bit-identical to the sequential driver.
pub fn components_table(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "Component-parallel ordering — split+schedule+stitch vs sequential driver",
        &[
            "class",
            "backend",
            "threads",
            "n",
            "nnz",
            "comps",
            "seq ms",
            "split ms",
            "speedup",
            "identical",
        ],
    );
    for row in component_measurements(cfg) {
        t.row(vec![
            row.class.clone(),
            row.backend.to_string(),
            row.threads.to_string(),
            fmt_count(row.n as u64),
            fmt_count(row.nnz as u64),
            row.components.to_string(),
            format!("{:.3}", row.seq_secs * 1e3),
            format!("{:.3}", row.split_secs * 1e3),
            format!("{:.2}x", row.seq_secs / row.split_secs.max(1e-12)),
            row.identical.to_string(),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// Start-node strategy ablation — george-liu vs bi-criteria vs min-degree
// ---------------------------------------------------------------------------

/// The three environment-selectable strategies the `repro startnode`
/// ablation compares (`Fixed` is excluded: its cost is trivially zero and
/// its quality is whatever the caller pinned).
pub const START_NODE_STRATEGIES: [StartNode; 3] = [
    StartNode::GeorgeLiu,
    StartNode::BiCriteria,
    StartNode::MinDegree,
];

/// One (class × backend × strategy) row of the `repro startnode`
/// experiment, in raw numbers (the table formats them).
#[derive(Clone, Debug)]
pub struct StartNodeRow {
    /// Suite class name.
    pub class: String,
    /// Backend measured (`serial`, `pooled`, `dist`, `hybrid`).
    pub backend: &'static str,
    /// Strategy name ([`StartNode::name`]).
    pub strategy: &'static str,
    /// Vertices in the class matrix.
    pub n: usize,
    /// Stored entries in the class matrix.
    pub nnz: usize,
    /// Pseudo-peripheral BFS sweeps summed over every component (0 for the
    /// zero-sweep min-degree baseline).
    pub sweeps: usize,
    /// BFS levels traversed by those sweeps (the α–β cost driver: each
    /// level is a frontier expansion round).
    pub levels: usize,
    /// Final eccentricity of the first component's chosen start vertex.
    pub eccentricity: usize,
    /// Width (max level size) of the BFS level structure rooted at the
    /// first component's chosen start vertex — the quality proxy the
    /// peripheral search minimizes indirectly.
    pub width: usize,
    /// Post-RCM bandwidth under this strategy's ordering.
    pub bandwidth: usize,
    /// Best-of-reps wall seconds per ordering (warm engine).
    pub wall_secs: f64,
    /// Simulated seconds on the dist/hybrid backends (0.0 elsewhere).
    pub sim_secs: f64,
    /// This backend's ordering matched the serial backend under the same
    /// strategy bit for bit (per-strategy cross-backend determinism).
    pub deterministic: bool,
}

/// Measure every start-node strategy on every suite class and backend:
/// one warm engine per (class, backend, strategy), best-of-`reps` wall
/// time, sweep/level/eccentricity counts from
/// [`rcm_core::DriverStats::peripheral_stats`], level-structure width of
/// the chosen start, and post-RCM bandwidth. The serial backend under the
/// same strategy is the determinism reference for the other three.
pub fn startnode_measurements(cfg: &ExpConfig) -> Vec<StartNodeRow> {
    let reps = if cfg.quick { 2 } else { 3 };
    let backends: [(&'static str, BackendKind); 4] = [
        ("serial", BackendKind::Serial),
        ("pooled", BackendKind::Pooled { threads: 4 }),
        ("dist", BackendKind::Dist { cores: 16 }),
        (
            "hybrid",
            BackendKind::Hybrid {
                cores: 24,
                threads_per_proc: 6,
            },
        ),
    ];
    let mut rows = Vec::new();
    for m in cfg.matrices() {
        let a = cfg.generate(&m);
        for strategy in START_NODE_STRATEGIES {
            let mut serial_engine = rcm_core::OrderingEngine::new(
                rcm_core::EngineConfig::builder()
                    .start_node(strategy)
                    .build(),
            );
            let serial_ref = serial_engine.order(&a);
            for (backend, kind) in backends {
                let mut engine = rcm_core::OrderingEngine::new(
                    rcm_core::EngineConfig::builder()
                        .backend(kind)
                        .start_node(strategy)
                        .build(),
                );
                let mut wall_best = f64::INFINITY;
                let mut report = None;
                for _ in 0..reps {
                    let r = engine.order(&a);
                    wall_best = wall_best.min(r.wall_seconds);
                    report = Some(r);
                }
                let report = report.expect("reps >= 1");
                let first = report.peripheral_first().copied().unwrap_or_default();
                rows.push(StartNodeRow {
                    class: m.name.to_string(),
                    backend,
                    strategy: strategy.name(),
                    n: a.n_rows(),
                    nnz: a.nnz(),
                    sweeps: report.peripheral_sweeps(),
                    levels: report.stats.peripheral_stats.iter().map(|p| p.levels).sum(),
                    eccentricity: first.eccentricity,
                    width: bfs_level_structure(&a, first.start).width(),
                    bandwidth: report.bandwidth_after,
                    wall_secs: wall_best,
                    sim_secs: report.sim_seconds(),
                    deterministic: report.perm == serial_ref.perm,
                });
            }
        }
    }
    rows
}

/// The `repro startnode` table: the bench tests assert that bi-criteria
/// never runs more sweeps than George–Liu on any class or backend, that
/// its post-RCM bandwidth stays within a small tolerance, and that every
/// strategy is deterministic across the four backends.
pub fn startnode_table(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "Start-node strategy ablation — sweeps saved vs ordering quality",
        &[
            "class",
            "backend",
            "strategy",
            "n",
            "nnz",
            "sweeps",
            "levels",
            "ecc",
            "width",
            "bandwidth",
            "wall ms",
            "sim s",
            "deterministic",
        ],
    );
    for row in startnode_measurements(cfg) {
        t.row(vec![
            row.class.clone(),
            row.backend.to_string(),
            row.strategy.to_string(),
            fmt_count(row.n as u64),
            fmt_count(row.nnz as u64),
            row.sweeps.to_string(),
            row.levels.to_string(),
            row.eccentricity.to_string(),
            fmt_count(row.width as u64),
            fmt_count(row.bandwidth as u64),
            format!("{:.3}", row.wall_secs * 1e3),
            format!("{:.4}", row.sim_secs),
            row.deterministic.to_string(),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// Kernel microbenchmarks — push vs pull vs old pull, counting vs bucket sort
// ---------------------------------------------------------------------------

/// One suite-class row of the `repro kernels` experiment, in raw numbers
/// (the table formats and ratios them).
pub struct KernelRow {
    /// Suite class name.
    pub matrix: String,
    /// Frontier size at the captured (peak) BFS level.
    pub frontier: usize,
    /// Matrix nonzeros one pull scan traverses from the captured state
    /// (identical for the bitmap and the closure kernels).
    pub pull_work: usize,
    /// ns per traversed edge, push SpMSpV (the SPA kernel).
    pub push_ns_edge: f64,
    /// ns per traversed edge, bitmap-masked pull into the warm buffer.
    pub pull_ns_edge: f64,
    /// ns per traversed edge, closure-masked pre-bitmap pull (fresh output
    /// allocation per call).
    pub old_pull_ns_edge: f64,
    /// ns per element, two-pass counting SORTPERM.
    pub counting_ns_elem: f64,
    /// ns per element, per-parent bucket-`Vec` SORTPERM.
    pub bucket_ns_elem: f64,
    /// Growth events of the warm pull output buffer during the timed
    /// steady state (must be 0 — the first, warming call is excluded).
    pub pull_growth_events: usize,
    /// All kernels agreed bit for bit: bitmap pull == closure pull ==
    /// push + SELECT (same traversed-edge count), counting == bucket sort.
    pub identical: bool,
}

/// A realistic mid-traversal snapshot: the BFS level maximizing
/// `frontier × unvisited` — where direction-optimizing runs switch to pull
/// (a fat frontier *and* live candidates; the plain frontier peak can be
/// the final level of a small-diameter graph, whose candidate set is
/// empty) — with the frontier carrying consecutive labels (the previous
/// SORTPERM's output shape) and the visited state mirrored in both a dense
/// label array and an unvisited bitmap.
struct MidBfs {
    frontier: SparseVec<Label>,
    batch: (Label, Label),
    order: Vec<Label>,
    unvisited: VertexBitmap,
}

fn mid_bfs_state(a: &CscMatrix, degrees: &[Vidx]) -> MidBfs {
    let n = a.n_rows();
    let mut order = vec![UNVISITED; n];
    let mut unvisited = VertexBitmap::new(0);
    unvisited.reset_ones(n);
    let mut spa = SpmspvWorkspace::new(n);
    let mut scratch = SortpermScratch::new();
    order[0] = 0;
    unvisited.remove(0);
    let mut frontier = SparseVec::singleton(n, 0, 0);
    let mut batch = (0 as Label, 1 as Label);
    let mut best: Option<(usize, MidBfs)> = None;
    loop {
        let merit = frontier.nnz() * unvisited.count();
        if best.as_ref().is_none_or(|&(m, _)| merit > m) {
            best = Some((
                merit,
                MidBfs {
                    frontier: frontier.clone(),
                    batch,
                    order: order.clone(),
                    unvisited: unvisited.clone(),
                },
            ));
        }
        let (y, _) = spmspv::<Label, Select2ndMin>(a, &frontier, &mut spa);
        let selected = y.select(&order, |l| l == UNVISITED);
        if selected.is_empty() {
            break;
        }
        // Consecutive labels in (parent, degree, vertex) order, exactly
        // like the Cuthill-McKee level loop.
        let sorted = counting_sortperm(selected.entries(), batch, degrees, &mut scratch);
        let labeled: Vec<(Vidx, Label)> = sorted
            .iter()
            .enumerate()
            .map(|(k, &(_, v))| (v, batch.1 + k as Label))
            .collect();
        batch = (batch.1, batch.1 + labeled.len() as Label);
        for &(v, l) in &labeled {
            order[v as usize] = l;
            unvisited.remove(v);
        }
        frontier = SparseVec::from_entries(n, labeled);
    }
    best.expect("BFS captures at least the seed level").1
}

/// Best-of-`reps` wall time of `inner` back-to-back calls of `f`.
fn best_secs(reps: usize, inner: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        for _ in 0..inner {
            f();
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Microbenchmark the per-edge expansion kernels (push SpMSpV, the bitmap
/// pull, the pre-bitmap closure pull) and the per-element SORTPERM kernels
/// (two-pass counting sort, per-parent bucket `Vec`s) on each suite class,
/// from the captured direction-switch BFS state (max frontier × live
/// candidates).
///
/// The measured ns/edge figures are the ground truth behind
/// `MachineModel::elem_cost` vs `edge_cost`: the simulator prices a pull
/// scan at the streaming element rate and a push expansion at the irregular
/// edge rate, so `elem_cost` should track this experiment's pull ns/edge
/// (and `edge_cost` its push ns/edge) when recalibrating the model on new
/// hardware — see `repro sensitivity` for how much the predictions move.
pub fn kernel_measurements(cfg: &ExpConfig) -> Vec<KernelRow> {
    let reps = if cfg.quick { 5 } else { 9 };
    let mut rows = Vec::new();
    for m in cfg.matrices() {
        let a = cfg.generate(&m);
        let n = a.n_rows();
        let degrees = a.degrees();
        let st = mid_bfs_state(&a, &degrees);
        let mut spa = SpmspvWorkspace::new(n);
        let mut dense = DenseFrontier::new(n);
        dense.load(&st.frontier);
        let mut pull_buf = PullBuffer::new();

        // One canonical evaluation per kernel for the bit-equality column
        // (also warms every workspace before the timed passes).
        let (push_out, push_work) = spmspv::<Label, Select2ndMin>(&a, &st.frontier, &mut spa);
        let push_selected = push_out.select(&st.order, |l| l == UNVISITED);
        let pull_work =
            spmspv_pull::<Label, Select2ndMin>(&a, &dense, &st.unvisited, &mut pull_buf);
        let (old_out, old_work) = spmspv_pull_ref::<Label, Select2ndMin>(&a, &dense, |r| {
            st.order[r as usize] == UNVISITED
        });
        let mut identical = pull_buf.to_sparse(n) == old_out
            && pull_buf.to_sparse(n) == push_selected
            && pull_work == old_work;

        // SORTPERM input: the expansion's (vertex, parent-label) entries.
        let entries = push_selected.entries().to_vec();
        let mut scratch = SortpermScratch::new();
        let counting_out = counting_sortperm(&entries, st.batch, &degrees, &mut scratch).to_vec();
        identical &= counting_out == bucket_sortperm_ref(&entries, st.batch, &degrees);

        // Timed passes: enough inner iterations to outgrow timer noise,
        // best-of-reps to discard ambient load.
        let warm_events = pull_buf.growth_events();
        let edge_inner = (200_000 / pull_work.max(1)).clamp(1, 256);
        let elem_inner = (200_000 / entries.len().max(1)).clamp(1, 1024);
        let push_secs = best_secs(reps, edge_inner, || {
            spmspv::<Label, Select2ndMin>(&a, &st.frontier, &mut spa);
        });
        let pull_secs = best_secs(reps, edge_inner, || {
            spmspv_pull::<Label, Select2ndMin>(&a, &dense, &st.unvisited, &mut pull_buf);
        });
        let old_pull_secs = best_secs(reps, edge_inner, || {
            spmspv_pull_ref::<Label, Select2ndMin>(&a, &dense, |r| {
                st.order[r as usize] == UNVISITED
            });
        });
        let counting_secs = best_secs(reps, elem_inner, || {
            counting_sortperm(&entries, st.batch, &degrees, &mut scratch);
        });
        let bucket_secs = best_secs(reps, elem_inner, || {
            bucket_sortperm_ref(&entries, st.batch, &degrees);
        });
        let per = |secs: f64, inner: usize, units: usize| {
            secs * 1e9 / (inner as f64 * units.max(1) as f64)
        };
        rows.push(KernelRow {
            matrix: m.name.to_string(),
            frontier: st.frontier.nnz(),
            pull_work,
            push_ns_edge: per(push_secs, edge_inner, push_work),
            pull_ns_edge: per(pull_secs, edge_inner, pull_work),
            old_pull_ns_edge: per(old_pull_secs, edge_inner, pull_work),
            counting_ns_elem: per(counting_secs, elem_inner, entries.len()),
            bucket_ns_elem: per(bucket_secs, elem_inner, entries.len()),
            pull_growth_events: pull_buf.growth_events() - warm_events,
            identical,
        });
    }
    rows
}

/// The `repro kernels` table: ns/edge for the three expansion kernels and
/// ns/element for the two SORTPERM kernels, per suite class. The bench
/// tests assert bitmap pull ≤ closure pull on every class, zero
/// steady-state growth of the warm pull buffer, and bit-identical outputs.
pub fn kernels_table(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "Kernel microbenchmarks — expansion ns/edge, SORTPERM ns/element",
        &[
            "matrix",
            "frontier",
            "edges",
            "push ns/e",
            "pull ns/e",
            "old pull ns/e",
            "pull/old",
            "count ns/el",
            "bucket ns/el",
            "growth",
            "identical",
        ],
    );
    for row in kernel_measurements(cfg) {
        t.row(vec![
            row.matrix.clone(),
            row.frontier.to_string(),
            row.pull_work.to_string(),
            format!("{:.2}", row.push_ns_edge),
            format!("{:.2}", row.pull_ns_edge),
            format!("{:.2}", row.old_pull_ns_edge),
            format!("{:.2}x", row.pull_ns_edge / row.old_pull_ns_edge.max(1e-12)),
            format!("{:.2}", row.counting_ns_elem),
            format!("{:.2}", row.bucket_ns_elem),
            row.pull_growth_events.to_string(),
            row.identical.to_string(),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// Ordering-quality comparison across heuristics (RCM vs CM vs Sloan vs …)
// ---------------------------------------------------------------------------

/// Compare the ordering heuristics the paper discusses (§I–II): RCM,
/// unreversed CM, Sloan, and the no-sort/global-sort ablations — bandwidth,
/// profile, wavefront and sequential runtime.
pub fn quality_comparison(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "Ordering quality across heuristics",
        &[
            "matrix",
            "method",
            "bandwidth",
            "profile",
            "max-wavefront",
            "rms-wavefront",
            "runtime",
        ],
    );
    for m in cfg.matrices() {
        let a = cfg.generate(&m);
        type Method = (&'static str, fn(&CscMatrix) -> rcm_sparse::Permutation);
        let natural: Method = ("natural", |a| rcm_sparse::Permutation::identity(a.n_rows()));
        let methods: Vec<Method> = vec![
            natural,
            ("rcm", |a| rcm(a)),
            ("cm", |a| rcm_core::cuthill_mckee(a).0),
            ("sloan", |a| sloan(a)),
            ("rcm-nosort", |a| rcm_nosort(a)),
            ("rcm-globalsort", |a| rcm_globalsort(a)),
            ("rcm-compressed", |a| rcm_compressed(a).0),
        ];
        for (label, f) in methods {
            let t0 = Instant::now();
            let p = f(&a);
            let dt = t0.elapsed().as_secs_f64();
            let (maxw, rmsw) = ordering_wavefront(&a, &p);
            t.row(vec![
                m.name.to_string(),
                label.to_string(),
                fmt_count(ordering_bandwidth(&a, &p) as u64),
                fmt_count(ordering_profile(&a, &p)),
                fmt_count(maxw as u64),
                format!("{rmsw:.1}"),
                fmt_secs(dt),
            ]);
        }
    }
    t
}

// ---------------------------------------------------------------------------
// Supervariable compression (SPARSPAK/SpMP-style optimization)
// ---------------------------------------------------------------------------

/// Supervariable compression ablation: how much each suite class compresses
/// and what it does to sequential RCM runtime and quality. The multi-dof FEM
/// matrices (ldoor 2 dofs, audikw_1/dielFilter/Flan 3 dofs) are the
/// interesting rows.
pub fn compression_table(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "Supervariable compression — ratio, runtime and quality",
        &[
            "matrix",
            "vertices",
            "supervars",
            "ratio",
            "t(plain)",
            "t(compressed)",
            "speedup",
            "bw(plain)",
            "bw(compressed)",
        ],
    );
    for m in cfg.matrices() {
        let a = cfg.generate(&m);
        let t0 = Instant::now();
        let plain = rcm(&a);
        let t_plain = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let (compressed, stats) = rcm_compressed(&a);
        let t_comp = t1.elapsed().as_secs_f64();
        t.row(vec![
            m.name.to_string(),
            fmt_count(stats.vertices as u64),
            fmt_count(stats.supervariables as u64),
            format!("{:.2}", stats.ratio),
            fmt_secs(t_plain),
            fmt_secs(t_comp),
            format!("{:.2}x", t_plain / t_comp),
            fmt_count(ordering_bandwidth(&a, &plain) as u64),
            fmt_count(ordering_bandwidth(&a, &compressed) as u64),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// Gather-to-root comparison (§V-C)
// ---------------------------------------------------------------------------

/// §V-C: "it takes over 9 seconds to gather the nlpkkt240 matrix from being
/// distributed over 1024 cores into a single node/core … approximately 3×
/// longer than computing RCM using our algorithm on the same number of
/// cores." Model the gather (a Gatherv of the whole structure to rank 0)
/// plus a single-node multithreaded RCM, against the distributed algorithm.
pub fn gather_vs_distributed(cfg: &ExpConfig) -> Table {
    let machine = MachineModel::edison();
    let mut t = Table::new(
        "Gather-to-root + shared-memory RCM vs distributed RCM (modeled)",
        &[
            "matrix",
            "cores",
            "gather",
            "node RCM",
            "gather+RCM",
            "dist RCM",
            "dist/gather",
        ],
    );
    let cores_list = if cfg.quick {
        vec![216]
    } else {
        vec![216, 1014]
    };
    for m in cfg.matrices() {
        let a = cfg.generate(&m);
        // Gather: every rank ships its share of the structure to rank 0;
        // the root's receive volume dominates: nnz·(4B index) + column
        // pointers, through a tree of depth log2(p) stages (pipelined, so
        // the β term is charged once on the full volume at the root).
        let bytes = (a.nnz() * 4 + a.n_rows() * 8) as f64;
        // Single-node RCM after the gather: one node = 24 Edison cores; the
        // level-synchronous algorithm sweeps ~5 passes over the edges.
        let node_speedup = machine.thread_speedup(24);
        let node_rcm = 5.0 * a.nnz() as f64 * machine.edge_cost / node_speedup;
        for &cores in &cores_list {
            let procs = (cores / 6).max(1);
            let gather = machine.alpha * (procs as f64).log2().ceil() + machine.beta * bytes;
            let mut dcfg = DistRcmConfig::hybrid_on_edison(cores);
            dcfg.balance_seed = Some(0xBA1A);
            let dist = dist_rcm(&a, &dcfg);
            t.row(vec![
                m.name.to_string(),
                cores.to_string(),
                fmt_secs(gather),
                fmt_secs(node_rcm),
                fmt_secs(gather + node_rcm),
                fmt_secs(dist.sim_seconds),
                format!("{:.2}x", dist.sim_seconds / (gather + node_rcm)),
            ]);
        }
    }
    t
}

// ---------------------------------------------------------------------------
// Machine-model sensitivity (design-choice ablation)
// ---------------------------------------------------------------------------

/// Sweep the latency constant α to show where the level-synchronous
/// algorithm's scaling knee moves — the design-choice ablation DESIGN.md
/// calls out (the paper's §VI blames α-bound SORTPERM/SpMSpV latency for the
/// high-concurrency falloff).
pub fn machine_sensitivity(cfg: &ExpConfig) -> Table {
    let m = suite_matrix("ldoor").expect("ldoor registered");
    let a = cfg.generate(&m);
    let mut t = Table::new(
        "Machine sensitivity — total simulated time vs latency α (ldoor)",
        &["alpha", "t@24c", "t@216c", "t@1014c", "best cores"],
    );
    for alpha_scale in [0.1, 1.0, 10.0] {
        let mut machine = MachineModel::edison();
        machine.alpha *= alpha_scale;
        let mut row = vec![format!("{:.1}us", machine.alpha * 1e6)];
        let mut best = (usize::MAX, f64::INFINITY);
        for cores in [24usize, 216, 1014] {
            let mut c = DistRcmConfig::hybrid_on_edison(cores);
            c.machine = machine;
            let r = dist_rcm(&a, &c);
            if r.sim_seconds < best.1 {
                best = (cores, r.sim_seconds);
            }
            row.push(fmt_secs(r.sim_seconds));
        }
        row.push(best.0.to_string());
        t.row(row);
    }
    t
}

// ---------------------------------------------------------------------------
// Fig. 4-style strong-scaling summary (speedups, §V-D headline numbers)
// ---------------------------------------------------------------------------

/// Headline strong-scaling summary: best speedup per matrix over the sweep
/// (the paper quotes 38× for Li7Nmax6 and 27× for nd24k at 1024 cores).
pub fn scaling_summary(panels: &[SweepPanel]) -> Table {
    let mut t = Table::new(
        "Strong scaling summary (speedup over 1 core)",
        &["matrix", "t(1 core)", "best cores", "t(best)", "speedup"],
    );
    for p in panels {
        let t1 = p
            .points
            .iter()
            .find(|(c, _, _)| *c == 1)
            .map(|(_, _, t)| *t)
            .unwrap_or(f64::NAN);
        if let Some((bc, _, bt)) = p
            .points
            .iter()
            .min_by(|a, b| a.2.partial_cmp(&b.2).unwrap())
        {
            t.row(vec![
                p.name.clone(),
                fmt_secs(t1),
                bc.to_string(),
                fmt_secs(*bt),
                format!("{:.1}x", t1 / bt),
            ]);
        }
    }
    t
}

// ---------------------------------------------------------------------------
// Backend sweep — one generic driver, four RcmRuntime backends
// ---------------------------------------------------------------------------

/// Run the identical generic driver on all four backends per suite matrix:
/// serial and pooled report measured wall time, dist (flat MPI) and hybrid
/// (MPI×OpenMP) report simulated time. The `identical` column asserts the
/// bit-for-bit permutation equality the `RcmRuntime` refactor guarantees.
pub fn backend_sweep(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "Backend sweep — one algebraic driver, four runtimes",
        &[
            "matrix",
            "backend",
            "config",
            "time",
            "clock",
            "BW",
            "identical",
        ],
    );
    for m in cfg.matrices() {
        let a = cfg.generate(&m);
        let reference = rcm_with_backend(&a, BackendKind::Serial);
        // Measured backends.
        for (kind, config) in [
            (BackendKind::Serial, "1 thread".to_string()),
            (BackendKind::Pooled { threads: 4 }, "4 threads".to_string()),
        ] {
            let t0 = Instant::now();
            let p = rcm_with_backend(&a, kind);
            let dt = t0.elapsed().as_secs_f64();
            t.row(vec![
                m.name.to_string(),
                kind.name().to_string(),
                config,
                fmt_secs(dt),
                "measured".into(),
                fmt_count(ordering_bandwidth(&a, &p) as u64),
                (p == reference).to_string(),
            ]);
        }
        // Simulated backends (same core budget, flat vs 6 threads/process).
        for (name, dcfg, config) in [
            ("dist", DistRcmConfig::flat_on_edison(16), "16 ranks × 1t"),
            (
                "hybrid",
                DistRcmConfig::hybrid_on_edison(24),
                "4 ranks × 6t",
            ),
        ] {
            let r = dist_rcm(&a, &dcfg);
            t.row(vec![
                m.name.to_string(),
                name.to_string(),
                config.to_string(),
                fmt_secs(r.sim_seconds),
                "simulated".into(),
                fmt_count(ordering_bandwidth(&a, &r.perm) as u64),
                (r.perm == reference).to_string(),
            ]);
        }
    }
    t
}

// ---------------------------------------------------------------------------
// Load-balance ablation (§IV-A)
// ---------------------------------------------------------------------------

/// Per-rank nnz imbalance (max/mean over the `p′` blocks of the 2D
/// decomposition) of a distributed matrix.
fn nnz_imbalance(d: &DistCscMatrix) -> f64 {
    let pr = d.grid().pr;
    let mut max = 0usize;
    let mut total = 0usize;
    for ir in 0..pr {
        for jc in 0..pr {
            let nnz = d.block(ir, jc).nnz();
            max = max.max(nnz);
            total += nnz;
        }
    }
    if total == 0 {
        1.0
    } else {
        max as f64 / (total as f64 / (pr * pr) as f64)
    }
}

/// §IV-A ablation: sweep the random load-balance relabeling's seed over the
/// suite and quantify what it buys — per-rank nnz max/mean imbalance before
/// and after, the simulated-time delta, and the (bounded) ordering-quality
/// drift the internal relabeling causes.
pub fn balance_ablation(cfg: &ExpConfig) -> Table {
    let cores = if cfg.quick { 96 } else { 216 }; // 16 / 36 ranks at 6 t/p
    let seeds: Vec<u64> = if cfg.quick {
        vec![0xBA1A]
    } else {
        vec![1, 42, 0xBA1A]
    };
    let mut t = Table::new(
        format!("Load-balance ablation (§IV-A) — {cores} cores"),
        &[
            "matrix",
            "seed",
            "imb(before)",
            "imb(after)",
            "t(before)",
            "t(after)",
            "delta",
            "BW drift",
        ],
    );
    for m in cfg.matrices() {
        let a = cfg.generate(&m);
        let base_cfg = DistRcmConfig::hybrid_on_edison(cores);
        let grid = base_cfg
            .hybrid
            .grid()
            .expect("paper core counts are square");
        let imb_before = nnz_imbalance(&DistCscMatrix::from_global(grid, &a, None));
        let plain = dist_rcm(&a, &base_cfg);
        let bw_plain = ordering_bandwidth(&a, &plain.perm);
        for &seed in &seeds {
            let imb_after = nnz_imbalance(&DistCscMatrix::from_global(grid, &a, Some(seed)));
            let mut c = base_cfg;
            c.balance_seed = Some(seed);
            let balanced = dist_rcm(&a, &c);
            let bw_balanced = ordering_bandwidth(&a, &balanced.perm);
            let delta = (balanced.sim_seconds - plain.sim_seconds) / plain.sim_seconds;
            t.row(vec![
                m.name.to_string(),
                format!("{seed:#x}"),
                format!("{imb_before:.2}"),
                format!("{imb_after:.2}"),
                fmt_secs(plain.sim_seconds),
                fmt_secs(balanced.sim_seconds),
                format!("{:+.1}%", delta * 100.0),
                format!("{bw_plain} -> {bw_balanced}"),
            ]);
        }
    }
    t
}

// ---------------------------------------------------------------------------
// Real Matrix Market inputs (`repro --mtx`, first ROADMAP open item)
// ---------------------------------------------------------------------------

/// A Matrix Market input preloaded for the bench harness (`repro --mtx`).
/// Loading once at CLI-parse time both validates the file up front and
/// spares real SuiteSparse downloads (hundreds of MB of coordinate text) a
/// second parse when the table runs.
#[derive(Clone, Debug)]
pub struct MtxInput {
    /// Display name (the file stem).
    pub name: String,
    /// The symmetrized pattern.
    pub matrix: CscMatrix,
}

/// Load a Matrix Market file for the bench harness: pattern read,
/// symmetrized via [`CooBuilder`] when the stored structure is one-sided.
/// The error string always names the offending file.
pub fn load_mtx(path: &Path) -> Result<MtxInput, String> {
    let a = mm::read_pattern_file(path)
        .map_err(|e| format!("cannot load Matrix Market file {}: {e}", path.display()))?;
    let matrix = if a.is_symmetric() {
        a
    } else {
        let mut b = CooBuilder::new(a.n_rows(), a.n_cols());
        for (r, c) in a.iter_entries() {
            b.push_sym(r, c);
        }
        b.build()
    };
    Ok(MtxInput {
        name: path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.display().to_string()),
        matrix,
    })
}

/// The Fig. 3-style bandwidth/ordering table for user-supplied `.mtx`
/// inputs (real SuiteSparse downloads), reported with the same columns the
/// synthetic suite gets: structure statistics, RCM quality, and the
/// simulated distributed runtime.
pub fn mtx_table(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "Matrix Market inputs — bandwidth/ordering next to the synthetic suite",
        &[
            "matrix", "rows", "nnz", "bw-pre", "bw-post", "pdiam", "t(rcm)", "dist 24c",
        ],
    );
    for input in &cfg.mtx {
        let a = &input.matrix;
        let name = input.name.clone();
        let t0 = Instant::now();
        let perm = rcm(a);
        let dt = t0.elapsed().as_secs_f64();
        let degrees = a.degrees();
        let seed = (0..a.n_rows())
            .min_by_key(|&v| (degrees[v], v))
            .unwrap_or(0) as u32;
        let pdiam = if a.n_rows() > 0 {
            pseudo_peripheral(a, seed).eccentricity
        } else {
            0
        };
        let sim = dist_rcm(a, &DistRcmConfig::hybrid_on_edison(24));
        t.row(vec![
            name,
            fmt_count(a.n_rows() as u64),
            fmt_count(a.nnz() as u64),
            fmt_count(matrix_bandwidth(a) as u64),
            fmt_count(ordering_bandwidth(a, &perm) as u64),
            pdiam.to_string(),
            fmt_secs(dt),
            fmt_secs(sim.sim_seconds),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> ExpConfig {
        ExpConfig {
            scale_mult: 0.1,
            results_dir: std::env::temp_dir().join("rcm-bench-test"),
            quick: true,
            mtx: Vec::new(),
        }
    }

    #[test]
    fn fig3_produces_one_row_per_matrix() {
        let t = fig3_suite_table(&quick_cfg());
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn hybrid_sweep_and_derived_tables() {
        let cfg = quick_cfg();
        let panels = run_hybrid_sweep(&cfg);
        assert_eq!(panels.len(), 3);
        for p in &panels {
            assert_eq!(p.points.len(), cfg.hybrid_cores().len());
            for (_, b, total) in &p.points {
                assert!((b.total() - total).abs() < 1e-9);
            }
        }
        let f4 = fig4_breakdown(&panels);
        assert_eq!(f4.len(), 3);
        let f5 = fig5_spmspv_split(&panels);
        assert_eq!(f5.len(), 3);
        let summary = scaling_summary(&panels);
        assert_eq!(summary.len(), 3);
    }

    /// The `repro startnode` acceptance gate: on every quick-suite class
    /// and every backend, the bi-criteria finder runs no more sweeps than
    /// George–Liu (by construction: identical sweep trajectory, weaker
    /// continuation test) with post-RCM bandwidth within 10%, min-degree
    /// runs zero sweeps, every strategy is deterministic across backends,
    /// and the default George–Liu orderings stay bit-identical to the
    /// classical serial reference (the pre-strategy output).
    #[test]
    fn startnode_bicriteria_saves_sweeps_without_losing_bandwidth() {
        let cfg = quick_cfg();
        let rows = startnode_measurements(&cfg);
        assert_eq!(rows.len(), 3 * 3 * 4); // classes × strategies × backends
        for row in &rows {
            assert!(
                row.deterministic,
                "{} {} {}",
                row.class, row.backend, row.strategy
            );
            if row.strategy == "min-degree" {
                assert_eq!(row.sweeps, 0, "{} {}", row.class, row.backend);
            }
        }
        for class in ["nd24k", "ldoor", "Li7Nmax6"] {
            for backend in ["serial", "pooled", "dist", "hybrid"] {
                let find = |strategy: &str| {
                    rows.iter()
                        .find(|r| {
                            r.class == class && r.backend == backend && r.strategy == strategy
                        })
                        .unwrap_or_else(|| panic!("missing {class} {backend} {strategy} row"))
                };
                let gl = find("george-liu");
                let bc = find("bi-criteria");
                assert!(
                    bc.sweeps <= gl.sweeps,
                    "{class} {backend}: bi-criteria ran {} sweeps vs george-liu {}",
                    bc.sweeps,
                    gl.sweeps
                );
                assert!(
                    bc.bandwidth as f64 <= gl.bandwidth as f64 * 1.10,
                    "{class} {backend}: bi-criteria bandwidth {} vs george-liu {}",
                    bc.bandwidth,
                    gl.bandwidth
                );
            }
        }
        // Default-strategy bit-identity with the classical serial RCM on
        // all four backends.
        for m in cfg.matrices() {
            let a = cfg.generate(&m);
            let reference = rcm(&a);
            for kind in [
                BackendKind::Serial,
                BackendKind::Pooled { threads: 4 },
                BackendKind::Dist { cores: 16 },
                BackendKind::Hybrid {
                    cores: 24,
                    threads_per_proc: 6,
                },
            ] {
                let mut engine = rcm_core::OrderingEngine::new(
                    rcm_core::EngineConfig::builder()
                        .backend(kind)
                        .start_node(StartNode::GeorgeLiu)
                        .build(),
                );
                assert_eq!(
                    engine.order(&a).perm,
                    reference,
                    "{}: default george-liu diverged from classical RCM on {}",
                    m.name,
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn fig1_runs_quick() {
        let t = fig1_cg_solve(&quick_cfg());
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn shared_scaling_runs_quick() {
        let t = shared_scaling(&quick_cfg());
        assert_eq!(t.len(), 1, "quick mode sweeps one matrix");
    }

    #[test]
    fn fig6_runs_quick() {
        let t = fig6_flat_vs_hybrid(&quick_cfg());
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn backend_sweep_reports_all_four_backends_identical() {
        let t = backend_sweep(&quick_cfg());
        assert_eq!(t.len(), 3 * 4, "3 quick matrices x 4 backends");
        // Column 6 is the bit-for-bit equality flag; every row must hold.
        for row in t.rows() {
            assert_eq!(row[6], "true", "{} backend diverged on {}", row[1], row[0]);
        }
    }

    #[test]
    fn balance_ablation_runs_quick() {
        let t = balance_ablation(&quick_cfg());
        assert_eq!(t.len(), 3, "3 quick matrices x 1 seed");
    }

    #[test]
    fn direction_ablation_reports_all_backends_identical() {
        let t = direction_ablation(&quick_cfg());
        assert_eq!(t.len(), 3 * 4, "3 quick matrices x 4 backends");
        // Column 7 is the push == pull == adaptive equality flag.
        for row in t.rows() {
            assert_eq!(
                row[7], "true",
                "{} backend diverged across directions on {}",
                row[1], row[0]
            );
        }
    }

    #[test]
    fn adaptive_direction_is_never_slower_than_push_in_simulation() {
        // Calibration gate, not a structural invariant: the adaptive switch
        // is a pure count heuristic (PULL_ALPHA/PULL_BETA) and never
        // consults the cost model, so this deterministically asserts that
        // the *current* constants engage pull only where the current
        // MachineModel prices it cheaper across the quick suite. If it
        // fails after retuning the model, the thresholds, or the suite
        // scales, recalibrate PULL_ALPHA/PULL_BETA (see the ROADMAP item)
        // rather than suspecting a kernel bug.
        let cfg = quick_cfg();
        let mut strictly_faster = false;
        for name in ["nd24k", "ldoor", "Li7Nmax6"] {
            let m = suite_matrix(name).unwrap();
            let a = cfg.generate(&m);
            for base in [
                DistRcmConfig::flat_on_edison(16),
                DistRcmConfig::hybrid_on_edison(24),
            ] {
                let time = |d: ExpandDirection| {
                    let mut dcfg = base;
                    dcfg.direction = d;
                    dist_rcm(&a, &dcfg).sim_seconds
                };
                let push = time(ExpandDirection::Push);
                let adaptive = time(ExpandDirection::Adaptive);
                assert!(
                    adaptive <= push * (1.0 + 1e-9),
                    "{name}: adaptive {adaptive:.6}s slower than push {push:.6}s"
                );
                strictly_faster |= adaptive < push * 0.999;
            }
        }
        assert!(
            strictly_faster,
            "adaptive should beat push on at least one dense-frontier graph"
        );
    }

    #[test]
    fn warm_engine_throughput_beats_cold_per_call() {
        // The acceptance gate of the engine layer: on every suite class,
        // the warm engine's throughput (plain and batch) must be at least
        // the cold per-call baseline on the pooled backend — cold pays the
        // worker spawn and workspace construction per ordering, warm pays
        // neither — and every permutation must stay bit-identical to
        // `rcm_with_backend` (checked across all four backends inside the
        // measurement).
        // Wall-clock relation, so measure over independent attempts: the
        // structural margin (a 4-thread spawn per cold ordering) is ~10%,
        // but sibling test binaries of a parallel `cargo test` run can
        // steal the cores for one attempt. Bit-equality is deterministic
        // and asserted on every attempt unconditionally.
        const ATTEMPTS: usize = 4;
        let mut last_failure = String::new();
        for attempt in 0..ATTEMPTS {
            let rows = throughput_measurements(&quick_cfg());
            assert_eq!(rows.len(), 3 * 2, "3 quick classes x {{serial, pooled}}");
            last_failure.clear();
            for row in &rows {
                assert!(
                    row.identical,
                    "{} ({}): engine permutations diverged from rcm_with_backend",
                    row.matrix, row.backend
                );
                if row.backend == "pooled" {
                    if row.warm_ops < row.cold_ops {
                        last_failure = format!(
                            "{}: warm engine slower than cold per-call ({:.1} < {:.1} o/s)",
                            row.matrix, row.warm_ops, row.cold_ops
                        );
                    }
                    if row.batch_ops < row.cold_ops {
                        last_failure = format!(
                            "{}: batch mode slower than cold per-call ({:.1} < {:.1} o/s)",
                            row.matrix, row.batch_ops, row.cold_ops
                        );
                    }
                }
            }
            if last_failure.is_empty() {
                return;
            }
            eprintln!("throughput attempt {attempt} under load: {last_failure}");
        }
        panic!("all {ATTEMPTS} throughput attempts failed; last: {last_failure}");
    }

    #[test]
    fn cached_service_throughput_beats_warm_shards_on_every_class() {
        // The acceptance gate of the service tier: on every suite class,
        // the pattern-cached service must deliver strictly more
        // orderings/second than the same service with the cache disabled —
        // a hit is an O(nnz) fingerprint + pattern compare where a miss is
        // a full BFS — and every cached permutation must stay bit-identical
        // to the fresh single-shot ordering.
        // Throughput is a wall-clock relation, so measure over independent
        // attempts (the structural margin is large — a repeated-pattern
        // stream hits on every job after prewarm — but sibling test
        // binaries can steal the cores). Bit-equality and the hit rate are
        // deterministic and asserted on every attempt unconditionally.
        const ATTEMPTS: usize = 4;
        let mut last_failure = String::new();
        for attempt in 0..ATTEMPTS {
            let rows = service_measurements(&quick_cfg());
            assert_eq!(rows.len(), 3, "one row per quick suite class");
            last_failure.clear();
            for row in &rows {
                assert!(
                    row.identical,
                    "{}: cached service permutations diverged from fresh orderings",
                    row.matrix
                );
                assert!(
                    row.hit_rate > 0.9,
                    "{}: prewarmed cache should hit on ~every job, got {:.2}",
                    row.matrix,
                    row.hit_rate
                );
                assert!(row.p50_ms <= row.p95_ms, "{}: percentile order", row.matrix);
                if row.cached_ops <= row.warm_ops {
                    last_failure = format!(
                        "{}: cached service not faster than warm shards ({:.1} <= {:.1} o/s)",
                        row.matrix, row.cached_ops, row.warm_ops
                    );
                }
            }
            if last_failure.is_empty() {
                return;
            }
            eprintln!("service attempt {attempt} under load: {last_failure}");
        }
        panic!("all {ATTEMPTS} service attempts failed; last: {last_failure}");
    }

    #[test]
    fn split_ordering_beats_the_sequential_driver_on_pooled_rows() {
        // The acceptance gate of the component-parallel path: on every
        // multi-component class, the splitting engine must order at least
        // as fast as the sequential driver on every pooled row — the
        // driver pays per-level worker sync inside every tiny component
        // where the split path schedules whole components one-per-worker —
        // and every split ordering must stay bit-identical to the
        // sequential driver on all four backends.
        // Wall-clock relation, so measure over independent attempts:
        // best-of-reps absorbs most ambient load, but sibling test
        // binaries of a parallel `cargo test` run can steal the cores for
        // one attempt. Bit-equality and component counts are deterministic
        // and asserted on every attempt unconditionally.
        const ATTEMPTS: usize = 4;
        let mut last_failure = String::new();
        for attempt in 0..ATTEMPTS {
            let rows = component_measurements(&quick_cfg());
            assert!(rows.len() >= 6, "serial + pooled rows per class");
            last_failure.clear();
            for row in &rows {
                assert!(
                    row.identical,
                    "{} {}@{}: split ordering diverged from the sequential driver",
                    row.class, row.backend, row.threads
                );
                assert!(
                    row.components > 1,
                    "{}: class must be multi-component",
                    row.class
                );
                if row.backend == "pooled" && row.split_secs > row.seq_secs {
                    last_failure = format!(
                        "{} pooled@{}: split {:.3} ms slower than sequential {:.3} ms",
                        row.class,
                        row.threads,
                        row.split_secs * 1e3,
                        row.seq_secs * 1e3
                    );
                }
            }
            if last_failure.is_empty() {
                return;
            }
            eprintln!("components attempt {attempt} under load: {last_failure}");
        }
        panic!("all {ATTEMPTS} components attempts failed; last: {last_failure}");
    }

    #[test]
    fn bitmap_pull_kernel_is_not_slower_than_closure_pull() {
        // The acceptance gate of the kernel rework: on every suite class,
        // the bitmap-masked pull (word skip, sentinel accumulator, warm
        // output buffer) must not be slower per traversed edge than the
        // closure-masked pre-bitmap kernel it replaced, the warm pull
        // buffer must not grow once warmed, and every kernel must agree
        // bit for bit.
        // ns/edge is a wall-clock relation, so measure over independent
        // attempts: best-of-reps absorbs most ambient load, but sibling
        // test binaries of a parallel `cargo test` run can steal the cores
        // for one attempt. Bit-equality and allocation-flatness are
        // deterministic and asserted on every attempt unconditionally.
        const ATTEMPTS: usize = 4;
        let mut last_failure = String::new();
        for attempt in 0..ATTEMPTS {
            let rows = kernel_measurements(&quick_cfg());
            assert_eq!(rows.len(), 3, "one row per quick suite class");
            last_failure.clear();
            for row in &rows {
                assert!(row.identical, "{}: kernel outputs diverged", row.matrix);
                assert_eq!(
                    row.pull_growth_events, 0,
                    "{}: warm pull buffer grew in steady state",
                    row.matrix
                );
                assert!(row.frontier > 0 && row.pull_work > 0, "{}", row.matrix);
                if row.pull_ns_edge > row.old_pull_ns_edge {
                    last_failure = format!(
                        "{}: bitmap pull {:.2} ns/edge slower than closure pull {:.2}",
                        row.matrix, row.pull_ns_edge, row.old_pull_ns_edge
                    );
                }
            }
            if last_failure.is_empty() {
                return;
            }
            eprintln!("kernels attempt {attempt} under load: {last_failure}");
        }
        panic!("all {ATTEMPTS} kernel attempts failed; last: {last_failure}");
    }

    #[test]
    fn mtx_table_reads_a_real_file() {
        let dir = std::env::temp_dir().join("rcm-bench-mtx-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("path5.mtx");
        std::fs::write(
            &path,
            "%%MatrixMarket matrix coordinate pattern symmetric\n5 5 4\n2 1\n3 2\n4 3\n5 4\n",
        )
        .unwrap();
        let mut cfg = quick_cfg();
        cfg.mtx = vec![load_mtx(&path).unwrap()];
        let t = mtx_table(&cfg);
        assert_eq!(t.len(), 1);
        let row = &t.rows()[0];
        assert_eq!(row[0], "path5");
        assert_eq!(row[4], "1", "RCM must make a path tridiagonal");
    }

    #[test]
    fn load_mtx_error_names_the_file() {
        let err = load_mtx(Path::new("/nonexistent/rcm-test.mtx")).unwrap_err();
        assert!(err.contains("/nonexistent/rcm-test.mtx"), "{err}");
    }
}
