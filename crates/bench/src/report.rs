//! Plain-text table rendering and CSV output for the experiment harness.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// A simple column-aligned table that can also serialize itself to CSV.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Borrow the data rows (cells as the strings that will be rendered).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// True when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (i, (c, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                let _ = write!(s, "{c:>w$}", w = w);
            }
            s
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Serialize as CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.header
                .iter()
                .map(|s| esc(s))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|s| esc(s)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Write the CSV under `dir/<name>.csv`, creating the directory.
    pub fn write_csv(&self, dir: impl AsRef<Path>, name: &str) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(&dir)?;
        let path = dir.as_ref().join(format!("{name}.csv"));
        std::fs::write(&path, self.to_csv())?;
        Ok(path)
    }

    /// Serialize as JSON: `{"title", "header", "rows": [{col: cell, …}]}`.
    /// Cells stay strings — the harness formats numbers for humans, and CI
    /// artifact consumers diff them as-is.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(out, "\"title\":{}", json_str(&self.title));
        out.push_str(",\"header\":[");
        for (i, h) in self.header.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_str(h));
        }
        out.push_str("],\"rows\":[");
        for (r, row) in self.rows.iter().enumerate() {
            if r > 0 {
                out.push(',');
            }
            out.push('{');
            for (i, (h, cell)) in self.header.iter().zip(row).enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}:{}", json_str(h), json_str(cell));
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Write the JSON under `dir/<name>.json`, creating the directory.
    pub fn write_json(&self, dir: impl AsRef<Path>, name: &str) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(&dir)?;
        let path = dir.as_ref().join(format!("{name}.json"));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// JSON string literal with the escapes the table cells can contain.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format seconds with sensible precision for runtime tables.
pub fn fmt_secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 1.0 {
        format!("{s:.2}")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

/// Format large counts with thousands separators.
pub fn fmt_count(mut v: u64) -> String {
    let mut groups = Vec::new();
    loop {
        groups.push(format!("{:03}", v % 1000));
        v /= 1000;
        if v == 0 {
            break;
        }
    }
    let mut s = groups.pop().unwrap();
    s = s.trim_start_matches('0').to_string();
    if s.is_empty() {
        s = "0".to_string();
    }
    for g in groups.iter().rev() {
        s.push(',');
        s.push_str(g);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("long-name"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["v,1".into(), "plain".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"v,1\""));
    }

    #[test]
    fn json_round_trips_structure() {
        let mut t = Table::new("q\"uote", &["a", "b"]);
        t.row(vec!["1".into(), "x\ny".into()]);
        t.row(vec!["2".into(), "z".into()]);
        let json = t.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"title\":\"q\\\"uote\""));
        assert!(json.contains("\"header\":[\"a\",\"b\"]"));
        assert!(json.contains("{\"a\":\"1\",\"b\":\"x\\ny\"}"));
        assert!(json.contains("{\"a\":\"2\",\"b\":\"z\"}"));
    }

    #[test]
    fn json_writes_to_disk() {
        let mut t = Table::new("disk", &["k"]);
        t.row(vec!["v".into()]);
        let dir = std::env::temp_dir().join("rcm-report-json-test");
        let path = t.write_json(&dir, "sample").unwrap();
        let body = std::fs::read_to_string(path).unwrap();
        assert_eq!(body, t.to_json());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_is_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn fmt_count_groups_thousands() {
        assert_eq!(fmt_count(0), "0");
        assert_eq!(fmt_count(999), "999");
        assert_eq!(fmt_count(1000), "1,000");
        assert_eq!(fmt_count(29_000_000), "29,000,000");
        assert_eq!(fmt_count(1_000_005), "1,000,005");
    }

    #[test]
    fn fmt_secs_ranges() {
        assert_eq!(fmt_secs(123.4), "123");
        assert_eq!(fmt_secs(1.5), "1.50");
        assert!(fmt_secs(0.0123).ends_with("ms"));
        assert!(fmt_secs(1e-5).ends_with("us"));
    }
}
