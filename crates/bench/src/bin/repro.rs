//! `repro` — regenerate the tables and figures of Azad et al. (IPDPS 2017).
//!
//! ```text
//! repro [--scale <mult>] [--quick] [--out <dir>] [--mtx <file.mtx>]... <experiment>...
//!
//! experiments:
//!   fig1       CG+block-Jacobi solve time, natural vs RCM ordering
//!   fig3       matrix-suite statistics table
//!   table2     shared-memory baseline vs distributed runtime
//!   scaling    shared-memory strong scaling at 1/2/4/8/16 threads
//!   fig4       distributed runtime breakdown (per matrix, per core count)
//!   fig5       SpMSpV computation vs communication split
//!   fig6       flat MPI vs hybrid breakdown on ldoor
//!   ablation   sorting-strategy ablation (§VI future work)
//!   direction  push/pull/adaptive frontier-expansion ablation
//!   backends   one generic driver on all four RcmRuntime backends
//!   balance    load-balance permutation ablation (§IV-A)
//!   throughput warm OrderingEngine vs cold per-call orderings/sec
//!   service    closed-loop OrderingService: cold vs warm shards vs pattern cache
//!   kernels    per-edge / per-element kernel microbenchmarks
//!   components component-parallel split+schedule+stitch vs the sequential driver
//!   startnode  start-node strategy ablation: george-liu vs bi-criteria vs min-degree
//!   all        everything above
//! ```
//!
//! `--mtx <file.mtx>` (repeatable) loads real Matrix Market inputs —
//! symmetrized on read — and emits their bandwidth/ordering table next to
//! the synthetic suite. A missing or malformed file aborts the run with
//! exit code 2 and a message naming it.
//!
//! Tables print to stdout and are written as CSV **and JSON** under the
//! output directory (default `results/`), plus a `repro_summary.json`
//! manifest — the artifact CI's bench-smoke job uploads per PR.

use rcm_bench::report::json_str;
use rcm_bench::{
    ablation_sort_modes, backend_sweep, balance_ablation, components_table, compression_table,
    direction_ablation, fig1_cg_solve, fig3_suite_table, fig4_breakdown, fig5_spmspv_split,
    fig6_flat_vs_hybrid, gather_vs_distributed, kernels_table, load_mtx, machine_sensitivity,
    mtx_table, quality_comparison, run_hybrid_sweep, scaling_summary, service_table,
    shared_scaling, startnode_table, table2_shared_memory, throughput_table, ExpConfig, Table,
};

fn usage() -> ! {
    eprintln!(
        "usage: repro [--scale <mult>] [--quick] [--out <dir>] [--mtx <file.mtx>]... \
         <fig1|fig3|table2|scaling|fig4|fig5|fig6|ablation|direction|backends|balance|quality\
         |gather|sensitivity|compress|throughput|service|kernels|components|startnode|all>..."
    );
    std::process::exit(2);
}

/// One manifest entry: table name and its row count.
struct Emitted {
    name: String,
    rows: usize,
}

/// Render, write CSV + JSON, and record the table in the manifest — only
/// if both files landed, so the manifest never references missing files.
/// Returns false on any write failure (the run then exits non-zero).
fn emit(cfg: &ExpConfig, manifest: &mut Vec<Emitted>, name: &str, table: &Table) -> bool {
    println!("{}", table.render());
    let csv_ok = match table.write_csv(&cfg.results_dir, name) {
        Ok(path) => {
            println!("[csv] {}", path.display());
            true
        }
        Err(e) => {
            eprintln!("[csv] failed to write {name}: {e}");
            false
        }
    };
    let json_ok = match table.write_json(&cfg.results_dir, name) {
        Ok(path) => {
            println!("[json] {}\n", path.display());
            true
        }
        Err(e) => {
            eprintln!("[json] failed to write {name}: {e}");
            false
        }
    };
    if csv_ok && json_ok {
        manifest.push(Emitted {
            name: name.to_string(),
            rows: table.len(),
        });
    }
    csv_ok && json_ok
}

/// Write `repro_summary.json`: run configuration plus every table emitted.
fn write_summary(cfg: &ExpConfig, manifest: &[Emitted]) -> std::io::Result<std::path::PathBuf> {
    let mut body = String::from("{");
    body.push_str(&format!(
        "\"scale_mult\":{},\"quick\":{},\"tables\":[",
        cfg.scale_mult, cfg.quick
    ));
    for (i, e) in manifest.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!(
            "{{\"name\":{},\"rows\":{},\"csv\":{},\"json\":{}}}",
            json_str(&e.name),
            e.rows,
            json_str(&format!("{}.csv", e.name)),
            json_str(&format!("{}.json", e.name)),
        ));
    }
    body.push_str("]}");
    std::fs::create_dir_all(&cfg.results_dir)?;
    let path = cfg.results_dir.join("repro_summary.json");
    std::fs::write(&path, body)?;
    Ok(path)
}

fn main() {
    let mut cfg = ExpConfig::default();
    let mut wanted: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args.next().unwrap_or_else(|| usage());
                cfg.scale_mult = v.parse().unwrap_or_else(|_| usage());
            }
            "--out" => {
                cfg.results_dir = args.next().unwrap_or_else(|| usage()).into();
            }
            "--mtx" => {
                let path: std::path::PathBuf = args.next().unwrap_or_else(|| usage()).into();
                // Load up front: a bad path must abort with a clear message
                // naming the file (exit 2), not surface mid-run or panic —
                // and big SuiteSparse files get parsed exactly once.
                match load_mtx(&path) {
                    Ok(input) => cfg.mtx.push(input),
                    Err(e) => {
                        eprintln!("{e}");
                        std::process::exit(2);
                    }
                }
            }
            "--quick" => cfg.quick = true,
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() && cfg.mtx.is_empty() {
        usage();
    }
    // Reject typos up front: a silently-ignored name would let the CI
    // bench-smoke gate pass while measuring nothing.
    const KNOWN: [&str; 21] = [
        "fig1",
        "fig3",
        "table2",
        "scaling",
        "fig4",
        "fig5",
        "fig6",
        "ablation",
        "direction",
        "backends",
        "balance",
        "quality",
        "gather",
        "sensitivity",
        "compress",
        "throughput",
        "service",
        "kernels",
        "components",
        "startnode",
        "all",
    ];
    for w in &wanted {
        if !KNOWN.contains(&w.as_str()) {
            eprintln!("unknown experiment: {w}");
            usage();
        }
    }
    let all = wanted.iter().any(|w| w == "all");
    let want = |name: &str| all || wanted.iter().any(|w| w == name);

    println!(
        "# distributed-rcm reproduction (scale multiplier {}, {} mode)\n",
        cfg.scale_mult,
        if cfg.quick { "quick" } else { "full" }
    );

    let mut manifest: Vec<Emitted> = Vec::new();
    let mut ok = true;
    if want("fig3") {
        ok &= emit(&cfg, &mut manifest, "fig3_suite", &fig3_suite_table(&cfg));
    }
    if want("fig1") {
        ok &= emit(&cfg, &mut manifest, "fig1_cg", &fig1_cg_solve(&cfg));
    }
    if want("table2") {
        ok &= emit(
            &cfg,
            &mut manifest,
            "table2_shared",
            &table2_shared_memory(&cfg),
        );
    }
    if want("scaling") {
        ok &= emit(&cfg, &mut manifest, "shared_scaling", &shared_scaling(&cfg));
    }
    if want("fig4") || want("fig5") {
        let panels = run_hybrid_sweep(&cfg);
        if want("fig4") {
            for (panel, t) in panels.iter().zip(fig4_breakdown(&panels)) {
                ok &= emit(&cfg, &mut manifest, &format!("fig4_{}", panel.name), &t);
            }
            ok &= emit(
                &cfg,
                &mut manifest,
                "fig4_summary",
                &scaling_summary(&panels),
            );
        }
        if want("fig5") {
            for (panel, t) in panels.iter().zip(fig5_spmspv_split(&panels)) {
                ok &= emit(&cfg, &mut manifest, &format!("fig5_{}", panel.name), &t);
            }
        }
    }
    if want("fig6") {
        ok &= emit(
            &cfg,
            &mut manifest,
            "fig6_flat_mpi",
            &fig6_flat_vs_hybrid(&cfg),
        );
    }
    if want("ablation") {
        ok &= emit(
            &cfg,
            &mut manifest,
            "ablation_sort",
            &ablation_sort_modes(&cfg),
        );
    }
    if want("direction") {
        ok &= emit(&cfg, &mut manifest, "direction", &direction_ablation(&cfg));
    }
    if want("backends") {
        ok &= emit(&cfg, &mut manifest, "backend_sweep", &backend_sweep(&cfg));
    }
    if want("balance") {
        ok &= emit(
            &cfg,
            &mut manifest,
            "balance_ablation",
            &balance_ablation(&cfg),
        );
    }
    if !cfg.mtx.is_empty() {
        // Real inputs ride along with whatever experiments were selected.
        ok &= emit(&cfg, &mut manifest, "mtx_suite", &mtx_table(&cfg));
    }
    if want("quality") {
        ok &= emit(
            &cfg,
            &mut manifest,
            "quality_heuristics",
            &quality_comparison(&cfg),
        );
    }
    if want("gather") {
        ok &= emit(
            &cfg,
            &mut manifest,
            "gather_vs_dist",
            &gather_vs_distributed(&cfg),
        );
    }
    if want("sensitivity") {
        ok &= emit(
            &cfg,
            &mut manifest,
            "machine_sensitivity",
            &machine_sensitivity(&cfg),
        );
    }
    if want("compress") {
        ok &= emit(&cfg, &mut manifest, "compression", &compression_table(&cfg));
    }
    if want("throughput") {
        ok &= emit(&cfg, &mut manifest, "throughput", &throughput_table(&cfg));
    }
    if want("service") {
        ok &= emit(&cfg, &mut manifest, "service", &service_table(&cfg));
    }
    if want("kernels") {
        ok &= emit(&cfg, &mut manifest, "kernels", &kernels_table(&cfg));
    }
    if want("components") {
        ok &= emit(&cfg, &mut manifest, "components", &components_table(&cfg));
    }
    if want("startnode") {
        ok &= emit(&cfg, &mut manifest, "startnode", &startnode_table(&cfg));
    }
    match write_summary(&cfg, &manifest) {
        Ok(path) => println!("[summary] {}", path.display()),
        Err(e) => {
            eprintln!("[summary] failed: {e}");
            ok = false;
        }
    }
    if !ok {
        std::process::exit(1);
    }
}
