//! `repro` — regenerate the tables and figures of Azad et al. (IPDPS 2017).
//!
//! ```text
//! repro [--scale <mult>] [--quick] [--out <dir>] <experiment>...
//!
//! experiments:
//!   fig1      CG+block-Jacobi solve time, natural vs RCM ordering
//!   fig3      matrix-suite statistics table
//!   table2    shared-memory baseline vs distributed runtime
//!   fig4      distributed runtime breakdown (per matrix, per core count)
//!   fig5      SpMSpV computation vs communication split
//!   fig6      flat MPI vs hybrid breakdown on ldoor
//!   ablation  sorting-strategy ablation (§VI future work)
//!   all       everything above
//! ```
//!
//! Tables print to stdout and are written as CSV under the output directory
//! (default `results/`).

use rcm_bench::{
    ablation_sort_modes, compression_table, fig1_cg_solve, fig3_suite_table, fig4_breakdown,
    fig5_spmspv_split, fig6_flat_vs_hybrid, gather_vs_distributed, machine_sensitivity,
    quality_comparison, run_hybrid_sweep, scaling_summary, table2_shared_memory, ExpConfig, Table,
};

fn usage() -> ! {
    eprintln!(
        "usage: repro [--scale <mult>] [--quick] [--out <dir>] \
         <fig1|fig3|table2|fig4|fig5|fig6|ablation|quality|gather|sensitivity|compress|all>..."
    );
    std::process::exit(2);
}

fn emit(cfg: &ExpConfig, name: &str, table: &Table) {
    println!("{}", table.render());
    match table.write_csv(&cfg.results_dir, name) {
        Ok(path) => println!("[csv] {}\n", path.display()),
        Err(e) => eprintln!("[csv] failed to write {name}: {e}"),
    }
}

fn main() {
    let mut cfg = ExpConfig::default();
    let mut wanted: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args.next().unwrap_or_else(|| usage());
                cfg.scale_mult = v.parse().unwrap_or_else(|_| usage());
            }
            "--out" => {
                cfg.results_dir = args.next().unwrap_or_else(|| usage()).into();
            }
            "--quick" => cfg.quick = true,
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() {
        usage();
    }
    let all = wanted.iter().any(|w| w == "all");
    let want = |name: &str| all || wanted.iter().any(|w| w == name);

    println!(
        "# distributed-rcm reproduction (scale multiplier {}, {} mode)\n",
        cfg.scale_mult,
        if cfg.quick { "quick" } else { "full" }
    );

    if want("fig3") {
        emit(&cfg, "fig3_suite", &fig3_suite_table(&cfg));
    }
    if want("fig1") {
        emit(&cfg, "fig1_cg", &fig1_cg_solve(&cfg));
    }
    if want("table2") {
        emit(&cfg, "table2_shared", &table2_shared_memory(&cfg));
    }
    if want("fig4") || want("fig5") {
        let panels = run_hybrid_sweep(&cfg);
        if want("fig4") {
            for (panel, t) in panels.iter().zip(fig4_breakdown(&panels)) {
                emit(&cfg, &format!("fig4_{}", panel.name), &t);
            }
            emit(&cfg, "fig4_summary", &scaling_summary(&panels));
        }
        if want("fig5") {
            for (panel, t) in panels.iter().zip(fig5_spmspv_split(&panels)) {
                emit(&cfg, &format!("fig5_{}", panel.name), &t);
            }
        }
    }
    if want("fig6") {
        emit(&cfg, "fig6_flat_mpi", &fig6_flat_vs_hybrid(&cfg));
    }
    if want("ablation") {
        emit(&cfg, "ablation_sort", &ablation_sort_modes(&cfg));
    }
    if want("quality") {
        emit(&cfg, "quality_heuristics", &quality_comparison(&cfg));
    }
    if want("gather") {
        emit(&cfg, "gather_vs_dist", &gather_vs_distributed(&cfg));
    }
    if want("sensitivity") {
        emit(&cfg, "machine_sensitivity", &machine_sensitivity(&cfg));
    }
    if want("compress") {
        emit(&cfg, "compression", &compression_table(&cfg));
    }
}
