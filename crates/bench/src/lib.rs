//! Benchmark and reproduction harness for the distributed-RCM workspace.
//!
//! * [`experiments`] — runners that regenerate every table and figure of
//!   Azad et al. (IPDPS 2017); the `repro` binary is a thin CLI over them.
//! * [`report`] — plain-text table rendering and CSV export.
//! * `benches/` — criterion microbenchmarks of the computational kernels
//!   (SpMSpV, SORTPERM, the four RCM implementations, the simulator).

pub mod experiments;
pub mod report;

pub use experiments::{
    ablation_sort_modes, backend_sweep, balance_ablation, component_measurements, components_table,
    compression_table, direction_ablation, fig1_cg_solve, fig3_suite_table, fig4_breakdown,
    fig5_spmspv_split, fig6_flat_vs_hybrid, gather_vs_distributed, kernel_measurements,
    kernels_table, load_mtx, machine_sensitivity, mtx_table, quality_comparison, run_hybrid_sweep,
    scaling_summary, service_measurements, service_table, shared_scaling, startnode_measurements,
    startnode_table, table2_shared_memory, throughput_measurements, throughput_table, ComponentRow,
    ExpConfig, KernelRow, MtxInput, ServiceRow, StartNodeRow, SweepPanel, ThroughputRow,
    SCALING_THREADS, START_NODE_STRATEGIES,
};
pub use report::{fmt_count, fmt_secs, Table};
