//! End-to-end tests of the `repro` binary's input validation and the
//! direction-ablation artifact — the harness half of the Matrix Market
//! hardening (every malformed input must exit 2 naming the file, never
//! panic mid-run).

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("repro-cli-{tag}"));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn missing_mtx_exits_2_naming_the_file() {
    let out = repro()
        .args(["--quick", "--mtx", "/nonexistent/repro-test.mtx", "fig3"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("/nonexistent/repro-test.mtx"), "{stderr}");
}

#[test]
fn malformed_mtx_variants_exit_2_naming_the_file() {
    let dir = temp_dir("badmm");
    // One representative per hardened parser case: garbage banner,
    // unsupported header, out-of-range 1-based index, truncated entry.
    for (tag, body) in [
        ("garbage", "this is not a matrix market file\n"),
        (
            "badsym",
            "%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 1\n2 1 1.0\n",
        ),
        (
            "oob",
            "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n3 1\n",
        ),
        (
            "zeroidx",
            "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n0 1\n",
        ),
        (
            "novalue",
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2\n",
        ),
    ] {
        let path = dir.join(format!("{tag}.mtx"));
        std::fs::write(&path, body).unwrap();
        let out = repro()
            .args(["--quick", "--mtx", path.to_str().unwrap(), "fig3"])
            .output()
            .unwrap();
        assert_eq!(
            out.status.code(),
            Some(2),
            "{tag}: malformed input must exit 2"
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(&format!("{tag}.mtx")),
            "{tag}: stderr must name the file: {stderr}"
        );
    }
}

#[test]
fn crlf_mtx_input_is_accepted() {
    let dir = temp_dir("crlf");
    let path = dir.join("dos.mtx");
    std::fs::write(
        &path,
        "%%MatrixMarket matrix coordinate pattern symmetric\r\n5 5 4\r\n2 1\r\n3 2\r\n4 3\r\n5 4\r\n",
    )
    .unwrap();
    let out = repro()
        .args([
            "--quick",
            "--out",
            dir.join("results").to_str().unwrap(),
            "--mtx",
            path.to_str().unwrap(),
            "direction",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // The direction table (with the mtx row riding along) must land in the
    // results directory and the manifest.
    let direction = dir.join("results/direction.json");
    assert!(direction.exists(), "direction.json must be written");
    let summary = std::fs::read_to_string(dir.join("results/repro_summary.json")).unwrap();
    assert!(summary.contains("\"direction\""), "{summary}");
    let table = std::fs::read_to_string(direction).unwrap();
    assert!(
        table.contains("dos"),
        "mtx input missing from table: {table}"
    );
}

#[test]
fn unknown_experiment_exits_2() {
    let out = repro().args(["--quick", "frobnicate"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown experiment: frobnicate"),
        "{stderr}"
    );
}
