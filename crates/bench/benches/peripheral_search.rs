//! Criterion benchmarks of the start-node selection strategies on the
//! quick suite classes — the cost side of the `repro startnode` ablation.
//!
//! Each benchmark runs the *whole* ordering under one strategy on the
//! serial backend (the strategy changes only the peripheral phase, so the
//! deltas between strategies isolate the sweeps saved), plus a
//! peripheral-phase-only series driving [`StartNodeStrategy::select`]
//! directly on a fresh runtime.

use criterion::{criterion_group, criterion_main, Criterion};
use rcm_core::backends::SerialBackend;
use rcm_core::driver::{ExpandDirection, StartNode, StartNodeStrategy};
use rcm_core::{DriverStats, EngineConfig, OrderingEngine};
use rcm_graphgen::suite_matrix;

const STRATEGIES: [StartNode; 3] = [
    StartNode::GeorgeLiu,
    StartNode::BiCriteria,
    StartNode::MinDegree,
];

fn bench_peripheral_search(c: &mut Criterion) {
    for class in ["nd24k", "ldoor", "Li7Nmax6"] {
        let m = suite_matrix(class).unwrap();
        let a = m.generate(m.default_scale * 0.1);
        let mut group = c.benchmark_group(format!("peripheral/{class}"));
        group.sample_size(10);

        // Full ordering under each strategy: identical labeling work, so
        // the spread is the peripheral sweeps.
        for strategy in STRATEGIES {
            let mut engine =
                OrderingEngine::new(EngineConfig::builder().start_node(strategy).build());
            group.bench_function(format!("order/{}", strategy.name()), |b| {
                b.iter(|| std::hint::black_box(engine.order(&a).perm.len()))
            });
        }

        // The selection phase alone: min-degree seed 0 (deterministic),
        // fresh BFS marks per iteration via end_peripheral_search.
        for strategy in STRATEGIES {
            group.bench_function(format!("select/{}", strategy.name()), |b| {
                let mut rt = SerialBackend::new(&a);
                let mut stats = DriverStats::default();
                b.iter(|| {
                    let (root, pstat) =
                        strategy.select(&mut rt, 0, ExpandDirection::Push, &mut stats);
                    if pstat.sweeps == 0 {
                        // Zero-sweep strategies leave no BFS marks behind;
                        // sweeping ones already rolled them back.
                        debug_assert!(root == 0 || pstat.sweeps > 0);
                    }
                    std::hint::black_box(root)
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_peripheral_search);
criterion_main!(benches);
