//! Criterion benchmarks of the four RCM implementations on a suite matrix
//! (the data behind Table II's runtime columns).

use criterion::{criterion_group, criterion_main, Criterion};
use rcm_core::{algebraic_rcm, dist_rcm, par_rcm, rcm_nosort, DistRcmConfig};
use rcm_graphgen::suite_matrix;

fn bench_rcm_algorithms(c: &mut Criterion) {
    let a = suite_matrix("thermal2").unwrap().generate(0.01);
    let mut group = c.benchmark_group("rcm");
    group.sample_size(10);

    group.bench_function("serial", |b| {
        b.iter(|| std::hint::black_box(rcm_core::rcm(&a)))
    });
    group.bench_function("algebraic", |b| {
        b.iter(|| std::hint::black_box(algebraic_rcm(&a).0))
    });
    // The Table II strong-scaling sweep: the work-stealing backend is
    // expected to keep improving past 4 threads on multi-core hosts.
    for threads in [1usize, 2, 4, 8, 16] {
        group.bench_function(format!("shared-{threads}t"), |b| {
            b.iter(|| std::hint::black_box(par_rcm(&a, threads).0))
        });
    }
    group.bench_function("nosort", |b| {
        b.iter(|| std::hint::black_box(rcm_nosort(&a)))
    });
    // Simulator overhead: wall time of the distributed run (the *simulated*
    // seconds are what the experiments report; this measures the harness).
    group.bench_function("dist-sim-16procs", |b| {
        let cfg = DistRcmConfig::flat_on_edison(16);
        b.iter(|| std::hint::black_box(dist_rcm(&a, &cfg).sim_seconds))
    });
    group.finish();
}

criterion_group!(benches, bench_rcm_algorithms);
criterion_main!(benches);
