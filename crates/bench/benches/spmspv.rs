//! Criterion microbenchmarks of the sequential SpMSpV kernel — the paper's
//! dominant primitive (Fig. 4 shows it is the most expensive operation at
//! low concurrency) — in both directions: push over the frontier's columns
//! and pull over the candidate rows (bitmap word-scan vs the pre-bitmap
//! per-row closure mask).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rcm_graphgen::suite_matrix;
use rcm_sparse::{
    spmspv, spmspv_pull, spmspv_pull_ref, DenseFrontier, PullBuffer, Select2ndMin, SparseVec,
    SpmspvWorkspace, VertexBitmap, Vidx, UNVISITED,
};

fn bench_spmspv(c: &mut Criterion) {
    let a = suite_matrix("ldoor").unwrap().generate(0.005);
    let n = a.n_rows();
    let mut group = c.benchmark_group("spmspv");
    group.sample_size(20);
    for frontier_size in [1usize, 64, 4096, n / 8] {
        let frontier_size = frontier_size.min(n);
        let entries: Vec<(Vidx, i64)> = (0..frontier_size)
            .map(|k| (((k * n) / frontier_size) as Vidx, k as i64))
            .collect();
        let x = SparseVec::from_entries(n, entries);
        let work: usize = x.ind().map(|k| a.col_nnz(k as usize)).sum();
        group.throughput(Throughput::Elements(work as u64));
        group.bench_with_input(BenchmarkId::from_parameter(frontier_size), &x, |b, x| {
            let mut ws = SpmspvWorkspace::new(n);
            b.iter(|| {
                let (y, _) = spmspv::<i64, Select2ndMin>(&a, x, &mut ws);
                std::hint::black_box(y.nnz())
            });
        });
    }
    group.finish();
}

fn bench_spmspv_pull(c: &mut Criterion) {
    let a = suite_matrix("ldoor").unwrap().generate(0.005);
    let n = a.n_rows();
    let mut group = c.benchmark_group("spmspv_pull");
    group.sample_size(20);
    // Sweep the visited fraction: the bitmap's word skip pays off as the
    // candidate set thins out, while the closure mask still walks one
    // vertex at a time.
    for unvisited_pct in [100usize, 50, 10] {
        let frontier_size = (n / 8).max(1);
        let entries: Vec<(Vidx, i64)> = (0..frontier_size)
            .map(|k| (((k * n) / frontier_size) as Vidx, k as i64))
            .collect();
        let mut x = DenseFrontier::new(n);
        x.load(&SparseVec::from_entries(n, entries));
        // Visited vertices cluster in contiguous runs (like a half-ordered
        // matrix), giving the word skip whole words to retire.
        let mut order: Vec<i64> = vec![UNVISITED; n];
        let mut cands = VertexBitmap::new(n);
        for (v, slot) in order.iter_mut().enumerate() {
            if (v * 100 / n) % 100 < unvisited_pct {
                cands.insert(v as Vidx);
            } else {
                *slot = v as i64;
            }
        }
        let work: usize = (0..n)
            .filter(|&r| cands.contains(r as Vidx))
            .map(|r| a.col_nnz(r))
            .sum();
        group.throughput(Throughput::Elements(work.max(1) as u64));
        group.bench_with_input(
            BenchmarkId::new("bitmap", unvisited_pct),
            &(&x, &cands),
            |b, (x, cands)| {
                let mut buf = PullBuffer::new();
                b.iter(|| {
                    spmspv_pull::<i64, Select2ndMin>(&a, x, cands, &mut buf);
                    std::hint::black_box(buf.entries().len())
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("closure", unvisited_pct),
            &(&x, &order),
            |b, (x, order)| {
                b.iter(|| {
                    let (y, _) = spmspv_pull_ref::<i64, Select2ndMin>(&a, x, |r| {
                        order[r as usize] == UNVISITED
                    });
                    std::hint::black_box(y.nnz())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_spmspv, bench_spmspv_pull);
criterion_main!(benches);
