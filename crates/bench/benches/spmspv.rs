//! Criterion microbenchmarks of the sequential SpMSpV kernel — the paper's
//! dominant primitive (Fig. 4 shows it is the most expensive operation at
//! low concurrency).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rcm_graphgen::suite_matrix;
use rcm_sparse::{spmspv, Select2ndMin, SparseVec, SpmspvWorkspace, Vidx};

fn bench_spmspv(c: &mut Criterion) {
    let a = suite_matrix("ldoor").unwrap().generate(0.005);
    let n = a.n_rows();
    let mut group = c.benchmark_group("spmspv");
    group.sample_size(20);
    for frontier_size in [1usize, 64, 4096, n / 8] {
        let frontier_size = frontier_size.min(n);
        let entries: Vec<(Vidx, i64)> = (0..frontier_size)
            .map(|k| (((k * n) / frontier_size) as Vidx, k as i64))
            .collect();
        let x = SparseVec::from_entries(n, entries);
        let work: usize = x.ind().map(|k| a.col_nnz(k as usize)).sum();
        group.throughput(Throughput::Elements(work as u64));
        group.bench_with_input(BenchmarkId::from_parameter(frontier_size), &x, |b, x| {
            let mut ws = SpmspvWorkspace::new(n);
            b.iter(|| {
                let (y, _) = spmspv::<i64, Select2ndMin>(&a, x, &mut ws);
                std::hint::black_box(y.nnz())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_spmspv);
criterion_main!(benches);
