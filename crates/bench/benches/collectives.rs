//! Criterion benchmarks of the simulated distributed primitives: SpMSpV
//! across grid sizes (host cost of the simulator, not simulated seconds).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rcm_dist::{
    dist_spmspv, DistCscMatrix, DistSparseVec, DistSpmspvWorkspace, MachineModel, ProcGrid,
    SimClock,
};
use rcm_graphgen::suite_matrix;
use rcm_sparse::{Select2ndMin, Vidx};

fn bench_dist_spmspv(c: &mut Criterion) {
    let a = suite_matrix("Serena").unwrap().generate(0.005);
    let n = a.n_rows();
    let mut group = c.benchmark_group("dist-spmspv");
    group.sample_size(10);
    for procs in [1usize, 4, 16, 64] {
        let grid = ProcGrid::square(procs).unwrap();
        let dmat = DistCscMatrix::from_global(grid, &a, None);
        let entries: Vec<(Vidx, i64)> = (0..n as Vidx).step_by(7).map(|v| (v, v as i64)).collect();
        let x = DistSparseVec::from_entries(dmat.layout().clone(), entries);
        group.bench_with_input(BenchmarkId::from_parameter(procs), &procs, |b, _| {
            let mut ws = DistSpmspvWorkspace::new();
            b.iter(|| {
                let mut clock = SimClock::new(MachineModel::edison(), 1);
                let y = dist_spmspv::<i64, Select2ndMin>(&dmat, &x, &mut ws, &mut clock);
                std::hint::black_box((y.total_nnz(), clock.now()))
            });
        });
    }
    group.finish();
}

fn bench_matrix_distribution(c: &mut Criterion) {
    let a = suite_matrix("nd24k").unwrap().generate(0.02);
    let mut group = c.benchmark_group("dist-matrix-build");
    group.sample_size(10);
    for procs in [4usize, 64, 256] {
        let grid = ProcGrid::square(procs).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(procs), &grid, |b, grid| {
            b.iter(|| std::hint::black_box(DistCscMatrix::from_global(*grid, &a, Some(1)).nnz()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dist_spmspv, bench_matrix_distribution);
criterion_main!(benches);
