//! Criterion microbenchmarks of the SORTPERM step: the paper's specialized
//! distributed bucket sort against a plain global comparison sort (the
//! HykSort-style alternative it outperforms, §IV-B), plus the local kernel
//! pair — two-pass counting sort vs per-parent bucket `Vec`s.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rcm_dist::{
    dist_sortperm, DistDenseVec, DistSparseVec, MachineModel, ProcGrid, SimClock, VecLayout,
};
use rcm_sparse::{bucket_sortperm_ref, counting_sortperm, Label, SortpermScratch, Vidx};

fn frontier(n: usize, layout: &VecLayout) -> (DistSparseVec<i64>, DistDenseVec<Vidx>) {
    let entries: Vec<(Vidx, i64)> = (0..n as Vidx)
        .filter(|v| v % 3 != 1)
        .map(|v| (v, (v as i64 * 31) % 64))
        .collect();
    let degrees: Vec<Vidx> = (0..n as Vidx).map(|v| (v * 17 + 5) % 97).collect();
    (
        DistSparseVec::from_entries(layout.clone(), entries),
        DistDenseVec::from_global(layout.clone(), &degrees),
    )
}

fn bench_sortperm(c: &mut Criterion) {
    let mut group = c.benchmark_group("sortperm");
    group.sample_size(20);
    for n in [10_000usize, 100_000] {
        for procs in [1usize, 16, 64] {
            let grid = ProcGrid::square(procs).unwrap();
            let layout = VecLayout::new(n, grid);
            let (x, d) = frontier(n, &layout);
            group.throughput(Throughput::Elements(x.total_nnz() as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("bucket-p{procs}"), n),
                &(x, d),
                |b, (x, d)| {
                    b.iter(|| {
                        let mut clock = SimClock::new(MachineModel::edison(), 1);
                        let (labels, count) = dist_sortperm(x, d, (0, 64), 0, &mut clock);
                        std::hint::black_box((labels.total_nnz(), count))
                    });
                },
            );
        }
        // Baseline: one global comparison sort of the same tuples.
        let grid = ProcGrid::square(1).unwrap();
        let layout = VecLayout::new(n, grid);
        let (x, d) = frontier(n, &layout);
        group.bench_with_input(BenchmarkId::new("std-sort", n), &(x, d), |b, (x, d)| {
            b.iter(|| {
                let mut tuples: Vec<(i64, Vidx, Vidx)> = x.parts[0]
                    .iter()
                    .map(|&(g, l)| (l, d.parts[0][g as usize], g))
                    .collect();
                tuples.sort_unstable();
                std::hint::black_box(tuples.len())
            });
        });
    }
    group.finish();
}

fn bench_sortperm_local(c: &mut Criterion) {
    let mut group = c.benchmark_group("sortperm_local");
    group.sample_size(20);
    for n in [10_000usize, 100_000] {
        let entries: Vec<(Vidx, Label)> = (0..n as Vidx)
            .filter(|v| v % 3 != 1)
            .map(|v| (v, (v as Label * 31) % 64))
            .collect();
        let degrees: Vec<Vidx> = (0..n as Vidx).map(|v| (v * 17 + 5) % 97).collect();
        group.throughput(Throughput::Elements(entries.len() as u64));
        group.bench_with_input(BenchmarkId::new("counting", n), &entries, |b, entries| {
            let mut scratch = SortpermScratch::new();
            b.iter(|| {
                let sorted = counting_sortperm(entries, (0, 64), &degrees, &mut scratch);
                std::hint::black_box(sorted.len())
            });
        });
        group.bench_with_input(BenchmarkId::new("bucket-vec", n), &entries, |b, entries| {
            b.iter(|| {
                let sorted = bucket_sortperm_ref(entries, (0, 64), &degrees);
                std::hint::black_box(sorted.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sortperm, bench_sortperm_local);
criterion_main!(benches);
