//! Property-based tests of the solver substrate on random SPD systems.

use proptest::prelude::*;
use rcm_dist::MachineModel;
use rcm_solver::{cg_iteration_cost, dist_pcg, pcg, BlockJacobi, Ic0Factor, IdentityPrecond};
use rcm_sparse::{CooBuilder, CscMatrix, CsrNumeric, Vidx};

/// Random connected symmetric pattern (path backbone + extra edges).
fn random_pattern(n: usize, extra: &[(usize, usize)]) -> CscMatrix {
    let mut b = CooBuilder::new(n, n);
    for v in 0..n.saturating_sub(1) {
        b.push_sym(v as Vidx, (v + 1) as Vidx);
    }
    for &(u, v) in extra {
        if u % n != v % n {
            b.push_sym((u % n) as Vidx, (v % n) as Vidx);
        }
    }
    b.build()
}

fn manufactured(a: &CsrNumeric) -> (Vec<f64>, Vec<f64>) {
    let n = a.n_rows();
    let x: Vec<f64> = (0..n).map(|i| ((i * 13 % 7) as f64) - 3.0).collect();
    let mut b = vec![0.0; n];
    a.spmv(&x, &mut b);
    (x, b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cg_recovers_manufactured_solutions(
        n in 2usize..60,
        extra in proptest::collection::vec((0usize..60, 0usize..60), 0..60),
        shift in 0.05f64..2.0,
    ) {
        let a = CsrNumeric::laplacian_from_pattern(&random_pattern(n, &extra), shift);
        let (x_true, b) = manufactured(&a);
        let res = pcg(&a, &b, &IdentityPrecond, 1e-10, 20 * n + 50);
        prop_assert!(res.converged, "residual {}", res.relative_residual);
        let err: f64 = res.x.iter().zip(&x_true).map(|(u, v)| (u - v).abs()).fold(0.0, f64::max);
        prop_assert!(err < 1e-5, "max error {err}");
    }

    #[test]
    fn block_jacobi_never_slows_convergence_catastrophically(
        n in 4usize..50,
        extra in proptest::collection::vec((0usize..50, 0usize..50), 0..40),
        blocks in 1usize..6,
    ) {
        let a = CsrNumeric::laplacian_from_pattern(&random_pattern(n, &extra), 0.2);
        let (_, b) = manufactured(&a);
        let bj = BlockJacobi::new(&a, blocks);
        let plain = pcg(&a, &b, &IdentityPrecond, 1e-8, 40 * n + 100);
        let pre = pcg(&a, &b, &bj, 1e-8, 40 * n + 100);
        prop_assert!(pre.converged && plain.converged);
        // SPD preconditioning: iterations should not blow up (allow slack
        // for tiny systems where counts are all small).
        prop_assert!(pre.iterations <= plain.iterations + 5);
    }

    #[test]
    fn ic0_solve_is_linear_and_spd(
        n in 2usize..40,
        extra in proptest::collection::vec((0usize..40, 0usize..40), 0..30),
    ) {
        let a = CsrNumeric::laplacian_from_pattern(&random_pattern(n, &extra), 0.3);
        let f = Ic0Factor::new(&a);
        // Linearity: solve(2r) == 2 solve(r).
        let r: Vec<f64> = (0..n).map(|i| ((i % 5) as f64) - 2.0).collect();
        let mut z1 = r.clone();
        f.solve_in_place(&mut z1);
        let mut z2: Vec<f64> = r.iter().map(|v| v * 2.0).collect();
        f.solve_in_place(&mut z2);
        for (a1, a2) in z1.iter().zip(&z2) {
            prop_assert!((a2 - 2.0 * a1).abs() < 1e-9);
        }
        // SPD application: rᵀ M⁻¹ r > 0 for r ≠ 0.
        let dot: f64 = r.iter().zip(&z1).map(|(x, y)| x * y).sum();
        prop_assert!(dot > 0.0);
    }

    #[test]
    fn dist_cg_matches_sequential_solution(
        n in 4usize..40,
        extra in proptest::collection::vec((0usize..40, 0usize..40), 0..30),
        ranks in 1usize..6,
    ) {
        let a = CsrNumeric::laplacian_from_pattern(&random_pattern(n, &extra), 0.2);
        let (_, b) = manufactured(&a);
        let machine = MachineModel::edison();
        let seq = pcg(&a, &b, &IdentityPrecond, 1e-9, 20 * n + 50);
        let dist = dist_pcg(&a, &b, &IdentityPrecond, 1e-9, 20 * n + 50, ranks, &machine);
        prop_assert!(seq.converged && dist.converged);
        for (u, v) in seq.x.iter().zip(&dist.x) {
            prop_assert!((u - v).abs() < 1e-6);
        }
        if ranks == 1 {
            prop_assert_eq!(dist.halo_seconds, 0.0);
        }
    }

    #[test]
    fn iteration_cost_comm_terms_grow_with_ranks(
        n in 16usize..50,
        extra in proptest::collection::vec((0usize..50, 0usize..50), 5..40),
    ) {
        let pat = random_pattern(n, &extra);
        let machine = MachineModel::edison();
        let c2 = cg_iteration_cost(&pat, &machine, 2, 0);
        let c8 = cg_iteration_cost(&pat, &machine, 8, 0);
        prop_assert!(c8.reductions >= c2.reductions);
        prop_assert!(c8.compute <= c2.compute + 1e-12);
    }

    #[test]
    fn jacobi_precond_is_exact_for_diagonal_systems(d in proptest::collection::vec(0.5f64..10.0, 1..30)) {
        let n = d.len();
        let a = CsrNumeric::from_triplets(
            n, n,
            d.iter().enumerate().map(|(i, &v)| (i as Vidx, i as Vidx, v)).collect(),
        );
        let (x_true, b) = manufactured(&a);
        let res = pcg(&a, &b, &rcm_solver::JacobiPrecond::new(&a), 1e-12, 5);
        prop_assert!(res.converged);
        prop_assert!(res.iterations <= 1);
        for (u, v) in res.x.iter().zip(&x_true) {
            prop_assert!((u - v).abs() < 1e-8);
        }
    }
}
