//! Distributed conjugate gradient — an executable simulation, not just a
//! cost formula.
//!
//! [`crate::distmodel`] prices one CG iteration analytically; this module
//! actually *runs* CG in SPMD form on a 1D row-block partition: every rank
//! owns a block of rows, halo exchanges move real vector entries between
//! rank-local buffers, dot products are combined through a simulated
//! AllReduce, and every step charges a [`SimClock`]. The numerics are
//! bit-identical to sequential [`crate::cg::pcg`] up to floating-point
//! summation order (partial dot products are reduced in rank order,
//! deterministically).
//!
//! This gives Fig. 1 a fully execution-based path: measured iterations *and*
//! executed communication, on the same machine model as the RCM simulator.

use crate::bjacobi::Preconditioner;
use rcm_dist::{block_index, block_range, MachineModel, SimClock};
use rcm_sparse::{CsrNumeric, Vidx};

/// Result of a simulated distributed CG solve.
#[derive(Clone, Debug)]
pub struct DistCgResult {
    /// The solution vector (gathered).
    pub x: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the tolerance was met.
    pub converged: bool,
    /// Simulated seconds for the whole solve.
    pub sim_seconds: f64,
    /// Simulated seconds spent in halo exchanges.
    pub halo_seconds: f64,
    /// Simulated seconds spent in AllReduces.
    pub reduce_seconds: f64,
    /// Largest per-rank halo partner count.
    pub max_partners: usize,
}

/// Halo-exchange plan of one rank: which remote entries it needs.
struct HaloPlan {
    /// Remote global column indices this rank reads, sorted.
    needs: Vec<Vidx>,
    /// Distinct partner ranks.
    partners: usize,
}

fn build_plans(a: &CsrNumeric, ranks: usize) -> Vec<HaloPlan> {
    let n = a.n_rows();
    (0..ranks)
        .map(|rank| {
            let (s, e) = block_range(n, ranks, rank);
            let mut needs: Vec<Vidx> = Vec::new();
            for r in s..e {
                for &c in a.row_cols(r) {
                    let c_us = c as usize;
                    if c_us < s || c_us >= e {
                        needs.push(c);
                    }
                }
            }
            needs.sort_unstable();
            needs.dedup();
            let mut partner_set = vec![false; ranks];
            for &c in &needs {
                partner_set[block_index(n, ranks, c as usize)] = true;
            }
            HaloPlan {
                partners: partner_set.iter().filter(|&&x| x).count(),
                needs,
            }
        })
        .collect()
}

/// Solve `A x = b` with preconditioned CG on a simulated `ranks`-way 1D
/// row-block partition (flat: one thread per rank).
///
/// The preconditioner must be block-aligned (apply must not read across the
/// partition — [`crate::bjacobi::BlockJacobi`] constructed with the same
/// `ranks` satisfies this; its application is charged as local work).
pub fn dist_pcg(
    a: &CsrNumeric,
    b: &[f64],
    m: &impl Preconditioner,
    rel_tol: f64,
    max_iter: usize,
    ranks: usize,
    machine: &MachineModel,
) -> DistCgResult {
    dist_pcg_hybrid(a, b, m, rel_tol, max_iter, ranks, 1, machine)
}

/// [`dist_pcg`] with multithreaded ranks — the same MPI×OpenMP cost model
/// as the RCM `HybridBackend`: local compute (SpMV, preconditioner sweeps,
/// AXPYs) is divided by [`MachineModel::thread_speedup`], communication is
/// charged undivided, and the numerics (and therefore the returned `x` and
/// iteration count) are bit-identical to the flat run.
#[allow(clippy::too_many_arguments)]
pub fn dist_pcg_hybrid(
    a: &CsrNumeric,
    b: &[f64],
    m: &impl Preconditioner,
    rel_tol: f64,
    max_iter: usize,
    ranks: usize,
    threads_per_rank: usize,
    machine: &MachineModel,
) -> DistCgResult {
    let n = a.n_rows();
    assert_eq!(a.n_cols(), n);
    assert_eq!(b.len(), n);
    assert!(ranks >= 1);
    let mut clock = SimClock::new(*machine, threads_per_rank);
    let plans = build_plans(a, ranks);
    let max_partners = plans.iter().map(|p| p.partners).max().unwrap_or(0);
    let max_halo: usize = plans.iter().map(|p| p.needs.len()).max().unwrap_or(0);
    let max_local_nnz: usize = (0..ranks)
        .map(|rank| {
            let (s, e) = block_range(n, ranks, rank);
            (s..e).map(|r| a.row_cols(r).len()).sum()
        })
        .max()
        .unwrap_or(0);
    let max_local_n = (0..ranks)
        .map(|rank| {
            let (s, e) = block_range(n, ranks, rank);
            e - s
        })
        .max()
        .unwrap_or(0);

    let mut halo_seconds = 0.0f64;
    let mut reduce_seconds = 0.0f64;
    // Charge one halo exchange (the vector entries physically "move" here —
    // in this flat-memory simulation the SpMV reads them in place, which is
    // numerically identical to exchanging then reading).
    let mut charge_halo = |clock: &mut SimClock| {
        if ranks > 1 {
            let t = machine.alpha * max_partners as f64 + machine.beta * (max_halo * 8 * 2) as f64;
            clock.charge_comm(t, (max_partners * ranks) as u64, (max_halo * 8) as u64);
            halo_seconds += t;
        }
    };
    let mut charge_reduce = |clock: &mut SimClock| {
        if ranks > 1 {
            let t = machine.t_allreduce(ranks, 8);
            clock.charge_comm(t, ranks as u64, 8);
            reduce_seconds += t;
        }
    };
    // Deterministic rank-ordered dot product (what MPI_Allreduce over rank
    // partials computes).
    let rank_dot = |u: &[f64], v: &[f64]| -> f64 {
        (0..ranks)
            .map(|rank| {
                let (s, e) = block_range(n, ranks, rank);
                u[s..e]
                    .iter()
                    .zip(&v[s..e])
                    .map(|(a, b)| a * b)
                    .sum::<f64>()
            })
            .sum()
    };

    let bnorm = rank_dot(b, b).sqrt().max(f64::MIN_POSITIVE);
    let mut x = vec![0.0f64; n];
    let mut r = b.to_vec();
    let mut z = vec![0.0f64; n];
    m.apply(&r, &mut z);
    clock.charge_edges(max_local_nnz); // block solve ~ local nnz sweep
    let mut p = z.clone();
    let mut rz = rank_dot(&r, &z);
    charge_reduce(&mut clock);
    let mut ap = vec![0.0f64; n];

    let mut iterations = 0usize;
    let mut rnorm = rank_dot(&r, &r).sqrt();
    while rnorm > rel_tol * bnorm && iterations < max_iter {
        charge_halo(&mut clock);
        a.spmv(&p, &mut ap);
        clock.charge_edges(max_local_nnz);
        let pap = rank_dot(&p, &ap);
        charge_reduce(&mut clock);
        if pap <= 0.0 || !pap.is_finite() {
            break;
        }
        let alpha = rz / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        clock.charge_elems(2 * max_local_n);
        m.apply(&r, &mut z);
        clock.charge_edges(max_local_nnz);
        let rz_new = rank_dot(&r, &z);
        charge_reduce(&mut clock);
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
        clock.charge_elems(max_local_n);
        iterations += 1;
        rnorm = rank_dot(&r, &r).sqrt();
        charge_reduce(&mut clock);
    }
    DistCgResult {
        converged: rnorm <= rel_tol * bnorm,
        iterations,
        sim_seconds: clock.now(),
        halo_seconds,
        reduce_seconds,
        max_partners,
        x,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bjacobi::{BlockJacobi, IdentityPrecond};
    use crate::cg::pcg;
    use rcm_sparse::CooBuilder;

    fn grid_laplacian(w: usize, shift: f64) -> CsrNumeric {
        let mut b = CooBuilder::new(w * w, w * w);
        for y in 0..w {
            for x in 0..w {
                let u = (y * w + x) as Vidx;
                if x + 1 < w {
                    b.push_sym(u, u + 1);
                }
                if y + 1 < w {
                    b.push_sym(u, u + w as Vidx);
                }
            }
        }
        CsrNumeric::laplacian_from_pattern(&b.build(), shift)
    }

    fn rhs(a: &CsrNumeric) -> Vec<f64> {
        let n = a.n_rows();
        let x: Vec<f64> = (0..n).map(|i| ((i % 5) as f64) - 2.0).collect();
        let mut b = vec![0.0; n];
        a.spmv(&x, &mut b);
        b
    }

    #[test]
    fn dist_cg_converges_like_sequential() {
        let a = grid_laplacian(12, 0.1);
        let b = rhs(&a);
        let machine = MachineModel::edison();
        let seq = pcg(&a, &b, &IdentityPrecond, 1e-8, 5000);
        let dist = dist_pcg(&a, &b, &IdentityPrecond, 1e-8, 5000, 4, &machine);
        assert!(dist.converged);
        // Same numerics up to dot-product association: iteration counts may
        // differ by a whisker, solutions must agree.
        assert!(dist.iterations.abs_diff(seq.iterations) <= 2);
        for (xd, xs) in dist.x.iter().zip(&seq.x) {
            assert!((xd - xs).abs() < 1e-6);
        }
    }

    #[test]
    fn one_rank_has_no_comm_time() {
        let a = grid_laplacian(8, 0.2);
        let b = rhs(&a);
        let machine = MachineModel::edison();
        let r = dist_pcg(&a, &b, &IdentityPrecond, 1e-8, 1000, 1, &machine);
        assert!(r.converged);
        assert_eq!(r.halo_seconds, 0.0);
        assert_eq!(r.reduce_seconds, 0.0);
        assert!(r.sim_seconds > 0.0);
    }

    #[test]
    fn block_jacobi_runs_distributed() {
        let a = grid_laplacian(14, 0.05);
        let b = rhs(&a);
        let machine = MachineModel::edison();
        let ranks = 4;
        let bj = BlockJacobi::new(&a, ranks);
        let plain = dist_pcg(&a, &b, &IdentityPrecond, 1e-8, 10000, ranks, &machine);
        let pre = dist_pcg(&a, &b, &bj, 1e-8, 10000, ranks, &machine);
        assert!(pre.converged && plain.converged);
        assert!(pre.iterations < plain.iterations);
    }

    #[test]
    fn banded_partition_has_two_partners() {
        let a = grid_laplacian(16, 0.1); // natural grid order: banded
        let b = rhs(&a);
        let machine = MachineModel::edison();
        let r = dist_pcg(&a, &b, &IdentityPrecond, 1e-6, 1000, 8, &machine);
        assert!(
            r.max_partners <= 2,
            "banded matrix: {} partners",
            r.max_partners
        );
    }

    #[test]
    fn hybrid_ranks_cut_compute_not_numerics() {
        let a = grid_laplacian(12, 0.1);
        let b = rhs(&a);
        let machine = MachineModel::edison();
        let flat = dist_pcg(&a, &b, &IdentityPrecond, 1e-8, 5000, 4, &machine);
        let hybrid = dist_pcg_hybrid(&a, &b, &IdentityPrecond, 1e-8, 5000, 4, 6, &machine);
        // Identical numerics: the thread count only rescales modeled time.
        assert_eq!(flat.iterations, hybrid.iterations);
        assert_eq!(flat.x, hybrid.x);
        assert_eq!(flat.halo_seconds, hybrid.halo_seconds);
        assert_eq!(flat.reduce_seconds, hybrid.reduce_seconds);
        let flat_compute = flat.sim_seconds - flat.halo_seconds - flat.reduce_seconds;
        let hybrid_compute = hybrid.sim_seconds - hybrid.halo_seconds - hybrid.reduce_seconds;
        assert!(
            hybrid_compute < flat_compute / 2.0,
            "6 threads/rank must cut modeled compute: {flat_compute} -> {hybrid_compute}"
        );
    }

    #[test]
    fn comm_time_grows_with_ranks() {
        let a = grid_laplacian(16, 0.1);
        let b = rhs(&a);
        let machine = MachineModel::edison();
        let r2 = dist_pcg(&a, &b, &IdentityPrecond, 1e-6, 50, 2, &machine);
        let r16 = dist_pcg(&a, &b, &IdentityPrecond, 1e-6, 50, 16, &machine);
        assert!(r16.reduce_seconds > r2.reduce_seconds);
    }
}
