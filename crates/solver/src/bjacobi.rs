//! Block-Jacobi preconditioning with IC(0) blocks.
//!
//! `M⁻¹ = diag(B₁⁻¹, …, B_p⁻¹)` where `B_k` is the k-th diagonal block of
//! `A` under a contiguous row partition — exactly PETSc's default
//! block-Jacobi + local incomplete factorization used in the paper's Fig. 1
//! experiment. The block boundaries coincide with the distributed row
//! partition, which is why the preconditioner's strength depends on the
//! matrix *ordering*: RCM clusters strong couplings into the diagonal
//! blocks, while a scattered "natural" ordering leaves the blocks nearly
//! diagonal and the preconditioner nearly useless.

use crate::ic0::Ic0Factor;
use rcm_sparse::{CsrNumeric, Vidx};

/// Interface for preconditioners used by the CG driver.
pub trait Preconditioner {
    /// `z ← M⁻¹ r`.
    fn apply(&self, r: &[f64], z: &mut [f64]);
}

/// No preconditioning (plain CG).
pub struct IdentityPrecond;

impl Preconditioner for IdentityPrecond {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        z.copy_from_slice(r);
    }
}

/// Point-Jacobi (diagonal scaling).
pub struct JacobiPrecond {
    inv_diag: Vec<f64>,
}

impl JacobiPrecond {
    /// Build from the matrix diagonal (zero diagonals become 1).
    pub fn new(a: &CsrNumeric) -> Self {
        let inv_diag = (0..a.n_rows())
            .map(|i| {
                let d = a.get(i as Vidx, i as Vidx);
                if d.abs() > 0.0 {
                    1.0 / d
                } else {
                    1.0
                }
            })
            .collect();
        JacobiPrecond { inv_diag }
    }
}

impl Preconditioner for JacobiPrecond {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        for ((zi, ri), di) in z.iter_mut().zip(r).zip(&self.inv_diag) {
            *zi = ri * di;
        }
    }
}

/// Block-Jacobi with IC(0)-factored diagonal blocks.
pub struct BlockJacobi {
    ranges: Vec<(usize, usize)>,
    factors: Vec<Ic0Factor>,
}

impl BlockJacobi {
    /// Build with `nblocks` contiguous equal blocks (the distributed row
    /// partition of a `nblocks`-rank solver).
    pub fn new(a: &CsrNumeric, nblocks: usize) -> Self {
        assert!(nblocks >= 1);
        let n = a.n_rows();
        let mut ranges = Vec::with_capacity(nblocks);
        let mut factors = Vec::with_capacity(nblocks);
        for b in 0..nblocks {
            let (s, e) = rcm_dist::block_range(n, nblocks, b);
            ranges.push((s, e));
            // Extract the diagonal block in local numbering.
            let mut triplets: Vec<(Vidx, Vidx, f64)> = Vec::new();
            for i in s..e {
                for (c, v) in a.row_cols(i).iter().zip(a.row_vals(i)) {
                    let c = *c as usize;
                    if c >= s && c < e {
                        triplets.push(((i - s) as Vidx, (c - s) as Vidx, *v));
                    }
                }
            }
            let block = CsrNumeric::from_triplets(e - s, e - s, triplets);
            factors.push(Ic0Factor::new(&block));
        }
        BlockJacobi { ranges, factors }
    }

    /// Number of blocks.
    pub fn nblocks(&self) -> usize {
        self.factors.len()
    }

    /// Total strictly-lower nonzeros across all factors (used by the
    /// distributed time model for the preconditioner-application cost).
    pub fn factor_nnz(&self) -> usize {
        self.factors.iter().map(|f| f.nnz_lower() + f.n()).sum()
    }
}

impl Preconditioner for BlockJacobi {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        z.copy_from_slice(r);
        for ((s, e), f) in self.ranges.iter().zip(&self.factors) {
            f.solve_in_place(&mut z[*s..*e]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcm_sparse::CooBuilder;

    fn path_laplacian(n: usize, shift: f64) -> CsrNumeric {
        let mut b = CooBuilder::new(n, n);
        for v in 0..n - 1 {
            b.push_sym(v as Vidx, (v + 1) as Vidx);
        }
        CsrNumeric::laplacian_from_pattern(&b.build(), shift)
    }

    #[test]
    fn one_block_is_full_ic0() {
        let a = path_laplacian(16, 0.2);
        let bj = BlockJacobi::new(&a, 1);
        assert_eq!(bj.nblocks(), 1);
        // IC(0) of a tridiagonal SPD matrix is exact → M⁻¹ A x = x.
        let x_true: Vec<f64> = (0..16).map(|i| (i as f64) - 8.0).collect();
        let mut b = vec![0.0; 16];
        a.spmv(&x_true, &mut b);
        let mut z = vec![0.0; 16];
        bj.apply(&b, &mut z);
        for (zi, ti) in z.iter().zip(&x_true) {
            assert!((zi - ti).abs() < 1e-10);
        }
    }

    #[test]
    fn multi_block_apply_is_blockwise() {
        let a = path_laplacian(10, 0.5);
        let bj = BlockJacobi::new(&a, 2);
        assert_eq!(bj.nblocks(), 2);
        let r = vec![1.0; 10];
        let mut z = vec![0.0; 10];
        bj.apply(&r, &mut z);
        assert!(z.iter().all(|v| v.is_finite()));
        // The block solve must differ from the exact solve because the
        // coupling between rows 4 and 5 is dropped.
        let full = BlockJacobi::new(&a, 1);
        let mut z_full = vec![0.0; 10];
        full.apply(&r, &mut z_full);
        assert!(z.iter().zip(&z_full).any(|(a, b)| (a - b).abs() > 1e-9));
    }

    #[test]
    fn jacobi_inverts_diagonal() {
        let a = CsrNumeric::from_triplets(2, 2, vec![(0, 0, 2.0), (1, 1, 4.0)]);
        let j = JacobiPrecond::new(&a);
        let mut z = vec![0.0; 2];
        j.apply(&[2.0, 4.0], &mut z);
        assert_eq!(z, vec![1.0, 1.0]);
    }

    #[test]
    fn identity_copies() {
        let p = IdentityPrecond;
        let mut z = vec![0.0; 3];
        p.apply(&[1.0, 2.0, 3.0], &mut z);
        assert_eq!(z, vec![1.0, 2.0, 3.0]);
    }
}
