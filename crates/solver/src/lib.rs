//! Iterative-solver substrate: conjugate gradient with block-Jacobi/IC(0)
//! preconditioning plus a distributed per-iteration time model.
//!
//! Together these reproduce Fig. 1 of the paper — the motivating experiment
//! showing that RCM ordering speeds up a preconditioned CG solve, with the
//! advantage growing with core count:
//!
//! * iteration counts are **measured** by running the real numerics
//!   ([`pcg`] + [`BlockJacobi`]) under each ordering and block partition;
//! * per-iteration wall time is **modeled** on the Edison machine model
//!   ([`cg_iteration_cost`]): SpMV halo exchange, local compute, and dot
//!   -product AllReduces.
//!
//! ```
//! use rcm_solver::{pcg, BlockJacobi};
//! use rcm_sparse::{CooBuilder, CsrNumeric};
//!
//! // 1D Poisson problem with a small shift.
//! let mut b = CooBuilder::new(50, 50);
//! for v in 0..49u32 {
//!     b.push_sym(v, v + 1);
//! }
//! let a = CsrNumeric::laplacian_from_pattern(&b.build(), 0.1);
//! let rhs = vec![1.0; 50];
//! let m = BlockJacobi::new(&a, 4);
//! let result = pcg(&a, &rhs, &m, 1e-8, 1000);
//! assert!(result.converged);
//! ```

pub mod bjacobi;
pub mod cg;
pub mod dist_cg;
pub mod distmodel;
pub mod ic0;

pub use bjacobi::{BlockJacobi, IdentityPrecond, JacobiPrecond, Preconditioner};
pub use cg::{pcg, CgResult};
pub use dist_cg::{dist_pcg, dist_pcg_hybrid, DistCgResult};
pub use distmodel::{cg_iteration_cost, CgIterationCost};
pub use ic0::Ic0Factor;
