//! Per-iteration time model for distributed CG — the substrate of Fig. 1.
//!
//! The paper's Fig. 1 shows PETSc CG+block-Jacobi solve time on 1–256 cores
//! for `thermal2` under natural vs RCM ordering, with the RCM advantage
//! *growing* with core count ("possibly due to reduced communication
//! costs"). This module models one CG iteration on a 1D row-block
//! partition:
//!
//! * **SpMV halo exchange** — for each rank, the set of off-block columns
//!   its rows touch determines both the partner count (latency) and the
//!   exchanged volume (bandwidth). A small-bandwidth (RCM) matrix touches
//!   only neighbouring blocks; a scattered natural ordering talks to
//!   everyone, which is exactly the effect the figure demonstrates.
//! * **Local compute** — SpMV over `nnz/p` entries, block IC(0) solves,
//!   AXPYs.
//! * **Dot products** — two AllReduces per iteration.
//!
//! Combined with *measured* iteration counts from [`crate::cg::pcg`], total
//! solve time = iterations × per-iteration time.

use rcm_dist::{block_index, block_range, MachineModel};
use rcm_sparse::CscMatrix;

/// Cost summary of one CG iteration at a given rank count.
#[derive(Clone, Copy, Debug)]
pub struct CgIterationCost {
    /// Ranks in the 1D partition.
    pub ranks: usize,
    /// Local compute seconds (SpMV + preconditioner + vector ops),
    /// max over ranks.
    pub compute: f64,
    /// Halo-exchange seconds (latency + bandwidth, max over ranks).
    pub halo: f64,
    /// AllReduce seconds for the dot products.
    pub reductions: f64,
    /// Largest per-rank partner count in the halo exchange.
    pub max_partners: usize,
    /// Largest per-rank received halo volume (elements).
    pub max_halo_elems: usize,
}

impl CgIterationCost {
    /// Total seconds per iteration.
    pub fn total(&self) -> f64 {
        self.compute + self.halo + self.reductions
    }
}

/// Analyze one CG iteration of a matrix with pattern `a` distributed over
/// `ranks` contiguous row blocks on `machine`.
///
/// `factor_nnz` is the total nonzero count of the preconditioner factors
/// (two triangular sweeps per application); pass 0 for unpreconditioned CG.
pub fn cg_iteration_cost(
    a: &CscMatrix,
    machine: &MachineModel,
    ranks: usize,
    factor_nnz: usize,
) -> CgIterationCost {
    assert!(ranks >= 1);
    let n = a.n_rows();
    // --- Halo analysis: distinct off-block columns per rank ---------------
    let mut max_partners = 0usize;
    let mut max_halo = 0usize;
    let mut max_local_nnz = 0usize;
    for rank in 0..ranks {
        let (s, e) = block_range(n, ranks, rank);
        let mut partners = vec![false; ranks];
        let mut halo_cols = std::collections::BTreeSet::new();
        let mut local_nnz = 0usize;
        // Symmetric pattern: the columns referenced by rows [s, e) equal the
        // rows present in columns [s, e).
        for c in s..e {
            for &r in a.col(c) {
                local_nnz += 1;
                let r = r as usize;
                if r < s || r >= e {
                    let owner = block_index(n, ranks, r);
                    partners[owner] = true;
                    halo_cols.insert(r);
                }
            }
        }
        let pc = partners.iter().filter(|&&x| x).count();
        max_partners = max_partners.max(pc);
        max_halo = max_halo.max(halo_cols.len());
        max_local_nnz = max_local_nnz.max(local_nnz);
    }

    // --- Compute: SpMV + preconditioner + vector ops ----------------------
    let spmv = machine.edge_cost * max_local_nnz as f64;
    let precond = machine.edge_cost * 2.0 * (factor_nnz as f64 / ranks as f64);
    let vec_ops = machine.elem_cost * 6.0 * (n as f64 / ranks as f64);
    let compute = spmv + precond + vec_ops;

    // --- Communication -----------------------------------------------------
    let halo = if ranks > 1 {
        machine.alpha * max_partners as f64 + machine.beta * (max_halo * 8 * 2) as f64
    } else {
        0.0
    };
    let reductions = 2.0 * machine.t_allreduce(ranks, 8);

    CgIterationCost {
        ranks,
        compute,
        halo,
        reductions,
        max_partners,
        max_halo_elems: max_halo,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcm_core::rcm;
    use rcm_sparse::{CooBuilder, Permutation, Vidx};

    fn grid_pattern(w: usize) -> CscMatrix {
        let mut b = CooBuilder::new(w * w, w * w);
        for y in 0..w {
            for x in 0..w {
                let u = (y * w + x) as Vidx;
                if x + 1 < w {
                    b.push_sym(u, u + 1);
                }
                if y + 1 < w {
                    b.push_sym(u, u + w as Vidx);
                }
            }
        }
        b.build()
    }

    fn scrambled(a: &CscMatrix, stride: usize) -> CscMatrix {
        let n = a.n_rows();
        let p: Vec<Vidx> = (0..n).map(|i| ((i * stride) % n) as Vidx).collect();
        a.permute_sym(&Permutation::from_new_of_old(p).unwrap())
    }

    #[test]
    fn single_rank_has_no_comm() {
        let a = grid_pattern(12);
        let c = cg_iteration_cost(&a, &MachineModel::edison(), 1, 0);
        assert_eq!(c.halo, 0.0);
        assert_eq!(c.reductions, 0.0);
        assert!(c.compute > 0.0);
        assert_eq!(c.max_partners, 0);
    }

    #[test]
    fn banded_matrix_talks_to_neighbours_only() {
        let a = grid_pattern(20); // natural order: bandwidth = 20
        let c = cg_iteration_cost(&a, &MachineModel::edison(), 8, 0);
        assert!(c.max_partners <= 2, "banded: {} partners", c.max_partners);
    }

    #[test]
    fn scrambled_matrix_talks_to_everyone() {
        let a = scrambled(&grid_pattern(20), 101);
        let c = cg_iteration_cost(&a, &MachineModel::edison(), 8, 0);
        // Stride scrambling spreads each block's rows far across the index
        // space: most of the 7 possible partners are touched.
        assert!(
            c.max_partners >= 4,
            "scrambled: {} partners",
            c.max_partners
        );
    }

    #[test]
    fn rcm_reduces_halo_volume() {
        let a = scrambled(&grid_pattern(24), 91);
        let machine = MachineModel::edison();
        let natural = cg_iteration_cost(&a, &machine, 16, 0);
        let perm = rcm(&a);
        let reordered = a.permute_sym(&perm);
        let after = cg_iteration_cost(&reordered, &machine, 16, 0);
        assert!(
            after.max_halo_elems < natural.max_halo_elems / 2,
            "halo {} -> {}",
            natural.max_halo_elems,
            after.max_halo_elems
        );
        assert!(after.halo < natural.halo);
    }

    #[test]
    fn compute_shrinks_with_ranks() {
        let a = grid_pattern(24);
        let machine = MachineModel::edison();
        let c1 = cg_iteration_cost(&a, &machine, 1, 0);
        let c16 = cg_iteration_cost(&a, &machine, 16, 0);
        assert!(c16.compute < c1.compute / 8.0);
    }
}
