//! Preconditioned conjugate gradient.
//!
//! A textbook PCG driver over [`CsrNumeric`] with pluggable
//! [`Preconditioner`]s. Iteration counts from this solver combine with the
//! per-iteration time model of [`crate::distmodel`] to reproduce Fig. 1: the
//! numerics (how many iterations block-Jacobi CG needs under each ordering)
//! are *measured*, only the per-iteration wall time is modeled.

use crate::bjacobi::Preconditioner;
use rcm_sparse::CsrNumeric;

/// Outcome of a CG solve.
#[derive(Clone, Debug)]
pub struct CgResult {
    /// The computed solution.
    pub x: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the relative-residual tolerance was reached.
    pub converged: bool,
    /// Final relative residual ‖b − Ax‖₂ / ‖b‖₂.
    pub relative_residual: f64,
}

/// Solve `A x = b` with preconditioned CG.
///
/// Stops when the *recurrence* residual satisfies
/// `‖r‖ ≤ rel_tol · ‖b‖` or after `max_iter` iterations.
pub fn pcg(
    a: &CsrNumeric,
    b: &[f64],
    m: &impl Preconditioner,
    rel_tol: f64,
    max_iter: usize,
) -> CgResult {
    let n = a.n_rows();
    assert_eq!(a.n_cols(), n, "CG needs a square matrix");
    assert_eq!(b.len(), n);
    let bnorm = norm2(b).max(f64::MIN_POSITIVE);

    let mut x = vec![0.0f64; n];
    let mut r = b.to_vec();
    let mut z = vec![0.0f64; n];
    m.apply(&r, &mut z);
    let mut p = z.clone();
    let mut rz = dot(&r, &z);
    let mut ap = vec![0.0f64; n];

    let mut iterations = 0;
    let mut rnorm = norm2(&r);
    while rnorm > rel_tol * bnorm && iterations < max_iter {
        a.spmv(&p, &mut ap);
        let pap = dot(&p, &ap);
        if pap <= 0.0 || !pap.is_finite() {
            // Loss of positive-definiteness (numerically); stop.
            break;
        }
        let alpha = rz / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        m.apply(&r, &mut z);
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
        iterations += 1;
        rnorm = norm2(&r);
    }
    CgResult {
        converged: rnorm <= rel_tol * bnorm,
        relative_residual: rnorm / bnorm,
        iterations,
        x,
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bjacobi::{BlockJacobi, IdentityPrecond, JacobiPrecond};
    use rcm_sparse::{CooBuilder, Vidx};

    fn grid_laplacian(w: usize, shift: f64) -> CsrNumeric {
        let mut b = CooBuilder::new(w * w, w * w);
        for y in 0..w {
            for x in 0..w {
                let u = (y * w + x) as Vidx;
                if x + 1 < w {
                    b.push_sym(u, u + 1);
                }
                if y + 1 < w {
                    b.push_sym(u, u + w as Vidx);
                }
            }
        }
        CsrNumeric::laplacian_from_pattern(&b.build(), shift)
    }

    fn manufactured_rhs(a: &CsrNumeric) -> (Vec<f64>, Vec<f64>) {
        let n = a.n_rows();
        let x_true: Vec<f64> = (0..n).map(|i| ((i * 37 % 17) as f64) - 8.0).collect();
        let mut b = vec![0.0; n];
        a.spmv(&x_true, &mut b);
        (x_true, b)
    }

    #[test]
    fn cg_solves_spd_system() {
        let a = grid_laplacian(10, 0.3);
        let (x_true, b) = manufactured_rhs(&a);
        let res = pcg(&a, &b, &IdentityPrecond, 1e-10, 10_000);
        assert!(res.converged, "residual {}", res.relative_residual);
        let err: f64 = res
            .x
            .iter()
            .zip(&x_true)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(err < 1e-6, "error {err}");
    }

    #[test]
    fn preconditioning_reduces_iterations() {
        let a = grid_laplacian(20, 0.01);
        let (_, b) = manufactured_rhs(&a);
        let plain = pcg(&a, &b, &IdentityPrecond, 1e-8, 10_000);
        let bj = BlockJacobi::new(&a, 4);
        let pre = pcg(&a, &b, &bj, 1e-8, 10_000);
        assert!(plain.converged && pre.converged);
        assert!(
            pre.iterations < plain.iterations,
            "BJ {} vs plain {}",
            pre.iterations,
            plain.iterations
        );
    }

    #[test]
    fn jacobi_on_scaled_system_helps() {
        // Badly scaled diagonal: point Jacobi should cut iterations.
        let w = 12;
        let a = grid_laplacian(w, 0.05);
        let n = a.n_rows();
        let scaled = {
            let mut t = Vec::new();
            for i in 0..n {
                let si = 1.0 + (i % 7) as f64 * 3.0;
                for (c, v) in a.row_cols(i).iter().zip(a.row_vals(i)) {
                    let sj = 1.0 + (*c as usize % 7) as f64 * 3.0;
                    t.push((i as Vidx, *c, v * si * sj));
                }
            }
            CsrNumeric::from_triplets(n, n, t)
        };
        let (_, b) = manufactured_rhs(&scaled);
        let plain = pcg(&scaled, &b, &IdentityPrecond, 1e-8, 20_000);
        let jac = pcg(&scaled, &b, &JacobiPrecond::new(&scaled), 1e-8, 20_000);
        assert!(jac.converged);
        assert!(jac.iterations < plain.iterations);
    }

    #[test]
    fn exact_preconditioner_converges_immediately() {
        // IC(0) on a tridiagonal matrix is an exact factorization → 1 iter.
        let mut b = CooBuilder::new(30, 30);
        for v in 0..29u32 {
            b.push_sym(v, v + 1);
        }
        let a = CsrNumeric::laplacian_from_pattern(&b.build(), 0.4);
        let bj = BlockJacobi::new(&a, 1);
        let (_, rhs) = manufactured_rhs(&a);
        let res = pcg(&a, &rhs, &bj, 1e-10, 100);
        assert!(res.converged);
        assert!(res.iterations <= 2, "took {}", res.iterations);
    }

    #[test]
    fn max_iter_caps_work() {
        let a = grid_laplacian(16, 0.001);
        let (_, b) = manufactured_rhs(&a);
        let res = pcg(&a, &b, &IdentityPrecond, 1e-14, 3);
        assert_eq!(res.iterations, 3);
        assert!(!res.converged);
    }

    #[test]
    fn zero_rhs_returns_zero() {
        let a = grid_laplacian(5, 0.2);
        let res = pcg(&a, &[0.0; 25], &IdentityPrecond, 1e-10, 100);
        assert!(res.converged);
        assert_eq!(res.iterations, 0);
        assert!(res.x.iter().all(|&v| v == 0.0));
    }
}
