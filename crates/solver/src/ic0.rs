//! Zero-fill incomplete Cholesky factorization, IC(0).
//!
//! PETSc's block-Jacobi preconditioner (the Fig. 1 baseline) factors each
//! diagonal block with an incomplete factorization; we use IC(0): the factor
//! `L` keeps exactly the sparsity of the lower triangle of `A`. Breakdown
//! (non-positive pivot) is handled the standard way — shift the diagonal by
//! a growing multiple of its magnitude and refactor.

use rcm_sparse::{CsrNumeric, Vidx};

/// An IC(0) factor `A ≈ L·Lᵀ` stored row-wise (strictly lower part plus a
/// separate diagonal).
#[derive(Clone, Debug)]
pub struct Ic0Factor {
    n: usize,
    /// Row pointers into `cols`/`vals` (strictly lower triangle).
    row_ptr: Vec<usize>,
    cols: Vec<Vidx>,
    vals: Vec<f64>,
    diag: Vec<f64>,
    /// Diagonal shift that was needed for a successful factorization.
    pub shift_used: f64,
}

impl Ic0Factor {
    /// Factor a symmetric positive-(semi)definite matrix.
    ///
    /// Returns `None` only for structurally empty inputs of size 0.
    pub fn new(a: &CsrNumeric) -> Ic0Factor {
        assert_eq!(a.n_rows(), a.n_cols(), "IC(0) needs a square matrix");
        let n = a.n_rows();
        let mut shift = 0.0f64;
        // Mean absolute diagonal, used to scale the breakdown shift.
        let diag_scale = if n > 0 {
            (0..n)
                .map(|i| a.get(i as Vidx, i as Vidx).abs())
                .sum::<f64>()
                / n as f64
        } else {
            1.0
        }
        .max(1e-30);
        loop {
            match Self::try_factor(a, shift) {
                Some(f) => return f,
                None => {
                    shift = if shift == 0.0 {
                        1e-3 * diag_scale
                    } else {
                        shift * 4.0
                    };
                    assert!(
                        shift < 1e6 * diag_scale,
                        "IC(0) cannot stabilize this matrix; is it symmetric?"
                    );
                }
            }
        }
    }

    fn try_factor(a: &CsrNumeric, shift: f64) -> Option<Ic0Factor> {
        let n = a.n_rows();
        let mut row_ptr = vec![0usize; n + 1];
        let mut cols: Vec<Vidx> = Vec::new();
        let mut vals: Vec<f64> = Vec::new();
        let mut diag = vec![0.0f64; n];
        for i in 0..n {
            // Strictly-lower pattern of row i, ascending.
            let arow_cols = a.row_cols(i);
            let arow_vals = a.row_vals(i);
            let mut aii = shift;
            for (idx, &j) in arow_cols.iter().enumerate() {
                let j = j as usize;
                if j < i {
                    // L[i][j] = (A[i][j] − Σ_k L[i][k]·L[j][k] for k < j) / L[j][j]
                    let dot = sparse_row_dot(
                        &cols[row_ptr[i]..],
                        &vals[row_ptr[i]..],
                        &cols[row_ptr[j]..row_ptr[j + 1]],
                        &vals[row_ptr[j]..row_ptr[j + 1]],
                        j as Vidx,
                    );
                    let lij = (arow_vals[idx] - dot) / diag[j];
                    cols.push(j as Vidx);
                    vals.push(lij);
                } else if j == i {
                    aii += arow_vals[idx];
                }
            }
            // L[i][i] = sqrt(A[i][i] − Σ L[i][k]²)
            let sumsq: f64 = vals[row_ptr[i]..].iter().map(|v| v * v).sum();
            let pivot = aii - sumsq;
            if pivot <= 0.0 || !pivot.is_finite() {
                return None;
            }
            diag[i] = pivot.sqrt();
            row_ptr[i + 1] = cols.len();
        }
        Some(Ic0Factor {
            n,
            row_ptr,
            cols,
            vals,
            diag,
            shift_used: shift,
        })
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Stored strictly-lower nonzeros.
    pub fn nnz_lower(&self) -> usize {
        self.cols.len()
    }

    /// Solve `L·Lᵀ·x = b` in place (`x` enters holding `b`).
    pub fn solve_in_place(&self, x: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        // Forward: L y = b.
        for i in 0..self.n {
            let mut acc = x[i];
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                acc -= self.vals[k] * x[self.cols[k] as usize];
            }
            x[i] = acc / self.diag[i];
        }
        // Backward: Lᵀ x = y.
        for i in (0..self.n).rev() {
            let xi = x[i] / self.diag[i];
            x[i] = xi;
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                x[self.cols[k] as usize] -= self.vals[k] * xi;
            }
        }
    }
}

/// Dot product of two sparse rows, restricted to columns `< cap`, given
/// ascending column order. Used for the `Σ_k L[i][k]·L[j][k]` terms.
fn sparse_row_dot(c1: &[Vidx], v1: &[f64], c2: &[Vidx], v2: &[f64], cap: Vidx) -> f64 {
    let mut acc = 0.0;
    let (mut i, mut j) = (0usize, 0usize);
    while i < c1.len() && j < c2.len() {
        let (a, b) = (c1[i], c2[j]);
        if a >= cap || b >= cap {
            break;
        }
        match a.cmp(&b) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                acc += v1[i] * v2[j];
                i += 1;
                j += 1;
            }
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_spd3() -> CsrNumeric {
        // [[4,1,0],[1,3,1],[0,1,2]] — SPD, tridiagonal → IC(0) is exact.
        CsrNumeric::from_triplets(
            3,
            3,
            vec![
                (0, 0, 4.0),
                (0, 1, 1.0),
                (1, 0, 1.0),
                (1, 1, 3.0),
                (1, 2, 1.0),
                (2, 1, 1.0),
                (2, 2, 2.0),
            ],
        )
    }

    #[test]
    fn exact_on_tridiagonal() {
        let a = dense_spd3();
        let f = Ic0Factor::new(&a);
        assert_eq!(f.shift_used, 0.0);
        // Solve A x = b for known x.
        let x_true = vec![1.0, -2.0, 0.5];
        let mut b = vec![0.0; 3];
        a.spmv(&x_true, &mut b);
        let mut x = b;
        f.solve_in_place(&mut x);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12, "{x:?}");
        }
    }

    #[test]
    fn factor_dimensions() {
        let f = Ic0Factor::new(&dense_spd3());
        assert_eq!(f.n(), 3);
        assert_eq!(f.nnz_lower(), 2); // (1,0) and (2,1)
    }

    #[test]
    fn laplacian_block_factors_without_shift() {
        // Shifted graph Laplacian of a path is SPD and tridiagonal.
        let mut b = rcm_sparse::CooBuilder::new(20, 20);
        for v in 0..19u32 {
            b.push_sym(v, v + 1);
        }
        let pat = b.build();
        let a = CsrNumeric::laplacian_from_pattern(&pat, 0.1);
        let f = Ic0Factor::new(&a);
        assert_eq!(f.shift_used, 0.0);
        let mut x = vec![1.0; 20];
        f.solve_in_place(&mut x);
        assert!(x.iter().all(|v| v.is_finite() && *v > 0.0));
    }

    #[test]
    fn indefinite_matrix_gets_shifted() {
        // Diagonal with a negative entry forces the shift path.
        let a = CsrNumeric::from_triplets(2, 2, vec![(0, 0, -1.0), (1, 1, 2.0)]);
        let f = Ic0Factor::new(&a);
        assert!(f.shift_used > 0.0);
        let mut x = vec![1.0, 1.0];
        f.solve_in_place(&mut x);
        assert!(x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn empty_matrix() {
        let a = CsrNumeric::from_triplets(0, 0, vec![]);
        let f = Ic0Factor::new(&a);
        assert_eq!(f.n(), 0);
        let mut x: Vec<f64> = vec![];
        f.solve_in_place(&mut x);
    }
}
