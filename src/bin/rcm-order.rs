//! `rcm-order` — command-line matrix reordering tool.
//!
//! ```text
//! rcm-order <input.mtx | suite:NAME> [<input2.mtx> ...] [options]
//!
//! options:
//!   --method <rcm|cm|sloan|nosort|globalsort>   ordering heuristic (default rcm)
//!   --backend <serial|pooled|dist|hybrid>       RcmRuntime backend for --method rcm
//!                          (pooled uses --threads workers; dist runs 16
//!                          simulated ranks, hybrid 24 cores x 6 t/p — all
//!                          bit-identical, parity with `repro backends`)
//!   --compress             order through supervariable compression
//!                          (--method rcm only, not composable with
//!                          --backend — the quotient pipeline is
//!                          sequential; reports the ratio)
//!   --cache                give the warm engine a pattern-fingerprint
//!                          ordering cache (--method rcm only): repeated
//!                          patterns across the input list are served in
//!                          O(nnz) hash time, each summary line reports
//!                          cache hit/miss, and a multi-input run prints
//!                          the cache totals at the end
//!   --start-node <s>       start-node selection strategy for --method rcm:
//!                          george-liu (default), bi-criteria (RCM++,
//!                          fewer sweeps), min-degree (zero sweeps), or
//!                          fixed:N / a bare vertex number; overrides
//!                          RCM_START_NODE
//!   --split-components     schedule connected components as independent
//!                          ordering jobs (--method rcm only, not
//!                          composable with --compress): detect, order
//!                          each piece on the configured backend, stitch —
//!                          bit-identical to the whole-matrix driver; the
//!                          summary line reports the component count
//!   --scale <f>            suite generation scale (suite: inputs only)
//!   --write-perm <file>    write the permutation (one new label per line)
//!   --write-matrix <file>  write the reordered matrix in Matrix Market form
//!   --simulate <cores,..>  also run the simulated distributed RCM
//!   --threads <t>          threads/process for the simulation and for
//!                          --backend pooled; overrides RCM_THREADS
//!                          (default: first entry of RCM_THREADS, else 6)
//! ```
//!
//! Inputs are Matrix Market files; `suite:ldoor` style names generate the
//! corresponding synthetic stand-in instead. **Multiple inputs are ordered
//! through one warm `OrderingEngine`** — backend construction, worker
//! threads, and workspaces are paid once for the whole invocation. All
//! inputs are loaded up front; the first bad file aborts with exit code 2
//! naming it. `--write-perm`/`--write-matrix` require exactly one input.
//!
//! The frontier-expansion direction follows `RCM_DIRECTION`
//! (push|pull|adaptive, default adaptive); every setting produces the
//! identical ordering.

use distributed_rcm::core::driver::StartNode;
use distributed_rcm::core::{
    cuthill_mckee, ordering_wavefront, rcm_globalsort, rcm_nosort, thread_counts_from_env,
    CacheOutcome, EngineConfig, OrderingEngine,
};
use distributed_rcm::dist::HybridConfig;
use distributed_rcm::prelude::*;
use distributed_rcm::sparse::mm;

struct Options {
    inputs: Vec<String>,
    method: String,
    backend: Option<String>,
    compress: bool,
    cache: bool,
    split: bool,
    start_node: Option<StartNode>,
    scale: Option<f64>,
    write_perm: Option<String>,
    write_matrix: Option<String>,
    simulate: Vec<usize>,
    threads: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: rcm-order <input.mtx | suite:NAME> [<input2> ...]\n\
         \x20                [--method rcm|cm|sloan|nosort|globalsort]\n\
         \x20                [--backend serial|pooled|dist|hybrid] [--compress] [--cache]\n\
         \x20                [--split-components]\n\
         \x20                [--start-node george-liu|bi-criteria|min-degree|fixed:N]\n\
         \x20                [--scale f] [--write-perm FILE] [--write-matrix FILE]\n\
         \x20                [--simulate CORES,CORES,...] [--threads T]"
    );
    std::process::exit(2);
}

/// Thread-count default: the first entry of `RCM_THREADS` when set (the
/// same environment knob the test sweeps use), else 6. An explicit
/// `--threads` always overrides it.
fn default_threads() -> usize {
    thread_counts_from_env(&[6])[0]
}

fn parse_args() -> Options {
    let mut opts = Options {
        inputs: Vec::new(),
        method: "rcm".into(),
        backend: None,
        compress: false,
        cache: false,
        split: false,
        start_node: None,
        scale: None,
        write_perm: None,
        write_matrix: None,
        simulate: Vec::new(),
        threads: default_threads(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--method" => opts.method = args.next().unwrap_or_else(|| usage()),
            "--backend" => opts.backend = Some(args.next().unwrap_or_else(|| usage())),
            "--compress" => opts.compress = true,
            "--cache" => opts.cache = true,
            "--split-components" => opts.split = true,
            "--start-node" => {
                let spec = args.next().unwrap_or_else(|| usage());
                opts.start_node = Some(StartNode::parse(&spec).unwrap_or_else(|| {
                    eprintln!(
                        "unknown start-node strategy {spec}: valid strategies are \
                         george-liu|bi-criteria|min-degree|fixed:N"
                    );
                    std::process::exit(2);
                }));
            }
            "--scale" => {
                opts.scale = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--write-perm" => opts.write_perm = Some(args.next().unwrap_or_else(|| usage())),
            "--write-matrix" => opts.write_matrix = Some(args.next().unwrap_or_else(|| usage())),
            "--simulate" => {
                let list = args.next().unwrap_or_else(|| usage());
                opts.simulate = list
                    .split(',')
                    .map(|s| s.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
            }
            "--threads" => {
                opts.threads = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            other => opts.inputs.push(other.to_string()),
        }
    }
    if opts.inputs.is_empty() {
        usage();
    }
    opts
}

fn load(name: &str, opts: &Options) -> CscMatrix {
    if let Some(suite_name) = name.strip_prefix("suite:") {
        let m = suite_matrix(suite_name).unwrap_or_else(|| {
            eprintln!("unknown suite matrix {suite_name}");
            std::process::exit(2);
        });
        return m.generate(opts.scale.unwrap_or(m.default_scale));
    }
    // Unknown paths and malformed Matrix Market input are usage errors:
    // exit 2 with a message naming the file, never a panic.
    let a = mm::read_pattern_file(name).unwrap_or_else(|e| {
        eprintln!("cannot load Matrix Market file {name}: {e}");
        std::process::exit(2);
    });
    if a.is_symmetric() {
        a
    } else {
        eprintln!("note: symmetrizing structurally unsymmetric input (A + Aᵀ)");
        let mut b = CooBuilder::new(a.n_rows(), a.n_cols());
        for (r, c) in a.iter_entries() {
            b.push_sym(r, c);
        }
        b.build()
    }
}

fn main() {
    let opts = parse_args();
    if (opts.write_perm.is_some() || opts.write_matrix.is_some()) && opts.inputs.len() > 1 {
        eprintln!(
            "--write-perm/--write-matrix apply to a single input (got {})",
            opts.inputs.len()
        );
        std::process::exit(2);
    }

    // --backend picks the RcmRuntime executing the generic algebraic
    // driver (parity with `repro backends`); the ordering is bit-identical
    // across all four, so it composes only with the rcm method.
    let backend_kind = opts.backend.as_deref().map(|name| match name {
        "serial" => BackendKind::Serial,
        "pooled" => BackendKind::Pooled {
            threads: opts.threads.max(1),
        },
        "dist" => BackendKind::Dist { cores: 16 },
        "hybrid" => BackendKind::Hybrid {
            cores: 24,
            threads_per_proc: 6,
        },
        other => {
            eprintln!("unknown backend {other}: valid backends are serial|pooled|dist|hybrid");
            std::process::exit(2);
        }
    });
    if backend_kind.is_some() && opts.method != "rcm" {
        eprintln!(
            "--backend applies only to --method rcm (got {}): the other heuristics \
             have no RcmRuntime formulation",
            opts.method
        );
        std::process::exit(2);
    }
    if opts.compress && opts.method != "rcm" {
        eprintln!(
            "--compress applies only to --method rcm (got {}): compression wraps the \
             RCM pipeline",
            opts.method
        );
        std::process::exit(2);
    }
    if opts.compress && backend_kind.is_some() {
        eprintln!(
            "--compress does not compose with --backend: the compressed quotient is \
             ordered by the sequential George-Liu pipeline"
        );
        std::process::exit(2);
    }
    if opts.cache && opts.method != "rcm" {
        eprintln!(
            "--cache applies only to --method rcm (got {}): the pattern cache lives \
             in the warm ordering engine",
            opts.method
        );
        std::process::exit(2);
    }
    if opts.split && opts.method != "rcm" {
        eprintln!(
            "--split-components applies only to --method rcm (got {}): component \
             scheduling lives in the warm ordering engine",
            opts.method
        );
        std::process::exit(2);
    }
    if opts.start_node.is_some() && opts.method != "rcm" {
        eprintln!(
            "--start-node applies only to --method rcm (got {}): the other heuristics \
             pick their own start vertices",
            opts.method
        );
        std::process::exit(2);
    }
    if opts.split && opts.compress {
        eprintln!(
            "--split-components does not compose with --compress: the quotient \
             pipeline has its own traversal"
        );
        std::process::exit(2);
    }

    // Load every input up front so the first bad file aborts before any
    // ordering work (exit 2, naming the file).
    let matrices: Vec<(String, CscMatrix)> = opts
        .inputs
        .iter()
        .map(|name| (name.clone(), load(name, &opts)))
        .collect();

    // One warm engine serves every input of the invocation.
    let mut engine = (opts.method == "rcm").then(|| {
        let mut builder = EngineConfig::builder()
            .backend(backend_kind.unwrap_or(BackendKind::Serial))
            .compress(opts.compress)
            .split_components(opts.split);
        if let Some(sn) = opts.start_node {
            builder = builder.start_node(sn);
        }
        if opts.cache {
            builder = builder.cache(CacheConfig::default());
        }
        OrderingEngine::new(builder.build())
    });

    for (idx, (name, a)) in matrices.iter().enumerate() {
        if idx > 0 {
            println!();
        }
        println!(
            "{name}: {} rows, {} nnz, avg degree {:.1}",
            a.n_rows(),
            a.nnz(),
            a.nnz() as f64 / a.n_rows().max(1) as f64
        );

        let mut engine_report = None;
        let mut method_perm = None;
        match engine.as_mut() {
            Some(engine) => engine_report = Some(engine.order(a)),
            None => {
                let t0 = std::time::Instant::now();
                let perm = match opts.method.as_str() {
                    "cm" => cuthill_mckee(a).0,
                    "sloan" => sloan(a),
                    "nosort" => rcm_nosort(a),
                    "globalsort" => rcm_globalsort(a),
                    other => {
                        eprintln!("unknown method {other}");
                        usage();
                    }
                };
                println!("{} ordering computed in {:?}", opts.method, t0.elapsed());
                method_perm = Some(perm);
            }
        };
        let perm = engine_report
            .as_ref()
            .map(|r| &r.perm)
            .or(method_perm.as_ref())
            .expect("one of the branches produced a permutation");

        let q = quality_report(a, perm);
        if let Some(report) = &engine_report {
            let cache_note = match report.cache {
                Some(CacheOutcome::Hit) => ", cache hit",
                Some(CacheOutcome::Miss) => ", cache miss",
                None => "",
            };
            match backend_kind {
                Some(kind) => println!(
                    "rcm ordering computed in {:.3}ms on the {} backend (warm engine{cache_note})",
                    report.wall_seconds * 1e3,
                    kind.name()
                ),
                None => println!(
                    "rcm ordering computed in {:.3}ms (warm engine{cache_note})",
                    report.wall_seconds * 1e3
                ),
            }
            if let Some(c) = &report.compress {
                println!(
                    "  compression: {} vertices -> {} supervariables (ratio {:.2})",
                    c.vertices, c.supervariables, c.ratio
                );
            }
            if opts.split {
                println!(
                    "  components: {} (scheduled as independent jobs)",
                    report.stats.components
                );
            }
            if let Some(p) = report.peripheral_first() {
                let strategy = opts.start_node.unwrap_or_else(StartNode::from_env);
                println!(
                    "  peripheral: {} strategy, {} sweep(s), start vertex {}, eccentricity {}",
                    strategy.name(),
                    report.peripheral_sweeps(),
                    p.start,
                    p.eccentricity
                );
            }
        }
        println!(
            "  bandwidth: {} -> {}",
            q.bandwidth_before, q.bandwidth_after
        );
        println!("  profile:   {} -> {}", q.profile_before, q.profile_after);
        let (maxw, rmsw) = ordering_wavefront(a, perm);
        println!("  wavefront: max {maxw}, rms {rmsw:.1}");

        if let Some(path) = &opts.write_perm {
            let mut text = String::with_capacity(perm.len() * 8);
            for v in 0..perm.len() {
                text.push_str(&perm.new_of(v as u32).to_string());
                text.push('\n');
            }
            std::fs::write(path, text).expect("write permutation");
            println!("wrote permutation to {path}");
        }
        if let Some(path) = &opts.write_matrix {
            mm::write_pattern_file(&a.permute_sym(perm), path).expect("write reordered matrix");
            println!("wrote reordered matrix to {path}");
        }

        if !opts.simulate.is_empty() {
            println!(
                "\nsimulated distributed RCM (Edison model, {} threads/process):",
                opts.threads
            );
            println!(
                "{:>8} {:>6} {:>12} {:>12} {:>10}",
                "cores", "grid", "compute", "comm", "total"
            );
            for &cores in &opts.simulate {
                let cfg = DistRcmConfig {
                    machine: MachineModel::edison(),
                    hybrid: HybridConfig::new(cores, opts.threads),
                    balance_seed: Some(1),
                    sort_mode: SortMode::Full,
                    direction: ExpandDirection::from_env(),
                    start_node: opts.start_node.unwrap_or_else(StartNode::from_env),
                };
                if cfg.hybrid.grid().is_none() {
                    println!(
                        "{cores:>8}  (skipped: {} processes is not a square)",
                        cfg.hybrid.nprocs()
                    );
                    continue;
                }
                let r = dist_rcm(a, &cfg);
                println!(
                    "{:>8} {:>4}x{:<2} {:>11.4}s {:>11.4}s {:>9.4}s",
                    cores,
                    r.grid_side,
                    r.grid_side,
                    r.breakdown.compute_total(),
                    r.breakdown.comm_total(),
                    r.sim_seconds
                );
            }
        }
    }

    // Multi-input cache totals: how much of the invocation was served
    // from the pattern cache.
    if matrices.len() > 1 {
        if let Some(stats) = engine.as_ref().and_then(|e| e.cache_stats()) {
            println!(
                "\ncache: {} hits, {} misses, {} entries ({} nnz stored)",
                stats.hits, stats.misses, stats.entries, stats.stored_nnz
            );
        }
    }
}
