//! `rcm-order` — command-line matrix reordering tool.
//!
//! ```text
//! rcm-order <input.mtx | suite:NAME> [options]
//!
//! options:
//!   --method <rcm|cm|sloan|nosort|globalsort>   ordering heuristic (default rcm)
//!   --backend <serial|pooled|dist|hybrid>       RcmRuntime backend for --method rcm
//!                          (pooled uses --threads workers; dist runs 16
//!                          simulated ranks, hybrid 24 cores x 6 t/p — all
//!                          bit-identical, parity with `repro backends`)
//!   --scale <f>            suite generation scale (suite: inputs only)
//!   --write-perm <file>    write the permutation (one new label per line)
//!   --write-matrix <file>  write the reordered matrix in Matrix Market form
//!   --simulate <cores,..>  also run the simulated distributed RCM
//!   --threads <t>          threads/process for the simulation and for
//!                          --backend pooled (default 6)
//! ```
//!
//! Inputs are Matrix Market files; `suite:ldoor` style names generate the
//! corresponding synthetic stand-in instead. The frontier-expansion
//! direction follows `RCM_DIRECTION` (push|pull|adaptive, default
//! adaptive); every setting produces the identical ordering.

use distributed_rcm::core::{cuthill_mckee, rcm_globalsort, rcm_nosort};
use distributed_rcm::dist::HybridConfig;
use distributed_rcm::prelude::*;
use distributed_rcm::sparse::mm;

struct Options {
    input: String,
    method: String,
    backend: Option<String>,
    scale: Option<f64>,
    write_perm: Option<String>,
    write_matrix: Option<String>,
    simulate: Vec<usize>,
    threads: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: rcm-order <input.mtx | suite:NAME> [--method rcm|cm|sloan|nosort|globalsort]\n\
         \x20                [--backend serial|pooled|dist|hybrid]\n\
         \x20                [--scale f] [--write-perm FILE] [--write-matrix FILE]\n\
         \x20                [--simulate CORES,CORES,...] [--threads T]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        input: String::new(),
        method: "rcm".into(),
        backend: None,
        scale: None,
        write_perm: None,
        write_matrix: None,
        simulate: Vec::new(),
        threads: 6,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--method" => opts.method = args.next().unwrap_or_else(|| usage()),
            "--backend" => opts.backend = Some(args.next().unwrap_or_else(|| usage())),
            "--scale" => {
                opts.scale = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--write-perm" => opts.write_perm = Some(args.next().unwrap_or_else(|| usage())),
            "--write-matrix" => opts.write_matrix = Some(args.next().unwrap_or_else(|| usage())),
            "--simulate" => {
                let list = args.next().unwrap_or_else(|| usage());
                opts.simulate = list
                    .split(',')
                    .map(|s| s.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
            }
            "--threads" => {
                opts.threads = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            other if opts.input.is_empty() => opts.input = other.to_string(),
            _ => usage(),
        }
    }
    if opts.input.is_empty() {
        usage();
    }
    opts
}

fn load(opts: &Options) -> CscMatrix {
    if let Some(name) = opts.input.strip_prefix("suite:") {
        let m = suite_matrix(name).unwrap_or_else(|| {
            eprintln!("unknown suite matrix {name}");
            std::process::exit(2);
        });
        return m.generate(opts.scale.unwrap_or(m.default_scale));
    }
    // Unknown paths and malformed Matrix Market input are usage errors:
    // exit 2 with a message naming the file, never a panic.
    let a = mm::read_pattern_file(&opts.input).unwrap_or_else(|e| {
        eprintln!("cannot load Matrix Market file {}: {e}", opts.input);
        std::process::exit(2);
    });
    if a.is_symmetric() {
        a
    } else {
        eprintln!("note: symmetrizing structurally unsymmetric input (A + Aᵀ)");
        let mut b = CooBuilder::new(a.n_rows(), a.n_cols());
        for (r, c) in a.iter_entries() {
            b.push_sym(r, c);
        }
        b.build()
    }
}

fn main() {
    let opts = parse_args();
    let a = load(&opts);
    println!(
        "matrix: {} rows, {} nnz, avg degree {:.1}",
        a.n_rows(),
        a.nnz(),
        a.nnz() as f64 / a.n_rows().max(1) as f64
    );

    // --backend picks the RcmRuntime executing the generic algebraic
    // driver (parity with `repro backends`); the ordering is bit-identical
    // across all four, so it composes only with the rcm method.
    let backend_kind = opts.backend.as_deref().map(|name| match name {
        "serial" => BackendKind::Serial,
        "pooled" => BackendKind::Pooled {
            threads: opts.threads.max(1),
        },
        "dist" => BackendKind::Dist { cores: 16 },
        "hybrid" => BackendKind::Hybrid {
            cores: 24,
            threads_per_proc: 6,
        },
        other => {
            eprintln!("unknown backend {other}: valid backends are serial|pooled|dist|hybrid");
            std::process::exit(2);
        }
    });
    if backend_kind.is_some() && opts.method != "rcm" {
        eprintln!(
            "--backend applies only to --method rcm (got {}): the other heuristics \
             have no RcmRuntime formulation",
            opts.method
        );
        std::process::exit(2);
    }

    let t0 = std::time::Instant::now();
    let perm = match backend_kind {
        Some(kind) => rcm_with_backend(&a, kind),
        None => match opts.method.as_str() {
            "rcm" => rcm(&a),
            "cm" => cuthill_mckee(&a).0,
            "sloan" => sloan(&a),
            "nosort" => rcm_nosort(&a),
            "globalsort" => rcm_globalsort(&a),
            other => {
                eprintln!("unknown method {other}");
                usage();
            }
        },
    };
    let dt = t0.elapsed();
    let q = quality_report(&a, &perm);
    let (maxw, rmsw) = ordering_wavefront(&a, &perm);
    match backend_kind {
        Some(kind) => println!(
            "{} ordering computed in {dt:?} on the {} backend",
            opts.method,
            kind.name()
        ),
        None => println!("{} ordering computed in {dt:?}", opts.method),
    }
    println!(
        "  bandwidth: {} -> {}",
        q.bandwidth_before, q.bandwidth_after
    );
    println!("  profile:   {} -> {}", q.profile_before, q.profile_after);
    println!("  wavefront: max {maxw}, rms {rmsw:.1}");

    if let Some(path) = &opts.write_perm {
        let mut text = String::with_capacity(perm.len() * 8);
        for v in 0..perm.len() {
            text.push_str(&perm.new_of(v as u32).to_string());
            text.push('\n');
        }
        std::fs::write(path, text).expect("write permutation");
        println!("wrote permutation to {path}");
    }
    if let Some(path) = &opts.write_matrix {
        mm::write_pattern_file(&a.permute_sym(&perm), path).expect("write reordered matrix");
        println!("wrote reordered matrix to {path}");
    }

    if !opts.simulate.is_empty() {
        println!(
            "\nsimulated distributed RCM (Edison model, {} threads/process):",
            opts.threads
        );
        println!(
            "{:>8} {:>6} {:>12} {:>12} {:>10}",
            "cores", "grid", "compute", "comm", "total"
        );
        for &cores in &opts.simulate {
            let cfg = DistRcmConfig {
                machine: MachineModel::edison(),
                hybrid: HybridConfig::new(cores, opts.threads),
                balance_seed: Some(1),
                sort_mode: SortMode::Full,
                direction: ExpandDirection::from_env(),
            };
            if cfg.hybrid.grid().is_none() {
                println!(
                    "{cores:>8}  (skipped: {} processes is not a square)",
                    cfg.hybrid.nprocs()
                );
                continue;
            }
            let r = dist_rcm(&a, &cfg);
            println!(
                "{:>8} {:>4}x{:<2} {:>11.4}s {:>11.4}s {:>9.4}s",
                cores,
                r.grid_side,
                r.grid_side,
                r.breakdown.compute_total(),
                r.breakdown.comm_total(),
                r.sim_seconds
            );
        }
    }
}
