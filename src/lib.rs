//! # distributed-rcm
//!
//! A from-scratch Rust reproduction of *"The Reverse Cuthill-McKee Algorithm
//! in Distributed-Memory"* (Azad, Jacquelin, Buluç, Ng — IPDPS 2017),
//! packaged as one facade crate re-exporting the workspace:
//!
//! * [`sparse`] — CSC/COO pattern matrices, sparse vectors, semirings,
//!   SpMSpV, bandwidth/envelope metrics, Matrix Market I/O.
//! * [`graphgen`] — synthetic stand-ins for the paper's evaluation suite.
//! * [`dist`] — the simulated distributed runtime: 2D process grid, α–β
//!   machine model, collectives, distributed Table-I primitives.
//! * [`core`] — RCM itself: the generic Table-I driver
//!   (`core::driver::RcmRuntime` + `core::driver::drive_cm`) with serial,
//!   pooled, distributed and hybrid backends, plus the classical
//!   George–Liu implementation.
//! * [`solver`] — CG + block-Jacobi/IC(0) and the Fig. 1 time model.
//!
//! ## Quickstart
//!
//! ```
//! use distributed_rcm::prelude::*;
//!
//! // Generate a small suite matrix and reorder it.
//! let matrix = suite_matrix("ldoor").unwrap().generate(0.002);
//! let perm = rcm(&matrix);
//! let report = quality_report(&matrix, &perm);
//! assert!(report.bandwidth_after < report.bandwidth_before);
//!
//! // Simulate the distributed algorithm on 216 cores (6 threads/process).
//! let cfg = DistRcmConfig::hybrid_on_edison(216);
//! let result = dist_rcm(&matrix, &cfg);
//! assert_eq!(result.perm.len(), matrix.n_rows());
//! println!("simulated time: {:.3}s", result.sim_seconds);
//! ```

pub use rcm_core as core;
pub use rcm_dist as dist;
pub use rcm_graphgen as graphgen;
pub use rcm_solver as solver;
pub use rcm_sparse as sparse;

/// One-stop imports for applications: the per-call entry points, the warm
/// engine tier, and the service tier (submit/poll front door, pattern
/// cache). Lower-level items (level structures, quality breakdowns, the
/// simulated runtime's internals) stay behind their modules.
pub mod prelude {
    pub use rcm_core::{
        algebraic_rcm, dist_rcm, ordering_bandwidth, par_rcm, quality_report, rcm,
        rcm_with_backend, sloan, BackendKind, CacheConfig, CacheOutcome, CacheStats, DistRcmConfig,
        DistRcmResult, EngineConfig, EngineConfigBuilder, ExpandDirection, JobHandle,
        OrderingEngine, OrderingReport, OrderingRequest, OrderingService, PeripheralStat,
        RcmRuntime, ServiceConfig, ServiceStats, SortMode, StartNode,
    };
    pub use rcm_dist::{HybridConfig, MachineModel};
    pub use rcm_graphgen::{suite, suite_matrix, SuiteMatrix};
    pub use rcm_solver::{cg_iteration_cost, pcg, BlockJacobi, Preconditioner};
    pub use rcm_sparse::{
        connected_components, matrix_bandwidth, ComponentSplit, CooBuilder, CscMatrix, CsrNumeric,
        Permutation,
    };
}
