//! Warm-engine reuse equivalence — the workspace-poisoning check of the
//! `OrderingEngine` layer: one engine reused across a hostile sequence of
//! matrices (huge → degenerate → star/path/forest → huge) must return
//! permutations bit-identical to fresh single-shot `rcm_with_backend`
//! calls on every backend, at every `RCM_THREADS` count and under every
//! `RCM_DIRECTION` policy (CI sweeps both). Plus the growth-event test:
//! a warm engine's install-managed buffers stop growing once it has seen
//! its largest matrix.

use distributed_rcm::core::{
    rcm_with_backend, thread_counts_from_env, BackendKind, EngineConfig, OrderingEngine,
};
use distributed_rcm::prelude::*;
use distributed_rcm::sparse::Vidx;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn grid_graph(w: usize, stride: usize) -> CscMatrix {
    let mut b = CooBuilder::new(w * w, w * w);
    for y in 0..w {
        for x in 0..w {
            let u = (y * w + x) as Vidx;
            if x + 1 < w {
                b.push_sym(u, u + 1);
            }
            if y + 1 < w {
                b.push_sym(u, u + w as Vidx);
            }
        }
    }
    let n = w * w;
    let perm: Vec<Vidx> = (0..n).map(|i| ((i * stride) % n) as Vidx).collect();
    b.build()
        .permute_sym(&Permutation::from_new_of_old(perm).unwrap())
}

fn star(n: usize) -> CscMatrix {
    let mut b = CooBuilder::new(n, n);
    for v in 1..n as Vidx {
        b.push_sym(0, v);
    }
    b.build()
}

fn path(n: usize) -> CscMatrix {
    let mut b = CooBuilder::new(n, n);
    for v in 0..(n - 1) as Vidx {
        b.push_sym(v, v + 1);
    }
    b.build()
}

fn forest() -> CscMatrix {
    // A 7-path, a 5-star, two 2-edges, isolated rest: pull masks span
    // not-yet-ordered components.
    let mut b = CooBuilder::new(30, 30);
    for v in 0..6u32 {
        b.push_sym(v, v + 1);
    }
    for v in 8..12u32 {
        b.push_sym(7, v);
    }
    b.push_sym(13, 14);
    b.push_sym(16, 15);
    b.build()
}

/// The hostile reuse sequence: a huge matrix first (buffers grow to their
/// high-water mark), then shapes engineered to expose stale state — empty
/// and single-vertex installs, a star (one fat level), a path (hundreds of
/// singleton frontiers), a disconnected forest — then a *different* huge
/// matrix again.
fn hostile_sequence() -> Vec<(&'static str, CscMatrix)> {
    vec![
        ("huge-grid", grid_graph(40, 13)),
        ("empty", CscMatrix::empty(0)),
        ("single-vertex", CscMatrix::empty(1)),
        ("star", star(41)),
        ("path", path(37)),
        ("forest", forest()),
        ("huge-grid-2", grid_graph(36, 17)),
    ]
}

/// Backends to sweep: serial, pooled at every `RCM_THREADS` count, dist,
/// hybrid.
fn backend_kinds() -> Vec<BackendKind> {
    let mut kinds = vec![BackendKind::Serial];
    kinds.extend(
        thread_counts_from_env(&[1, 3])
            .into_iter()
            .map(|threads| BackendKind::Pooled { threads }),
    );
    kinds.push(BackendKind::Dist { cores: 4 });
    kinds.push(BackendKind::Hybrid {
        cores: 24,
        threads_per_proc: 6,
    });
    kinds
}

#[test]
fn warm_engine_survives_the_hostile_sequence_on_every_backend() {
    let sequence = hostile_sequence();
    for kind in backend_kinds() {
        let mut engine = OrderingEngine::new(EngineConfig::builder().backend(kind).build());
        for (name, a) in &sequence {
            let report = engine.order(a);
            let fresh = rcm_with_backend(a, kind);
            assert_eq!(
                report.perm,
                fresh,
                "{} engine poisoned by reuse at {name}",
                kind.name()
            );
            assert_eq!(report.n, a.n_rows());
            assert!(report.bandwidth_after <= report.bandwidth_before.max(1));
        }
        assert_eq!(engine.orderings(), sequence.len());
    }
}

#[test]
fn warm_engine_batch_matches_single_shot_on_the_hostile_sequence() {
    let mats: Vec<CscMatrix> = hostile_sequence().into_iter().map(|(_, a)| a).collect();
    for threads in thread_counts_from_env(&[1, 2, 8]) {
        let kind = BackendKind::Pooled { threads };
        let mut engine = OrderingEngine::new(EngineConfig::builder().backend(kind).build());
        // Two rounds through the same engine: batch state must not leak
        // into the next batch either.
        for round in 0..2 {
            let reports = engine.order_batch(&mats);
            assert_eq!(reports.len(), mats.len());
            for (i, (a, report)) in mats.iter().zip(&reports).enumerate() {
                assert_eq!(
                    report.perm,
                    rcm_with_backend(a, kind),
                    "batch slot {i} diverged at {threads} threads (round {round})"
                );
            }
        }
    }
}

/// The deprecated constructors must keep building configurations identical
/// to their builder replacements — downstream code migrating at its own
/// pace sees no behavior change.
#[test]
#[allow(deprecated)]
fn deprecated_constructors_match_the_builder() {
    let a = grid_graph(9, 4);
    for kind in backend_kinds() {
        let legacy = EngineConfig::new(kind);
        let built = EngineConfig::builder().backend(kind).build();
        assert_eq!(legacy.backend, built.backend);
        assert_eq!(legacy.direction, built.direction);
        assert_eq!(legacy.compress, built.compress);
        assert!(legacy.cache.is_none());
        let directed = EngineConfig::directed(kind, ExpandDirection::Push);
        assert_eq!(directed.direction, ExpandDirection::Push);
        assert_eq!(
            OrderingEngine::new(legacy).order(&a).perm,
            OrderingEngine::new(built).order(&a).perm
        );
    }
}

#[test]
fn warm_engine_growth_events_stop_at_the_high_water_mark() {
    // The growth-event test (same pattern as the DistSpmspvWorkspace
    // tests): once the engine has ordered its largest matrix, re-ordering
    // anything no larger performs zero growth of the install-managed warm
    // buffers.
    let big = grid_graph(32, 13);
    let smalls = [grid_graph(10, 3), star(200), path(300), forest()];
    let mut kinds = vec![BackendKind::Serial, BackendKind::Dist { cores: 4 }];
    kinds.extend(
        thread_counts_from_env(&[3])
            .into_iter()
            .map(|threads| BackendKind::Pooled { threads }),
    );
    for kind in kinds {
        let mut engine = OrderingEngine::new(EngineConfig::builder().backend(kind).build());
        engine.order(&big);
        let warm = engine.growth_events();
        assert!(warm > 0, "{}: first install must grow", kind.name());
        for _ in 0..2 {
            for a in &smalls {
                engine.order(a);
            }
            engine.order(&big);
        }
        assert_eq!(
            engine.growth_events(),
            warm,
            "{}: warm engine grew on a not-larger matrix",
            kind.name()
        );
        // A strictly larger matrix must grow again — the counter is live.
        engine.order(&grid_graph(34, 7));
        assert!(
            engine.growth_events() > warm,
            "{}: larger matrix must grow",
            kind.name()
        );
    }
}

/// Random symmetric graph from a seed: n vertices, ~avg_deg·n/2 edges.
fn random_graph(n: usize, avg_deg: usize, seed: u64) -> CscMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CooBuilder::new(n, n);
    for _ in 0..(n * avg_deg / 2) {
        let u = rng.gen_range(0..n) as Vidx;
        let v = rng.gen_range(0..n) as Vidx;
        if u != v {
            b.push_sym(u, v);
        }
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random reuse sequences: a warm engine ordering a big random graph,
    /// then several smaller ones, then the big one again, stays
    /// bit-identical to single-shot calls on every backend — no ordering
    /// may depend on what the engine saw before.
    #[test]
    fn warm_reuse_is_bit_identical_on_random_sequences(
        n in 40usize..140, deg in 1usize..7, seed in 0u64..500
    ) {
        let big = random_graph(n, deg, seed);
        let small_a = random_graph(n / 3 + 2, deg, seed ^ 0xA5A5);
        let small_b = random_graph(n / 5 + 2, deg.min(3), seed ^ 0x5A5A);
        let sequence = [&big, &small_a, &small_b, &big];
        for kind in backend_kinds() {
            let mut engine = OrderingEngine::new(EngineConfig::builder().backend(kind).build());
            for (i, a) in sequence.iter().enumerate() {
                let warm = engine.order(a).perm;
                let fresh = rcm_with_backend(a, kind);
                prop_assert_eq!(
                    &warm, &fresh,
                    "{} engine diverged at step {} (n={}, deg={}, seed={})",
                    kind.name(), i, n, deg, seed
                );
            }
        }
    }
}
